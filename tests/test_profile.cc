// Tests for the scoped profiler and the Distribution edge cases the
// profiler's per-scope aggregation depends on (empty, single-sample,
// negative-only, reset-and-reuse).

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "neuro/common/profile.h"

namespace neuro {
namespace {

/** Restore a clean, disabled profiler around every test in the file. */
class ProfileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Profiler::instance().setEnabled(false);
        Profiler::instance().reset();
    }

    void
    TearDown() override
    {
        Profiler::instance().setEnabled(false);
        Profiler::instance().reset();
    }
};

TEST(DistributionEdge, SingleSampleMinEqualsMax)
{
    Distribution d;
    d.sample(3.5);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_DOUBLE_EQ(d.min(), 3.5);
    EXPECT_DOUBLE_EQ(d.max(), 3.5);
    EXPECT_DOUBLE_EQ(d.mean(), 3.5);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(DistributionEdge, NegativeOnlySamplesKeepSign)
{
    // min()/max() must initialize from the first sample, not from 0:
    // a negative-only stream has a negative max.
    Distribution d;
    for (double v : {-5.0, -2.0, -9.0})
        d.sample(v);
    EXPECT_DOUBLE_EQ(d.min(), -9.0);
    EXPECT_DOUBLE_EQ(d.max(), -2.0);
    EXPECT_DOUBLE_EQ(d.sum(), -16.0);
}

TEST(DistributionEdge, EmptyAfterResetBehavesLikeNew)
{
    Distribution d;
    d.sample(-4.0);
    d.sample(7.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
    EXPECT_DOUBLE_EQ(d.sum(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    // Reuse after reset must re-seed min/max from the first sample.
    d.sample(-1.0);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_DOUBLE_EQ(d.min(), -1.0);
    EXPECT_DOUBLE_EQ(d.max(), -1.0);
}

TEST(DistributionEdge, MixedSignStream)
{
    Distribution d;
    for (double v : {-1.0, 0.0, 1.0})
        d.sample(v);
    EXPECT_DOUBLE_EQ(d.min(), -1.0);
    EXPECT_DOUBLE_EQ(d.max(), 1.0);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST_F(ProfileTest, DisabledScopeRecordsNothing)
{
    {
        NEURO_PROFILE_SCOPE("test/disabled");
    }
    const StatRegistry snap = Profiler::instance().snapshot();
    EXPECT_EQ(snap.distribution("scope/test/disabled").count(), 0u);
    std::ostringstream os;
    snap.dump(os);
    EXPECT_EQ(os.str().find("test/disabled"), std::string::npos);
}

TEST_F(ProfileTest, EnabledScopeAggregatesCountTotalMinMax)
{
    Profiler::instance().setEnabled(true);
    for (int i = 0; i < 3; ++i) {
        NEURO_PROFILE_SCOPE("test/scope");
    }
    const StatRegistry snap = Profiler::instance().snapshot();
    const Distribution &d = snap.distribution("scope/test/scope");
    EXPECT_EQ(d.count(), 3u);
    EXPECT_GE(d.min(), 0.0);
    EXPECT_GE(d.max(), d.min());
    EXPECT_GE(d.sum(), d.max());
}

TEST_F(ProfileTest, NestedScopesRecordBothLevels)
{
    Profiler::instance().setEnabled(true);
    {
        NEURO_PROFILE_SCOPE("test/outer");
        NEURO_PROFILE_SCOPE("test/outer/inner");
    }
    const StatRegistry snap = Profiler::instance().snapshot();
    EXPECT_EQ(snap.distribution("scope/test/outer").count(), 1u);
    EXPECT_EQ(snap.distribution("scope/test/outer/inner").count(), 1u);
    // The outer scope brackets the inner one.
    EXPECT_GE(snap.distribution("scope/test/outer").sum(),
              snap.distribution("scope/test/outer/inner").sum());
}

TEST_F(ProfileTest, ObsCountersAndSamplesGateOnEnabled)
{
    obsCount("test.counter", 5);
    obsSample("test.sample", 1.0);
    EXPECT_EQ(Profiler::instance().snapshot().counter("test.counter"),
              0u);

    Profiler::instance().setEnabled(true);
    EXPECT_TRUE(obsEnabled());
    obsCount("test.counter", 5);
    obsCount("test.counter");
    obsSample("test.sample", 2.5);
    const StatRegistry snap = Profiler::instance().snapshot();
    EXPECT_EQ(snap.counter("test.counter"), 6u);
    EXPECT_EQ(snap.distribution("test.sample").count(), 1u);
    EXPECT_DOUBLE_EQ(snap.distribution("test.sample").max(), 2.5);
}

TEST_F(ProfileTest, DumpListsScopeTimingsWithTotals)
{
    Profiler::instance().setEnabled(true);
    {
        NEURO_PROFILE_SCOPE("test/dumped");
    }
    std::ostringstream os;
    Profiler::instance().dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("scope/test/dumped"), std::string::npos);
    EXPECT_NE(out.find("total="), std::string::npos);
    EXPECT_NE(out.find("min="), std::string::npos);
    EXPECT_NE(out.find("max="), std::string::npos);
}

TEST_F(ProfileTest, ConcurrentScopesAndCountersAreLossless)
{
    Profiler::instance().setEnabled(true);
    constexpr int kThreads = 4;
    constexpr int kIters = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kIters; ++i) {
                NEURO_PROFILE_SCOPE("test/mt");
                obsCount("test.mt_counter");
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const StatRegistry snap = Profiler::instance().snapshot();
    EXPECT_EQ(snap.distribution("scope/test/mt").count(),
              static_cast<uint64_t>(kThreads * kIters));
    EXPECT_EQ(snap.counter("test.mt_counter"),
              static_cast<uint64_t>(kThreads * kIters));
}

} // namespace
} // namespace neuro
