// Tests for the network serving front end: frame codec round trips
// and rejection of malformed frames (truncated headers, oversize
// lengths, magic/version/length-field disagreements), FrameDecoder
// reassembly with the stream split at every byte boundary and with
// several frames concatenated into one read, multi-model routing
// (unknown names, pixel-count mismatches), loopback request/response
// over a real socket, drain-first shutdown, and the acceptance
// criterion that predictions over the wire are bit-identical to
// in-process serving for the same model and seed.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "neuro/net/client.h"
#include "neuro/net/frontend.h"
#include "neuro/net/protocol.h"
#include "neuro/net/server.h"
#include "neuro/serve/backend.h"
#include "neuro/serve/registry.h"
#include "neuro/serve/server.h"

namespace neuro {
namespace {

using net::FrameDecoder;
using net::FrameStatus;
using net::RequestFrame;
using net::ResponseFrame;

/**
 * Deterministic test backend: classify() = (pixels[0] + streamSeed)
 * mod numClasses, the same stub shape test_serve uses — predictions
 * are a pure function of the request, so wire-vs-in-process
 * comparisons are exact.
 */
class StubBackend final : public serve::InferenceBackend
{
  public:
    explicit StubBackend(int bias = 0) : bias_(bias) {}

    serve::BackendKind
    kind() const override
    {
        return serve::BackendKind::Mlp;
    }
    std::size_t inputSize() const override { return 4; }
    int numClasses() const override { return 16; }
    std::unique_ptr<serve::BackendSession>
    newSession() const override
    {
        return std::make_unique<Session>(bias_);
    }

  private:
    class Session final : public serve::BackendSession
    {
      public:
        explicit Session(int bias) : bias_(bias) {}

        int
        classify(const uint8_t *pixels, std::size_t /*numPixels*/,
                 uint64_t streamSeed) override
        {
            return static_cast<int>(
                (pixels[0] + streamSeed +
                 static_cast<uint64_t>(bias_)) %
                16);
        }

      private:
        int bias_;
    };

    int bias_;
};

RequestFrame
makeRequest(uint64_t id, const std::string &model = "stub")
{
    RequestFrame frame;
    frame.id = id;
    frame.streamSeed = id * 31 + 7;
    frame.model = model;
    frame.pixels = {static_cast<float>(id % 251), 1.0F, 2.0F, 3.0F};
    return frame;
}

// --- codec ---------------------------------------------------------

TEST(NetProtocol, RequestRoundTrip)
{
    RequestFrame in;
    in.id = 0xDEADBEEFCAFEF00DULL;
    in.streamSeed = 42;
    in.deadlineMicros = 1500;
    in.model = "glyphs.q8";
    in.pixels = {0.0F, 255.0F, 17.5F, 3.0F};
    std::vector<uint8_t> wire;
    encodeRequest(in, &wire);

    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    std::vector<uint8_t> payload;
    ASSERT_EQ(decoder.next(&payload), FrameDecoder::Result::Frame);

    RequestFrame out;
    std::string error;
    ASSERT_TRUE(
        net::parseRequest(payload.data(), payload.size(), &out, &error))
        << error;
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.streamSeed, in.streamSeed);
    EXPECT_EQ(out.deadlineMicros, in.deadlineMicros);
    EXPECT_EQ(out.model, in.model);
    EXPECT_EQ(out.pixels, in.pixels);
    EXPECT_EQ(decoder.next(&payload), FrameDecoder::Result::NeedMore);
    EXPECT_EQ(decoder.buffered(), 0U);
}

TEST(NetProtocol, ResponseRoundTrip)
{
    ResponseFrame in;
    in.id = 77;
    in.status = FrameStatus::Expired;
    in.classIndex = -1;
    in.batchSize = 8;
    in.queueMicros = 12.5F;
    in.batchMicros = 3.25F;
    in.computeMicros = 890.0F;
    in.totalMicros = 905.75F;
    std::vector<uint8_t> wire;
    encodeResponse(in, &wire);
    ASSERT_EQ(wire.size(), 4U + net::kResponseBytes);

    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    std::vector<uint8_t> payload;
    ASSERT_EQ(decoder.next(&payload), FrameDecoder::Result::Frame);

    ResponseFrame out;
    std::string error;
    ASSERT_TRUE(net::parseResponse(payload.data(), payload.size(),
                                   &out, &error))
        << error;
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.status, in.status);
    EXPECT_EQ(out.classIndex, in.classIndex);
    EXPECT_EQ(out.batchSize, in.batchSize);
    EXPECT_EQ(out.queueMicros, in.queueMicros);
    EXPECT_EQ(out.batchMicros, in.batchMicros);
    EXPECT_EQ(out.computeMicros, in.computeMicros);
    EXPECT_EQ(out.totalMicros, in.totalMicros);
}

TEST(NetProtocol, TruncatedHeaderIsNotAFrame)
{
    std::vector<uint8_t> wire;
    encodeRequest(makeRequest(1), &wire);
    // Every strict prefix — including mid-length-prefix and
    // mid-header cuts — must yield NeedMore, never a frame or error.
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        FrameDecoder decoder;
        decoder.feed(wire.data(), cut);
        std::vector<uint8_t> payload;
        EXPECT_EQ(decoder.next(&payload),
                  FrameDecoder::Result::NeedMore)
            << "cut at " << cut;
    }
}

TEST(NetProtocol, OversizeLengthLatchesError)
{
    const uint32_t huge = 1U << 30;
    std::vector<uint8_t> wire;
    for (std::size_t i = 0; i < 4; ++i)
        wire.push_back(
            static_cast<uint8_t>((huge >> (8 * i)) & 0xFFU));
    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    std::vector<uint8_t> payload;
    EXPECT_EQ(decoder.next(&payload), FrameDecoder::Result::Error);
    EXPECT_FALSE(decoder.error().empty());
    // The error is latched: feeding a valid frame afterwards cannot
    // resynchronize the stream.
    std::vector<uint8_t> good;
    encodeRequest(makeRequest(2), &good);
    decoder.feed(good.data(), good.size());
    EXPECT_EQ(decoder.next(&payload), FrameDecoder::Result::Error);
}

TEST(NetProtocol, UndersizeLengthLatchesError)
{
    // A length prefix below the fixed request header cannot hold a
    // well-formed payload of either kind.
    const uint32_t tiny = 4;
    std::vector<uint8_t> wire;
    for (std::size_t i = 0; i < 4; ++i)
        wire.push_back(
            static_cast<uint8_t>((tiny >> (8 * i)) & 0xFFU));
    wire.insert(wire.end(), 4, 0);
    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());
    std::vector<uint8_t> payload;
    EXPECT_EQ(decoder.next(&payload), FrameDecoder::Result::Error);
}

TEST(NetProtocol, BadMagicAndVersionRejected)
{
    std::vector<uint8_t> wire;
    encodeRequest(makeRequest(3), &wire);
    RequestFrame out;
    std::string error;

    std::vector<uint8_t> corrupt(wire.begin() + 4, wire.end());
    corrupt[0] ^= 0xFFU; // magic
    EXPECT_FALSE(net::parseRequest(corrupt.data(), corrupt.size(),
                                   &out, &error));

    corrupt.assign(wire.begin() + 4, wire.end());
    corrupt[4] ^= 0xFFU; // version
    EXPECT_FALSE(net::parseRequest(corrupt.data(), corrupt.size(),
                                   &out, &error));
}

TEST(NetProtocol, PayloadLengthDisagreementRejected)
{
    std::vector<uint8_t> wire;
    encodeRequest(makeRequest(4), &wire);
    std::vector<uint8_t> payload(wire.begin() + 4, wire.end());
    RequestFrame out;
    std::string error;

    // Shorter than the header fields claim.
    EXPECT_FALSE(net::parseRequest(payload.data(), payload.size() - 1,
                                   &out, &error));
    // Longer than they claim.
    std::vector<uint8_t> padded = payload;
    padded.push_back(0);
    EXPECT_FALSE(net::parseRequest(padded.data(), padded.size(), &out,
                                   &error));
}

TEST(NetProtocol, SplitAtEveryByteBoundary)
{
    std::vector<uint8_t> wire;
    encodeRequest(makeRequest(5, "a-model-name"), &wire);
    const RequestFrame want = makeRequest(5, "a-model-name");
    for (std::size_t split = 1; split < wire.size(); ++split) {
        FrameDecoder decoder;
        std::vector<uint8_t> payload;
        decoder.feed(wire.data(), split);
        // The partial stream must never yield a frame early.
        ASSERT_EQ(decoder.next(&payload),
                  FrameDecoder::Result::NeedMore)
            << "split at " << split;
        decoder.feed(wire.data() + split, wire.size() - split);
        ASSERT_EQ(decoder.next(&payload), FrameDecoder::Result::Frame)
            << "split at " << split;
        RequestFrame out;
        std::string error;
        ASSERT_TRUE(net::parseRequest(payload.data(), payload.size(),
                                      &out, &error))
            << error;
        EXPECT_EQ(out.id, want.id);
        EXPECT_EQ(out.model, want.model);
        EXPECT_EQ(out.pixels, want.pixels);
    }
}

TEST(NetProtocol, ConcatenatedFramesInOneRead)
{
    std::vector<uint8_t> wire;
    const std::size_t kFrames = 5;
    for (uint64_t i = 0; i < kFrames; ++i)
        encodeRequest(makeRequest(100 + i), &wire);
    FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size()); // one "recv" of them all.
    std::vector<uint8_t> payload;
    for (uint64_t i = 0; i < kFrames; ++i) {
        ASSERT_EQ(decoder.next(&payload), FrameDecoder::Result::Frame)
            << "frame " << i;
        RequestFrame out;
        std::string error;
        ASSERT_TRUE(net::parseRequest(payload.data(), payload.size(),
                                      &out, &error))
            << error;
        EXPECT_EQ(out.id, 100 + i);
    }
    EXPECT_EQ(decoder.next(&payload), FrameDecoder::Result::NeedMore);
    EXPECT_EQ(decoder.buffered(), 0U);
}

TEST(NetProtocol, StatusNames)
{
    EXPECT_STREQ(net::frameStatusName(FrameStatus::Ok), "ok");
    EXPECT_STREQ(net::frameStatusName(FrameStatus::UnknownModel),
                 "unknown_model");
}

// --- frontend routing ---------------------------------------------

TEST(NetFrontend, RoutesByModelAndFlagsUnknown)
{
    serve::ModelRegistry registry;
    registry.add("m0", std::make_shared<StubBackend>(0));
    registry.add("m1", std::make_shared<StubBackend>(5));
    net::ServeFrontend frontend(registry, serve::ServeConfig{});
    EXPECT_EQ(frontend.models(),
              (std::vector<std::string>{"m0", "m1"}));

    auto ask = [&](const std::string &model, uint64_t id) {
        std::promise<ResponseFrame> promise;
        auto future = promise.get_future();
        frontend.submit(makeRequest(id, model),
                        [&promise](ResponseFrame &&response) {
                            promise.set_value(std::move(response));
                        });
        return future.get();
    };

    const ResponseFrame r0 = ask("m0", 9);
    ASSERT_EQ(r0.status, FrameStatus::Ok);
    const ResponseFrame r1 = ask("m1", 9);
    ASSERT_EQ(r1.status, FrameStatus::Ok);
    // Same request, different model: the bias separates the routes.
    EXPECT_EQ((r0.classIndex + 5) % 16, r1.classIndex);

    const ResponseFrame bad = ask("no-such-model", 10);
    EXPECT_EQ(bad.status, FrameStatus::UnknownModel);
    EXPECT_EQ(bad.id, 10U);
}

TEST(NetFrontend, PixelCountMismatchIsBadFrame)
{
    serve::ModelRegistry registry;
    registry.add("stub", std::make_shared<StubBackend>());
    net::ServeFrontend frontend(registry, serve::ServeConfig{});
    RequestFrame frame = makeRequest(11);
    frame.pixels.resize(7); // backend inputSize() is 4.
    std::promise<ResponseFrame> promise;
    auto future = promise.get_future();
    frontend.submit(std::move(frame),
                    [&promise](ResponseFrame &&response) {
                        promise.set_value(std::move(response));
                    });
    EXPECT_EQ(future.get().status, FrameStatus::BadFrame);
}

// --- loopback over a real socket ----------------------------------

/** Frontend + server + connected client on an ephemeral port. */
struct Loopback
{
    serve::ModelRegistry registry;
    std::unique_ptr<net::ServeFrontend> frontend;
    std::unique_ptr<net::NetServer> server;
    net::NetClient client;

    explicit Loopback(const serve::ServeConfig &config = {})
    {
        registry.add("stub", std::make_shared<StubBackend>());
        frontend =
            std::make_unique<net::ServeFrontend>(registry, config);
        server = std::make_unique<net::NetServer>(*frontend);
        std::string error;
        if (!server->start(&error))
            ADD_FAILURE() << "server start failed: " << error;
        if (!client.connect("127.0.0.1", server->port(), &error))
            ADD_FAILURE() << "client connect failed: " << error;
    }
};

TEST(NetLoopback, RoundTrip)
{
    Loopback loop;
    std::string error;
    for (uint64_t id = 1; id <= 32; ++id) {
        ASSERT_TRUE(loop.client.sendRequest(makeRequest(id), &error))
            << error;
    }
    for (uint64_t id = 1; id <= 32; ++id) {
        ResponseFrame response;
        ASSERT_TRUE(loop.client.readResponse(&response, &error))
            << error;
        // Responses come back in submission order on one connection
        // (single model, in-order batching).
        EXPECT_EQ(response.id, id);
        ASSERT_EQ(response.status, FrameStatus::Ok);
        const uint64_t seed = id * 31 + 7;
        EXPECT_EQ(response.classIndex,
                  static_cast<int32_t>((id % 251 + seed) % 16));
        EXPECT_GE(response.totalMicros, 0.0F);
        EXPECT_GE(response.batchSize, 1U);
    }
}

TEST(NetLoopback, UnknownModelOverTheWire)
{
    Loopback loop;
    std::string error;
    ASSERT_TRUE(loop.client.sendRequest(
                    makeRequest(1, "never-registered"), &error))
        << error;
    ResponseFrame response;
    ASSERT_TRUE(loop.client.readResponse(&response, &error)) << error;
    EXPECT_EQ(response.status, FrameStatus::UnknownModel);
    EXPECT_EQ(response.id, 1U);
}

TEST(NetLoopback, WirePredictionsMatchInProcessServing)
{
    // Acceptance criterion: for the same model and per-request seeds,
    // predictions over the wire are bit-identical to in-process
    // serving.
    auto backend = std::make_shared<StubBackend>();
    serve::InferenceServer inProcess(backend);

    Loopback loop;
    std::string error;
    const uint64_t kRequests = 64;
    for (uint64_t id = 1; id <= kRequests; ++id) {
        ASSERT_TRUE(loop.client.sendRequest(makeRequest(id), &error))
            << error;
    }
    for (uint64_t id = 1; id <= kRequests; ++id) {
        ResponseFrame wire;
        ASSERT_TRUE(loop.client.readResponse(&wire, &error)) << error;
        ASSERT_EQ(wire.status, FrameStatus::Ok);

        const RequestFrame frame = makeRequest(id);
        serve::InferenceRequest request;
        request.id = frame.id;
        request.streamSeed = frame.streamSeed;
        request.pixels.assign(frame.pixels.size(), 0);
        for (std::size_t i = 0; i < frame.pixels.size(); ++i)
            request.pixels[i] =
                static_cast<uint8_t>(frame.pixels[i]);
        const serve::InferenceResult local =
            inProcess.submit(std::move(request)).get();
        ASSERT_EQ(local.status, serve::RequestStatus::Ok);
        EXPECT_EQ(wire.classIndex,
                  static_cast<int32_t>(local.classIndex))
            << "id " << id;
    }
}

TEST(NetLoopback, MalformedLengthPrefixGetsBadFrameThenClose)
{
    Loopback loop;
    // A corrupt length prefix (0xFFFFFFFF) cannot be resynchronized:
    // the server answers one BadFrame and closes the connection. The
    // raw bytes go out on a hand-made socket because NetClient only
    // speaks well-formed frames.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(loop.server->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(
                  fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr),
              0);
    const uint8_t junk[8] = {0xFF, 0xFF, 0xFF, 0xFF,
                             0,    0,    0,    0};
    ASSERT_EQ(::send(fd, junk, sizeof junk, 0),
              static_cast<ssize_t>(sizeof junk));

    // Read the whole server side of the stream: exactly one BadFrame
    // response, then EOF as the server drops the connection.
    std::vector<uint8_t> bytes;
    uint8_t buf[1024];
    for (;;) {
        const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
        if (r <= 0)
            break;
        bytes.insert(bytes.end(), buf, buf + r);
    }
    ::close(fd);
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    std::vector<uint8_t> payload;
    ASSERT_EQ(decoder.next(&payload), FrameDecoder::Result::Frame);
    ResponseFrame response;
    std::string error;
    ASSERT_TRUE(net::parseResponse(payload.data(), payload.size(),
                                   &response, &error))
        << error;
    EXPECT_EQ(response.status, FrameStatus::BadFrame);
    EXPECT_EQ(decoder.next(&payload), FrameDecoder::Result::NeedMore);
    EXPECT_EQ(decoder.buffered(), 0U);
}

TEST(NetLoopback, ShutdownDrainsInFlightRequests)
{
    auto loop = std::make_unique<Loopback>();
    std::string error;
    const uint64_t kRequests = 16;
    for (uint64_t id = 1; id <= kRequests; ++id) {
        ASSERT_TRUE(loop->client.sendRequest(makeRequest(id), &error))
            << error;
    }
    // Half-close: the server sees EOF once the frames are consumed,
    // but must still answer every one before dropping the connection.
    loop->client.shutdownWrite();
    uint64_t answered = 0;
    ResponseFrame response;
    while (loop->client.readResponse(&response, &error)) {
        EXPECT_EQ(response.status, FrameStatus::Ok);
        ++answered;
    }
    EXPECT_EQ(answered, kRequests);
    loop->server->stop();
    EXPECT_EQ(loop->server->connectionCount(), 0U);
}

TEST(NetLoopback, RequestStopIsObservable)
{
    Loopback loop;
    EXPECT_FALSE(loop.server->stopRequested());
    loop.server->requestStop(); // the signal-handler half.
    EXPECT_TRUE(loop.server->stopRequested());
    loop.server->stop(); // the normal-context half.
}

TEST(NetLoopback, TwoClientsTwoModels)
{
    serve::ModelRegistry registry;
    registry.add("m0", std::make_shared<StubBackend>(0));
    registry.add("m1", std::make_shared<StubBackend>(5));
    net::ServeFrontend frontend(registry, serve::ServeConfig{});
    net::NetServer server(frontend);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    auto drive = [&](const std::string &model, int bias) {
        net::NetClient client;
        std::string err;
        ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &err))
            << err;
        for (uint64_t id = 1; id <= 16; ++id)
            ASSERT_TRUE(
                client.sendRequest(makeRequest(id, model), &err))
                << err;
        for (uint64_t id = 1; id <= 16; ++id) {
            ResponseFrame response;
            ASSERT_TRUE(client.readResponse(&response, &err)) << err;
            ASSERT_EQ(response.status, FrameStatus::Ok);
            const uint64_t seed = id * 31 + 7;
            EXPECT_EQ(response.classIndex,
                      static_cast<int32_t>(
                          (id % 251 + seed +
                           static_cast<uint64_t>(bias)) %
                          16));
        }
    };
    std::thread t0([&] { drive("m0", 0); });
    std::thread t1([&] { drive("m1", 5); });
    t0.join();
    t1.join();
    server.stop();
}

} // namespace
} // namespace neuro
