// Tests for the MLP forward path and back-propagation trainer.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "neuro/common/rng.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/mlp/backprop.h"
#include "neuro/mlp/mlp.h"

namespace neuro {
namespace mlp {
namespace {

TEST(Mlp, ForwardMatchesManualComputation)
{
    MlpConfig config;
    config.layerSizes = {2, 2, 1};
    Rng rng(1);
    Mlp net(config, rng);
    // Overwrite weights with known values. Layer 0: 2x3 (bias last).
    Matrix &w0 = net.weights(0);
    w0(0, 0) = 1.0f;
    w0(0, 1) = -1.0f;
    w0(0, 2) = 0.0f;
    w0(1, 0) = 0.5f;
    w0(1, 1) = 0.5f;
    w0(1, 2) = 0.25f;
    Matrix &w1 = net.weights(1);
    w1(0, 0) = 2.0f;
    w1(0, 1) = -2.0f;
    w1(0, 2) = 0.5f;

    const float x[2] = {1.0f, 0.5f};
    float out[1];
    net.forward(x, out);

    auto sig = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
    const float h0 = sig(1.0f * 1 + (-1.0f) * 0.5f + 0.0f);
    const float h1 = sig(0.5f * 1 + 0.5f * 0.5f + 0.25f);
    const float expected = sig(2.0f * h0 - 2.0f * h1 + 0.5f);
    EXPECT_NEAR(out[0], expected, 1e-6f);
}

TEST(Mlp, ForwardTraceMatchesForward)
{
    MlpConfig config;
    config.layerSizes = {5, 4, 3};
    Rng rng(2);
    Mlp net(config, rng);
    std::vector<float> x = {0.1f, 0.9f, 0.3f, 0.0f, 1.0f};
    std::vector<float> out(3);
    net.forward(x.data(), out.data());
    std::vector<std::vector<float>> acts;
    net.forwardTrace(x.data(), acts);
    ASSERT_EQ(acts.size(), 3u);
    ASSERT_EQ(acts[2].size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_FLOAT_EQ(acts[2][static_cast<std::size_t>(i)],
                        out[static_cast<std::size_t>(i)]);
}

TEST(Mlp, WeightCountMatchesTopology)
{
    MlpConfig config;
    config.layerSizes = {784, 100, 10};
    Rng rng(3);
    const Mlp net(config, rng);
    EXPECT_EQ(net.weightCount(), 785u * 100 + 101 * 10);
}

TEST(Backprop, ReducesTrainingError)
{
    // Tiny 2-class problem: bright-left vs bright-right 4x1 images.
    datasets::Dataset data("toy", 4, 1, 2);
    Rng gen(5);
    for (int i = 0; i < 120; ++i) {
        datasets::Sample s;
        const bool left = (i % 2) == 0;
        s.label = left ? 0 : 1;
        s.pixels = {static_cast<uint8_t>(left ? 200 + gen.uniformInt(55)
                                              : gen.uniformInt(40)),
                    static_cast<uint8_t>(gen.uniformInt(60)),
                    static_cast<uint8_t>(gen.uniformInt(60)),
                    static_cast<uint8_t>(left ? gen.uniformInt(40)
                                              : 200 + gen.uniformInt(55))};
        data.add(std::move(s));
    }

    MlpConfig config;
    config.layerSizes = {4, 6, 2};
    Rng rng(6);
    Mlp net(config, rng);
    std::vector<double> errors;
    TrainConfig train;
    train.epochs = 20;
    train.learningRate = 0.5f;
    mlp::train(net, data, train, [&](const EpochReport &r) {
        errors.push_back(r.trainError);
    });
    ASSERT_EQ(errors.size(), 20u);
    EXPECT_LT(errors.back(), errors.front() * 0.5);
    EXPECT_GT(evaluate(net, data), 0.95);
}

TEST(Backprop, LearnsSmallDigitTask)
{
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 600;
    opt.testSize = 150;
    const datasets::Split split = datasets::makeSynthDigits(opt);
    MlpConfig config;
    config.layerSizes = {784, 30, 10};
    TrainConfig train;
    train.epochs = 8;
    const double acc =
        trainAndEvaluate(config, train, split.train, split.test, 9);
    EXPECT_GT(acc, 0.8) << "MLP failed to learn digits";
}

class HiddenSizeTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(HiddenSizeTest, AnyTopologyTrainsAboveChance)
{
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 300;
    opt.testSize = 100;
    const datasets::Split split = datasets::makeSynthDigits(opt);
    MlpConfig config;
    config.layerSizes = {784, GetParam(), 10};
    TrainConfig train;
    train.epochs = 5;
    const double acc =
        trainAndEvaluate(config, train, split.train, split.test, 10);
    EXPECT_GT(acc, 0.4) << "hidden=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, HiddenSizeTest,
                         ::testing::Values(5u, 10u, 25u, 50u));

} // namespace
} // namespace mlp
} // namespace neuro
