// Tests for the operator-level hardware models: areas must reproduce
// the paper's published per-operator layout numbers (Table 4).

#include <gtest/gtest.h>

#include "neuro/core/reports.h"
#include "neuro/hw/operators.h"

namespace neuro {
namespace hw {
namespace {

constexpr double kTol = 0.10; // 10% model tolerance vs layout.

void
expectNear(double measured, double published, double tol,
           const char *what)
{
    EXPECT_NEAR(measured, published, published * tol) << what;
}

TEST(AdderTreeFaCount, SmallTreesByHand)
{
    // 2 operands of 8 bits: one 9-bit adder.
    EXPECT_EQ(adderTreeFaCount(2, 8), 9u);
    // 4 operands: two 9-bit + one 10-bit.
    EXPECT_EQ(adderTreeFaCount(4, 8), 2 * 9 + 10u);
    // 3 operands: one 9-bit (pair), then one 10-bit with the carry.
    EXPECT_EQ(adderTreeFaCount(3, 8), 9 + 10u);
    EXPECT_EQ(adderTreeFaCount(1, 8), 0u);
}

TEST(AdderTreeFaCount, MonotoneInInputsAndBits)
{
    EXPECT_GT(adderTreeFaCount(100, 8), adderTreeFaCount(50, 8));
    EXPECT_GT(adderTreeFaCount(100, 12), adderTreeFaCount(100, 8));
}

TEST(Log2Ceil, Values)
{
    EXPECT_EQ(log2Ceil(1), 0);
    EXPECT_EQ(log2Ceil(2), 1);
    EXPECT_EQ(log2Ceil(3), 2);
    EXPECT_EQ(log2Ceil(784), 10);
    EXPECT_EQ(log2Ceil(1024), 10);
}

TEST(Operators, AdderTreesMatchTable4)
{
    const TechParams &tech = defaultTech();
    expectNear(makeAdderTree(tech, 784, 8).areaUm2,
               core::paper::kAdderTree784x8Um2, kTol, "MLP hidden tree");
    expectNear(makeAdderTree(tech, 100, 8).areaUm2, 5657.0, kTol,
               "MLP output tree");
    expectNear(makeAdderTree(tech, 15, 8).areaUm2,
               core::paper::kAdderTree15x8Um2, kTol, "15-input tree");
}

TEST(Operators, SnnNeuronOperatorsMatchTable4)
{
    const TechParams &tech = defaultTech();
    // SNNwot neuron = 12-bit tree + per-input spike decode.
    const double wot = makeAdderTree(tech, 784, 12).areaUm2 +
        784.0 * tech.spikeDecodeAreaUm2;
    expectNear(wot, core::paper::kAdderTreeSnnWotUm2, kTol,
               "SNNwot neuron");
    // SNNwt neuron = 8-bit tree + LIF extras.
    const double wt = makeAdderTree(tech, 784, 8).areaUm2 +
        makeLifExtras(tech, 784).areaUm2;
    expectNear(wt, core::paper::kAdderTreeSnnWtUm2, kTol,
               "SNNwt neuron");
}

TEST(Operators, MaxAndRngMatchTable4)
{
    const TechParams &tech = defaultTech();
    expectNear(makeMaxTree(tech, 20, 24).areaUm2,
               core::paper::kMaxOpUm2, kTol, "20-input max");
    EXPECT_DOUBLE_EQ(makeGaussianRng(tech).areaUm2,
                     core::paper::kGaussRngUm2);
    EXPECT_DOUBLE_EQ(makeMultiplier(tech, 8).areaUm2,
                     core::paper::kMultiplier8Um2);
}

TEST(Operators, MultiplierScalesQuadratically)
{
    const TechParams &tech = defaultTech();
    const double a8 = makeMultiplier(tech, 8).areaUm2;
    const double a16 = makeMultiplier(tech, 16).areaUm2;
    EXPECT_NEAR(a16 / a8, 4.0, 1e-9);
}

class TreeMonotoneTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(TreeMonotoneTest, AreaEnergyDelayPositiveAndGrow)
{
    const TechParams &tech = defaultTech();
    const std::size_t n = GetParam();
    const OperatorSpec small = makeAdderTree(tech, n, 8);
    const OperatorSpec larger = makeAdderTree(tech, n * 2, 8);
    EXPECT_GT(small.areaUm2, 0.0);
    EXPECT_GT(small.energyPj, 0.0);
    EXPECT_GE(small.delayNs, 0.0);
    EXPECT_GT(larger.areaUm2, small.areaUm2);
    EXPECT_GE(larger.delayNs, small.delayNs);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeMonotoneTest,
                         ::testing::Values(2u, 4u, 16u, 64u, 256u, 784u));

TEST(Operators, FoldedExtrasScaleWithNi)
{
    const TechParams &tech = defaultTech();
    EXPECT_GT(makeWotLaneBuffers(tech, 16).areaUm2,
              makeWotLaneBuffers(tech, 1).areaUm2);
    EXPECT_GT(makeWtFoldedExtras(tech, 16).areaUm2,
              makeWtFoldedExtras(tech, 1).areaUm2);
    EXPECT_GT(makeStdpPerInput(tech, 16).areaUm2,
              makeStdpPerInput(tech, 1).areaUm2);
}

} // namespace
} // namespace hw
} // namespace neuro
