// Tests for the MNIST IDX loader's success path, using tiny valid IDX
// files generated on the fly.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "neuro/datasets/idx_loader.h"

namespace neuro {
namespace datasets {
namespace {

void
writeU32(std::ofstream &out, uint32_t v)
{
    const unsigned char bytes[4] = {
        static_cast<unsigned char>(v >> 24),
        static_cast<unsigned char>(v >> 16),
        static_cast<unsigned char>(v >> 8),
        static_cast<unsigned char>(v)};
    out.write(reinterpret_cast<const char *>(bytes), 4);
}

void
writeImages(const std::string &path, uint32_t count, uint32_t rows,
            uint32_t cols, uint8_t fill)
{
    std::ofstream out(path, std::ios::binary);
    writeU32(out, 0x00000803);
    writeU32(out, count);
    writeU32(out, rows);
    writeU32(out, cols);
    for (uint32_t i = 0; i < count * rows * cols; ++i)
        out.put(static_cast<char>(fill + i % 7));
}

void
writeLabels(const std::string &path, uint32_t count, int modulo)
{
    std::ofstream out(path, std::ios::binary);
    writeU32(out, 0x00000801);
    writeU32(out, count);
    for (uint32_t i = 0; i < count; ++i)
        out.put(static_cast<char>(i % static_cast<uint32_t>(modulo)));
}

class IdxFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per process: ctest runs each case as its own process,
        // possibly in parallel, and TearDown removes the directory.
        dir_ = "/tmp/neuro_idx_test." +
               std::to_string(static_cast<long>(::getpid()));
        std::filesystem::create_directories(dir_);
        writeImages(dir_ + "/train-images-idx3-ubyte", 12, 4, 4, 10);
        writeLabels(dir_ + "/train-labels-idx1-ubyte", 12, 10);
        writeImages(dir_ + "/t10k-images-idx3-ubyte", 5, 4, 4, 50);
        writeLabels(dir_ + "/t10k-labels-idx1-ubyte", 5, 10);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::string dir_;
};

TEST_F(IdxFixture, LoadsFullFiles)
{
    Split split;
    ASSERT_TRUE(loadMnistIdx(dir_, 0, 0, split));
    EXPECT_EQ(split.train.size(), 12u);
    EXPECT_EQ(split.test.size(), 5u);
    EXPECT_EQ(split.train.width(), 4u);
    EXPECT_EQ(split.train.height(), 4u);
    EXPECT_EQ(split.train[0].label, 0);
    EXPECT_EQ(split.train[3].label, 3);
    EXPECT_EQ(split.train[0].pixels[0], 10);
}

TEST_F(IdxFixture, TruncatesToRequestedSizes)
{
    Split split;
    ASSERT_TRUE(loadMnistIdx(dir_, 7, 3, split));
    EXPECT_EQ(split.train.size(), 7u);
    EXPECT_EQ(split.test.size(), 3u);
}

TEST_F(IdxFixture, RejectsCorruptMagic)
{
    // Corrupt the training images magic number.
    std::ofstream out(dir_ + "/train-images-idx3-ubyte",
                      std::ios::binary);
    writeU32(out, 0xdeadbeef);
    out.close();
    Split split;
    EXPECT_FALSE(loadMnistIdx(dir_, 0, 0, split));
}

TEST_F(IdxFixture, RejectsOutOfRangeLabels)
{
    writeLabels(dir_ + "/train-labels-idx1-ubyte", 12, 100); // >9.
    Split split;
    EXPECT_FALSE(loadMnistIdx(dir_, 0, 0, split));
}

} // namespace
} // namespace datasets
} // namespace neuro
