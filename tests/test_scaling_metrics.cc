// Tests for the scaling study and the classification metrics.

#include <gtest/gtest.h>

#include <sstream>

#include "neuro/core/metrics.h"
#include "neuro/hw/scaling.h"

namespace neuro {
namespace {

TEST(ScalingStudy, LadderGrowsMonotonically)
{
    const auto ladder = hw::defaultScaleLadder();
    ASSERT_GE(ladder.size(), 4u);
    for (std::size_t i = 1; i < ladder.size(); ++i) {
        EXPECT_GT(ladder[i].inputs, ladder[i - 1].inputs);
        EXPECT_GT(ladder[i].mlpHidden, ladder[i - 1].mlpHidden);
        EXPECT_EQ(ladder[i].snnNeurons, ladder[i].mlpHidden * 3);
    }
}

TEST(ScalingStudy, PaperConclusionsHoldAcrossScales)
{
    const auto results = hw::scalingStudy(hw::defaultScaleLadder());
    for (const auto &r : results) {
        // Expanded: the multiplier-free SNN always wins area.
        EXPECT_TRUE(r.snnWinsExpandedArea())
            << "inputs=" << r.scale.inputs;
        // Folded: the MLP always wins (3x fewer synapses to store).
        EXPECT_FALSE(r.snnWinsFoldedArea())
            << "inputs=" << r.scale.inputs;
        EXPECT_GT(r.mlpExpandedMm2, 0.0);
        EXPECT_GT(r.snnFoldedMm2, 0.0);
    }
    // The expanded advantage widens with scale.
    const double first_ratio =
        results.front().snnExpandedMm2 / results.front().mlpExpandedMm2;
    const double last_ratio =
        results.back().snnExpandedMm2 / results.back().mlpExpandedMm2;
    EXPECT_LT(last_ratio, first_ratio);
}

TEST(ScalingStudy, CrossoverIndexFindsFirstSnnWin)
{
    const auto results = hw::scalingStudy(hw::defaultScaleLadder());
    const int idx = hw::expandedCrossoverIndex(results);
    // SNN wins expanded area from the very first scale here.
    EXPECT_EQ(idx, 0);
}

TEST(ConfusionMatrix, AccuracyAndCells)
{
    core::ConfusionMatrix m(3);
    m.record(0, 0);
    m.record(0, 1);
    m.record(1, 1);
    m.record(2, 2);
    EXPECT_EQ(m.total(), 4u);
    EXPECT_DOUBLE_EQ(m.accuracy(), 0.75);
    EXPECT_EQ(m.at(0, 1), 1u);
    EXPECT_EQ(m.at(1, 0), 0u);
}

TEST(ConfusionMatrix, PrecisionRecallF1)
{
    core::ConfusionMatrix m(2);
    // Class 0: 3 actual (2 correct); class 1: 2 actual (1 correct),
    // predictions of 0: 2+1=3 -> precision(0) = 2/3; recall(0) = 2/3.
    m.record(0, 0);
    m.record(0, 0);
    m.record(0, 1);
    m.record(1, 0);
    m.record(1, 1);
    EXPECT_NEAR(m.precision(0), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(m.recall(0), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(m.f1(0), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(m.precision(1), 0.5, 1e-12);
    EXPECT_NEAR(m.recall(1), 0.5, 1e-12);
}

TEST(ConfusionMatrix, OutOfRangePredictionIsError)
{
    core::ConfusionMatrix m(2);
    m.record(0, -1);
    m.record(0, 5);
    EXPECT_EQ(m.total(), 2u);
    EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
}

TEST(ConfusionMatrix, NeverPredictedClassHasZeroPrecision)
{
    core::ConfusionMatrix m(2);
    m.record(1, 0);
    EXPECT_DOUBLE_EQ(m.precision(1), 0.0);
    EXPECT_DOUBLE_EQ(m.recall(1), 0.0);
    EXPECT_DOUBLE_EQ(m.f1(1), 0.0);
}

TEST(ConfusionMatrix, PrintRendersAllCells)
{
    core::ConfusionMatrix m(2);
    m.record(0, 0);
    m.record(1, 0);
    std::ostringstream os;
    m.print(os);
    EXPECT_NE(os.str().find("accuracy"), std::string::npos);
}

TEST(EvaluateConfusion, RunsPredictorOverDataset)
{
    datasets::Dataset data("toy", 1, 1, 2);
    for (int i = 0; i < 10; ++i) {
        datasets::Sample s;
        s.pixels = {static_cast<uint8_t>(i < 5 ? 10 : 200)};
        s.label = i < 5 ? 0 : 1;
        data.add(std::move(s));
    }
    const auto matrix = core::evaluateConfusion(
        data, [](const datasets::Sample &s) {
            return s.pixels[0] > 100 ? 1 : 0;
        });
    EXPECT_DOUBLE_EQ(matrix.accuracy(), 1.0);
    EXPECT_EQ(matrix.at(0, 0), 5u);
    EXPECT_EQ(matrix.at(1, 1), 5u);
}

} // namespace
} // namespace neuro
