// Tests for the RNG suite: software generator distributions and the
// bit-accurate hardware LFSR / CLT-Gaussian models.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "neuro/common/rng.h"

namespace neuro {
namespace {

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123), b(123), c(124);
    bool diverged = false;
    for (int i = 0; i < 100; ++i) {
        const uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            diverged = true;
    }
    EXPECT_TRUE(diverged);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntUnbiasedRange)
{
    Rng rng(11);
    std::vector<int> hist(7, 0);
    for (int i = 0; i < 21000; ++i)
        ++hist[rng.uniformInt(7)];
    for (int bucket : hist)
        EXPECT_NEAR(bucket, 3000, 300);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

class PoissonTest : public ::testing::TestWithParam<double>
{
};

TEST_P(PoissonTest, MeanAndVarianceMatch)
{
    const double mean = GetParam();
    Rng rng(17);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const int k = rng.poisson(mean);
        ASSERT_GE(k, 0);
        sum += k;
        sum_sq += static_cast<double>(k) * k;
    }
    const double m = sum / n;
    const double var = sum_sq / n - m * m;
    EXPECT_NEAR(m, mean, std::max(0.1, 0.06 * mean));
    EXPECT_NEAR(var, mean, std::max(0.2, 0.12 * mean));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonTest,
                         ::testing::Values(0.1, 0.5, 1.0, 4.0, 10.0, 40.0,
                                           80.0, 200.0));

TEST(Rng, ExponentialMean)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        const double e = rng.exponential(50.0);
        ASSERT_GT(e, 0.0);
        sum += e;
    }
    EXPECT_NEAR(sum / n, 50.0, 1.5);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(23);
    std::vector<uint32_t> order(257);
    rng.shuffle(order.data(), order.size());
    std::set<uint32_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), order.size());
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), order.size() - 1);
}

TEST(Lfsr31, ZeroSeedRemapped)
{
    Lfsr31 lfsr(0);
    EXPECT_NE(lfsr.state(), 0u);
}

TEST(Lfsr31, StateNeverZeroAndNoShortCycle)
{
    // x^31 + x^3 + 1 is primitive: the sequence must not revisit the
    // seed state within any short horizon.
    Lfsr31 lfsr(1);
    const uint32_t seed_state = lfsr.state();
    for (int i = 0; i < 100000; ++i) {
        lfsr.stepBit();
        ASSERT_NE(lfsr.state(), 0u);
        ASSERT_FALSE(i > 31 && lfsr.state() == seed_state && i < 99999)
            << "short cycle at step " << i;
    }
}

TEST(Lfsr31, BalancedBits)
{
    Lfsr31 lfsr(0x12345678);
    int ones = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ones += static_cast<int>(lfsr.stepBit());
    EXPECT_NEAR(ones, n / 2, n / 50);
}

TEST(GaussianClt, ApproximatelyStandardNormal)
{
    GaussianClt gen(42);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        const double g = gen.sample();
        sum += g;
        sum_sq += g * g;
        // CLT of 4 uniforms is bounded: |g| <= 2/sqrt(1/3) ~ 3.47.
        ASSERT_LE(std::fabs(g), 3.5);
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.06);
}

TEST(GaussianClt, ScaledSample)
{
    GaussianClt gen(9);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += gen.sample(100.0, 15.0);
    EXPECT_NEAR(sum / n, 100.0, 1.0);
}

} // namespace
} // namespace neuro
