// Tests for the serving runtime: micro-batcher timing/coalescing,
// admission control, deadline expiry, shutdown draining, SLO-driven
// fallback, registry round trips, and the determinism contract — a
// fixed request trace yields bit-identical predictions at any worker
// count, including strip-kernel vs scalar-path agreement for the MLP
// batch kernel.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "neuro/common/parallel.h"
#include "neuro/common/rng.h"
#include "neuro/common/serialize.h"
#include "neuro/mlp/mlp.h"
#include "neuro/serve/backend.h"
#include "neuro/serve/queue.h"
#include "neuro/serve/registry.h"
#include "neuro/serve/server.h"

namespace neuro {
namespace {

using namespace std::chrono_literals;

/** Restores the ambient thread count when a test body returns. */
class ThreadCountGuard
{
  public:
    explicit ThreadCountGuard(std::size_t n)
        : saved_(parallelThreadCount())
    {
        setParallelThreadCount(n);
    }
    ~ThreadCountGuard() { setParallelThreadCount(saved_); }

  private:
    std::size_t saved_;
};

/** Open/close latch shared by every session of a GatedBackend. */
struct Gate
{
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            open = true;
        }
        cv.notify_all();
    }

    void
    await()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return open; });
    }
};

/**
 * Deterministic test backend: classify() = (pixels[0] + streamSeed)
 * mod numClasses. Optionally blocks each classification on a Gate
 * (to hold the dispatcher mid-batch) or sleeps (to inflate latency
 * for SLO tests).
 */
class StubBackend final : public serve::InferenceBackend
{
  public:
    StubBackend(Gate *gate = nullptr,
                std::chrono::microseconds delay = 0us, int bias = 0)
        : gate_(gate), delay_(delay), bias_(bias)
    {
    }

    serve::BackendKind
    kind() const override
    {
        return serve::BackendKind::Mlp;
    }
    std::size_t inputSize() const override { return 4; }
    int numClasses() const override { return 16; }
    std::unique_ptr<serve::BackendSession>
    newSession() const override
    {
        return std::make_unique<Session>(*this);
    }

    std::atomic<uint64_t> classified{0};

  private:
    class Session final : public serve::BackendSession
    {
      public:
        explicit Session(const StubBackend &owner) : owner_(owner) {}

        int
        classify(const uint8_t *pixels, std::size_t /*numPixels*/,
                 uint64_t streamSeed) override
        {
            if (owner_.gate_ != nullptr)
                const_cast<StubBackend &>(owner_).gate_->await();
            if (owner_.delay_ > 0us)
                std::this_thread::sleep_for(owner_.delay_);
            const_cast<StubBackend &>(owner_).classified.fetch_add(1);
            return static_cast<int>(
                       (pixels[0] + streamSeed +
                        static_cast<uint64_t>(owner_.bias_)) %
                       static_cast<uint64_t>(owner_.numClasses()));
        }

      private:
        const StubBackend &owner_;
    };

    Gate *gate_;
    std::chrono::microseconds delay_;
    int bias_;
};

serve::InferenceRequest
stubRequest(uint64_t id)
{
    serve::InferenceRequest r;
    r.id = id;
    r.pixels = {static_cast<uint8_t>(id & 0xff), 0, 0, 0};
    r.streamSeed = id * 7;
    return r;
}

// ----------------------------------------------------------- histogram

TEST(LatencyHistogram, PercentilesBoundSamplesWithin12Percent)
{
    serve::LatencyHistogram h;
    for (int v = 1; v <= 100; ++v)
        h.record(static_cast<double>(v));
    EXPECT_EQ(h.count(), 100u);
    const double p50 = h.percentile(0.50);
    const double p99 = h.percentile(0.99);
    EXPECT_GE(p50, 50.0);
    EXPECT_LE(p50, 50.0 * 1.125 + 1.0);
    EXPECT_GE(p99, 99.0);
    EXPECT_LE(p99, 99.0 * 1.125 + 1.0);
    EXPECT_GE(h.maxMicros(), 100.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(LatencyHistogram, SummaryMatchesPercentiles)
{
    serve::LatencyHistogram h;
    for (int v = 0; v < 1000; ++v)
        h.record(static_cast<double>(v % 97));
    const serve::LatencyHistogram::Summary s = h.summary();
    EXPECT_EQ(s.count, 1000u);
    EXPECT_DOUBLE_EQ(s.p50Us, h.percentile(0.50));
    EXPECT_DOUBLE_EQ(s.p95Us, h.percentile(0.95));
    EXPECT_DOUBLE_EQ(s.p99Us, h.percentile(0.99));
}

// -------------------------------------------------------- microbatcher

TEST(MicroBatcher, IdleTimeoutReturnsEmptyBatch)
{
    serve::RequestQueue queue(8);
    serve::MicroBatcher batcher(queue, {4, 200});
    const auto t0 = serve::ServeClock::now();
    const std::vector<serve::PendingRequest> batch =
        batcher.nextBatch(/*idleTimeoutMicros=*/2000);
    const auto elapsed = serve::ServeClock::now() - t0;
    EXPECT_TRUE(batch.empty());
    EXPECT_GE(elapsed, 1ms); // waited for the idle timer...
    EXPECT_LT(elapsed, 2s);  // ...but not forever.
}

TEST(MicroBatcher, CoalescesBacklogUpToMaxBatch)
{
    serve::RequestQueue queue(16);
    serve::MicroBatcher batcher(queue, {3, 200});
    for (uint64_t id = 0; id < 5; ++id) {
        serve::PendingRequest pending;
        pending.request = stubRequest(id);
        ASSERT_TRUE(queue.push(std::move(pending)));
    }
    std::vector<serve::PendingRequest> first = batcher.nextBatch(0);
    std::vector<serve::PendingRequest> second = batcher.nextBatch(0);
    ASSERT_EQ(first.size(), 3u);
    ASSERT_EQ(second.size(), 2u);
    // FIFO order is what makes closed-loop traces reproducible.
    EXPECT_EQ(first[0].request.id, 0u);
    EXPECT_EQ(second[0].request.id, 3u);
}

TEST(MicroBatcher, EarliestDeadlineCapsTheFillWait)
{
    serve::RequestQueue queue(8);
    // A very long fill wait: only the request deadline can cut it
    // short.
    serve::MicroBatcher batcher(queue, {8, 5'000'000});
    serve::PendingRequest pending;
    pending.request = stubRequest(1);
    pending.request.deadline = serve::ServeClock::now() + 5ms;
    ASSERT_TRUE(queue.push(std::move(pending)));
    const auto t0 = serve::ServeClock::now();
    const std::vector<serve::PendingRequest> batch =
        batcher.nextBatch(-1);
    const auto elapsed = serve::ServeClock::now() - t0;
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_LT(elapsed, 2s); // returned at the deadline, not maxWait.
}

TEST(RequestQueue, RejectsWhenFullOrClosed)
{
    serve::RequestQueue queue(2);
    serve::PendingRequest a, b, c;
    EXPECT_TRUE(queue.push(std::move(a)));
    EXPECT_TRUE(queue.push(std::move(b)));
    EXPECT_FALSE(queue.push(std::move(c))); // full.
    queue.close();
    serve::PendingRequest d;
    EXPECT_FALSE(queue.push(std::move(d))); // closed.
    EXPECT_TRUE(queue.closed());
    EXPECT_EQ(queue.size(), 2u); // still drainable after close().
}

// ------------------------------------------------------------- server

TEST(InferenceServer, RejectsWhenQueueFull)
{
    ThreadCountGuard guard(1);
    Gate gate;
    auto backend = std::make_shared<StubBackend>(&gate);
    serve::ServeConfig sc;
    sc.queueCapacity = 2;
    sc.batch.maxBatch = 1;
    sc.batch.maxWaitMicros = 0;
    serve::InferenceServer server(backend, sc);

    // First request is dequeued by the dispatcher and parks on the
    // gate; the next two fill the queue; the fourth must bounce.
    std::vector<std::future<serve::InferenceResult>> futures;
    futures.push_back(server.submit(stubRequest(0)));
    while (server.queueDepth() > 0)
        std::this_thread::sleep_for(100us);
    futures.push_back(server.submit(stubRequest(1)));
    futures.push_back(server.submit(stubRequest(2)));
    std::future<serve::InferenceResult> rejected =
        server.submit(stubRequest(3));
    ASSERT_EQ(rejected.wait_for(0s), std::future_status::ready);
    EXPECT_EQ(rejected.get().status, serve::RequestStatus::Rejected);

    gate.release();
    server.stop();
    for (std::future<serve::InferenceResult> &f : futures)
        EXPECT_EQ(f.get().status, serve::RequestStatus::Ok);
    const serve::ServeCounters c = server.counters();
    EXPECT_EQ(c.rejected, 1u);
    EXPECT_EQ(c.completed, 3u);
}

TEST(InferenceServer, ExpiredAtDequeueIsNotClassified)
{
    ThreadCountGuard guard(1);
    Gate gate;
    auto backend = std::make_shared<StubBackend>(&gate);
    serve::ServeConfig sc;
    sc.batch.maxBatch = 1;
    sc.batch.maxWaitMicros = 0;
    serve::InferenceServer server(backend, sc);

    std::future<serve::InferenceResult> first =
        server.submit(stubRequest(0));
    while (server.queueDepth() > 0)
        std::this_thread::sleep_for(100us);
    // Queued behind the gated batch with an already-past deadline:
    // by the time the dispatcher dequeues it, it must expire without
    // touching the backend.
    serve::InferenceRequest late = stubRequest(1);
    late.deadline = serve::ServeClock::now() - 1ms;
    std::future<serve::InferenceResult> expired =
        server.submit(std::move(late));

    gate.release();
    server.stop();
    EXPECT_EQ(first.get().status, serve::RequestStatus::Ok);
    const serve::InferenceResult r = expired.get();
    EXPECT_EQ(r.status, serve::RequestStatus::Expired);
    EXPECT_EQ(r.classIndex, -1);
    EXPECT_EQ(server.counters().expired, 1u);
    EXPECT_EQ(backend->classified.load(), 1u);
}

TEST(InferenceServer, StopDrainsEverythingInFlight)
{
    ThreadCountGuard guard(1);
    Gate gate;
    auto backend = std::make_shared<StubBackend>(&gate);
    serve::ServeConfig sc;
    sc.batch.maxBatch = 2;
    sc.batch.maxWaitMicros = 50;
    serve::InferenceServer server(backend, sc);

    std::vector<std::future<serve::InferenceResult>> futures;
    for (uint64_t id = 0; id < 7; ++id)
        futures.push_back(server.submit(stubRequest(id)));

    // Open the gate while stop() is closing the queue: every admitted
    // request must still be classified and fulfilled.
    std::thread releaser([&] {
        std::this_thread::sleep_for(20ms);
        gate.release();
    });
    server.stop();
    releaser.join();
    for (uint64_t id = 0; id < futures.size(); ++id) {
        const serve::InferenceResult r = futures[id].get();
        EXPECT_EQ(r.status, serve::RequestStatus::Ok);
        EXPECT_EQ(r.classIndex,
                  static_cast<int>((stubRequest(id).pixels[0] +
                                    stubRequest(id).streamSeed) %
                                   16));
    }
    EXPECT_EQ(server.counters().completed, 7u);
    // stop() is idempotent, and a stopped server rejects immediately.
    server.stop();
    std::future<serve::InferenceResult> afterStop =
        server.submit(stubRequest(99));
    EXPECT_EQ(afterStop.get().status, serve::RequestStatus::Rejected);
}

TEST(InferenceServer, StageLatenciesDecomposeTotal)
{
    ThreadCountGuard guard(1);
    serve::InferenceServer::resetStageMetrics();
    auto backend =
        std::make_shared<StubBackend>(nullptr, /*delay=*/200us);
    serve::ServeConfig sc;
    sc.batch.maxBatch = 4;
    sc.batch.maxWaitMicros = 100;
    serve::InferenceServer server(backend, sc);

    constexpr uint64_t kRequests = 32;
    std::vector<std::future<serve::InferenceResult>> futures;
    for (uint64_t id = 0; id < kRequests; ++id)
        futures.push_back(server.submit(stubRequest(id)));

    double stageSum = 0.0;
    double totalSum = 0.0;
    for (auto &f : futures) {
        const serve::InferenceResult r = f.get();
        ASSERT_EQ(r.status, serve::RequestStatus::Ok);
        // Each per-stage component is non-negative and the three
        // stages partition the request's total wall time.
        EXPECT_GE(r.queueMicros, 0.0);
        EXPECT_GE(r.batchMicros, 0.0);
        EXPECT_GE(r.computeMicros, 0.0);
        stageSum += r.queueMicros + r.batchMicros + r.computeMicros;
        totalSum += r.totalMicros;
    }
    server.stop();
    // Stage timestamps come from the same clock reads that produce
    // totalMicros, so the decomposition is tight, not approximate.
    EXPECT_NEAR(stageSum, totalSum, 1e-3 * totalSum + 1.0);

    // The registry-backed stage histograms saw every completion.
    for (serve::Stage stage : {serve::Stage::Queue, serve::Stage::Batch,
                               serve::Stage::Compute})
        EXPECT_EQ(server.stageLatency(stage).count(), kRequests);
    // Compute includes the backend's 200us delay; the p50 must too.
    EXPECT_GE(server.stageLatency(serve::Stage::Compute).percentile(0.5),
              200.0);
}

TEST(InferenceServer, SloDegradesToFallbackAndRecovers)
{
    ThreadCountGuard guard(1);
    // Primary is slow enough to blow a 200us p99 SLO; the fallback
    // answers with a distinct bias so served-by-fallback is visible in
    // the classifications themselves.
    auto primary = std::make_shared<StubBackend>(nullptr, 1000us);
    auto fallback = std::make_shared<StubBackend>(nullptr, 0us, 5);
    serve::ServeConfig sc;
    sc.batch.maxBatch = 4;
    sc.sloP99Micros = 200;
    sc.sloWindow = 8;
    sc.enableFallback = true;
    serve::InferenceServer server(primary, sc, fallback);

    uint64_t id = 0;
    auto runWave = [&](int n) {
        std::vector<std::future<serve::InferenceResult>> futures;
        for (int i = 0; i < n; ++i)
            futures.push_back(server.submit(stubRequest(id++)));
        std::vector<serve::InferenceResult> results;
        for (std::future<serve::InferenceResult> &f : futures)
            results.push_back(f.get());
        return results;
    };

    // First waves hit the slow primary until a full SLO window blows
    // the budget and flips the server into degraded mode.
    for (int wave = 0; wave < 8 && !server.degraded(); ++wave)
        runWave(8);
    ASSERT_TRUE(server.degraded());

    // Degraded traffic goes to the fallback (bias 5 shows in answers).
    // The client observes completions (set_value) a moment before the
    // dispatcher's SLO bookkeeping for that batch runs, so degraded()
    // can flip between waves: a wave of fast fallback answers restores
    // the primary, the next all-primary wave re-degrades. Drive waves
    // until one lands entirely inside a degraded stretch.
    bool fullyFallback = false;
    for (int wave = 0; wave < 32 && !fullyFallback; ++wave) {
        const std::vector<serve::InferenceResult> degradedWave =
            runWave(8);
        fullyFallback = true;
        for (const serve::InferenceResult &r : degradedWave)
            fullyFallback = fullyFallback && r.usedFallback;
    }
    EXPECT_TRUE(fullyFallback);
    EXPECT_GT(server.counters().fallbacks, 0u);

    // Fast fallback windows bring p99 back under 80% of the SLO and
    // the server restores the primary.
    for (int wave = 0; wave < 16 && server.degraded(); ++wave)
        runWave(8);
    EXPECT_FALSE(server.degraded());
    server.stop();
}

// -------------------------------------------------------- determinism

/** Random-pixel requests for a net with @p inputs pixels. */
std::vector<serve::InferenceRequest>
randomTrace(std::size_t count, std::size_t inputs, uint64_t seed)
{
    Rng rng(seed);
    std::vector<serve::InferenceRequest> trace(count);
    for (std::size_t i = 0; i < count; ++i) {
        trace[i].id = i;
        trace[i].streamSeed = deriveStreamSeed(seed, i);
        trace[i].pixels.resize(inputs);
        for (uint8_t &p : trace[i].pixels)
            p = static_cast<uint8_t>(rng.uniformInt(256));
    }
    return trace;
}

std::vector<int>
serveTrace(const std::shared_ptr<serve::InferenceBackend> &backend,
           const std::vector<serve::InferenceRequest> &trace,
           std::size_t maxBatch)
{
    serve::ServeConfig sc;
    sc.queueCapacity = trace.size();
    sc.batch.maxBatch = maxBatch;
    sc.batch.maxWaitMicros = 200;
    serve::InferenceServer server(backend, sc);
    std::vector<std::future<serve::InferenceResult>> futures;
    for (const serve::InferenceRequest &r : trace)
        futures.push_back(server.submit(r));
    std::vector<int> classes;
    for (std::future<serve::InferenceResult> &f : futures) {
        const serve::InferenceResult r = f.get();
        EXPECT_EQ(r.status, serve::RequestStatus::Ok);
        classes.push_back(r.classIndex);
    }
    server.stop();
    return classes;
}

/**
 * The core serving determinism contract: an odd-shaped MLP (column
 * and row-block tails, batch sizes that leave sub-strip remainders)
 * classifies a fixed trace identically through the scalar session
 * path, the batch kernel, and the full server at 1 and 4 workers.
 */
TEST(ServeDeterminism, BitIdenticalAcrossWorkersAndBatching)
{
    mlp::MlpConfig config;
    config.layerSizes = {37, 13, 7};
    Rng rng(11);
    mlp::Mlp net(config, rng); // untrained weights are fine here.
    const std::shared_ptr<serve::InferenceBackend> backend =
        serve::makeMlpBackend(std::move(net));

    const std::vector<serve::InferenceRequest> trace =
        randomTrace(203, backend->inputSize(), 42);

    // Scalar reference: one session, one sample at a time.
    std::vector<int> reference;
    {
        std::unique_ptr<serve::BackendSession> session =
            backend->newSession();
        for (const serve::InferenceRequest &r : trace)
            reference.push_back(session->classify(
                r.pixels.data(), r.pixels.size(), r.streamSeed));
    }

    // Batch kernel, including a sub-strip tail (203 = 12*16 + 11).
    {
        std::unique_ptr<serve::BackendSession> session =
            backend->newSession();
        std::vector<const uint8_t *> pixels;
        std::vector<uint64_t> seeds;
        for (const serve::InferenceRequest &r : trace) {
            pixels.push_back(r.pixels.data());
            seeds.push_back(r.streamSeed);
        }
        std::vector<int> batched(trace.size(), -1);
        session->classifyBatch(pixels.data(), seeds.data(),
                               trace.size(), backend->inputSize(),
                               batched.data());
        EXPECT_EQ(batched, reference);
    }

    // Full server, every worker count and an awkward batch size.
    for (const std::size_t workers : {1u, 4u}) {
        ThreadCountGuard guard(workers);
        EXPECT_EQ(serveTrace(backend, trace, 24), reference)
            << "diverged at " << workers << " workers";
        EXPECT_EQ(serveTrace(backend, trace, 1), reference)
            << "diverged unbatched at " << workers << " workers";
    }
}

// ----------------------------------------------------------- registry

TEST(ModelRegistry, MlpRoundTripRegistersFloatAndQuantized)
{
    mlp::MlpConfig config;
    config.layerSizes = {16, 8, 4};
    Rng rng(5);
    mlp::Mlp net(config, rng);

    const std::string path =
        testing::TempDir() + "serve_registry_mlp.neuro";
    {
        Archive archive;
        net.serialize(archive);
        ASSERT_TRUE(archive.save(path));
    }

    serve::ModelRegistry registry;
    std::string error;
    const std::vector<std::string> names =
        registry.loadFile("digits", path, &error);
    ASSERT_EQ(names.size(), 2u) << error;
    EXPECT_EQ(registry.names(),
              (std::vector<std::string>{"digits", "digits.q8"}));

    const std::shared_ptr<serve::InferenceBackend> f =
        registry.find("digits");
    const std::shared_ptr<serve::InferenceBackend> q =
        registry.find("digits.q8");
    ASSERT_NE(f, nullptr);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(f->kind(), serve::BackendKind::Mlp);
    EXPECT_EQ(q->kind(), serve::BackendKind::QuantizedMlp);
    EXPECT_EQ(f->inputSize(), 16u);
    EXPECT_EQ(q->inputSize(), 16u);
    EXPECT_EQ(f->numClasses(), 4);

    // The loaded backend actually serves.
    std::vector<uint8_t> pixels(16, 100);
    std::unique_ptr<serve::BackendSession> session = f->newSession();
    const int cls = session->classify(pixels.data(), pixels.size(), 0);
    EXPECT_GE(cls, 0);
    EXPECT_LT(cls, 4);

    EXPECT_TRUE(registry.remove("digits.q8"));
    EXPECT_FALSE(registry.remove("digits.q8"));
    EXPECT_EQ(registry.find("digits.q8"), nullptr);
    std::remove(path.c_str());
}

TEST(ModelRegistry, LoadErrorsAreDescriptiveNotFatal)
{
    serve::ModelRegistry registry;
    std::string error;

    EXPECT_TRUE(
        registry.loadFile("nope", "/does/not/exist.neuro", &error)
            .empty());
    EXPECT_FALSE(error.empty());

    // A file that is not an archive at all: the serializer's magic
    // check must surface as an error string.
    const std::string garbagePath =
        testing::TempDir() + "serve_registry_garbage.neuro";
    {
        std::ofstream out(garbagePath, std::ios::binary);
        out << "this is not a checkpoint";
    }
    error.clear();
    EXPECT_TRUE(
        registry.loadFile("garbage", garbagePath, &error).empty());
    EXPECT_FALSE(error.empty());
    EXPECT_TRUE(registry.names().empty());
    std::remove(garbagePath.c_str());

    // An archive with no model records: recognized format, no model.
    const std::string emptyPath =
        testing::TempDir() + "serve_registry_empty.neuro";
    {
        Archive archive;
        std::vector<float> stray{1.0f, 2.0f};
        archive.putFloats("unrelated.values", stray);
        ASSERT_TRUE(archive.save(emptyPath));
    }
    error.clear();
    EXPECT_TRUE(
        registry.loadFile("empty", emptyPath, &error).empty());
    EXPECT_NE(error.find("no recognized model"), std::string::npos);
    std::remove(emptyPath.c_str());
}

} // namespace
} // namespace neuro
