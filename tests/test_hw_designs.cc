// Tests for the composed accelerator designs: Table 4 (expanded),
// Table 7 (folded, parameterized over all 15 rows) and Table 9 (STDP).

#include <gtest/gtest.h>

#include <string>

#include "neuro/core/compare.h"
#include "neuro/core/reports.h"
#include "neuro/hw/expanded.h"
#include "neuro/hw/folded.h"
#include "neuro/hw/stdp_hw.h"

namespace neuro {
namespace hw {
namespace {

const MlpTopology kMlp{784, 100, 10};
const SnnTopology kSnn{784, 300};

TEST(ExpandedDesigns, Table4TotalsWithinTolerance)
{
    const Design mlp = buildExpandedMlp(kMlp);
    EXPECT_NEAR(mlp.areaNoSramMm2(), core::paper::kExpandedMlpNoSramMm2,
                core::paper::kExpandedMlpNoSramMm2 * 0.05);
    EXPECT_NEAR(mlp.totalAreaMm2(), core::paper::kExpandedMlpTotalMm2,
                core::paper::kExpandedMlpTotalMm2 * 0.05);

    const Design wot = buildExpandedSnnWot(kSnn);
    EXPECT_NEAR(wot.areaNoSramMm2(),
                core::paper::kExpandedSnnWotNoSramMm2,
                core::paper::kExpandedSnnWotNoSramMm2 * 0.08);
    const Design wt = buildExpandedSnnWt(kSnn);
    EXPECT_NEAR(wt.areaNoSramMm2(), core::paper::kExpandedSnnWtNoSramMm2,
                core::paper::kExpandedSnnWtNoSramMm2 * 0.08);
}

TEST(ExpandedDesigns, SmallMlpVariantMatchesTable4)
{
    MlpTopology small = kMlp;
    small.hidden = 15;
    const Design mlp = buildExpandedMlp(small);
    EXPECT_NEAR(mlp.areaNoSramMm2(),
                core::paper::kExpandedMlp15NoSramMm2,
                core::paper::kExpandedMlp15NoSramMm2 * 0.08);
}

TEST(ExpandedDesigns, ExpandedMlpLargerThanSnnButFasterPerImage)
{
    // The paper's headline: expanded MLP is ~2x the SNN's area (the
    // multipliers), yet processes an image in fewer cycles.
    const Design mlp = buildExpandedMlp(kMlp);
    const Design wot = buildExpandedSnnWot(kSnn);
    EXPECT_GT(mlp.totalAreaMm2(), 1.5 * wot.totalAreaMm2());
}

/** Table 7, one test per published row. */
class Table7Test : public ::testing::TestWithParam<int>
{
};

TEST_P(Table7Test, RowWithinModelTolerance)
{
    const auto rows = core::makeTable7Rows(kMlp, kSnn);
    const auto &mine = rows[static_cast<std::size_t>(GetParam())];
    const auto &published =
        core::paper::kTable7[static_cast<std::size_t>(GetParam())];
    EXPECT_EQ(mine.type, published.type);
    EXPECT_EQ(mine.ni, published.ni);

    // Area: the composition model tracks layout within ~25%.
    EXPECT_NEAR(mine.totalAreaMm2, published.totalAreaMm2,
                published.totalAreaMm2 * 0.25)
        << mine.type << " ni=" << mine.ni;
    // Delay within ~25%.
    EXPECT_NEAR(mine.delayNs, published.delayNs,
                published.delayNs * 0.25)
        << mine.type << " ni=" << mine.ni;
    // Cycle counts derive from the schedule: within a few cycles of the
    // published counts (pipeline-boundary bookkeeping differs).
    EXPECT_NEAR(static_cast<double>(mine.cycles),
                published.cyclesPerImage,
                published.cyclesPerImage * 0.02 + 4.0)
        << mine.type << " ni=" << mine.ni;
    // Energy: same order of magnitude and within 2.2x for every folded
    // row (the expanded SNNwt row is a documented outlier).
    if (!(mine.type == "SNNwt" && mine.ni == "expanded")) {
        EXPECT_GT(mine.energyUj, published.energyUj / 2.5)
            << mine.type << " ni=" << mine.ni;
        EXPECT_LT(mine.energyUj, published.energyUj * 2.5)
            << mine.type << " ni=" << mine.ni;
    }
}

INSTANTIATE_TEST_SUITE_P(Rows, Table7Test,
                         ::testing::Range(0, 15));

TEST(FoldedDesigns, MlpCheaperThanSnnWotAtEveryFold)
{
    // Section 4.3.3: the folded MLP is ~2.5x smaller and ~2.4x more
    // energy efficient than the folded SNNwot.
    for (std::size_t ni : {1UL, 4UL, 8UL, 16UL}) {
        const Design mlp = buildFoldedMlp(kMlp, ni);
        const Design wot = buildFoldedSnnWot(kSnn, ni);
        EXPECT_GT(wot.totalAreaMm2(), 1.8 * mlp.totalAreaMm2())
            << "ni=" << ni;
        EXPECT_GT(wot.totalEnergyPerImageUj(),
                  1.5 * mlp.totalEnergyPerImageUj())
            << "ni=" << ni;
    }
}

TEST(FoldedDesigns, SnnWtNotTimeCompetitive)
{
    // Section 4.3.2: SNNwt must emulate the 500 ms presentation, so it
    // is orders of magnitude slower than SNNwot.
    const Design wt = buildFoldedSnnWt(kSnn, 16);
    const Design wot = buildFoldedSnnWot(kSnn, 16);
    EXPECT_GT(wt.timePerImageNs(), 100.0 * wot.timePerImageNs());
}

TEST(FoldedDesigns, CycleFormulas)
{
    EXPECT_EQ(foldedSnnWotCycles(kSnn, 1), 791u);
    EXPECT_EQ(foldedSnnWotCycles(kSnn, 4), 203u);
    EXPECT_EQ(foldedSnnWotCycles(kSnn, 8), 105u);
    EXPECT_EQ(foldedSnnWotCycles(kSnn, 16), 56u);
    EXPECT_EQ(foldedSnnWtCycles(kSnn, 1, 500), 791u * 500u);
    // MLP: ceil(784/ni) + ceil(100/ni) + 2 (paper: 882..57, within 4).
    EXPECT_NEAR(static_cast<double>(foldedMlpCycles(kMlp, 1)), 882, 4);
    EXPECT_EQ(foldedMlpCycles(kMlp, 4), 223u);
    EXPECT_EQ(foldedMlpCycles(kMlp, 8), 113u);
    EXPECT_NEAR(static_cast<double>(foldedMlpCycles(kMlp, 16)), 57, 1);
}

TEST(FoldedDesigns, AreaGrowsWithNi)
{
    double prev = 0.0;
    for (std::size_t ni : {1UL, 2UL, 4UL, 8UL, 16UL, 32UL}) {
        const double area = buildFoldedMlp(kMlp, ni).areaNoSramMm2();
        EXPECT_GT(area, prev);
        prev = area;
    }
}

/** Table 9 rows: STDP learning overhead. */
class Table9Test : public ::testing::TestWithParam<int>
{
};

TEST_P(Table9Test, StdpDesignMatchesPublishedRow)
{
    const auto &row =
        core::paper::kTable9[static_cast<std::size_t>(GetParam())];
    const Design design = buildFoldedSnnStdp(kSnn, row.ni);
    EXPECT_NEAR(design.areaNoSramMm2(), row.areaNoSramMm2,
                row.areaNoSramMm2 * 0.2);
    EXPECT_NEAR(design.totalAreaMm2(), row.totalAreaMm2,
                row.totalAreaMm2 * 0.2);
    EXPECT_NEAR(design.clockNs(), row.delayNs, row.delayNs * 0.25);
}

INSTANTIATE_TEST_SUITE_P(Rows, Table9Test, ::testing::Values(0, 1, 2, 3));

TEST(StdpOverhead, WithinPaperRange)
{
    // Paper: total area 1.34x..1.93x, delay <= +7%, energy 1.02x..1.5x.
    for (std::size_t ni : {1UL, 4UL, 8UL, 16UL}) {
        const StdpOverhead overhead = stdpOverhead(kSnn, ni);
        EXPECT_GT(overhead.areaRatio, 1.1) << "ni=" << ni;
        EXPECT_LT(overhead.areaRatio, 2.3) << "ni=" << ni;
        EXPECT_GT(overhead.delayRatio, 1.0) << "ni=" << ni;
        EXPECT_LT(overhead.delayRatio, 1.10) << "ni=" << ni;
        EXPECT_GT(overhead.energyRatio, 1.0) << "ni=" << ni;
        EXPECT_LT(overhead.energyRatio, 1.8) << "ni=" << ni;
    }
}

TEST(Design, PrintProducesBreakdown)
{
    const Design mlp = buildFoldedMlp(kMlp, 4);
    std::ostringstream os;
    mlp.print(os);
    EXPECT_NE(os.str().find("multiplier"), std::string::npos);
    EXPECT_NE(os.str().find("SRAM"), std::string::npos);
}

} // namespace
} // namespace hw
} // namespace neuro
