// Tests for homeostatic threshold adaptation.

#include <gtest/gtest.h>

#include <vector>

#include "neuro/snn/homeostasis.h"
#include "neuro/snn/lif.h"

namespace neuro {
namespace snn {
namespace {

HomeostasisConfig
makeConfig()
{
    HomeostasisConfig config;
    config.epochMs = 1000;
    config.activityTarget = 5.0;
    config.rate = 0.1;
    config.downFactor = 1.0;
    config.minThreshold = 1.0;
    return config;
}

TEST(Homeostasis, NoAdjustmentBeforeEpochEnds)
{
    Homeostasis homeo(makeConfig());
    std::vector<LifNeuron> neurons(2);
    neurons[0].threshold = 100.0;
    neurons[0].fireCount = 50;
    EXPECT_EQ(homeo.advance(999, neurons.data(), 2), 0);
    EXPECT_DOUBLE_EQ(neurons[0].threshold, 100.0);
}

TEST(Homeostasis, OveractiveNeuronPunished)
{
    Homeostasis homeo(makeConfig());
    std::vector<LifNeuron> neurons(1);
    neurons[0].threshold = 100.0;
    neurons[0].fireCount = 50; // above target of 5.
    EXPECT_EQ(homeo.advance(1000, neurons.data(), 1), 1);
    EXPECT_DOUBLE_EQ(neurons[0].threshold, 110.0);
    EXPECT_EQ(neurons[0].fireCount, 0u) << "counter must reset";
}

TEST(Homeostasis, SilentNeuronPromoted)
{
    Homeostasis homeo(makeConfig());
    std::vector<LifNeuron> neurons(1);
    neurons[0].threshold = 100.0;
    neurons[0].fireCount = 0;
    homeo.advance(1000, neurons.data(), 1);
    EXPECT_DOUBLE_EQ(neurons[0].threshold, 90.0);
}

TEST(Homeostasis, ExactTargetUnchanged)
{
    Homeostasis homeo(makeConfig());
    std::vector<LifNeuron> neurons(1);
    neurons[0].threshold = 100.0;
    neurons[0].fireCount = 5;
    homeo.advance(1000, neurons.data(), 1);
    EXPECT_DOUBLE_EQ(neurons[0].threshold, 100.0);
}

TEST(Homeostasis, DownFactorSlowsDecay)
{
    HomeostasisConfig config = makeConfig();
    config.downFactor = 0.25;
    Homeostasis homeo(config);
    std::vector<LifNeuron> neurons(1);
    neurons[0].threshold = 100.0;
    neurons[0].fireCount = 0;
    homeo.advance(1000, neurons.data(), 1);
    EXPECT_DOUBLE_EQ(neurons[0].threshold, 97.5);
}

TEST(Homeostasis, FloorHolds)
{
    HomeostasisConfig config = makeConfig();
    config.minThreshold = 50.0;
    Homeostasis homeo(config);
    std::vector<LifNeuron> neurons(1);
    neurons[0].threshold = 51.0;
    neurons[0].fireCount = 0;
    for (int i = 0; i < 20; ++i)
        homeo.advance(1000, neurons.data(), 1);
    EXPECT_DOUBLE_EQ(neurons[0].threshold, 50.0);
}

TEST(Homeostasis, MultipleEpochBoundariesInOneAdvance)
{
    Homeostasis homeo(makeConfig());
    std::vector<LifNeuron> neurons(1);
    neurons[0].threshold = 100.0;
    neurons[0].fireCount = 50;
    // 2.5 epochs: two boundaries processed (the second epoch sees the
    // reset counter, below target).
    EXPECT_EQ(homeo.advance(2500, neurons.data(), 1), 2);
    EXPECT_EQ(homeo.epochsProcessed(), 2);
    EXPECT_NEAR(neurons[0].threshold, 110.0 * 0.9, 1e-9);
}

TEST(Homeostasis, DisabledIsNoOp)
{
    HomeostasisConfig config = makeConfig();
    config.enabled = false;
    Homeostasis homeo(config);
    std::vector<LifNeuron> neurons(1);
    neurons[0].threshold = 100.0;
    neurons[0].fireCount = 99;
    EXPECT_EQ(homeo.advance(10000, neurons.data(), 1), 0);
    EXPECT_DOUBLE_EQ(neurons[0].threshold, 100.0);
}

} // namespace
} // namespace snn
} // namespace neuro
