// Tests for the spike coding schemes (rate and temporal).

#include <gtest/gtest.h>

#include <numeric>

#include "neuro/common/rng.h"
#include "neuro/snn/coding.h"

namespace neuro {
namespace snn {
namespace {

CodingConfig
makeConfig(CodingScheme scheme)
{
    CodingConfig config;
    config.scheme = scheme;
    config.periodMs = 500;
    config.minIntervalMs = 50;
    return config;
}

class RateCodingTest : public ::testing::TestWithParam<CodingScheme>
{
};

TEST_P(RateCodingTest, RateProportionalToLuminance)
{
    const SpikeEncoder encoder(makeConfig(GetParam()));
    Rng rng(1);
    // Pixel 0 dark, pixel 1 mid, pixel 2 bright; average over trials.
    const uint8_t pixels[3] = {0, 128, 255};
    double counts[3] = {0, 0, 0};
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
        const SpikeTrainGrid grid = encoder.encode(pixels, 3, rng);
        const auto c = grid.pixelCounts(3);
        for (int i = 0; i < 3; ++i)
            counts[i] += c[static_cast<std::size_t>(i)];
    }
    EXPECT_DOUBLE_EQ(counts[0], 0.0) << "zero luminance must not spike";
    EXPECT_GT(counts[2], counts[1] * 1.5);
    // Bright pixel: ~10 spikes per 500 ms window.
    EXPECT_NEAR(counts[2] / trials, 10.0, 2.5);
    EXPECT_NEAR(counts[1] / trials, 5.0, 2.0);
}

TEST_P(RateCodingTest, SpikesWithinWindow)
{
    const SpikeEncoder encoder(makeConfig(GetParam()));
    Rng rng(2);
    const uint8_t pixels[2] = {255, 200};
    const SpikeTrainGrid grid = encoder.encode(pixels, 2, rng);
    EXPECT_EQ(grid.ticks.size(), 500u);
    EXPECT_GT(grid.totalSpikes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, RateCodingTest,
                         ::testing::Values(CodingScheme::RatePoisson,
                                           CodingScheme::RateGaussian,
                                           CodingScheme::RateRegular,
                                           CodingScheme::RateBernoulli));

TEST(TemporalCoding, TimeToFirstSpikeOrdersByLuminance)
{
    const SpikeEncoder encoder(
        makeConfig(CodingScheme::TimeToFirstSpike));
    Rng rng(3);
    const uint8_t pixels[4] = {255, 128, 10, 0};
    const SpikeTrainGrid grid = encoder.encode(pixels, 4, rng);
    // Exactly one spike per nonzero pixel.
    EXPECT_EQ(grid.totalSpikes(), 3u);
    int first_time[4] = {-1, -1, -1, -1};
    for (std::size_t t = 0; t < grid.ticks.size(); ++t)
        for (uint16_t p : grid.ticks[t])
            if (first_time[p] < 0)
                first_time[p] = static_cast<int>(t);
    EXPECT_LT(first_time[0], first_time[1]);
    EXPECT_LT(first_time[1], first_time[2]);
    EXPECT_EQ(first_time[3], -1);
}

TEST(TemporalCoding, RankOrderIsOnePerRank)
{
    const SpikeEncoder encoder(makeConfig(CodingScheme::RankOrder));
    Rng rng(4);
    const uint8_t pixels[5] = {50, 250, 0, 150, 100};
    const SpikeTrainGrid grid = encoder.encode(pixels, 5, rng);
    EXPECT_EQ(grid.totalSpikes(), 4u); // zero pixel silent.
    // Collect spike order.
    std::vector<uint16_t> order;
    for (const auto &tick : grid.ticks)
        for (uint16_t p : tick)
            order.push_back(p);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 1); // brightest first.
    EXPECT_EQ(order[1], 3);
    EXPECT_EQ(order[2], 4);
    EXPECT_EQ(order[3], 0);
}

TEST(SpikeCount, FourBitDeterministicConversion)
{
    const SpikeEncoder encoder(makeConfig(CodingScheme::RatePoisson));
    EXPECT_EQ(encoder.spikeCount(0), 0);
    EXPECT_EQ(encoder.spikeCount(255), 10);
    EXPECT_EQ(encoder.maxSpikeCount(), 10);
    // Monotone in luminance, fits in 4 bits.
    int prev = -1;
    for (int p = 0; p <= 255; ++p) {
        const int c = encoder.spikeCount(static_cast<uint8_t>(p));
        ASSERT_GE(c, prev);
        ASSERT_LT(c, 16);
        prev = c;
    }
}

TEST(SpikeCount, MatchesMeanOfStochasticTrain)
{
    const SpikeEncoder encoder(makeConfig(CodingScheme::RatePoisson));
    Rng rng(5);
    const uint8_t pixels[1] = {200};
    double total = 0.0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
        const SpikeTrainGrid grid = encoder.encode(pixels, 1, rng);
        total += static_cast<double>(grid.totalSpikes());
    }
    EXPECT_NEAR(total / trials,
                static_cast<double>(encoder.spikeCount(200)), 1.2);
}

TEST(Coding, SchemeNamesAreDistinct)
{
    EXPECT_NE(codingSchemeName(CodingScheme::RatePoisson),
              codingSchemeName(CodingScheme::RateGaussian));
    EXPECT_NE(codingSchemeName(CodingScheme::TimeToFirstSpike),
              codingSchemeName(CodingScheme::RankOrder));
}

} // namespace
} // namespace snn
} // namespace neuro
