// Tests for the bit-packed spike grid: packed/dense round trips across
// every coding scheme, popcount-based counts, and the event index.

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/snn/coding.h"
#include "neuro/snn/spike_bits.h"

namespace neuro {
namespace snn {
namespace {

CodingConfig
makeConfig(CodingScheme scheme)
{
    CodingConfig config;
    config.scheme = scheme;
    config.periodMs = 500;
    config.minIntervalMs = 50;
    return config;
}

std::vector<uint8_t>
rampPixels(std::size_t n)
{
    std::vector<uint8_t> pixels(n);
    for (std::size_t p = 0; p < n; ++p)
        pixels[p] = static_cast<uint8_t>((p * 37) % 256);
    pixels[0] = 0;   // zero-luminance pixel must stay silent.
    pixels[1] = 255; // full-luminance pixel.
    return pixels;
}

class PackedRoundTripTest : public ::testing::TestWithParam<CodingScheme>
{
};

TEST_P(PackedRoundTripTest, PackedExpandsToDenseEncoding)
{
    const SpikeEncoder encoder(makeConfig(GetParam()));
    const auto pixels = rampPixels(64);

    // Same seed for both encoders: the packed encoder must consume the
    // Rng identically and produce the identical train.
    Rng dense_rng(11);
    SpikeTrainGrid dense;
    encoder.encodeInto(pixels.data(), pixels.size(), dense_rng, dense);

    Rng packed_rng(11);
    PackedSpikeGrid packed;
    encoder.encodePacked(pixels.data(), pixels.size(), packed_rng, packed);

    SpikeTrainGrid expanded;
    packed.toDense(expanded);
    ASSERT_EQ(expanded.ticks.size(), dense.ticks.size());
    for (std::size_t t = 0; t < dense.ticks.size(); ++t)
        EXPECT_EQ(expanded.ticks[t], dense.ticks[t]) << "tick " << t;
    EXPECT_EQ(packed.totalSpikes(), dense.totalSpikes());

    // And both Rngs ended in the same state.
    EXPECT_EQ(dense_rng.next(), packed_rng.next());
}

TEST_P(PackedRoundTripTest, PopcountMatchesDenseCounts)
{
    const SpikeEncoder encoder(makeConfig(GetParam()));
    const auto pixels = rampPixels(64);
    Rng rng(12);
    PackedSpikeGrid packed;
    encoder.encodePacked(pixels.data(), pixels.size(), rng, packed);

    SpikeTrainGrid dense;
    packed.toDense(dense);
    const auto dense_counts = dense.pixelCounts(pixels.size());
    std::vector<uint8_t> packed_counts;
    packed.pixelCounts(packed_counts);
    ASSERT_EQ(packed_counts.size(), dense_counts.size());
    for (std::size_t p = 0; p < dense_counts.size(); ++p) {
        EXPECT_EQ(packed_counts[p], dense_counts[p]) << "pixel " << p;
        EXPECT_EQ(packed.countFor(p),
                  static_cast<std::size_t>(dense_counts[p]));
    }
    EXPECT_EQ(packed_counts[0], 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, PackedRoundTripTest,
    ::testing::Values(CodingScheme::RatePoisson, CodingScheme::RateGaussian,
                      CodingScheme::RateRegular, CodingScheme::RateBernoulli,
                      CodingScheme::TimeToFirstSpike,
                      CodingScheme::RankOrder));

TEST(PackedSpikeGrid, EdgeTicksRoundTrip)
{
    // First and last tick of the window are representable and survive
    // the round trip (off-by-one guards on the 64-bit word packing).
    PackedSpikeGrid grid(8, 500);
    EXPECT_TRUE(grid.addSpike(0, 3));
    EXPECT_TRUE(grid.addSpike(499, 3));
    EXPECT_TRUE(grid.addSpike(499, 7));
    grid.finalize();

    EXPECT_TRUE(grid.spikeAt(0, 3));
    EXPECT_TRUE(grid.spikeAt(499, 3));
    EXPECT_TRUE(grid.spikeAt(499, 7));
    EXPECT_FALSE(grid.spikeAt(1, 3));
    EXPECT_EQ(grid.countFor(3), 2u);
    EXPECT_EQ(grid.activeTickCount(), 2u);
    ASSERT_EQ(grid.activeTicks().size(), 2u);
    EXPECT_EQ(grid.activeTicks().front(), 0);
    EXPECT_EQ(grid.activeTicks().back(), 499);

    SpikeTrainGrid dense;
    grid.toDense(dense);
    ASSERT_EQ(dense.ticks.size(), 500u);
    EXPECT_EQ(dense.ticks[0], (std::vector<uint16_t>{3}));
    EXPECT_EQ(dense.ticks[499], (std::vector<uint16_t>{3, 7}));
}

TEST(PackedSpikeGrid, DuplicateSpikesMerge)
{
    PackedSpikeGrid grid(4, 100);
    EXPECT_TRUE(grid.addSpike(10, 2));
    EXPECT_FALSE(grid.addSpike(10, 2)) << "duplicate must merge";
    grid.finalize();
    EXPECT_EQ(grid.totalSpikes(), 1u);
    EXPECT_EQ(grid.countFor(2), 1u);
}

TEST(PackedSpikeGrid, EventIndexPreservesEmissionOrder)
{
    // Inputs emitted out of numeric order within a tick must come back
    // in emission order (the drive sums are ordered float reductions).
    PackedSpikeGrid grid(8, 100);
    grid.addSpike(5, 6);
    grid.addSpike(5, 1);
    grid.addSpike(5, 4);
    grid.addSpike(2, 7);
    grid.finalize();

    ASSERT_EQ(grid.activeTickCount(), 2u);
    EXPECT_EQ(grid.activeTicks()[0], 2);
    EXPECT_EQ(grid.activeTicks()[1], 5);
    std::size_t count = 0;
    const uint16_t *inputs = grid.inputsAt(1, &count);
    ASSERT_EQ(count, 3u);
    EXPECT_EQ(inputs[0], 6);
    EXPECT_EQ(inputs[1], 1);
    EXPECT_EQ(inputs[2], 4);
}

TEST(PackedSpikeGrid, FromDenseRoundTrip)
{
    SpikeTrainGrid dense;
    dense.ticks.resize(50);
    dense.ticks[0] = {2, 0};
    dense.ticks[49] = {1};
    PackedSpikeGrid packed;
    packed.fromDense(dense, 4);
    SpikeTrainGrid back;
    packed.toDense(back);
    ASSERT_EQ(back.ticks.size(), dense.ticks.size());
    for (std::size_t t = 0; t < dense.ticks.size(); ++t)
        EXPECT_EQ(back.ticks[t], dense.ticks[t]);
}

TEST(PackedSpikeGrid, EmptyGridHasNoActiveTicks)
{
    PackedSpikeGrid grid(16, 500);
    grid.finalize();
    EXPECT_EQ(grid.totalSpikes(), 0u);
    EXPECT_EQ(grid.activeTickCount(), 0u);
    SpikeTrainGrid dense;
    grid.toDense(dense);
    EXPECT_EQ(dense.ticks.size(), 500u);
    for (const auto &tick : dense.ticks)
        EXPECT_TRUE(tick.empty());
}

} // namespace
} // namespace snn
} // namespace neuro
