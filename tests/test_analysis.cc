// Tests for the spike-train and selectivity analysis utilities.

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/snn/analysis.h"

namespace neuro {
namespace snn {
namespace {

SpikeTrainGrid
gridFrom(int period, const std::vector<std::pair<int, uint16_t>> &spikes)
{
    SpikeTrainGrid grid;
    grid.ticks.resize(static_cast<std::size_t>(period));
    for (const auto &[t, p] : spikes)
        grid.ticks[static_cast<std::size_t>(t)].push_back(p);
    return grid;
}

TEST(IsiDistribution, MeasuresIntervals)
{
    // Pixel 0 spikes at 10, 60, 160: ISIs 50 and 100.
    const auto grid = gridFrom(200, {{10, 0}, {60, 0}, {160, 0}});
    const Distribution isi = isiDistribution(grid, 1);
    EXPECT_EQ(isi.count(), 2u);
    EXPECT_DOUBLE_EQ(isi.mean(), 75.0);
    EXPECT_DOUBLE_EQ(isi.min(), 50.0);
    EXPECT_DOUBLE_EQ(isi.max(), 100.0);
}

TEST(IsiDistribution, PoissonEncoderMatchesRate)
{
    CodingConfig config;
    const SpikeEncoder encoder(config);
    Rng rng(1);
    const uint8_t pixels[1] = {255}; // mean interval 50 ms.
    Distribution pooled;
    for (int trial = 0; trial < 100; ++trial) {
        const auto grid = encoder.encode(pixels, 1, rng);
        const Distribution isi = isiDistribution(grid, 1);
        // Distribution has no per-sample access; pool the trial means.
        if (isi.count() > 0)
            pooled.sample(isi.mean());
    }
    EXPECT_NEAR(pooled.mean(), 50.0, 8.0);
}

TEST(FiringRateMap, ConvertsToHz)
{
    // 5 spikes on pixel 1 over a 500 ms window -> 10 Hz.
    const auto grid = gridFrom(
        500, {{0, 1}, {100, 1}, {200, 1}, {300, 1}, {400, 1}});
    const auto rates = firingRateMap(grid, 2);
    EXPECT_DOUBLE_EQ(rates[0], 0.0);
    EXPECT_DOUBLE_EQ(rates[1], 10.0);
}

TEST(NeuronSelectivity, DetectsPerfectSpecialists)
{
    // Two neurons keyed to disjoint pixels; two classes lighting
    // exactly those pixels.
    SnnConfig config;
    config.numInputs = 4;
    config.numNeurons = 2;
    Rng rng(2);
    SnnNetwork net(config, rng);
    net.weights().fill(0.0f);
    net.weights()(0, 0) = 100.0f;
    net.weights()(0, 1) = 100.0f;
    net.weights()(1, 2) = 100.0f;
    net.weights()(1, 3) = 100.0f;

    datasets::Dataset data("toy", 4, 1, 2);
    for (int i = 0; i < 20; ++i) {
        datasets::Sample s;
        s.label = i % 2;
        s.pixels = s.label == 0
            ? std::vector<uint8_t>{255, 255, 0, 0}
            : std::vector<uint8_t>{0, 0, 255, 255};
        data.add(std::move(s));
    }

    const SpikeEncoder encoder(config.coding);
    const auto report = neuronSelectivity(net, data, encoder);
    EXPECT_EQ(report.preferredClass[0], 0);
    EXPECT_EQ(report.preferredClass[1], 1);
    EXPECT_GT(report.selectivity[0], 0.95);
    EXPECT_GT(report.selectivity[1], 0.95);
}

TEST(NeuronSelectivity, UntunedNeuronScoresLow)
{
    SnnConfig config;
    config.numInputs = 4;
    config.numNeurons = 1;
    Rng rng(3);
    SnnNetwork net(config, rng);
    net.weights().fill(50.0f); // responds equally to everything.

    datasets::Dataset data("toy", 4, 1, 2);
    for (int i = 0; i < 20; ++i) {
        datasets::Sample s;
        s.label = i % 2;
        s.pixels = s.label == 0
            ? std::vector<uint8_t>{200, 200, 0, 0}
            : std::vector<uint8_t>{0, 0, 200, 200};
        data.add(std::move(s));
    }
    const SpikeEncoder encoder(config.coding);
    const auto report = neuronSelectivity(net, data, encoder);
    EXPECT_LT(report.selectivity[0], 0.1);
}

} // namespace
} // namespace snn
} // namespace neuro
