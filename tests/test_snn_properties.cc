// Property-style tests over the SNN presentation dynamics: invariants
// that must hold for every coding scheme and for randomized inputs.

#include <gtest/gtest.h>

#include <numeric>

#include "neuro/common/rng.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/snn/network.h"

namespace neuro {
namespace snn {
namespace {

SnnConfig
propConfig(CodingScheme scheme)
{
    SnnConfig config;
    config.numInputs = 784;
    config.numNeurons = 15;
    config.coding.scheme = scheme;
    config.coding.periodMs = 250;
    config.coding.minIntervalMs = 25;
    config.tLeakMs = 250.0;
    config.initialThreshold = 20000.0;
    config.homeostasis.enabled = false;
    return config;
}

class PresentationInvariantTest
    : public ::testing::TestWithParam<CodingScheme>
{
};

TEST_P(PresentationInvariantTest, HoldsForRandomImages)
{
    const SnnConfig config = propConfig(GetParam());
    Rng rng(11);
    SnnNetwork net(config, rng);
    const SpikeEncoder encoder(config.coding);
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 8;
    opt.testSize = 1;
    const auto split = datasets::makeSynthDigits(opt);

    Rng spike_rng(13);
    for (std::size_t i = 0; i < split.train.size(); ++i) {
        const auto grid = encoder.encode(split.train[i].pixels.data(),
                                         784, spike_rng);
        const auto result = net.presentImage(grid, /*learn=*/false);

        // 1. Every input spike is accounted for.
        ASSERT_EQ(result.inputSpikeCount, grid.totalSpikes());
        // 2. Per-neuron output spikes sum to the total.
        const std::size_t per_neuron_sum = std::accumulate(
            result.spikeCountPerNeuron.begin(),
            result.spikeCountPerNeuron.end(), std::size_t{0});
        ASSERT_EQ(per_neuron_sum, result.outputSpikeCount);
        // 3. First spike is consistent with the output count.
        if (result.outputSpikeCount > 0) {
            ASSERT_GE(result.firstSpikeNeuron, 0);
            ASSERT_LT(result.firstSpikeNeuron, 15);
            ASSERT_GE(result.firstSpikeTimeMs, 0);
            ASSERT_LT(result.firstSpikeTimeMs,
                      config.coding.periodMs);
        } else {
            ASSERT_EQ(result.firstSpikeNeuron, -1);
        }
        // 4. Max-potential readout always resolves.
        ASSERT_GE(result.maxPotentialNeuron, 0);
        ASSERT_LT(result.maxPotentialNeuron, 15);
        // 5. Refractory bound: a neuron cannot fire more often than
        //    the window allows.
        for (uint16_t count : result.spikeCountPerNeuron) {
            ASSERT_LE(count,
                      config.coding.periodMs / config.tRefracMs + 1);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Schemes, PresentationInvariantTest,
                         ::testing::Values(CodingScheme::RatePoisson,
                                           CodingScheme::RateGaussian,
                                           CodingScheme::RateRegular,
                                           CodingScheme::RateBernoulli,
                                           CodingScheme::TimeToFirstSpike,
                                           CodingScheme::RankOrder));

TEST(PresentationInvariants, LearningOnlyChangesFiringNeuronsWeights)
{
    SnnConfig config = propConfig(CodingScheme::RatePoisson);
    Rng rng(17);
    SnnNetwork net(config, rng);
    const Matrix before = net.weights();
    const SpikeEncoder encoder(config.coding);
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 1;
    opt.testSize = 1;
    const auto split = datasets::makeSynthDigits(opt);
    Rng spike_rng(19);
    const auto grid =
        encoder.encode(split.train[0].pixels.data(), 784, spike_rng);
    const auto result = net.presentImage(grid, /*learn=*/true);

    for (std::size_t n = 0; n < config.numNeurons; ++n) {
        const bool fired = result.spikeCountPerNeuron[n] > 0;
        bool changed = false;
        for (std::size_t p = 0; p < config.numInputs; ++p) {
            if (net.weights()(n, p) != before(n, p)) {
                changed = true;
                break;
            }
        }
        ASSERT_EQ(changed, fired)
            << "neuron " << n << (fired ? " fired but did not learn"
                                        : " learned without firing");
    }
}

TEST(PresentationInvariants, NoLearningLeavesWeightsUntouched)
{
    SnnConfig config = propConfig(CodingScheme::RatePoisson);
    Rng rng(23);
    SnnNetwork net(config, rng);
    const std::vector<float> before = net.weights().data();
    const SpikeEncoder encoder(config.coding);
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 3;
    opt.testSize = 1;
    const auto split = datasets::makeSynthDigits(opt);
    Rng spike_rng(29);
    for (std::size_t i = 0; i < split.train.size(); ++i) {
        const auto grid = encoder.encode(split.train[i].pixels.data(),
                                         784, spike_rng);
        net.presentImage(grid, /*learn=*/false);
    }
    EXPECT_EQ(net.weights().data(), before);
}

TEST(PresentationInvariants, WeightsStayInStdpBounds)
{
    SnnConfig config = propConfig(CodingScheme::RatePoisson);
    config.stdp.ltpIncrement = 40.0f;
    config.stdp.ltdDecrement = 40.0f;
    Rng rng(31);
    SnnNetwork net(config, rng);
    const SpikeEncoder encoder(config.coding);
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 15;
    opt.testSize = 1;
    const auto split = datasets::makeSynthDigits(opt);
    Rng spike_rng(37);
    for (std::size_t i = 0; i < split.train.size(); ++i) {
        const auto grid = encoder.encode(split.train[i].pixels.data(),
                                         784, spike_rng);
        net.presentImage(grid, /*learn=*/true);
    }
    for (float w : net.weights().data()) {
        ASSERT_GE(w, config.stdp.wMin);
        ASSERT_LE(w, config.stdp.wMax);
    }
}

} // namespace
} // namespace snn
} // namespace neuro
