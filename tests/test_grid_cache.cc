// Tests for the encoded-grid cache: hit/miss accounting, LRU eviction
// under the byte budget, and eviction safety of handed-out grids.

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/snn/coding.h"
#include "neuro/snn/grid_cache.h"

namespace neuro {
namespace snn {
namespace {

PackedSpikeGrid
makeGrid(uint16_t input, int spikes)
{
    PackedSpikeGrid grid(64, 500);
    for (int t = 0; t < spikes; ++t)
        grid.addSpike(t * 7 % 500, input);
    grid.finalize();
    return grid;
}

GridKey
makeKey(uint64_t index)
{
    GridKey key;
    key.sampleIndex = index;
    key.streamSeed = deriveStreamSeed(42, index);
    key.pixelHash = 0x1234;
    key.codingHash = 0x5678;
    return key;
}

TEST(GridCache, MissThenHit)
{
    GridCache cache;
    const GridKey key = makeKey(0);
    EXPECT_EQ(cache.find(key), nullptr);
    const auto inserted = cache.insert(key, makeGrid(3, 5));
    ASSERT_NE(inserted, nullptr);
    const auto found = cache.find(key);
    EXPECT_EQ(found.get(), inserted.get()) << "same resident grid";
    const GridCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
}

TEST(GridCache, DistinctKeysDistinctEntries)
{
    GridCache cache;
    cache.insert(makeKey(0), makeGrid(1, 3));
    cache.insert(makeKey(1), makeGrid(2, 3));
    // Same index, different stream seed: a different key.
    GridKey other = makeKey(0);
    other.streamSeed ^= 1;
    EXPECT_EQ(cache.find(other), nullptr);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(GridCache, LruEvictionAtBudget)
{
    // Budget sized for roughly two grids: inserting a third must evict
    // the least-recently-used one.
    const std::size_t grid_bytes = makeGrid(0, 5).bytes();
    GridCache cache(grid_bytes * 2 + grid_bytes / 2);

    cache.insert(makeKey(0), makeGrid(0, 5));
    cache.insert(makeKey(1), makeGrid(1, 5));
    EXPECT_EQ(cache.stats().entries, 2u);

    // Touch key 0 so key 1 becomes the LRU victim.
    EXPECT_NE(cache.find(makeKey(0)), nullptr);
    cache.insert(makeKey(2), makeGrid(2, 5));

    const GridCacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_LE(stats.bytes, cache.budgetBytes());
    EXPECT_NE(cache.find(makeKey(0)), nullptr) << "recently used survives";
    EXPECT_EQ(cache.find(makeKey(1)), nullptr) << "LRU entry evicted";
    EXPECT_NE(cache.find(makeKey(2)), nullptr);
}

TEST(GridCache, EvictedGridSurvivesViaSharedPtr)
{
    const std::size_t grid_bytes = makeGrid(0, 5).bytes();
    GridCache cache(grid_bytes + grid_bytes / 2); // room for one.
    const auto held = cache.insert(makeKey(0), makeGrid(9, 5));
    cache.insert(makeKey(1), makeGrid(1, 5)); // evicts key 0.
    EXPECT_EQ(cache.find(makeKey(0)), nullptr);
    // The handed-out pointer still reads valid data.
    EXPECT_EQ(held->countFor(9), 5u);
}

TEST(GridCache, OversizedGridStillCaches)
{
    GridCache cache(1); // absurdly small budget.
    cache.insert(makeKey(0), makeGrid(0, 5));
    EXPECT_EQ(cache.stats().entries, 1u)
        << "the newest entry is always kept";
    cache.insert(makeKey(1), makeGrid(1, 5));
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.find(makeKey(0)), nullptr);
    EXPECT_NE(cache.find(makeKey(1)), nullptr);
}

TEST(GridCache, RacingInsertKeepsFirstGrid)
{
    GridCache cache;
    const GridKey key = makeKey(0);
    const auto first = cache.insert(key, makeGrid(3, 5));
    const auto second = cache.insert(key, makeGrid(3, 5));
    EXPECT_EQ(first.get(), second.get())
        << "second insert of a key returns the resident grid";
    EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(GridCache, ClearDropsEntriesKeepsCounters)
{
    GridCache cache;
    cache.insert(makeKey(0), makeGrid(0, 5));
    cache.find(makeKey(0));
    cache.clear();
    const GridCacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.bytes, 0u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(cache.find(makeKey(0)), nullptr);
}

TEST(GridCache, CodingConfigHashSeparatesSchemes)
{
    CodingConfig a;
    CodingConfig b = a;
    b.scheme = CodingScheme::RankOrder;
    CodingConfig c = a;
    c.periodMs = 250;
    EXPECT_NE(codingConfigHash(a), codingConfigHash(b));
    EXPECT_NE(codingConfigHash(a), codingConfigHash(c));
    EXPECT_EQ(codingConfigHash(a), codingConfigHash(CodingConfig{}));
}

} // namespace
} // namespace snn
} // namespace neuro
