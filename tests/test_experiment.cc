// Tests for the experiment plumbing: workload construction and the
// paper-default configurations (Table 1).

#include <gtest/gtest.h>

#include "neuro/core/experiment.h"
#include "neuro/core/reports.h"

namespace neuro {
namespace core {
namespace {

TEST(Workloads, MnistGeometryAndTopology)
{
    const Workload w = makeMnistWorkload(300, 100, 1);
    EXPECT_EQ(w.data.train.width(), 28u);
    EXPECT_EQ(w.data.train.numClasses(), 10);
    EXPECT_EQ(w.mlpTopo.inputs, 784u);
    EXPECT_EQ(w.mlpTopo.hidden, 100u);
    EXPECT_EQ(w.snnTopo.neurons, 300u);
}

TEST(Workloads, Mpeg7UsesPaperTopologies)
{
    const Workload w = makeMpeg7Workload(200, 80, 2);
    EXPECT_EQ(w.mlpTopo.hidden, 15u);  // Section 4.5: 28x28-15-10.
    EXPECT_EQ(w.snnTopo.neurons, 90u); // Section 4.5: 28x28-90.
    EXPECT_EQ(w.data.train.inputSize(), 784u);
}

TEST(Workloads, SadUsesPaperTopologies)
{
    const Workload w = makeSadWorkload(200, 80, 3);
    EXPECT_EQ(w.data.train.width(), 13u);
    EXPECT_EQ(w.data.train.height(), 13u);
    EXPECT_EQ(w.mlpTopo.hidden, 60u);  // Section 4.5: 13x13-60-10.
    EXPECT_EQ(w.snnTopo.neurons, 90u);
}

TEST(Defaults, MlpConfigMatchesTable1)
{
    const Workload w = makeMnistWorkload(300, 100, 1);
    const mlp::MlpConfig config = defaultMlpConfig(w);
    ASSERT_EQ(config.layerSizes.size(), 3u);
    EXPECT_EQ(config.layerSizes[1], 100u);
    const mlp::TrainConfig train = defaultMlpTrainConfig();
    EXPECT_FLOAT_EQ(train.learningRate, 0.3f); // Table 1 eta.
}

TEST(Defaults, SnnConfigMatchesTable1Timing)
{
    const Workload w = makeMnistWorkload(300, 100, 1);
    const snn::SnnConfig config = defaultSnnConfig(w, 300);
    EXPECT_EQ(config.coding.periodMs, 500);     // Tperiod.
    EXPECT_EQ(config.coding.minIntervalMs, 50); // 20 Hz at max lum.
    EXPECT_DOUBLE_EQ(config.tLeakMs, 500.0);    // Tleak.
    EXPECT_EQ(config.tInhibitMs, 5);            // Tinhibit.
    EXPECT_EQ(config.tRefracMs, 20);            // Trefrac.
    EXPECT_EQ(config.stdp.ltpWindowMs, 45);     // TLTP.
    EXPECT_GT(config.initialThreshold, 1000.0);
}

TEST(Defaults, StdpStepScalesWithTrainingSetSize)
{
    const Workload w = makeMnistWorkload(300, 100, 1);
    const snn::SnnConfig small = defaultSnnConfig(w, 1000);
    const snn::SnnConfig large = defaultSnnConfig(w, 60000);
    EXPECT_GT(small.stdp.ltpIncrement, large.stdp.ltpIncrement);
    EXPECT_FLOAT_EQ(large.stdp.ltpIncrement, 1.0f); // paper's unit step.
}

TEST(PaperReferences, Table7HasFifteenConsistentRows)
{
    // Totals must equal noSRAM + the Table 6 SRAM areas for folded rows
    // (sanity of the transcribed constants).
    for (int i = 0; i < 15; ++i) {
        const auto &row = paper::kTable7[i];
        EXPECT_GE(row.totalAreaMm2, row.areaNoSramMm2);
        EXPECT_GT(row.delayNs, 0.0);
    }
    EXPECT_NEAR(paper::kTable7[0].totalAreaMm2 -
                    paper::kTable7[0].areaNoSramMm2,
                paper::kTable6[0].snnAreaMm2, 0.01);
}

TEST(Reports, VsPaperFormatsDelta)
{
    const std::string s = vsPaper(110.0, 100.0, 1);
    EXPECT_NE(s.find("paper 100.0"), std::string::npos);
    EXPECT_NE(s.find("+10%"), std::string::npos);
}

} // namespace
} // namespace core
} // namespace neuro
