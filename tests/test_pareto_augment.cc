// Tests for the Pareto design-space analysis and dataset augmentation.

#include <gtest/gtest.h>

#include <algorithm>

#include "neuro/common/rng.h"
#include "neuro/datasets/augment.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/hw/pareto.h"

namespace neuro {
namespace {

TEST(Pareto, DominationRules)
{
    hw::DesignPoint a{"a", 1.0, 1.0, 1.0};
    hw::DesignPoint b{"b", 2.0, 2.0, 2.0};
    hw::DesignPoint c{"c", 1.0, 1.0, 1.0};
    hw::DesignPoint d{"d", 0.5, 3.0, 1.0};
    EXPECT_TRUE(a.dominates(b));
    EXPECT_FALSE(b.dominates(a));
    EXPECT_FALSE(a.dominates(c)) << "equal points do not dominate";
    EXPECT_FALSE(a.dominates(d)) << "trade-off points do not dominate";
    EXPECT_FALSE(d.dominates(a));
}

TEST(Pareto, FrontierOnSyntheticPoints)
{
    std::vector<hw::DesignPoint> points = {
        {"cheap-slow", 1.0, 1.0, 100.0},
        {"mid", 5.0, 0.5, 10.0},
        {"fast-big", 50.0, 0.2, 1.0},
        {"dominated", 6.0, 0.6, 11.0}, // worse than "mid" everywhere.
        {"duplicate", 1.0, 1.0, 100.0},
    };
    const auto frontier = hw::paretoFrontier(points);
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_EQ(points[frontier[0]].label, "cheap-slow");
    EXPECT_EQ(points[frontier[1]].label, "mid");
    EXPECT_EQ(points[frontier[2]].label, "fast-big");
}

TEST(Pareto, RealDesignSpaceHasFoldedMlpOnFrontier)
{
    const auto points =
        hw::enumerateDesigns({784, 100, 10}, {784, 300});
    const auto frontier = hw::paretoFrontier(points);
    ASSERT_FALSE(frontier.empty());
    // The cheapest frontier point is a folded MLP (Section 4.3.3), and
    // no timed SNNwt design survives.
    EXPECT_NE(points[frontier.front()].label.find("MLP"),
              std::string::npos);
    for (std::size_t idx : frontier) {
        EXPECT_EQ(points[idx].label.find("SNNwt"), std::string::npos)
            << points[idx].label;
    }
}

TEST(Augment, IdentityWarpPreservesImage)
{
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 1;
    opt.testSize = 1;
    const auto split = datasets::makeSynthDigits(opt);
    const auto &img = split.train[0].pixels;
    Rng rng(1);
    const auto warped = datasets::warpImage(img, 28, 28, 0.0f, 1.0f,
                                            0.0f, 0.0f, 0.0f, 0.0f, rng);
    EXPECT_EQ(warped, img);
}

TEST(Augment, TranslationMovesMass)
{
    std::vector<uint8_t> img(28 * 28, 0);
    img[14 * 28 + 14] = 255; // single bright pixel at the centre.
    Rng rng(2);
    const auto warped = datasets::warpImage(img, 28, 28, 0.0f, 1.0f,
                                            0.0f, 3.0f, 0.0f, 0.0f, rng);
    EXPECT_EQ(warped[14 * 28 + 17], 255) << "pixel should move +3 in x";
    EXPECT_EQ(warped[14 * 28 + 14], 0);
}

TEST(Augment, DatasetGrowsAndKeepsLabels)
{
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 20;
    opt.testSize = 1;
    const auto split = datasets::makeSynthDigits(opt);
    datasets::AugmentOptions aug;
    const auto bigger = datasets::augment(split.train, 2, aug, 9);
    EXPECT_EQ(bigger.size(), 60u);
    // Originals come first per sample; labels preserved on copies.
    for (std::size_t i = 0; i < split.train.size(); ++i) {
        EXPECT_EQ(bigger[i * 3].label, split.train[i].label);
        EXPECT_EQ(bigger[i * 3 + 1].label, split.train[i].label);
        EXPECT_EQ(bigger[i * 3 + 2].label, split.train[i].label);
        EXPECT_EQ(bigger[i * 3].pixels, split.train[i].pixels);
    }
}

TEST(Augment, DeterministicPerSeed)
{
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 5;
    opt.testSize = 1;
    const auto split = datasets::makeSynthDigits(opt);
    datasets::AugmentOptions aug;
    const auto a = datasets::augment(split.train, 1, aug, 42);
    const auto b = datasets::augment(split.train, 1, aug, 42);
    const auto c = datasets::augment(split.train, 1, aug, 43);
    ASSERT_EQ(a.size(), b.size());
    bool any_diff_c = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].pixels, b[i].pixels);
        if (a[i].pixels != c[i].pixels)
            any_diff_c = true;
    }
    EXPECT_TRUE(any_diff_c);
}

} // namespace
} // namespace neuro
