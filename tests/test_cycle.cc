// Tests for the cycle-level machinery: event queue, staggered pipeline
// and the folded schedule simulators (validated against the analytic
// cycle formulas of hw/folded.h).

#include <gtest/gtest.h>

#include <vector>

#include "neuro/cycle/event_queue.h"
#include "neuro/cycle/folded_mlp_sim.h"
#include "neuro/cycle/folded_snn_sim.h"
#include "neuro/cycle/pipeline.h"
#include "neuro/hw/folded.h"

namespace neuro {
namespace cycle {
namespace {

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue queue;
    std::vector<int64_t> fired;
    queue.schedule(30, [&](int64_t t) { fired.push_back(t); });
    queue.schedule(10, [&](int64_t t) { fired.push_back(t); });
    queue.schedule(20, [&](int64_t t) { fired.push_back(t); });
    queue.run();
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], 10);
    EXPECT_EQ(fired[1], 20);
    EXPECT_EQ(fired[2], 30);
    EXPECT_EQ(queue.now(), 30);
}

TEST(EventQueue, StableTieBreakByInsertionOrder)
{
    EventQueue queue;
    std::vector<int> fired;
    queue.schedule(5, [&](int64_t) { fired.push_back(1); });
    queue.schedule(5, [&](int64_t) { fired.push_back(2); });
    queue.run();
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue queue;
    int count = 0;
    std::function<void(int64_t)> reschedule = [&](int64_t t) {
        if (++count < 5)
            queue.schedule(t + 10, reschedule);
    };
    queue.schedule(0, reschedule);
    const uint64_t processed = queue.run();
    EXPECT_EQ(processed, 5u);
    EXPECT_EQ(queue.now(), 40);
}

TEST(EventQueue, HorizonStopsEarly)
{
    EventQueue queue;
    int count = 0;
    queue.schedule(10, [&](int64_t) { ++count; });
    queue.schedule(100, [&](int64_t) { ++count; });
    queue.run(50);
    EXPECT_EQ(count, 1);
    EXPECT_FALSE(queue.empty());
}

TEST(Pipeline, LatencyAndInitiationInterval)
{
    StaggeredPipeline pipe;
    pipe.addStage("hidden", 50);
    pipe.addStage("output", 8);
    EXPECT_EQ(pipe.latency(), 58u);
    EXPECT_EQ(pipe.initiationInterval(), 50u);
    EXPECT_EQ(pipe.totalCycles(1), 58u);
    EXPECT_EQ(pipe.totalCycles(10), 58u + 9 * 50u);
    EXPECT_EQ(pipe.totalCycles(0), 0u);
}

class FoldedMlpSimTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FoldedMlpSimTest, CyclesMatchAnalyticFormula)
{
    const hw::MlpTopology topo{784, 100, 10};
    const std::size_t ni = GetParam();
    const ScheduleStats stats = simulateFoldedMlp(topo, ni);
    EXPECT_EQ(stats.cycles, hw::foldedMlpCycles(topo, ni));
    // Every logical MAC happens exactly once (bias handled separately).
    EXPECT_EQ(stats.macs, 784u * 100 + 100 * 10);
    EXPECT_EQ(stats.activations, 110u);
    // Idle lanes only in ragged final chunks.
    if (784 % ni == 0 && 100 % ni == 0) {
        EXPECT_EQ(stats.idleLanes, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Folds, FoldedMlpSimTest,
                         ::testing::Values(1u, 3u, 4u, 8u, 16u, 32u));

class FoldedSnnWotSimTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FoldedSnnWotSimTest, CyclesMatchAnalyticFormula)
{
    const hw::SnnTopology topo{784, 300};
    const std::size_t ni = GetParam();
    const ScheduleStats stats = simulateFoldedSnnWot(topo, ni);
    EXPECT_EQ(stats.cycles, hw::foldedSnnWotCycles(topo, ni));
    EXPECT_EQ(stats.adds, 784u * 300);
    EXPECT_EQ(stats.maxOps, 299u);
}

INSTANTIATE_TEST_SUITE_P(Folds, FoldedSnnWotSimTest,
                         ::testing::Values(1u, 4u, 8u, 16u));

TEST(FoldedSnnWtSim, ActivityFollowsSpikes)
{
    const hw::SnnTopology topo{784, 300};
    // 10 steps: spikes only in the first two.
    std::vector<uint32_t> spikes(10, 0);
    spikes[0] = 100;
    spikes[1] = 50;
    const ScheduleStats stats = simulateFoldedSnnWt(topo, 4, spikes);
    // Schedule always scans all inputs...
    EXPECT_EQ(stats.cycles, 10u * ((784 + 3) / 4 + 7));
    // ...but integration energy is data-dependent (clock gating).
    EXPECT_EQ(stats.adds, (100u + 50u) * 300u);
}

TEST(FoldedSnnWtSim, SramTrafficIndependentOfActivity)
{
    const hw::SnnTopology topo{784, 300};
    const std::vector<uint32_t> quiet(5, 0);
    const std::vector<uint32_t> busy(5, 700);
    const auto a = simulateFoldedSnnWt(topo, 8, quiet);
    const auto b = simulateFoldedSnnWt(topo, 8, busy);
    EXPECT_EQ(a.sramWordReads, b.sramWordReads);
    EXPECT_LT(a.adds, b.adds);
}

} // namespace
} // namespace cycle
} // namespace neuro
