// Tests for the Archive container and the model save/load round trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "neuro/common/rng.h"
#include "neuro/common/serialize.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/mlp/backprop.h"
#include "neuro/snn/serialize.h"

namespace neuro {
namespace {

TEST(Archive, PutAndGet)
{
    Archive archive;
    archive.putFloats("w", {1.0f, 2.0f});
    archive.putInts("shape", {3, 4});
    archive.putScalar("eta", 0.25);
    EXPECT_TRUE(archive.has("w"));
    EXPECT_TRUE(archive.has("shape"));
    EXPECT_EQ(archive.floats("w")[1], 2.0f);
    EXPECT_EQ(archive.ints("shape")[0], 3);
    EXPECT_DOUBLE_EQ(archive.scalar("eta"), 0.25);
    EXPECT_FALSE(archive.has("missing"));
}

TEST(Archive, OverwriteChangesType)
{
    Archive archive;
    archive.putFloats("x", {1.0f});
    archive.putInts("x", {7});
    EXPECT_EQ(archive.ints("x")[0], 7);
    EXPECT_EQ(archive.size(), 1u);
}

TEST(Archive, FileRoundTrip)
{
    const std::string path = "/tmp/neuro_test_archive.ncmp";
    Archive archive;
    archive.putFloats("weights", {0.5f, -1.5f, 3.25f});
    archive.putInts("layers", {784, 100, 10});
    ASSERT_TRUE(archive.save(path));

    Archive loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.floats("weights"),
              (std::vector<float>{0.5f, -1.5f, 3.25f}));
    EXPECT_EQ(loaded.ints("layers"),
              (std::vector<int64_t>{784, 100, 10}));
    std::remove(path.c_str());
}

TEST(Archive, RejectsGarbageFile)
{
    const std::string path = "/tmp/neuro_test_garbage.ncmp";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("not an archive at all", f);
        std::fclose(f);
    }
    Archive archive;
    archive.putScalar("keep", 1.0);
    EXPECT_FALSE(archive.load(path));
    EXPECT_NE(archive.lastError().find("bad magic"), std::string::npos)
        << archive.lastError();
    EXPECT_TRUE(archive.has("keep")) << "failed load must not clobber";
    std::remove(path.c_str());
}

namespace {

/** Write a valid two-record archive to @p path; @return its size. */
long
writeValidArchive(const std::string &path)
{
    Archive archive;
    archive.putFloats("weights", std::vector<float>(64, 1.5f));
    archive.putInts("layers", {784, 100, 10});
    EXPECT_TRUE(archive.save(path));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    return size;
}

/** Overwrite one byte of the file at @p offset. */
void
patchByte(const std::string &path, long offset, char value)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(value, f);
    std::fclose(f);
}

} // namespace

TEST(Archive, MissingFileReportsError)
{
    Archive archive;
    EXPECT_FALSE(archive.load("/tmp/neuro_no_such_file.ncmp"));
    EXPECT_NE(archive.lastError().find("cannot open"),
              std::string::npos)
        << archive.lastError();
    // A later success clears the error.
    const std::string path = "/tmp/neuro_test_clear_error.ncmp";
    writeValidArchive(path);
    EXPECT_TRUE(archive.load(path));
    EXPECT_TRUE(archive.lastError().empty());
    std::remove(path.c_str());
}

TEST(Archive, UnsupportedVersionRejected)
{
    const std::string path = "/tmp/neuro_test_badversion.ncmp";
    writeValidArchive(path);
    patchByte(path, 4, 9); // version word follows the 4-byte magic.
    Archive archive;
    EXPECT_FALSE(archive.load(path));
    EXPECT_NE(archive.lastError().find("unsupported version"),
              std::string::npos)
        << archive.lastError();
    std::remove(path.c_str());
}

TEST(Archive, TruncatedPayloadRejected)
{
    const std::string path = "/tmp/neuro_test_truncated.ncmp";
    const long size = writeValidArchive(path);
    ASSERT_GT(size, 16);
    ASSERT_EQ(::truncate(path.c_str(),
                         static_cast<off_t>(size - 12)), 0);
    Archive archive;
    archive.putScalar("keep", 2.0);
    EXPECT_FALSE(archive.load(path));
    EXPECT_FALSE(archive.lastError().empty());
    EXPECT_TRUE(archive.has("keep")) << "failed load must not clobber";
    std::remove(path.c_str());
}

TEST(Archive, TruncatedHeaderRejected)
{
    const std::string path = "/tmp/neuro_test_shortheader.ncmp";
    writeValidArchive(path);
    ASSERT_EQ(::truncate(path.c_str(), 6), 0); // magic + half a version.
    Archive archive;
    EXPECT_FALSE(archive.load(path));
    EXPECT_NE(archive.lastError().find("truncated header"),
              std::string::npos)
        << archive.lastError();
    std::remove(path.c_str());
}

TEST(Archive, OversizedElementCountRejected)
{
    // A record claiming far more elements than the file holds must be
    // rejected by the size check, not attempted as an allocation.
    const std::string path = "/tmp/neuro_test_hugecount.ncmp";
    writeValidArchive(path);
    // The first record is "layers" (maps iterate float-then-int; the
    // float map holds "weights", written first): patch the low bytes
    // of its u64 element count, which sits after the 4-byte name
    // length + 7-byte name + 1-byte tag.
    const long countOffset = 4 + 4 + 4 + 4 + 7 + 1;
    patchByte(path, countOffset + 3, 0x7f); // ~2^30 elements.
    Archive archive;
    EXPECT_FALSE(archive.load(path));
    EXPECT_NE(archive.lastError().find("claims"), std::string::npos)
        << archive.lastError();
    std::remove(path.c_str());
}

TEST(Archive, UnknownTypeTagRejected)
{
    const std::string path = "/tmp/neuro_test_badtag.ncmp";
    writeValidArchive(path);
    const long tagOffset = 4 + 4 + 4 + 4 + 7; // tag byte of "weights".
    patchByte(path, tagOffset, 42);
    Archive archive;
    EXPECT_FALSE(archive.load(path));
    EXPECT_NE(archive.lastError().find("unknown type tag"),
              std::string::npos)
        << archive.lastError();
    std::remove(path.c_str());
}

TEST(MlpSerialize, RoundTripPreservesPredictions)
{
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 200;
    opt.testSize = 50;
    const datasets::Split split = datasets::makeSynthDigits(opt);
    mlp::MlpConfig config;
    config.layerSizes = {784, 12, 10};
    Rng rng(3);
    mlp::Mlp net(config, rng);
    mlp::TrainConfig train;
    train.epochs = 3;
    mlp::train(net, split.train, train);

    Archive archive;
    net.serialize(archive);
    auto restored = mlp::Mlp::deserialize(archive);
    ASSERT_TRUE(restored.has_value());

    std::vector<float> input(net.inputSize());
    for (std::size_t i = 0; i < split.test.size(); ++i) {
        split.test.normalized(i, input.data());
        ASSERT_EQ(net.predict(input.data()),
                  restored->predict(input.data()))
            << "prediction diverged at sample " << i;
    }
}

TEST(MlpSerialize, MissingRecordsRejected)
{
    Archive archive;
    archive.putInts("mlp.layers", {4, 2});
    EXPECT_FALSE(mlp::Mlp::deserialize(archive).has_value());
}

TEST(SnnSerialize, RoundTripPreservesForwardCounts)
{
    snn::SnnConfig config;
    config.numInputs = 16;
    config.numNeurons = 6;
    Rng rng(5);
    snn::SnnNetwork net(config, rng);
    const std::vector<int> labels = {0, 1, 2, 0, 1, 2};

    Archive archive;
    snn::saveSnn(net, labels, archive);
    auto restored = snn::loadSnn(archive);
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->labels, labels);
    EXPECT_EQ(restored->network.config().numNeurons, 6u);

    Rng probe(6);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<uint8_t> counts(16);
        for (auto &c : counts)
            c = static_cast<uint8_t>(probe.uniformInt(11));
        EXPECT_EQ(net.forwardCounts(counts.data()),
                  restored->network.forwardCounts(counts.data()));
    }
    // Thresholds restored too.
    for (std::size_t n = 0; n < 6; ++n) {
        EXPECT_FLOAT_EQ(
            static_cast<float>(net.thresholds()[n]),
            static_cast<float>(restored->network.thresholds()[n]));
    }
}

TEST(SnnSerialize, ShapeMismatchRejected)
{
    snn::SnnConfig config;
    config.numInputs = 8;
    config.numNeurons = 4;
    Rng rng(7);
    snn::SnnNetwork net(config, rng);
    Archive archive;
    snn::saveSnn(net, {0, 1, 2, 3}, archive);
    // Corrupt the weight record length.
    archive.putFloats("snn.weights", {1.0f, 2.0f});
    EXPECT_FALSE(snn::loadSnn(archive).has_value());
}

} // namespace
} // namespace neuro
