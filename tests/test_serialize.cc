// Tests for the Archive container and the model save/load round trips.

#include <gtest/gtest.h>

#include <cstdio>

#include "neuro/common/rng.h"
#include "neuro/common/serialize.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/mlp/backprop.h"
#include "neuro/snn/serialize.h"

namespace neuro {
namespace {

TEST(Archive, PutAndGet)
{
    Archive archive;
    archive.putFloats("w", {1.0f, 2.0f});
    archive.putInts("shape", {3, 4});
    archive.putScalar("eta", 0.25);
    EXPECT_TRUE(archive.has("w"));
    EXPECT_TRUE(archive.has("shape"));
    EXPECT_EQ(archive.floats("w")[1], 2.0f);
    EXPECT_EQ(archive.ints("shape")[0], 3);
    EXPECT_DOUBLE_EQ(archive.scalar("eta"), 0.25);
    EXPECT_FALSE(archive.has("missing"));
}

TEST(Archive, OverwriteChangesType)
{
    Archive archive;
    archive.putFloats("x", {1.0f});
    archive.putInts("x", {7});
    EXPECT_EQ(archive.ints("x")[0], 7);
    EXPECT_EQ(archive.size(), 1u);
}

TEST(Archive, FileRoundTrip)
{
    const std::string path = "/tmp/neuro_test_archive.ncmp";
    Archive archive;
    archive.putFloats("weights", {0.5f, -1.5f, 3.25f});
    archive.putInts("layers", {784, 100, 10});
    ASSERT_TRUE(archive.save(path));

    Archive loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.floats("weights"),
              (std::vector<float>{0.5f, -1.5f, 3.25f}));
    EXPECT_EQ(loaded.ints("layers"),
              (std::vector<int64_t>{784, 100, 10}));
    std::remove(path.c_str());
}

TEST(Archive, RejectsGarbageFile)
{
    const std::string path = "/tmp/neuro_test_garbage.ncmp";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("not an archive at all", f);
        std::fclose(f);
    }
    Archive archive;
    archive.putScalar("keep", 1.0);
    EXPECT_FALSE(archive.load(path));
    EXPECT_TRUE(archive.has("keep")) << "failed load must not clobber";
    std::remove(path.c_str());
}

TEST(MlpSerialize, RoundTripPreservesPredictions)
{
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 200;
    opt.testSize = 50;
    const datasets::Split split = datasets::makeSynthDigits(opt);
    mlp::MlpConfig config;
    config.layerSizes = {784, 12, 10};
    Rng rng(3);
    mlp::Mlp net(config, rng);
    mlp::TrainConfig train;
    train.epochs = 3;
    mlp::train(net, split.train, train);

    Archive archive;
    net.serialize(archive);
    auto restored = mlp::Mlp::deserialize(archive);
    ASSERT_TRUE(restored.has_value());

    std::vector<float> input(net.inputSize());
    for (std::size_t i = 0; i < split.test.size(); ++i) {
        split.test.normalized(i, input.data());
        ASSERT_EQ(net.predict(input.data()),
                  restored->predict(input.data()))
            << "prediction diverged at sample " << i;
    }
}

TEST(MlpSerialize, MissingRecordsRejected)
{
    Archive archive;
    archive.putInts("mlp.layers", {4, 2});
    EXPECT_FALSE(mlp::Mlp::deserialize(archive).has_value());
}

TEST(SnnSerialize, RoundTripPreservesForwardCounts)
{
    snn::SnnConfig config;
    config.numInputs = 16;
    config.numNeurons = 6;
    Rng rng(5);
    snn::SnnNetwork net(config, rng);
    const std::vector<int> labels = {0, 1, 2, 0, 1, 2};

    Archive archive;
    snn::saveSnn(net, labels, archive);
    auto restored = snn::loadSnn(archive);
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->labels, labels);
    EXPECT_EQ(restored->network.config().numNeurons, 6u);

    Rng probe(6);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<uint8_t> counts(16);
        for (auto &c : counts)
            c = static_cast<uint8_t>(probe.uniformInt(11));
        EXPECT_EQ(net.forwardCounts(counts.data()),
                  restored->network.forwardCounts(counts.data()));
    }
    // Thresholds restored too.
    for (std::size_t n = 0; n < 6; ++n) {
        EXPECT_FLOAT_EQ(
            static_cast<float>(net.thresholds()[n]),
            static_cast<float>(restored->network.thresholds()[n]));
    }
}

TEST(SnnSerialize, ShapeMismatchRejected)
{
    snn::SnnConfig config;
    config.numInputs = 8;
    config.numNeurons = 4;
    Rng rng(7);
    snn::SnnNetwork net(config, rng);
    Archive archive;
    snn::saveSnn(net, {0, 1, 2, 3}, archive);
    // Corrupt the weight record length.
    archive.putFloats("snn.weights", {1.0f, 2.0f});
    EXPECT_FALSE(snn::loadSnn(archive).has_value());
}

} // namespace
} // namespace neuro
