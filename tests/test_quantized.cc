// Tests for the 8-bit fixed-point MLP inference path (Section 4.2.1).

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/mlp/backprop.h"
#include "neuro/mlp/quantized.h"

namespace neuro {
namespace mlp {
namespace {

TEST(QuantizedMlp, PreservesGeometry)
{
    MlpConfig config;
    config.layerSizes = {16, 8, 4};
    Rng rng(1);
    const Mlp net(config, rng);
    const QuantizedMlp quant(net);
    EXPECT_EQ(quant.numLayers(), 2u);
    EXPECT_EQ(quant.inputSize(), 16u);
    EXPECT_EQ(quant.outputSize(), 4u);
}

TEST(QuantizedMlp, FracBitsFitLargestWeight)
{
    MlpConfig config;
    config.layerSizes = {4, 3, 2};
    Rng rng(2);
    Mlp net(config, rng);
    net.weights(0)(0, 0) = 3.7f; // force a wide layer-0 range.
    const QuantizedMlp quant(net);
    // 3.7 * 2^frac <= 127 -> frac <= 5.
    EXPECT_LE(quant.fracBits(0), 5);
    EXPECT_GE(quant.fracBits(0), 0);
}

TEST(QuantizedMlp, MatchesFloatOnUntrainedNet)
{
    MlpConfig config;
    config.layerSizes = {32, 16, 10};
    Rng rng(3);
    const Mlp net(config, rng);
    const QuantizedMlp quant(net);

    Rng data_rng(4);
    int agree = 0;
    const int trials = 100;
    for (int t = 0; t < trials; ++t) {
        std::vector<uint8_t> pixels(32);
        std::vector<float> norm(32);
        for (std::size_t i = 0; i < 32; ++i) {
            pixels[i] = static_cast<uint8_t>(data_rng.uniformInt(256));
            norm[i] = static_cast<float>(pixels[i]) / 255.0f;
        }
        if (net.predict(norm.data()) == quant.predict(pixels.data()))
            ++agree;
    }
    // Random nets have near-tied outputs, so allow a few flips.
    EXPECT_GT(agree, 80);
}

TEST(QuantizedMlp, SmallAccuracyLossOnTrainedNet)
{
    // The paper's result: 8-bit fixed point costs ~1% accuracy
    // (96.65% vs 97.65%).
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 800;
    opt.testSize = 250;
    const datasets::Split split = datasets::makeSynthDigits(opt);
    MlpConfig config;
    config.layerSizes = {784, 30, 10};
    TrainConfig train;
    train.epochs = 8;
    Rng rng(7);
    Mlp net(config, rng);
    mlp::train(net, split.train, train);
    const double float_acc = evaluate(net, split.test);
    const QuantizedMlp quant(net);
    const double fixed_acc = quant.evaluate(split.test);
    EXPECT_GT(float_acc, 0.85);
    EXPECT_GT(fixed_acc, float_acc - 0.05)
        << "8-bit quantization lost more than 5%";
}

} // namespace
} // namespace mlp
} // namespace neuro
