/**
 * @file
 * Tests for the neurolint project linter: the tokenizer must not be
 * fooled by strings/comments, every rule R1-R8 must fire on a known-bad
 * snippet, every suppression must silence exactly its rule, and the
 * baseline must downgrade (not hide) pre-existing findings. The
 * checked-in fixtures under tools/neurolint/fixtures are replayed from
 * disk so the ctest WILL_FAIL gate and this suite can never drift.
 */

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "neurolint/lexer.h"
#include "neurolint/rules.h"

using neurolint::Finding;
using neurolint::lintSource;
using neurolint::Token;
using neurolint::TokKind;

namespace {

std::vector<std::string>
rulesFired(const std::vector<Finding> &findings)
{
    std::vector<std::string> rules;
    for (const Finding &f : findings)
        rules.push_back(f.rule);
    return rules;
}

bool
fired(const std::vector<Finding> &findings, const std::string &rule)
{
    for (const Finding &f : findings) {
        if (f.rule == rule)
            return true;
    }
    return false;
}

std::string
readFixture(const std::string &name)
{
    const std::string path =
        std::string(NEUROLINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

// --- Tokenizer ---------------------------------------------------------

TEST(Lexer, ClassifiesBasicTokens)
{
    const auto toks = neurolint::tokenize(
        "int x = 42; // trailing\nstd::string s = \"rand()\";\n");
    ASSERT_GE(toks.size(), 8u);
    EXPECT_EQ(toks[0].kind, TokKind::Identifier);
    EXPECT_EQ(toks[0].text, "int");
    EXPECT_EQ(toks[0].line, 1);
    bool sawComment = false, sawString = false;
    for (const Token &t : toks) {
        sawComment = sawComment || (t.kind == TokKind::Comment &&
                                    t.text == " trailing");
        sawString = sawString ||
                    (t.kind == TokKind::String && t.text == "rand()");
    }
    EXPECT_TRUE(sawComment);
    EXPECT_TRUE(sawString);
}

TEST(Lexer, LiteralsAndCommentsHideCode)
{
    // rand/cout/random_device appear only inside strings, raw strings,
    // char soup and comments: nothing may fire.
    const std::string src =
        "const char *a = \"srand(1); std::cout << x;\";\n"
        "const char *b = R\"(std::random_device dev;)\";\n"
        "/* rand() in a block comment */\n"
        "// std::cerr << \"oops\";\n";
    EXPECT_TRUE(lintSource("src/neuro/core/x.cc", src).empty());
}

TEST(Lexer, TracksLineNumbersAcrossBlockComments)
{
    const auto toks =
        neurolint::tokenize("/* line1\nline2\nline3 */ rand");
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, TokKind::Comment);
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].text, "rand");
    EXPECT_EQ(toks[1].line, 3);
}

TEST(Lexer, DigitSeparatorIsNotACharLiteral)
{
    const auto toks = neurolint::tokenize("int big = 1'000'000;");
    for (const Token &t : toks)
        EXPECT_NE(t.kind, TokKind::CharLit) << t.text;
}

// --- R1: no raw libc/std randomness ------------------------------------

TEST(RuleR1, FiresOnRandSrandRandomDevice)
{
    const auto f = lintSource("src/neuro/core/x.cc",
                              "void f() { srand(7); int v = rand(); "
                              "std::random_device d; }");
    EXPECT_EQ(rulesFired(f), (std::vector<std::string>{"R1", "R1", "R1"}));
}

TEST(RuleR1, IgnoresMemberCallsAndForeignNamespaces)
{
    const auto f = lintSource(
        "src/neuro/core/x.cc",
        "void f(Gen &g) { g.rand(); gp->rand(); mylib::rand(); }");
    EXPECT_TRUE(f.empty()) << f[0].message;
}

TEST(RuleR1, StdQualifiedStillFires)
{
    EXPECT_TRUE(fired(lintSource("src/neuro/core/x.cc",
                                 "int f() { return std::rand(); }"),
                      "R1"));
}

TEST(RuleR1, RngImplementationIsExempt)
{
    EXPECT_TRUE(lintSource("src/neuro/common/rng.cc",
                           "int f() { return rand(); }")
                    .empty());
}

// --- R2: per-index streams in the data-parallel primitives -------------

TEST(RuleR2, FiresOnUnderivedRngInsideParallelFor)
{
    const auto f = lintSource(
        "src/neuro/snn/x.cc",
        "void f(uint64_t seed) { parallelFor(0, n, [&](size_t i) {\n"
        "    Rng r(seed + i); use(r); }); }");
    ASSERT_TRUE(fired(f, "R2"));
}

TEST(RuleR2, DeriveStreamSeedPasses)
{
    const auto f = lintSource(
        "src/neuro/snn/x.cc",
        "void f(uint64_t seed) { parallelMap(n, [&](size_t i) {\n"
        "    Rng r(deriveStreamSeed(seed, i)); return r.uniform(); }); }");
    EXPECT_TRUE(f.empty()) << f[0].message;
}

TEST(RuleR2, FiresOnSharedReferenceAndNewRng)
{
    const auto f = lintSource(
        "src/neuro/snn/x.cc",
        "void f(Rng &shared) { parallelForRange(0, n, g,\n"
        "  [&](size_t a, size_t b) {\n"
        "    Rng &r = shared;\n"
        "    Rng *h = new Rng(1);\n"
        "  }); }");
    EXPECT_EQ(rulesFired(f), (std::vector<std::string>{"R2", "R2"}));
}

TEST(RuleR2, ParallelInvokeTasksAreExempt)
{
    // Heterogeneous tasks with disjoint seeds are deterministic per
    // task; only the data-parallel primitives shard per index.
    const auto f = lintSource(
        "src/neuro/core/x.cc",
        "void f(uint64_t seed) { parallelInvoke({ [&] {\n"
        "    Rng rng(seed); train(rng); } }); }");
    EXPECT_TRUE(f.empty()) << f[0].message;
}

TEST(RuleR2, RngOutsideParallelRegionPasses)
{
    EXPECT_TRUE(lintSource("src/neuro/mlp/x.cc",
                           "void f() { Rng rng(3); rng.shuffle(a, n); }")
                    .empty());
}

// --- R3: console I/O stays in the sanctioned writers -------------------

TEST(RuleR3, FiresInLibraryAndTestCode)
{
    const std::string src = "void f() { std::cout << 1; }";
    EXPECT_TRUE(fired(lintSource("src/neuro/hw/x.cc", src), "R3"));
    EXPECT_TRUE(fired(lintSource("tests/test_x.cc", src), "R3"));
}

TEST(RuleR3, SanctionedWritersAreExempt)
{
    const std::string src =
        "void f() { std::cout << 1; std::cerr << 2; }";
    EXPECT_TRUE(lintSource("src/neuro/common/logging.cc", src).empty());
    EXPECT_TRUE(lintSource("tools/neurocmp_cli.cpp", src).empty());
    EXPECT_TRUE(lintSource("bench/bench_x.cpp", src).empty());
    EXPECT_TRUE(lintSource("examples/quickstart.cpp", src).empty());
}

// --- R4: pragma once ---------------------------------------------------

TEST(RuleR4, FiresOnGuardOnlyHeader)
{
    const auto f = lintSource("src/neuro/hw/x.h",
                              "#ifndef X_H\n#define X_H\nint v;\n"
                              "#endif\n");
    ASSERT_TRUE(fired(f, "R4"));
    EXPECT_EQ(f[0].line, 1);
}

TEST(RuleR4, PragmaOnceAndNonHeadersPass)
{
    EXPECT_TRUE(lintSource("src/neuro/hw/x.h",
                           "#pragma once\nint v;\n")
                    .empty());
    EXPECT_TRUE(lintSource("src/neuro/hw/x.cc", "int v;\n").empty());
}

// --- R5: ordered-sum loops accumulate in double ------------------------

TEST(RuleR5, FiresOnFloatAccumulator)
{
    const auto f = lintSource(
        "src/neuro/snn/x.cc",
        "double f(const float *row, const uint16_t *s, size_t n) {\n"
        "    float drive = 0.0f;\n"
        "    // neurolint: ordered-sum\n"
        "    for (size_t i = 0; i < n; ++i)\n"
        "        drive += row[s[i]];\n"
        "    return drive;\n"
        "}\n");
    ASSERT_TRUE(fired(f, "R5"));
    EXPECT_EQ(f[0].line, 5);
}

TEST(RuleR5, FiresOnFloatCastAndFloatDeclInsideLoop)
{
    const auto f = lintSource(
        "src/neuro/snn/x.cc",
        "double f(const float *row, size_t n) {\n"
        "    double acc = 0.0;\n"
        "    // neurolint: ordered-sum\n"
        "    for (size_t i = 0; i < n; ++i) {\n"
        "        float w = row[i];\n"
        "        acc += static_cast<float>(w);\n"
        "    }\n"
        "    return acc;\n"
        "}\n");
    EXPECT_EQ(rulesFired(f), (std::vector<std::string>{"R5", "R5"}));
}

TEST(RuleR5, DoubleAccumulationOverFloatRowsPasses)
{
    // The sanctioned pattern from snn/network.cc: double accumulator,
    // float weight rows read through a pointer.
    const auto f = lintSource(
        "src/neuro/snn/x.cc",
        "double f(const float *row, const uint16_t *s, size_t n) {\n"
        "    double drive = 0.0;\n"
        "    // neurolint: ordered-sum\n"
        "    for (size_t i = 0; i < n; ++i)\n"
        "        drive += row[s[i]];\n"
        "    return drive;\n"
        "}\n");
    EXPECT_TRUE(f.empty()) << f[0].message;
}

TEST(RuleR5, UntaggedLoopsAreNotChecked)
{
    EXPECT_TRUE(lintSource("src/neuro/mlp/x.cc",
                           "float f(const float *v, size_t n) {\n"
                           "    float s = 0.0f;\n"
                           "    for (size_t i = 0; i < n; ++i)\n"
                           "        s += v[i];\n"
                           "    return s;\n"
                           "}\n")
                    .empty());
}

// --- R6: raw mutex/CV types stay out of library code -------------------

TEST(RuleR6, FiresOnRawStdMutexAndConditionVariable)
{
    const auto f = lintSource(
        "src/neuro/serve/x.cc",
        "class Q { std::mutex m_; std::condition_variable cv_;\n"
        "          std::shared_mutex rw_; };");
    EXPECT_EQ(rulesFired(f), (std::vector<std::string>{"R6", "R6", "R6"}));
}

TEST(RuleR6, WrapperTypesAndForeignNamespacesPass)
{
    EXPECT_TRUE(lintSource("src/neuro/serve/x.cc",
                           "class Q { Mutex m_; CondVar cv_;\n"
                           "          other::mutex weird_; };")
                    .empty());
}

TEST(RuleR6, TestsBenchesToolsAndTheWrapperAreExempt)
{
    const std::string src = "std::mutex m; std::condition_variable cv;";
    EXPECT_TRUE(lintSource("tests/test_x.cc", src).empty());
    EXPECT_TRUE(lintSource("bench/bench_x.cpp", src).empty());
    EXPECT_TRUE(lintSource("examples/quickstart.cpp", src).empty());
    EXPECT_TRUE(lintSource("tools/neurocmp_cli.cpp", src).empty());
    EXPECT_TRUE(lintSource("src/neuro/common/mutex.h",
                           "#pragma once\n" + src)
                    .empty());
}

TEST(RuleR6, IncludeDirectiveDoesNotFire)
{
    EXPECT_TRUE(lintSource("src/neuro/serve/x.cc",
                           "#include <mutex>\nint v;\n")
                    .empty());
}

// --- R7: critical sections are scoped, not hand-locked -----------------

TEST(RuleR7, FiresOnManualLockUnlockPairs)
{
    const auto f = lintSource(
        "src/neuro/serve/x.cc",
        "void f(Mutex &m) { m.lock(); work(); m.unlock(); }");
    EXPECT_EQ(rulesFired(f), (std::vector<std::string>{"R7", "R7"}));
}

TEST(RuleR7, FiresOnTryLockAndPointerReceivers)
{
    const auto f = lintSource("src/neuro/serve/x.cc",
                              "void f(Mutex *m) { if (m->try_lock())\n"
                              "    m->unlock(); }");
    EXPECT_EQ(rulesFired(f), (std::vector<std::string>{"R7", "R7"}));
}

TEST(RuleR7, GuardsAndNonMemberNamesPass)
{
    // MutexGuard construction and a free function named lock() are
    // not member .lock() calls.
    EXPECT_TRUE(lintSource("src/neuro/serve/x.cc",
                           "void f(Mutex &m) { MutexGuard lock(m);\n"
                           "    lock_all(); }")
                    .empty());
    EXPECT_TRUE(lintSource("tests/test_x.cc",
                           "void f(std::mutex &m) { m.lock(); }")
                    .empty());
}

// --- R8: atomics spell their memory_order ------------------------------

TEST(RuleR8, FiresOnDefaultSeqCstOperations)
{
    const auto f = lintSource(
        "src/neuro/serve/x.cc",
        "std::atomic<int> v{0};\n"
        "void f() { v.store(1); v.fetch_add(2); v.exchange(3);\n"
        "           int x = v.load(); (void)x; }");
    EXPECT_EQ(rulesFired(f),
              (std::vector<std::string>{"R8", "R8", "R8", "R8"}));
}

TEST(RuleR8, ExplicitOrdersPass)
{
    EXPECT_TRUE(lintSource(
                    "src/neuro/serve/x.cc",
                    "std::atomic<int> v{0};\n"
                    "void f() { v.store(1, std::memory_order_release);\n"
                    "    v.fetch_add(2, std::memory_order_relaxed);\n"
                    "    int x = v.load(std::memory_order_acquire);\n"
                    "    (void)x; }")
                    .empty());
}

TEST(RuleR8, ArgTakingLoadNeedsAtomicReceiver)
{
    // Archive::load(path) takes an argument and the receiver is not a
    // declared atomic: a file load, not an atomic read.
    EXPECT_TRUE(lintSource("src/neuro/serve/x.cc",
                           "bool f(Archive &archive, std::string p) {\n"
                           "    return archive.load(p); }")
                    .empty());
    // Same shape on a declared atomic: C++26-style load(order) misuse
    // aside, an argument that is not a memory_order still fires.
    EXPECT_TRUE(fired(lintSource("src/neuro/serve/x.cc",
                                 "std::atomic<int> v{0};\n"
                                 "int f(int d) { return v.load(d); }"),
                      "R8"));
}

TEST(RuleR8, ZeroArgLoadFiresEvenWithoutDeclaration)
{
    EXPECT_TRUE(fired(lintSource("src/neuro/serve/x.cc",
                                 "int f(Flags &flags) {\n"
                                 "    return flags.load(); }"),
                      "R8"));
}

TEST(RuleR8, TestsAndBenchesAreExempt)
{
    const std::string src =
        "std::atomic<int> v{0}; void f() { v.store(1); }";
    EXPECT_TRUE(lintSource("tests/test_x.cc", src).empty());
    EXPECT_TRUE(lintSource("bench/bench_x.cpp", src).empty());
}

// --- Suppressions ------------------------------------------------------

TEST(Suppression, AllowSilencesOnlyItsRule)
{
    // Same line.
    EXPECT_TRUE(lintSource("src/neuro/core/x.cc",
                           "int f() { return rand(); } "
                           "// neurolint: allow(R1)")
                    .empty());
    // Preceding line.
    EXPECT_TRUE(lintSource("src/neuro/core/x.cc",
                           "// neurolint: allow(R1)\n"
                           "int f() { return rand(); }")
                    .empty());
    // Wrong rule: still fires.
    EXPECT_TRUE(fired(lintSource("src/neuro/core/x.cc",
                                 "// neurolint: allow(R3)\n"
                                 "int f() { return rand(); }"),
                      "R1"));
    // Two lines above: out of range, still fires.
    EXPECT_TRUE(fired(lintSource("src/neuro/core/x.cc",
                                 "// neurolint: allow(R1)\n\n"
                                 "int f() { return rand(); }"),
                      "R1"));
}

TEST(Suppression, CommaListAndCaseInsensitivity)
{
    EXPECT_TRUE(lintSource("src/neuro/core/x.cc",
                           "// neurolint: allow(r1, R3)\n"
                           "int f() { std::cout << rand(); return 0; }")
                    .empty());
}

TEST(Suppression, ConcurrencyRulesHonorAllow)
{
    EXPECT_TRUE(lintSource("src/neuro/serve/x.cc",
                           "// neurolint: allow(R6)\n"
                           "std::mutex m_;")
                    .empty());
    EXPECT_TRUE(lintSource("src/neuro/serve/x.cc",
                           "void f(Mutex &m) {\n"
                           "    m.lock(); // neurolint: allow(R7)\n"
                           "}")
                    .empty());
    EXPECT_TRUE(lintSource("src/neuro/serve/x.cc",
                           "std::atomic<int> v{0};\n"
                           "// neurolint: allow(R8)\n"
                           "void f() { v.store(1); }")
                    .empty());
}

// --- Baseline ----------------------------------------------------------

TEST(Baseline, DowngradesBySuffixMatch)
{
    std::vector<Finding> findings = {
        {"R3", "/abs/checkout/src/neuro/hw/x.cc", 4, "m", false},
        {"R3", "/abs/checkout/src/neuro/hw/y.cc", 5, "m", false},
        {"R1", "/abs/checkout/src/neuro/hw/x.cc", 6, "m", false},
    };
    const std::set<std::string> baseline = {"R3 src/neuro/hw/x.cc"};
    neurolint::applyBaseline(findings, baseline);
    EXPECT_TRUE(findings[0].baselined);  // rule + suffix match
    EXPECT_FALSE(findings[1].baselined); // different file
    EXPECT_FALSE(findings[2].baselined); // different rule
}

TEST(Baseline, SuffixMustAlignOnPathComponent)
{
    std::vector<Finding> findings = {
        {"R3", "src/neuro/hw/not_x.cc", 1, "m", false}};
    neurolint::applyBaseline(findings, {"R3 x.cc"});
    EXPECT_FALSE(findings[0].baselined);
}

TEST(Baseline, LoadSkipsCommentsAndBlanks)
{
    const std::string path = testing::TempDir() + "neurolint_base.txt";
    {
        std::ofstream out(path);
        out << "# comment\n\nR3 src/neuro/common/profile.cc # trail\n";
    }
    const auto entries = neurolint::loadBaseline(path);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(*entries.begin(), "R3 src/neuro/common/profile.cc");
    std::remove(path.c_str());
}

TEST(Baseline, KeyRoundTripsThroughWriteFormat)
{
    const Finding f{"R2", "src/neuro/snn/trainer.cc", 9, "m", false};
    EXPECT_EQ(neurolint::baselineKey(f), "R2 src/neuro/snn/trainer.cc");
}

// --- Checked-in fixtures stay bad --------------------------------------

struct FixtureCase
{
    const char *file;
    const char *rule;
    int minFindings;
};

class FixtureTest : public testing::TestWithParam<FixtureCase>
{};

TEST_P(FixtureTest, FixtureStillFiresItsRule)
{
    const FixtureCase fc = GetParam();
    const auto findings = lintSource(
        std::string("tools/neurolint/fixtures/") + fc.file,
        readFixture(fc.file));
    int count = 0;
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, fc.rule) << f.message;
        ++count;
    }
    EXPECT_GE(count, fc.minFindings) << fc.file;
}

INSTANTIATE_TEST_SUITE_P(
    Neurolint, FixtureTest,
    testing::Values(FixtureCase{"bad_r1.cc", "R1", 3},
                    FixtureCase{"bad_r2.cc", "R2", 3},
                    FixtureCase{"bad_r3.cc", "R3", 2},
                    FixtureCase{"bad_r4.h", "R4", 1},
                    FixtureCase{"bad_r5.cc", "R5", 2},
                    FixtureCase{"bad_r6.cc", "R6", 3},
                    FixtureCase{"bad_r7.cc", "R7", 2},
                    FixtureCase{"bad_r8.cc", "R8", 3}),
    [](const testing::TestParamInfo<FixtureCase> &tpi) {
        return std::string(tpi.param.rule);
    });
