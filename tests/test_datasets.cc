// Tests for the dataset container and the three synthetic workload
// generators (MNIST / MPEG-7 / SAD stand-ins).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "neuro/common/rng.h"
#include "neuro/datasets/glyphs.h"
#include "neuro/datasets/idx_loader.h"
#include "neuro/datasets/shapes.h"
#include "neuro/datasets/spoken_digits.h"
#include "neuro/datasets/synth_digits.h"

namespace neuro {
namespace datasets {
namespace {

TEST(Dataset, AddAndAccess)
{
    Dataset d("t", 2, 2, 3);
    Sample s;
    s.pixels = {0, 128, 255, 64};
    s.label = 2;
    d.add(s);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].label, 2);
    float buf[4];
    d.normalized(0, buf);
    EXPECT_FLOAT_EQ(buf[0], 0.0f);
    EXPECT_FLOAT_EQ(buf[2], 1.0f);
    EXPECT_NEAR(buf[1], 128.0f / 255.0f, 1e-6);
}

TEST(Dataset, SliceAndHistogram)
{
    Dataset d("t", 1, 1, 2);
    for (int i = 0; i < 10; ++i) {
        Sample s;
        s.pixels = {static_cast<uint8_t>(i)};
        s.label = i % 2;
        d.add(s);
    }
    const Dataset head = d.slice(0, 4);
    EXPECT_EQ(head.size(), 4u);
    const auto hist = d.classHistogram();
    EXPECT_EQ(hist[0], 5u);
    EXPECT_EQ(hist[1], 5u);
}

TEST(Dataset, ShuffleKeepsMultiset)
{
    Dataset d("t", 1, 1, 10);
    for (int i = 0; i < 50; ++i) {
        Sample s;
        s.pixels = {static_cast<uint8_t>(i)};
        s.label = i % 10;
        d.add(s);
    }
    Rng rng(1);
    d.shuffle(rng);
    std::multiset<uint8_t> seen;
    for (std::size_t i = 0; i < d.size(); ++i)
        seen.insert(d[i].pixels[0]);
    EXPECT_EQ(seen.size(), 50u);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(GlyphBitmap, ParseAndSample)
{
    const GlyphBitmap g = GlyphBitmap::fromRows({"#.", ".#"});
    EXPECT_EQ(g.width, 2u);
    EXPECT_EQ(g.height, 2u);
    EXPECT_TRUE(g.at(0, 0));
    EXPECT_FALSE(g.at(1, 0));
    EXPECT_FALSE(g.at(-1, 0));
    // Centre of the ink cell has full coverage.
    EXPECT_NEAR(g.sample(0.5f, 0.5f), 1.0f, 1e-5);
    EXPECT_NEAR(g.sample(1.5f, 0.5f), 0.0f, 1e-5);
}

class DigitGeneratorTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DigitGeneratorTest, GeometryLabelsAndDeterminism)
{
    SynthDigitsOptions opt;
    opt.trainSize = 60;
    opt.testSize = 20;
    opt.seed = GetParam();
    const Split a = makeSynthDigits(opt);
    const Split b = makeSynthDigits(opt);
    EXPECT_EQ(a.train.size(), 60u);
    EXPECT_EQ(a.test.size(), 20u);
    EXPECT_EQ(a.train.width(), 28u);
    EXPECT_EQ(a.train.numClasses(), 10);
    for (std::size_t i = 0; i < a.train.size(); ++i) {
        ASSERT_EQ(a.train[i].pixels, b.train[i].pixels)
            << "non-deterministic at " << i;
        ASSERT_EQ(a.train[i].label, b.train[i].label);
        ASSERT_GE(a.train[i].label, 0);
        ASSERT_LT(a.train[i].label, 10);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DigitGeneratorTest,
                         ::testing::Values(1u, 2u, 42u));

TEST(DigitGenerator, ImagesHaveInkAndBackground)
{
    SynthDigitsOptions opt;
    opt.trainSize = 30;
    opt.testSize = 1;
    const Split split = makeSynthDigits(opt);
    for (std::size_t i = 0; i < split.train.size(); ++i) {
        int bright = 0, dark = 0;
        for (uint8_t p : split.train[i].pixels) {
            if (p > 200)
                ++bright;
            if (p < 50)
                ++dark;
        }
        EXPECT_GT(bright, 20) << "image " << i << " has no ink";
        EXPECT_GT(dark, 300) << "image " << i << " has no background";
    }
}

TEST(DigitGenerator, DifferentSeedsDiffer)
{
    SynthDigitsOptions a, b;
    a.trainSize = b.trainSize = 10;
    a.testSize = b.testSize = 1;
    a.seed = 1;
    b.seed = 2;
    EXPECT_NE(makeSynthDigits(a).train[0].pixels,
              makeSynthDigits(b).train[0].pixels);
}

TEST(Shapes, GeometryAndClassNames)
{
    ShapesOptions opt;
    opt.trainSize = 40;
    opt.testSize = 10;
    const Split split = makeShapes(opt);
    EXPECT_EQ(split.train.numClasses(), kNumShapeClasses);
    EXPECT_EQ(split.train.width(), 28u);
    for (int c = 0; c < kNumShapeClasses; ++c)
        EXPECT_FALSE(shapeClassName(c).empty());
}

TEST(Shapes, SilhouettesAreFilled)
{
    ShapesOptions opt;
    opt.trainSize = 20;
    opt.testSize = 1;
    opt.noiseStddev = 0.0f;
    const Split split = makeShapes(opt);
    for (std::size_t i = 0; i < split.train.size(); ++i) {
        int bright = 0;
        for (uint8_t p : split.train[i].pixels)
            if (p > 200)
                ++bright;
        EXPECT_GT(bright, 30) << "empty silhouette for class "
                              << split.train[i].label;
    }
}

TEST(SpokenDigits, GeometryAndClassSeparation)
{
    SpokenDigitsOptions opt;
    opt.trainSize = 200;
    opt.testSize = 50;
    const Split split = makeSpokenDigits(opt);
    EXPECT_EQ(split.train.width(), 13u);
    EXPECT_EQ(split.train.height(), 13u);
    // Mean images of two classes must differ substantially (the task is
    // learnable).
    std::vector<double> mean0(169, 0), mean1(169, 0);
    std::size_t n0 = 0, n1 = 0;
    for (std::size_t i = 0; i < split.train.size(); ++i) {
        const auto &s = split.train[i];
        if (s.label == 0) {
            ++n0;
            for (std::size_t k = 0; k < 169; ++k)
                mean0[k] += s.pixels[k];
        } else if (s.label == 1) {
            ++n1;
            for (std::size_t k = 0; k < 169; ++k)
                mean1[k] += s.pixels[k];
        }
    }
    ASSERT_GT(n0, 0u);
    ASSERT_GT(n1, 0u);
    double dist = 0;
    for (std::size_t k = 0; k < 169; ++k) {
        const double d = mean0[k] / static_cast<double>(n0) -
                         mean1[k] / static_cast<double>(n1);
        dist += d * d;
    }
    EXPECT_GT(std::sqrt(dist), 50.0);
}

TEST(IdxLoader, MissingDirectoryFailsCleanly)
{
    Split out;
    EXPECT_FALSE(loadMnistIdx("/nonexistent-dir-xyz", 10, 10, out));
}

} // namespace
} // namespace datasets
} // namespace neuro
