// Dense-vs-event engine equivalence: the event-driven sparse engine
// must be bit-identical to the reference dense tick walk — same
// winners, same potentials, same learned weights — at any thread
// count. Also covers the trainer's grid-cache routing.

#include <gtest/gtest.h>

#include "neuro/common/parallel.h"
#include "neuro/common/rng.h"
#include "neuro/snn/spike_bits.h"
#include "neuro/snn/trainer.h"

namespace neuro {
namespace snn {
namespace {

/** Two-class task (same construction as test_trainer). */
datasets::Dataset
makeHalves(std::size_t count, uint64_t seed)
{
    datasets::Dataset data("halves", 8, 8, 2);
    Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        datasets::Sample s;
        s.label = static_cast<int>(i % 2);
        s.pixels.assign(64, 0);
        for (std::size_t y = 0; y < 8; ++y) {
            const bool bright = (s.label == 0) ? (y < 4) : (y >= 4);
            for (std::size_t x = 0; x < 8; ++x) {
                s.pixels[y * 8 + x] = bright
                    ? static_cast<uint8_t>(200 + rng.uniformInt(56))
                    : static_cast<uint8_t>(rng.uniformInt(25));
            }
        }
        data.add(std::move(s));
    }
    return data;
}

SnnConfig
engineConfig(SnnEngine engine)
{
    SnnConfig config;
    config.engine = engine;
    config.numInputs = 64;
    config.numNeurons = 8;
    config.coding.periodMs = 200;
    config.coding.minIntervalMs = 20;
    config.tLeakMs = 200.0;
    config.initialThreshold = 0.5 * 32.0 * 8.0 * 127.0;
    config.stdp.ltpIncrement = 12.0f;
    config.stdp.ltdDecrement = 3.0f;
    config.homeostasis.epochMs = 20 * 200;
    config.homeostasis.activityTarget = 5.0;
    config.homeostasis.rate = 0.08;
    config.homeostasis.minThreshold = config.initialThreshold * 0.25;
    return config;
}

/** Compare two presentation results field by field, exactly. */
void
expectIdenticalResults(const PresentationResult &a,
                       const PresentationResult &b, std::size_t i)
{
    EXPECT_EQ(a.firstSpikeNeuron, b.firstSpikeNeuron) << "sample " << i;
    EXPECT_EQ(a.firstSpikeTimeMs, b.firstSpikeTimeMs) << "sample " << i;
    EXPECT_EQ(a.maxPotentialNeuron, b.maxPotentialNeuron) << "sample " << i;
    EXPECT_EQ(a.inputSpikeCount, b.inputSpikeCount) << "sample " << i;
    EXPECT_EQ(a.outputSpikeCount, b.outputSpikeCount) << "sample " << i;
    EXPECT_EQ(a.spikeCountPerNeuron, b.spikeCountPerNeuron)
        << "sample " << i;
}

TEST(SnnEngine, PresentationsBitIdenticalAcrossEngines)
{
    const datasets::Dataset data = makeHalves(64, 7);
    const SnnConfig dense_cfg = engineConfig(SnnEngine::Dense);
    const SnnConfig event_cfg = engineConfig(SnnEngine::Event);
    const SpikeEncoder encoder(dense_cfg.coding);

    Rng dense_init(9);
    SnnNetwork dense_net(dense_cfg, dense_init);
    Rng event_init(9);
    SnnNetwork event_net(event_cfg, event_init);

    PackedSpikeGrid grid;
    for (std::size_t i = 0; i < data.size(); ++i) {
        Rng rng(deriveStreamSeed(21, i));
        encoder.encodePacked(data[i].pixels.data(), data[i].pixels.size(),
                             rng, grid);
        // learn=true: STDP + homeostasis must also evolve identically.
        const auto dense_r = dense_net.present(grid, /*learn=*/true);
        const auto event_r = event_net.present(grid, /*learn=*/true);
        expectIdenticalResults(dense_r, event_r, i);
    }

    // After 64 learned presentations the full state agrees exactly.
    EXPECT_EQ(dense_net.weights().data(), event_net.weights().data());
    EXPECT_EQ(dense_net.thresholds(), event_net.thresholds());
    EXPECT_EQ(dense_net.potentials(), event_net.potentials());
}

TEST(SnnEngine, EventPresentEqualsDensePresentImage)
{
    // present() with the Event engine vs the original presentImage()
    // on the expanded grid: the public API contract.
    const datasets::Dataset data = makeHalves(16, 3);
    const SnnConfig config = engineConfig(SnnEngine::Event);
    const SpikeEncoder encoder(config.coding);

    Rng init(4);
    SnnNetwork event_net(config, init);
    SnnNetwork dense_net(event_net); // identical copy.

    PackedSpikeGrid packed;
    SpikeTrainGrid dense;
    for (std::size_t i = 0; i < data.size(); ++i) {
        Rng rng(deriveStreamSeed(5, i));
        encoder.encodePacked(data[i].pixels.data(), data[i].pixels.size(),
                             rng, packed);
        packed.toDense(dense);
        const auto event_r = event_net.present(packed, /*learn=*/false);
        const auto dense_r = dense_net.presentImage(dense, /*learn=*/false);
        expectIdenticalResults(dense_r, event_r, i);
    }
}

/** Winners of a full label+evaluate pass under the given engine. */
SnnEvalResult
evalWithEngine(SnnEngine engine, const datasets::Dataset &train_set,
               const datasets::Dataset &test_set,
               std::vector<int> *labels_out)
{
    const SnnConfig config = engineConfig(engine);
    Rng rng(2);
    SnnNetwork net(config, rng);
    SnnStdpTrainer trainer(config);
    SnnTrainConfig train;
    train.epochs = 2;
    trainer.train(net, train_set, train);
    const auto labels = trainer.labelNeurons(net, train_set, EvalMode::Wt,
                                             201);
    if (labels_out)
        *labels_out = labels;
    return trainer.evaluate(net, labels, test_set, EvalMode::Wt, 202);
}

TEST(SnnEngine, FullPipelineBitIdenticalAcrossEnginesAndThreads)
{
    const datasets::Dataset train_set = makeHalves(64, 11);
    const datasets::Dataset test_set = makeHalves(32, 12);

    const std::size_t saved = parallelThreadCount();
    std::vector<int> ref_labels;
    setParallelThreadCount(1);
    const SnnEvalResult reference =
        evalWithEngine(SnnEngine::Dense, train_set, test_set, &ref_labels);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        setParallelThreadCount(threads);
        std::vector<int> labels;
        const SnnEvalResult result =
            evalWithEngine(SnnEngine::Event, train_set, test_set, &labels);
        EXPECT_EQ(labels, ref_labels) << "threads=" << threads;
        EXPECT_DOUBLE_EQ(result.accuracy, reference.accuracy)
            << "threads=" << threads;
        EXPECT_EQ(result.silent, reference.silent) << "threads=" << threads;
    }
    setParallelThreadCount(saved);
}

TEST(SnnEngine, TrainerServesSecondPassFromGridCache)
{
    const datasets::Dataset data = makeHalves(48, 13);
    const SnnConfig config = engineConfig(SnnEngine::Event);
    Rng rng(2);
    SnnNetwork net(config, rng);
    SnnStdpTrainer trainer(config);

    SnnTrainConfig train;
    train.epochs = 2;
    trainer.train(net, data, train);

    // Epoch 1 misses (and fills) the cache; epoch 2 must be served
    // from it entirely: hit rate >= 50% over the two epochs.
    const GridCacheStats after_train = trainer.gridCache().stats();
    EXPECT_EQ(after_train.misses, data.size());
    EXPECT_EQ(after_train.hits, data.size());
    EXPECT_EQ(after_train.entries, data.size());

    // Labeling uses a different seed: new keys, all misses...
    const auto labels = trainer.labelNeurons(net, data, EvalMode::Wt, 77);
    const GridCacheStats after_label = trainer.gridCache().stats();
    EXPECT_EQ(after_label.misses, 2 * data.size());

    // ...and evaluating the same data under the same seed hits 100%.
    trainer.evaluate(net, labels, data, EvalMode::Wt, 77);
    const GridCacheStats after_eval = trainer.gridCache().stats();
    EXPECT_EQ(after_eval.misses, after_label.misses)
        << "second pass must not re-encode";
    EXPECT_EQ(after_eval.hits, after_label.hits + data.size());
}

TEST(SnnEngine, DefaultEngineHonorsEnvironment)
{
    // The suite runs with or without NEURO_SNN_ENGINE=dense (CI runs
    // both); just pin the name mapping and the config default.
    EXPECT_STREQ(snnEngineName(SnnEngine::Dense), "dense");
    EXPECT_STREQ(snnEngineName(SnnEngine::Event), "event");
    EXPECT_EQ(SnnConfig{}.engine, defaultSnnEngine());
}

} // namespace
} // namespace snn
} // namespace neuro
