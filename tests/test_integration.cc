// Integration tests: cross-module flows on small workloads, asserting
// the paper's qualitative orderings rather than absolute numbers.

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/core/compare.h"
#include "neuro/core/experiment.h"
#include "neuro/core/explorer.h"
#include "neuro/gpu/gpu_model.h"
#include "neuro/hw/folded.h"
#include "neuro/mlp/quantized.h"
#include "neuro/snn/snn_wot.h"

namespace neuro {
namespace {

core::Workload
smallMnist()
{
    // Shared tiny workload so the suite stays fast.
    static const core::Workload w = core::makeMnistWorkload(900, 250, 1);
    return w;
}

TEST(Integration, MlpBeatsSnnBpBeatsChance)
{
    const core::Workload w = smallMnist();
    mlp::TrainConfig train = core::defaultMlpTrainConfig();
    train.epochs = 6;
    const double mlp_acc = mlp::trainAndEvaluate(
        core::defaultMlpConfig(w), train, w.data.train, w.data.test, 42);

    snn::SnnBpConfig bp_config = core::defaultSnnBpConfig(w);
    bp_config.epochs = 4;
    Rng rng(2);
    snn::SnnBp snn_bp(bp_config, rng);
    snn_bp.train(w.data.train);
    const double bp_acc = snn_bp.evaluate(w.data.test, 3);

    EXPECT_GT(mlp_acc, 0.85);
    EXPECT_GT(bp_acc, 0.6);
    EXPECT_GE(mlp_acc, bp_acc - 0.05)
        << "MLP+BP should not lose to SNN+BP";
}

TEST(Integration, StdpLearnsAboveChanceAndWotTracksWt)
{
    const core::Workload w = smallMnist();
    const snn::SnnConfig config =
        core::defaultSnnConfig(w, w.data.train.size());
    Rng rng(7);
    snn::SnnNetwork net(config, rng);
    snn::SnnStdpTrainer trainer(config);
    snn::SnnTrainConfig train;
    train.epochs = 3;
    trainer.train(net, w.data.train, train);

    const auto labels_wt =
        trainer.labelNeurons(net, w.data.train, snn::EvalMode::Wt, 8);
    const double wt = trainer
        .evaluate(net, labels_wt, w.data.test, snn::EvalMode::Wt, 9)
        .accuracy;
    const auto labels_wot =
        trainer.labelNeurons(net, w.data.train, snn::EvalMode::Wot, 10);
    const double wot = trainer
        .evaluate(net, labels_wot, w.data.test, snn::EvalMode::Wot, 11)
        .accuracy;

    EXPECT_GT(wt, 0.3) << "STDP far below usable accuracy";
    EXPECT_GT(wot, 0.3);
    // The two forward paths read out the same learned weights: their
    // accuracies track within a few points (paper: 1.03% apart).
    EXPECT_NEAR(wt, wot, 0.2);

    // The integer SNNwot datapath agrees with the float count path.
    const snn::SnnWotDatapath datapath(net);
    const snn::SpikeEncoder &encoder = trainer.encoder();
    std::size_t agree = 0;
    const std::size_t n = std::min<std::size_t>(60, w.data.test.size());
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<uint8_t> counts(w.data.test[i].pixels.size());
        for (std::size_t p = 0; p < counts.size(); ++p)
            counts[p] = encoder.spikeCount(w.data.test[i].pixels[p]);
        const int a = net.forwardCounts(counts.data());
        const int b = datapath.forward(counts.data());
        if (a == b)
            ++agree;
    }
    EXPECT_GT(agree, n * 9 / 10);
}

TEST(Integration, QuantizedMlpDeployableAfterTraining)
{
    const core::Workload w = smallMnist();
    mlp::MlpConfig config = core::defaultMlpConfig(w);
    config.layerSizes[1] = 30;
    mlp::TrainConfig train;
    train.epochs = 6;
    Rng rng(5);
    mlp::Mlp net(config, rng);
    mlp::train(net, w.data.train, train);
    const mlp::QuantizedMlp quant(net);
    EXPECT_GT(quant.evaluate(w.data.test),
              mlp::evaluate(net, w.data.test) - 0.06);
}

TEST(Integration, Table8ShapeAcceleratorsBeatGpuExceptSnnWtNi1)
{
    const core::Workload w = smallMnist();
    const gpu::GpuParams params;
    const double gpu_mlp_ns =
        gpu::evaluate(params, gpu::mlpWorkload(784, 100, 10)).timeUs *
        1000.0;
    const double gpu_wt_ns =
        gpu::evaluate(params, gpu::snnWtWorkload(784, 300, 500)).timeUs *
        1000.0;

    const hw::Design mlp1 = hw::buildFoldedMlp(w.mlpTopo, 1);
    const hw::Design mlp16 = hw::buildFoldedMlp(w.mlpTopo, 16);
    const hw::Design wt1 = hw::buildFoldedSnnWt(w.snnTopo, 1);

    // Table 8's qualitative content.
    EXPECT_GT(gpu_mlp_ns / mlp1.timePerImageNs(), 10.0)
        << "folded MLP ni=1 must beat the GPU by >10x";
    EXPECT_GT(gpu_mlp_ns / mlp16.timePerImageNs(),
              gpu_mlp_ns / mlp1.timePerImageNs())
        << "more parallel folds must be faster";
    EXPECT_LT(gpu_wt_ns / wt1.timePerImageNs(), 1.0)
        << "SNNwt ni=1 must LOSE to the GPU (paper: 0.12x)";
}

TEST(Integration, FoldedRatiosFavorMlp)
{
    const core::Workload w = smallMnist();
    const auto ratios =
        core::foldedCostRatios(w.mlpTopo, w.snnTopo, {1, 4, 8, 16});
    ASSERT_EQ(ratios.size(), 4u);
    for (const auto &r : ratios) {
        EXPECT_GT(r.areaRatio, 1.5) << "ni=" << r.ni;
        EXPECT_GT(r.energyRatio, 1.2) << "ni=" << r.ni;
    }
}

TEST(Integration, ExplorerSweepsProduceOrderedSizes)
{
    const core::Workload w = core::makeMnistWorkload(400, 120, 2);
    const auto points = core::sweepMlpHidden(w, {5, 40}, 3);
    ASSERT_EQ(points.size(), 2u);
    // More neurons should not hurt on this easy task (allow noise).
    EXPECT_GT(points[1].accuracy, points[0].accuracy - 0.05);
}

} // namespace
} // namespace neuro
