// Tests for the STDP training pipeline: unsupervised learning +
// self-labeling + evaluation, on a small two-class task so the suite
// stays fast.

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/snn/trainer.h"

namespace neuro {
namespace snn {
namespace {

/** Two-class task: top-half-bright vs bottom-half-bright 8x8 images. */
datasets::Dataset
makeHalves(std::size_t count, uint64_t seed)
{
    datasets::Dataset data("halves", 8, 8, 2);
    Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        datasets::Sample s;
        s.label = static_cast<int>(i % 2);
        s.pixels.assign(64, 0);
        for (std::size_t y = 0; y < 8; ++y) {
            const bool bright =
                (s.label == 0) ? (y < 4) : (y >= 4);
            for (std::size_t x = 0; x < 8; ++x) {
                s.pixels[y * 8 + x] = bright
                    ? static_cast<uint8_t>(200 + rng.uniformInt(56))
                    : static_cast<uint8_t>(rng.uniformInt(25));
            }
        }
        data.add(std::move(s));
    }
    return data;
}

SnnConfig
halvesConfig()
{
    SnnConfig config;
    config.numInputs = 64;
    config.numNeurons = 8;
    config.coding.periodMs = 200;
    config.coding.minIntervalMs = 20;
    config.tLeakMs = 200.0;
    config.initialThreshold = 0.5 * 32.0 * 8.0 * 127.0; // half drive.
    config.stdp.ltpIncrement = 12.0f;
    config.stdp.ltdDecrement = 3.0f;
    config.homeostasis.epochMs = 20 * 200;
    config.homeostasis.activityTarget = 5.0;
    config.homeostasis.rate = 0.08;
    config.homeostasis.minThreshold = config.initialThreshold * 0.25;
    return config;
}

TEST(SnnStdpTrainer, TrainingProducesSpikesAndCallback)
{
    const SnnConfig config = halvesConfig();
    const datasets::Dataset data = makeHalves(60, 1);
    Rng rng(2);
    SnnNetwork net(config, rng);
    SnnStdpTrainer trainer(config);
    SnnTrainConfig train;
    train.epochs = 2;
    std::size_t epochs_seen = 0;
    trainer.train(net, data, train, [&](const SnnEpochReport &r) {
        EXPECT_EQ(r.epoch, epochs_seen);
        ++epochs_seen;
        EXPECT_GT(r.outputSpikes, 0u);
    });
    EXPECT_EQ(epochs_seen, 2u);
}

TEST(SnnStdpTrainer, LearnsTwoClassTask)
{
    const SnnConfig config = halvesConfig();
    const datasets::Dataset train_set = makeHalves(200, 3);
    const datasets::Dataset test_set = makeHalves(60, 4);
    Rng rng(5);
    SnnNetwork net(config, rng);
    SnnStdpTrainer trainer(config);
    SnnTrainConfig train;
    train.epochs = 3;
    trainer.train(net, train_set, train);

    const auto labels =
        trainer.labelNeurons(net, train_set, EvalMode::Wt, 6);
    const auto wt =
        trainer.evaluate(net, labels, test_set, EvalMode::Wt, 7);
    EXPECT_GT(wt.accuracy, 0.85) << "STDP failed a separable 2-class task";

    const auto labels_wot =
        trainer.labelNeurons(net, train_set, EvalMode::Wot, 8);
    const auto wot =
        trainer.evaluate(net, labels_wot, test_set, EvalMode::Wot, 9);
    EXPECT_GT(wot.accuracy, 0.85);
}

TEST(SnnStdpTrainer, ConvenienceWrapperRuns)
{
    const SnnConfig config = halvesConfig();
    SnnTrainConfig train;
    train.epochs = 2;
    const double acc = trainAndEvaluateStdp(
        config, train, makeHalves(120, 10), makeHalves(40, 11),
        EvalMode::Wot, 12);
    EXPECT_GT(acc, 0.6);
}

TEST(SnnStdpTrainer, HomeostasisAblationChangesOutcome)
{
    // With homeostasis disabled the network still runs; the paper
    // reports ~5% accuracy from homeostasis on MNIST. Here we only
    // assert the ablation path works and produces a valid accuracy.
    SnnConfig config = halvesConfig();
    config.homeostasis.enabled = false;
    SnnTrainConfig train;
    train.epochs = 2;
    const double acc = trainAndEvaluateStdp(
        config, train, makeHalves(120, 13), makeHalves(40, 14),
        EvalMode::Wt, 15);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

} // namespace
} // namespace snn
} // namespace neuro
