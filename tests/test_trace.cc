// Trace-layer tests: a small SNN training run recorded through the
// Chrome trace_event sink must produce valid JSON with paired,
// monotonically timestamped events; with tracing disabled the run must
// leave no trace file content and no scope entries in the registry.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "neuro/common/profile.h"
#include "neuro/common/rng.h"
#include "neuro/common/trace.h"
#include "neuro/snn/trainer.h"

namespace neuro {
namespace {

/** Two-class 8x8 task, as in the trainer tests but tiny. */
datasets::Dataset
makeHalves(std::size_t count, uint64_t seed)
{
    datasets::Dataset data("halves", 8, 8, 2);
    Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        datasets::Sample s;
        s.label = static_cast<int>(i % 2);
        s.pixels.assign(64, 0);
        for (std::size_t y = 0; y < 8; ++y) {
            const bool bright = (s.label == 0) ? (y < 4) : (y >= 4);
            for (std::size_t x = 0; x < 8; ++x) {
                s.pixels[y * 8 + x] = bright
                    ? static_cast<uint8_t>(200 + rng.uniformInt(56))
                    : static_cast<uint8_t>(rng.uniformInt(25));
            }
        }
        data.add(std::move(s));
    }
    return data;
}

snn::SnnConfig
tinyConfig()
{
    snn::SnnConfig config;
    config.numInputs = 64;
    config.numNeurons = 4;
    config.coding.periodMs = 100;
    config.coding.minIntervalMs = 20;
    config.tLeakMs = 200.0;
    config.initialThreshold = 0.5 * 32.0 * 8.0 * 127.0;
    config.homeostasis.epochMs = 20 * 100;
    return config;
}

void
runTinyTraining()
{
    const datasets::Dataset data = makeHalves(10, 3);
    const snn::SnnConfig config = tinyConfig();
    Rng rng(5);
    snn::SnnNetwork net(config, rng);
    snn::SnnStdpTrainer trainer(config);
    snn::SnnTrainConfig train;
    train.epochs = 1;
    trainer.train(net, data, train);
}

/** One parsed trace event (the fields our validator cares about). */
struct TraceEvent
{
    std::string name;
    char phase = 0;
    double ts = 0.0;
    int tid = 0;
    bool hasArgsValue = false;
};

/** Extract a JSON string field; fails the test if absent. */
std::string
stringField(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":\"";
    const auto pos = line.find(needle);
    EXPECT_NE(pos, std::string::npos) << key << " missing in " << line;
    if (pos == std::string::npos)
        return "";
    const auto start = pos + needle.size();
    const auto end = line.find('"', start);
    EXPECT_NE(end, std::string::npos);
    return line.substr(start, end - start);
}

/** Extract a JSON numeric field; fails the test if absent. */
double
numberField(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = line.find(needle);
    EXPECT_NE(pos, std::string::npos) << key << " missing in " << line;
    if (pos == std::string::npos)
        return 0.0;
    return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

/**
 * Parse the trace file back: structural JSON validation (balanced
 * braces/brackets outside strings, array framing) plus per-line event
 * extraction (the writer emits one event object per line).
 */
std::vector<TraceEvent>
parseTrace(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    // Structural validation.
    int depth = 0;
    bool inString = false;
    bool escaped = false;
    for (const char c : text) {
        if (inString) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"')
            inString = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0) << "unbalanced JSON";
    }
    EXPECT_EQ(depth, 0) << "unbalanced JSON";
    EXPECT_FALSE(inString) << "unterminated string";
    EXPECT_EQ(text.find_first_not_of(" \n\t"), text.find('['))
        << "not a JSON array";

    // Event extraction.
    std::vector<TraceEvent> events;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.find('{') == std::string::npos)
            continue;
        TraceEvent ev;
        ev.name = stringField(line, "name");
        const std::string ph = stringField(line, "ph");
        EXPECT_EQ(ph.size(), 1u);
        ev.phase = ph.empty() ? 0 : ph[0];
        ev.ts = numberField(line, "ts");
        ev.tid = static_cast<int>(numberField(line, "tid"));
        ev.hasArgsValue =
            line.find("\"args\":{\"value\":") != std::string::npos;
        events.push_back(std::move(ev));
    }
    return events;
}

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Profiler::instance().setEnabled(false);
        Profiler::instance().reset();
        Tracer::instance().stop();
    }

    void
    TearDown() override
    {
        Tracer::instance().stop();
        Profiler::instance().setEnabled(false);
        Profiler::instance().reset();
    }
};

TEST_F(TraceTest, SnnTrainingEmitsValidPairedChromeTrace)
{
    const std::string path =
        ::testing::TempDir() + "/neuro_trace_test.json";
    ASSERT_TRUE(Tracer::instance().start(path));
    runTinyTraining();
    Tracer::instance().stop();

    const std::vector<TraceEvent> events = parseTrace(path);
    ASSERT_FALSE(events.empty());

    // Timestamps are monotonic in file order and begin/end events nest
    // properly per thread (single-threaded here: one global stack).
    double last_ts = 0.0;
    std::vector<std::string> stack;
    std::map<std::string, int64_t> balance;
    std::size_t counters = 0;
    for (const TraceEvent &ev : events) {
        EXPECT_GE(ev.ts, last_ts) << "timestamps must be monotonic";
        last_ts = ev.ts;
        switch (ev.phase) {
          case 'B':
            stack.push_back(ev.name);
            ++balance[ev.name];
            break;
          case 'E':
            ASSERT_FALSE(stack.empty())
                << "end event without begin: " << ev.name;
            EXPECT_EQ(stack.back(), ev.name) << "misnested scope";
            stack.pop_back();
            --balance[ev.name];
            break;
          case 'C':
            EXPECT_TRUE(ev.hasArgsValue)
                << "counter without value: " << ev.name;
            ++counters;
            break;
          case 'i':
            break;
          default:
            ADD_FAILURE() << "unknown phase '" << ev.phase << "'";
        }
    }
    EXPECT_TRUE(stack.empty()) << "unclosed scopes remain";
    for (const auto &[name, b] : balance)
        EXPECT_EQ(b, 0) << "unbalanced begin/end for " << name;

    // The instrumented layers all show up.
    EXPECT_GT(balance.count("snn/train"), 0u);
    EXPECT_GT(balance.count("snn/train/epoch"), 0u);
    // Presentations run under the engine's scope: "snn/present" for
    // the dense walk, "snn/present_events" for the event engine.
    EXPECT_GT(balance.count("snn/present") +
                  balance.count("snn/present_events"),
              0u);
    EXPECT_GT(counters, 0u);
    bool sawSpikeCounter = false;
    for (const TraceEvent &ev : events) {
        if (ev.phase == 'C' && ev.name == "snn.input_spikes")
            sawSpikeCounter = true;
    }
    EXPECT_TRUE(sawSpikeCounter);
    std::remove(path.c_str());
}

TEST_F(TraceTest, DisabledTracingRecordsNothing)
{
    ASSERT_FALSE(Tracer::enabled());
    runTinyTraining();
    const StatRegistry snap = Profiler::instance().snapshot();
    EXPECT_EQ(snap.distribution("scope/snn/train").count(), 0u);
    EXPECT_EQ(snap.distribution("scope/snn/present").count(), 0u);
    EXPECT_EQ(snap.counter("snn.input_spikes"), 0u);
    std::ostringstream os;
    snap.dump(os);
    EXPECT_EQ(os.str().find("scope/"), std::string::npos);
}

} // namespace
} // namespace neuro
