/**
 * @file
 * Runtime tests for the annotated synchronization wrappers
 * (common/mutex.h). The Clang thread-safety attributes are checked at
 * compile time (the `tsa` preset and the tests/tsa fixtures); this
 * suite verifies the wrappers behave like the std primitives they
 * wrap: mutual exclusion, guard scoping, condition-variable wakeups
 * and timed waits.
 */

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "neuro/common/mutex.h"

using neuro::CondVar;
using neuro::Mutex;
using neuro::MutexGuard;

TEST(Mutex, GuardProvidesMutualExclusion)
{
    Mutex mutex;
    int counter = 0;
    std::vector<std::thread> threads;
    constexpr int kThreads = 8;
    constexpr int kIters = 2000;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                MutexGuard lock(mutex);
                ++counter;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Mutex, GuardReleasesAtScopeExit)
{
    Mutex mutex;
    {
        MutexGuard lock(mutex);
    }
    // Re-acquiring on the same thread only works if the guard above
    // released; a leaked lock would deadlock (and trip the timeout).
    MutexGuard lock(mutex);
    SUCCEED();
}

TEST(CondVar, WaitWakesOnNotify)
{
    Mutex mutex;
    CondVar cv;
    bool ready = false;
    std::thread waiter([&] {
        MutexGuard lock(mutex);
        while (!ready)
            cv.wait(mutex);
    });
    {
        MutexGuard lock(mutex);
        ready = true;
    }
    cv.notifyOne();
    waiter.join();
    EXPECT_TRUE(ready);
}

TEST(CondVar, WaitUntilTimesOut)
{
    Mutex mutex;
    CondVar cv;
    MutexGuard lock(mutex);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(5);
    // Nothing ever notifies: the wait must come back with timeout
    // once the deadline passes (spurious wakeups return no_timeout,
    // hence the loop).
    for (;;) {
        const std::cv_status status = cv.waitUntil(mutex, deadline);
        if (status == std::cv_status::timeout)
            break;
        ASSERT_LT(std::chrono::steady_clock::now(),
                  deadline + std::chrono::seconds(30));
    }
    EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(CondVar, WaitForWakesAllWaiters)
{
    Mutex mutex;
    CondVar cv;
    bool go = false;
    int awake = 0;
    std::vector<std::thread> waiters;
    constexpr int kWaiters = 4;
    waiters.reserve(kWaiters);
    for (int i = 0; i < kWaiters; ++i) {
        waiters.emplace_back([&] {
            MutexGuard lock(mutex);
            while (!go)
                cv.wait(mutex);
            ++awake;
        });
    }
    {
        MutexGuard lock(mutex);
        go = true;
    }
    cv.notifyAll();
    for (std::thread &t : waiters)
        t.join();
    EXPECT_EQ(awake, kWaiters);
}
