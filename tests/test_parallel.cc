// Tests for the work-chunking thread pool: exact-once coverage under
// adversarial grain sizes, exception propagation, nesting, and the
// bit-identical-at-any-thread-count contract of the parallel
// evaluation/labeling paths built on it.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "neuro/common/parallel.h"
#include "neuro/common/rng.h"
#include "neuro/core/experiment.h"
#include "neuro/core/explorer.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/mlp/backprop.h"
#include "neuro/mlp/mlp.h"
#include "neuro/snn/trainer.h"

namespace neuro {
namespace {

/** Restores the ambient thread count when a test body returns. */
class ThreadCountGuard
{
  public:
    explicit ThreadCountGuard(std::size_t n)
        : saved_(parallelThreadCount())
    {
        setParallelThreadCount(n);
    }
    ~ThreadCountGuard() { setParallelThreadCount(saved_); }

  private:
    std::size_t saved_;
};

TEST(ThreadPool, ResolvesAtLeastOneThread)
{
    EXPECT_GE(parallelThreadCount(), 1u);
}

TEST(ThreadPool, SetThreadCountRestartsWorkers)
{
    ThreadCountGuard guard(3);
    EXPECT_EQ(parallelThreadCount(), 3u);
    setParallelThreadCount(1);
    EXPECT_EQ(parallelThreadCount(), 1u);
    setParallelThreadCount(2);
    EXPECT_EQ(parallelThreadCount(), 2u);
    // The pool must still execute work after every reconfiguration.
    std::atomic<std::size_t> sum{0};
    parallelFor(std::size_t{0}, std::size_t{100},
                [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, CoversRangeExactlyOnceUnderAdversarialGrains)
{
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{5}}) {
        ThreadCountGuard guard(threads);
        const std::size_t begin = 13, end = 13 + 997;
        for (std::size_t grain : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}, std::size_t{997},
                                  std::size_t{9970}}) {
            std::vector<std::atomic<int>> hits(end);
            for (auto &h : hits)
                h.store(0);
            parallelForRange(begin, end, grain,
                             [&](std::size_t i0, std::size_t i1) {
                                 ASSERT_LE(i0, i1);
                                 ASSERT_LE(i1, end);
                                 for (std::size_t i = i0; i < i1; ++i)
                                     ++hits[i];
                             });
            for (std::size_t i = 0; i < begin; ++i)
                EXPECT_EQ(hits[i].load(), 0) << "threads=" << threads;
            for (std::size_t i = begin; i < end; ++i) {
                EXPECT_EQ(hits[i].load(), 1)
                    << "i=" << i << " grain=" << grain
                    << " threads=" << threads;
            }
        }
    }
}

TEST(ThreadPool, EmptyAndSingletonRanges)
{
    ThreadCountGuard guard(4);
    int calls = 0;
    parallelForRange(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelForRange(5, 4, 1, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    // A one-element range runs inline on the caller.
    std::size_t seen_begin = 99, seen_end = 0;
    parallelForRange(7, 8, 1, [&](std::size_t i0, std::size_t i1) {
        seen_begin = i0;
        seen_end = i1;
    });
    EXPECT_EQ(seen_begin, 7u);
    EXPECT_EQ(seen_end, 8u);
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable)
{
    ThreadCountGuard guard(4);
    EXPECT_THROW(
        parallelFor(std::size_t{0}, std::size_t{64}, std::size_t{1},
                    [](std::size_t i) {
                        if (i == 17)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // The pool survives a failed job and runs the next one normally.
    std::atomic<std::size_t> count{0};
    parallelFor(std::size_t{0}, std::size_t{64},
                [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPool, NestedParallelismRunsInline)
{
    ThreadCountGuard guard(4);
    std::atomic<std::size_t> inner_total{0};
    parallelFor(std::size_t{0}, std::size_t{8}, std::size_t{1},
                [&](std::size_t) {
                    EXPECT_TRUE(ThreadPool::inParallelRegion());
                    // The nested call must complete serially (no
                    // deadlock) and still cover its range.
                    std::size_t local = 0;
                    parallelFor(std::size_t{0}, std::size_t{10},
                                [&](std::size_t i) { local += i; });
                    inner_total += local;
                });
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    EXPECT_EQ(inner_total.load(), 8u * 45u);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder)
{
    ThreadCountGuard guard(4);
    const auto squares = parallelMap<std::size_t>(
        257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 257u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ThreadPool, ParallelInvokeRunsEveryTask)
{
    ThreadCountGuard guard(3);
    std::vector<int> done(5, 0);
    std::vector<std::function<void()>> tasks;
    for (std::size_t t = 0; t < done.size(); ++t)
        tasks.push_back([&done, t] { done[t] = 1; });
    parallelInvoke(std::move(tasks));
    for (int d : done)
        EXPECT_EQ(d, 1);
}

TEST(Rng, DeriveStreamSeedSeparatesStreams)
{
    // Adjacent sample indices must yield well-separated streams, and
    // the derivation must not depend on call order.
    const uint64_t a = deriveStreamSeed(42, 0);
    const uint64_t b = deriveStreamSeed(42, 1);
    const uint64_t c = deriveStreamSeed(43, 0);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a, deriveStreamSeed(42, 0));
    Rng ra(a), rb(b);
    int agree = 0;
    for (int i = 0; i < 64; ++i)
        agree += ra.uniform() == rb.uniform();
    EXPECT_LT(agree, 4);
}

/** One fixture-scale workload shared by the determinism tests. */
const core::Workload &
smallWorkload()
{
    static const core::Workload w = core::makeMnistWorkload(120, 60, 5);
    return w;
}

TEST(Determinism, MlpEvaluateIsThreadCountInvariant)
{
    const core::Workload &w = smallWorkload();
    mlp::MlpConfig config = core::defaultMlpConfig(w);
    config.layerSizes[1] = 12;
    Rng rng(3);
    mlp::Mlp net(config, rng);
    mlp::TrainConfig train;
    train.epochs = 1;
    mlp::train(net, w.data.train, train);

    std::vector<double> accs;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
        ThreadCountGuard guard(threads);
        accs.push_back(mlp::evaluate(net, w.data.test));
    }
    EXPECT_EQ(accs[0], accs[1]);
    EXPECT_EQ(accs[0], accs[2]);
}

TEST(Determinism, MlpMinibatchTrainingIsThreadCountInvariant)
{
    const core::Workload &w = smallWorkload();
    mlp::MlpConfig config = core::defaultMlpConfig(w);
    config.layerSizes[1] = 12;
    mlp::TrainConfig train;
    train.epochs = 1;
    train.batchSize = 8;

    std::vector<std::vector<float>> weights;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
        ThreadCountGuard guard(threads);
        Rng rng(3);
        mlp::Mlp net(config, rng);
        mlp::train(net, w.data.train, train);
        std::vector<float> flat;
        for (std::size_t l = 0; l < net.numLayers(); ++l) {
            const auto &d = net.weights(l).data();
            flat.insert(flat.end(), d.begin(), d.end());
        }
        weights.push_back(std::move(flat));
    }
    EXPECT_EQ(weights[0], weights[1]);
    EXPECT_EQ(weights[0], weights[2]);
}

TEST(Determinism, SnnLabelAndEvaluateAreThreadCountInvariant)
{
    const core::Workload &w = smallWorkload();
    snn::SnnConfig config =
        core::defaultSnnConfig(w, w.data.train.size());
    config.numNeurons = 20;
    core::retuneSnnForTopology(config, w.data.train.size());
    Rng rng(5);
    snn::SnnNetwork net(config, rng);
    snn::SnnStdpTrainer trainer(config);
    snn::SnnTrainConfig train;
    train.epochs = 1;
    trainer.train(net, w.data.train, train);

    for (snn::EvalMode mode : {snn::EvalMode::Wt, snn::EvalMode::Wot}) {
        std::vector<std::vector<int>> labels;
        std::vector<double> accs;
        std::vector<std::size_t> silents;
        for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
            ThreadCountGuard guard(threads);
            labels.push_back(
                trainer.labelNeurons(net, w.data.train, mode, 31));
            const auto result = trainer.evaluate(
                net, labels.back(), w.data.test, mode, 32);
            accs.push_back(result.accuracy);
            silents.push_back(result.silent);
        }
        EXPECT_EQ(labels[0], labels[1]);
        EXPECT_EQ(labels[0], labels[2]);
        EXPECT_EQ(accs[0], accs[1]);
        EXPECT_EQ(accs[0], accs[2]);
        EXPECT_EQ(silents[0], silents[1]);
        EXPECT_EQ(silents[0], silents[2]);
    }
}

TEST(Determinism, SnnEvaluateMatchesHandRolledSerialReference)
{
    // Independent re-derivation of the sharded Wt path: per-sample Rng
    // from (seed, i), fresh presentation per image, first-spike
    // readout. Must agree with trainer.evaluate at any thread count.
    const core::Workload &w = smallWorkload();
    snn::SnnConfig config =
        core::defaultSnnConfig(w, w.data.train.size());
    config.numNeurons = 15;
    core::retuneSnnForTopology(config, w.data.train.size());
    Rng rng(6);
    snn::SnnNetwork net(config, rng);
    snn::SnnStdpTrainer trainer(config);
    snn::SnnTrainConfig train;
    train.epochs = 1;
    trainer.train(net, w.data.train, train);
    const auto labels =
        trainer.labelNeurons(net, w.data.train, snn::EvalMode::Wt, 31);

    const uint64_t eval_seed = 32;
    std::size_t ref_correct = 0;
    {
        snn::SnnNetwork copy(net);
        for (std::size_t i = 0; i < w.data.test.size(); ++i) {
            Rng sample_rng(deriveStreamSeed(eval_seed, i));
            const auto grid = trainer.encoder().encode(
                w.data.test[i].pixels.data(),
                w.data.test[i].pixels.size(), sample_rng);
            const auto r = copy.presentImage(grid, /*learn=*/false);
            const int winner = r.winner(snn::Readout::FirstSpike);
            if (winner >= 0 &&
                labels[static_cast<std::size_t>(winner)] ==
                    w.data.test[i].label)
                ++ref_correct;
        }
    }
    const double ref_acc = static_cast<double>(ref_correct) /
        static_cast<double>(w.data.test.size());

    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ThreadCountGuard guard(threads);
        const auto result = trainer.evaluate(
            net, labels, w.data.test, snn::EvalMode::Wt, eval_seed);
        EXPECT_EQ(result.accuracy, ref_acc) << "threads=" << threads;
    }
}

TEST(Determinism, SweepsAreThreadCountInvariant)
{
    const core::Workload &w = smallWorkload();
    std::vector<std::vector<core::SweepPoint>> runs;
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ThreadCountGuard guard(threads);
        runs.push_back(core::sweepMlpHidden(w, {5, 10, 15}, 21));
    }
    ASSERT_EQ(runs[0].size(), runs[1].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
        EXPECT_EQ(runs[0][i].parameter, runs[1][i].parameter);
        EXPECT_EQ(runs[0][i].accuracy, runs[1][i].accuracy);
    }
}

} // namespace
} // namespace neuro
