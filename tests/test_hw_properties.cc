// Property-style tests over the hardware composition: invariants that
// must hold for arbitrary topologies and fold factors, plus the pooled
// (few-hardware-neuron) folding generalization and the umbrella header.

#include <gtest/gtest.h>

#include "neuro/neuro.h" // also verifies the umbrella header compiles.

namespace neuro {
namespace hw {
namespace {

struct TopoCase
{
    std::size_t inputs;
    std::size_t hidden;
    std::size_t outputs;
    std::size_t ni;
};

class FoldedInvariantTest : public ::testing::TestWithParam<TopoCase>
{
};

TEST_P(FoldedInvariantTest, AreasEnergiesCyclesArePositiveAndConsistent)
{
    const auto [inputs, hidden, outputs, ni] = GetParam();
    const MlpTopology mlp{inputs, hidden, outputs};
    const SnnTopology snn{inputs, hidden * 3};

    for (const Design &d :
         {buildFoldedMlp(mlp, ni), buildFoldedSnnWot(snn, ni),
          buildFoldedSnnWt(snn, ni, 100)}) {
        EXPECT_GT(d.areaNoSramMm2(), 0.0) << d.name();
        EXPECT_GT(d.sramAreaMm2(), 0.0) << d.name();
        EXPECT_NEAR(d.totalAreaMm2(),
                    d.areaNoSramMm2() + d.sramAreaMm2(), 1e-9)
            << d.name();
        EXPECT_GT(d.clockNs(), 0.0) << d.name();
        EXPECT_GT(d.cyclesPerImage(), 0u) << d.name();
        EXPECT_GT(d.totalEnergyPerImageUj(), 0.0) << d.name();
        EXPECT_GE(d.totalEnergyPerImageUj(), d.energyPerImageUj())
            << d.name();
        EXPECT_GT(d.powerW(), 0.0) << d.name();
    }
}

TEST_P(FoldedInvariantTest, MoreParallelismFewerCycles)
{
    const auto [inputs, hidden, outputs, ni] = GetParam();
    const MlpTopology mlp{inputs, hidden, outputs};
    if (ni >= 2) {
        EXPECT_LE(foldedMlpCycles(mlp, ni),
                  foldedMlpCycles(mlp, ni / 2));
    }
    EXPECT_GE(foldedMlpCycles(mlp, ni), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, FoldedInvariantTest,
    ::testing::Values(TopoCase{784, 100, 10, 1},
                      TopoCase{784, 100, 10, 16},
                      TopoCase{169, 60, 10, 4},
                      TopoCase{169, 60, 10, 8},
                      TopoCase{784, 15, 10, 2},
                      TopoCase{1024, 256, 32, 16},
                      TopoCase{64, 8, 4, 1},
                      TopoCase{64, 8, 4, 32}));

TEST(PooledFolding, SpecialCaseMatchesStandardDesign)
{
    const MlpTopology mlp{784, 100, 10};
    // hw_neurons >= widest layer: one pass per layer, same cycles as
    // the Table 7 design.
    EXPECT_EQ(foldedMlpPooledCycles(mlp, 16, 100),
              foldedMlpCycles(mlp, 16));
}

TEST(PooledFolding, FewerNeuronsMorePassesSmallerLogic)
{
    const MlpTopology mlp{784, 100, 10};
    const Design full = buildFoldedMlpPooled(mlp, 16, 100);
    const Design quarter = buildFoldedMlpPooled(mlp, 16, 25);
    const Design tiny = buildFoldedMlpPooled(mlp, 16, 5);
    // Logic shrinks with the pool...
    EXPECT_GT(full.areaNoSramMm2(), quarter.areaNoSramMm2());
    EXPECT_GT(quarter.areaNoSramMm2(), tiny.areaNoSramMm2());
    // ...while cycles grow.
    EXPECT_LT(full.cyclesPerImage(), quarter.cyclesPerImage());
    EXPECT_LT(quarter.cyclesPerImage(), tiny.cyclesPerImage());
    // The per-image MAC work is constant: energy stays the same order.
    EXPECT_NEAR(tiny.energyPerImageUj() / full.energyPerImageUj(), 1.0,
                0.9);
}

TEST(PooledFolding, CycleFormula)
{
    const MlpTopology mlp{784, 100, 10};
    // 25-neuron pool: hidden needs 4 passes of (49+1), output 1 pass of
    // (7+1) at ni=16.
    EXPECT_EQ(foldedMlpPooledCycles(mlp, 16, 25), 4u * 50 + 1 * 8);
}

TEST(UmbrellaHeader, VersionDefined)
{
    EXPECT_EQ(NEURO_VERSION_MAJOR, 1);
}

TEST(DesignComposition, OperatorBreakdownSumsToTotal)
{
    const Design d = buildFoldedSnnWot({784, 300}, 8);
    double groups_um2 = 0.0;
    for (const auto &g : d.groups())
        groups_um2 += g.totalAreaUm2();
    // Groups + register area = logic area.
    EXPECT_LE(groups_um2 / 1e6, d.areaNoSramMm2());
    EXPECT_GT(groups_um2 / 1e6, d.areaNoSramMm2() * 0.5);
}

} // namespace
} // namespace hw
} // namespace neuro
