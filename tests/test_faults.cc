// Tests for fault injection into the quantized datapaths.

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/core/faults.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/mlp/backprop.h"

namespace neuro {
namespace core {
namespace {

TEST(FaultModelNames, Distinct)
{
    EXPECT_STRNE(faultModelName(FaultModel::StuckAtZero),
                 faultModelName(FaultModel::StuckAtOne));
    EXPECT_STRNE(faultModelName(FaultModel::StuckAtOne),
                 faultModelName(FaultModel::BitFlip));
}

TEST(QuantizedMlpFaultApi, FlatIndexingCoversAllLayers)
{
    mlp::MlpConfig config;
    config.layerSizes = {6, 4, 2};
    Rng rng(1);
    const mlp::Mlp net(config, rng);
    mlp::QuantizedMlp quant(net);
    EXPECT_EQ(quant.totalWeights(), 7u * 4 + 5 * 2);
    // Round-trip every address.
    for (std::size_t i = 0; i < quant.totalWeights(); ++i) {
        const int8_t before = quant.weightAt(i);
        quant.setWeightAt(i, static_cast<int8_t>(before + 1));
        EXPECT_EQ(quant.weightAt(i), static_cast<int8_t>(before + 1));
        quant.setWeightAt(i, before);
    }
}

class FaultSweepTest : public ::testing::TestWithParam<FaultModel>
{
  protected:
    static const datasets::Split &
    data()
    {
        static const datasets::Split split = [] {
            datasets::SynthDigitsOptions opt;
            opt.trainSize = 400;
            opt.testSize = 120;
            return datasets::makeSynthDigits(opt);
        }();
        return split;
    }
};

TEST_P(FaultSweepTest, MlpDegradesGracefullyAndMonotonically)
{
    mlp::MlpConfig config;
    config.layerSizes = {784, 12, 10};
    Rng rng(2);
    mlp::Mlp net(config, rng);
    mlp::TrainConfig train;
    train.epochs = 5;
    mlp::train(net, data().train, train);

    const auto points = mlpFaultSweep(net, data().test,
                                      {0.0, 0.02, 0.5}, GetParam(), 11);
    ASSERT_EQ(points.size(), 3u);
    const double clean = points[0].accuracy;
    EXPECT_GT(clean, 0.7);
    // 2% faults cost little (graceful degradation)...
    EXPECT_GT(points[1].accuracy, clean - 0.25);
    // ...while 50% faults are clearly destructive for stuck-at-1.
    if (GetParam() == FaultModel::StuckAtOne) {
        EXPECT_LT(points[2].accuracy, clean);
    }
}

INSTANTIATE_TEST_SUITE_P(Models, FaultSweepTest,
                         ::testing::Values(FaultModel::StuckAtZero,
                                           FaultModel::StuckAtOne,
                                           FaultModel::BitFlip));

TEST(SnnFaultSweep, ZeroRateMatchesCleanAccuracy)
{
    snn::SnnConfig config;
    config.numInputs = 784;
    config.numNeurons = 10;
    Rng rng(3);
    snn::SnnNetwork net(config, rng);
    std::vector<int> labels(10);
    for (int i = 0; i < 10; ++i)
        labels[static_cast<std::size_t>(i)] = i;

    datasets::SynthDigitsOptions opt;
    opt.trainSize = 1;
    opt.testSize = 60;
    const datasets::Split split = datasets::makeSynthDigits(opt);

    const auto a =
        snnFaultSweep(net, labels, split.test, {0.0}, FaultModel::BitFlip,
                      5);
    const auto b =
        snnFaultSweep(net, labels, split.test, {0.0},
                      FaultModel::StuckAtOne, 99);
    // No faults injected: both runs measure the same clean accuracy.
    EXPECT_DOUBLE_EQ(a[0].accuracy, b[0].accuracy);
}

} // namespace
} // namespace core
} // namespace neuro
