// Tests for the telemetry layer: histogram percentile bounds and merge
// semantics, concurrent recording, the metric registry, the sampler
// ring, and golden-file checks of all three exporters.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "neuro/telemetry/export.h"
#include "neuro/telemetry/histogram.h"
#include "neuro/telemetry/metrics.h"
#include "neuro/telemetry/sampler.h"

namespace neuro {
namespace telemetry {
namespace {

// --------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogram, EmptyIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.maxMicros(), 0.0);
    EXPECT_DOUBLE_EQ(h.sumMicros(), 0.0);
}

TEST(LatencyHistogram, PercentileUpperBoundWithinBucketError)
{
    // Log-linear bucketing with 8 sub-buckets per octave bounds the
    // quantile error by the bucket width: <= 12.5% above the true
    // value, never below it.
    LatencyHistogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 1000u);
    for (double q : {0.5, 0.95, 0.99}) {
        const double exact = q * 1000.0;
        const double estimate = h.percentile(q);
        EXPECT_GE(estimate, exact * 0.999) << "q=" << q;
        EXPECT_LE(estimate, exact * 1.125 + 1.0) << "q=" << q;
    }
    EXPECT_GE(h.maxMicros(), 1000.0);
    EXPECT_LE(h.maxMicros(), 1125.0);
    // sumMicros is an upper bound built from bucket upper bounds.
    const double exactSum = 1000.0 * 1001.0 / 2.0;
    EXPECT_GE(h.sumMicros(), exactSum);
    EXPECT_LE(h.sumMicros(), exactSum * 1.125);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording)
{
    LatencyHistogram a, b, combined;
    for (int i = 0; i < 500; ++i) {
        const double va = 10.0 + i;
        const double vb = 5000.0 + 3 * i;
        a.record(va);
        b.record(vb);
        combined.record(va);
        combined.record(vb);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(a.percentile(q), combined.percentile(q))
            << "q=" << q;
    EXPECT_DOUBLE_EQ(a.sumMicros(), combined.sumMicros());
    EXPECT_DOUBLE_EQ(a.maxMicros(), combined.maxMicros());
}

TEST(LatencyHistogram, MergeIntoEmptyCopies)
{
    LatencyHistogram a, b;
    b.record(42.0);
    b.record(64.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.percentile(1.0), b.percentile(1.0));
}

TEST(LatencyHistogram, ConcurrentRecordingLosesNothing)
{
    // record() is two relaxed atomic increments; four writers hammering
    // the same histogram must never lose a sample (run under TSan in
    // CI).
    LatencyHistogram h;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            for (int i = 0; i < kPerThread; ++i)
                h.record(static_cast<double>((t + 1) * 17 + i % 997));
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(h.count(),
              static_cast<uint64_t>(kThreads) * kPerThread);
    const LatencyHistogram::Summary total = h.summary();
    EXPECT_EQ(total.count, h.count());
    EXPECT_GT(total.p50Us, 0.0);
}

// --------------------------------------------------------------------
// MetricRegistry

TEST(MetricRegistry, GetOrCreateReturnsSameHandle)
{
    MetricRegistry reg;
    auto c1 = reg.counter("a.count");
    auto c2 = reg.counter("a.count");
    EXPECT_EQ(c1.get(), c2.get());
    c1->inc(3);
    EXPECT_EQ(c2->value(), 3u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricRegistry, GaugeLastWriteWins)
{
    MetricRegistry reg;
    auto g = reg.gauge("depth");
    g->set(4.0);
    g->set(2.5);
    EXPECT_DOUBLE_EQ(g->value(), 2.5);
}

TEST(MetricRegistry, SnapshotIsSortedByName)
{
    MetricRegistry reg;
    reg.counter("z.last")->inc();
    reg.counter("a.first")->inc(2);
    reg.gauge("m.middle")->set(1.0);
    reg.histogram("h.lat")->record(10.0);

    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].name, "a.first");
    EXPECT_EQ(snap.counters[0].value, 2u);
    EXPECT_EQ(snap.counters[1].name, "z.last");
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].name, "m.middle");
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].name, "h.lat");
    EXPECT_EQ(snap.histograms[0].summary.count, 1u);
}

TEST(MetricRegistry, ResetValuesKeepsRegistrations)
{
    MetricRegistry reg;
    auto c = reg.counter("n");
    auto h = reg.histogram("lat");
    c->inc(9);
    h->record(100.0);
    reg.resetValues();
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(c->value(), 0u);   // same handle, zeroed value.
    EXPECT_EQ(h->count(), 0u);
}

TEST(MetricRegistry, GlobalInstanceIsStable)
{
    EXPECT_EQ(&MetricRegistry::instance(), &MetricRegistry::instance());
}

// --------------------------------------------------------------------
// Sampler

TEST(Sampler, SampleOnceAppendsRows)
{
    MetricRegistry reg;
    auto c = reg.counter("ticks");
    Sampler sampler(reg);
    c->inc();
    sampler.sampleOnce();
    c->inc();
    sampler.sampleOnce();
    const auto rows = sampler.rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].snapshot.counters[0].value, 1u);
    EXPECT_EQ(rows[1].snapshot.counters[0].value, 2u);
    EXPECT_LE(rows[0].timeS, rows[1].timeS);
    EXPECT_EQ(sampler.dropped(), 0u);
}

TEST(Sampler, RingEvictsOldestAtCapacity)
{
    MetricRegistry reg;
    auto c = reg.counter("n");
    SamplerConfig config;
    config.capacity = 3;
    Sampler sampler(reg, config);
    for (int i = 0; i < 5; ++i) {
        c->inc();
        sampler.sampleOnce();
    }
    const auto rows = sampler.rows();
    ASSERT_EQ(rows.size(), 3u);
    // Oldest two rows (values 1 and 2) were evicted.
    EXPECT_EQ(rows[0].snapshot.counters[0].value, 3u);
    EXPECT_EQ(rows[2].snapshot.counters[0].value, 5u);
    EXPECT_EQ(sampler.dropped(), 2u);
}

TEST(Sampler, BackgroundThreadCollectsRows)
{
    MetricRegistry reg;
    reg.counter("alive")->inc();
    SamplerConfig config;
    config.periodMillis = 1;
    Sampler sampler(reg, config);
    sampler.start();
    sampler.start(); // idempotent.
    while (sampler.rows().size() < 3)
        std::this_thread::yield();
    sampler.stop();
    sampler.stop(); // idempotent.
    EXPECT_GE(sampler.rows().size(), 3u);
}

// --------------------------------------------------------------------
// Exporters (golden strings — deterministic %.6g formatting)

MetricsSnapshot
goldenSnapshot()
{
    MetricRegistry reg;
    reg.counter("serve.completed")->inc(128);
    reg.counter("serve.rejected")->inc(2);
    reg.gauge("serve.queue_depth")->set(7.5);
    auto h = reg.histogram("serve.stage.queue");
    // 64 falls in the [64, 72) bucket, whose upper bound 72 is what
    // every quantile readout reports.
    for (int i = 0; i < 10; ++i)
        h->record(64.0);
    return reg.snapshot();
}

TEST(Exporters, PrometheusGolden)
{
    std::ostringstream os;
    writePrometheus(goldenSnapshot(), os);
    const std::string expected =
        "# TYPE serve_completed counter\n"
        "serve_completed 128\n"
        "# TYPE serve_rejected counter\n"
        "serve_rejected 2\n"
        "# TYPE serve_queue_depth gauge\n"
        "serve_queue_depth 7.5\n"
        "# TYPE serve_stage_queue summary\n"
        "serve_stage_queue{quantile=\"0.5\"} 72\n"
        "serve_stage_queue{quantile=\"0.95\"} 72\n"
        "serve_stage_queue{quantile=\"0.99\"} 72\n"
        "serve_stage_queue_sum 720\n"
        "serve_stage_queue_count 10\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(Exporters, PrometheusNameSanitization)
{
    EXPECT_EQ(prometheusName("serve.stage.queue"), "serve_stage_queue");
    EXPECT_EQ(prometheusName("ok_name:sub"), "ok_name:sub");
    EXPECT_EQ(prometheusName("weird-name x"), "weird_name_x");
}

TEST(Exporters, JsonGolden)
{
    std::ostringstream os;
    writeJson(goldenSnapshot(), os);
    const std::string expected =
        "{\n"
        "  \"counters\": {\n"
        "    \"serve.completed\": 128,\n"
        "    \"serve.rejected\": 2\n"
        "  },\n"
        "  \"gauges\": {\n"
        "    \"serve.queue_depth\": 7.5\n"
        "  },\n"
        "  \"histograms\": {\n"
        "    \"serve.stage.queue\": {\"count\": 10, \"p50_us\": 72, "
        "\"p95_us\": 72, \"p99_us\": 72, \"max_us\": 72, "
        "\"sum_us\": 720}\n"
        "  }\n"
        "}\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(Exporters, JsonEmptySnapshotIsValid)
{
    std::ostringstream os;
    writeJson(MetricsSnapshot{}, os);
    EXPECT_EQ(os.str(),
              "{\n  \"counters\": {},\n  \"gauges\": {},\n"
              "  \"histograms\": {}\n}\n");
}

TEST(Exporters, TimelineCsvGolden)
{
    MetricRegistry reg;
    auto c = reg.counter("serve.completed");
    auto g = reg.gauge("serve.queue_depth");
    auto h = reg.histogram("serve.latency");
    Sampler sampler(reg);

    c->inc(10);
    g->set(3.0);
    h->record(64.0);
    sampler.sampleOnce();
    c->inc(5);
    g->set(1.0);
    h->record(64.0);
    sampler.sampleOnce();

    auto rows = sampler.rows();
    ASSERT_EQ(rows.size(), 2u);
    // Pin the timestamps so the golden string is exact.
    rows[0].timeS = 0.25;
    rows[1].timeS = 0.5;

    std::ostringstream os;
    writeTimelineCsv(rows, os);
    const std::string expected =
        "time_s,serve.completed,serve.latency.count,"
        "serve.latency.p50_us,serve.latency.p95_us,"
        "serve.latency.p99_us,serve.queue_depth\n"
        "0.25,10,1,72,72,72,3\n"
        "0.5,15,2,72,72,72,1\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(Exporters, TimelineCsvTakesColumnUnionAcrossRows)
{
    MetricRegistry reg;
    Sampler sampler(reg);
    reg.counter("a")->inc();
    sampler.sampleOnce();
    reg.counter("b")->inc(2); // registered after the first row.
    sampler.sampleOnce();

    auto rows = sampler.rows();
    rows[0].timeS = 1.0;
    rows[1].timeS = 2.0;
    std::ostringstream os;
    writeTimelineCsv(rows, os);
    EXPECT_EQ(os.str(), "time_s,a,b\n1,1,\n2,1,2\n");
}

} // namespace
} // namespace telemetry
} // namespace neuro
