// Tests for the GPU baseline model (Table 8).

#include <gtest/gtest.h>

#include "neuro/gpu/gpu_model.h"

namespace neuro {
namespace gpu {
namespace {

TEST(GpuModel, LaunchOverheadDominatesSmallLayers)
{
    const GpuParams params;
    const GpuWorkload mlp = mlpWorkload(784, 100, 10);
    const GpuCost cost = evaluate(params, mlp);
    // 3 launches + 2 transfers + sync: fixed costs are most of it.
    const double fixed = params.kernelLaunchUs * mlp.kernels +
        params.transferLatencyUs * mlp.transfers + params.syncUs;
    EXPECT_GT(fixed / cost.timeUs, 0.8);
}

TEST(GpuModel, CalibratedTimesInPaperRange)
{
    // Back-derived from Table 8: GPU per-image times for the three
    // networks all land in ~50-90 us.
    const GpuParams params;
    const double mlp_us = evaluate(params, mlpWorkload(784, 100, 10)).timeUs;
    const double wot_us = evaluate(params, snnWotWorkload(784, 300)).timeUs;
    EXPECT_GT(mlp_us, 40.0);
    EXPECT_LT(mlp_us, 120.0);
    EXPECT_GT(wot_us, 40.0);
    EXPECT_LT(wot_us, 120.0);
}

TEST(GpuModel, EnergyIsTimeTimesPower)
{
    const GpuParams params;
    const GpuCost cost = evaluate(params, mlpWorkload(784, 100, 10));
    EXPECT_DOUBLE_EQ(cost.energyUj, cost.timeUs * params.activePowerW);
}

TEST(GpuModel, SnnWtMuchSlowerThanSnnWot)
{
    const GpuParams params;
    const double wot = evaluate(params, snnWotWorkload(784, 300)).timeUs;
    const double wt =
        evaluate(params, snnWtWorkload(784, 300, 500)).timeUs;
    EXPECT_GT(wt, 1.5 * wot);
}

TEST(GpuModel, ScalesWithNetworkSize)
{
    const GpuParams params;
    const double small =
        evaluate(params, mlpWorkload(784, 100, 10)).timeUs;
    const double large =
        evaluate(params, mlpWorkload(784, 8000, 1000)).timeUs;
    EXPECT_GT(large, small); // big layers leave the launch-bound regime.
}

TEST(GpuModel, WorkloadAccounting)
{
    const GpuWorkload w = mlpWorkload(784, 100, 10);
    EXPECT_EQ(w.flops, 2u * (785 * 100 + 101 * 10));
    EXPECT_EQ(w.kernels, 3);
    EXPECT_EQ(w.transfers, 2);
    const GpuWorkload s = snnWotWorkload(784, 300);
    EXPECT_GT(s.flops, 2u * 784 * 300 - 1);
}

} // namespace
} // namespace gpu
} // namespace neuro
