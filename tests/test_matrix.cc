// Tests for the dense matrix kernels used by the network simulators.

#include <gtest/gtest.h>

#include <vector>

#include "neuro/common/matrix.h"
#include "neuro/common/rng.h"

namespace neuro {
namespace {

Matrix
makeSequential(std::size_t rows, std::size_t cols)
{
    Matrix m(rows, cols);
    float v = 1.0f;
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = v++;
    return m;
}

TEST(Matrix, GeometryAndFill)
{
    Matrix m(3, 5);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 5u);
    EXPECT_EQ(m.size(), 15u);
    m.fill(2.5f);
    for (float v : m.data())
        EXPECT_FLOAT_EQ(v, 2.5f);
}

TEST(Matrix, GemvMatchesNaive)
{
    const Matrix m = makeSequential(3, 4);
    const std::vector<float> x = {1, 2, 3, 4};
    std::vector<float> y(3);
    m.gemv(x.data(), y.data());
    // Row 0: 1*1+2*2+3*3+4*4 = 30; row 1: 5+12+21+32 = 70; row 2: 110.
    EXPECT_FLOAT_EQ(y[0], 30.0f);
    EXPECT_FLOAT_EQ(y[1], 70.0f);
    EXPECT_FLOAT_EQ(y[2], 110.0f);
}

TEST(Matrix, GemvTransposedMatchesNaive)
{
    const Matrix m = makeSequential(2, 3);
    const std::vector<float> x = {1, 10};
    std::vector<float> y(3);
    m.gemvT(x.data(), y.data());
    EXPECT_FLOAT_EQ(y[0], 1 * 1 + 10 * 4);
    EXPECT_FLOAT_EQ(y[1], 1 * 2 + 10 * 5);
    EXPECT_FLOAT_EQ(y[2], 1 * 3 + 10 * 6);
}

TEST(Matrix, AddOuterAccumulates)
{
    Matrix m(2, 2);
    const std::vector<float> d = {1.0f, -2.0f};
    const std::vector<float> x = {3.0f, 4.0f};
    m.addOuter(0.5f, d.data(), x.data());
    EXPECT_FLOAT_EQ(m(0, 0), 1.5f);
    EXPECT_FLOAT_EQ(m(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(m(1, 0), -3.0f);
    EXPECT_FLOAT_EQ(m(1, 1), -4.0f);
}

TEST(Matrix, RandomFillsCoverRange)
{
    Rng rng(3);
    Matrix m(20, 20);
    m.fillUniform(rng, -1.0f, 1.0f);
    float lo = 1e9f, hi = -1e9f, sum = 0.0f;
    for (float v : m.data()) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        sum += v;
        ASSERT_GE(v, -1.0f);
        ASSERT_LT(v, 1.0f);
    }
    EXPECT_LT(lo, -0.8f);
    EXPECT_GT(hi, 0.8f);
    EXPECT_NEAR(sum / 400.0f, 0.0f, 0.1f);
}

TEST(Matrix, GaussianFillMoments)
{
    Rng rng(5);
    Matrix m(50, 50);
    m.fillGaussian(rng, 2.0f, 0.5f);
    double sum = 0.0;
    for (float v : m.data())
        sum += v;
    EXPECT_NEAR(sum / 2500.0, 2.0, 0.05);
}

} // namespace
} // namespace neuro
