// Tests for the single-layer WTA spiking network.

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/snn/network.h"

namespace neuro {
namespace snn {
namespace {

SnnConfig
tinyConfig()
{
    SnnConfig config;
    config.numInputs = 4;
    config.numNeurons = 3;
    config.coding.periodMs = 100;
    config.coding.minIntervalMs = 10;
    config.tLeakMs = 100.0;
    config.tInhibitMs = 5;
    config.tRefracMs = 20;
    config.initialThreshold = 150.0;
    config.thresholdJitter = 0.0;
    config.homeostasis.enabled = false;
    config.wInitMin = 100.0f;
    config.wInitMax = 100.0f;
    return config;
}

SpikeTrainGrid
gridWithSpikes(int period,
               const std::vector<std::pair<int, uint16_t>> &spikes)
{
    SpikeTrainGrid grid;
    grid.ticks.resize(static_cast<std::size_t>(period));
    for (const auto &[t, p] : spikes)
        grid.ticks[static_cast<std::size_t>(t)].push_back(p);
    return grid;
}

TEST(SnnNetwork, IntegratesWeightsOnSpikes)
{
    Rng rng(1);
    SnnNetwork net(tinyConfig(), rng);
    // Two spikes on input 0 at t=0: each neuron integrates w = 100,
    // staying below threshold 150 until the second spike fires one.
    const auto grid =
        gridWithSpikes(100, {{0, 0}, {10, 0}});
    const auto result = net.presentImage(grid, false);
    EXPECT_EQ(result.inputSpikeCount, 2u);
    EXPECT_EQ(result.outputSpikeCount, 1u);
    EXPECT_GE(result.firstSpikeNeuron, 0);
    EXPECT_EQ(result.firstSpikeTimeMs, 10);
}

TEST(SnnNetwork, OnlyOneNeuronFiresPerTick)
{
    Rng rng(2);
    SnnConfig config = tinyConfig();
    config.tInhibitMs = 50; // long inhibition: one fire total.
    SnnNetwork net(config, rng);
    const auto grid = gridWithSpikes(100, {{0, 0}, {0, 1}, {0, 2}});
    // Drive = 300 > threshold for every neuron simultaneously; the WTA
    // must pick exactly one.
    const auto result = net.presentImage(grid, false);
    EXPECT_EQ(result.outputSpikeCount, 1u);
}

TEST(SnnNetwork, WtaResetZeroesPeers)
{
    Rng rng(3);
    SnnConfig config = tinyConfig();
    config.wtaReset = true;
    SnnNetwork net(config, rng);
    // Make neuron 0 strictly stronger so it wins.
    net.weights()(0, 0) = 200.0f;
    const auto grid = gridWithSpikes(100, {{0, 0}, {1, 0}});
    net.presentImage(grid, false);
    // After the presentation, losers' potentials were reset at the
    // firing tick; they only hold what arrived afterwards.
    EXPECT_LT(net.potentials()[1], 150.0);
}

TEST(SnnNetwork, RefractoryNeuronIgnoresInput)
{
    Rng rng(4);
    SnnConfig config = tinyConfig();
    config.numNeurons = 1;
    SnnNetwork net(config, rng);
    const auto grid = gridWithSpikes(
        100, {{0, 0}, {0, 1}, {5, 0}, {40, 0}, {40, 1}});
    // Fires at t=0 (drive 200 > 150); the t=5 spike lands inside the
    // 20 ms refractory window and must be ignored; t=40 integrates again.
    const auto result = net.presentImage(grid, false);
    EXPECT_EQ(result.outputSpikeCount, 2u);
    EXPECT_EQ(result.firstSpikeTimeMs, 0);
}

TEST(SnnNetwork, LeakReducesPotentialBetweenSpikes)
{
    Rng rng(5);
    SnnConfig config = tinyConfig();
    config.initialThreshold = 1000.0; // never fires.
    SnnNetwork net(config, rng);
    const auto near_grid = gridWithSpikes(100, {{0, 0}, {1, 1}});
    const auto far_grid = gridWithSpikes(100, {{0, 0}, {99, 1}});
    net.presentImage(near_grid, false);
    const double near_pot = net.potentials()[0];
    net.presentImage(far_grid, false);
    const double far_pot = net.potentials()[0];
    // Potentials are both decayed to the window end; the early pair has
    // decayed longer, so with equal total drive the end potential is
    // *smaller* for the near pair... Check the opposite: sample right
    // after the second spike via a trace instead.
    EXPECT_GT(near_pot, 0.0);
    EXPECT_GT(far_pot, 0.0);
    // At the end of the window, the far grid's second spike is fresher.
    EXPECT_GT(far_pot, near_pot);
}

TEST(SnnNetwork, ForwardCountsPicksLargestDotProduct)
{
    Rng rng(6);
    SnnConfig config = tinyConfig();
    SnnNetwork net(config, rng);
    net.weights().fill(0.0f);
    net.weights()(1, 2) = 50.0f; // neuron 1 keyed to input 2.
    const std::vector<uint8_t> counts = {0, 0, 7, 0};
    std::vector<double> potentials;
    EXPECT_EQ(net.forwardCounts(counts.data(), &potentials), 1);
    EXPECT_DOUBLE_EQ(potentials[1], 350.0);
    EXPECT_DOUBLE_EQ(potentials[0], 0.0);
}

TEST(SnnNetwork, TraceRecordsRasterAndPotentials)
{
    Rng rng(7);
    SnnNetwork net(tinyConfig(), rng);
    const auto grid = gridWithSpikes(100, {{3, 1}, {20, 0}, {21, 0}});
    PresentationTrace trace;
    trace.neuronLimit = 2;
    const auto result = net.presentImage(grid, false, &trace);
    EXPECT_EQ(trace.inputSpikes.size(), 3u);
    EXPECT_EQ(trace.potentials.size(), 100u);
    EXPECT_EQ(trace.potentials[0].size(), 2u);
    EXPECT_EQ(trace.outputSpikes.size(), result.outputSpikeCount);
}

TEST(SnnNetwork, ThresholdJitterSpreadsThresholds)
{
    Rng rng(8);
    SnnConfig config = tinyConfig();
    config.numNeurons = 50;
    config.thresholdJitter = 0.1;
    SnnNetwork net(config, rng);
    double lo = 1e18, hi = 0;
    for (double threshold : net.thresholds()) {
        lo = std::min(lo, threshold);
        hi = std::max(hi, threshold);
    }
    EXPECT_GT(hi - lo, 1.0);
    EXPECT_NEAR(lo, config.initialThreshold, config.initialThreshold * 0.06);
}

TEST(PresentationResult, WinnerFallsBackToMaxPotential)
{
    PresentationResult result;
    result.firstSpikeNeuron = -1;
    result.maxPotentialNeuron = 4;
    EXPECT_EQ(result.winner(Readout::FirstSpike), 4);
    result.firstSpikeNeuron = 2;
    EXPECT_EQ(result.winner(Readout::FirstSpike), 2);
    EXPECT_EQ(result.winner(Readout::MaxPotential), 4);
}

TEST(PresentationResult, MaxSpikeCountReadout)
{
    PresentationResult result;
    result.spikeCountPerNeuron = {1, 5, 3};
    result.outputSpikeCount = 9;
    result.maxPotentialNeuron = 0;
    EXPECT_EQ(result.winner(Readout::MaxSpikeCount), 1);
}

} // namespace
} // namespace snn
} // namespace neuro
