// Tests for the SNN+BP hybrid (spiking forward path, supervised
// delta-rule learning).

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/snn/snn_bp.h"

namespace neuro {
namespace snn {
namespace {

SnnBpConfig
smallConfig()
{
    SnnBpConfig config;
    config.numInputs = 784;
    config.numNeurons = 40;
    config.numClasses = 10;
    config.coding.periodMs = 200;
    config.coding.minIntervalMs = 20;
    config.tLeakMs = 200.0;
    config.epochs = 4;
    config.learningRate = 0.2f;
    return config;
}

TEST(SnnBp, NeuronClassAssignmentIsRoundRobin)
{
    Rng rng(1);
    const SnnBp net(smallConfig(), rng);
    EXPECT_EQ(net.neuronClass(0), 0);
    EXPECT_EQ(net.neuronClass(9), 9);
    EXPECT_EQ(net.neuronClass(10), 0);
    EXPECT_EQ(net.neuronClass(25), 5);
}

TEST(SnnBp, SpikeFeaturesReflectLuminance)
{
    Rng rng(2);
    SnnBpConfig config = smallConfig();
    config.numInputs = 3;
    config.numNeurons = 10;
    const SnnBp net(config, rng);
    std::vector<uint8_t> pixels = {0, 120, 255};
    std::vector<float> mean(3, 0.0f);
    Rng spike_rng(3);
    for (int t = 0; t < 40; ++t) {
        std::vector<float> f;
        net.spikeFeatures(pixels.data(), spike_rng, f);
        for (int i = 0; i < 3; ++i)
            mean[static_cast<std::size_t>(i)] +=
                f[static_cast<std::size_t>(i)];
    }
    EXPECT_FLOAT_EQ(mean[0], 0.0f);
    EXPECT_GT(mean[2], mean[1]);
    EXPECT_GT(mean[1], 0.0f);
}

TEST(SnnBp, LearnsDigitsFarAboveChanceAndAboveStdpRange)
{
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 800;
    opt.testSize = 200;
    const datasets::Split split = datasets::makeSynthDigits(opt);
    Rng rng(4);
    SnnBp net(smallConfig(), rng);
    net.train(split.train);
    const double acc = net.evaluate(split.test, 5);
    // The paper's point: BP on the spiking forward path recovers most
    // of the accuracy gap.
    EXPECT_GT(acc, 0.8);
}

} // namespace
} // namespace snn
} // namespace neuro
