// Tests for the ASCII-art and PGM rendering helpers.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "neuro/common/ascii_art.h"
#include "neuro/common/pgm.h"

namespace neuro {
namespace {

TEST(AsciiArt, ShapeAndRamp)
{
    const float data[6] = {0.0f, 0.5f, 1.0f, 1.0f, 0.5f, 0.0f};
    const std::string out = renderAscii(data, 3, 2);
    // 2 lines of 3 chars + newlines.
    EXPECT_EQ(out.size(), 2u * 4u);
    EXPECT_EQ(out[0], ' ');  // minimum maps to blank.
    EXPECT_EQ(out[2], '@');  // maximum maps to densest glyph.
    EXPECT_EQ(out[3], '\n');
}

TEST(AsciiArt, ConstantImageDoesNotDivideByZero)
{
    const float data[4] = {5.0f, 5.0f, 5.0f, 5.0f};
    const std::string out = renderAscii(data, 2, 2);
    EXPECT_EQ(out[0], ' ');
}

TEST(AsciiArt, ByteOverloadMatchesFloat)
{
    const uint8_t bytes[4] = {0, 85, 170, 255};
    const float floats[4] = {0, 85, 170, 255};
    EXPECT_EQ(renderAscii(bytes, 2, 2), renderAscii(floats, 2, 2));
}

TEST(AsciiArt, RowLaysImagesSideBySide)
{
    const float a[4] = {0, 0, 0, 0};
    const float b[4] = {1, 1, 1, 1};
    const float *imgs[2] = {a, b};
    const std::string out = renderAsciiRow(imgs, 2, 2, 2, 3);
    // Each line: 2 + 3 gap + 2 chars + newline.
    std::istringstream lines(out);
    std::string line;
    int count = 0;
    while (std::getline(lines, line)) {
        EXPECT_EQ(line.size(), 7u);
        ++count;
    }
    EXPECT_EQ(count, 2);
}

TEST(Pgm, WritesValidHeaderAndPayload)
{
    const std::string path = "/tmp/neuro_test.pgm";
    const uint8_t data[6] = {0, 50, 100, 150, 200, 250};
    ASSERT_TRUE(writePgm(path, data, 3, 2));
    std::ifstream in(path, std::ios::binary);
    std::string magic;
    in >> magic;
    EXPECT_EQ(magic, "P5");
    int w = 0, h = 0, maxval = 0;
    in >> w >> h >> maxval;
    EXPECT_EQ(w, 3);
    EXPECT_EQ(h, 2);
    EXPECT_EQ(maxval, 255);
    in.get(); // single whitespace after header.
    char payload[6];
    ASSERT_TRUE(in.read(payload, 6));
    EXPECT_EQ(static_cast<uint8_t>(payload[5]), 250);
    std::remove(path.c_str());
}

TEST(Pgm, NormalizedWriteSpansFullRange)
{
    const std::string path = "/tmp/neuro_test_norm.pgm";
    const float data[4] = {-1.0f, 0.0f, 1.0f, 3.0f};
    ASSERT_TRUE(writePgmNormalized(path, data, 2, 2));
    std::ifstream in(path, std::ios::binary);
    std::string line;
    std::getline(in, line); // P5
    std::getline(in, line); // dims
    std::getline(in, line); // maxval
    char payload[4];
    ASSERT_TRUE(in.read(payload, 4));
    EXPECT_EQ(static_cast<uint8_t>(payload[0]), 0);
    EXPECT_EQ(static_cast<uint8_t>(payload[3]), 255);
    std::remove(path.c_str());
}

TEST(Pgm, BadPathFails)
{
    const uint8_t data[1] = {1};
    EXPECT_FALSE(writePgm("/no-such-dir-xyz/a.pgm", data, 1, 1));
}

} // namespace
} // namespace neuro
