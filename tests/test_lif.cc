// Tests for the LIF neuron: the closed-form leak the hardware uses
// (Section 2.2) against the reference discrete integration, plus the
// per-neuron state machine.

#include <gtest/gtest.h>

#include <cmath>

#include "neuro/snn/lif.h"

namespace neuro {
namespace snn {
namespace {

TEST(LifDecay, MatchesAnalyticExpression)
{
    EXPECT_NEAR(lifDecay(100.0, 500.0, 500.0), 100.0 * std::exp(-1.0),
                1e-9);
    EXPECT_DOUBLE_EQ(lifDecay(42.0, 0.0, 500.0), 42.0);
}

class LeakEquivalenceTest
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(LeakEquivalenceTest, DiscreteConvergesToClosedForm)
{
    const auto [dt, tleak] = GetParam();
    const double exact = lifDecay(1000.0, dt, tleak);
    const double coarse = lifDecayDiscrete(1000.0, dt, tleak, 10);
    const double fine = lifDecayDiscrete(1000.0, dt, tleak, 10000);
    // The paper replaces per-timestep integration by the closed form;
    // the discrete simulation must converge to it as steps increase.
    EXPECT_NEAR(fine, exact, std::fabs(exact) * 1e-3 + 1e-6);
    EXPECT_LT(std::fabs(fine - exact), std::fabs(coarse - exact) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LeakEquivalenceTest,
    ::testing::Values(std::make_pair(1.0, 500.0),
                      std::make_pair(50.0, 500.0),
                      std::make_pair(500.0, 500.0),
                      std::make_pair(45.0, 50.0),
                      std::make_pair(200.0, 10.0)));

TEST(LifNeuron, DecayToAdvancesClock)
{
    LifNeuron n;
    n.potential = 100.0;
    n.lastUpdateMs = 0;
    n.decayTo(500, 500.0);
    EXPECT_NEAR(n.potential, 100.0 * std::exp(-1.0), 1e-9);
    EXPECT_EQ(n.lastUpdateMs, 500);
    // Decaying to the past is a no-op.
    n.decayTo(100, 500.0);
    EXPECT_EQ(n.lastUpdateMs, 500);
}

TEST(LifNeuron, FireResetsAndCounts)
{
    LifNeuron n;
    n.threshold = 10.0;
    n.integrate(11.0);
    EXPECT_TRUE(n.shouldFire());
    n.fire(100, 20);
    EXPECT_DOUBLE_EQ(n.potential, 0.0);
    EXPECT_EQ(n.lastFireMs, 100);
    EXPECT_EQ(n.refractoryUntil, 120);
    EXPECT_EQ(n.fireCount, 1u);
    EXPECT_TRUE(n.gated(110));
    EXPECT_FALSE(n.gated(120));
}

TEST(LifNeuron, InhibitionGates)
{
    LifNeuron n;
    n.inhibitedUntil = 50;
    EXPECT_TRUE(n.gated(49));
    EXPECT_FALSE(n.gated(50));
}

TEST(LifNeuron, ResetDynamicsKeepsThresholdAndFireCount)
{
    LifNeuron n;
    n.threshold = 123.0;
    n.fireCount = 7;
    n.potential = 55.0;
    n.refractoryUntil = 99;
    n.resetDynamics();
    EXPECT_DOUBLE_EQ(n.potential, 0.0);
    EXPECT_EQ(n.refractoryUntil, -1);
    EXPECT_DOUBLE_EQ(n.threshold, 123.0);
    EXPECT_EQ(n.fireCount, 7u);
}

} // namespace
} // namespace snn
} // namespace neuro
