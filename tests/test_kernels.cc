/**
 * @file
 * The unified SIMD kernel layer's contract suite (docs/kernels.md):
 * every dispatchable ISA level must be bit-identical to a hand-rolled
 * scalar reference of the documented summation schedule, over ragged
 * shapes that exercise unroll tails and row-block remainders. Also
 * covers the q8 saturation edges, the strip/per-sample equivalence,
 * the batched outer-product update, dispatch forcing (NEURO_SIMD=off
 * and friends) and the kernel call counters.
 */

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/kernels/kernels.h"
#include "neuro/telemetry/metrics.h"

namespace neuro {
namespace kernels {
namespace {

// ------------------------------------------------------- references
// Independent re-statements of the contract in docs/kernels.md. If a
// kernel body drifts from the documented schedule, these fail even
// when all ISA tables still agree with each other.

/** dotUnrolled's schedule: 4 partials, (a0+a1)+(a2+a3), then tail. */
float
refDot(const float *w, const float *x, std::size_t n)
{
    float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
    std::size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        a0 += w[c] * x[c];
        a1 += w[c + 1] * x[c + 1];
        a2 += w[c + 2] * x[c + 2];
        a3 += w[c + 3] * x[c + 3];
    }
    float acc = (a0 + a1) + (a2 + a3);
    for (; c < n; ++c)
        acc += w[c] * x[c];
    return acc;
}

void
refGemv(const std::vector<float> &w, std::size_t rows, std::size_t cols,
        const std::vector<float> &x, std::vector<float> &y)
{
    y.resize(rows);
    for (std::size_t r = 0; r < rows; ++r)
        y[r] = refDot(w.data() + r * cols, x.data(), cols);
}

void
refGemvBias(const std::vector<float> &w, std::size_t rows,
            std::size_t cols, const std::vector<float> &x,
            std::vector<float> &y)
{
    y.resize(rows);
    for (std::size_t r = 0; r < rows; ++r) {
        const float *wr = w.data() + r * cols;
        y[r] = refDot(wr, x.data(), cols - 1) + wr[cols - 1];
    }
}

/** gemvT's schedule: 4-row blocks, (p0+p1)+(p2+p3) per element, with
 *  the zero-input block/row skip. */
void
refGemvT(const std::vector<float> &w, std::size_t rows, std::size_t cols,
         const std::vector<float> &x, std::vector<float> &y)
{
    y.assign(cols, 0.0f);
    std::size_t r = 0;
    for (; r + 4 <= rows; r += 4) {
        const float x0 = x[r], x1 = x[r + 1];
        const float x2 = x[r + 2], x3 = x[r + 3];
        if (x0 == 0.0f && x1 == 0.0f && x2 == 0.0f && x3 == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols; ++c) {
            y[c] += (w[r * cols + c] * x0 + w[(r + 1) * cols + c] * x1) +
                (w[(r + 2) * cols + c] * x2 + w[(r + 3) * cols + c] * x3);
        }
    }
    for (; r < rows; ++r) {
        if (x[r] == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols; ++c)
            y[c] += w[r * cols + c] * x[r];
    }
}

void
refAddOuterBias(std::vector<float> &w, std::size_t rows,
                std::size_t cols, float eta, const std::vector<float> &d,
                const std::vector<float> &x)
{
    for (std::size_t r = 0; r < rows; ++r) {
        const float scale = eta * d[r];
        if (scale == 0.0f)
            continue;
        for (std::size_t c = 0; c + 1 < cols; ++c)
            w[r * cols + c] += scale * x[c];
        w[r * cols + cols - 1] += scale;
    }
}

int32_t
refDotQ8(const int8_t *wr, const uint8_t *x, std::size_t fan_in)
{
    int32_t acc = static_cast<int32_t>(wr[fan_in]) * 255;
    for (std::size_t i = 0; i < fan_in; ++i)
        acc += static_cast<int32_t>(wr[i]) * x[i];
    return acc;
}

// --------------------------------------------------------- fixtures

/** Ragged shapes: unroll tails (cols % 4 != 0), row-block remainders
 *  (rows % 4 != 0), degenerate single-row/column cases. */
const std::size_t kShapes[][2] = {
    {1, 1}, {1, 5}, {3, 2}, {4, 4},  {5, 3},    {7, 17},
    {8, 9}, {10, 101}, {17, 33}, {33, 64}, {100, 785},
};

class KernelsTest : public ::testing::Test
{
  protected:
    void TearDown() override { setSimdMode(SimdMode::Auto); }

    /**
     * Distinct ISA levels reachable on this machine/build: forcing a
     * level the CPU or the toolchain lacks falls back, so deduplicate
     * on the ISA actually selected. Always contains Scalar.
     */
    static std::vector<SimdMode>
    reachableModes()
    {
        std::vector<SimdMode> modes{SimdMode::Off};
        if (setSimdMode(SimdMode::Avx2) == SimdIsa::Avx2)
            modes.push_back(SimdMode::Avx2);
        if (setSimdMode(SimdMode::Avx512) == SimdIsa::Avx512)
            modes.push_back(SimdMode::Avx512);
        setSimdMode(SimdMode::Auto);
        return modes;
    }

    static std::vector<float>
    randomVec(Rng &rng, std::size_t n)
    {
        std::vector<float> v(n);
        for (auto &e : v)
            e = static_cast<float>(rng.uniform(-1.0, 1.0));
        return v;
    }
};

// ----------------------------------------------------- float kernels

TEST_F(KernelsTest, GemvMatchesReferenceAtEveryIsa)
{
    Rng rng(101);
    for (const auto &shape : kShapes) {
        const std::size_t rows = shape[0], cols = shape[1];
        const auto w = randomVec(rng, rows * cols);
        const auto x = randomVec(rng, cols);
        std::vector<float> expect;
        refGemv(w, rows, cols, x, expect);
        for (SimdMode mode : reachableModes()) {
            setSimdMode(mode);
            std::vector<float> y(rows, -1.0f);
            gemv(w.data(), rows, cols, x.data(), y.data());
            ASSERT_EQ(0, std::memcmp(expect.data(), y.data(),
                                     rows * sizeof(float)))
                << "gemv " << rows << "x" << cols << " differs at "
                << isaName(activeIsa());
        }
    }
}

TEST_F(KernelsTest, GemvBiasMatchesReferenceAtEveryIsa)
{
    Rng rng(102);
    for (const auto &shape : kShapes) {
        const std::size_t rows = shape[0], cols = shape[1];
        const auto w = randomVec(rng, rows * cols);
        const auto x = randomVec(rng, cols - 1);
        std::vector<float> expect;
        refGemvBias(w, rows, cols, x, expect);
        for (SimdMode mode : reachableModes()) {
            setSimdMode(mode);
            std::vector<float> y(rows, -1.0f);
            gemvBias(w.data(), rows, cols, x.data(), y.data());
            ASSERT_EQ(0, std::memcmp(expect.data(), y.data(),
                                     rows * sizeof(float)))
                << "gemvBias " << rows << "x" << cols << " differs at "
                << isaName(activeIsa());
        }
    }
}

TEST_F(KernelsTest, GemvTMatchesReferenceAtEveryIsa)
{
    Rng rng(103);
    for (const auto &shape : kShapes) {
        const std::size_t rows = shape[0], cols = shape[1];
        const auto w = randomVec(rng, rows * cols);
        auto x = randomVec(rng, rows);
        // Exercise the zero-skip: zero out some inputs (and one whole
        // aligned block of four when there is one).
        for (std::size_t r = 0; r < rows; r += 3)
            x[r] = 0.0f;
        if (rows >= 8)
            x[4] = x[5] = x[6] = x[7] = 0.0f;
        std::vector<float> expect;
        refGemvT(w, rows, cols, x, expect);
        for (SimdMode mode : reachableModes()) {
            setSimdMode(mode);
            std::vector<float> y(cols, -1.0f);
            gemvT(w.data(), rows, cols, x.data(), y.data());
            ASSERT_EQ(0, std::memcmp(expect.data(), y.data(),
                                     cols * sizeof(float)))
                << "gemvT " << rows << "x" << cols << " differs at "
                << isaName(activeIsa());
        }
    }
}

TEST_F(KernelsTest, StripSamplesMatchGemvBiasAtEveryIsa)
{
    Rng rng(104);
    for (const auto &shape : kShapes) {
        const std::size_t rows = shape[0], cols = shape[1];
        const auto w = randomVec(rng, rows * cols);
        // kStripWidth distinct samples, interleaved sample-minor.
        std::vector<std::vector<float>> xs;
        for (std::size_t b = 0; b < kStripWidth; ++b)
            xs.push_back(randomVec(rng, cols - 1));
        std::vector<float> strip((cols - 1) * kStripWidth);
        for (std::size_t k = 0; k + 1 < cols; ++k)
            for (std::size_t b = 0; b < kStripWidth; ++b)
                strip[k * kStripWidth + b] = xs[b][k];
        for (SimdMode mode : reachableModes()) {
            setSimdMode(mode);
            std::vector<float> out(rows * kStripWidth, -1.0f);
            gemvBiasStrip(w.data(), rows, cols, strip.data(),
                          out.data());
            for (std::size_t b = 0; b < kStripWidth; ++b) {
                std::vector<float> expect;
                refGemvBias(w, rows, cols, xs[b], expect);
                for (std::size_t r = 0; r < rows; ++r) {
                    ASSERT_EQ(expect[r], out[r * kStripWidth + b])
                        << "strip sample " << b << " row " << r
                        << " of " << rows << "x" << cols << " at "
                        << isaName(activeIsa());
                }
            }
        }
    }
}

TEST_F(KernelsTest, AddOuterBiasMatchesReferenceAtEveryIsa)
{
    Rng rng(105);
    for (const auto &shape : kShapes) {
        const std::size_t rows = shape[0], cols = shape[1];
        const auto w0 = randomVec(rng, rows * cols);
        auto d = randomVec(rng, rows);
        d[0] = 0.0f; // exercise the zero-delta row skip.
        const auto x = randomVec(rng, cols - 1);
        auto expect = w0;
        refAddOuterBias(expect, rows, cols, 0.25f, d, x);
        for (SimdMode mode : reachableModes()) {
            setSimdMode(mode);
            auto w = w0;
            addOuterBias(w.data(), rows, cols, 0.25f, d.data(),
                         x.data());
            ASSERT_EQ(0, std::memcmp(expect.data(), w.data(),
                                     w.size() * sizeof(float)))
                << "addOuterBias " << rows << "x" << cols
                << " differs at " << isaName(activeIsa());
        }
    }
}

TEST_F(KernelsTest, AddOuterBiasBatchEqualsSequentialUpdates)
{
    Rng rng(106);
    const std::size_t rows = 10, cols = 101;
    const std::size_t batch = 32;
    const auto w0 = randomVec(rng, rows * cols);
    std::vector<std::vector<float>> deltas, acts;
    std::vector<const float *> dp, ap;
    for (std::size_t b = 0; b < batch; ++b) {
        deltas.push_back(randomVec(rng, rows));
        if (b % 5 == 0) // whole-sample and single-row zero skips.
            deltas.back().assign(rows, 0.0f);
        deltas.back()[b % rows] = 0.0f;
        acts.push_back(randomVec(rng, cols - 1));
        dp.push_back(deltas.back().data());
        ap.push_back(acts.back().data());
    }

    // The contract: one batched call == `batch` sequential per-sample
    // updates, bit for bit, at every ISA level.
    auto expect = w0;
    for (std::size_t b = 0; b < batch; ++b)
        refAddOuterBias(expect, rows, cols, 0.5f, deltas[b], acts[b]);

    for (SimdMode mode : reachableModes()) {
        setSimdMode(mode);
        auto w = w0;
        addOuterBiasBatch(w.data(), rows, cols, 0.5f, dp.data(),
                          ap.data(), batch);
        ASSERT_EQ(0, std::memcmp(expect.data(), w.data(),
                                 w.size() * sizeof(float)))
            << "batched update differs at " << isaName(activeIsa());
    }
}

TEST_F(KernelsTest, AddScaledAndAddRowF64MatchReference)
{
    Rng rng(107);
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                          std::size_t{301}}) {
        const auto src = randomVec(rng, n);
        const auto dst0 = randomVec(rng, n);
        std::vector<float> expect_f(dst0);
        for (std::size_t i = 0; i < n; ++i)
            expect_f[i] += 0.75f * src[i];
        std::vector<double> acc0(n);
        for (std::size_t i = 0; i < n; ++i)
            acc0[i] = static_cast<double>(dst0[i]);
        std::vector<double> expect_d(acc0);
        for (std::size_t i = 0; i < n; ++i)
            expect_d[i] += static_cast<double>(src[i]);

        for (SimdMode mode : reachableModes()) {
            setSimdMode(mode);
            auto dst = dst0;
            addScaled(dst.data(), src.data(), n, 0.75f);
            ASSERT_EQ(0, std::memcmp(expect_f.data(), dst.data(),
                                     n * sizeof(float)))
                << "addScaled n=" << n << " differs at "
                << isaName(activeIsa());
            auto acc = acc0;
            addRowF64(acc.data(), src.data(), n);
            ASSERT_EQ(0, std::memcmp(expect_d.data(), acc.data(),
                                     n * sizeof(double)))
                << "addRowF64 n=" << n << " differs at "
                << isaName(activeIsa());
        }
    }
}

// -------------------------------------------------- integer kernels

TEST_F(KernelsTest, Q8MatchesReferenceIncludingSaturationEdges)
{
    // Worst-case magnitudes: every weight at the int8 rails, every
    // activation at the uint8 rail — the exact-int32 accumulator must
    // carry |acc| = fan_in * 128 * 255 without wrapping.
    const std::size_t rows = 6, fan_in = 1000, cols = fan_in + 1;
    std::vector<int8_t> w(rows * cols);
    std::vector<uint8_t> x(fan_in, 255);
    for (std::size_t r = 0; r < rows; ++r) {
        const int8_t v = (r % 2 == 0) ? int8_t{-128} : int8_t{127};
        for (std::size_t c = 0; c < cols; ++c)
            w[r * cols + c] = v;
    }
    // Plus one mixed row exercising sign cancellation.
    for (std::size_t c = 0; c < cols; ++c)
        w[5 * cols + c] = static_cast<int8_t>((c * 37) % 255 - 128);

    std::vector<int32_t> expect(rows);
    for (std::size_t r = 0; r < rows; ++r)
        expect[r] = refDotQ8(w.data() + r * cols, x.data(), fan_in);
    EXPECT_EQ(expect[0], -128 * 255 - 128 * 255 * 1000);
    EXPECT_EQ(expect[1], 127 * 255 + 127 * 255 * 1000);

    for (SimdMode mode : reachableModes()) {
        setSimdMode(mode);
        std::vector<int32_t> y(rows, 0);
        gemvBiasQ8(w.data(), rows, cols, x.data(), y.data());
        EXPECT_EQ(expect, y) << "q8 differs at " << isaName(activeIsa());
    }

    // Ragged fan-ins against random codes.
    Rng rng(108);
    for (std::size_t fi : {std::size_t{1}, std::size_t{3}, std::size_t{17},
                           std::size_t{784}}) {
        std::vector<int8_t> wr(fi + 1);
        std::vector<uint8_t> xr(fi);
        for (auto &v : wr)
            v = static_cast<int8_t>(rng.uniform(-128.0, 128.0));
        for (auto &v : xr)
            v = static_cast<uint8_t>(rng.uniform(0.0, 256.0));
        const int32_t want = refDotQ8(wr.data(), xr.data(), fi);
        for (SimdMode mode : reachableModes()) {
            setSimdMode(mode);
            int32_t got = 0;
            gemvBiasQ8(wr.data(), 1, fi + 1, xr.data(), &got);
            EXPECT_EQ(want, got) << "q8 fan-in " << fi << " at "
                                 << isaName(activeIsa());
        }
    }
}

TEST_F(KernelsTest, PopcountWordsMatchesReferenceAtEveryIsa)
{
    Rng rng(109);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                          std::size_t{64}}) {
        std::vector<uint64_t> words(n);
        for (auto &w : words) {
            w = (rng.uniformInt(uint64_t{1} << 32) << 32) |
                rng.uniformInt(uint64_t{1} << 32);
        }
        if (n > 0) {
            words[0] = 0;
            words[n - 1] = ~uint64_t{0};
        }
        std::size_t expect = 0;
        for (uint64_t w : words) {
            for (; w != 0; w &= w - 1)
                ++expect;
        }
        for (SimdMode mode : reachableModes()) {
            setSimdMode(mode);
            EXPECT_EQ(expect, popcountWords(words.data(), n))
                << "popcount n=" << n << " at " << isaName(activeIsa());
        }
    }
}

// ----------------------------------------------- dispatch & metrics

TEST_F(KernelsTest, ForcingModesSelectsExpectedTables)
{
    // `off` must always pin the scalar table — the NEURO_SIMD=off
    // debugging contract.
    EXPECT_EQ(SimdIsa::Scalar, setSimdMode(SimdMode::Off));
    EXPECT_EQ(SimdIsa::Scalar, activeIsa());
    EXPECT_STREQ("scalar", isaName(activeIsa()));

    // Auto never selects something the CPU cannot run; forcing an
    // unavailable level falls back instead of crashing.
    const SimdIsa widest = setSimdMode(SimdMode::Auto);
    const SimdIsa forced512 = setSimdMode(SimdMode::Avx512);
    EXPECT_LE(static_cast<int>(forced512), static_cast<int>(SimdIsa::Avx512));
    setSimdMode(SimdMode::Auto);
    EXPECT_EQ(widest, activeIsa());
}

TEST_F(KernelsTest, ParseSimdModeCoversDocumentedSpellings)
{
    SimdMode mode = SimdMode::Auto;
    EXPECT_TRUE(parseSimdMode("off", &mode));
    EXPECT_EQ(SimdMode::Off, mode);
    EXPECT_TRUE(parseSimdMode("scalar", &mode));
    EXPECT_EQ(SimdMode::Off, mode);
    EXPECT_TRUE(parseSimdMode("avx2", &mode));
    EXPECT_EQ(SimdMode::Avx2, mode);
    EXPECT_TRUE(parseSimdMode("avx512", &mode));
    EXPECT_EQ(SimdMode::Avx512, mode);
    EXPECT_TRUE(parseSimdMode("auto", &mode));
    EXPECT_EQ(SimdMode::Auto, mode);
    EXPECT_FALSE(parseSimdMode("sse9", &mode));
    EXPECT_FALSE(parseSimdMode(nullptr, &mode));
}

TEST_F(KernelsTest, CallCountersAndIsaGaugeAreRegistered)
{
    auto &reg = telemetry::MetricRegistry::instance();
    const auto gemv_calls = reg.counter("kernels.gemv.calls");
    const auto outer_calls = reg.counter("kernels.outer.calls");
    const auto pop_calls = reg.counter("kernels.popcount.calls");
    const auto isa_gauge = reg.gauge("kernels.dispatch.isa");

    const float w[2] = {1.0f, 2.0f};
    const float x[1] = {3.0f};
    float y[1] = {};
    const uint64_t before_gemv = gemv_calls->value();
    gemvBias(w, 1, 2, x, y);
    EXPECT_EQ(before_gemv + 1, gemv_calls->value());

    float wo[2] = {0.0f, 0.0f};
    const float d[1] = {1.0f};
    const uint64_t before_outer = outer_calls->value();
    addOuterBias(wo, 1, 2, 0.5f, d, x);
    EXPECT_EQ(before_outer + 1, outer_calls->value());

    const uint64_t bits = 0xff;
    const uint64_t before_pop = pop_calls->value();
    EXPECT_EQ(std::size_t{8}, popcountWords(&bits, 1));
    EXPECT_EQ(before_pop + 1, pop_calls->value());

    // The gauge mirrors the active table (0=scalar, 1=avx2, 2=avx512).
    setSimdMode(SimdMode::Off);
    EXPECT_EQ(0.0, isa_gauge->value());
    const SimdIsa widest = setSimdMode(SimdMode::Auto);
    EXPECT_EQ(static_cast<double>(static_cast<int>(widest)),
              isa_gauge->value());
}

} // namespace
} // namespace kernels
} // namespace neuro
