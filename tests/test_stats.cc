// Tests for the statistics package.

#include <gtest/gtest.h>

#include <cmath>
#include <iomanip>
#include <sstream>

#include "neuro/common/stats.h"

namespace neuro {
namespace {

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(Distribution, MomentsOfKnownSamples)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-9); // classic population-sd example.
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(1.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(StatRegistry, CountersScalarsDistributions)
{
    StatRegistry stats;
    stats.inc("spikes");
    stats.inc("spikes", 4);
    stats.setScalar("accuracy", 0.97);
    stats.sample("latency", 10.0);
    stats.sample("latency", 20.0);

    EXPECT_EQ(stats.counter("spikes"), 5u);
    EXPECT_DOUBLE_EQ(stats.scalar("accuracy"), 0.97);
    EXPECT_EQ(stats.distribution("latency").count(), 2u);
    EXPECT_DOUBLE_EQ(stats.distribution("latency").mean(), 15.0);
    EXPECT_EQ(stats.counter("absent"), 0u);
}

TEST(StatRegistry, DumpContainsNames)
{
    StatRegistry stats;
    stats.inc("fires", 3);
    stats.setScalar("acc", 0.5);
    stats.sample("dist", 1.0);
    std::ostringstream os;
    stats.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("fires"), std::string::npos);
    EXPECT_NE(out.find("acc"), std::string::npos);
    EXPECT_NE(out.find("dist"), std::string::npos);
}

TEST(StatRegistry, DumpIsDeterministic)
{
    // The dump is a machine-diffable artifact: sorted key order, fixed
    // %.6g floats, and immune to stream state left by earlier writers.
    StatRegistry stats;
    stats.inc("b.counter", 7);
    stats.inc("a.counter", 2);
    stats.setScalar("scalar.pi", 3.14159265358979);
    stats.sample("dist.x", 1.0);
    stats.sample("dist.x", 2.0);

    std::ostringstream os;
    os << std::setprecision(2) << std::fixed; // hostile stream state.
    stats.dump(os);
    const std::string expected =
        "---------- stats ----------\n"
        "a.counter                               2\n"
        "b.counter                               7\n"
        "scalar.pi                               3.14159\n"
        "dist.x                                  n=2 total=3 mean=1.5 "
        "sd=0.5 min=1 max=2\n"
        "---------------------------\n";
    EXPECT_EQ(os.str(), expected);

    std::ostringstream again;
    stats.dump(again);
    EXPECT_EQ(again.str(), expected);
}

TEST(StatRegistry, ResetClearsEverything)
{
    StatRegistry stats;
    stats.inc("a");
    stats.setScalar("b", 1);
    stats.sample("c", 1);
    stats.reset();
    EXPECT_EQ(stats.counter("a"), 0u);
    EXPECT_DOUBLE_EQ(stats.scalar("b"), 0.0);
    EXPECT_EQ(stats.distribution("c").count(), 0u);
}

} // namespace
} // namespace neuro
