// Tests for the table and CSV report emitters.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "neuro/common/csv.h"
#include "neuro/common/table.h"

namespace neuro {
namespace {

TEST(TextTable, AlignsColumnsAndPrintsTitle)
{
    TextTable table("demo");
    table.setHeader({"a", "long-header"});
    table.addRow({"1", "2"});
    table.addRow({"333", "4"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
    // Every data line starts and ends with '|'.
    std::istringstream lines(out);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '=' )
            continue;
        EXPECT_TRUE(line.front() == '|' || line.front() == '+') << line;
    }
}

TEST(TextTable, RaggedRowsArePadded)
{
    TextTable table;
    table.setHeader({"x", "y", "z"});
    table.addRow({"only-one"});
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(TextTable, SeparatorAndNotes)
{
    TextTable table;
    table.setHeader({"c"});
    table.addRow({"1"});
    table.addSeparator();
    table.addRow({"2"});
    table.addNote("a footnote");
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("note: a footnote"), std::string::npos);
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(0.9765, 2), "97.65%");
    EXPECT_EQ(TextTable::num(-42), "-42");
}

TEST(CsvWriter, WritesHeaderAndRows)
{
    const std::string path = "/tmp/neuro_test_csv.csv";
    {
        CsvWriter csv(path, {"x", "y"});
        ASSERT_TRUE(csv.ok());
        csv.writeRow(std::vector<double>{1.0, 2.5});
        csv.writeRow(std::vector<std::string>{"a", "b"});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2.5");
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::remove(path.c_str());
}

TEST(CsvWriter, BadPathIsNonFatal)
{
    CsvWriter csv("/nonexistent-dir-xyz/file.csv", {"h"});
    EXPECT_FALSE(csv.ok());
    csv.writeRow(std::vector<double>{1.0}); // must not crash.
}

} // namespace
} // namespace neuro
