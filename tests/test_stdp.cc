// Tests for the simplified STDP rule (LTP window, LTD, bounds).

#include <gtest/gtest.h>

#include <vector>

#include "neuro/snn/stdp.h"

namespace neuro {
namespace snn {
namespace {

StdpConfig
hardConfig()
{
    StdpConfig config;
    config.ltpWindowMs = 45;
    config.ltpIncrement = 2.0f;
    config.ltdDecrement = 1.0f;
    config.softBounds = false;
    return config;
}

TEST(Stdp, CausalSpikesPotentiated)
{
    const StdpRule rule(hardConfig());
    std::vector<float> w = {100.0f, 100.0f, 100.0f, 100.0f};
    // Fire at t=100; spikes at 100, 60, 54, never.
    const std::vector<int64_t> last = {100, 60, 54, -1};
    const std::size_t potentiated =
        rule.onPostSpike(w.data(), last.data(), 100, 4);
    EXPECT_EQ(potentiated, 2u);
    EXPECT_FLOAT_EQ(w[0], 102.0f); // within window (dt = 0).
    EXPECT_FLOAT_EQ(w[1], 102.0f); // dt = 40 <= 45.
    EXPECT_FLOAT_EQ(w[2], 99.0f);  // dt = 46 > 45 -> LTD.
    EXPECT_FLOAT_EQ(w[3], 99.0f);  // never spiked -> LTD.
}

TEST(Stdp, FutureSpikeIsNotCausal)
{
    const StdpRule rule(hardConfig());
    std::vector<float> w = {100.0f};
    // The input's most recent spike is *after* the postsynaptic one
    // (can happen with bookkeeping order): treat as acausal -> LTD.
    const std::vector<int64_t> last = {150};
    rule.onPostSpike(w.data(), last.data(), 100, 1);
    EXPECT_FLOAT_EQ(w[0], 99.0f);
}

TEST(Stdp, HardBoundsClamp)
{
    StdpConfig config = hardConfig();
    config.ltpIncrement = 50.0f;
    config.ltdDecrement = 50.0f;
    const StdpRule rule(config);
    std::vector<float> w = {240.0f, 20.0f};
    const std::vector<int64_t> last = {100, -1};
    rule.onPostSpike(w.data(), last.data(), 100, 2);
    EXPECT_FLOAT_EQ(w[0], 255.0f);
    EXPECT_FLOAT_EQ(w[1], 0.0f);
}

TEST(Stdp, SoftBoundsScaleWithHeadroom)
{
    StdpConfig config = hardConfig();
    config.softBounds = true;
    config.ltpIncrement = 10.0f;
    config.ltdDecrement = 10.0f;
    const StdpRule rule(config);
    std::vector<float> w = {0.0f, 255.0f, 127.5f, 127.5f};
    const std::vector<int64_t> last = {100, 100, 100, -1};
    rule.onPostSpike(w.data(), last.data(), 100, 4);
    EXPECT_FLOAT_EQ(w[0], 10.0f);   // full headroom -> full step.
    EXPECT_FLOAT_EQ(w[1], 255.0f);  // saturated -> no movement.
    EXPECT_NEAR(w[2], 127.5f + 5.0f, 1e-4f); // half headroom.
    EXPECT_NEAR(w[3], 127.5f - 5.0f, 1e-4f); // LTD scales with w.
}

TEST(Stdp, RepeatedPotentiationConvergesToMax)
{
    StdpConfig config = hardConfig();
    config.softBounds = true;
    config.ltpIncrement = 32.0f;
    const StdpRule rule(config);
    std::vector<float> w = {50.0f};
    const std::vector<int64_t> last = {0};
    for (int i = 0; i < 200; ++i)
        rule.onPostSpike(w.data(), last.data(), 0, 1);
    EXPECT_NEAR(w[0], 255.0f, 1.0f);
}

class LtpWindowTest : public ::testing::TestWithParam<int>
{
};

TEST_P(LtpWindowTest, BoundaryIsInclusive)
{
    StdpConfig config = hardConfig();
    config.ltpWindowMs = GetParam();
    const StdpRule rule(config);
    std::vector<float> w = {100.0f, 100.0f};
    const std::vector<int64_t> last = {
        100 - GetParam(),      // exactly at the window edge -> LTP.
        100 - GetParam() - 1}; // one ms beyond -> LTD.
    rule.onPostSpike(w.data(), last.data(), 100, 2);
    EXPECT_GT(w[0], 100.0f);
    EXPECT_LT(w[1], 100.0f);
}

INSTANTIATE_TEST_SUITE_P(Windows, LtpWindowTest,
                         ::testing::Values(1, 10, 45, 50));

} // namespace
} // namespace snn
} // namespace neuro
