// Tests for the configuration registry and experiment scaling.

#include <gtest/gtest.h>

#include <cstdlib>

#include "neuro/common/config.h"

namespace neuro {
namespace {

TEST(Config, SetAndTypedGet)
{
    Config cfg;
    cfg.set("alpha", "42");
    cfg.set("beta", "3.5");
    cfg.set("gamma", "yes");
    cfg.set("delta", "hello");
    EXPECT_EQ(cfg.getInt("alpha", 0), 42);
    EXPECT_DOUBLE_EQ(cfg.getDouble("beta", 0.0), 3.5);
    EXPECT_TRUE(cfg.getBool("gamma", false));
    EXPECT_EQ(cfg.getString("delta", ""), "hello");
}

TEST(Config, FallbacksWhenAbsent)
{
    Config cfg;
    EXPECT_EQ(cfg.getInt("missing", -7), -7);
    EXPECT_DOUBLE_EQ(cfg.getDouble("missing", 1.5), 1.5);
    EXPECT_FALSE(cfg.getBool("missing", false));
    EXPECT_EQ(cfg.getString("missing", "dft"), "dft");
    EXPECT_FALSE(cfg.has("missing"));
}

TEST(Config, FallbackOnUnparsableValue)
{
    Config cfg;
    cfg.set("n", "not-a-number");
    EXPECT_EQ(cfg.getInt("n", 9), 9);
    EXPECT_DOUBLE_EQ(cfg.getDouble("n", 2.0), 2.0);
    cfg.set("b", "maybe");
    EXPECT_TRUE(cfg.getBool("b", true));
}

TEST(Config, ParseArgsKeyValueOnly)
{
    Config cfg;
    const char *argv[] = {"prog", "train=100", "--flag", "x=y=z", "=bad"};
    cfg.parseArgs(5, const_cast<char **>(argv));
    EXPECT_EQ(cfg.getInt("train", 0), 100);
    EXPECT_EQ(cfg.getString("x", ""), "y=z");
    EXPECT_FALSE(cfg.has("--flag"));
    EXPECT_FALSE(cfg.has(""));
    // Bare `--flag` is stored as a truthy key, dashes normalized.
    EXPECT_TRUE(cfg.getBool("flag", false));
}

TEST(Config, ParseArgsDashedFlags)
{
    Config cfg;
    const char *argv[] = {"prog", "--trace=out.json", "--stats-dump",
                          "accuracy", "-x"};
    cfg.parseArgs(5, const_cast<char **>(argv));
    EXPECT_EQ(cfg.getString("trace", ""), "out.json");
    EXPECT_TRUE(cfg.getBool("stats_dump", false));
    // Subcommand words and single-dash tokens are left alone.
    EXPECT_FALSE(cfg.has("accuracy"));
    EXPECT_FALSE(cfg.has("x"));
}

TEST(Config, WarnsOnUnknownDashedFlag)
{
    Config cfg;
    // --theads is a typo of --threads: flagged, but the value still
    // lands (passthrough preserved for forward compatibility).
    const char *argv[] = {"prog", "--theads=4", "train=100"};
    cfg.parseArgs(3, const_cast<char **>(argv));
    ASSERT_EQ(cfg.unknownFlags().size(), 1u);
    EXPECT_EQ(cfg.unknownFlags()[0], "theads");
    EXPECT_EQ(cfg.getInt("theads", 0), 4);
    EXPECT_EQ(cfg.getInt("train", 0), 100);
}

TEST(Config, KnownFlagsDoNotWarn)
{
    Config cfg;
    const char *argv[] = {"prog", "--threads=2", "--stats-dump",
                          "--trace=out.json", "--quick"};
    cfg.parseArgs(5, const_cast<char **>(argv));
    EXPECT_TRUE(cfg.unknownFlags().empty());
    EXPECT_EQ(cfg.getInt("threads", 0), 2);
    EXPECT_TRUE(cfg.getBool("quick", false));
}

TEST(Config, RegisteredFlagSuppressesWarning)
{
    Config::registerKnownFlag("my-bench-flag");
    Config cfg;
    const char *argv[] = {"prog", "--my-bench-flag=7"};
    cfg.parseArgs(2, const_cast<char **>(argv));
    EXPECT_TRUE(cfg.unknownFlags().empty());
    EXPECT_EQ(cfg.getInt("my_bench_flag", 0), 7);
}

TEST(Config, UnknownFlagListResetsPerParse)
{
    Config cfg;
    const char *bad[] = {"prog", "--no-such-thing"};
    cfg.parseArgs(2, const_cast<char **>(bad));
    EXPECT_EQ(cfg.unknownFlags().size(), 1u);
    const char *good[] = {"prog", "--quick"};
    cfg.parseArgs(2, const_cast<char **>(good));
    EXPECT_TRUE(cfg.unknownFlags().empty());
}

TEST(Config, PlainKeyValueNeverWarns)
{
    Config cfg;
    // Undashed key=value pairs are the benches' open namespace; they
    // must stay exempt from the known-flag check.
    const char *argv[] = {"prog", "theads=4", "exotic_knob=yes"};
    cfg.parseArgs(3, const_cast<char **>(argv));
    EXPECT_TRUE(cfg.unknownFlags().empty());
    EXPECT_EQ(cfg.getInt("theads", 0), 4);
}

TEST(Config, ParseEnvPicksUpPrefixedVars)
{
    ::setenv("NEURO_TESTKEY", "77", 1);
    Config cfg;
    cfg.parseEnv();
    EXPECT_EQ(cfg.getInt("testkey", 0), 77);
    ::unsetenv("NEURO_TESTKEY");
}

TEST(Config, ScaledRespectsMinimum)
{
    // experimentScale() is latched once per process; whatever it is,
    // scaled() must respect the floor and never exceed n for scale<=1.
    EXPECT_GE(scaled(1000, 10), 10u);
    EXPECT_LE(scaled(1000, 10), 1000u);
    EXPECT_EQ(scaled(0, 5), 5u);
}

} // namespace
} // namespace neuro
