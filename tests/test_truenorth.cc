// Tests for the TrueNorth core reimplementation: cost model vs the
// paper's Section 5 numbers, and the functional crossbar quantization.

#include <gtest/gtest.h>

#include <set>

#include "neuro/common/matrix.h"
#include "neuro/common/rng.h"
#include "neuro/core/reports.h"
#include "neuro/hw/truenorth.h"

namespace neuro {
namespace hw {
namespace {

TEST(TrueNorthCore, CostModelMatchesSection5)
{
    const Design core = buildTrueNorthCore();
    EXPECT_NEAR(core.totalAreaMm2(), core::paper::kTrueNorthAreaMm2,
                core::paper::kTrueNorthAreaMm2 * 0.2);
    EXPECT_NEAR(core.timePerImageNs() / 1000.0,
                core::paper::kTrueNorthTimeUs, 1.0);
    EXPECT_NEAR(core.totalEnergyPerImageUj(),
                core::paper::kTrueNorthEnergyUj,
                core::paper::kTrueNorthEnergyUj * 0.5);
}

TEST(TrueNorthCore, SlowerButComparableAreaVsSnnWotNi1)
{
    // Section 5: SNNwot ni=1 beats TrueNorth on speed (0.98us vs
    // 1024us) at similar area.
    const Design core = buildTrueNorthCore();
    EXPECT_GT(core.timePerImageNs(), 100000.0);
}

Matrix
makeTestWeights(std::size_t neurons, std::size_t inputs, uint64_t seed)
{
    Rng rng(seed);
    Matrix w(neurons, inputs);
    // Two clusters of columns (low/high) so the axon typing has
    // structure to find.
    for (std::size_t n = 0; n < neurons; ++n)
        for (std::size_t i = 0; i < inputs; ++i)
            w(n, i) = static_cast<float>(
                (i % 2 == 0 ? 40.0 : 200.0) + rng.uniform(-20.0, 20.0));
    return w;
}

TEST(TrueNorthFunctional, TypesAndWeightsWithinFormat)
{
    const Matrix w = makeTestWeights(16, 64, 1);
    const TrueNorthFunctional tn(w);
    for (int type : tn.axonTypes()) {
        EXPECT_GE(type, 0);
        EXPECT_LT(type, 4);
    }
    for (std::size_t n = 0; n < 16; ++n) {
        for (int t = 0; t < 4; ++t) {
            EXPECT_GE(tn.typeWeight(n, t), -255);
            EXPECT_LE(tn.typeWeight(n, t), 255);
        }
    }
}

TEST(TrueNorthFunctional, ClusersSeparateLowAndHighColumns)
{
    const Matrix w = makeTestWeights(16, 64, 2);
    const TrueNorthFunctional tn(w);
    // Even columns (mean ~40) and odd columns (mean ~200) must never
    // share an axon type (k-means may split each mode into sub-types,
    // but it must not merge across the modes).
    const auto &types = tn.axonTypes();
    std::set<int> even_types, odd_types;
    for (std::size_t i = 0; i < types.size(); ++i)
        (i % 2 == 0 ? even_types : odd_types).insert(types[i]);
    for (int t : even_types)
        EXPECT_EQ(odd_types.count(t), 0u) << "type " << t << " spans "
                                          << "both column modes";
}

TEST(TrueNorthFunctional, ForwardMatchesManualComputation)
{
    Matrix w(2, 4);
    // Neuron 0 keyed to inputs {0,1}; neuron 1 to {2,3}.
    w(0, 0) = 100;
    w(0, 1) = 100;
    w(0, 2) = 0;
    w(0, 3) = 0;
    w(1, 0) = 0;
    w(1, 1) = 0;
    w(1, 2) = 100;
    w(1, 3) = 100;
    const TrueNorthFunctional tn(w);
    const uint8_t counts_a[4] = {5, 5, 0, 0};
    const uint8_t counts_b[4] = {0, 0, 5, 5};
    EXPECT_EQ(tn.forward(counts_a), 0);
    EXPECT_EQ(tn.forward(counts_b), 1);
}

TEST(TrueNorthFunctional, QuantizationErrorBounded)
{
    const Matrix w = makeTestWeights(32, 128, 3);
    const TrueNorthFunctional tn(w);
    // Clustered columns quantize well: mean abs error far below the
    // weight scale.
    EXPECT_LT(tn.quantizationError(), 30.0);
    EXPECT_GT(tn.quantizationError(), 0.0);
}

TEST(TrueNorthFunctional, PotentialsExposed)
{
    const Matrix w = makeTestWeights(8, 16, 4);
    const TrueNorthFunctional tn(w);
    const std::vector<uint8_t> counts(16, 3);
    std::vector<int64_t> potentials;
    tn.forward(counts.data(), &potentials);
    ASSERT_EQ(potentials.size(), 8u);
}

} // namespace
} // namespace hw
} // namespace neuro
