// Tests for the RTL-level datapath simulators: bit-exact equivalence
// with the functional models (the paper's "validated both simulators
// against their RTL counterpart") plus cycle/activity accounting.

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/cycle/rtl_mlp.h"
#include "neuro/cycle/rtl_snn.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/hw/folded.h"
#include "neuro/mlp/backprop.h"
#include "neuro/snn/network.h"

namespace neuro {
namespace cycle {
namespace {

class RtlMlpTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(RtlMlpTest, BitIdenticalToFunctionalModel)
{
    const std::size_t ni = GetParam();
    mlp::MlpConfig config;
    config.layerSizes = {64, 10, 4};
    Rng rng(1);
    const mlp::Mlp net(config, rng);
    const mlp::QuantizedMlp quant(net);
    RtlFoldedMlp rtl(quant, ni);

    Rng data_rng(2);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<uint8_t> pixels(64);
        for (auto &p : pixels)
            p = static_cast<uint8_t>(data_rng.uniformInt(256));
        std::vector<uint8_t> func_out(4), rtl_out(4);
        quant.forward(pixels.data(), func_out.data());
        rtl.run(pixels.data(), rtl_out.data());
        ASSERT_EQ(func_out, rtl_out) << "trial " << trial
                                     << " ni=" << ni;
    }
}

INSTANTIATE_TEST_SUITE_P(Folds, RtlMlpTest,
                         ::testing::Values(1u, 2u, 4u, 7u, 16u));

TEST(RtlMlp, CycleCountMatchesScheduleFormula)
{
    mlp::MlpConfig config;
    config.layerSizes = {784, 100, 10};
    Rng rng(3);
    const mlp::Mlp net(config, rng);
    const mlp::QuantizedMlp quant(net);
    for (std::size_t ni : {1UL, 4UL, 8UL, 16UL}) {
        RtlFoldedMlp rtl(quant, ni);
        std::vector<uint8_t> pixels(784, 100);
        std::vector<uint8_t> out(10);
        const RtlRunStats stats = rtl.run(pixels.data(), out.data());
        EXPECT_EQ(stats.cycles,
                  hw::foldedMlpCycles({784, 100, 10}, ni))
            << "ni=" << ni;
        EXPECT_EQ(stats.multOps, 784u * 100 + 100 * 10);
        EXPECT_EQ(stats.activations, 110u);
        EXPECT_GT(stats.regToggles, 0u);
    }
}

TEST(RtlMlp, TrainedNetworkAccuracyIdentical)
{
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 300;
    opt.testSize = 80;
    const datasets::Split split = datasets::makeSynthDigits(opt);
    mlp::MlpConfig config;
    config.layerSizes = {784, 15, 10};
    Rng rng(4);
    mlp::Mlp net(config, rng);
    mlp::TrainConfig train;
    train.epochs = 4;
    mlp::train(net, split.train, train);
    const mlp::QuantizedMlp quant(net);
    RtlFoldedMlp rtl(quant, 8);
    for (std::size_t i = 0; i < split.test.size(); ++i) {
        ASSERT_EQ(quant.predict(split.test[i].pixels.data()),
                  rtl.predict(split.test[i].pixels.data()));
    }
}

class RtlSnnTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(RtlSnnTest, WinnerAndPotentialsMatchFunctionalModel)
{
    const std::size_t ni = GetParam();
    snn::SnnConfig config;
    config.numInputs = 49;
    config.numNeurons = 12;
    Rng rng(5);
    snn::SnnNetwork net(config, rng);
    const snn::SnnWotDatapath datapath(net);
    const snn::SpikeEncoder encoder(config.coding);
    RtlFoldedSnnWot rtl(datapath, encoder, ni);

    Rng data_rng(6);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<uint8_t> pixels(49);
        for (auto &p : pixels)
            p = static_cast<uint8_t>(data_rng.uniformInt(256));
        // Functional reference computes from counts.
        std::vector<uint8_t> counts(49);
        for (std::size_t i = 0; i < 49; ++i)
            counts[i] = encoder.spikeCount(pixels[i]);
        std::vector<uint32_t> func_pot, rtl_pot;
        const int func_winner =
            datapath.forward(counts.data(), &func_pot);
        const auto [rtl_winner, stats] =
            rtl.run(pixels.data(), &rtl_pot);
        ASSERT_EQ(func_winner, rtl_winner);
        ASSERT_EQ(func_pot, rtl_pot);
    }
}

INSTANTIATE_TEST_SUITE_P(Folds, RtlSnnTest,
                         ::testing::Values(1u, 3u, 8u, 16u));

TEST(RtlSnn, CycleCountMatchesScheduleFormula)
{
    snn::SnnConfig config;
    config.numInputs = 784;
    config.numNeurons = 300;
    Rng rng(7);
    snn::SnnNetwork net(config, rng);
    const snn::SnnWotDatapath datapath(net);
    const snn::SpikeEncoder encoder(config.coding);
    std::vector<uint8_t> pixels(784, 128);
    for (std::size_t ni : {1UL, 4UL, 8UL, 16UL}) {
        RtlFoldedSnnWot rtl(datapath, encoder, ni);
        const auto [winner, stats] = rtl.run(pixels.data());
        EXPECT_EQ(stats.cycles, hw::foldedSnnWotCycles({784, 300}, ni))
            << "ni=" << ni;
        EXPECT_EQ(stats.multOps, 784u * 300);
        (void)winner;
    }
}

} // namespace
} // namespace cycle
} // namespace neuro
