// Positive control for the thread-safety-analysis gate: a correctly
// annotated component must compile CLEAN under
//   clang++ -fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror
// (the tsa.good_annotations ctest). If this file starts warning, the
// macros in common/thread_annotations.h regressed — fix them before
// trusting the bad_*.cc rejections.
#include <cstddef>
#include <deque>

#include "neuro/common/mutex.h"

namespace {

class Mailbox
{
  public:
    void
    post(int v)
    {
        {
            neuro::MutexGuard lock(mutex_);
            items_.push_back(v);
        }
        nonEmpty_.notifyOne();
    }

    int
    take()
    {
        neuro::MutexGuard lock(mutex_);
        while (items_.empty())
            nonEmpty_.wait(mutex_);
        const int v = items_.front();
        items_.pop_front();
        return v;
    }

    std::size_t
    sizeLocked() const NEURO_REQUIRES(mutex_)
    {
        return items_.size();
    }

    std::size_t
    size() const
    {
        neuro::MutexGuard lock(mutex_);
        return sizeLocked();
    }

  private:
    mutable neuro::Mutex mutex_;
    neuro::CondVar nonEmpty_;
    std::deque<int> items_ NEURO_GUARDED_BY(mutex_);
};

} // namespace

int
main()
{
    Mailbox box;
    box.post(1);
    return box.take() == 1 && box.size() == 0 ? 0 : 1;
}
