// Known-bad fixture for the thread-safety-analysis gate: reads and
// writes a NEURO_GUARDED_BY member without holding its mutex. The
// tsa.bad_guarded_by ctest asserts clang -Wthread-safety -Werror
// REJECTS this file; if it starts compiling, the analysis (or the
// macro layer) is off and the whole gate is vacuous.
#include "neuro/common/mutex.h"

namespace {

class Counter
{
  public:
    void
    incrementUnlocked()
    {
        ++value_; // BAD: writing guarded state without mutex_
    }

    int
    readUnlocked() const
    {
        return value_; // BAD: reading guarded state without mutex_
    }

  private:
    mutable neuro::Mutex mutex_;
    int value_ NEURO_GUARDED_BY(mutex_) = 0;
};

} // namespace

int
main()
{
    Counter c;
    c.incrementUnlocked();
    return c.readUnlocked();
}
