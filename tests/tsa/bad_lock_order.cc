// Known-bad fixture for the lock-order half of the thread-safety
// gate (-Wthread-safety-beta): three mutexes carry the repo's
// documented acquisition order — the serving stop/queue lock before
// the server-state lock before the registry lock
// (docs/static_analysis.md) — and takeInverted() acquires them
// backwards. The tsa.bad_lock_order ctest asserts clang REJECTS this
// file; if it compiles, the NEURO_ACQUIRED_BEFORE edges stopped being
// checked and a real inversion (deadlock) would sail through too.
#include "neuro/common/mutex.h"

namespace {

struct ServingLocks
{
    /** Outermost: admission queue (serve/queue.h). */
    neuro::Mutex queueMutex NEURO_ACQUIRED_BEFORE(serverMutex);
    /** Middle: server lifecycle/session state (serve/server.h). */
    neuro::Mutex serverMutex NEURO_ACQUIRED_BEFORE(registryMutex);
    /** Innermost: model registry (serve/registry.h). */
    neuro::Mutex registryMutex;

    int queued NEURO_GUARDED_BY(queueMutex) = 0;
    int sessions NEURO_GUARDED_BY(serverMutex) = 0;
    int models NEURO_GUARDED_BY(registryMutex) = 0;
};

int
takeInOrder(ServingLocks &locks)
{
    neuro::MutexGuard queue(locks.queueMutex);
    neuro::MutexGuard server(locks.serverMutex);
    neuro::MutexGuard registry(locks.registryMutex);
    return locks.queued + locks.sessions + locks.models;
}

int
takeInverted(ServingLocks &locks)
{
    neuro::MutexGuard registry(locks.registryMutex);
    neuro::MutexGuard server(locks.serverMutex); // BAD: after registry
    neuro::MutexGuard queue(locks.queueMutex);   // BAD: innermost last
    return locks.queued + locks.sessions + locks.models;
}

} // namespace

int
main()
{
    ServingLocks locks;
    return takeInOrder(locks) + takeInverted(locks);
}
