// Tests for the self-labeling pass (Section 2.2).

#include <gtest/gtest.h>

#include "neuro/snn/labeling.h"

namespace neuro {
namespace snn {
namespace {

TEST(SelfLabeling, UnfiredNeuronsGetNoLabel)
{
    SelfLabeling labeling(3, 2);
    labeling.record(0, 1);
    const auto labels = labeling.finalize({10, 10});
    EXPECT_EQ(labels[0], 1);
    EXPECT_EQ(labels[1], -1);
    EXPECT_EQ(labels[2], -1);
}

TEST(SelfLabeling, HighestCounterWins)
{
    SelfLabeling labeling(1, 3);
    for (int i = 0; i < 3; ++i)
        labeling.record(0, 0);
    for (int i = 0; i < 5; ++i)
        labeling.record(0, 2);
    const auto labels = labeling.finalize({10, 10, 10});
    EXPECT_EQ(labels[0], 2);
}

TEST(SelfLabeling, ScoresNormalizedByClassFrequency)
{
    // 4 wins of an over-represented class vs 3 wins of a rare class:
    // the normalized score must prefer the rare class
    // (4/100 = 0.04 < 3/10 = 0.3).
    SelfLabeling labeling(1, 2);
    for (int i = 0; i < 4; ++i)
        labeling.record(0, 0);
    for (int i = 0; i < 3; ++i)
        labeling.record(0, 1);
    const auto labels = labeling.finalize({100, 10});
    EXPECT_EQ(labels[0], 1);
}

TEST(SelfLabeling, CountersAccessible)
{
    SelfLabeling labeling(2, 2);
    labeling.record(1, 0);
    labeling.record(1, 0);
    EXPECT_EQ(labeling.counter(1, 0), 2u);
    EXPECT_EQ(labeling.counter(1, 1), 0u);
    EXPECT_EQ(labeling.counter(0, 0), 0u);
}

TEST(SelfLabeling, ZeroFrequencyClassIgnored)
{
    SelfLabeling labeling(1, 2);
    labeling.record(0, 0);
    // Class 0 has zero training images recorded in label_counts: its
    // score is undefined and must be skipped.
    const auto labels = labeling.finalize({0, 10});
    EXPECT_EQ(labels[0], -1);
}

} // namespace
} // namespace snn
} // namespace neuro
