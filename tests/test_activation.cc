// Tests for the MLP activation functions and the hardware 16-point
// piecewise-linear sigmoid (Section 4.2.1 / Figure 5).

#include <gtest/gtest.h>

#include <cmath>

#include "neuro/mlp/activation.h"

namespace neuro {
namespace mlp {
namespace {

TEST(Activation, SigmoidValues)
{
    const Activation f(ActivationKind::Sigmoid);
    EXPECT_NEAR(f.apply(0.0f), 0.5f, 1e-6);
    EXPECT_NEAR(f.apply(10.0f), 1.0f, 1e-4);
    EXPECT_NEAR(f.apply(-10.0f), 0.0f, 1e-4);
    EXPECT_NEAR(f.derivativeFromOutput(0.5f), 0.25f, 1e-6);
}

class SlopeTest : public ::testing::TestWithParam<float>
{
};

TEST_P(SlopeTest, HigherSlopeIsSteeper)
{
    const float a = GetParam();
    const Activation base(ActivationKind::Sigmoid);
    const Activation steep(ActivationKind::ParamSigmoid, a);
    // At x=0 both are 0.5; just right of 0 the steeper one is larger.
    EXPECT_NEAR(steep.apply(0.0f), 0.5f, 1e-6);
    if (a > 1.0f) {
        EXPECT_GT(steep.apply(0.2f), base.apply(0.2f));
    }
    // Approaches the step function as a grows (Figure 5).
    const Activation step(ActivationKind::Step);
    EXPECT_NEAR(steep.apply(4.0f), step.apply(4.0f), 1.0f / a);
}

INSTANTIATE_TEST_SUITE_P(Slopes, SlopeTest,
                         ::testing::Values(1.0f, 2.0f, 4.0f, 8.0f, 16.0f));

TEST(Activation, StepIsBinaryWithSurrogateGradient)
{
    const Activation f(ActivationKind::Step, 4.0f);
    EXPECT_FLOAT_EQ(f.apply(-0.001f), 0.0f);
    EXPECT_FLOAT_EQ(f.apply(0.0f), 1.0f);
    // Surrogate gradient must be nonzero so BP can train.
    EXPECT_GT(f.derivativeFromOutput(0.0f), 0.0f);
    EXPECT_GT(f.derivativeFromOutput(1.0f), 0.0f);
}

TEST(PiecewiseSigmoid, CloseToExactEverywhere)
{
    const PiecewiseSigmoid pli(1.0f);
    // 16 equal secant segments over [-8, 8]: worst-case error ~1.2%
    // (the paper found the approximation does not hurt accuracy).
    EXPECT_LT(pli.maxError(), 0.02f);
}

TEST(PiecewiseSigmoid, SaturatesOutsideDomain)
{
    const PiecewiseSigmoid pli(1.0f);
    EXPECT_FLOAT_EQ(pli.apply(-100.0f), 0.0f);
    EXPECT_FLOAT_EQ(pli.apply(100.0f), 1.0f);
}

TEST(PiecewiseSigmoid, MonotonicallyIncreasing)
{
    const PiecewiseSigmoid pli(2.0f);
    float prev = -1.0f;
    for (float x = -9.0f; x <= 9.0f; x += 0.05f) {
        const float y = pli.apply(x);
        ASSERT_GE(y, prev - 1e-6f) << "not monotonic at " << x;
        prev = y;
    }
}

TEST(PiecewiseSigmoid, SegmentCoefficientsInterpolateEndpoints)
{
    const PiecewiseSigmoid pli(1.0f);
    // At each segment start x0, a_i*x0 + b_i equals the exact sigmoid.
    const float width =
        2.0f * PiecewiseSigmoid::kRange / PiecewiseSigmoid::kSegments;
    for (std::size_t i = 0; i < PiecewiseSigmoid::kSegments; ++i) {
        const float x0 = -PiecewiseSigmoid::kRange +
                         static_cast<float>(i) * width;
        EXPECT_NEAR(pli.coeffA(i) * x0 + pli.coeffB(i), pli.exact(x0),
                    1e-5f);
    }
}

} // namespace
} // namespace mlp
} // namespace neuro
