// Tests for multi-hidden-layer MLP support: the library's MlpConfig
// accepts arbitrary layer stacks even though the paper's design uses
// one hidden layer (its Section 2.2 notes single-layer SNNs compete
// with multi-layer networks).

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/common/serialize.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/mlp/backprop.h"
#include "neuro/mlp/quantized.h"

namespace neuro {
namespace mlp {
namespace {

TEST(DeepMlp, ForwardThroughThreeHiddenLayers)
{
    MlpConfig config;
    config.layerSizes = {8, 6, 5, 4, 3};
    Rng rng(1);
    const Mlp net(config, rng);
    EXPECT_EQ(net.numLayers(), 4u);
    EXPECT_EQ(net.weightCount(), 9u * 6 + 7 * 5 + 6 * 4 + 5 * 3);
    std::vector<float> x(8, 0.5f), y(3);
    net.forward(x.data(), y.data());
    for (float v : y) {
        EXPECT_GT(v, 0.0f);
        EXPECT_LT(v, 1.0f);
    }
}

TEST(DeepMlp, TrainsOnDigits)
{
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 500;
    opt.testSize = 120;
    const datasets::Split split = datasets::makeSynthDigits(opt);
    MlpConfig config;
    config.layerSizes = {784, 24, 16, 10};
    TrainConfig train;
    train.epochs = 8;
    const double acc =
        trainAndEvaluate(config, train, split.train, split.test, 3);
    EXPECT_GT(acc, 0.6) << "two-hidden-layer MLP failed to train";
}

TEST(DeepMlp, QuantizesAndSerializes)
{
    MlpConfig config;
    config.layerSizes = {16, 12, 8, 4};
    Rng rng(5);
    const Mlp net(config, rng);

    // Quantized path handles any depth.
    const QuantizedMlp quant(net);
    EXPECT_EQ(quant.numLayers(), 3u);
    std::vector<uint8_t> pixels(16, 128);
    std::vector<uint8_t> out(4);
    quant.forward(pixels.data(), out.data());

    // Serialization round-trips the full stack.
    Archive archive;
    net.serialize(archive, "deep");
    const auto restored = Mlp::deserialize(archive, "deep");
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->numLayers(), 3u);
    std::vector<float> x(16, 0.3f), ya(4), yb(4);
    net.forward(x.data(), ya.data());
    restored->forward(x.data(), yb.data());
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(ya[static_cast<std::size_t>(i)],
                        yb[static_cast<std::size_t>(i)]);
}

TEST(DeepMlp, BackpropGradientSanityOnTinyNet)
{
    // One sample, one update: the output must move toward the target.
    MlpConfig config;
    config.layerSizes = {2, 3, 2, 1};
    Rng rng(7);
    Mlp net(config, rng);
    datasets::Dataset data("toy", 2, 1, 1);
    datasets::Sample s;
    s.pixels = {255, 0};
    s.label = 0; // target output 1 for class 0.
    data.add(s);

    std::vector<float> x = {1.0f, 0.0f};
    std::vector<float> before(1), after(1);
    net.forward(x.data(), before.data());
    TrainConfig train;
    train.epochs = 1;
    train.learningRate = 0.5f;
    train.shuffle = false;
    mlp::train(net, data, train);
    net.forward(x.data(), after.data());
    EXPECT_GT(after[0], before[0])
        << "output did not move toward the target";
}

} // namespace
} // namespace mlp
} // namespace neuro
