// Tests for the saturating fixed-point arithmetic of the quantized
// datapaths.

#include <gtest/gtest.h>

#include <cmath>

#include "neuro/common/fixed_point.h"

namespace neuro {
namespace {

TEST(FixedPoint, RoundTripWithinLsb)
{
    for (double v = -1.9; v < 1.9; v += 0.0137) {
        const Weight8 w = Weight8::fromDouble(v);
        EXPECT_NEAR(w.toDouble(), v, Weight8::lsb * 0.5 + 1e-12) << v;
    }
}

TEST(FixedPoint, SaturatesAtRange)
{
    EXPECT_DOUBLE_EQ(Weight8::fromDouble(100.0).toDouble(),
                     Weight8::rawMax * Weight8::lsb);
    EXPECT_DOUBLE_EQ(Weight8::fromDouble(-100.0).toDouble(),
                     Weight8::rawMin * Weight8::lsb);
}

TEST(FixedPoint, AdditionMatchesDouble)
{
    const Weight8 a = Weight8::fromDouble(0.5);
    const Weight8 b = Weight8::fromDouble(0.25);
    EXPECT_DOUBLE_EQ((a + b).toDouble(), 0.75);
    EXPECT_DOUBLE_EQ((a - b).toDouble(), 0.25);
}

TEST(FixedPoint, AdditionSaturates)
{
    const Weight8 big = Weight8::fromDouble(1.9);
    const Weight8 sum = big + big;
    EXPECT_DOUBLE_EQ(sum.toDouble(), Weight8::rawMax * Weight8::lsb);
    const Weight8 neg = Weight8::fromDouble(-1.9);
    EXPECT_DOUBLE_EQ((neg + neg).toDouble(),
                     Weight8::rawMin * Weight8::lsb);
}

TEST(FixedPoint, MultiplicationTruncates)
{
    const Weight8 a = Weight8::fromDouble(0.5);
    const Weight8 b = Weight8::fromDouble(0.5);
    EXPECT_DOUBLE_EQ((a * b).toDouble(), 0.25);
}

TEST(FixedPoint, ComparisonOrdering)
{
    const Weight8 a = Weight8::fromDouble(-0.5);
    const Weight8 b = Weight8::fromDouble(0.25);
    EXPECT_LT(a, b);
    EXPECT_EQ(a, Weight8::fromDouble(-0.5));
}

/** Property sweep: q(x) + q(y) == q(x + y) when no rounding/overflow is
 *  involved (values on the LSB grid, sums in range). */
class FixedAddProperty
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(FixedAddProperty, ExactOnGrid)
{
    const auto [ra, rb] = GetParam();
    const Weight8 a = Weight8::fromRaw(ra);
    const Weight8 b = Weight8::fromRaw(rb);
    const long expected =
        std::clamp<long>(static_cast<long>(ra) + rb, Weight8::rawMin,
                         Weight8::rawMax);
    EXPECT_EQ((a + b).raw(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, FixedAddProperty,
    ::testing::Values(std::make_pair(0, 0), std::make_pair(1, -1),
                      std::make_pair(100, 27), std::make_pair(-128, -1),
                      std::make_pair(127, 1), std::make_pair(-128, 127),
                      std::make_pair(64, 64), std::make_pair(-100, -100)));

TEST(FixedPoint, Weight12HasWiderRange)
{
    EXPECT_GT(Weight12::rawMax * Weight12::lsb,
              Weight8::rawMax * Weight8::lsb);
    EXPECT_DOUBLE_EQ(Weight12::lsb, Weight8::lsb);
}

TEST(FixedPoint, AccumulatorHoldsManyProducts)
{
    Accum24 acc;
    const Accum24 step = Accum24::fromDouble(1.5);
    for (int i = 0; i < 1000; ++i)
        acc = acc + step;
    EXPECT_NEAR(acc.toDouble(), 1500.0, 1e-6);
}

} // namespace
} // namespace neuro
