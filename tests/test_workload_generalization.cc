// Cross-workload generalization tests: the Section 4.5 claim is that
// the MNIST conclusions carry to other input geometries; these tests
// run scaled-down versions of the MPEG-7-like and SAD-like flows.

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/core/compare.h"
#include "neuro/core/experiment.h"

namespace neuro {
namespace core {
namespace {

TEST(WorkloadGeneralization, Mpeg7MlpTrainsAtPaperTopology)
{
    const Workload w = makeMpeg7Workload(700, 200, 2);
    mlp::TrainConfig train = defaultMlpTrainConfig();
    train.epochs = 6;
    const double acc = mlp::trainAndEvaluate(
        defaultMlpConfig(w), train, w.data.train, w.data.test, 42);
    // Paper: 99.7% with 15 hidden neurons; our silhouettes are harder
    // for so small a layer but must be clearly learnable.
    EXPECT_GT(acc, 0.6);
}

TEST(WorkloadGeneralization, SadMlpTrainsAtPaperTopology)
{
    const Workload w = makeSadWorkload(700, 200, 3);
    mlp::TrainConfig train = defaultMlpTrainConfig();
    train.epochs = 6;
    const double acc = mlp::trainAndEvaluate(
        defaultMlpConfig(w), train, w.data.train, w.data.test, 42);
    EXPECT_GT(acc, 0.8);
}

TEST(WorkloadGeneralization, SadSnnLearnsAboveChance)
{
    const Workload w = makeSadWorkload(700, 200, 3);
    const snn::SnnConfig config = defaultSnnConfig(w, w.data.train.size());
    snn::SnnTrainConfig train;
    train.epochs = 2;
    const double acc = snn::trainAndEvaluateStdp(
        config, train, w.data.train, w.data.test, snn::EvalMode::Wt, 7);
    EXPECT_GT(acc, 0.3) << "STDP below usable accuracy on SAD-like data";
}

TEST(WorkloadGeneralization, FoldedCostRatiosFavorMlpOnBothWorkloads)
{
    // Section 4.5's hardware half: SNNwot costs more than the MLP on
    // both extra workloads, with a bigger gap for MPEG-7's tiny MLP.
    const Workload mpeg7 = makeMpeg7Workload(300, 100, 2);
    const Workload sad = makeSadWorkload(300, 100, 3);
    const auto mpeg7_ratios =
        foldedCostRatios(mpeg7.mlpTopo, mpeg7.snnTopo, {1, 16});
    const auto sad_ratios =
        foldedCostRatios(sad.mlpTopo, sad.snnTopo, {1, 16});
    for (const auto &r : mpeg7_ratios) {
        EXPECT_GT(r.areaRatio, 2.0) << "mpeg7 ni=" << r.ni;
        EXPECT_GT(r.energyRatio, 2.0) << "mpeg7 ni=" << r.ni;
    }
    for (const auto &r : sad_ratios) {
        EXPECT_GT(r.areaRatio, 1.0) << "sad ni=" << r.ni;
        EXPECT_LT(r.areaRatio, 2.5) << "sad ni=" << r.ni;
    }
    // MPEG-7's gap exceeds SAD's (paper: 3.81-5.57x vs 1.27-1.31x).
    EXPECT_GT(mpeg7_ratios[0].areaRatio, sad_ratios[0].areaRatio);
}

TEST(WorkloadGeneralization, SnnConfigAdaptsThresholdPerWorkload)
{
    const Workload mnist = makeMnistWorkload(300, 100, 1);
    const Workload sad = makeSadWorkload(300, 100, 3);
    const auto mnist_config = defaultSnnConfig(mnist, 300);
    const auto sad_config = defaultSnnConfig(sad, 300);
    // SAD images are 13x13 and denser: different drive, different
    // derived threshold — the data-driven rule must not be constant.
    EXPECT_NE(mnist_config.initialThreshold,
              sad_config.initialThreshold);
    EXPECT_GT(mnist_config.initialThreshold, 0.0);
    EXPECT_GT(sad_config.initialThreshold, 0.0);
}

} // namespace
} // namespace core
} // namespace neuro
