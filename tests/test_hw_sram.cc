// Tests for the SRAM model: bank geometry and Table 6 reproduction.

#include <gtest/gtest.h>

#include "neuro/core/reports.h"
#include "neuro/hw/sram.h"

namespace neuro {
namespace hw {
namespace {

TEST(SramBank, CalibrationPointsExact)
{
    // The three published bank characterizations must round-trip.
    const SramBank d128 = makeBank(128);
    EXPECT_NEAR(d128.areaUm2, 40772.0, 1.0);
    EXPECT_NEAR(d128.readEnergyPj, 32.46, 0.01);
    const SramBank d200 = makeBank(200);
    EXPECT_NEAR(d200.areaUm2, 46002.0, 1.0);
    EXPECT_NEAR(d200.readEnergyPj, 33.05, 0.01);
    const SramBank d784 = makeBank(784);
    EXPECT_NEAR(d784.areaUm2, 108351.0, 1.0);
    EXPECT_NEAR(d784.readEnergyPj, 44.41, 0.01);
}

TEST(SramBank, InterpolatesMonotonically)
{
    double prev_area = 0.0;
    for (std::size_t depth : {64u, 128u, 160u, 200u, 400u, 784u, 1600u}) {
        const SramBank bank = makeBank(depth);
        EXPECT_GT(bank.areaUm2, prev_area) << depth;
        EXPECT_GT(bank.readEnergyPj, 0.0);
        prev_area = bank.areaUm2;
    }
}

/** Table 6 reproduction: for each ni, derived bank counts and depth
 *  must match the paper exactly, and the array totals closely. */
class Table6Test : public ::testing::TestWithParam<int>
{
};

TEST_P(Table6Test, GeometryMatchesPaper)
{
    const auto &row = core::paper::kTable6[GetParam()];
    // SNN: 300 neurons x 784 inputs.
    const SramArray snn =
        makeSynapticStorage("snn", 300, 784, row.ni, 8, 0);
    EXPECT_EQ(snn.numBanks, row.snnBanks) << "SNN banks at ni=" << row.ni;
    EXPECT_EQ(snn.bank.depth, row.depth) << "depth at ni=" << row.ni;
    EXPECT_NEAR(snn.bank.readEnergyPj, row.readEnergyPj, 0.5);
    EXPECT_NEAR(snn.totalAreaUm2() / 1e6, row.snnAreaMm2,
                row.snnAreaMm2 * 0.05);
    EXPECT_NEAR(snn.energyPerCyclePj() / 1e3, row.snnEnergyNj,
                row.snnEnergyNj * 0.05);

    // MLP: hidden 100 x 784 plus output 10 x 100.
    const SramArray hidden =
        makeSynapticStorage("mlp-h", 100, 784, row.ni, 8, 0);
    const SramArray output =
        makeSynapticStorage("mlp-o", 10, 100, row.ni, 8, 0);
    EXPECT_EQ(hidden.numBanks + output.numBanks, row.mlpBanks)
        << "MLP banks at ni=" << row.ni;
    EXPECT_NEAR((hidden.totalAreaUm2() + output.totalAreaUm2()) / 1e6,
                row.mlpAreaMm2, row.mlpAreaMm2 * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Rows, Table6Test, ::testing::Values(0, 1, 2, 3));

TEST(SynapticStorage, WideWeightsGetFewerNeuronsPerBank)
{
    const SramArray w8 = makeSynapticStorage("a", 64, 256, 1, 8, 0);
    const SramArray w16 = makeSynapticStorage("b", 64, 256, 1, 16, 0);
    EXPECT_GT(w16.numBanks, w8.numBanks);
}

TEST(SynapticStorage, DepthFloorsAt128)
{
    const SramArray array = makeSynapticStorage("a", 10, 64, 16, 8, 0);
    EXPECT_EQ(array.bank.depth, 128u);
}

TEST(SramArray, EnergyAccounting)
{
    SramArray array = makeSynapticStorage("a", 16, 784, 1, 8, 1000);
    EXPECT_DOUBLE_EQ(array.energyPerImagePj(),
                     array.bank.readEnergyPj * 1000.0);
    EXPECT_DOUBLE_EQ(array.energyPerCyclePj(),
                     array.bank.readEnergyPj *
                         static_cast<double>(array.numBanks));
}

} // namespace
} // namespace hw
} // namespace neuro
