// Edge-case and API-misuse tests across modules, including death tests
// for the NEURO_ASSERT contract (invariants abort rather than corrupt
// results).

#include <gtest/gtest.h>

#include "neuro/common/config.h"
#include "neuro/common/rng.h"
#include "neuro/cycle/event_queue.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/snn/trainer.h"

namespace neuro {
namespace {

TEST(EdgeCases, EvaluationWithAllNeuronsUnlabeled)
{
    snn::SnnConfig config;
    config.numInputs = 16;
    config.numNeurons = 4;
    config.coding.periodMs = 50;
    config.homeostasis.enabled = false;
    Rng rng(1);
    snn::SnnNetwork net(config, rng);
    snn::SnnStdpTrainer trainer(config);

    datasets::Dataset data("toy", 4, 4, 2);
    datasets::Sample s;
    s.label = 1;
    s.pixels.assign(16, 180);
    data.add(s);

    const std::vector<int> labels(4, -1); // nothing ever labeled.
    const auto result =
        trainer.evaluate(net, labels, data, snn::EvalMode::Wot, 2);
    EXPECT_DOUBLE_EQ(result.accuracy, 0.0);
}

TEST(EdgeCases, SingleNeuronSingleInputNetwork)
{
    snn::SnnConfig config;
    config.numInputs = 1;
    config.numNeurons = 1;
    config.coding.periodMs = 20;
    config.initialThreshold = 50.0;
    config.wInitMin = 100.0f;
    config.wInitMax = 100.0f;
    config.thresholdJitter = 0.0;
    config.homeostasis.enabled = false;
    Rng rng(2);
    snn::SnnNetwork net(config, rng);
    snn::SpikeTrainGrid grid;
    grid.ticks.resize(20);
    grid.ticks[0].push_back(0);
    const auto result = net.presentImage(grid, false);
    EXPECT_EQ(result.outputSpikeCount, 1u);
    EXPECT_EQ(result.firstSpikeNeuron, 0);
}

TEST(EdgeCases, ConfigArgsOverrideEnv)
{
    ::setenv("NEURO_PRIORITYKEY", "env", 1);
    Config cfg;
    cfg.parseEnv();
    const char *argv[] = {"prog", "prioritykey=args"};
    cfg.parseArgs(2, const_cast<char **>(argv));
    EXPECT_EQ(cfg.getString("prioritykey", ""), "args");
    ::unsetenv("NEURO_PRIORITYKEY");
}

TEST(EdgeCases, EncoderHandlesAllBlackAndAllWhiteImages)
{
    snn::CodingConfig config;
    const snn::SpikeEncoder encoder(config);
    Rng rng(3);
    std::vector<uint8_t> black(64, 0), white(64, 255);
    EXPECT_EQ(encoder.encode(black.data(), 64, rng).totalSpikes(), 0u);
    const auto grid = encoder.encode(white.data(), 64, rng);
    // ~10 spikes per pixel on average.
    EXPECT_GT(grid.totalSpikes(), 64u * 5);
    EXPECT_LT(grid.totalSpikes(), 64u * 20);
}

using EdgeDeathTest = ::testing::Test;

TEST(EdgeDeathTest, EventQueueRejectsPastScheduling)
{
    cycle::EventQueue queue;
    queue.schedule(10, [](int64_t) {});
    queue.run();
    EXPECT_DEATH(queue.schedule(5, [](int64_t) {}),
                 "cannot schedule in the past");
}

TEST(EdgeDeathTest, DatasetRejectsWrongGeometry)
{
    datasets::Dataset data("toy", 4, 4, 2);
    datasets::Sample s;
    s.label = 0;
    s.pixels.assign(15, 0); // one pixel short.
    EXPECT_DEATH(data.add(s), "pixels");
}

TEST(EdgeDeathTest, DatasetRejectsOutOfRangeLabel)
{
    datasets::Dataset data("toy", 2, 2, 2);
    datasets::Sample s;
    s.label = 7;
    s.pixels.assign(4, 0);
    EXPECT_DEATH(data.add(s), "label");
}

TEST(EdgeDeathTest, RngRejectsZeroRange)
{
    Rng rng(4);
    EXPECT_DEATH(rng.uniformInt(0), "nonzero");
}

} // namespace
} // namespace neuro
