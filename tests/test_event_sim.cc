// Tests for the event-driven presentation driver: results must be
// identical to the tick-loop presentImage, and the event count must
// equal the number of spike-carrying instants.

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/cycle/event_sim.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/snn/trainer.h"

namespace neuro {
namespace cycle {
namespace {

snn::SnnConfig
smallConfig()
{
    snn::SnnConfig config;
    config.numInputs = 784;
    config.numNeurons = 20;
    config.coding.periodMs = 200;
    config.coding.minIntervalMs = 20;
    config.tLeakMs = 200.0;
    config.initialThreshold = 30000.0;
    config.homeostasis.enabled = false;
    return config;
}

TEST(EventSim, IdenticalToTickLoop)
{
    const snn::SnnConfig config = smallConfig();
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 10;
    opt.testSize = 1;
    const datasets::Split split = datasets::makeSynthDigits(opt);
    const snn::SpikeEncoder encoder(config.coding);

    // Two identical networks (same seed), fed the same spike trains.
    Rng rng_a(5), rng_b(5);
    snn::SnnNetwork net_a(config, rng_a);
    snn::SnnNetwork net_b(config, rng_b);

    Rng spike_rng(6);
    for (std::size_t i = 0; i < split.train.size(); ++i) {
        const auto grid = encoder.encode(split.train[i].pixels.data(),
                                         784, spike_rng);
        const auto tick_result =
            net_a.presentImage(grid, /*learn=*/true);
        const auto event_result =
            presentViaEventQueue(net_b, grid, /*learn=*/true);
        const auto &ev = event_result.presentation;
        ASSERT_EQ(tick_result.firstSpikeNeuron, ev.firstSpikeNeuron)
            << "image " << i;
        ASSERT_EQ(tick_result.firstSpikeTimeMs, ev.firstSpikeTimeMs);
        ASSERT_EQ(tick_result.outputSpikeCount, ev.outputSpikeCount);
        ASSERT_EQ(tick_result.maxPotentialNeuron,
                  ev.maxPotentialNeuron);
        ASSERT_EQ(tick_result.inputSpikeCount, ev.inputSpikeCount);
    }
    // Learned weights must also be identical (STDP applied at the same
    // instants in both drivers).
    ASSERT_EQ(net_a.weights().data(), net_b.weights().data());
}

TEST(EventSim, EventCountEqualsSpikeCarryingTicks)
{
    const snn::SnnConfig config = smallConfig();
    Rng rng(7);
    snn::SnnNetwork net(config, rng);

    snn::SpikeTrainGrid grid;
    grid.ticks.resize(200);
    grid.ticks[3].push_back(1);
    grid.ticks[3].push_back(2);
    grid.ticks[50].push_back(0);
    grid.ticks[150].push_back(3);

    const auto result = presentViaEventQueue(net, grid, false);
    EXPECT_EQ(result.eventsProcessed, 3u); // 3 distinct instants.
    EXPECT_EQ(result.ticksInWindow, 200u);
    EXPECT_EQ(result.presentation.inputSpikeCount, 4u);
}

TEST(EventSim, EmptyWindowProcessesNothing)
{
    const snn::SnnConfig config = smallConfig();
    Rng rng(8);
    snn::SnnNetwork net(config, rng);
    snn::SpikeTrainGrid grid;
    grid.ticks.resize(200);
    const auto result = presentViaEventQueue(net, grid, false);
    EXPECT_EQ(result.eventsProcessed, 0u);
    EXPECT_EQ(result.presentation.outputSpikeCount, 0u);
    EXPECT_EQ(result.presentation.firstSpikeNeuron, -1);
}

} // namespace
} // namespace cycle
} // namespace neuro
