// Tests for the SNNwot shifter/adder hardware datapath model.

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/snn/network.h"
#include "neuro/snn/snn_wot.h"

namespace neuro {
namespace snn {
namespace {

TEST(ShiftMultiply, MatchesMultiplicationExhaustively)
{
    // All 4-bit counts x all 8-bit weights: the 4-shifter decomposition
    // n3*8W + n2*4W + n1*2W + n0*W must equal count * weight.
    for (unsigned count = 0; count < 16; ++count) {
        for (unsigned weight = 0; weight < 256; ++weight) {
            ASSERT_EQ(SnnWotDatapath::shiftMultiply(
                          static_cast<uint8_t>(count),
                          static_cast<uint8_t>(weight)),
                      count * weight)
                << count << " * " << weight;
        }
    }
}

SnnConfig
smallConfig()
{
    SnnConfig config;
    config.numInputs = 6;
    config.numNeurons = 4;
    config.coding.periodMs = 100;
    config.coding.minIntervalMs = 10;
    config.homeostasis.enabled = false;
    config.thresholdJitter = 0.0;
    return config;
}

TEST(SnnWotDatapath, QuantizesWeightsToBytes)
{
    Rng rng(1);
    SnnNetwork net(smallConfig(), rng);
    net.weights()(0, 0) = 41.7f;
    net.weights()(0, 1) = 300.0f;  // clamps to 255.
    net.weights()(0, 2) = -5.0f;   // clamps to 0.
    const SnnWotDatapath dp(net);
    EXPECT_EQ(dp.weight(0, 0), 42);
    EXPECT_EQ(dp.weight(0, 1), 255);
    EXPECT_EQ(dp.weight(0, 2), 0);
}

TEST(SnnWotDatapath, ForwardMatchesFloatReference)
{
    Rng rng(2);
    SnnNetwork net(smallConfig(), rng);
    // Integer-valued weights: the byte datapath must agree exactly with
    // the float reference.
    for (std::size_t n = 0; n < 4; ++n)
        for (std::size_t i = 0; i < 6; ++i)
            net.weights()(n, i) =
                static_cast<float>(rng.uniformInt(256));
    const SnnWotDatapath dp(net);

    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint8_t> counts(6);
        for (auto &c : counts)
            c = static_cast<uint8_t>(rng.uniformInt(11));
        std::vector<double> float_pot;
        std::vector<uint32_t> int_pot;
        const int float_winner = net.forwardCounts(counts.data(),
                                                   &float_pot);
        const int int_winner = dp.forward(counts.data(), &int_pot);
        EXPECT_EQ(float_winner, int_winner);
        for (std::size_t n = 0; n < 4; ++n)
            EXPECT_DOUBLE_EQ(float_pot[n],
                             static_cast<double>(int_pot[n]));
    }
}

TEST(SnnWotDatapath, TieBreaksToLowerIndex)
{
    Rng rng(3);
    SnnNetwork net(smallConfig(), rng);
    net.weights().fill(10.0f); // all neurons identical.
    const SnnWotDatapath dp(net);
    const std::vector<uint8_t> counts = {1, 2, 3, 4, 5, 6};
    EXPECT_EQ(dp.forward(counts.data()), 0);
}

} // namespace
} // namespace snn
} // namespace neuro
