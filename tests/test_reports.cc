// Tests for the report helpers and the transcribed paper constants
// (catching transcription regressions in the reference tables).

#include <gtest/gtest.h>

#include <sstream>

#include "neuro/core/reports.h"

namespace neuro {
namespace core {
namespace {

TEST(PaperConstants, Table2CoversTheComparedFamilies)
{
    bool has_mlp = false, has_snn = false;
    for (const auto &row : paper::kTable2) {
        ASSERT_GT(row.accuracyPct, 80.0);
        ASSERT_LE(row.accuracyPct, 100.0);
        if (std::string(row.type).find("MLP") != std::string::npos)
            has_mlp = true;
        if (std::string(row.type).find("SNN") != std::string::npos)
            has_snn = true;
    }
    EXPECT_TRUE(has_mlp);
    EXPECT_TRUE(has_snn);
}

TEST(PaperConstants, Table3OrderingIsThePapersHeadline)
{
    EXPECT_GT(paper::kMlpBpAccuracyPct, paper::kSnnBpAccuracyPct);
    EXPECT_GT(paper::kSnnBpAccuracyPct, paper::kSnnWtAccuracyPct);
    EXPECT_GT(paper::kSnnWtAccuracyPct, paper::kSnnWotAccuracyPct);
    // The 5.83% gap quoted in Section 3.1.
    EXPECT_NEAR(paper::kMlpBpAccuracyPct - paper::kSnnWtAccuracyPct,
                5.83, 0.01);
}

TEST(PaperConstants, Table6RowsScaleWithNi)
{
    // More parallel ports -> more banks for the same storage.
    for (int i = 1; i < 4; ++i) {
        EXPECT_GE(paper::kTable6[i].snnBanks,
                  paper::kTable6[i - 1].snnBanks);
        EXPECT_GE(paper::kTable6[i].mlpBanks,
                  paper::kTable6[i - 1].mlpBanks);
        EXPECT_LE(paper::kTable6[i].depth, paper::kTable6[i - 1].depth);
    }
    // SNN always needs ~3x the MLP storage (235,200 vs 79,400 weights).
    for (const auto &row : paper::kTable6) {
        EXPECT_GT(row.snnAreaMm2, row.mlpAreaMm2 * 2.0);
        EXPECT_LT(row.snnAreaMm2, row.mlpAreaMm2 * 3.2);
    }
}

TEST(PaperConstants, Table7GroupsAndRanges)
{
    int snnwot = 0, snnwt = 0, mlp = 0;
    for (const auto &row : paper::kTable7) {
        if (std::string(row.type) == "SNNwot")
            ++snnwot;
        else if (std::string(row.type) == "SNNwt")
            ++snnwt;
        else if (std::string(row.type) == "MLP")
            ++mlp;
        EXPECT_GT(row.cyclesPerImage, 0.0);
    }
    EXPECT_EQ(snnwot, 5);
    EXPECT_EQ(snnwt, 5);
    EXPECT_EQ(mlp, 5);
}

TEST(PaperConstants, Table8SnnWtLosesAtNi1)
{
    EXPECT_LT(paper::kTable8[1].speedupNi1, 1.0);
    EXPECT_GT(paper::kTable8[0].speedupNi1, 1.0);
    EXPECT_GT(paper::kTable8[2].speedupNi1, 1.0);
}

TEST(PaperConstants, Table9AreasGrowWithNi)
{
    for (int i = 1; i < 4; ++i) {
        EXPECT_GT(paper::kTable9[i].totalAreaMm2,
                  paper::kTable9[i - 1].totalAreaMm2);
    }
}

TEST(Reports, PrintDesignRowsRendersEveryRow)
{
    std::vector<DesignRow> rows;
    rows.push_back({"MLP", "1", 0.5, 1.0, 2.0, 0.3, 100});
    rows.push_back({"MLP", "expanded", 70.0, 80.0, 3.8, 0.06, 4});
    rows.push_back({"SNNwot", "1", 1.0, 3.0, 1.2, 1.0, 791});
    std::ostringstream os;
    printDesignRows(os, "demo", rows);
    const std::string out = os.str();
    EXPECT_NE(out.find("expanded"), std::string::npos);
    EXPECT_NE(out.find("SNNwot"), std::string::npos);
    EXPECT_NE(out.find("791"), std::string::npos);
}

TEST(Reports, VsPaperHandlesZeroReference)
{
    const std::string s = vsPaper(42.0, 0.0, 1);
    EXPECT_EQ(s, "42.0");
    EXPECT_EQ(s.find("paper"), std::string::npos);
}

TEST(Reports, VsPaperNegativeDelta)
{
    const std::string s = vsPaper(90.0, 100.0, 0);
    EXPECT_NE(s.find("-10%"), std::string::npos);
}

} // namespace
} // namespace core
} // namespace neuro
