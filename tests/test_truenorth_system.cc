// Tests for the multi-core TrueNorth system model and the trainer's
// statistics sink.

#include <gtest/gtest.h>

#include "neuro/common/rng.h"
#include "neuro/common/stats.h"
#include "neuro/hw/truenorth.h"
#include "neuro/snn/trainer.h"

namespace neuro {
namespace {

TEST(TrueNorthSystem, CoreCountArithmetic)
{
    EXPECT_EQ(hw::trueNorthCoresFor(1), 1u);
    EXPECT_EQ(hw::trueNorthCoresFor(256), 1u);
    EXPECT_EQ(hw::trueNorthCoresFor(257), 2u);
    EXPECT_EQ(hw::trueNorthCoresFor(300), 2u);
    EXPECT_EQ(hw::trueNorthCoresFor(1024), 4u);
}

TEST(TrueNorthSystem, SingleCoreMatchesCoreModel)
{
    const hw::Design core = hw::buildTrueNorthCore();
    const hw::Design system = hw::buildTrueNorthSystem(256, 784);
    EXPECT_NEAR(system.totalAreaMm2(), core.totalAreaMm2(),
                core.totalAreaMm2() * 0.02);
    EXPECT_EQ(system.cyclesPerImage(), core.cyclesPerImage());
}

TEST(TrueNorthSystem, AreaAndEnergyScaleWithCores)
{
    const hw::Design one = hw::buildTrueNorthSystem(256, 784);
    const hw::Design two = hw::buildTrueNorthSystem(300, 784);
    const hw::Design four = hw::buildTrueNorthSystem(1000, 784);
    EXPECT_NEAR(two.totalAreaMm2() / one.totalAreaMm2(), 2.0, 0.1);
    EXPECT_NEAR(four.totalAreaMm2() / one.totalAreaMm2(), 4.0, 0.2);
    // Latency does not scale: cores tick in parallel.
    EXPECT_EQ(two.timePerImageNs(), one.timePerImageNs());
    EXPECT_GT(two.totalEnergyPerImageUj(),
              one.totalEnergyPerImageUj() * 1.5);
}

TEST(TrainerStats, RecordsSpikesWhenAttached)
{
    snn::SnnConfig config;
    config.numInputs = 64;
    config.numNeurons = 5;
    config.coding.periodMs = 100;
    config.coding.minIntervalMs = 10;
    config.initialThreshold = 2000.0;
    config.homeostasis.enabled = false;

    datasets::Dataset data("toy", 8, 8, 2);
    Rng gen(1);
    for (int i = 0; i < 12; ++i) {
        datasets::Sample s;
        s.label = i % 2;
        s.pixels.assign(64, 0);
        for (int k = 0; k < 24; ++k)
            s.pixels[gen.uniformInt(64)] = 220;
        data.add(std::move(s));
    }

    Rng rng(2);
    snn::SnnNetwork net(config, rng);
    snn::SnnStdpTrainer trainer(config);
    StatRegistry stats;
    trainer.setStats(&stats);
    snn::SnnTrainConfig train;
    train.epochs = 2;
    trainer.train(net, data, train);

    EXPECT_EQ(stats.counter("snn.images_presented"), 24u);
    EXPECT_GT(stats.counter("snn.input_spikes"), 0u);
    EXPECT_EQ(stats.distribution("snn.output_spikes_per_image").count(),
              24u);
}

TEST(TrainerStats, SilentWithoutSink)
{
    snn::SnnConfig config;
    config.numInputs = 16;
    config.numNeurons = 3;
    config.coding.periodMs = 50;
    config.homeostasis.enabled = false;
    datasets::Dataset data("toy", 4, 4, 2);
    datasets::Sample s;
    s.label = 0;
    s.pixels.assign(16, 200);
    data.add(s);

    Rng rng(3);
    snn::SnnNetwork net(config, rng);
    snn::SnnStdpTrainer trainer(config);
    snn::SnnTrainConfig train;
    train.epochs = 1;
    trainer.train(net, data, train); // must not crash without a sink.
    SUCCEED();
}

} // namespace
} // namespace neuro
