/**
 * @file
 * Section 4.2.1: 8-bit fixed point vs floating point for the MLP — the
 * paper found 8-bit operators and weights within 1% of float accuracy
 * (96.65% vs 97.65%), which is what makes the compact hardware
 * datapath viable. Also reports the piecewise-linear sigmoid's
 * approximation error and an ablation over narrower weights.
 */

#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/parallel.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/core/reports.h"
#include "neuro/mlp/quantized.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    initParallel(cfg);
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 4000));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 1000));

    core::Workload w = core::makeMnistWorkload(train, test, 1);
    mlp::TrainConfig train_cfg = core::defaultMlpTrainConfig();
    Rng rng(42);
    mlp::Mlp net(core::defaultMlpConfig(w), rng);
    mlp::train(net, w.data.train, train_cfg);

    const double float_acc = mlp::evaluate(net, w.data.test);
    const mlp::QuantizedMlp quant(net);
    const double fixed_acc = quant.evaluate(w.data.test);

    TextTable table("Section 4.2.1 (8-bit fixed point vs float MLP)");
    table.setHeader({"Datapath", "Accuracy (%)", "Paper (%)"});
    table.addRow({"floating point", TextTable::pct(float_acc),
                  TextTable::fmt(core::paper::kMlpFloatAccuracyPct)});
    table.addRow({"8-bit fixed + 16-pt PLI sigmoid",
                  TextTable::pct(fixed_acc),
                  TextTable::fmt(core::paper::kMlpFixed8AccuracyPct)});
    table.addNote("per-layer fractional bits: layer0 = " +
                  TextTable::num(quant.fracBits(0)) + ", layer1 = " +
                  TextTable::num(quant.fracBits(1)));
    table.print(std::cout);

    // Precision ablation: the learning algorithm compensates until the
    // weight width gets very narrow (Section 4.2.2: "one of the assets
    // of the learning algorithm ... to compensate for such low
    // precision").
    TextTable sweep("weight-precision ablation");
    sweep.setHeader({"Weight bits", "Accuracy (%)"});
    CsvWriter csv("bench_quantization.csv", {"bits", "accuracy_pct"});
    // One pool task per precision: each quantizes and evaluates its
    // own copy of the trained network, and the rows are emitted in
    // ablation order afterwards.
    const std::vector<int> all_bits = {8, 6, 5, 4, 3, 2};
    const auto accs = parallelMap<double>(
        all_bits.size(), [&](std::size_t i) {
            const mlp::QuantizedMlp q(net, all_bits[i]);
            return q.evaluate(w.data.test);
        });
    for (std::size_t i = 0; i < all_bits.size(); ++i) {
        sweep.addRow({TextTable::num(all_bits[i]),
                      TextTable::pct(accs[i])});
        csv.writeRow({static_cast<double>(all_bits[i]),
                      accs[i] * 100.0});
    }
    sweep.print(std::cout);

    const mlp::PiecewiseSigmoid pli(1.0f);
    std::cout << "16-point piecewise-linear sigmoid max error: "
              << TextTable::fmt(pli.maxError(), 5) << "\n";
    std::cout << "accuracy cost of 8-bit datapath: "
              << TextTable::fmt((float_acc - fixed_acc) * 100.0)
              << "pp (paper: 1.00pp)"
              << (float_acc - fixed_acc < 0.03
                      ? "  -- within 3pp: reproduced\n"
                      : "  -- larger than expected\n");
    return 0;
}
