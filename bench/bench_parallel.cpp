/**
 * @file
 * Serial-vs-parallel speedup of the thread-pool-backed layers: MLP
 * training (minibatch accumulation) and evaluation, SNN
 * labeling/evaluation, and a multi-config sweep. Each workload runs at
 * 1, 2, 4 and 8 threads (capped at the machine's hardware width times
 * two so oversubscription is visible but bounded) and reports wall
 * time, throughput and speedup vs the 1-thread run as CSV.
 *
 * Determinism cross-check: every parallel run's result is compared
 * against the serial result and the bench aborts on any mismatch, so
 * the numbers can't silently come from divergent work.
 *
 * Knobs: train=N test=N threads=a,b,c (also NEURO_SCALE /
 * NEURO_THREADS).
 */

#include <chrono>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/core/explorer.h"
#include "neuro/mlp/backprop.h"
#include "neuro/mlp/mlp.h"
#include "neuro/snn/trainer.h"

namespace {

using namespace neuro;

double
secondsOf(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

struct Workload
{
    std::string layer;       ///< CSV row label.
    std::size_t items;       ///< samples (or configs) per run.
    /** Runs the workload once and returns a checksum for the
     *  determinism cross-check. */
    std::function<double()> run;
};

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 1200));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 600));

    std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
    const std::size_t hw = std::max(
        1u, std::thread::hardware_concurrency());
    while (thread_counts.size() > 1 && thread_counts.back() > 2 * hw)
        thread_counts.pop_back();

    const core::Workload w = core::makeMnistWorkload(train, test, 1);
    inform("parallel bench: %zu train / %zu test images, %zu hardware "
           "threads",
           w.data.train.size(), w.data.test.size(), hw);

    // --- workloads -------------------------------------------------
    mlp::MlpConfig mlp_config = core::defaultMlpConfig(w);
    Rng mlp_rng(3);
    mlp::Mlp trained_mlp(mlp_config, mlp_rng);
    {
        mlp::TrainConfig tc;
        tc.epochs = 1;
        mlp::train(trained_mlp, w.data.train, tc);
    }

    snn::SnnConfig snn_config =
        core::defaultSnnConfig(w, w.data.train.size());
    Rng snn_rng(5);
    snn::SnnNetwork snn_net(snn_config, snn_rng);
    snn::SnnStdpTrainer snn_trainer(snn_config);
    {
        snn::SnnTrainConfig tc;
        tc.epochs = 1;
        snn_trainer.train(snn_net, w.data.train, tc);
    }

    std::vector<Workload> workloads;
    workloads.push_back(
        {"mlp_eval", w.data.test.size(), [&] {
             return mlp::evaluate(trained_mlp, w.data.test);
         }});
    workloads.push_back(
        {"mlp_train_batch32", w.data.train.size(), [&] {
             mlp::TrainConfig tc;
             tc.epochs = 1;
             tc.batchSize = 32;
             Rng rng(3);
             mlp::Mlp net(mlp_config, rng);
             mlp::train(net, w.data.train, tc);
             return static_cast<double>(net.weights(0)(0, 0));
         }});
    workloads.push_back(
        {"snn_label_eval", w.data.train.size() + w.data.test.size(),
         [&] {
             const auto labels = snn_trainer.labelNeurons(
                 snn_net, w.data.train, snn::EvalMode::Wt, 31);
             return snn_trainer
                 .evaluate(snn_net, labels, w.data.test,
                           snn::EvalMode::Wt, 32)
                 .accuracy;
         }});
    workloads.push_back(
        {"mlp_hidden_sweep", 4, [&] {
             const auto points =
                 core::sweepMlpHidden(w, {5, 10, 15, 20}, 21);
             double sum = 0.0;
             for (const auto &p : points)
                 sum += p.accuracy;
             return sum;
         }});

    // --- measurement ----------------------------------------------
    TextTable table("thread-pool speedup (serial baseline per layer)");
    table.setHeader({"Layer", "Threads", "Wall (s)", "Items/s",
                     "Speedup"});
    CsvWriter csv("bench_parallel.csv",
                  {"layer", "threads", "wall_s", "items_per_s",
                   "speedup"});

    for (const Workload &wl : workloads) {
        double serial_s = 0.0;
        double serial_result = 0.0;
        for (std::size_t threads : thread_counts) {
            setParallelThreadCount(threads);
            double result = 0.0;
            // Warm-up run (page-cache, pool spin-up), then timed run.
            wl.run();
            const double s = secondsOf([&] { result = wl.run(); });
            if (threads == 1) {
                serial_s = s;
                serial_result = result;
            } else if (result != serial_result) {
                fatal("%s: parallel result %f != serial %f at %zu "
                      "threads",
                      wl.layer.c_str(), result, serial_result, threads);
            }
            const double speedup = serial_s / s;
            table.addRow(
                {wl.layer, TextTable::num(static_cast<long long>(threads)),
                 TextTable::fmt(s, 3),
                 TextTable::fmt(static_cast<double>(wl.items) / s, 1),
                 TextTable::fmt(speedup, 2)});
            csv.writeRow(std::vector<std::string>{
                wl.layer, std::to_string(threads),
                TextTable::fmt(s, 4),
                TextTable::fmt(static_cast<double>(wl.items) / s, 1),
                TextTable::fmt(speedup, 2)});
        }
    }
    setParallelThreadCount(1);
    table.addNote("speedups depend on the machine; on a 1-core "
                  "container every row degenerates to ~1.0 while the "
                  "determinism cross-check still runs");
    table.print(std::cout);
    std::cout << "RESULT: all parallel runs matched the serial "
                 "baseline bit-for-bit\n";
    return 0;
}
