/**
 * @file
 * Input-noise robustness: accuracy of the trained MLP (8-bit datapath)
 * and SNN+STDP (SNNwot datapath) as luminance noise is added to the
 * test inputs. Spike rate coding carries intrinsic sampling noise, so
 * the comparison shows how much *additional* input noise each datapath
 * absorbs — robustness being a recurring argument for hardware neural
 * networks.
 *
 * Knobs: train=N test=N (and NEURO_SCALE).
 */

#include <algorithm>
#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/mlp/quantized.h"
#include "neuro/snn/snn_wot.h"

namespace {

/** Add Gaussian luminance noise to a copy of @p data. */
neuro::datasets::Dataset
noisyCopy(const neuro::datasets::Dataset &data, double stddev,
          uint64_t seed)
{
    using namespace neuro;
    Rng rng(seed);
    datasets::Dataset out(data.name() + "-noisy", data.width(),
                          data.height(), data.numClasses());
    for (std::size_t i = 0; i < data.size(); ++i) {
        datasets::Sample s = data[i];
        for (auto &p : s.pixels) {
            const double v =
                static_cast<double>(p) + rng.gaussian(0.0, stddev);
            p = static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
        }
        out.add(std::move(s));
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 2500));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 600));

    core::Workload w = core::makeMnistWorkload(train, test, 1);

    // Train both models once on clean data.
    mlp::TrainConfig mlp_train = core::defaultMlpTrainConfig();
    Rng rng(42);
    mlp::Mlp mlp_net(core::defaultMlpConfig(w), rng);
    mlp::train(mlp_net, w.data.train, mlp_train);
    const mlp::QuantizedMlp quant(mlp_net);

    snn::SnnConfig snn_config =
        core::defaultSnnConfig(w, w.data.train.size());
    Rng snn_rng(7);
    snn::SnnNetwork snn_net(snn_config, snn_rng);
    snn::SnnStdpTrainer trainer(snn_config);
    snn::SnnTrainConfig snn_train;
    snn_train.epochs = scaled(3, 1);
    trainer.train(snn_net, w.data.train, snn_train);
    const auto labels = trainer.labelNeurons(
        snn_net, w.data.train, snn::EvalMode::Wot, 8);
    const snn::SnnWotDatapath datapath(snn_net);
    const snn::SpikeEncoder &encoder = trainer.encoder();

    auto snn_accuracy = [&](const datasets::Dataset &data) {
        std::size_t correct = 0;
        std::vector<uint8_t> counts(data.inputSize());
        for (std::size_t i = 0; i < data.size(); ++i) {
            for (std::size_t p = 0; p < counts.size(); ++p)
                counts[p] = encoder.spikeCount(data[i].pixels[p]);
            const int winner = datapath.forward(counts.data());
            if (labels[static_cast<std::size_t>(winner)] ==
                data[i].label) {
                ++correct;
            }
        }
        return static_cast<double>(correct) /
            static_cast<double>(data.size());
    };

    TextTable table("input-noise robustness (test-time luminance "
                    "noise)");
    table.setHeader({"Noise sigma", "MLP (8-bit) accuracy",
                     "SNNwot accuracy"});
    CsvWriter csv("bench_noise.csv",
                  {"sigma", "mlp_acc_pct", "snn_acc_pct"});
    for (double sigma : {0.0, 10.0, 25.0, 50.0, 80.0, 120.0}) {
        const datasets::Dataset noisy =
            noisyCopy(w.data.test, sigma, 1000 +
                                              static_cast<uint64_t>(sigma));
        const double mlp_acc = quant.evaluate(noisy);
        const double snn_acc = snn_accuracy(noisy);
        table.addRow({TextTable::fmt(sigma, 0),
                      TextTable::pct(mlp_acc),
                      TextTable::pct(snn_acc)});
        csv.writeRow({sigma, mlp_acc * 100.0, snn_acc * 100.0});
    }
    table.addNote("both degrade gracefully at moderate noise; the "
                  "MLP's supervised features tolerate more added noise "
                  "than the STDP receptive fields, mirroring the "
                  "overall accuracy gap");
    table.print(std::cout);
    return 0;
}
