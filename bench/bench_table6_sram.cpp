/**
 * @file
 * Table 6: SRAM characteristics for synaptic storage — bank geometry
 * (width 128 bits, derived depth and bank counts) and per-cycle read
 * energy for the SNN (784x300) and MLP (784x100 + 100x10) at each fold
 * factor.
 */

#include <iostream>

#include "neuro/common/table.h"
#include "neuro/core/reports.h"
#include "neuro/hw/sram.h"

int
main()
{
    using namespace neuro;
    namespace paper = core::paper;

    TextTable table("Table 6 (SRAM characteristics for synaptic "
                    "storage)");
    table.setHeader({"ni", "Depth", "Read E (pJ)", "Bank area (um2)",
                     "SNN banks", "MLP banks", "SNN E (nJ/cyc)",
                     "MLP E (nJ/cyc)", "SNN area (mm2)",
                     "MLP area (mm2)"});
    for (const auto &row : paper::kTable6) {
        const hw::SramArray snn =
            hw::makeSynapticStorage("snn", 300, 784, row.ni, 8, 0);
        const hw::SramArray mlp_h =
            hw::makeSynapticStorage("mlp-h", 100, 784, row.ni, 8, 0);
        const hw::SramArray mlp_o =
            hw::makeSynapticStorage("mlp-o", 10, 100, row.ni, 8, 0);
        table.addRow(
            {TextTable::num(static_cast<long long>(row.ni)),
             core::vsPaper(static_cast<double>(snn.bank.depth),
                           static_cast<double>(row.depth), 0),
             core::vsPaper(snn.bank.readEnergyPj, row.readEnergyPj),
             core::vsPaper(snn.bank.areaUm2, row.bankAreaUm2, 0),
             core::vsPaper(static_cast<double>(snn.numBanks),
                           static_cast<double>(row.snnBanks), 0),
             core::vsPaper(
                 static_cast<double>(mlp_h.numBanks + mlp_o.numBanks),
                 static_cast<double>(row.mlpBanks), 0),
             core::vsPaper(snn.energyPerCyclePj() / 1e3,
                           row.snnEnergyNj),
             core::vsPaper((mlp_h.energyPerCyclePj() +
                            mlp_o.energyPerCyclePj()) /
                               1e3,
                           row.mlpEnergyNj),
             core::vsPaper(snn.totalAreaUm2() / 1e6, row.snnAreaMm2),
             core::vsPaper(
                 (mlp_h.totalAreaUm2() + mlp_o.totalAreaUm2()) / 1e6,
                 row.mlpAreaMm2)});
    }
    table.addNote("SNN needs ~3x the MLP's synaptic storage (235,200 vs "
                  "79,400 weights) -- the root cause of the folded "
                  "cost reversal");
    table.print(std::cout);
    return 0;
}
