/**
 * @file
 * Operator-level microbenchmarks (google-benchmark): the kernels the
 * simulators spend their time in, plus the event-driven-vs-discrete
 * LIF ablation the paper's closed-form leak optimization rests on.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "neuro/common/matrix.h"
#include "neuro/common/rng.h"
#include "neuro/cycle/event_queue.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/mlp/activation.h"
#include "neuro/mlp/mlp.h"
#include "neuro/snn/coding.h"
#include "neuro/snn/lif.h"
#include "neuro/snn/snn_wot.h"

namespace {

using namespace neuro;

void
BM_LifClosedFormLeak(benchmark::State &state)
{
    double v = 10000.0;
    for (auto _ : state) {
        v = snn::lifDecay(v + 1000.0, 50.0, 500.0);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_LifClosedFormLeak);

void
BM_LifDiscreteLeak(benchmark::State &state)
{
    // The per-timestep integration the paper's closed form replaces:
    // 50 Euler steps for the same 50 ms interval.
    double v = 10000.0;
    for (auto _ : state) {
        v = snn::lifDecayDiscrete(v + 1000.0, 50.0, 500.0,
                                  static_cast<int>(state.range(0)));
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_LifDiscreteLeak)->Arg(50);

void
BM_SpikeEncoding(benchmark::State &state)
{
    const auto scheme = static_cast<snn::CodingScheme>(state.range(0));
    snn::CodingConfig config;
    config.scheme = scheme;
    const snn::SpikeEncoder encoder(config);
    datasets::SynthDigitsOptions opt;
    opt.trainSize = 1;
    opt.testSize = 1;
    const auto split = datasets::makeSynthDigits(opt);
    Rng rng(1);
    for (auto _ : state) {
        const auto grid = encoder.encode(
            split.train[0].pixels.data(), split.train[0].pixels.size(),
            rng);
        benchmark::DoNotOptimize(grid.ticks.data());
    }
}
BENCHMARK(BM_SpikeEncoding)
    ->Arg(static_cast<int>(snn::CodingScheme::RatePoisson))
    ->Arg(static_cast<int>(snn::CodingScheme::RateGaussian))
    ->Arg(static_cast<int>(snn::CodingScheme::RankOrder));

void
BM_MlpForward(benchmark::State &state)
{
    mlp::MlpConfig config;
    config.layerSizes = {784, static_cast<std::size_t>(state.range(0)),
                         10};
    Rng rng(1);
    const mlp::Mlp net(config, rng);
    std::vector<float> input(784, 0.5f);
    std::vector<float> output(10);
    for (auto _ : state) {
        net.forward(input.data(), output.data());
        benchmark::DoNotOptimize(output.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(net.weightCount()));
}
BENCHMARK(BM_MlpForward)->Arg(15)->Arg(100);

void
BM_Gemv(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Matrix m(n, 784);
    Rng rng(1);
    m.fillUniform(rng, -1.0f, 1.0f);
    std::vector<float> x(784, 0.5f), y(n);
    for (auto _ : state) {
        m.gemv(x.data(), y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n * 784));
}
BENCHMARK(BM_Gemv)->Arg(100)->Arg(300);

void
BM_GemvT(benchmark::State &state)
{
    // The transposed product backprop's hidden-delta step is built on:
    // rows = next-layer neurons, cols = hidden fan-in. Row-blocked
    // streaming over the row-major storage instead of a column-strided
    // walk is the cache fix being measured here.
    const auto rows = static_cast<std::size_t>(state.range(0));
    const auto cols = static_cast<std::size_t>(state.range(1));
    Matrix m(rows, cols);
    Rng rng(1);
    m.fillUniform(rng, -1.0f, 1.0f);
    std::vector<float> d(rows, 0.25f), out(cols);
    for (auto _ : state) {
        m.gemvT(d.data(), out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(rows * cols));
}
BENCHMARK(BM_GemvT)->Args({10, 101})->Args({10, 301})->Args({100, 785});

void
BM_HiddenDelta(benchmark::State &state)
{
    // One full hidden-delta computation (gemvT + derivative scaling)
    // for a 784-H-10 network, the loop bench_micro_ops tracked before
    // and after the blocked-gemvT rewrite.
    const auto hidden = static_cast<std::size_t>(state.range(0));
    Matrix w_next(10, hidden + 1);
    Rng rng(1);
    w_next.fillUniform(rng, -1.0f, 1.0f);
    const mlp::Activation act(mlp::ActivationKind::Sigmoid);
    std::vector<float> deltas_next(10, 0.1f), y(hidden, 0.5f);
    std::vector<float> sink(hidden + 1), deltas(hidden);
    for (auto _ : state) {
        w_next.gemvT(deltas_next.data(), sink.data());
        for (std::size_t j = 0; j < hidden; ++j)
            deltas[j] = act.derivativeFromOutput(y[j]) * sink[j];
        benchmark::DoNotOptimize(deltas.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(10 * (hidden + 1)));
}
BENCHMARK(BM_HiddenDelta)->Arg(15)->Arg(100)->Arg(300);

void
BM_ShiftMultiply(benchmark::State &state)
{
    uint32_t acc = 0;
    uint8_t c = 0, w = 0;
    for (auto _ : state) {
        acc += snn::SnnWotDatapath::shiftMultiply(c & 0xF, w);
        ++c;
        w += 7;
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_ShiftMultiply);

void
BM_PiecewiseSigmoid(benchmark::State &state)
{
    const mlp::PiecewiseSigmoid pli(1.0f);
    float x = -8.0f;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pli.apply(x));
        x += 0.001f;
        if (x > 8.0f)
            x = -8.0f;
    }
}
BENCHMARK(BM_PiecewiseSigmoid);

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        cycle::EventQueue queue;
        int sink = 0;
        for (int i = 0; i < 256; ++i) {
            queue.schedule((i * 37) % 101,
                           [&sink](int64_t) { ++sink; });
        }
        queue.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EventQueue);

} // namespace
