/**
 * @file
 * Table 1: MLP and SNN characteristics — the hyper-parameter settings
 * this reproduction uses, printed next to the paper's ranges and
 * choices (derived values, e.g. the data-driven firing threshold, are
 * annotated).
 */

#include <iostream>

#include "neuro/common/table.h"
#include "neuro/core/experiment.h"

int
main()
{
    using namespace neuro;
    const core::Workload w = core::makeMnistWorkload(2000, 400, 1);
    const mlp::TrainConfig mlp_train = core::defaultMlpTrainConfig();
    const snn::SnnConfig snn =
        core::defaultSnnConfig(w, w.data.train.size());

    TextTable mlp_table("Table 1 (MLP characteristics)");
    mlp_table.setHeader({"Parameter", "Paper range", "Paper choice",
                         "This repro"});
    mlp_table.addRow({"# Nhidden", "10-1000", "100",
                      TextTable::num(static_cast<long long>(
                          w.mlpTopo.hidden))});
    mlp_table.addRow({"# Noutput", "10", "10",
                      TextTable::num(static_cast<long long>(
                          w.mlpTopo.outputs))});
    mlp_table.addRow({"eta", "0.1-1", "0.3",
                      TextTable::fmt(mlp_train.learningRate, 1)});
    mlp_table.addRow({"# epochs", "10-200", "50",
                      TextTable::num(static_cast<long long>(
                          mlp_train.epochs))});
    mlp_table.addNote("epochs scale with NEURO_SCALE; the synthetic "
                      "workload needs fewer than 60k-image MNIST");
    mlp_table.print(std::cout);

    TextTable snn_table("Table 1 (SNN characteristics)");
    snn_table.setHeader({"Parameter", "Paper range", "Paper choice",
                         "This repro"});
    snn_table.addRow({"# N", "10-800", "300",
                      TextTable::num(static_cast<long long>(
                          snn.numNeurons))});
    snn_table.addRow({"Tperiod", "100-800", "500ms",
                      TextTable::num(snn.coding.periodMs) + "ms"});
    snn_table.addRow({"Tleak", "10-800", "500ms",
                      TextTable::fmt(snn.tLeakMs, 0) + "ms"});
    snn_table.addRow({"Tinhibit", "1-20", "5ms",
                      TextTable::num(snn.tInhibitMs) + "ms"});
    snn_table.addRow({"Trefrac", "5-50", "20ms",
                      TextTable::num(snn.tRefracMs) + "ms"});
    snn_table.addRow({"TLTP", "1-50", "45ms",
                      TextTable::num(snn.stdp.ltpWindowMs) + "ms"});
    snn_table.addRow({"Tinit", "wmax*70", "17850",
                      TextTable::fmt(snn.initialThreshold, 0) +
                          " (data-driven)"});
    snn_table.addRow({"HomeoT", "10*Tperiod*#N", "1,500,000ms",
                      TextTable::num(static_cast<long long>(
                          snn.homeostasis.epochMs)) +
                          "ms (scaled)"});
    snn_table.addRow({"Homeoth", "3*HomeoT/(Tperiod*#N)", "30",
                      TextTable::fmt(snn.homeostasis.activityTarget, 1)});
    snn_table.addNote("Tinit derives from the same rule as the paper's "
                      "wmax*70 (about half an average image's drive), "
                      "recomputed for the synthetic data");
    snn_table.print(std::cout);
    return 0;
}
