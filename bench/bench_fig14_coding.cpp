/**
 * @file
 * Figure 14: SNN models with different coding schemes — rate coding
 * (Gaussian, plus the Poisson reference) vs the two temporal codes
 * (rank order, time-to-first-spike) across network sizes. The paper's
 * finding: temporal coding is markedly less accurate with STDP
 * (82.14% vs 91.82% at 300 neurons on MNIST).
 *
 * Knobs: train=N test=N neurons=CSV-free list via repeats of the bench.
 */

#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/table.h"
#include "neuro/core/explorer.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 2000));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 600));

    core::Workload w = core::makeMnistWorkload(train, test, 1);
    const std::vector<snn::CodingScheme> schemes = {
        snn::CodingScheme::RateGaussian,
        snn::CodingScheme::RatePoisson,
        snn::CodingScheme::TimeToFirstSpike,
        snn::CodingScheme::RankOrder,
    };
    const std::vector<std::size_t> sizes = {10, 50, 100, 300};
    const auto points = core::sweepCodingSchemes(w, schemes, sizes, 24);

    TextTable table("Figure 14 (SNN coding schemes vs network size)");
    table.setHeader({"Coding scheme", "# neurons", "Accuracy (%)"});
    CsvWriter csv("bench_fig14_coding.csv",
                  {"scheme", "neurons", "accuracy_pct"});
    snn::CodingScheme last = points.front().scheme;
    double rate_at_max = 0.0, temporal_at_max = 0.0;
    for (const auto &p : points) {
        if (p.scheme != last)
            table.addSeparator();
        last = p.scheme;
        table.addRow({snn::codingSchemeName(p.scheme),
                      TextTable::num(static_cast<long long>(p.neurons)),
                      TextTable::pct(p.accuracy)});
        csv.writeRow({snn::codingSchemeName(p.scheme),
                      TextTable::num(static_cast<long long>(p.neurons)),
                      TextTable::fmt(p.accuracy * 100.0)});
        if (p.neurons == sizes.back()) {
            if (p.scheme == snn::CodingScheme::RateGaussian)
                rate_at_max = p.accuracy;
            if (p.scheme == snn::CodingScheme::RankOrder)
                temporal_at_max = p.accuracy;
        }
    }
    table.addNote("paper at 300 neurons (MNIST): rate 91.82% vs "
                  "temporal 82.14%");
    table.print(std::cout);

    std::cout << "rate vs temporal at " << sizes.back() << " neurons: "
              << TextTable::pct(rate_at_max) << " vs "
              << TextTable::pct(temporal_at_max)
              << (rate_at_max > temporal_at_max
                      ? "  (rate coding wins: reproduced)"
                      : "  (NOT reproduced)")
              << "\n";
    return 0;
}
