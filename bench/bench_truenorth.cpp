/**
 * @file
 * Section 5: TrueNorth comparison — our best-effort TrueNorth-core
 * reimplementation (1024 axons x 256 neurons, binary crossbar, 4 axon
 * types, 1 MHz) against the folded SNNwot at ni=1, on area, speed,
 * energy and accuracy. Accuracy comes from quantizing a trained
 * 256-neuron SNN into the TrueNorth weight format.
 */

#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/core/reports.h"
#include "neuro/hw/folded.h"
#include "neuro/hw/truenorth.h"
#include "neuro/snn/labeling.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    namespace paper = core::paper;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 3000));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 800));

    // --- Functional side: train a 256-neuron SNN, quantize to the
    // TrueNorth format, evaluate both count-based forward paths. ---
    core::Workload w = core::makeMnistWorkload(train, test, 1);
    snn::SnnConfig config =
        core::defaultSnnConfig(w, w.data.train.size());
    config.numNeurons = 256; // one TrueNorth core.
    Rng rng(7);
    snn::SnnNetwork net(config, rng);
    snn::SnnStdpTrainer trainer(config);
    snn::SnnTrainConfig snn_train;
    snn_train.epochs = scaled(3, 1);
    trainer.train(net, w.data.train, snn_train);

    const auto labels =
        trainer.labelNeurons(net, w.data.train, snn::EvalMode::Wot, 8);
    const double snnwot_acc = trainer
        .evaluate(net, labels, w.data.test, snn::EvalMode::Wot, 9)
        .accuracy;

    // Quantize the same weights into binary-crossbar + 4 type weights.
    const hw::TrueNorthFunctional tn(net.weights());
    const snn::SpikeEncoder &encoder = trainer.encoder();
    // Re-label under the TrueNorth forward path, then evaluate.
    snn::SelfLabeling tn_labeling(config.numNeurons,
                                  w.data.train.numClasses());
    auto tn_winner = [&](const datasets::Sample &sample) {
        std::vector<uint8_t> counts(sample.pixels.size());
        for (std::size_t p = 0; p < counts.size(); ++p)
            counts[p] = encoder.spikeCount(sample.pixels[p]);
        return tn.forward(counts.data());
    };
    for (std::size_t i = 0; i < w.data.train.size(); ++i) {
        tn_labeling.record(
            static_cast<std::size_t>(tn_winner(w.data.train[i])),
            w.data.train[i].label);
    }
    const auto tn_labels =
        tn_labeling.finalize(w.data.train.classHistogram());
    std::size_t correct = 0;
    for (std::size_t i = 0; i < w.data.test.size(); ++i) {
        const int winner = tn_winner(w.data.test[i]);
        if (tn_labels[static_cast<std::size_t>(winner)] ==
            w.data.test[i].label) {
            ++correct;
        }
    }
    const double tn_acc = static_cast<double>(correct) /
        static_cast<double>(w.data.test.size());

    // --- Hardware side. ---
    const hw::Design core_design = hw::buildTrueNorthCore();
    const hw::Design wot = hw::buildFoldedSnnWot({784, 300}, 1);

    TextTable table("Section 5 (TrueNorth core vs folded SNNwot ni=1)");
    table.setHeader({"Metric", "TrueNorth (reimpl.)", "SNNwot ni=1",
                     "Paper (TN vs SNNwot)"});
    table.addRow({"area (mm2)",
                  TextTable::fmt(core_design.totalAreaMm2()),
                  TextTable::fmt(wot.totalAreaMm2()),
                  "3.30 vs 3.17"});
    table.addRow({"time / image (us)",
                  TextTable::fmt(core_design.timePerImageNs() / 1000.0),
                  TextTable::fmt(wot.timePerImageNs() / 1000.0),
                  "1024 vs 0.98"});
    table.addRow({"energy / image (uJ)",
                  TextTable::fmt(core_design.totalEnergyPerImageUj()),
                  TextTable::fmt(wot.totalEnergyPerImageUj()),
                  "2.48 vs 1.03"});
    table.addRow({"accuracy (%)", TextTable::pct(tn_acc),
                  TextTable::pct(snnwot_acc), "89.0 vs 90.85"});
    table.addNote("TrueNorth format costs accuracy (binary crossbar + "
                  "4 axon-type weights; quantization error " +
                  TextTable::fmt(tn.quantizationError(), 1) +
                  " weight units) and runs 1000x slower at 1 MHz");
    table.print(std::cout);

    std::cout << (snnwot_acc >= tn_acc - 0.01 &&
                          wot.timePerImageNs() <
                              core_design.timePerImageNs()
                      ? "RESULT: SNNwot beats the TrueNorth-format core "
                        "on speed and accuracy (reproduced)\n"
                      : "RESULT: unexpected ordering\n");
    return 0;
}
