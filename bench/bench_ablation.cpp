/**
 * @file
 * Design-choice ablations for the SNN+STDP model — each row isolates
 * one mechanism DESIGN.md calls out:
 *   - homeostasis on/off (paper: worth ~5% accuracy);
 *   - WTA potential reset on/off (the lateral-inhibition strength);
 *   - soft vs hard STDP weight bounds;
 *   - Poisson vs Gaussian spike generation (the hardware uses the
 *     cheaper Gaussian CLT generator, Section 4.2.2);
 *   - event-driven closed-form leak vs discrete integration (identical
 *     dynamics; the bench measures the simulation-speed gain).
 *
 * Knobs: train=N test=N (and NEURO_SCALE).
 */

#include <chrono>
#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/snn/lif.h"

namespace {

double
runVariant(const neuro::core::Workload &w, neuro::snn::SnnConfig config)
{
    neuro::snn::SnnTrainConfig train;
    train.epochs = neuro::scaled(3, 1);
    return neuro::snn::trainAndEvaluateStdp(
        config, train, w.data.train, w.data.test,
        neuro::snn::EvalMode::Wt, 7);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 2500));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 600));

    core::Workload w = core::makeMnistWorkload(train, test, 1);
    const snn::SnnConfig base =
        core::defaultSnnConfig(w, w.data.train.size());

    TextTable table("SNN+STDP design-choice ablations");
    table.setHeader({"Variant", "Accuracy (%)", "Delta vs baseline"});
    const double baseline = runVariant(w, base);
    table.addRow({"baseline (paper defaults)", TextTable::pct(baseline),
                  "-"});

    auto ablate = [&](const char *name, snn::SnnConfig config) {
        const double acc = runVariant(w, std::move(config));
        table.addRow({name, TextTable::pct(acc),
                      TextTable::fmt((acc - baseline) * 100.0) + "pp"});
    };

    {
        snn::SnnConfig config = base;
        config.homeostasis.enabled = false;
        ablate("no homeostasis (paper: ~-5%)", config);
    }
    {
        snn::SnnConfig config = base;
        config.wtaReset = false;
        ablate("no WTA potential reset", config);
    }
    {
        snn::SnnConfig config = base;
        config.stdp.softBounds = false;
        ablate("hard STDP bounds", config);
    }
    {
        snn::SnnConfig config = base;
        config.coding.scheme = snn::CodingScheme::RateGaussian;
        ablate("Gaussian spike generation (hw RNG)", config);
    }
    table.addNote("Gaussian-vs-Poisson is the paper's Section 4.2.2 "
                  "claim: accuracy does not change noticeably, and the "
                  "CLT generator is far cheaper in silicon");
    table.print(std::cout);

    // Event-driven vs discrete leak: identical results, different cost.
    const int steps = 1000000;
    double v1 = 5000.0, v2 = 5000.0;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < steps; ++i)
        v1 = snn::lifDecay(v1 + 100.0, 50.0, 500.0);
    auto t1 = std::chrono::steady_clock::now();
    for (int i = 0; i < steps; ++i)
        v2 = snn::lifDecayDiscrete(v2 + 100.0, 50.0, 500.0, 50);
    auto t2 = std::chrono::steady_clock::now();
    const double closed =
        std::chrono::duration<double>(t1 - t0).count();
    const double discrete =
        std::chrono::duration<double>(t2 - t1).count();
    std::cout << "\nevent-driven closed-form leak vs 1 ms-step "
                 "integration over 50 ms intervals: "
              << TextTable::fmt(discrete / closed, 1)
              << "x speedup (final potentials differ by "
              << TextTable::fmt(std::abs(v1 - v2) /
                                    std::max(1.0, std::abs(v1)) * 100.0,
                                2)
              << "%), which is why the paper derives the analytical "
                 "solution for hardware.\n";
    return 0;
}
