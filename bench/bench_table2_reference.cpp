/**
 * @file
 * Table 2: best accuracies reported on MNIST (no distortion) — the
 * literature context the paper positions itself against. These are
 * published reference values, reproduced verbatim; our own measured
 * counterparts come from bench_table3_accuracy.
 */

#include <iostream>

#include "neuro/common/table.h"
#include "neuro/core/reports.h"

int
main()
{
    using namespace neuro;
    TextTable table("Table 2 (best accuracy reported on MNIST, "
                    "no distortion)");
    table.setHeader({"Type", "Accuracy (%)"});
    for (const auto &row : core::paper::kTable2)
        table.addRow({row.type, TextTable::fmt(row.accuracyPct)});
    table.addNote("literature values quoted by the paper; see "
                  "bench_table3_accuracy for this reproduction's own "
                  "measurements");
    table.print(std::cout);
    return 0;
}
