/**
 * @file
 * Figure 5: activation-function profiles — the parameterized sigmoid
 * f_a(x) = 1/(1+e^{-a x}) for a = 1..16 next to the [0/1] step
 * function, showing how the sigmoid morphs into the step as `a` grows.
 * Emits the plotted series as CSV and prints key samples.
 */

#include <iostream>
#include <vector>

#include "neuro/common/csv.h"
#include "neuro/common/table.h"
#include "neuro/mlp/activation.h"

int
main()
{
    using namespace neuro;
    const std::vector<float> slopes = {1, 2, 4, 8, 16};

    CsvWriter csv("bench_fig5_activations.csv",
                  {"x", "a1", "a2", "a4", "a8", "a16", "step"});
    for (float x = -5.0f; x <= 5.0f; x += 0.1f) {
        std::vector<double> row{x};
        for (float a : slopes) {
            const mlp::Activation f(mlp::ActivationKind::ParamSigmoid, a);
            row.push_back(f.apply(x));
        }
        const mlp::Activation step(mlp::ActivationKind::Step);
        row.push_back(step.apply(x));
        csv.writeRow(row);
    }

    TextTable table("Figure 5 (activation profiles: f_a(x) at sample "
                    "points)");
    table.setHeader({"x", "a=1", "a=2", "a=4", "a=8", "a=16", "step"});
    for (float x : {-2.0f, -0.5f, -0.1f, 0.0f, 0.1f, 0.5f, 2.0f}) {
        std::vector<std::string> row{TextTable::fmt(x, 1)};
        for (float a : slopes) {
            const mlp::Activation f(mlp::ActivationKind::ParamSigmoid, a);
            row.push_back(TextTable::fmt(f.apply(x), 3));
        }
        const mlp::Activation step(mlp::ActivationKind::Step);
        row.push_back(TextTable::fmt(step.apply(x), 0));
        table.addRow(row);
    }
    table.addNote("as a grows the sigmoid converges pointwise to the "
                  "step function (except at x=0)");
    table.print(std::cout);

    // Quantify convergence: max |f_a - step| away from the origin.
    std::cout << "max |f_a(x) - step(x)| over |x| >= 0.25:\n";
    const mlp::Activation step(mlp::ActivationKind::Step);
    for (float a : slopes) {
        const mlp::Activation f(mlp::ActivationKind::ParamSigmoid, a);
        float worst = 0.0f;
        for (float x = -5.0f; x <= 5.0f; x += 0.01f) {
            if (std::abs(x) < 0.25f)
                continue;
            worst = std::max(worst,
                             std::abs(f.apply(x) - step.apply(x)));
        }
        std::cout << "  a=" << a << ": " << TextTable::fmt(worst, 4)
                  << "\n";
    }
    return 0;
}
