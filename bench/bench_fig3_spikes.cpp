/**
 * @file
 * Figure 3: spike coding in the SNN — (left) the input spike raster of
 * one image presentation, (right) the neuron membrane potentials
 * rising until the first fires, with refractory/inhibition gating.
 * Emits both series as CSV and prints summary statistics.
 */

#include <algorithm>
#include <iostream>

#include "neuro/common/csv.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"

int
main()
{
    using namespace neuro;
    core::Workload w = core::makeMnistWorkload(500, 100, 1);
    const snn::SnnConfig config =
        core::defaultSnnConfig(w, w.data.train.size());
    Rng rng(7);
    snn::SnnNetwork net(config, rng);
    const snn::SpikeEncoder encoder(config.coding);

    // Present one training image with a full trace.
    Rng spike_rng(42);
    const auto &sample = w.data.train[0];
    const auto grid = encoder.encode(sample.pixels.data(),
                                     sample.pixels.size(), spike_rng);
    snn::PresentationTrace trace;
    trace.neuronLimit = 12; // potential lines, as in the figure.
    const auto result = net.presentImage(grid, false, &trace);

    CsvWriter raster("bench_fig3_raster.csv", {"time_ms", "pixel"});
    for (const auto &[t, p] : trace.inputSpikes)
        raster.writeRow(std::vector<double>{static_cast<double>(t),
                                            static_cast<double>(p)});
    CsvWriter potentials("bench_fig3_potentials.csv", {"time_ms",
                                                       "neuron",
                                                       "potential"});
    for (std::size_t t = 0; t < trace.potentials.size(); ++t) {
        for (std::size_t n = 0; n < trace.potentials[t].size(); ++n) {
            potentials.writeRow(std::vector<double>{
                static_cast<double>(t), static_cast<double>(n),
                trace.potentials[t][n]});
        }
    }

    TextTable table("Figure 3 (spike coding summary, one presentation)");
    table.setHeader({"Quantity", "Value"});
    table.addRow({"input spikes",
                  TextTable::num(static_cast<long long>(
                      result.inputSpikeCount))});
    table.addRow({"output spikes",
                  TextTable::num(static_cast<long long>(
                      result.outputSpikeCount))});
    table.addRow({"first firing neuron",
                  TextTable::num(result.firstSpikeNeuron)});
    table.addRow({"first firing time",
                  TextTable::num(result.firstSpikeTimeMs) + " ms"});
    table.addRow({"refractory period",
                  TextTable::num(config.tRefracMs) + " ms"});
    table.addRow({"inhibition period",
                  TextTable::num(config.tInhibitMs) + " ms"});
    table.addNote("raster -> bench_fig3_raster.csv, potentials -> "
                  "bench_fig3_potentials.csv");
    table.print(std::cout);

    // Sanity: potentials rise until the first fire.
    if (result.firstSpikeTimeMs > 1) {
        const auto &row0 = trace.potentials[0];
        const auto &rowT = trace.potentials[static_cast<std::size_t>(
            result.firstSpikeTimeMs - 1)];
        const float max0 = *std::max_element(row0.begin(), row0.end());
        const float maxT = *std::max_element(rowT.begin(), rowT.end());
        std::cout << "max traced potential t=0: " << max0
                  << ", just before first fire: " << maxT << "\n";
    }
    return 0;
}
