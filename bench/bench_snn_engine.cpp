/**
 * @file
 * Dense-vs-event SNN engine benchmark: wall time and throughput of the
 * three SNN pipeline phases (STDP training, self-labeling, evaluation)
 * under both execution engines, at 1 and 4 threads, on the MNIST-like
 * workload at paper parameters (Poisson coding, 500 ms window, 300
 * neurons at full scale).
 *
 * Determinism cross-check: the two engines are required to produce
 * bit-identical results, so every run's neuron labels and accuracy are
 * compared against the dense 1-thread reference and the bench aborts
 * on any mismatch — the speedup numbers can't come from divergent
 * dynamics.
 *
 * The grid-cache effect is reported alongside: training runs 2 epochs
 * and prints the epoch-2 hit rate (expected ~100%: encodings are
 * frozen per sample, so epoch 2 re-presents without re-encoding);
 * labeling and evaluation are timed on a warm cache.
 *
 * Knobs: train=N test=N threads=a,b --quick (also NEURO_SCALE /
 * NEURO_THREADS). Writes bench_snn_engine.csv.
 */

#include <chrono>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/snn/trainer.h"

namespace {

using namespace neuro;

double
secondsOf(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** One engine's full pipeline outcome (for the cross-check). */
struct PipelineResult
{
    std::vector<int> labels;
    double accuracy = 0.0;
    std::size_t silent = 0;
};

struct PhaseRow
{
    std::string phase;
    std::string engine;
    std::size_t threads = 0;
    std::size_t items = 0;
    double wall_s = 0.0;
    double cacheHitRate = 0.0; ///< of the timed pass.
};

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const bool quick = cfg.getBool("quick", false);
    const auto train_n = static_cast<std::size_t>(
        cfg.getInt("train", quick ? 96 : 400));
    const auto test_n = static_cast<std::size_t>(
        cfg.getInt("test", quick ? 48 : 200));

    std::vector<std::size_t> thread_counts = {1, 4};
    if (cfg.has("threads")) {
        thread_counts.clear();
        std::stringstream ss(cfg.getString("threads", ""));
        std::string tok;
        while (std::getline(ss, tok, ','))
            thread_counts.push_back(
                static_cast<std::size_t>(std::stoul(tok)));
    }

    // Build the workload directly (makeMnistWorkload floors the sizes
    // at 500/200, which would defeat --quick in the TSan CI job).
    core::Workload w;
    w.name = "mnist";
    w.data = datasets::mnistLike(train_n, test_n, 1);
    w.mlpTopo = {w.data.train.inputSize(), 100, 10};
    w.snnTopo = {w.data.train.inputSize(), 300};
    const snn::SnnConfig base =
        core::defaultSnnConfig(w, w.data.train.size());
    inform("snn engine bench: %zu train / %zu test images, %zu neurons, "
           "%d ms window, %s coding",
           w.data.train.size(), w.data.test.size(), base.numNeurons,
           base.coding.periodMs,
           snn::codingSchemeName(base.coding.scheme).c_str());

    const std::vector<snn::SnnEngine> engines = {snn::SnnEngine::Dense,
                                                 snn::SnnEngine::Event};

    std::vector<PhaseRow> rows;
    PipelineResult reference;
    bool have_reference = false;

    for (const std::size_t threads : thread_counts) {
        setParallelThreadCount(threads);
        for (const snn::SnnEngine engine : engines) {
            snn::SnnConfig config = base;
            config.engine = engine;

            Rng rng(9);
            snn::SnnNetwork net(config, rng);
            snn::SnnStdpTrainer trainer(config);
            snn::SnnTrainConfig tc;
            tc.epochs = 2;
            tc.seed = 11;

            // --- train: cold cache, 2 epochs; epoch-2 hit rate from
            // the stats delta at the epoch boundary.
            snn::GridCacheStats epoch1;
            const double train_s = secondsOf([&] {
                trainer.train(net, w.data.train, tc,
                              [&](const snn::SnnEpochReport &r) {
                                  if (r.epoch == 0)
                                      epoch1 = trainer.gridCache().stats();
                              });
            });
            const snn::GridCacheStats after = trainer.gridCache().stats();
            const double e2_hits =
                static_cast<double>(after.hits - epoch1.hits);
            const double e2_total = e2_hits +
                static_cast<double>(after.misses - epoch1.misses);
            rows.push_back({"train_2ep", snn::snnEngineName(engine),
                            threads, 2 * w.data.train.size(), train_s,
                            e2_total > 0 ? e2_hits / e2_total : 0.0});

            // --- label: warm-up pass fills the cache for this seed,
            // the timed pass presents from it.
            trainer.labelNeurons(net, w.data.train, snn::EvalMode::Wt, 31);
            const auto before_label = trainer.gridCache().stats();
            std::vector<int> labels;
            const double label_s = secondsOf([&] {
                labels = trainer.labelNeurons(net, w.data.train,
                                              snn::EvalMode::Wt, 31);
            });
            const auto after_label = trainer.gridCache().stats();
            const double label_hits = static_cast<double>(
                after_label.hits - before_label.hits);
            const double label_total = label_hits +
                static_cast<double>(after_label.misses -
                                    before_label.misses);
            rows.push_back({"label", snn::snnEngineName(engine), threads,
                            w.data.train.size(), label_s,
                            label_total > 0 ? label_hits / label_total
                                            : 0.0});

            // --- evaluate: same warm-cache protocol.
            trainer.evaluate(net, labels, w.data.test, snn::EvalMode::Wt,
                             32);
            snn::SnnEvalResult eval;
            const double eval_s = secondsOf([&] {
                eval = trainer.evaluate(net, labels, w.data.test,
                                        snn::EvalMode::Wt, 32);
            });
            rows.push_back({"evaluate", snn::snnEngineName(engine),
                            threads, w.data.test.size(), eval_s, 1.0});

            // --- cross-check against the dense 1-thread reference.
            if (!have_reference) {
                reference = {labels, eval.accuracy, eval.silent};
                have_reference = true;
            } else {
                if (labels != reference.labels)
                    fatal("engine %s at %zu threads diverged on labels",
                          snn::snnEngineName(engine), threads);
                if (eval.accuracy != reference.accuracy ||
                    eval.silent != reference.silent) {
                    fatal("engine %s at %zu threads diverged: accuracy "
                          "%f vs %f",
                          snn::snnEngineName(engine), threads,
                          eval.accuracy, reference.accuracy);
                }
            }
        }
    }
    setParallelThreadCount(1);

    // Dense wall time per (phase, threads), for the speedup column.
    const auto denseWall = [&](const std::string &phase,
                               std::size_t threads) {
        for (const PhaseRow &r : rows) {
            if (r.phase == phase && r.threads == threads &&
                r.engine == "dense")
                return r.wall_s;
        }
        return 0.0;
    };

    TextTable table("SNN engine comparison (identical results enforced)");
    table.setHeader({"Phase", "Engine", "Threads", "Wall (s)", "Items/s",
                     "Speedup vs dense", "Cache hit"});
    CsvWriter csv("bench_snn_engine.csv",
                  {"phase", "engine", "threads", "wall_s", "items_per_s",
                   "speedup_vs_dense", "cache_hit_rate"});
    for (const PhaseRow &r : rows) {
        const double dense_s = denseWall(r.phase, r.threads);
        const double speedup = r.wall_s > 0 ? dense_s / r.wall_s : 0.0;
        table.addRow({r.phase, r.engine,
                      TextTable::num(static_cast<long long>(r.threads)),
                      TextTable::fmt(r.wall_s, 3),
                      TextTable::fmt(
                          static_cast<double>(r.items) / r.wall_s, 1),
                      TextTable::fmt(speedup, 2),
                      TextTable::fmt(r.cacheHitRate, 2)});
        csv.writeRow(std::vector<std::string>{
            r.phase, r.engine, std::to_string(r.threads),
            TextTable::fmt(r.wall_s, 4),
            TextTable::fmt(static_cast<double>(r.items) / r.wall_s, 1),
            TextTable::fmt(speedup, 2), TextTable::fmt(r.cacheHitRate, 2)});
    }
    table.addNote("speedup: dense wall time / this row's wall time at "
                  "the same phase and thread count");
    table.addNote("train runs 2 epochs on a cold cache; its hit rate "
                  "is the epoch-2 rate. label/evaluate are timed warm.");
    table.print(std::cout);
    std::cout << "RESULT: dense and event engines matched bit-for-bit "
                 "across all runs\n";
    return 0;
}
