/**
 * @file
 * Table 7: hardware characteristics of spatially folded SNN and MLP —
 * the paper's central hardware result. For every design and fold factor
 * the composed model's area/delay/energy/cycles are printed beside the
 * published row; the cycle-level schedule simulators cross-check the
 * cycle counts; and the headline ratios (folded MLP vs folded SNNwot)
 * are derived at the end.
 */

#include <iostream>

#include "neuro/common/csv.h"
#include "neuro/common/table.h"
#include "neuro/core/compare.h"
#include "neuro/core/reports.h"
#include "neuro/cycle/folded_mlp_sim.h"
#include "neuro/cycle/folded_snn_sim.h"

int
main()
{
    using namespace neuro;
    namespace paper = core::paper;

    const hw::MlpTopology mlp{784, 100, 10};
    const hw::SnnTopology snn{784, 300};
    const auto rows = core::makeTable7Rows(mlp, snn);

    TextTable table("Table 7 (spatially folded SNN and MLP)");
    table.setHeader({"Type", "ni", "Area noSRAM (mm2)",
                     "Total area (mm2)", "Delay (ns)", "Energy (uJ)",
                     "Cycles/image"});
    CsvWriter csv("bench_table7_folded.csv",
                  {"type", "ni", "area_no_sram_mm2", "total_area_mm2",
                   "delay_ns", "energy_uj", "cycles", "paper_total_mm2",
                   "paper_energy_uj"});
    std::string last_type;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &mine = rows[i];
        const auto &pub = paper::kTable7[i];
        if (!last_type.empty() && mine.type != last_type)
            table.addSeparator();
        last_type = mine.type;
        table.addRow({mine.type, mine.ni,
                      core::vsPaper(mine.areaNoSramMm2,
                                    pub.areaNoSramMm2),
                      core::vsPaper(mine.totalAreaMm2,
                                    pub.totalAreaMm2),
                      core::vsPaper(mine.delayNs, pub.delayNs),
                      core::vsPaper(mine.energyUj, pub.energyUj),
                      core::vsPaper(static_cast<double>(mine.cycles),
                                    pub.cyclesPerImage, 0)});
        csv.writeRow({mine.type, mine.ni,
                      TextTable::fmt(mine.areaNoSramMm2),
                      TextTable::fmt(mine.totalAreaMm2),
                      TextTable::fmt(mine.delayNs),
                      TextTable::fmt(mine.energyUj, 3),
                      TextTable::num(static_cast<long long>(mine.cycles)),
                      TextTable::fmt(pub.totalAreaMm2),
                      TextTable::fmt(pub.energyUj, 3)});
    }
    table.addNote("expanded SNNwt energy: the published 214.7 uJ is "
                  "inconsistent with its own cycle count x power; our "
                  "composed value is reported as-is");
    table.print(std::cout);

    // Cycle-simulator cross-check (the schedule, not the formula).
    std::cout << "\ncycle-simulator cross-check:\n";
    for (std::size_t ni : {1UL, 4UL, 8UL, 16UL}) {
        const auto m = cycle::simulateFoldedMlp(mlp, ni);
        const auto s = cycle::simulateFoldedSnnWot(snn, ni);
        std::cout << "  ni=" << ni << ": MLP schedule " << m.cycles
                  << " cycles (" << m.macs << " MACs), SNNwot schedule "
                  << s.cycles << " cycles (" << s.adds << " adds)\n";
    }

    // Headline ratios (Section 4.3.3).
    const auto ratios =
        core::foldedCostRatios(mlp, snn, {1, 4, 8, 16});
    std::cout << "\nSNNwot / MLP folded cost ratios (paper: area 2.57x "
                 "at ni=16; energy 2.41x-2.71x):\n";
    for (const auto &r : ratios) {
        std::cout << "  ni=" << r.ni << ": area "
                  << TextTable::fmt(r.areaRatio) << "x, energy "
                  << TextTable::fmt(r.energyRatio) << "x\n";
    }
    return 0;
}
