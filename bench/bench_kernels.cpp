/**
 * @file
 * Microbenchmark of the unified SIMD kernel layer (docs/kernels.md):
 * every kernel runs at every reachable ISA level (scalar, then AVX2 /
 * AVX512 when the CPU and toolchain provide them) over the shapes the
 * repo actually uses — the MNIST MLP layers for the float kernels, the
 * quantized MLP for q8, the event engine's bit plane for popcount —
 * and reports wall time, element throughput and speedup vs the scalar
 * table as CSV (bench_kernels.csv).
 *
 * Bit-identity cross-check: each vector run's output is compared
 * against the scalar run's word for word and the bench aborts on any
 * mismatch, so a speedup can never come from divergent arithmetic.
 *
 * Knobs: reps=N (per-kernel timing loop), quick=1 (or --quick, the CI
 * smoke setting: minimal reps, same checks), simd=off|avx2|avx512
 * restricts the ISA sweep (also NEURO_SIMD).
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/logging.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/kernels/kernels.h"

namespace {

using namespace neuro;

double
secondsOf(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

std::vector<float>
randomVec(Rng &rng, std::size_t n)
{
    std::vector<float> v(n);
    for (auto &e : v)
        e = static_cast<float>(rng.uniform(-1.0, 1.0));
    return v;
}

/** One kernel x shape entry of the sweep. */
struct Case
{
    std::string kernel; ///< CSV row label.
    std::string shape;  ///< human-readable shape tag.
    std::size_t elems;  ///< elements touched per run (throughput unit).
    /** Runs the kernel once into the case's output buffer. */
    std::function<void()> run;
    /** @return the output buffer for the bit-identity check. */
    std::function<std::vector<unsigned char>()> snapshot;
};

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    kernels::initKernels(cfg);
    const bool quick = cfg.getBool("quick", false);
    const auto reps = static_cast<std::size_t>(
        cfg.getInt("reps", quick ? 3 : 200));

    // ISA sweep: scalar always, then each wider table the machine can
    // actually select (forcing falls back when unsupported, so probe).
    std::vector<std::pair<std::string, kernels::SimdMode>> isas;
    isas.emplace_back("scalar", kernels::SimdMode::Off);
    if (kernels::setSimdMode(kernels::SimdMode::Avx2) ==
        kernels::SimdIsa::Avx2)
        isas.emplace_back("avx2", kernels::SimdMode::Avx2);
    if (kernels::setSimdMode(kernels::SimdMode::Avx512) ==
        kernels::SimdIsa::Avx512)
        isas.emplace_back("avx512", kernels::SimdMode::Avx512);
    kernels::setSimdMode(kernels::SimdMode::Auto);
    inform("kernel bench: %zu reps per case, widest ISA %s", reps,
           kernels::isaName(kernels::activeIsa()));

    // --- cases: the repo's hot shapes ------------------------------
    // MNIST MLP hidden layer (100 x 784+1), output layer (10 x 100+1),
    // event-engine drive (50 neurons per spike row), output bit plane.
    Rng rng(42);
    constexpr std::size_t kStrip = kernels::kStripWidth;

    struct Shape
    {
        std::size_t rows, cols;
    };
    const Shape shapes[] = {{100, 785}, {10, 101}};

    std::vector<Case> cases;
    for (const Shape &s : shapes) {
        const std::string tag =
            std::to_string(s.rows) + "x" + std::to_string(s.cols);
        const auto w = std::make_shared<std::vector<float>>(
            randomVec(rng, s.rows * s.cols));
        const auto x = std::make_shared<std::vector<float>>(
            randomVec(rng, s.cols - 1));
        const auto xr = std::make_shared<std::vector<float>>(
            randomVec(rng, s.rows));
        const auto strip = std::make_shared<std::vector<float>>(
            randomVec(rng, (s.cols - 1) * kStrip));
        const auto y = std::make_shared<std::vector<float>>(s.rows);
        const auto yt = std::make_shared<std::vector<float>>(s.cols);
        const auto ys = std::make_shared<std::vector<float>>(
            s.rows * kStrip);

        auto bytesOf = [](const std::vector<float> &v) {
            std::vector<unsigned char> b(v.size() * sizeof(float));
            std::memcpy(b.data(), v.data(), b.size());
            return b;
        };

        cases.push_back({"gemvBias", tag, s.rows * s.cols,
                         [=] {
                             kernels::gemvBias(w->data(), s.rows,
                                               s.cols, x->data(),
                                               y->data());
                         },
                         [=] { return bytesOf(*y); }});
        cases.push_back({"gemvT", tag, s.rows * s.cols,
                         [=] {
                             kernels::gemvT(w->data(), s.rows, s.cols,
                                            xr->data(), yt->data());
                         },
                         [=] { return bytesOf(*yt); }});
        cases.push_back({"gemvBiasStrip", tag,
                         s.rows * s.cols * kStrip,
                         [=] {
                             kernels::gemvBiasStrip(
                                 w->data(), s.rows, s.cols,
                                 strip->data(), ys->data());
                         },
                         [=] { return bytesOf(*ys); }});

        // Outer update: rebuild the weights from the same seed state
        // each rep so the accumulation cannot overflow across reps;
        // the per-rep reset is part of every ISA's timed loop alike.
        const auto wmut = std::make_shared<std::vector<float>>(*w);
        const auto d = std::make_shared<std::vector<float>>(
            randomVec(rng, s.rows));
        cases.push_back({"addOuterBias", tag, s.rows * s.cols,
                         [=] {
                             *wmut = *w;
                             kernels::addOuterBias(
                                 wmut->data(), s.rows, s.cols, 0.05f,
                                 d->data(), x->data());
                         },
                         [=] { return bytesOf(*wmut); }});

        // Batched outer update: the training path's whole-minibatch
        // variant (32 samples per call, repo batch size). Same per-rep
        // weight reset discipline as addOuterBias.
        constexpr std::size_t kBatch = 32;
        const auto wmutB = std::make_shared<std::vector<float>>(*w);
        struct BatchData
        {
            std::vector<std::vector<float>> deltas, acts;
            std::vector<const float *> dptr, aptr;
        };
        const auto bd = std::make_shared<BatchData>();
        for (std::size_t b = 0; b < kBatch; ++b) {
            bd->deltas.push_back(randomVec(rng, s.rows));
            bd->acts.push_back(randomVec(rng, s.cols - 1));
        }
        for (std::size_t b = 0; b < kBatch; ++b) {
            bd->dptr.push_back(bd->deltas[b].data());
            bd->aptr.push_back(bd->acts[b].data());
        }
        cases.push_back({"addOuterBiasBatch", tag + "xb32",
                         s.rows * s.cols * kBatch,
                         [=] {
                             *wmutB = *w;
                             kernels::addOuterBiasBatch(
                                 wmutB->data(), s.rows, s.cols, 0.05f,
                                 bd->dptr.data(), bd->aptr.data(),
                                 kBatch);
                         },
                         [=] { return bytesOf(*wmutB); }});

        // q8: same shape as the float layer, int8 weights.
        const auto wq = std::make_shared<std::vector<int8_t>>(
            s.rows * s.cols);
        const auto xq = std::make_shared<std::vector<uint8_t>>(
            s.cols - 1);
        for (auto &v : *wq)
            v = static_cast<int8_t>(rng.uniform(-128.0, 128.0));
        for (auto &v : *xq)
            v = static_cast<uint8_t>(rng.uniform(0.0, 256.0));
        const auto yq = std::make_shared<std::vector<int32_t>>(s.rows);
        cases.push_back(
            {"gemvBiasQ8", tag, s.rows * s.cols,
             [=] {
                 kernels::gemvBiasQ8(wq->data(), s.rows, s.cols,
                                     xq->data(), yq->data());
             },
             [=] {
                 std::vector<unsigned char> b(yq->size() *
                                              sizeof(int32_t));
                 std::memcpy(b.data(), yq->data(), b.size());
                 return b;
             }});
    }

    // Event-engine drive row and output bit plane.
    {
        const std::size_t neurons = 50;
        const auto row = std::make_shared<std::vector<float>>(
            randomVec(rng, neurons));
        const auto acc = std::make_shared<std::vector<double>>(neurons);
        cases.push_back(
            {"addRowF64", "50", neurons,
             [=] {
                 std::fill(acc->begin(), acc->end(), 0.0);
                 for (int s = 0; s < 64; ++s)
                     kernels::addRowF64(acc->data(), row->data(),
                                        neurons);
             },
             [=] {
                 std::vector<unsigned char> b(acc->size() *
                                              sizeof(double));
                 std::memcpy(b.data(), acc->data(), b.size());
                 return b;
             }});

        const std::size_t words = 1024;
        const auto bits = std::make_shared<std::vector<uint64_t>>(words);
        for (auto &v : *bits) {
            v = (rng.uniformInt(uint64_t{1} << 32) << 32) |
                rng.uniformInt(uint64_t{1} << 32);
        }
        const auto count = std::make_shared<std::size_t>(0);
        cases.push_back(
            {"popcountWords", "1024w", words,
             [=] {
                 *count = kernels::popcountWords(bits->data(), words);
             },
             [=] {
                 std::vector<unsigned char> b(sizeof(std::size_t));
                 std::memcpy(b.data(), count.get(), b.size());
                 return b;
             }});
    }

    // --- measurement ----------------------------------------------
    TextTable table("SIMD kernel throughput (scalar baseline per case)");
    table.setHeader({"Kernel", "Shape", "ISA", "Wall (s)", "Melem/s",
                     "Speedup"});
    CsvWriter csv("bench_kernels.csv",
                  {"kernel", "shape", "isa", "reps", "wall_s",
                   "melems_per_s", "speedup"});

    for (const Case &c : cases) {
        double scalar_s = 0.0;
        std::vector<unsigned char> scalar_out;
        for (const auto &[isa_name, mode] : isas) {
            kernels::setSimdMode(mode);
            c.run(); // warm-up (page faults, table select).
            const double s = secondsOf([&] {
                for (std::size_t r = 0; r < reps; ++r)
                    c.run();
            });
            const auto out = c.snapshot();
            if (isa_name == "scalar") {
                scalar_s = s;
                scalar_out = out;
            } else if (out != scalar_out) {
                fatal("%s %s: %s output differs from scalar",
                      c.kernel.c_str(), c.shape.c_str(),
                      isa_name.c_str());
            }
            const double total =
                static_cast<double>(c.elems * reps);
            const double speedup = scalar_s / s;
            table.addRow({c.kernel, c.shape, isa_name,
                          TextTable::fmt(s, 4),
                          TextTable::fmt(total / s / 1e6, 1),
                          TextTable::fmt(speedup, 2)});
            csv.writeRow(std::vector<std::string>{
                c.kernel, c.shape, isa_name, std::to_string(reps),
                TextTable::fmt(s, 5),
                TextTable::fmt(total / s / 1e6, 1),
                TextTable::fmt(speedup, 2)});
        }
    }
    kernels::setSimdMode(kernels::SimdMode::Auto);
    table.addNote("per-ISA speedups are per-machine; every vector "
                  "output was compared word-for-word against scalar");
    table.print(std::cout);
    std::cout << "RESULT: all ISA levels matched the scalar table "
                 "bit-for-bit\n";
    return 0;
}
