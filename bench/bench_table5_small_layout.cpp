/**
 * @file
 * Table 5: hardware characteristics of the two small-scale layouts the
 * paper fully placed-and-routed — SNN 4x4-20 (SNNwt, expanded) and MLP
 * 4x4-10-10 (expanded).
 */

#include <iostream>

#include "neuro/common/table.h"
#include "neuro/core/reports.h"
#include "neuro/hw/expanded.h"

int
main()
{
    using namespace neuro;
    namespace paper = core::paper;

    const hw::SnnTopology snn{16, 20};
    const hw::MlpTopology mlp{16, 10, 10};
    const hw::Design snn_design = hw::buildExpandedSnnWt(snn);
    const hw::Design mlp_design = hw::buildExpandedMlp(mlp);

    TextTable table("Table 5 (small-scale layouts: SNN 4x4-20 vs MLP "
                    "4x4-10-10)");
    table.setHeader({"Type", "Area (mm2)", "Delay (ns)", "Power (W)",
                     "Energy (nJ)"});
    table.addRow({"SNN",
                  core::vsPaper(snn_design.totalAreaMm2(),
                                paper::kSmallSnnAreaMm2),
                  core::vsPaper(snn_design.clockNs(),
                                paper::kSmallSnnDelayNs),
                  core::vsPaper(snn_design.powerW(),
                                paper::kSmallSnnPowerW),
                  TextTable::fmt(snn_design.totalEnergyPerImageUj() *
                                     1000.0 /
                                     static_cast<double>(
                                         snn_design.cyclesPerImage()),
                                 3) +
                      "/cycle"});
    table.addRow({"MLP",
                  core::vsPaper(mlp_design.totalAreaMm2(),
                                paper::kSmallMlpAreaMm2),
                  core::vsPaper(mlp_design.clockNs(),
                                paper::kSmallMlpDelayNs),
                  core::vsPaper(mlp_design.powerW(),
                                paper::kSmallMlpPowerW),
                  TextTable::fmt(mlp_design.totalEnergyPerImageUj() *
                                     1000.0 /
                                     static_cast<double>(
                                         mlp_design.cyclesPerImage()),
                                 3) +
                      "/cycle"});
    table.addNote("paper: area/delay/energy ratios favor the SNN at "
                  "this (tiny, expanded) scale; power is similar since "
                  "clock dominates the SNN (60% vs 20%)");
    table.addNote("absolute power is under-modeled (no layout-level "
                  "clock tree); the SNN-vs-MLP ratios are the result");
    table.print(std::cout);

    std::cout << "SNN/MLP area ratio: "
              << TextTable::fmt(snn_design.totalAreaMm2() /
                                mlp_design.totalAreaMm2())
              << " (paper " << TextTable::fmt(0.08 / 0.21) << ")\n";
    std::cout << "SNN/MLP delay ratio: "
              << TextTable::fmt(snn_design.clockNs() /
                                mlp_design.clockNs())
              << " (paper " << TextTable::fmt(1.18 / 1.96) << ")\n";
    return 0;
}
