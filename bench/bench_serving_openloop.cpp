/**
 * @file
 * Open-loop load generator for the network serving front end
 * (docs/serving.md, "Network protocol"): trains a small MLP, serves it
 * over a loopback NetServer, and offers Poisson traffic at a fixed
 * rate from a dedicated sender thread whose sends never wait on
 * responses. Where the closed-loop bench (bench_serving.cpp) can only
 * observe the server at the throughput the *client* sustains, the
 * open-loop harness keeps offering load past saturation — the regime
 * where real serving systems live — and measures what a closed loop
 * structurally cannot: the latency-throughput curve through the knee,
 * tail divergence beyond it, and admission-control behavior under
 * overload.
 *
 * Latency is measured from each request's *scheduled* send time (the
 * Poisson arrival), not the actual write, so sender-side backpressure
 * cannot hide queueing delay — the standard coordinated-omission
 * guard. Scenarios, all over one loopback socket per stream:
 *
 *  - sweep:    one model, offered rate stepped across a ladder scaled
 *              from a measured burst-capacity estimate; beyond the
 *              knee goodput plateaus (admission control rejects the
 *              excess) while the Ok-request p99 diverges from p50;
 *  - fairness: two models, one offered ~3x its fair share, one
 *              lightly loaded; per-model InferenceServers mean the
 *              overloaded model degrades to *its own* rejections and
 *              the light model's goodput tracks its offered rate;
 *  - slo:      the base model with its quantized sibling as SLO
 *              fallback; overload drives p99 across the SLO and the
 *              serve.slo.degrade_enter/exit counters record the
 *              degrade/restore flapping.
 *
 * Before any load runs, the harness replays a fixed trace both over
 * the wire and against an in-process InferenceServer and asserts the
 * predictions are bit-identical — the net layer must not change
 * answers, only transport them.
 *
 * Every stream attaches a per-request deadline (deadline_us, default
 * 50ms), so overload sheds both ways the serve layer can: queue-full
 * rejections at admission and deadline expiry at dequeue. The Ok
 * latency distribution is therefore the *served* experience — p50
 * near the service time, p99 riding toward the deadline.
 *
 * Results: table + bench_serving_openloop.csv. Knobs: quick=1
 * duration_s=S rate=R (extra sweep point, req/s) deadline_us=D
 * train=N test=N hidden=H batch=B capacity=C (also NEURO_THREADS /
 * NEURO_METRICS, docs/observability.md).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/logging.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/mlp/backprop.h"
#include "neuro/mlp/mlp.h"
#include "neuro/net/client.h"
#include "neuro/net/frontend.h"
#include "neuro/net/protocol.h"
#include "neuro/net/server.h"
#include "neuro/serve/backend.h"
#include "neuro/serve/registry.h"
#include "neuro/serve/server.h"
#include "neuro/telemetry/metrics.h"

namespace {

using namespace neuro;
using Clock = std::chrono::steady_clock;

/** One offered-load stream: Poisson arrivals of one model's traffic
 *  on its own connection. */
struct StreamSpec
{
    std::string model;
    double rateReqS = 0.0;       ///< offered rate (req/s).
    uint32_t deadlineMicros = 0; ///< per-request deadline; 0 = none.
};

/** What one stream measured. */
struct StreamResult
{
    std::string model;
    double offeredReqS = 0.0;
    double wallS = 0.0;
    uint64_t sent = 0;
    uint64_t ok = 0;
    uint64_t rejected = 0;
    uint64_t expired = 0;
    uint64_t other = 0;           ///< bad frame / unknown model.
    std::vector<double> latencyUs; ///< Ok requests, scheduled->done.

    double
    goodputReqS() const
    {
        return wallS > 0.0 ? static_cast<double>(ok) / wallS : 0.0;
    }
};

/** @return the p-th percentile of @p sorted (ascending), 0 if empty. */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        p * static_cast<double>(sorted.size() - 1) / 100.0;
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/**
 * Run one open-loop stream against the server on @p port: a sender
 * thread paces Poisson arrivals and never reads; a receiver thread
 * reads every response and stamps latency from the request's
 * *scheduled* arrival. The scheduled times cross threads through
 * release/acquire atomics indexed by request id.
 */
StreamResult
runStream(uint16_t port, const StreamSpec &spec, double durationS,
          uint64_t seed, const datasets::Dataset &samples)
{
    StreamResult out;
    out.model = spec.model;
    out.offeredReqS = spec.rateReqS;

    net::NetClient client;
    std::string error;
    if (!client.connect("127.0.0.1", port, &error))
        fatal("open-loop client: %s", error.c_str());

    // Generous bound on how many arrivals the schedule can hold; the
    // sender stops early (and says so) if a run ever outgrows it.
    const auto maxRequests = static_cast<std::size_t>(
        spec.rateReqS * durationS * 2.0 + 1024.0);
    std::vector<std::atomic<int64_t>> scheduledNs(maxRequests);

    const Clock::time_point start = Clock::now();
    const auto durationNs = static_cast<int64_t>(durationS * 1e9);

    std::thread sender([&] {
        Rng rng(seed);
        const double meanGapUs = 1e6 / spec.rateReqS;
        double clockUs = 0.0;
        uint64_t id = 0;
        while (id < maxRequests) {
            clockUs += rng.exponential(meanGapUs);
            const auto atNs = static_cast<int64_t>(clockUs * 1e3);
            if (atNs >= durationNs)
                break;
            const Clock::time_point at =
                start + std::chrono::nanoseconds(atNs);
            std::this_thread::sleep_until(at);
            // Latency anchors to the *scheduled* arrival, so a tardy
            // sender (or a blocking send) cannot mask server queueing.
            scheduledNs[id].store(atNs, std::memory_order_release);
            net::RequestFrame frame;
            frame.id = id;
            frame.streamSeed = deriveStreamSeed(seed, id);
            frame.model = spec.model;
            frame.deadlineMicros = spec.deadlineMicros;
            const datasets::Sample &sample =
                samples[id % samples.size()];
            frame.pixels.assign(sample.pixels.begin(),
                                sample.pixels.end());
            if (!client.sendRequest(frame, nullptr))
                break; // server gone; receiver sees the close.
            ++id;
        }
        if (id == maxRequests)
            warn("open-loop sender hit its %zu-request schedule "
                 "bound before %0.1fs",
                 maxRequests, durationS);
        out.sent = id;
        // Half-close: the server drains and answers everything sent,
        // then closes, which ends the receiver's read loop.
        client.shutdownWrite();
    });

    std::thread receiver([&] {
        net::ResponseFrame response;
        while (client.readResponse(&response, nullptr)) {
            switch (response.status) {
            case net::FrameStatus::Ok: {
                const int64_t schedNs =
                    scheduledNs[response.id].load(
                        std::memory_order_acquire);
                const int64_t nowNs =
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(Clock::now() -
                                                  start)
                        .count();
                out.latencyUs.push_back(
                    static_cast<double>(nowNs - schedNs) / 1e3);
                ++out.ok;
                break;
            }
            case net::FrameStatus::Rejected: ++out.rejected; break;
            case net::FrameStatus::Expired: ++out.expired; break;
            default: ++out.other; break;
            }
        }
    });

    sender.join();
    receiver.join();
    out.wallS = std::chrono::duration<double>(Clock::now() - start)
                    .count();
    NEURO_ASSERT(out.ok + out.rejected + out.expired + out.other ==
                     out.sent,
                 "open-loop stream lost responses: sent %llu, got "
                 "%llu",
                 (unsigned long long)out.sent,
                 (unsigned long long)(out.ok + out.rejected +
                                      out.expired + out.other));
    std::sort(out.latencyUs.begin(), out.latencyUs.end());
    return out;
}

/** Burst-capacity estimate: one closed-loop blast of @p n requests
 *  through the wire; goodput of the burst approximates the serving
 *  capacity the sweep ladder is scaled from. */
double
estimateCapacity(uint16_t port, const std::string &model, uint64_t n,
                 uint64_t seed, const datasets::Dataset &samples)
{
    net::NetClient client;
    std::string error;
    if (!client.connect("127.0.0.1", port, &error))
        fatal("capacity probe: %s", error.c_str());
    const Clock::time_point t0 = Clock::now();
    std::thread sender([&] {
        for (uint64_t id = 0; id < n; ++id) {
            net::RequestFrame frame;
            frame.id = id;
            frame.streamSeed = deriveStreamSeed(seed, id);
            frame.model = model;
            const datasets::Sample &sample =
                samples[id % samples.size()];
            frame.pixels.assign(sample.pixels.begin(),
                                sample.pixels.end());
            if (!client.sendRequest(frame, nullptr))
                break;
        }
        client.shutdownWrite();
    });
    uint64_t ok = 0;
    net::ResponseFrame response;
    while (client.readResponse(&response, nullptr)) {
        if (response.status == net::FrameStatus::Ok)
            ++ok;
    }
    sender.join();
    const double wallS =
        std::chrono::duration<double>(Clock::now() - t0).count();
    NEURO_ASSERT(ok > 0, "capacity probe completed no requests");
    return static_cast<double>(ok) / wallS;
}

/**
 * Acceptance gate: the same fixed trace through the wire and through
 * an in-process InferenceServer must predict identical classes — the
 * network layer transports answers, it must never change them.
 */
void
checkWireIdentity(uint16_t port, const std::string &model,
                  const std::shared_ptr<serve::InferenceBackend> &backend,
                  uint64_t n, uint64_t seed,
                  const datasets::Dataset &samples)
{
    std::vector<int32_t> wire(n, -1);
    {
        net::NetClient client;
        std::string error;
        if (!client.connect("127.0.0.1", port, &error))
            fatal("identity probe: %s", error.c_str());
        for (uint64_t id = 0; id < n; ++id) {
            net::RequestFrame frame;
            frame.id = id;
            frame.streamSeed = deriveStreamSeed(seed, id);
            frame.model = model;
            const datasets::Sample &sample =
                samples[id % samples.size()];
            frame.pixels.assign(sample.pixels.begin(),
                                sample.pixels.end());
            if (!client.sendRequest(frame, &error))
                fatal("identity probe send: %s", error.c_str());
        }
        client.shutdownWrite();
        net::ResponseFrame response;
        while (client.readResponse(&response, nullptr)) {
            NEURO_ASSERT(response.status == net::FrameStatus::Ok,
                         "identity probe request %llu was %s",
                         (unsigned long long)response.id,
                         net::frameStatusName(response.status));
            wire[response.id] = response.classIndex;
        }
    }

    serve::InferenceServer local(backend);
    for (uint64_t id = 0; id < n; ++id) {
        serve::InferenceRequest request;
        request.id = id;
        request.streamSeed = deriveStreamSeed(seed, id);
        request.pixels = samples[id % samples.size()].pixels;
        const serve::InferenceResult r =
            local.submit(std::move(request)).get();
        NEURO_ASSERT(r.status == serve::RequestStatus::Ok,
                     "identity probe local request failed");
        NEURO_ASSERT(wire[id] == static_cast<int32_t>(r.classIndex),
                     "wire prediction diverged from in-process "
                     "serving at id %llu: %d vs %d",
                     (unsigned long long)id, (int)wire[id],
                     r.classIndex);
    }
    inform("wire identity: %llu predictions bit-identical to "
           "in-process serving",
           (unsigned long long)n);
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const bool quick = cfg.getInt("quick", 0) != 0;
    const double durationS =
        cfg.getDouble("duration_s", quick ? 1.0 : 4.0);
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 1000));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 400));
    // Small batches: a batch is a convoy, and at ~175us/request
    // (hidden=2048) a deep one would put whole-batch compute into
    // every request's p50 and flatten the latency curve the sweep
    // exists to show. Four keeps the floor near the service time.
    const auto maxBatch =
        static_cast<std::size_t>(cfg.getInt("batch", 4));
    // Queue depth sized near the deadline-implied depth (deadline x
    // service rate): shallower and every overload sheds as Rejected
    // at admission before anything can expire; much deeper and the
    // deadline bounds the wait first and the queue never fills. Near
    // parity both mechanisms engage — transient excursions expire,
    // sustained overload also rejects.
    const auto capacity = static_cast<std::size_t>(
        cfg.getInt("capacity", 64));
    // Every stream attaches a per-request deadline, like a real SLO'd
    // client would: beyond the knee the queue sheds its deepest
    // excursions as Expired instead of serving minute-old requests, so
    // the Ok latency distribution is the *served* experience — p50
    // near the service time, p99 riding just under the deadline — and
    // goodput plateaus at what the server can finish in time.
    const auto deadlineMicros = static_cast<uint32_t>(
        cfg.getInt("deadline_us", 50000));
    const uint64_t seed = 2026;

    const core::Workload w = core::makeMnistWorkload(train, test, 1);

    // Unlike bench_serving's tiny model, the open-loop model is
    // deliberately beefy (hidden=256): the *server* must be the
    // bottleneck, not the load generator. With a cheap model on a
    // small box the Poisson sender saturates first and the measured
    // "knee" is the client's — offered load never actually exceeds
    // service capacity and admission control never engages.
    mlp::MlpConfig mlpConfig = core::defaultMlpConfig(w);
    mlpConfig.layerSizes = {w.data.train.inputSize(),
                            static_cast<std::size_t>(
                                cfg.getInt("hidden", 2048)),
                            static_cast<std::size_t>(
                                w.data.train.numClasses())};
    Rng rng(3);
    mlp::Mlp net(mlpConfig, rng);
    {
        mlp::TrainConfig tc;
        tc.epochs = 1;
        mlp::train(net, w.data.train, tc);
    }

    serve::ModelRegistry registry;
    registry.add("m0.q8", serve::makeQuantizedMlpBackend(net));
    registry.add("m1", serve::makeQuantizedMlpBackend(net));
    const std::shared_ptr<serve::InferenceBackend> base =
        serve::makeMlpBackend(std::move(net));
    registry.add("m0", base);

    serve::ServeConfig sc;
    sc.queueCapacity = capacity;
    sc.batch.maxBatch = maxBatch;
    sc.batch.maxWaitMicros = 200;

    CsvWriter csv("bench_serving_openloop.csv",
                  {"scenario", "model", "offered_req_s", "duration_s",
                   "sent", "ok", "rejected", "expired",
                   "goodput_req_s", "p50_us", "p95_us", "p99_us",
                   "max_us", "slo_flaps"});
    TextTable table("open-loop serving: offered load vs goodput and "
                    "tail latency");
    table.setHeader({"Scenario", "Model", "Offered", "Goodput",
                     "Shed%", "p50 (us)", "p99 (us)", "p99/p50"});

    auto report = [&](const char *scenario, const StreamResult &r,
                      uint64_t sloFlaps) {
        const double p50 = percentile(r.latencyUs, 50.0);
        const double p95 = percentile(r.latencyUs, 95.0);
        const double p99 = percentile(r.latencyUs, 99.0);
        const double maxUs =
            r.latencyUs.empty() ? 0.0 : r.latencyUs.back();
        const double shedPct =
            r.sent == 0
                ? 0.0
                : 100.0 *
                      static_cast<double>(r.rejected + r.expired) /
                      static_cast<double>(r.sent);
        table.addRow({scenario, r.model,
                      TextTable::fmt(r.offeredReqS, 0),
                      TextTable::fmt(r.goodputReqS(), 0),
                      TextTable::fmt(shedPct, 1),
                      TextTable::fmt(p50, 0), TextTable::fmt(p99, 0),
                      TextTable::fmt(p50 > 0.0 ? p99 / p50 : 0.0,
                                     1)});
        csv.writeRow(std::vector<std::string>{
            scenario, r.model, TextTable::fmt(r.offeredReqS, 1),
            TextTable::fmt(r.wallS, 2), std::to_string(r.sent),
            std::to_string(r.ok), std::to_string(r.rejected),
            std::to_string(r.expired),
            TextTable::fmt(r.goodputReqS(), 1),
            TextTable::fmt(p50, 1), TextTable::fmt(p95, 1),
            TextTable::fmt(p99, 1), TextTable::fmt(maxUs, 1),
            std::to_string(sloFlaps)});
    };

    // --- capacity probe + wire-identity gate --------------------------
    // The probes are closed-loop blasts; they get a queue deep enough
    // to hold the whole blast so admission control cannot distort
    // either the capacity estimate or the identity check.
    double capacityReqS = 0.0;
    {
        serve::ServeConfig probeConfig = sc;
        probeConfig.queueCapacity = 8192;
        net::ServeFrontend frontend(registry, probeConfig);
        net::NetServer server(frontend);
        std::string error;
        if (!server.start(&error))
            fatal("open-loop server: %s", error.c_str());
        checkWireIdentity(server.port(), "m0", base,
                          quick ? 128 : 256, seed, w.data.test);
        const uint64_t probe = quick ? 1000 : 4000;
        capacityReqS = estimateCapacity(server.port(), "m0", probe,
                                        seed, w.data.test);
        server.stop();
    }
    inform("burst capacity estimate: %.0f req/s", capacityReqS);

    // --- sweep: rate ladder through and past the knee -----------------
    // The burst estimate only bounds capacity from below (on a small
    // box the burst client's own CPU steals from the server), so the
    // ladder is adaptive: after the scripted steps it keeps raising
    // the offered rate until goodput has measurably fallen away from
    // offered for two rows — the sweep is guaranteed to cross the
    // knee, wherever the estimate put it.
    std::vector<double> ladder =
        quick ? std::vector<double>{0.5, 1.0, 1.5}
              : std::vector<double>{0.3, 0.5, 0.7, 0.85, 1.0,
                                    1.15, 1.3, 1.6};
    if (cfg.has("rate"))
        ladder.push_back(cfg.getDouble("rate", 0.0) / capacityReqS);
    std::vector<StreamResult> sweep;
    auto sweepOne = [&](double rateReqS) {
        serve::InferenceServer::resetStageMetrics();
        net::ServeFrontend frontend(registry, sc);
        net::NetServer server(frontend);
        std::string error;
        if (!server.start(&error))
            fatal("open-loop server: %s", error.c_str());
        StreamSpec spec;
        spec.model = "m0";
        spec.rateReqS = rateReqS;
        spec.deadlineMicros = deadlineMicros;
        const StreamResult r = runStream(
            server.port(), spec, durationS, seed + 17, w.data.test);
        server.stop();
        report("sweep", r, 0);
        sweep.push_back(r);
    };
    const std::size_t maxRows = ladder.size() + (quick ? 4 : 8);
    std::size_t saturatedRows = 0;
    for (std::size_t step = 0; step < maxRows; ++step) {
        const double scale = step < ladder.size()
                                 ? ladder[step]
                                 : ladder.back() * 1.45 *
                                       std::pow(1.45, static_cast<double>(
                                                          step -
                                                          ladder.size()));
        sweepOne(capacityReqS * scale);
        const StreamResult &r = sweep.back();
        if (r.goodputReqS() < 0.8 * r.offeredReqS &&
            ++saturatedRows >= 2 && step + 1 >= ladder.size())
            break;
    }

    // Second pass, dense around the measured knee: the coarse pass's
    // best goodput is the empirical capacity (the burst estimate
    // undershoots when the probe client competes for the same cores),
    // and the hockey stick — p50 still near service time, p99 blown
    // up by queue excursions — lives in the band just below and at
    // that capacity. The coarse geometric ladder jumps clean over it.
    double capacityHat = 0.0;
    for (const StreamResult &r : sweep)
        capacityHat = std::max(capacityHat, r.goodputReqS());
    for (const double scale :
         quick ? std::vector<double>{0.95}
               : std::vector<double>{0.85, 0.95, 1.02, 1.1})
        sweepOne(capacityHat * scale);

    // Knee analysis over every sweep row, ordered by offered rate.
    // The knee is where latency turns up: the first rate whose p99
    // exceeds 5x the lightest row's. Beyond it the tail of the
    // requests that still complete Ok diverges from their median,
    // while goodput pins at capacity (the plateau across the rows
    // offered more than the measured capacity).
    std::vector<const StreamResult *> byRate;
    byRate.reserve(sweep.size());
    for (const StreamResult &r : sweep)
        byRate.push_back(&r);
    std::sort(byRate.begin(), byRate.end(),
              [](const StreamResult *a, const StreamResult *b) {
                  return a->offeredReqS < b->offeredReqS;
              });
    const double baseP99 =
        byRate.empty() ? 0.0 : percentile(byRate.front()->latencyUs,
                                          99.0);
    std::size_t knee = byRate.size();
    for (std::size_t i = 0; i < byRate.size(); ++i) {
        if (percentile(byRate[i]->latencyUs, 99.0) > 5.0 * baseP99) {
            knee = i;
            break;
        }
    }
    double beyondKneeRatio = 0.0, plateauLow = 0.0, plateauHigh = 0.0;
    for (std::size_t i = knee; i < byRate.size(); ++i) {
        const double p50 = percentile(byRate[i]->latencyUs, 50.0);
        const double p99 = percentile(byRate[i]->latencyUs, 99.0);
        if (p50 > 0.0)
            beyondKneeRatio =
                std::max(beyondKneeRatio, p99 / p50);
    }
    for (const StreamResult *r : byRate) {
        if (r->offeredReqS < capacityHat)
            continue;
        const double g = r->goodputReqS();
        plateauLow = plateauLow == 0.0 ? g : std::min(plateauLow, g);
        plateauHigh = std::max(plateauHigh, g);
    }

    // --- fairness: overloaded m0 next to lightly loaded m1 ------------
    StreamResult fairHeavy, fairLight;
    {
        net::ServeFrontend frontend(registry, sc);
        net::NetServer server(frontend);
        std::string error;
        if (!server.start(&error))
            fatal("open-loop server: %s", error.c_str());
        // Rates scale from the sweep's measured capacity, not the
        // burst estimate — the estimate undershoots enough that 1.5x
        // of it can still be *under* the real knee, which would make
        // the "overloaded" stream a healthy one.
        StreamSpec heavy{"m0", capacityHat * 1.5, deadlineMicros};
        StreamSpec light{"m1", capacityHat * 0.15, deadlineMicros};
        std::thread heavyThread([&] {
            fairHeavy = runStream(server.port(), heavy, durationS,
                                  seed + 31, w.data.test);
        });
        fairLight = runStream(server.port(), light, durationS,
                              seed + 32, w.data.test);
        heavyThread.join();
        server.stop();
        report("fairness", fairHeavy, 0);
        report("fairness", fairLight, 0);
    }

    // --- slo: overload with the q8 sibling as fallback ----------------
    uint64_t sloFlaps = 0;
    {
        auto &reg = telemetry::MetricRegistry::instance();
        const auto degradeEnter =
            reg.counter("serve.slo.degrade_enter");
        const auto degradeExit =
            reg.counter("serve.slo.degrade_exit");
        const uint64_t enter0 = degradeEnter->value();
        const uint64_t exit0 = degradeExit->value();

        serve::ServeConfig sloConfig = sc;
        sloConfig.sloP99Micros = 2000;
        sloConfig.sloWindow = 64;
        sloConfig.enableFallback = true;
        net::ServeFrontend frontend(registry, sloConfig,
                                    {"m0", "m0.q8"});
        net::NetServer server(frontend);
        std::string error;
        if (!server.start(&error))
            fatal("open-loop server: %s", error.c_str());
        StreamSpec spec{"m0", capacityReqS * 1.1, deadlineMicros};
        const StreamResult r = runStream(
            server.port(), spec, durationS, seed + 47, w.data.test);
        server.stop();
        sloFlaps = (degradeEnter->value() - enter0) +
                   (degradeExit->value() - exit0);
        report("slo", r, sloFlaps);
    }

    table.addNote("offered load is Poisson, open loop: sends are "
                  "paced by the schedule, never by responses");
    table.addNote("latency anchors to scheduled arrival times "
                  "(coordinated-omission guard)");
    table.print(std::cout);

    const double kneeReqS =
        knee < byRate.size() ? byRate[knee]->offeredReqS : 0.0;
    std::cout << "RESULT: burst estimate "
              << TextTable::fmt(capacityReqS, 0) << " req/s; knee at ~"
              << TextTable::fmt(kneeReqS, 0)
              << " req/s offered; goodput plateau "
              << TextTable::fmt(plateauLow, 0) << ".."
              << TextTable::fmt(plateauHigh, 0)
              << " req/s beyond it; beyond-knee p99/p50 up to "
              << TextTable::fmt(beyondKneeRatio, 1)
              << "x; slo flaps = " << sloFlaps << "\n";
    return 0;
}
