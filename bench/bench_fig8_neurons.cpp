/**
 * @file
 * Figure 8: impact of the number of neurons on MLP and SNN accuracy —
 * the MLP plateaus around 100 hidden neurons, the SNN around 300
 * output neurons (and always below the MLP). This drives the paper's
 * topology choices and the iso-accuracy comparison (Section 4.2.3).
 *
 * Knobs: train=N test=N (and NEURO_SCALE).
 */

#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/table.h"
#include "neuro/core/compare.h"
#include "neuro/core/explorer.h"
#include "neuro/hw/expanded.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 3000));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 800));

    core::Workload w = core::makeMnistWorkload(train, test, 1);
    const std::vector<std::size_t> mlp_sizes = {10, 15, 20, 30, 50, 100};
    const std::vector<std::size_t> snn_sizes = {10, 50, 100, 300};

    const auto mlp_points = core::sweepMlpHidden(w, mlp_sizes, 21);
    const auto snn_points = core::sweepSnnNeurons(w, snn_sizes, 22);

    TextTable table("Figure 8 (accuracy vs number of neurons)");
    table.setHeader({"Model", "# neurons", "Accuracy (%)"});
    CsvWriter csv("bench_fig8_neurons.csv",
                  {"model", "neurons", "accuracy_pct"});
    for (const auto &p : mlp_points) {
        table.addRow({"MLP", TextTable::fmt(p.parameter, 0),
                      TextTable::pct(p.accuracy)});
        csv.writeRow({"mlp", TextTable::fmt(p.parameter, 0),
                      TextTable::fmt(p.accuracy * 100.0)});
    }
    table.addSeparator();
    for (const auto &p : snn_points) {
        table.addRow({"SNN", TextTable::fmt(p.parameter, 0),
                      TextTable::pct(p.accuracy)});
        csv.writeRow({"snn", TextTable::fmt(p.parameter, 0),
                      TextTable::fmt(p.accuracy * 100.0)});
    }
    table.addNote("paper shape: MLP plateaus ~100 hidden, SNN plateaus "
                  "~300 neurons, SNN strictly below MLP");
    table.print(std::cout);

    // Section 4.2.3: iso-accuracy area comparison — shrink the MLP to
    // the SNN's accuracy and compare expanded areas.
    const double snn_best = snn_points.back().accuracy;
    const auto iso = core::isoAccuracyComparison(
        w, snn_best, {2, 3, 4, 5, 8, 10, 15, 20, 30}, 31);
    std::cout << "\niso-accuracy comparison (Section 4.2.3):\n"
              << "  SNN accuracy " << TextTable::pct(iso.snnAccuracy)
              << " matched by MLP with " << iso.mlpHidden
              << " hidden neurons (" << TextTable::pct(iso.mlpAccuracy)
              << ")\n"
              << "  expanded areas: MLP "
              << TextTable::fmt(iso.mlpAreaMm2) << " mm2 vs SNNwt "
              << TextTable::fmt(iso.snnWtAreaMm2) << " mm2 vs SNNwot "
              << TextTable::fmt(iso.snnWotAreaMm2) << " mm2\n"
              << "  MLP smaller than SNNwt by "
              << TextTable::pct(1.0 - iso.mlpAreaMm2 / iso.snnWtAreaMm2)
              << " (paper: 68.30%), than SNNwot by "
              << TextTable::pct(1.0 - iso.mlpAreaMm2 / iso.snnWotAreaMm2)
              << " (paper: 73.23%)\n";
    return 0;
}
