/**
 * @file
 * Large-scale crossover study — the paper's conclusion that SNNs
 * "should be the design of choice for fast and large-scale
 * implementations (spatially expanded)". Sweeps network scale from
 * MNIST-size up 64x and reports where each style's winner flips.
 */

#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/parallel.h"
#include "neuro/common/table.h"
#include "neuro/hw/scaling.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    initParallel(cfg);
    const auto ladder = hw::defaultScaleLadder();
    const auto results = hw::scalingStudy(ladder);

    TextTable table("scaling study (expanded & folded, ni = 16)");
    table.setHeader({"Inputs", "MLP hid", "SNN n", "MLP exp (mm2)",
                     "SNN exp (mm2)", "exp winner", "MLP fold (mm2)",
                     "SNN fold (mm2)", "fold winner"});
    CsvWriter csv("bench_scaling.csv",
                  {"inputs", "mlp_hidden", "snn_neurons",
                   "mlp_expanded_mm2", "snn_expanded_mm2",
                   "mlp_folded_mm2", "snn_folded_mm2"});
    for (const auto &r : results) {
        table.addRow(
            {TextTable::num(static_cast<long long>(r.scale.inputs)),
             TextTable::num(static_cast<long long>(r.scale.mlpHidden)),
             TextTable::num(static_cast<long long>(r.scale.snnNeurons)),
             TextTable::fmt(r.mlpExpandedMm2, 1),
             TextTable::fmt(r.snnExpandedMm2, 1),
             r.snnWinsExpandedArea() ? "SNN" : "MLP",
             TextTable::fmt(r.mlpFoldedMm2, 1),
             TextTable::fmt(r.snnFoldedMm2, 1),
             r.snnWinsFoldedArea() ? "SNN" : "MLP"});
        csv.writeRow({static_cast<double>(r.scale.inputs),
                      static_cast<double>(r.scale.mlpHidden),
                      static_cast<double>(r.scale.snnNeurons),
                      r.mlpExpandedMm2, r.snnExpandedMm2,
                      r.mlpFoldedMm2, r.snnFoldedMm2});
    }
    table.addNote("paper's claim to reproduce: expanded SNN wins area "
                  "at every scale (no multipliers), while the folded "
                  "MLP keeps winning (3x fewer synapses to store)");
    table.print(std::cout);

    const auto &first = results.front();
    const auto &last = results.back();
    std::cout << "expanded SNN/MLP area ratio: "
              << TextTable::fmt(first.snnExpandedMm2 /
                                first.mlpExpandedMm2)
              << " at MNIST scale -> "
              << TextTable::fmt(last.snnExpandedMm2 /
                                last.mlpExpandedMm2)
              << " at " << last.scale.inputs
              << " inputs (the multiplier gap widens with scale)\n";
    std::cout << "expanded latency at largest scale: MLP "
              << TextTable::fmt(last.mlpExpandedNsPerImage, 1)
              << " ns vs SNN "
              << TextTable::fmt(last.snnExpandedNsPerImage, 1)
              << " ns per image\n";
    return 0;
}
