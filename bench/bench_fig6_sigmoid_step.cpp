/**
 * @file
 * Figure 6: bridging error rates between sigmoid and step functions —
 * the MLP+BP is retrained with the parameterized sigmoid for
 * a = 1,2,4,8,16 and with the [0/1] step function; as `a` grows the
 * error approaches the step function's, showing the activation is the
 * only spike-related piece of the SNN/MLP gap.
 *
 * Knobs: train=N test=N (and NEURO_SCALE).
 */

#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/table.h"
#include "neuro/core/explorer.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 3000));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 800));

    core::Workload w = core::makeMnistWorkload(train, test, 1);
    const std::vector<double> slopes = {1, 2, 4, 8, 16};
    const auto points = core::sweepSigmoidSlope(w, slopes, 23);

    TextTable table("Figure 6 (error rate vs sigmoid slope a)");
    table.setHeader({"Activation", "Error rate (%)"});
    CsvWriter csv("bench_fig6_sigmoid_step.csv",
                  {"slope_a", "error_rate_pct"});
    double step_error = 0.0, a16_error = 0.0, a1_error = 0.0;
    for (const auto &p : points) {
        const double error = (1.0 - p.accuracy) * 100.0;
        const std::string label = p.parameter == 0.0
            ? "step function"
            : "sigmoid (a=" + TextTable::fmt(p.parameter, 0) + ")";
        table.addRow({label, TextTable::fmt(error)});
        csv.writeRow({p.parameter, error});
        if (p.parameter == 0.0)
            step_error = error;
        if (p.parameter == 16.0)
            a16_error = error;
        if (p.parameter == 1.0)
            a1_error = error;
    }
    table.addNote("paper (MNIST): error grows from ~2.35% (a=1) toward "
                  "the step function's ~3.0% as a increases");
    table.print(std::cout);

    const double gap_a1 = std::abs(step_error - a1_error);
    const double gap_a16 = std::abs(step_error - a16_error);
    std::cout << "|error(a) - error(step)|: a=1 -> "
              << TextTable::fmt(gap_a1) << "pp, a=16 -> "
              << TextTable::fmt(gap_a16) << "pp"
              << (gap_a16 <= gap_a1 + 0.3
                      ? "  (converges toward the step function: "
                        "reproduced)"
                      : "  (did NOT converge: inspect budget)")
              << "\n";
    return 0;
}
