/**
 * @file
 * Table 3: accuracy of MLP and SNN on the MNIST-like workload — the
 * paper's central accuracy comparison. Trains SNN+STDP once (evaluated
 * through both the timed SNNwt and the count-based SNNwot forward
 * paths), SNN+BP, and MLP+BP, then prints measured vs published.
 *
 * Knobs: train=N test=N snn_epochs=N (also NEURO_SCALE).
 */

#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/core/reports.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    initParallel(cfg);
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 6000));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 1500));

    core::Workload w = core::makeMnistWorkload(train, test, 1);
    inform("table 3: %zu train / %zu test images",
           w.data.train.size(), w.data.test.size());
    const core::AccuracyResults results =
        core::runAccuracyComparison(w, 77);

    TextTable table("Table 3 (accuracy of MLP and SNN, MNIST-like "
                    "workload)");
    table.setHeader({"Type", "Accuracy (%)", "Paper (%)"});
    table.addRow({"SNN+STDP - LIF (SNNwt)",
                  TextTable::pct(results.snnWt),
                  TextTable::fmt(core::paper::kSnnWtAccuracyPct)});
    table.addRow({"SNN+STDP - Simplified (SNNwot)",
                  TextTable::pct(results.snnWot),
                  TextTable::fmt(core::paper::kSnnWotAccuracyPct)});
    table.addRow({"SNN+BP", TextTable::pct(results.snnBp),
                  TextTable::fmt(core::paper::kSnnBpAccuracyPct)});
    table.addRow({"MLP+BP", TextTable::pct(results.mlpBp),
                  TextTable::fmt(core::paper::kMlpBpAccuracyPct)});
    table.addNote("absolute values differ (synthetic workload, scaled "
                  "training); the ordering and the STDP-vs-BP gap are "
                  "the reproduced result");
    table.print(std::cout);

    CsvWriter csv("bench_table3_accuracy.csv",
                  {"model", "accuracy", "paper_accuracy"});
    csv.writeRow({"snn_wt", TextTable::fmt(results.snnWt * 100.0),
                  TextTable::fmt(core::paper::kSnnWtAccuracyPct)});
    csv.writeRow({"snn_wot", TextTable::fmt(results.snnWot * 100.0),
                  TextTable::fmt(core::paper::kSnnWotAccuracyPct)});
    csv.writeRow({"snn_bp", TextTable::fmt(results.snnBp * 100.0),
                  TextTable::fmt(core::paper::kSnnBpAccuracyPct)});
    csv.writeRow({"mlp_bp", TextTable::fmt(results.mlpBp * 100.0),
                  TextTable::fmt(core::paper::kMlpBpAccuracyPct)});

    const bool ordering_holds = results.mlpBp >= results.snnBp - 0.02 &&
        results.snnBp > results.snnWt - 0.02;
    std::cout << (ordering_holds
                      ? "RESULT: ordering MLP+BP >= SNN+BP > SNN+STDP "
                        "reproduced\n"
                      : "RESULT: ordering NOT reproduced -- inspect "
                        "training budget\n");
    return 0;
}
