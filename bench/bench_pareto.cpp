/**
 * @file
 * Design-space Pareto frontier: every accelerator the library can
 * build for the MNIST topologies, reduced to the area/energy/latency
 * frontier. Shows at a glance the paper's Section 4.3.3 landscape: the
 * folded MLPs populate the low-cost end, the expanded SNN the
 * low-latency end, and the timed SNNwt designs fall off the frontier.
 */

#include <algorithm>
#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/parallel.h"
#include "neuro/common/table.h"
#include "neuro/hw/pareto.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    initParallel(cfg);
    const hw::MlpTopology mlp{784, 100, 10};
    const hw::SnnTopology snn{784, 300};
    hw::EnumerateOptions options;
    options.mlpPools = {25, 50};
    const auto points = hw::enumerateDesigns(mlp, snn, options);
    const auto frontier = hw::paretoFrontier(points);

    TextTable table("design space with Pareto frontier (area / energy "
                    "/ latency)");
    table.setHeader({"Design", "Area (mm2)", "Energy (uJ)",
                     "Latency (us)", "Pareto?"});
    CsvWriter csv("bench_pareto.csv",
                  {"design", "area_mm2", "energy_uj", "latency_us",
                   "on_frontier"});
    std::size_t snnwt_on_frontier = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        const bool on = std::find(frontier.begin(), frontier.end(), i) !=
            frontier.end();
        if (on && p.label.find("SNNwt") != std::string::npos)
            ++snnwt_on_frontier;
        table.addRow({p.label, TextTable::fmt(p.areaMm2),
                      TextTable::fmt(p.energyUj, 3),
                      TextTable::fmt(p.latencyNs / 1000.0, 3),
                      on ? "YES" : ""});
        csv.writeRow({p.label, TextTable::fmt(p.areaMm2),
                      TextTable::fmt(p.energyUj, 3),
                      TextTable::fmt(p.latencyNs / 1000.0, 3),
                      on ? "1" : "0"});
    }
    table.print(std::cout);

    std::cout << "frontier size: " << frontier.size() << " of "
              << points.size() << " designs; cheapest is "
              << points[frontier.front()].label << ", fastest is ";
    std::size_t fastest = frontier.front();
    for (std::size_t idx : frontier) {
        if (points[idx].latencyNs < points[fastest].latencyNs)
            fastest = idx;
    }
    std::cout << points[fastest].label << "\n";
    std::cout << "SNNwt designs on the frontier: " << snnwt_on_frontier
              << " (paper: the timed design is never competitive)\n";
    return 0;
}
