/**
 * @file
 * Closed-loop load generator for the serving runtime (docs/serving.md):
 * trains a small MLP, then replays a fixed request trace against an
 * InferenceServer in two modes —
 *
 *  - single: one request in flight, maxBatch=1 (a classic
 *    request-per-call RPC loop); every request pays the full
 *    submit/dispatch/complete round trip alone;
 *  - batched: a deep closed loop (inflight >> maxBatch) so the
 *    micro-batcher always has a backlog and every dispatcher wakeup
 *    amortizes across a full batch fanned out over the worker pool.
 *
 * Both modes run at 1 and 4 worker threads and report throughput plus
 * p50/p95/p99 latency as a table and bench_serving.csv. End-to-end
 * latency is also decomposed into the pipeline stages tracked by the
 * telemetry layer — queue (admission -> dequeue), batch (dequeue ->
 * compute start) and compute (backend -> completion) — with per-stage
 * percentiles in a second table and in the CSV. The trace is fixed
 * (seeded stream seeds per request id), and the bench aborts if any
 * mode/worker combination disagrees with the first run's predictions
 * — the serving determinism contract, checked end to end.
 *
 * Knobs: requests=N train=N test=N hidden=H batch=B inflight=K
 * threads=a,b quick=1 (also NEURO_SCALE / NEURO_THREADS; set
 * NEURO_METRICS=<path> to export the metric registry at exit,
 * docs/observability.md).
 */

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/mlp/backprop.h"
#include "neuro/mlp/mlp.h"
#include "neuro/serve/backend.h"
#include "neuro/serve/server.h"

namespace {

using namespace neuro;

struct RunResult
{
    double wallS = 0.0;
    uint64_t completed = 0;
    uint64_t batches = 0;
    serve::LatencyHistogram::Summary lat;
    serve::LatencyHistogram::Summary stageQueue;
    serve::LatencyHistogram::Summary stageBatch;
    serve::LatencyHistogram::Summary stageCompute;
    std::vector<int> classes; ///< per-request predictions (trace order).

    double throughput() const
    {
        return wallS > 0.0 ? static_cast<double>(completed) / wallS : 0.0;
    }
};

/** Replay @p requests test-set samples with @p inflight outstanding. */
RunResult
runTrace(const std::shared_ptr<serve::InferenceBackend> &backend,
         const datasets::Dataset &test, uint64_t requests,
         std::size_t maxBatch, std::size_t inflight, uint64_t seed,
         bool traceRequests = false)
{
    // The stage histograms are registry-owned and accumulate across
    // servers; zero them so this run's percentiles are its own.
    serve::InferenceServer::resetStageMetrics();

    serve::ServeConfig sc;
    sc.queueCapacity = inflight + maxBatch; // closed loop never rejects.
    sc.batch.maxBatch = maxBatch;
    sc.batch.maxWaitMicros = 200;
    sc.traceRequests = traceRequests;
    serve::InferenceServer server(backend, sc);

    RunResult out;
    out.classes.assign(requests, -1);
    std::deque<std::future<serve::InferenceResult>> pending;
    auto consumeOne = [&] {
        const serve::InferenceResult r = pending.front().get();
        pending.pop_front();
        NEURO_ASSERT(r.status == serve::RequestStatus::Ok,
                     "closed-loop request %llu was %s",
                     (unsigned long long)r.id,
                     serve::requestStatusName(r.status));
        out.classes[r.id] = r.classIndex;
    };

    // On a full window, block once on a future deep in the queue and
    // then drain the chunk: waiting on the oldest future instead would
    // wake the client at the dispatcher's first set_value and ping-pong
    // the two threads once per request (results complete in submission
    // order, so the deeper future is always the later one).
    const std::size_t drainChunk = inflight > 1 ? inflight / 2 : 1;
    const auto t0 = serve::ServeClock::now();
    for (uint64_t id = 0; id < requests; ++id) {
        serve::InferenceRequest request;
        request.id = id;
        request.pixels = test[id % test.size()].pixels;
        request.streamSeed = deriveStreamSeed(seed, id);
        pending.push_back(server.submit(std::move(request)));
        if (pending.size() >= inflight) {
            pending[drainChunk - 1].wait();
            for (std::size_t k = 0; k < drainChunk; ++k)
                consumeOne();
        }
    }
    while (!pending.empty())
        consumeOne();
    out.wallS = std::chrono::duration<double>(serve::ServeClock::now() -
                                              t0)
                    .count();
    server.stop();
    out.completed = server.counters().completed;
    out.batches = server.counters().batches;
    out.lat = server.latency().summary();
    out.stageQueue = server.stageLatency(serve::Stage::Queue).summary();
    out.stageBatch = server.stageLatency(serve::Stage::Batch).summary();
    out.stageCompute =
        server.stageLatency(serve::Stage::Compute).summary();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const bool quick = cfg.getInt("quick", 0) != 0;
    const auto requests = static_cast<uint64_t>(
        cfg.getInt("requests", quick ? 1500 : 24000));
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 1000));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 400));
    const auto maxBatch =
        static_cast<std::size_t>(cfg.getInt("batch", 256));
    const auto inflight = static_cast<std::size_t>(
        cfg.getInt("inflight", static_cast<long>(4 * maxBatch)));
    // Per-request async spans in the Chrome trace (needs --trace=).
    const bool traceRequests = cfg.getInt("trace_requests", 0) != 0;

    const core::Workload w = core::makeMnistWorkload(train, test, 1);

    // A compact serving model: large enough to classify, small enough
    // that per-request serving overhead is visible next to the math —
    // that is exactly the regime micro-batching exists for.
    mlp::MlpConfig mlpConfig = core::defaultMlpConfig(w);
    mlpConfig.layerSizes = {w.data.train.inputSize(),
                            static_cast<std::size_t>(
                                cfg.getInt("hidden", 32)),
                            static_cast<std::size_t>(
                                w.data.train.numClasses())};
    Rng rng(3);
    mlp::Mlp net(mlpConfig, rng);
    {
        mlp::TrainConfig tc;
        tc.epochs = 1;
        mlp::train(net, w.data.train, tc);
    }
    const std::shared_ptr<serve::InferenceBackend> backend =
        serve::makeMlpBackend(std::move(net));

    std::vector<std::size_t> threadCounts = {1, 4};
    if (cfg.has("threads")) {
        threadCounts.clear();
        const std::string list = cfg.getString("threads", "");
        std::size_t pos = 0;
        while (pos < list.size()) {
            const std::size_t comma = list.find(',', pos);
            const std::string item =
                list.substr(pos, comma == std::string::npos
                                     ? std::string::npos
                                     : comma - pos);
            if (!item.empty())
                threadCounts.push_back(
                    static_cast<std::size_t>(std::stoul(item)));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        NEURO_ASSERT(!threadCounts.empty(), "threads= list is empty");
    }

    inform("serving bench: %llu requests over %zu test images, "
           "mlp %zu-%zu-%zu, batch=%zu inflight=%zu",
           (unsigned long long)requests, w.data.test.size(),
           mlpConfig.layerSizes[0], mlpConfig.layerSizes[1],
           mlpConfig.layerSizes[2], maxBatch, inflight);

    TextTable table("serving throughput: batched vs single-request");
    table.setHeader({"Mode", "Workers", "Req/s", "p50 (us)", "p95 (us)",
                     "p99 (us)", "Speedup"});
    TextTable stageTable(
        "per-stage latency decomposition (serve.stage.*)");
    stageTable.setHeader({"Mode", "Workers", "Stage", "p50 (us)",
                          "p95 (us)", "p99 (us)"});
    CsvWriter csv("bench_serving.csv",
                  {"mode", "workers", "max_batch", "inflight",
                   "requests", "throughput_req_s", "p50_us", "p95_us",
                   "p99_us", "speedup_vs_single", "queue_p50_us",
                   "queue_p95_us", "queue_p99_us", "batch_p50_us",
                   "batch_p95_us", "batch_p99_us", "compute_p50_us",
                   "compute_p95_us", "compute_p99_us"});

    const uint64_t seed = 99;
    std::vector<int> reference;
    double batchedOverSingleAt4 = 0.0;
    for (const std::size_t workers : threadCounts) {
        setParallelThreadCount(workers);
        // Warm-up pass (pool spin-up, page cache) then the timed runs.
        runTrace(backend, w.data.test, std::min<uint64_t>(requests, 256),
                 maxBatch, inflight, seed);
        const RunResult single = runTrace(backend, w.data.test, requests,
                                          1, 1, seed, traceRequests);
        const RunResult batched =
            runTrace(backend, w.data.test, requests, maxBatch, inflight,
                     seed, traceRequests);

        if (reference.empty())
            reference = single.classes;
        for (const RunResult *r : {&single, &batched}) {
            NEURO_ASSERT(r->classes == reference,
                         "serving results diverged from the first run "
                         "at %zu workers",
                         workers);
        }

        const double speedup =
            batched.throughput() / single.throughput();
        if (workers == 4)
            batchedOverSingleAt4 = speedup;
        struct Row
        {
            const char *mode;
            const RunResult *r;
            std::size_t maxBatch;
            std::size_t inflight;
            double speedup;
        };
        const Row rows[] = {{"single", &single, 1, 1, 1.0},
                            {"batched", &batched, maxBatch, inflight,
                             speedup}};
        for (const Row &row : rows) {
            table.addRow(
                {row.mode,
                 TextTable::num(static_cast<long long>(workers)),
                 TextTable::fmt(row.r->throughput(), 1),
                 TextTable::fmt(row.r->lat.p50Us, 0),
                 TextTable::fmt(row.r->lat.p95Us, 0),
                 TextTable::fmt(row.r->lat.p99Us, 0),
                 TextTable::fmt(row.speedup, 2)});
            const std::pair<const char *,
                            const serve::LatencyHistogram::Summary *>
                stages[] = {{"queue", &row.r->stageQueue},
                            {"batch", &row.r->stageBatch},
                            {"compute", &row.r->stageCompute}};
            for (const auto &[stageName, stage] : stages) {
                stageTable.addRow(
                    {row.mode,
                     TextTable::num(static_cast<long long>(workers)),
                     stageName, TextTable::fmt(stage->p50Us, 0),
                     TextTable::fmt(stage->p95Us, 0),
                     TextTable::fmt(stage->p99Us, 0)});
            }
            csv.writeRow(std::vector<std::string>{
                row.mode, std::to_string(workers),
                std::to_string(row.maxBatch),
                std::to_string(row.inflight),
                std::to_string(requests),
                TextTable::fmt(row.r->throughput(), 1),
                TextTable::fmt(row.r->lat.p50Us, 0),
                TextTable::fmt(row.r->lat.p95Us, 0),
                TextTable::fmt(row.r->lat.p99Us, 0),
                TextTable::fmt(row.speedup, 2),
                TextTable::fmt(row.r->stageQueue.p50Us, 0),
                TextTable::fmt(row.r->stageQueue.p95Us, 0),
                TextTable::fmt(row.r->stageQueue.p99Us, 0),
                TextTable::fmt(row.r->stageBatch.p50Us, 0),
                TextTable::fmt(row.r->stageBatch.p95Us, 0),
                TextTable::fmt(row.r->stageBatch.p99Us, 0),
                TextTable::fmt(row.r->stageCompute.p50Us, 0),
                TextTable::fmt(row.r->stageCompute.p95Us, 0),
                TextTable::fmt(row.r->stageCompute.p99Us, 0)});
        }
    }
    setParallelThreadCount(1);

    table.addNote("single = maxBatch 1, one request in flight; batched "
                  "= deep closed loop, dispatcher amortized per batch");
    table.addNote("identical predictions across every mode and worker "
                  "count (fixed trace, per-request stream seeds)");
    table.print(std::cout);
    stageTable.addNote("queue + batch + compute ~= end-to-end latency "
                       "(per-request, docs/observability.md)");
    stageTable.print(std::cout);
    std::cout << "RESULT: batched/single speedup at 4 workers = "
              << TextTable::fmt(batchedOverSingleAt4, 2) << "x\n";
    return 0;
}
