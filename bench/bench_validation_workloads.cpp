/**
 * @file
 * Section 4.5: validation on additional workloads — the MPEG-7-like
 * object-recognition task (MLP 28x28-15-10 vs SNN 28x28-90) and the
 * Spoken-Arabic-Digits-like task (MLP 13x13-60-10 vs SNN 13x13-90),
 * with both accuracy and the folded-hardware area/energy ratios.
 * Includes the homeostasis ablation (paper: ~5% of SNN accuracy).
 */

#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/core/compare.h"
#include "neuro/core/experiment.h"
#include "neuro/core/reports.h"

namespace {

void
runWorkload(const neuro::core::Workload &w, double paper_mlp_pct,
            double paper_snn_pct)
{
    using namespace neuro;
    // MLP at the paper's topology for this workload.
    mlp::TrainConfig train = core::defaultMlpTrainConfig();
    const double mlp_acc = mlp::trainAndEvaluate(
        core::defaultMlpConfig(w), train, w.data.train, w.data.test, 42);

    // SNN+STDP at the paper's topology.
    const snn::SnnConfig config =
        core::defaultSnnConfig(w, w.data.train.size());
    snn::SnnTrainConfig snn_train;
    snn_train.epochs = scaled(3, 1);
    const double snn_acc = snn::trainAndEvaluateStdp(
        config, snn_train, w.data.train, w.data.test, snn::EvalMode::Wt,
        7);

    // Homeostasis ablation.
    snn::SnnConfig no_homeo = config;
    no_homeo.homeostasis.enabled = false;
    const double ablated_acc = snn::trainAndEvaluateStdp(
        no_homeo, snn_train, w.data.train, w.data.test,
        snn::EvalMode::Wt, 7);

    TextTable table("Section 4.5 (" + w.name + ")");
    table.setHeader({"Model", "Topology", "Accuracy (%)", "Paper (%)"});
    table.addRow({"MLP+BP",
                  std::to_string(w.mlpTopo.inputs) + "-" +
                      std::to_string(w.mlpTopo.hidden) + "-" +
                      std::to_string(w.mlpTopo.outputs),
                  TextTable::pct(mlp_acc),
                  TextTable::fmt(paper_mlp_pct)});
    table.addRow({"SNN+STDP",
                  std::to_string(w.snnTopo.inputs) + "-" +
                      std::to_string(w.snnTopo.neurons),
                  TextTable::pct(snn_acc),
                  TextTable::fmt(paper_snn_pct)});
    table.addRow({"SNN+STDP (no homeostasis)", "ablation",
                  TextTable::pct(ablated_acc), "-"});
    table.print(std::cout);

    const auto ratios =
        core::foldedCostRatios(w.mlpTopo, w.snnTopo, {1, 4, 8, 16});
    std::cout << "folded SNNwot / MLP cost ratios for " << w.name
              << ":\n";
    for (const auto &r : ratios) {
        std::cout << "  ni=" << r.ni << ": area "
                  << TextTable::fmt(r.areaRatio) << "x, energy "
                  << TextTable::fmt(r.energyRatio) << "x\n";
    }
    std::cout << (mlp_acc > snn_acc
                      ? "RESULT: MLP wins accuracy on " + w.name +
                            " (reproduced)\n\n"
                      : "RESULT: SNN unexpectedly won on " + w.name +
                            "\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);

    const core::Workload mpeg7 = core::makeMpeg7Workload(
        static_cast<std::size_t>(cfg.getInt("train", 3000)),
        static_cast<std::size_t>(cfg.getInt("test", 800)), 2);
    runWorkload(mpeg7, core::paper::kMpeg7MlpAccuracyPct,
                core::paper::kMpeg7SnnAccuracyPct);

    const core::Workload sad = core::makeSadWorkload(
        static_cast<std::size_t>(cfg.getInt("train", 3000)),
        static_cast<std::size_t>(cfg.getInt("test", 800)), 3);
    runWorkload(sad, core::paper::kSadMlpAccuracyPct,
                core::paper::kSadSnnAccuracyPct);

    std::cout << "paper's conclusion across workloads: SNN achieves "
                 "lower accuracy and higher folded cost than MLP "
                 "(MPEG-7: 3.81x-5.57x area; SAD: 1.27x-1.31x area)\n";
    return 0;
}
