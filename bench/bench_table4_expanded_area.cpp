/**
 * @file
 * Table 4: spatially expanded SNN vs MLP — per-operator breakdown and
 * totals, plus the Section 4.2.3 iso-accuracy observation (the 15-hidden
 * MLP variant).
 */

#include <iostream>

#include "neuro/common/table.h"
#include "neuro/core/reports.h"
#include "neuro/hw/expanded.h"

namespace {

void
addDesignRows(neuro::TextTable &table, const char *network,
              const neuro::hw::Design &design, double paper_no_sram,
              double paper_total)
{
    using neuro::TextTable;
    bool first = true;
    for (const auto &group : design.groups()) {
        table.addRow({first ? network : "", group.spec.name,
                      TextTable::fmt(group.spec.areaUm2, 0),
                      TextTable::num(static_cast<long long>(group.count)),
                      TextTable::fmt(group.totalAreaUm2() / 1e6, 2)});
        first = false;
    }
    table.addRow({"", "total w/o SRAM", "", "",
                  neuro::core::vsPaper(design.areaNoSramMm2(),
                                       paper_no_sram)});
    table.addRow({"", "SRAM", "", "",
                  TextTable::fmt(design.sramAreaMm2(), 2)});
    table.addRow({"", "total", "", "",
                  neuro::core::vsPaper(design.totalAreaMm2(),
                                       paper_total)});
    table.addSeparator();
}

} // namespace

int
main()
{
    using namespace neuro;
    namespace paper = core::paper;

    const hw::SnnTopology snn{784, 300};
    const hw::MlpTopology mlp{784, 100, 10};
    hw::MlpTopology mlp15 = mlp;
    mlp15.hidden = 15;

    TextTable table("Table 4 (spatially expanded SNN vs MLP)");
    table.setHeader({"Network", "Operator", "Area/op (um2)", "# ops",
                     "Cost (mm2)"});
    addDesignRows(table, "SNNwot (28x28-300)",
                  hw::buildExpandedSnnWot(snn),
                  paper::kExpandedSnnWotNoSramMm2,
                  paper::kExpandedSnnWotTotalMm2);
    addDesignRows(table, "SNNwt (28x28-300)",
                  hw::buildExpandedSnnWt(snn),
                  paper::kExpandedSnnWtNoSramMm2,
                  paper::kExpandedSnnWtTotalMm2);
    addDesignRows(table, "MLP (28x28-100-10)",
                  hw::buildExpandedMlp(mlp),
                  paper::kExpandedMlpNoSramMm2,
                  paper::kExpandedMlpTotalMm2);
    addDesignRows(table, "MLP (28x28-15-10)",
                  hw::buildExpandedMlp(mlp15),
                  paper::kExpandedMlp15NoSramMm2,
                  paper::kExpandedMlp15TotalMm2);
    table.addNote("expanded MLP is ~1.7x the SNN area (multipliers "
                  "dominate); at iso-accuracy (15 hidden) the MLP is "
                  "~3-4x smaller than the SNN");
    table.print(std::cout);

    const double mlp_over_snn =
        hw::buildExpandedMlp(mlp).totalAreaMm2() /
        hw::buildExpandedSnnWot(snn).totalAreaMm2();
    std::cout << "expanded MLP / SNNwot area ratio: "
              << TextTable::fmt(mlp_over_snn) << "x (paper: "
              << TextTable::fmt(79.63 / 46.06) << "x)\n";
    return 0;
}
