/**
 * @file
 * Table 9: hardware features of the SNN with online learning — the
 * folded SNNwt augmented with the per-neuron STDP circuit (Figures 12
 * and 13), and the resulting overhead ratios the paper's conclusion
 * rests on ("the hardware overhead of implementing STDP is quite
 * small").
 */

#include <iostream>

#include "neuro/common/table.h"
#include "neuro/core/reports.h"
#include "neuro/hw/stdp_hw.h"

int
main()
{
    using namespace neuro;
    namespace paper = core::paper;

    const hw::SnnTopology snn{784, 300};

    TextTable table("Table 9 (SNN with online learning / STDP)");
    table.setHeader({"ni", "Area noSRAM (mm2)", "Total area (mm2)",
                     "Delay (ns)", "Energy (mJ)"});
    for (const auto &pub : paper::kTable9) {
        const hw::Design design = hw::buildFoldedSnnStdp(snn, pub.ni);
        table.addRow(
            {TextTable::num(static_cast<long long>(pub.ni)),
             core::vsPaper(design.areaNoSramMm2(), pub.areaNoSramMm2),
             core::vsPaper(design.totalAreaMm2(), pub.totalAreaMm2),
             core::vsPaper(design.clockNs(), pub.delayNs),
             core::vsPaper(design.totalEnergyPerImageUj() / 1000.0,
                           pub.energyMj)});
    }
    table.print(std::cout);

    std::cout << "\noverhead vs inference-only SNNwt (paper: area "
                 "1.34x-1.93x, delay <= +7%, energy 1.02x-1.50x):\n";
    for (std::size_t ni : {1UL, 4UL, 8UL, 16UL}) {
        const hw::StdpOverhead o = hw::stdpOverhead(snn, ni);
        std::cout << "  ni=" << ni << ": area "
                  << TextTable::fmt(o.areaRatio) << "x, delay "
                  << TextTable::fmt(o.delayRatio) << "x, energy "
                  << TextTable::fmt(o.energyRatio) << "x\n";
    }
    std::cout << "\nconclusion check: STDP adds well under one SNNwt of "
                 "area -- online learning is cheap where it is needed.\n";
    return 0;
}
