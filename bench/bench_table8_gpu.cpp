/**
 * @file
 * Table 8: speedups and energy benefits over a GPU (NVIDIA K20M,
 * CUBLAS sgemv implementations). Accelerator times/energies come from
 * the Table 7 designs; the GPU side from the calibrated launch/transfer
 * roofline model.
 */

#include <iostream>

#include "neuro/common/table.h"
#include "neuro/core/reports.h"
#include "neuro/gpu/gpu_model.h"
#include "neuro/hw/folded.h"

namespace {

struct AccelPoints
{
    neuro::hw::Design ni1;
    neuro::hw::Design ni16;
    neuro::hw::Design expanded;
};

void
addRows(neuro::TextTable &table, const char *name,
        const neuro::gpu::GpuCost &gpu, const AccelPoints &accel,
        const neuro::core::paper::Table8Row &pub)
{
    using neuro::TextTable;
    const double gpu_ns = gpu.timeUs * 1000.0;
    auto speed = [&](const neuro::hw::Design &d) {
        return gpu_ns / d.timePerImageNs();
    };
    auto energy = [&](const neuro::hw::Design &d) {
        return gpu.energyUj / d.totalEnergyPerImageUj();
    };
    table.addRow({name, "speedup",
                  neuro::core::vsPaper(speed(accel.ni1), pub.speedupNi1),
                  neuro::core::vsPaper(speed(accel.ni16),
                                       pub.speedupNi16),
                  neuro::core::vsPaper(speed(accel.expanded),
                                       pub.speedupExpanded)});
    table.addRow({name, "energy benefit",
                  neuro::core::vsPaper(energy(accel.ni1), pub.energyNi1),
                  neuro::core::vsPaper(energy(accel.ni16),
                                       pub.energyNi16),
                  neuro::core::vsPaper(energy(accel.expanded),
                                       pub.energyExpanded)});
    table.addSeparator();
}

} // namespace

int
main()
{
    using namespace neuro;
    namespace paper = core::paper;

    const hw::MlpTopology mlp{784, 100, 10};
    const hw::SnnTopology snn{784, 300};
    const gpu::GpuParams params;

    const gpu::GpuCost gpu_wot =
        gpu::evaluate(params, gpu::snnWotWorkload(784, 300));
    const gpu::GpuCost gpu_wt =
        gpu::evaluate(params, gpu::snnWtWorkload(784, 300, 500));
    const gpu::GpuCost gpu_mlp =
        gpu::evaluate(params, gpu::mlpWorkload(784, 100, 10));

    std::cout << "GPU (" << params.name << ") per-image model: SNNwot "
              << TextTable::fmt(gpu_wot.timeUs, 1) << " us, SNNwt "
              << TextTable::fmt(gpu_wt.timeUs, 1) << " us, MLP "
              << TextTable::fmt(gpu_mlp.timeUs, 1) << " us\n\n";

    TextTable table("Table 8 (speedups and energy benefits over GPU)");
    table.setHeader({"Network", "Metric", "ni=1", "ni=16", "expanded"});
    addRows(table, "SNNwot", gpu_wot,
            {hw::buildFoldedSnnWot(snn, 1), hw::buildFoldedSnnWot(snn, 16),
             hw::buildExpandedSnnWot(snn)},
            paper::kTable8[0]);
    addRows(table, "SNNwt", gpu_wt,
            {hw::buildFoldedSnnWt(snn, 1), hw::buildFoldedSnnWt(snn, 16),
             hw::buildExpandedSnnWt(snn)},
            paper::kTable8[1]);
    addRows(table, "MLP", gpu_mlp,
            {hw::buildFoldedMlp(mlp, 1), hw::buildFoldedMlp(mlp, 16),
             hw::buildExpandedMlp(mlp)},
            paper::kTable8[2]);
    table.addNote("shape to reproduce: accelerators beat the GPU by "
                  "1-4 orders of magnitude EXCEPT folded SNNwt at small "
                  "ni, which loses (paper 0.12x)");
    table.print(std::cout);
    return 0;
}
