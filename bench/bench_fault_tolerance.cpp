/**
 * @file
 * Fault-tolerance sweep: stuck-at and bit-flip faults injected into the
 * quantized synaptic storage of both accelerators. Graceful degradation
 * under defects is the founding premise of the hardware-NN accelerator
 * line the paper extends (Temam, ISCA 2012 [6]); this bench quantifies
 * it for the MLP and SNNwot datapaths side by side.
 *
 * Knobs: train=N test=N (and NEURO_SCALE).
 */

#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/csv.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/core/faults.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 2500));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 600));

    core::Workload w = core::makeMnistWorkload(train, test, 1);
    const std::vector<double> rates = {0.0, 0.005, 0.02, 0.05, 0.10,
                                       0.20};

    // Train both models once.
    mlp::TrainConfig mlp_train = core::defaultMlpTrainConfig();
    Rng rng(42);
    mlp::Mlp mlp_net(core::defaultMlpConfig(w), rng);
    mlp::train(mlp_net, w.data.train, mlp_train);

    snn::SnnConfig snn_config =
        core::defaultSnnConfig(w, w.data.train.size());
    Rng snn_rng(7);
    snn::SnnNetwork snn_net(snn_config, snn_rng);
    snn::SnnStdpTrainer trainer(snn_config);
    snn::SnnTrainConfig snn_train;
    snn_train.epochs = scaled(3, 1);
    trainer.train(snn_net, w.data.train, snn_train);
    const auto labels = trainer.labelNeurons(
        snn_net, w.data.train, snn::EvalMode::Wot, 8);

    TextTable table("synaptic-fault tolerance (accuracy under faulted "
                    "weights)");
    table.setHeader({"Fault model", "Rate", "MLP accuracy",
                     "SNNwot accuracy"});
    CsvWriter csv("bench_fault_tolerance.csv",
                  {"model", "rate", "mlp_acc_pct", "snn_acc_pct"});
    for (core::FaultModel model :
         {core::FaultModel::StuckAtZero, core::FaultModel::StuckAtOne,
          core::FaultModel::BitFlip}) {
        const auto mlp_points =
            core::mlpFaultSweep(mlp_net, w.data.test, rates, model, 11);
        const auto snn_points = core::snnFaultSweep(
            snn_net, labels, w.data.test, rates, model, 13);
        for (std::size_t i = 0; i < rates.size(); ++i) {
            table.addRow({i == 0 ? core::faultModelName(model) : "",
                          TextTable::pct(rates[i], 1),
                          TextTable::pct(mlp_points[i].accuracy),
                          TextTable::pct(snn_points[i].accuracy)});
            csv.writeRow({core::faultModelName(model),
                          TextTable::fmt(rates[i], 3),
                          TextTable::fmt(mlp_points[i].accuracy * 100.0),
                          TextTable::fmt(snn_points[i].accuracy *
                                         100.0)});
        }
        table.addSeparator();
    }
    table.addNote("both datapaths degrade gracefully at low fault "
                  "rates; stuck-at-1 is the most damaging model (it "
                  "saturates the weight)");
    table.print(std::cout);
    return 0;
}
