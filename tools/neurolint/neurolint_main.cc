/**
 * @file
 * neurolint CLI: walk source trees, run the project rules, report.
 *
 *   neurolint --check <path>... [--baseline=<file>] [--self-sufficiency]
 *             [--include-root=<dir>] [--write-baseline=<file>] [--verbose]
 *   neurolint --list-rules
 *
 * Paths may be files or directories; directories are walked for
 * .h/.hpp/.cc/.cpp/.cxx files, skipping build trees, .git and any
 * directory named `fixtures` (the checked-in known-bad snippets —
 * lint them by naming the file explicitly, as the ctest gate does).
 *
 * Exit status: 0 clean (baselined findings are reported but do not
 * fail), 1 findings, 2 usage or I/O error.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "neurolint/rules.h"

namespace fs = std::filesystem;
using neurolint::Finding;

namespace {

const char *const kRuleHelp =
    "R1  rand          no rand()/srand()/std::random_device outside "
    "common/rng.*\n"
    "R2  rng-stream    per-index Rng(deriveStreamSeed(...)) inside "
    "parallelFor/parallelForRange/parallelMap\n"
    "R3  io            no std::cout/std::cerr outside common/logging, "
    "tools/, bench/, examples/\n"
    "R4  pragma-once   headers carry #pragma once; with "
    "--self-sufficiency they also compile standalone\n"
    "R5  ordered-sum   loops tagged `// neurolint: ordered-sum` "
    "accumulate in double only\n"
    "R6  raw-mutex     no raw std::mutex/std::condition_variable in "
    "library code — use neuro::Mutex/CondVar (common/mutex.h)\n"
    "R7  manual-lock   no naked .lock()/.unlock()/.try_lock() — scope "
    "critical sections with MutexGuard\n"
    "R8  atomic-order  every std::atomic load/store/RMW passes an "
    "explicit std::memory_order\n";

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" ||
           ext == ".cpp" || ext == ".cxx";
}

bool
skippedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name == ".git" || name == "fixtures" ||
           name.rfind("build", 0) == 0 ||
           name.rfind("cmake-build", 0) == 0;
}

void
collectFiles(const fs::path &root, std::vector<std::string> &files)
{
    if (fs::is_regular_file(root)) {
        files.push_back(root.string());
        return;
    }
    fs::recursive_directory_iterator it(root), end;
    for (; it != end; ++it) {
        if (it->is_directory() && skippedDir(it->path())) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() && lintableExtension(it->path()))
            files.push_back(it->path().string());
    }
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

/** Headers under src/neuro compile against the directory that holds
 *  `neuro/`; derive it from the header's own path. */
std::string
includeRootFor(const std::string &header, const std::string &override)
{
    if (!override.empty())
        return override;
    const std::size_t at = header.rfind("/neuro/");
    return at == std::string::npos ? "." : header.substr(0, at);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    std::string baselinePath;
    std::string writeBaselinePath;
    std::string includeRoot;
    bool selfSufficiency = false;
    bool verbose = false;
    bool check = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) {
            return arg.substr(std::string(prefix).size());
        };
        if (arg == "--check") {
            check = true;
        } else if (arg == "--list-rules") {
            std::cout << kRuleHelp;
            return 0;
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baselinePath = value("--baseline=");
        } else if (arg.rfind("--write-baseline=", 0) == 0) {
            writeBaselinePath = value("--write-baseline=");
        } else if (arg.rfind("--include-root=", 0) == 0) {
            includeRoot = value("--include-root=");
        } else if (arg == "--self-sufficiency") {
            selfSufficiency = true;
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "neurolint: unknown option " << arg << "\n";
            return 2;
        } else {
            roots.push_back(arg);
        }
    }
    if (!check || roots.empty()) {
        std::cerr << "usage: neurolint --check <path>... "
                     "[--baseline=<file>] [--self-sufficiency]\n"
                     "                 [--include-root=<dir>] "
                     "[--write-baseline=<file>] [--verbose]\n"
                     "       neurolint --list-rules\n";
        return 2;
    }

    std::vector<std::string> files;
    for (const std::string &root : roots) {
        if (!fs::exists(root)) {
            std::cerr << "neurolint: no such path: " << root << "\n";
            return 2;
        }
        collectFiles(root, files);
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<Finding> findings;
    for (const std::string &file : files) {
        std::string content;
        if (!readFile(file, content)) {
            std::cerr << "neurolint: cannot read " << file << "\n";
            return 2;
        }
        std::vector<Finding> perFile =
            neurolint::lintSource(file, content);
        if (selfSufficiency &&
            file.find("/neuro/") != std::string::npos &&
            (file.size() > 2 &&
             file.compare(file.size() - 2, 2, ".h") == 0)) {
            std::vector<Finding> self = neurolint::checkSelfSufficient(
                file, includeRootFor(file, includeRoot));
            perFile.insert(perFile.end(), self.begin(), self.end());
        }
        findings.insert(findings.end(), perFile.begin(), perFile.end());
    }

    if (!baselinePath.empty())
        neurolint::applyBaseline(findings,
                                 neurolint::loadBaseline(baselinePath));

    if (!writeBaselinePath.empty()) {
        std::set<std::string> keys;
        for (const Finding &f : findings)
            keys.insert(neurolint::baselineKey(f));
        std::ofstream out(writeBaselinePath);
        out << "# neurolint baseline: `<rule> <path>` per line. "
               "Entries downgrade existing\n"
               "# findings so the gate ratchets; remove a line once "
               "its debt is paid.\n";
        for (const std::string &key : keys)
            out << key << "\n";
        std::cout << "neurolint: wrote " << keys.size()
                  << " baseline entries to " << writeBaselinePath
                  << "\n";
        return 0;
    }

    std::size_t live = 0;
    for (const Finding &f : findings) {
        if (f.baselined && !verbose)
            continue;
        std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message
                  << (f.baselined ? " (baselined)" : "") << "\n";
    }
    for (const Finding &f : findings)
        live += f.baselined ? 0 : 1;

    if (verbose || live > 0) {
        std::cerr << "neurolint: " << files.size() << " files, " << live
                  << " finding" << (live == 1 ? "" : "s")
                  << (findings.size() > live
                          ? " (+" +
                                std::to_string(findings.size() - live) +
                                " baselined)"
                          : "")
                  << "\n";
    }
    return live > 0 ? 1 : 0;
}
