#include "neurolint/lexer.h"

#include <cctype>
#include <cstddef>

namespace neurolint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

std::vector<Token>
tokenize(const std::string &src)
{
    std::vector<Token> toks;
    const std::size_t n = src.size();
    std::size_t i = 0;
    int line = 1;

    auto advance = [&](std::size_t count) {
        for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
            if (src[i] == '\n')
                ++line;
        }
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
            advance(1);
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const int at = line;
            std::size_t j = i + 2;
            while (j < n && src[j] != '\n')
                ++j;
            toks.push_back({TokKind::Comment,
                            src.substr(i + 2, j - i - 2), at});
            advance(j - i);
            continue;
        }

        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const int at = line;
            std::size_t j = i + 2;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/'))
                ++j;
            const std::size_t end = (j + 1 < n) ? j + 2 : n;
            toks.push_back({TokKind::Comment,
                            src.substr(i + 2, j - i - 2), at});
            advance(end - i);
            continue;
        }

        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            const int at = line;
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && src[j] != '(')
                delim += src[j++];
            const std::string close = ")" + delim + "\"";
            const std::size_t body = (j < n) ? j + 1 : n;
            const std::size_t end = src.find(close, body);
            const std::size_t stop =
                (end == std::string::npos) ? n : end;
            toks.push_back({TokKind::String,
                            src.substr(body, stop - body), at});
            const std::size_t total =
                (end == std::string::npos) ? n : end + close.size();
            advance(total - i);
            continue;
        }

        // String literal.
        if (c == '"') {
            const int at = line;
            std::size_t j = i + 1;
            while (j < n && src[j] != '"') {
                if (src[j] == '\\' && j + 1 < n)
                    ++j;
                ++j;
            }
            toks.push_back({TokKind::String,
                            src.substr(i + 1, j - i - 1), at});
            advance((j < n ? j + 1 : n) - i);
            continue;
        }

        // Char literal. Distinguish from digit separators (1'000) by
        // requiring the previous token not to be a number, and from
        // the rare `operator'` cases we don't care about.
        if (c == '\'' &&
            (toks.empty() || toks.back().kind != TokKind::Number)) {
            const int at = line;
            std::size_t j = i + 1;
            while (j < n && src[j] != '\'') {
                if (src[j] == '\\' && j + 1 < n)
                    ++j;
                ++j;
            }
            toks.push_back({TokKind::CharLit,
                            src.substr(i + 1, j - i - 1), at});
            advance((j < n ? j + 1 : n) - i);
            continue;
        }

        // Identifier or keyword.
        if (isIdentStart(c)) {
            std::size_t j = i + 1;
            while (j < n && isIdentChar(src[j]))
                ++j;
            toks.push_back({TokKind::Identifier,
                            src.substr(i, j - i), line});
            advance(j - i);
            continue;
        }

        // pp-number (digits, dots, exponents, suffixes, separators).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            std::size_t j = i + 1;
            while (j < n &&
                   (isIdentChar(src[j]) || src[j] == '.' ||
                    src[j] == '\'' ||
                    ((src[j] == '+' || src[j] == '-') &&
                     (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                      src[j - 1] == 'p' || src[j - 1] == 'P')))) {
                ++j;
            }
            toks.push_back({TokKind::Number,
                            src.substr(i, j - i), line});
            advance(j - i);
            continue;
        }

        toks.push_back({TokKind::Punct, std::string(1, c), line});
        advance(1);
    }
    return toks;
}

} // namespace neurolint
