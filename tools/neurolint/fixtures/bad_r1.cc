// Known-bad fixture for R1: raw libc / std randomness in library code.
// The neurolint ctest gate asserts this file FAILS the lint.
#include <cstdlib>
#include <random>

int
weightJitter()
{
    srand(42);                       // R1: seeds the shared libc stream
    std::random_device entropy;      // R1: nondeterministic source
    return rand() % 7 + static_cast<int>(entropy());
}
