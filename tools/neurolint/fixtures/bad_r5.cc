// Known-bad fixture for R5: float accumulation inside a loop tagged
// as an ordered (bit-identical) sum. The neurolint ctest gate asserts
// this file FAILS the lint.
#include <cstddef>

double
synapticDrive(const float *row, const unsigned short *spikes,
              std::size_t count)
{
    float drive = 0.0f;
    // neurolint: ordered-sum
    for (std::size_t s = 0; s < count; ++s) {
        drive += row[spikes[s]];             // R5: float accumulator
        drive += static_cast<float>(s) * 0;  // R5: float cast mid-sum
    }
    return drive;
}
