// Known-bad fixture for R3: direct console I/O from library code.
// (Paths under fixtures/ never get the tools//bench/ exemption — the
// snippets stand in for library code. The lint gate passes this file
// to neurolint explicitly and asserts the lint FAILS.)
#include <iostream>

void
reportProgress(int epoch)
{
    std::cout << "epoch " << epoch << "\n"; // R3: bypasses logging
    if (epoch < 0)
        std::cerr << "bad epoch\n";         // R3: bypasses warn()
}
