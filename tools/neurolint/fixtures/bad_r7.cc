// Known-bad fixture for R7: manual lock()/unlock() pairs instead of a
// scoped MutexGuard — an early return or exception between the two
// calls leaks the mutex. The neurolint ctest gate asserts this file
// FAILS the lint.
#include "neuro/common/mutex.h"

namespace neuro {

class WeightTable
{
  public:
    double
    read(int row)
    {
        mutex_.lock();               // R7: naked acquire
        const double w = weights_[row % 4];
        mutex_.unlock();             // R7: naked release
        return w;
    }

  private:
    Mutex mutex_;
    double weights_[4] NEURO_GUARDED_BY(mutex_) = {};
};

} // namespace neuro
