// Known-bad fixture for R8: atomic operations relying on the implicit
// seq_cst default instead of spelling the intended memory_order. The
// neurolint ctest gate asserts this file FAILS the lint.
#include <atomic>
#include <cstdint>

class SpikeCounter
{
  public:
    void
    record()
    {
        fired_.fetch_add(1);         // R8: order not spelled
        active_.store(true);         // R8: order not spelled
    }

    uint64_t
    total() const
    {
        if (!active_.load())         // R8: order not spelled
            return 0;
        return fired_.load(std::memory_order_relaxed); // ok: explicit
    }

  private:
    std::atomic<uint64_t> fired_{0};
    std::atomic<bool> active_{false};
};
