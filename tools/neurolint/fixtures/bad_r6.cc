// Known-bad fixture for R6: raw standard mutex types in library code
// instead of the annotated neuro::Mutex/CondVar wrappers. The
// neurolint ctest gate asserts this file FAILS the lint.
#include <condition_variable>
#include <mutex>
#include <queue>

class SpikeMailbox
{
  public:
    void
    post(int spike)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        inbox_.push(spike);
        nonEmpty_.notify_one();
    }

  private:
    std::mutex mutex_;               // R6: invisible to -Wthread-safety
    std::condition_variable nonEmpty_; // R6: raw CV, use CondVar
    std::queue<int> inbox_;
};
