// Known-bad fixture for R2: shared / underived Rng streams inside the
// data-parallel primitives. Every variant here makes results depend on
// chunk scheduling. The neurolint ctest gate asserts this file FAILS.
#include <cstddef>
#include <vector>

struct Rng { explicit Rng(unsigned long long seed); double uniform(); };
void parallelFor(std::size_t b, std::size_t e, const auto &fn);
void parallelMap(std::size_t n, const auto &fn);

void
noisyEval(std::vector<double> &out, unsigned long long seed)
{
    Rng shared(seed);
    parallelFor(0, out.size(), [&](std::size_t i) {
        Rng &r = shared;             // R2: one generator across indices
        out[i] = r.uniform();
    });
    parallelMap(out.size(), [&](std::size_t i) {
        Rng local(seed + i);         // R2: seed not via deriveStreamSeed
        Rng *heap = new Rng(seed);   // R2: raw new Rng in parallel region
        out[i] = local.uniform() + heap->uniform();
    });
}
