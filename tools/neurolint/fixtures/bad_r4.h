// Known-bad fixture for R4: a header with a classic include guard but
// no #pragma once. The neurolint ctest gate asserts this FAILS.
#ifndef NEUROLINT_FIXTURE_BAD_R4_H
#define NEUROLINT_FIXTURE_BAD_R4_H

int fixtureValue();

#endif // NEUROLINT_FIXTURE_BAD_R4_H
