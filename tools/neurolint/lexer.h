/**
 * @file
 * Lightweight C++ tokenizer for the neurolint project linter.
 *
 * This is not a compiler front end: it splits a translation unit into
 * just enough token structure for the rule engine to reason about
 * identifiers, call sites and brace/paren extents without being fooled
 * by string literals or comments. Comments are kept as tokens because
 * neurolint's suppression (`// neurolint: allow(R3)`) and tagging
 * (`// neurolint: ordered-sum`) directives live inside them.
 *
 * Handled: line and block comments, string literals with escapes, raw
 * string literals, char literals, pp-numbers, identifiers, and
 * punctuation (multi-character operators are split into single chars;
 * the rules only ever look at `::`, `->`, `+=` and friends via small
 * adjacent-token matches, so this keeps the lexer tiny).
 */

#pragma once

#include <string>
#include <vector>

namespace neurolint {

enum class TokKind {
    Identifier, // keywords included; rules match on spelling
    Number,
    String,     // text is the literal contents, quotes stripped
    CharLit,
    Punct,      // single punctuation character
    Comment,    // text is the comment body without // or /* */
};

struct Token
{
    TokKind kind;
    std::string text;
    int line; // 1-based line of the token's first character
};

/** Tokenize a whole source buffer. Never fails: unterminated literals
 *  are closed at end of input so the rules still see a best-effort
 *  stream. */
std::vector<Token> tokenize(const std::string &src);

} // namespace neurolint
