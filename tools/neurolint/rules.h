/**
 * @file
 * neurolint rule engine: project-specific correctness rules that no
 * compiler checks. The rules encode the invariants the parallel and
 * event-driven subsystems rely on (see docs/static_analysis.md):
 *
 *  - R1 `rand`:        no rand()/srand()/std::random_device outside
 *                      common/rng.* — all randomness flows through the
 *                      deterministic neuro::Rng streams.
 *  - R2 `rng-stream`:  no raw `new Rng` and no Rng construction or
 *                      Rng& sharing inside parallelFor / parallelForRange
 *                      / parallelMap lambdas unless the seed derives via
 *                      deriveStreamSeed() — per-sample streams are what
 *                      keep results bit-identical at any thread count.
 *  - R3 `io`:          no std::cout/std::cerr outside common/logging.*,
 *                      the CLI (tools/), benches and examples — library
 *                      code reports through logging/stats/trace sinks.
 *  - R4 `pragma-once`: every header has #pragma once; with
 *                      --self-sufficiency each header under src/neuro
 *                      must also compile standalone.
 *  - R5 `ordered-sum`: loops tagged `// neurolint: ordered-sum` must
 *                      accumulate in double only — no float accumulators
 *                      or float casts mid-sum, which would break the
 *                      dense/event bit-identical contract.
 *  - R6 `raw-mutex`:   no raw std::mutex / std::shared_mutex /
 *                      std::condition_variable in library code — use
 *                      the annotated neuro::Mutex/CondVar wrappers
 *                      (common/mutex.h) that Clang -Wthread-safety
 *                      understands. Tests/benches/examples/tools are
 *                      exempt.
 *  - R7 `manual-lock`: no naked .lock()/.unlock()/.try_lock() member
 *                      calls outside the wrapper — critical sections
 *                      are scoped with MutexGuard (RAII).
 *  - R8 `atomic-order`: every std::atomic load/store/RMW passes an
 *                      explicit std::memory_order (relaxed for
 *                      counters, acquire/release for publication);
 *                      bare seq_cst defaults hide the contract.
 *
 * Suppression: `// neurolint: allow(R1)` (or a comma list) on the same
 * or the preceding line silences those rules for that line. A baseline
 * file of `<rule> <path-suffix>` entries downgrades pre-existing
 * findings so the gate starts green and ratchets.
 */

#pragma once

#include <set>
#include <string>
#include <vector>

namespace neurolint {

struct Finding
{
    std::string rule;    // "R1".."R8"
    std::string file;
    int line;
    std::string message;
    bool baselined = false;
};

/** Run all token-level rules (R1-R8 minus self-sufficiency) over one
 *  source buffer. `path` drives the per-file exemptions. */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content);

/** R4b: compile `header` standalone (`$CXX -fsyntax-only`) against
 *  `includeRoot`; returns a finding on failure. Requires a compiler on
 *  PATH (CXX env var, else c++). */
std::vector<Finding> checkSelfSufficient(const std::string &header,
                                         const std::string &includeRoot);

/** Baseline entries are "<rule> <path-suffix>" lines; '#' comments and
 *  blank lines are ignored. */
std::set<std::string> loadBaseline(const std::string &path);

/** Mark findings whose (rule, path) matches a baseline entry by path
 *  suffix, so checked-out-anywhere trees still match. */
void applyBaseline(std::vector<Finding> &findings,
                   const std::set<std::string> &baseline);

/** The "<rule> <path>" key a finding would need in the baseline. */
std::string baselineKey(const Finding &f);

} // namespace neurolint
