#include "neurolint/rules.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "neurolint/lexer.h"

namespace neurolint {

namespace {

bool
contains(const std::string &s, const std::string &needle)
{
    return s.find(needle) != std::string::npos;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
isHeaderPath(const std::string &path)
{
    return endsWith(path, ".h") || endsWith(path, ".hpp");
}

/** Files allowed to touch the raw C/std random sources (R1). */
bool
rngExempt(const std::string &path)
{
    return contains(path, "common/rng.");
}

/** Files allowed to write to std::cout / std::cerr directly (R3):
 *  the logging sink itself, CLI tools, benches and examples. Library
 *  code under src/ and tests report through logging/stats/trace. */
bool
ioExempt(const std::string &path)
{
    // Fixture snippets stand in for library code even though they
    // live under tools/neurolint/fixtures.
    if (contains(path, "fixtures/"))
        return false;
    return contains(path, "common/logging.") ||
           contains(path, "tools/") || contains(path, "bench/") ||
           contains(path, "examples/");
}

/** Files exempt from the concurrency rules (R6-R8). Tests, benches,
 *  examples and tools exercise raw primitives and default orderings
 *  on purpose (e.g. stress harnesses poking std::mutex directly);
 *  library code under src/ must go through the annotated wrappers.
 *  common/mutex.h is the one sanctioned user of the raw primitives —
 *  it is what wraps them. Fixture snippets stand in for library code
 *  even though they live under tools/. */
bool
concurrencyExempt(const std::string &path)
{
    if (contains(path, "fixtures/"))
        return false;
    return contains(path, "tests/") || contains(path, "bench/") ||
           contains(path, "examples/") || contains(path, "tools/") ||
           contains(path, "common/mutex.");
}

/** Per-line suppressions: `// neurolint: allow(R1,R3)` silences those
 *  rules on its own line and on the line that follows. */
struct Directives
{
    std::map<int, std::set<std::string>> allow; // line -> rules
    std::vector<int> orderedSumTags;            // tag comment lines
};

Directives
parseDirectives(const std::vector<Token> &toks)
{
    Directives d;
    for (const Token &t : toks) {
        if (t.kind != TokKind::Comment)
            continue;
        const std::size_t at = t.text.find("neurolint:");
        if (at == std::string::npos)
            continue;
        const std::string rest = t.text.substr(at + 10);
        if (contains(rest, "ordered-sum")) {
            d.orderedSumTags.push_back(t.line);
            continue;
        }
        const std::size_t open = rest.find("allow(");
        if (open == std::string::npos)
            continue;
        const std::size_t close = rest.find(')', open);
        if (close == std::string::npos)
            continue;
        std::string list = rest.substr(open + 6, close - open - 6);
        for (char &c : list) {
            if (c == ',')
                c = ' ';
            else
                c = static_cast<char>(std::toupper(
                    static_cast<unsigned char>(c)));
        }
        std::istringstream in(list);
        std::string rule;
        while (in >> rule) {
            d.allow[t.line].insert(rule);
            d.allow[t.line + 1].insert(rule);
        }
    }
    return d;
}

bool
suppressed(const Directives &d, const std::string &rule, int line)
{
    const auto it = d.allow.find(line);
    return it != d.allow.end() && it->second.count(rule) > 0;
}

/** Index of the punct matching the opener at `open` (which must be a
 *  '(' or '{'), or toks.size() when unbalanced. */
std::size_t
matchExtent(const std::vector<Token> &toks, std::size_t open)
{
    const std::string opener = toks[open].text;
    const std::string closer = (opener == "(") ? ")" : "}";
    int depth = 0;
    for (std::size_t k = open; k < toks.size(); ++k) {
        if (toks[k].kind != TokKind::Punct)
            continue;
        if (toks[k].text == opener)
            ++depth;
        else if (toks[k].text == closer && --depth == 0)
            return k;
    }
    return toks.size();
}

bool
isIdent(const Token &t, const char *spelling)
{
    return t.kind == TokKind::Identifier && t.text == spelling;
}

bool
isPunct(const Token &t, char c)
{
    return t.kind == TokKind::Punct && t.text[0] == c;
}

void
emit(std::vector<Finding> &out, const Directives &d,
     const std::string &rule, const std::string &path, int line,
     const std::string &message)
{
    if (suppressed(d, rule, line))
        return;
    out.push_back({rule, path, line, message});
}

/** R1: rand()/srand()/std::random_device outside common/rng.*. */
void
ruleRand(const std::vector<Token> &code, const std::string &path,
         const Directives &d, std::vector<Finding> &out)
{
    if (rngExempt(path))
        return;
    for (std::size_t k = 0; k < code.size(); ++k) {
        const Token &t = code[k];
        if (t.kind != TokKind::Identifier)
            continue;
        // Member access (x.rand(), x->rand()) is someone else's API.
        const bool member =
            k > 0 && (isPunct(code[k - 1], '.') ||
                      isPunct(code[k - 1], '>'));
        // Qualified: only std:: counts as the libc/std generator.
        bool qualified = false, stdQualified = false;
        if (k >= 2 && isPunct(code[k - 1], ':') &&
            isPunct(code[k - 2], ':')) {
            qualified = true;
            stdQualified = k >= 3 && isIdent(code[k - 3], "std");
        }
        if (t.text == "random_device") {
            if (!qualified || stdQualified) {
                emit(out, d, "R1", path, t.line,
                     "std::random_device is nondeterministic; seed a "
                     "neuro::Rng stream instead");
            }
            continue;
        }
        if ((t.text == "rand" || t.text == "srand") && !member &&
            (!qualified || stdQualified) && k + 1 < code.size() &&
            isPunct(code[k + 1], '(')) {
            emit(out, d, "R1", path, t.line,
                 t.text + "() bypasses the deterministic neuro::Rng "
                 "streams (common/rng.h)");
        }
    }
}

/** R2: Rng discipline inside the data-parallel primitives. Each index
 *  must draw from its own deriveStreamSeed()-derived stream; a shared
 *  generator makes results depend on chunk scheduling. parallelInvoke
 *  is exempt: its tasks are heterogeneous units with disjoint seeds. */
void
ruleRngStream(const std::vector<Token> &code, const std::string &path,
              const Directives &d, std::vector<Finding> &out)
{
    for (std::size_t k = 0; k + 1 < code.size(); ++k) {
        if (!(isIdent(code[k], "parallelFor") ||
              isIdent(code[k], "parallelForRange") ||
              isIdent(code[k], "parallelMap")) ||
            !isPunct(code[k + 1], '('))
            continue;
        const std::string prim = code[k].text;
        const std::size_t close = matchExtent(code, k + 1);
        for (std::size_t j = k + 2; j < close; ++j) {
            if (isIdent(code[j], "new") && j + 1 < close &&
                isIdent(code[j + 1], "Rng")) {
                emit(out, d, "R2", path, code[j].line,
                     "raw `new Rng` inside " + prim +
                     " — construct per-index Rng(deriveStreamSeed(...))");
                continue;
            }
            if (!isIdent(code[j], "Rng"))
                continue;
            if (j + 1 < close && isPunct(code[j + 1], '&')) {
                emit(out, d, "R2", path, code[j].line,
                     "shared Rng& inside " + prim +
                     " — one generator across indices breaks "
                     "thread-count determinism");
                continue;
            }
            // Rng ident(...) / Rng ident{...}: the seed expression
            // must flow through deriveStreamSeed().
            if (j + 2 < close &&
                code[j + 1].kind == TokKind::Identifier &&
                (isPunct(code[j + 2], '(') ||
                 isPunct(code[j + 2], '{'))) {
                const std::size_t argsClose = matchExtent(code, j + 2);
                bool derived = false;
                for (std::size_t a = j + 3; a < argsClose; ++a) {
                    if (isIdent(code[a], "deriveStreamSeed"))
                        derived = true;
                }
                if (!derived) {
                    emit(out, d, "R2", path, code[j].line,
                         "Rng constructed inside " + prim +
                         " without deriveStreamSeed() — the stream "
                         "must be keyed by index, not by shard");
                }
            }
        }
        k = close;
    }
}

/** R3: direct std::cout/std::cerr outside the sanctioned writers. */
void
ruleIo(const std::vector<Token> &code, const std::string &path,
       const Directives &d, std::vector<Finding> &out)
{
    if (ioExempt(path))
        return;
    for (std::size_t k = 2; k < code.size(); ++k) {
        const Token &t = code[k];
        if (t.kind != TokKind::Identifier ||
            (t.text != "cout" && t.text != "cerr"))
            continue;
        if (isPunct(code[k - 1], ':') && isPunct(code[k - 2], ':') &&
            k >= 3 && isIdent(code[k - 3], "std")) {
            emit(out, d, "R3", path, t.line,
                 "std::" + t.text + " outside common/logging, CLI and "
                 "benches — use inform()/warn() or a stats sink");
        }
    }
}

/** R4a: headers carry #pragma once. */
void
rulePragmaOnce(const std::vector<Token> &code, const std::string &path,
               const Directives &d, std::vector<Finding> &out)
{
    if (!isHeaderPath(path))
        return;
    for (std::size_t k = 0; k + 2 < code.size(); ++k) {
        if (isPunct(code[k], '#') && isIdent(code[k + 1], "pragma") &&
            isIdent(code[k + 2], "once"))
            return;
    }
    emit(out, d, "R4", path, 1,
         "header is missing #pragma once");
}

/** R5: `// neurolint: ordered-sum` tagged loops accumulate in double
 *  only. The dense and event SNN engines promise bit-identical sums
 *  because both add the same float inputs into a double accumulator
 *  in emission order; a float accumulator or a float cast mid-sum
 *  silently re-rounds one side. */
void
ruleOrderedSum(const std::vector<Token> &code, const std::string &path,
               const Directives &d, std::vector<Finding> &out)
{
    if (d.orderedSumTags.empty())
        return;

    // Non-pointer float/double declarations, in token order; the map
    // reflects the latest declaration seen before each use.
    std::map<std::string, std::string> declType;

    std::size_t scanned = 0; // decls are folded in lazily up to here
    auto foldDecls = [&](std::size_t upTo) {
        for (; scanned < upTo && scanned + 1 < code.size(); ++scanned) {
            const Token &t = code[scanned];
            if ((isIdent(t, "float") || isIdent(t, "double")) &&
                code[scanned + 1].kind == TokKind::Identifier) {
                declType[code[scanned + 1].text] = t.text;
            }
        }
    };

    for (const int tagLine : d.orderedSumTags) {
        // The tag governs the next for/while loop.
        std::size_t loop = code.size();
        for (std::size_t k = 0; k < code.size(); ++k) {
            if (code[k].line > tagLine &&
                (isIdent(code[k], "for") || isIdent(code[k], "while"))) {
                loop = k;
                break;
            }
        }
        if (loop == code.size())
            continue;
        std::size_t open = loop + 1;
        if (open >= code.size() || !isPunct(code[open], '('))
            continue;
        const std::size_t headClose = matchExtent(code, open);
        std::size_t end = headClose;
        if (headClose + 1 < code.size() &&
            isPunct(code[headClose + 1], '{')) {
            end = matchExtent(code, headClose + 1);
        } else {
            for (end = headClose + 1;
                 end < code.size() && !isPunct(code[end], ';'); ++end) {
            }
        }
        foldDecls(loop);

        for (std::size_t j = loop; j < end && j < code.size(); ++j) {
            const Token &t = code[j];
            if (isIdent(t, "float")) {
                // `const float *row` reads floats — allowed. A float
                // value declaration or cast inside the sum is not.
                const bool pointer =
                    j + 1 < code.size() && isPunct(code[j + 1], '*');
                const bool cast =
                    (j >= 1 && isPunct(code[j - 1], '<') &&
                     j >= 2 && isIdent(code[j - 2], "static_cast")) ||
                    (j >= 1 && isPunct(code[j - 1], '(') &&
                     j + 1 < code.size() && isPunct(code[j + 1], ')'));
                if (cast) {
                    emit(out, d, "R5", path, t.line,
                         "float cast inside ordered-sum loop re-rounds "
                         "the accumulator — keep the sum in double");
                } else if (!pointer) {
                    emit(out, d, "R5", path, t.line,
                         "float declaration inside ordered-sum loop — "
                         "accumulate in double");
                }
                continue;
            }
            // ident += ... with a float-declared left-hand side.
            if (t.kind == TokKind::Identifier && j + 2 < code.size() &&
                isPunct(code[j + 1], '+') && isPunct(code[j + 2], '=')) {
                const auto it = declType.find(t.text);
                if (it != declType.end() && it->second == "float") {
                    emit(out, d, "R5", path, t.line,
                         "`" + t.text + "` accumulates in float inside "
                         "an ordered-sum loop — declare it double");
                }
            }
        }
    }
}

/** R6: raw standard mutex/CV types outside the annotated wrapper.
 *  neuro::Mutex / MutexGuard / CondVar (common/mutex.h) carry the
 *  Clang thread-safety capability attributes; a raw std::mutex member
 *  is invisible to -Wthread-safety, so nothing checks that its
 *  critical sections actually hold it. */
void
ruleRawMutex(const std::vector<Token> &code, const std::string &path,
             const Directives &d, std::vector<Finding> &out)
{
    if (concurrencyExempt(path))
        return;
    static const char *const kTypes[] = {
        "mutex",              "shared_mutex",
        "recursive_mutex",    "timed_mutex",
        "condition_variable", "condition_variable_any"};
    for (std::size_t k = 3; k < code.size(); ++k) {
        const Token &t = code[k];
        if (t.kind != TokKind::Identifier)
            continue;
        bool match = false;
        for (const char *name : kTypes)
            match = match || t.text == name;
        if (!match)
            continue;
        if (isPunct(code[k - 1], ':') && isPunct(code[k - 2], ':') &&
            isIdent(code[k - 3], "std")) {
            emit(out, d, "R6", path, t.line,
                 "raw std::" + t.text + " — use the annotated "
                 "neuro::Mutex/CondVar wrappers (common/mutex.h) so "
                 "the thread-safety analysis can see the lock");
        }
    }
}

/** R7: manual .lock()/.unlock() calls outside the wrapper. RAII
 *  (MutexGuard) keeps the release on every path — exceptions, early
 *  returns — and is the shape the thread-safety analysis verifies; a
 *  naked unlock() is exactly the leak the analysis exists to catch. */
void
ruleManualLock(const std::vector<Token> &code, const std::string &path,
               const Directives &d, std::vector<Finding> &out)
{
    if (concurrencyExempt(path))
        return;
    for (std::size_t k = 1; k + 2 < code.size(); ++k) {
        const Token &t = code[k];
        if (t.kind != TokKind::Identifier ||
            (t.text != "lock" && t.text != "unlock" &&
             t.text != "try_lock"))
            continue;
        // Member call: `x.lock()` / `x->lock()` ('-','>' tokens).
        if (!isPunct(code[k - 1], '.') && !isPunct(code[k - 1], '>'))
            continue;
        if (isPunct(code[k + 1], '(') && isPunct(code[k + 2], ')')) {
            emit(out, d, "R7", path, t.line,
                 "manual ." + t.text + "() — hold the mutex through a "
                 "scoped MutexGuard (common/mutex.h) instead");
        }
    }
}

/** R8: atomic operations must spell their memory_order. A bare
 *  x.load() defaults to seq_cst, which both hides the intended
 *  ordering contract from the reader and pays a full fence on
 *  weakly-ordered ISAs. Convention: relaxed for counters, documented
 *  acquire/release where a write publishes data (docs/
 *  static_analysis.md). */
void
ruleAtomicOrder(const std::vector<Token> &code, const std::string &path,
                const Directives &d, std::vector<Finding> &out)
{
    if (concurrencyExempt(path))
        return;

    // Names declared as std::atomic<...> in this file, so the
    // ambiguous `.load(args)` form can be receiver-checked —
    // `archive.load(path)` is a file load, not an atomic read.
    std::set<std::string> atomicNames;
    for (std::size_t k = 0; k + 1 < code.size(); ++k) {
        if (!isIdent(code[k], "atomic") || !isPunct(code[k + 1], '<'))
            continue;
        int depth = 0;
        std::size_t close = code.size();
        for (std::size_t j = k + 1; j < code.size(); ++j) {
            if (isPunct(code[j], '<')) {
                ++depth;
            } else if (isPunct(code[j], '>') && --depth == 0) {
                close = j;
                break;
            }
        }
        if (close + 1 < code.size() &&
            code[close + 1].kind == TokKind::Identifier)
            atomicNames.insert(code[close + 1].text);
    }

    static const char *const kOps[] = {
        "store",     "exchange",  "fetch_add",
        "fetch_sub", "fetch_and", "fetch_or",
        "fetch_xor", "compare_exchange_weak",
        "compare_exchange_strong", "test_and_set"};
    for (std::size_t k = 1; k + 1 < code.size(); ++k) {
        const Token &t = code[k];
        if (t.kind != TokKind::Identifier)
            continue;
        if (!isPunct(code[k - 1], '.') && !isPunct(code[k - 1], '>'))
            continue;
        if (!isPunct(code[k + 1], '('))
            continue;
        bool isOp = false;
        for (const char *op : kOps)
            isOp = isOp || t.text == op;
        const bool isLoad = t.text == "load";
        if (!isOp && !isLoad)
            continue;
        const std::size_t close = matchExtent(code, k + 1);
        bool ordered = false;
        bool hasArgs = false;
        for (std::size_t a = k + 2; a < close; ++a) {
            hasArgs = true;
            if (code[a].kind == TokKind::Identifier &&
                code[a].text.rfind("memory_order", 0) == 0)
                ordered = true;
        }
        if (ordered)
            continue;
        if (isLoad && hasArgs) {
            // An argument-taking load() is only atomic when the
            // receiver is a declared std::atomic in this file.
            const bool named = isPunct(code[k - 1], '.') && k >= 2 &&
                               code[k - 2].kind == TokKind::Identifier;
            if (!named || atomicNames.count(code[k - 2].text) == 0)
                continue;
        }
        emit(out, d, "R8", path, t.line,
             "atomic ." + t.text + "() without an explicit "
             "std::memory_order — spell the ordering (relaxed for "
             "counters, acquire/release for publication)");
    }
}

} // namespace

std::vector<Finding>
lintSource(const std::string &path, const std::string &content)
{
    const std::vector<Token> all = tokenize(content);
    const Directives d = parseDirectives(all);

    std::vector<Token> code;
    code.reserve(all.size());
    for (const Token &t : all) {
        if (t.kind != TokKind::Comment)
            code.push_back(t);
    }

    std::vector<Finding> out;
    ruleRand(code, path, d, out);
    ruleRngStream(code, path, d, out);
    ruleIo(code, path, d, out);
    rulePragmaOnce(code, path, d, out);
    ruleOrderedSum(code, path, d, out);
    ruleRawMutex(code, path, d, out);
    ruleManualLock(code, path, d, out);
    ruleAtomicOrder(code, path, d, out);
    return out;
}

std::vector<Finding>
checkSelfSufficient(const std::string &header,
                    const std::string &includeRoot)
{
    const char *cxxEnv = std::getenv("CXX");
    const std::string cxx = (cxxEnv && *cxxEnv) ? cxxEnv : "c++";
    const std::string cmd = cxx + " -std=c++20 -fsyntax-only -x c++ -I '" +
                            includeRoot + "' '" + header +
                            "' > /dev/null 2>&1";
    if (std::system(cmd.c_str()) == 0)
        return {};
    return {{"R4", header, 1,
             "header does not compile standalone (missing includes?); "
             "run: " + cxx + " -std=c++20 -fsyntax-only -x c++ -I " +
             includeRoot + " " + header,
             false}};
}

std::set<std::string>
loadBaseline(const std::string &path)
{
    std::set<std::string> entries;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string rule, file;
        if (fields >> rule >> file)
            entries.insert(rule + " " + file);
    }
    return entries;
}

void
applyBaseline(std::vector<Finding> &findings,
              const std::set<std::string> &baseline)
{
    for (Finding &f : findings) {
        for (const std::string &entry : baseline) {
            const std::size_t space = entry.find(' ');
            const std::string rule = entry.substr(0, space);
            const std::string suffix = entry.substr(space + 1);
            if (rule != f.rule)
                continue;
            if (f.file == suffix ||
                (endsWith(f.file, suffix) &&
                 f.file[f.file.size() - suffix.size() - 1] == '/')) {
                f.baselined = true;
                break;
            }
        }
    }
}

std::string
baselineKey(const Finding &f)
{
    return f.rule + " " + f.file;
}

} // namespace neurolint
