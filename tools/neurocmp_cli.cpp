/**
 * @file
 * neurocmp — command-line front end to the reproduction library.
 *
 *   neurocmp list
 *   neurocmp accuracy   [train=6000 test=1500]     # Table 3
 *   neurocmp hw         [workload=mnist]           # Table 7 summary
 *   neurocmp sweep      what=neurons|slope|coding  # Figures 8/6/14
 *   neurocmp train-snn  save=model.ncmp [train=N]  # train + save
 *   neurocmp eval-snn   load=model.ncmp [test=N]   # load + evaluate
 *   neurocmp serve      load=model.ncmp [requests=N batch=B]  # serving
 *   neurocmp serve      load=model.ncmp --listen [--port=P]   # network
 *   neurocmp stats      [train=N test=N]           # observability demo
 *   neurocmp metrics    [format=prom|json]         # telemetry demo
 *
 * All subcommands accept key=value overrides and NEURO_* environment
 * variables; `neurocmp list` shows the mapping to paper experiments.
 * Every subcommand additionally understands --trace=<path> (record a
 * Chrome-trace JSON viewable in Perfetto), --stats-dump (print the
 * per-scope timing/counter registry at exit) and --metrics=<path>
 * (export the metric registry at exit, Prometheus/JSON/CSV by
 * extension); NEURO_TRACE, NEURO_STATS_DUMP and NEURO_METRICS do the
 * same from the environment — there, and for every bench binary, no
 * flags are needed (see docs/observability.md).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <thread>

#include "neuro/common/config.h"
#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"
#include "neuro/common/profile.h"
#include "neuro/common/rng.h"
#include "neuro/common/serialize.h"
#include "neuro/common/table.h"
#include "neuro/core/compare.h"
#include "neuro/core/experiment.h"
#include "neuro/core/explorer.h"
#include "neuro/core/reports.h"
#include "neuro/cycle/folded_mlp_sim.h"
#include "neuro/cycle/folded_snn_sim.h"
#include "neuro/kernels/kernels.h"
#include "neuro/mlp/backprop.h"
#include "neuro/net/frontend.h"
#include "neuro/net/server.h"
#include "neuro/serve/registry.h"
#include "neuro/serve/server.h"
#include "neuro/snn/serialize.h"
#include "neuro/telemetry/export.h"
#include "neuro/telemetry/metrics.h"

namespace {

using namespace neuro;

int
cmdList()
{
    std::printf(
        "neurocmp subcommands:\n"
        "  accuracy   Table 3: SNNwt/SNNwot/SNN+BP/MLP+BP accuracies\n"
        "  hw         Table 7: folded/expanded design characteristics\n"
        "  sweep      what=neurons (Fig 8) | slope (Fig 6) | coding "
        "(Fig 14)\n"
        "  train-snn  train SNN+STDP and save to save=<path>\n"
        "  eval-snn   evaluate a saved model from load=<path>\n"
        "  serve      batched inference serving of a saved model:\n"
        "             load=<path> [backend=model|model.q8|model.wot]\n"
        "             [requests=N seed=S batch=B wait_us=U capacity=C\n"
        "             deadline_us=D slo_us=P fallback=0|1 inflight=K]\n"
        "             --listen [--host=A --port=P] serves every backend\n"
        "             over the binary network protocol until SIGINT/\n"
        "             SIGTERM (drains, then exits; docs/serving.md)\n"
        "  stats      run a small instrumented train + serving + "
        "folded-sim\n"
        "             demo and dump the profiler registry\n"
        "  metrics    run a small serving burst and print the metric\n"
        "             registry [format=prom|json]\n"
        "common options: train=N test=N workload=mnist|mpeg7|sad, and\n"
        "NEURO_SCALE / NEURO_MNIST_DIR environment variables.\n"
        "observability (all subcommands): --trace=<out.json> records a\n"
        "Chrome trace (Perfetto); --stats-dump prints scope timings and\n"
        "counters at exit; --metrics=<path> exports the metric registry\n"
        "at exit (.prom/.json/.csv by extension); NEURO_TRACE /\n"
        "NEURO_STATS_DUMP / NEURO_METRICS do the same for any binary,\n"
        "benches included (docs/observability.md).\n"
        "parallelism: --threads=N (or NEURO_THREADS) sets the worker\n"
        "pool width; 1 = fully serial, default = all hardware threads.\n"
        "results are identical at any setting (docs/parallelism.md).\n"
        "simd: --simd=auto|off|avx2|avx512 (or NEURO_SIMD) picks the\n"
        "vector kernel table; results are bit-identical at every level\n"
        "(docs/kernels.md).\n"
        "for the full per-table reproduction, run the bench/ binaries.\n");
    return 0;
}

core::Workload
loadWorkload(const Config &cfg)
{
    const std::string name = cfg.getString("workload", "mnist");
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 4000));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 1000));
    if (name == "mpeg7")
        return core::makeMpeg7Workload(train, test, 2);
    if (name == "sad")
        return core::makeSadWorkload(train, test, 3);
    if (name != "mnist")
        fatal("unknown workload '%s' (mnist|mpeg7|sad)", name.c_str());
    return core::makeMnistWorkload(train, test, 1);
}

int
cmdAccuracy(const Config &cfg)
{
    const core::Workload w = loadWorkload(cfg);
    const auto results = core::runAccuracyComparison(w, 77);
    TextTable table("accuracy comparison (" + w.name + ")");
    table.setHeader({"Model", "Accuracy"});
    table.addRow({"SNN+STDP (SNNwt)", TextTable::pct(results.snnWt)});
    table.addRow({"SNN+STDP (SNNwot)", TextTable::pct(results.snnWot)});
    table.addRow({"SNN+BP", TextTable::pct(results.snnBp)});
    table.addRow({"MLP+BP", TextTable::pct(results.mlpBp)});
    table.print(std::cout);
    return 0;
}

int
cmdHw(const Config &cfg)
{
    const core::Workload w = loadWorkload(cfg);
    const auto rows = core::makeTable7Rows(w.mlpTopo, w.snnTopo);
    core::printDesignRows(std::cout,
                          "design characteristics (" + w.name + ")",
                          rows);
    return 0;
}

int
cmdSweep(const Config &cfg)
{
    const core::Workload w = loadWorkload(cfg);
    const std::string what = cfg.getString("what", "neurons");
    TextTable table("sweep: " + what);
    if (what == "neurons") {
        table.setHeader({"Model", "Neurons", "Accuracy"});
        for (const auto &p :
             core::sweepMlpHidden(w, {10, 25, 50, 100}, 21)) {
            table.addRow({"MLP", TextTable::fmt(p.parameter, 0),
                          TextTable::pct(p.accuracy)});
        }
        for (const auto &p :
             core::sweepSnnNeurons(w, {10, 50, 100, 300}, 22)) {
            table.addRow({"SNN", TextTable::fmt(p.parameter, 0),
                          TextTable::pct(p.accuracy)});
        }
    } else if (what == "slope") {
        table.setHeader({"Slope a", "Error rate"});
        for (const auto &p :
             core::sweepSigmoidSlope(w, {1, 2, 4, 8, 16}, 23)) {
            table.addRow({p.parameter == 0 ? "step"
                                           : TextTable::fmt(p.parameter,
                                                            0),
                          TextTable::pct(1.0 - p.accuracy)});
        }
    } else if (what == "coding") {
        table.setHeader({"Scheme", "Neurons", "Accuracy"});
        for (const auto &p : core::sweepCodingSchemes(
                 w,
                 {snn::CodingScheme::RatePoisson,
                  snn::CodingScheme::RankOrder},
                 {50, 300}, 24)) {
            table.addRow(
                {snn::codingSchemeName(p.scheme),
                 TextTable::num(static_cast<long long>(p.neurons)),
                 TextTable::pct(p.accuracy)});
        }
    } else {
        fatal("unknown sweep '%s' (neurons|slope|coding)", what.c_str());
    }
    table.print(std::cout);
    return 0;
}

int
cmdTrainSnn(const Config &cfg)
{
    const std::string path = cfg.getString("save", "");
    if (path.empty())
        fatal("train-snn needs save=<path>");
    const core::Workload w = loadWorkload(cfg);
    const snn::SnnConfig config =
        core::defaultSnnConfig(w, w.data.train.size());
    Rng rng(7);
    snn::SnnNetwork net(config, rng);
    snn::SnnStdpTrainer trainer(config);
    snn::SnnTrainConfig train;
    train.epochs = scaled(3, 1);
    trainer.train(net, w.data.train, train,
                  [](const snn::SnnEpochReport &r) {
                      inform("epoch %zu: %zu output spikes, %zu silent "
                             "images",
                             r.epoch, r.outputSpikes, r.silentImages);
                  });
    const auto labels = trainer.labelNeurons(net, w.data.train,
                                             snn::EvalMode::Wt, 9);
    Archive archive;
    snn::saveSnn(net, labels, archive);
    if (!archive.save(path))
        fatal("cannot write '%s'", path.c_str());
    const auto result =
        trainer.evaluate(net, labels, w.data.test, snn::EvalMode::Wt, 10);
    std::printf("trained %zu-neuron SNN: %.2f%% test accuracy, saved "
                "to %s\n",
                config.numNeurons, result.accuracy * 100.0,
                path.c_str());
    return 0;
}

/**
 * Tiny closed-loop serving burst: trains a small MLP on the workload
 * and pushes @p requests through an InferenceServer so the `serve.*`
 * counters, gauges and stage histograms (and the serve/batch profiler
 * scopes) all carry data. @return requests completed Ok.
 */
uint64_t
runServeDemo(const core::Workload &w, uint64_t requests)
{
    mlp::MlpConfig mlpConfig = core::defaultMlpConfig(w);
    mlpConfig.layerSizes = {w.data.train.inputSize(), 16,
                            static_cast<std::size_t>(
                                w.data.train.numClasses())};
    Rng rng(3);
    mlp::Mlp net(mlpConfig, rng);
    mlp::TrainConfig tc;
    tc.epochs = 1;
    mlp::train(net, w.data.train, tc);
    const std::shared_ptr<serve::InferenceBackend> backend =
        serve::makeMlpBackend(std::move(net));

    serve::ServeConfig sc;
    sc.batch.maxBatch = 16;
    serve::InferenceServer server(backend, sc);
    uint64_t ok = 0;
    std::deque<std::future<serve::InferenceResult>> pending;
    auto consumeOne = [&] {
        if (pending.front().get().status == serve::RequestStatus::Ok)
            ++ok;
        pending.pop_front();
    };
    for (uint64_t id = 0; id < requests; ++id) {
        serve::InferenceRequest request;
        request.id = id;
        request.pixels = w.data.test[id % w.data.test.size()].pixels;
        request.streamSeed = deriveStreamSeed(55, id);
        pending.push_back(server.submit(std::move(request)));
        while (pending.size() >= 64)
            consumeOne();
    }
    while (!pending.empty())
        consumeOne();
    server.stop();
    return ok;
}

/**
 * Observability self-demo: a short instrumented SNN+STDP train/eval, an
 * MLP epoch, a serving burst, and one folded-schedule simulation of
 * each design, then a dump of everything the profiler collected. With
 * --trace=<path> the same run produces a Chrome trace of all the
 * scopes it exercised.
 */
int
cmdStats(const Config &cfg)
{
    Profiler::instance().setEnabled(true);

    Config demo = cfg;
    if (!cfg.has("train"))
        demo.set("train", "300");
    if (!cfg.has("test"))
        demo.set("test", "80");
    const core::Workload w = loadWorkload(demo);

    {
        NEURO_PROFILE_SCOPE("cli/stats/snn");
        const snn::SnnConfig config =
            core::defaultSnnConfig(w, w.data.train.size());
        Rng rng(7);
        snn::SnnNetwork net(config, rng);
        snn::SnnStdpTrainer trainer(config);
        snn::SnnTrainConfig train;
        train.epochs = 1;
        trainer.train(net, w.data.train, train);
        const auto labels = trainer.labelNeurons(net, w.data.train,
                                                 snn::EvalMode::Wt, 9);
        trainer.evaluate(net, labels, w.data.test, snn::EvalMode::Wt, 10);
    }
    {
        NEURO_PROFILE_SCOPE("cli/stats/mlp");
        mlp::MlpConfig config;
        config.layerSizes = {w.mlpTopo.inputs, w.mlpTopo.hidden,
                             w.mlpTopo.outputs};
        mlp::TrainConfig train;
        train.epochs = 1;
        mlp::trainAndEvaluate(config, train, w.data.train, w.data.test,
                              13);
    }
    {
        NEURO_PROFILE_SCOPE("cli/stats/serve");
        runServeDemo(w, 400);
    }
    {
        NEURO_PROFILE_SCOPE("cli/stats/cycle");
        cycle::simulateFoldedMlp(w.mlpTopo, 16);
        cycle::simulateFoldedSnnWot(w.snnTopo, 16);
    }

    Profiler::instance().dump(std::cout);
    return 0;
}

/**
 * Telemetry self-demo: a small serving burst, then the metric registry
 * printed to stdout through the requested exporter — the quickest way
 * to see which metrics exist and what NEURO_METRICS / --metrics=<path>
 * would write (docs/observability.md).
 */
int
cmdMetrics(const Config &cfg)
{
    Config demo = cfg;
    if (!cfg.has("train"))
        demo.set("train", "300");
    if (!cfg.has("test"))
        demo.set("test", "80");
    const core::Workload w = loadWorkload(demo);

    const auto requests =
        static_cast<uint64_t>(demo.getInt("requests", 400));
    const uint64_t ok = runServeDemo(w, requests);
    inform("metrics demo: %llu/%llu requests served",
           (unsigned long long)ok, (unsigned long long)requests);

    const telemetry::MetricsSnapshot snap =
        telemetry::MetricRegistry::instance().snapshot();
    const std::string format = demo.getString("format", "prom");
    if (format == "json")
        telemetry::writeJson(snap, std::cout);
    else if (format == "prom" || format == "prometheus")
        telemetry::writePrometheus(snap, std::cout);
    else
        fatal("unknown format '%s' (prom|json)", format.c_str());
    return 0;
}

int
cmdEvalSnn(const Config &cfg)
{
    const std::string path = cfg.getString("load", "");
    if (path.empty())
        fatal("eval-snn needs load=<path>");
    Archive archive;
    if (!archive.load(path))
        fatal("cannot read model: %s", archive.lastError().c_str());
    auto model = snn::loadSnn(archive);
    if (!model)
        fatal("'%s' is not a saved SNN model", path.c_str());
    const core::Workload w = loadWorkload(cfg);
    NEURO_ASSERT(w.data.test.inputSize() ==
                     model->network.config().numInputs,
                 "model/workload input-size mismatch");
    snn::SnnStdpTrainer trainer(model->network.config());
    const auto result = trainer.evaluate(
        model->network, model->labels, w.data.test, snn::EvalMode::Wt,
        11);
    std::printf("%s on %s test set: %.2f%% accuracy (%zu fallback "
                "readouts)\n",
                path.c_str(), w.name.c_str(), result.accuracy * 100.0,
                result.silent);
    return 0;
}

/** The server `serve --listen` parks on, for the signal handler. */
std::atomic<net::NetServer *> gListenServer{nullptr};
volatile std::sig_atomic_t gStopSignal = 0;

/**
 * SIGINT/SIGTERM handler of `serve --listen`. Only async-signal-safe
 * work happens here: record the signal and ask the server to stop
 * (an atomic store plus an eventfd write). The main thread observes
 * stopRequested(), runs the full drain — stop accepting, drain every
 * model queue, flush outboxes — and then *returns from main*, so the
 * registered observability exit hooks (metrics export, stats dump,
 * trace finalize) run exactly as on a normal exit.
 */
extern "C" void
handleStopSignal(int sig)
{
    gStopSignal = sig;
    net::NetServer *server =
        gListenServer.load(std::memory_order_relaxed);
    if (server != nullptr)
        server->requestStop();
}

/**
 * `serve --listen`: serve every backend of the checkpoint over the
 * binary network protocol (docs/serving.md, "Network protocol") until
 * SIGINT/SIGTERM, then drain and report.
 */
int
cmdServeListen(const Config &cfg, serve::ModelRegistry &registry,
               const serve::ServeConfig &sc)
{
    net::ServeFrontend frontend(registry, sc);
    net::NetServerConfig nc;
    nc.host = cfg.getString("host", "127.0.0.1");
    nc.port = static_cast<uint16_t>(cfg.getInt("port", 7411));
    net::NetServer server(frontend, nc);
    std::string error;
    if (!server.start(&error))
        fatal("cannot listen on %s:%d: %s", nc.host.c_str(),
              static_cast<int>(nc.port), error.c_str());

    gListenServer.store(&server, std::memory_order_release);
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);

    std::string models;
    for (const std::string &name : frontend.models())
        models += (models.empty() ? "" : ", ") + name;
    inform("serving %s on %s:%u (Ctrl-C to drain and exit)",
           models.c_str(), nc.host.c_str(),
           static_cast<unsigned>(server.port()));

    while (!server.stopRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    inform("signal %d: draining...", static_cast<int>(gStopSignal));
    server.stop(); // close doors, drain queues, flush outboxes.
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    gListenServer.store(nullptr, std::memory_order_release);

    TextTable table("serving summary (network)");
    table.setHeader({"Model", "Completed", "Rejected", "Expired"});
    for (const std::string &name : frontend.models()) {
        const serve::ServeCounters c =
            frontend.server(name)->counters();
        table.addRow({name,
                      TextTable::num(
                          static_cast<long long>(c.completed)),
                      TextTable::num(
                          static_cast<long long>(c.rejected)),
                      TextTable::num(
                          static_cast<long long>(c.expired))});
    }
    table.print(std::cout);
    // Normal return: the observability exit hooks flush metrics,
    // stats and traces (common/profile.h).
    return 0;
}

/**
 * Closed-loop serving demo: load a checkpoint into the model registry,
 * stand up the micro-batching server over the chosen backend, replay
 * the workload's test set as a request trace with a bounded number of
 * requests in flight, and report throughput, latency percentiles and
 * the serving counters (docs/serving.md). With --listen the registry
 * is served over TCP instead (cmdServeListen).
 */
int
cmdServe(const Config &cfg)
{
    const std::string path = cfg.getString("load", "");
    if (path.empty())
        fatal("serve needs load=<path> (e.g. from train-snn save=...)");

    serve::ModelRegistry registry;
    std::string error;
    if (registry.loadFile("model", path, &error).empty())
        fatal("cannot serve model: %s", error.c_str());

    serve::ServeConfig listenConfig;
    listenConfig.queueCapacity =
        static_cast<std::size_t>(cfg.getInt("capacity", 1024));
    listenConfig.batch.maxBatch =
        static_cast<std::size_t>(cfg.getInt("batch", 8));
    listenConfig.batch.maxWaitMicros = cfg.getInt("wait_us", 200);
    listenConfig.sloP99Micros = cfg.getInt("slo_us", 0);
    listenConfig.enableFallback = cfg.getInt("fallback", 0) != 0;
    if (cfg.getInt("listen", 0) != 0)
        return cmdServeListen(cfg, registry, listenConfig);

    const std::string backendName = cfg.getString("backend", "model");
    std::shared_ptr<serve::InferenceBackend> backend =
        registry.find(backendName);
    if (backend == nullptr) {
        std::string known;
        for (const std::string &n : registry.names())
            known += (known.empty() ? "" : ", ") + n;
        fatal("unknown backend '%s' (this checkpoint provides: %s)",
              backendName.c_str(), known.c_str());
    }

    const core::Workload w = loadWorkload(cfg);
    NEURO_ASSERT(w.data.test.inputSize() == backend->inputSize(),
                 "model expects %zu pixels, %s test images have %zu",
                 backend->inputSize(), w.name.c_str(),
                 w.data.test.inputSize());

    const serve::ServeConfig sc = listenConfig;

    // The fallback is the checkpoint's cheaper sibling backend: the
    // first registered name that isn't the primary (model.wot for an
    // SNN primary, model.q8 for an MLP one, "model" otherwise).
    std::shared_ptr<serve::InferenceBackend> fallback;
    if (sc.enableFallback) {
        for (const std::string &n : registry.names()) {
            if (n != backendName) {
                fallback = registry.find(n);
                inform("serve: SLO fallback backend is '%s'", n.c_str());
                break;
            }
        }
        if (fallback == nullptr)
            fatal("fallback=1 but the checkpoint provides no second "
                  "backend");
    }

    const auto requests =
        static_cast<uint64_t>(cfg.getInt("requests", 2000));
    const auto seed = static_cast<uint64_t>(cfg.getInt("seed", 99));
    const long deadlineUs = cfg.getInt("deadline_us", 0);
    const auto inflight = static_cast<std::size_t>(cfg.getInt(
        "inflight", static_cast<long>(4 * sc.batch.maxBatch)));

    serve::InferenceServer server(backend, sc, fallback);
    uint64_t ok = 0, rejected = 0, expired = 0;
    std::deque<std::future<serve::InferenceResult>> pending;
    auto consumeOne = [&] {
        const serve::InferenceResult r = pending.front().get();
        pending.pop_front();
        switch (r.status) {
        case serve::RequestStatus::Ok: ++ok; break;
        case serve::RequestStatus::Rejected: ++rejected; break;
        case serve::RequestStatus::Expired: ++expired; break;
        }
    };

    const auto t0 = serve::ServeClock::now();
    for (uint64_t id = 0; id < requests; ++id) {
        serve::InferenceRequest request;
        request.id = id;
        request.pixels =
            w.data.test[id % w.data.test.size()].pixels;
        request.streamSeed = deriveStreamSeed(seed, id);
        if (deadlineUs > 0)
            request.deadline = serve::ServeClock::now() +
                               std::chrono::microseconds(deadlineUs);
        pending.push_back(server.submit(std::move(request)));
        while (pending.size() >= inflight)
            consumeOne();
    }
    while (!pending.empty())
        consumeOne();
    server.stop();
    const double wallS = std::chrono::duration<double>(
                             serve::ServeClock::now() - t0)
                             .count();

    const serve::ServeCounters counters = server.counters();
    const serve::LatencyHistogram::Summary lat =
        server.latency().summary();
    TextTable table("serving summary (" + backendName + " on " + w.name +
                    ")");
    table.setHeader({"Metric", "Value"});
    table.addRow({"requests", TextTable::num(
                                  static_cast<long long>(requests))});
    table.addRow({"completed",
                  TextTable::num(static_cast<long long>(ok))});
    table.addRow({"rejected",
                  TextTable::num(static_cast<long long>(rejected))});
    table.addRow({"expired",
                  TextTable::num(static_cast<long long>(expired))});
    table.addRow({"batches", TextTable::num(static_cast<long long>(
                                 counters.batches))});
    table.addRow(
        {"avg batch",
         TextTable::fmt(counters.batches == 0
                            ? 0.0
                            : static_cast<double>(counters.completed +
                                                  counters.expired) /
                                  static_cast<double>(counters.batches),
                        2)});
    table.addRow({"throughput (req/s)",
                  TextTable::fmt(static_cast<double>(ok) / wallS, 1)});
    table.addRow({"p50 (us)", TextTable::fmt(lat.p50Us, 0)});
    table.addRow({"p95 (us)", TextTable::fmt(lat.p95Us, 0)});
    table.addRow({"p99 (us)", TextTable::fmt(lat.p99Us, 0)});
    table.addRow({"max (us)", TextTable::fmt(lat.maxUs, 0)});
    table.addRow({"fallback served",
                  TextTable::num(static_cast<long long>(
                      counters.fallbacks))});
    table.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    initObservability(cfg);
    initParallel(cfg);
    kernels::initKernels(cfg);
    const char *cmd = argc > 1 ? argv[1] : "list";

    if (std::strcmp(cmd, "list") == 0 || std::strcmp(cmd, "help") == 0)
        return cmdList();
    if (std::strcmp(cmd, "accuracy") == 0)
        return cmdAccuracy(cfg);
    if (std::strcmp(cmd, "hw") == 0)
        return cmdHw(cfg);
    if (std::strcmp(cmd, "sweep") == 0)
        return cmdSweep(cfg);
    if (std::strcmp(cmd, "train-snn") == 0)
        return cmdTrainSnn(cfg);
    if (std::strcmp(cmd, "eval-snn") == 0)
        return cmdEvalSnn(cfg);
    if (std::strcmp(cmd, "serve") == 0)
        return cmdServe(cfg);
    if (std::strcmp(cmd, "stats") == 0)
        return cmdStats(cfg);
    if (std::strcmp(cmd, "metrics") == 0)
        return cmdMetrics(cfg);
    warn("unknown subcommand '%s'", cmd);
    return cmdList();
}
