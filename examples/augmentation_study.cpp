/**
 * @file
 * Augmentation study: the paper compares against Simard et al.'s 98.4%
 * MLP, which was trained on *distorted* data, while the paper itself
 * uses "the full 60,000 non-distorted MNIST images". This example
 * quantifies what that choice is worth: train the MLP on a small clean
 * set vs the same set enriched with affine-warped copies, and evaluate
 * both on a harder (jittered) test set.
 *
 * Run:  ./augmentation_study [train=800] [test=600] [copies=2]
 */

#include <cstdio>

#include "neuro/common/config.h"
#include "neuro/common/rng.h"
#include "neuro/datasets/augment.h"
#include "neuro/datasets/synth_digits.h"
#include "neuro/mlp/backprop.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto train_size =
        static_cast<std::size_t>(cfg.getInt("train", 800));
    const auto test_size =
        static_cast<std::size_t>(cfg.getInt("test", 600));
    const auto copies =
        static_cast<std::size_t>(cfg.getInt("copies", 2));

    // A small clean training set and a deliberately harder test set
    // (stronger jitter and noise than the training distribution).
    datasets::SynthDigitsOptions train_opt;
    train_opt.trainSize = train_size;
    train_opt.testSize = 1;
    train_opt.maxRotation = 0.1f;
    train_opt.maxTranslate = 0.8f;
    train_opt.noiseStddev = 4.0f;
    const datasets::Dataset clean =
        datasets::makeSynthDigits(train_opt).train;

    datasets::SynthDigitsOptions test_opt;
    test_opt.trainSize = 1;
    test_opt.testSize = test_size;
    test_opt.seed = 99;
    test_opt.maxRotation = 0.3f;
    test_opt.maxTranslate = 2.5f;
    test_opt.noiseStddev = 14.0f;
    const datasets::Dataset hard_test =
        datasets::makeSynthDigits(test_opt).test;

    datasets::AugmentOptions aug;
    aug.maxRotation = 0.25f;
    aug.maxTranslate = 2.0f;
    aug.noiseStddev = 10.0f;
    const datasets::Dataset augmented =
        datasets::augment(clean, copies, aug, 7);
    std::printf("training sets: clean %zu images, augmented %zu images "
                "(x%zu warped copies)\n",
                clean.size(), augmented.size(), copies + 1);

    mlp::MlpConfig config;
    config.layerSizes = {clean.inputSize(), 40, 10};
    mlp::TrainConfig train;
    train.epochs = scaled(8, 3);

    const double clean_acc =
        mlp::trainAndEvaluate(config, train, clean, hard_test, 42);
    // Same number of weight updates for fairness: fewer epochs over
    // the bigger set.
    mlp::TrainConfig aug_train = train;
    aug_train.epochs =
        std::max<std::size_t>(1, train.epochs / (copies + 1));
    const double aug_acc = mlp::trainAndEvaluate(config, aug_train,
                                                 augmented, hard_test,
                                                 42);

    std::printf("\nhard-test accuracy:\n");
    std::printf("  trained on clean data:     %.2f%%\n",
                clean_acc * 100.0);
    std::printf("  trained on augmented data: %.2f%%  (same update "
                "budget)\n",
                aug_acc * 100.0);
    std::printf("\n%s\n",
                aug_acc >= clean_acc
                    ? "augmentation closed part of the distribution "
                      "gap -- the headroom Simard et al.'s distorted "
                      "training exploited."
                    : "no augmentation benefit at this budget; try "
                      "copies=4 or more epochs.");
    return 0;
}
