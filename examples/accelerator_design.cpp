/**
 * @file
 * Accelerator design-space walk: given an area budget (mm^2) and a
 * latency target, enumerate every design this library can build for a
 * workload — folded/expanded x MLP/SNNwt/SNNwot x ni — and recommend
 * the cheapest one that fits, the way Section 4.3 argues an embedded
 * designer would.
 *
 * Run:  ./accelerator_design [budget_mm2=8.0] [latency_us=1.0]
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <optional>
#include <vector>

#include "neuro/common/config.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/hw/folded.h"

namespace {

struct Candidate
{
    neuro::hw::Design design;
    std::string label;
    double areaMm2;
    double latencyUs;
    double energyUj;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const double budget = cfg.getDouble("budget_mm2", 8.0);
    const double latency_target = cfg.getDouble("latency_us", 1.0);

    core::Workload w = core::makeMnistWorkload(500, 100, 1);
    std::vector<Candidate> candidates;
    auto consider = [&](hw::Design design, const std::string &label) {
        Candidate c{design, label, design.totalAreaMm2(),
                    design.timePerImageNs() / 1000.0,
                    design.totalEnergyPerImageUj()};
        candidates.push_back(std::move(c));
    };

    for (std::size_t ni : {1UL, 2UL, 4UL, 8UL, 16UL, 32UL}) {
        consider(hw::buildFoldedMlp(w.mlpTopo, ni),
                 "MLP folded ni=" + std::to_string(ni));
        consider(hw::buildFoldedSnnWot(w.snnTopo, ni),
                 "SNNwot folded ni=" + std::to_string(ni));
        consider(hw::buildFoldedSnnWt(w.snnTopo, ni),
                 "SNNwt folded ni=" + std::to_string(ni));
    }
    consider(hw::buildExpandedMlp(w.mlpTopo), "MLP expanded");
    consider(hw::buildExpandedSnnWot(w.snnTopo), "SNNwot expanded");
    consider(hw::buildExpandedSnnWt(w.snnTopo), "SNNwt expanded");

    TextTable table("design space (MNIST topologies, 65nm)");
    table.setHeader({"Design", "Area (mm2)", "Latency (us)",
                     "Energy (uJ)", "Fits?"});
    for (const auto &c : candidates) {
        const bool fits =
            c.areaMm2 <= budget && c.latencyUs <= latency_target;
        table.addRow({c.label, TextTable::fmt(c.areaMm2),
                      TextTable::fmt(c.latencyUs, 3),
                      TextTable::fmt(c.energyUj, 3),
                      fits ? "yes" : "no"});
    }
    table.print(std::cout);

    // Recommend: the lowest-energy design meeting both constraints.
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const auto &c = candidates[i];
        if (c.areaMm2 > budget || c.latencyUs > latency_target)
            continue;
        if (!best || c.energyUj < candidates[*best].energyUj)
            best = i;
    }
    if (best) {
        const auto &c = candidates[*best];
        std::printf("\nrecommended under %.1f mm2 / %.2f us: %s "
                    "(%.2f mm2, %.3f us, %.3f uJ/image)\n",
                    budget, latency_target, c.label.c_str(), c.areaMm2,
                    c.latencyUs, c.energyUj);
        std::cout << "\n";
        c.design.print(std::cout);
    } else {
        std::printf("\nno design fits %.1f mm2 at %.2f us; relax one "
                    "constraint (try latency_us=10).\n",
                    budget, latency_target);
    }
    return 0;
}
