/**
 * @file
 * Network inspection: train an SNN+STDP model (or load one saved with
 * `save=path`), render the learned receptive fields as ASCII art and
 * PGM images, and report per-neuron class selectivity — making the
 * STDP specialization the paper describes visible.
 *
 * Run:  ./inspect_network [train=2500] [neurons=48] [save=model.ncmp]
 *       ./inspect_network load=model.ncmp
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "neuro/common/ascii_art.h"
#include "neuro/common/config.h"
#include "neuro/common/logging.h"
#include "neuro/common/pgm.h"
#include "neuro/common/rng.h"
#include "neuro/common/serialize.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/snn/analysis.h"
#include "neuro/snn/serialize.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto train_size =
        static_cast<std::size_t>(cfg.getInt("train", 2500));
    const auto neurons =
        static_cast<std::size_t>(cfg.getInt("neurons", 48));

    core::Workload w = core::makeMnistWorkload(train_size, 400, 1);

    snn::SnnConfig config =
        core::defaultSnnConfig(w, w.data.train.size());
    config.numNeurons = neurons;
    core::retuneSnnForTopology(config, w.data.train.size());
    Rng init_rng(7);
    snn::TrainedSnn model{snn::SnnNetwork(config, init_rng), {}};

    const std::string load_path = cfg.getString("load", "");
    if (!load_path.empty()) {
        Archive archive;
        if (!archive.load(load_path))
            fatal("cannot load model from '%s'", load_path.c_str());
        auto loaded = snn::loadSnn(archive);
        if (!loaded)
            fatal("'%s' does not contain a valid SNN",
                  load_path.c_str());
        model = std::move(*loaded);
        std::printf("loaded %zu-neuron model from %s\n",
                    model.network.config().numNeurons,
                    load_path.c_str());
    } else {
        std::printf("training a %zu-neuron SNN+STDP model...\n",
                    neurons);
        snn::SnnStdpTrainer trainer(model.network.config());
        snn::SnnTrainConfig train;
        train.epochs = scaled(3, 1);
        trainer.train(model.network, w.data.train, train);
        model.labels = trainer.labelNeurons(model.network, w.data.train,
                                            snn::EvalMode::Wt, 9);
        const std::string save_path = cfg.getString("save", "");
        if (!save_path.empty()) {
            Archive archive;
            snn::saveSnn(model.network, model.labels, archive);
            if (archive.save(save_path))
                std::printf("saved model to %s\n", save_path.c_str());
        }
    }

    const auto &net = model.network;
    const std::size_t width = w.data.train.width();
    const std::size_t height = w.data.train.height();

    // Receptive fields of the first 8 neurons, side by side.
    const std::size_t show =
        std::min<std::size_t>(8, net.config().numNeurons);
    std::vector<const float *> fields;
    for (std::size_t n = 0; n < show; ++n)
        fields.push_back(net.weights().row(n));
    std::printf("\nreceptive fields of neurons 0..%zu (labels: ", show - 1);
    for (std::size_t n = 0; n < show; ++n) {
        std::printf("%d%s",
                    n < model.labels.size() ? model.labels[n] : -1,
                    n + 1 < show ? ", " : ")\n");
    }
    std::cout << renderAsciiRow(fields.data(), show, width, height);

    // Export every receptive field as a PGM.
    for (std::size_t n = 0; n < show; ++n) {
        char path[64];
        std::snprintf(path, sizeof(path), "receptive_field_%02zu.pgm", n);
        writePgmNormalized(path, net.weights().row(n), width, height);
    }
    std::printf("wrote receptive_field_00..%02zu.pgm\n", show - 1);

    // Selectivity report.
    const snn::SpikeEncoder encoder(net.config().coding);
    const auto report =
        snn::neuronSelectivity(net, w.data.train, encoder, 800);
    Distribution selectivity;
    for (double s : report.selectivity)
        selectivity.sample(s);
    std::printf("\nclass selectivity over %zu neurons: mean %.3f, "
                "max %.3f (0 = untuned, 1 = responds to one class "
                "only)\n",
                report.selectivity.size(), selectivity.mean(),
                selectivity.max());
    std::size_t agreements = 0, labeled = 0;
    for (std::size_t n = 0; n < model.labels.size(); ++n) {
        if (model.labels[n] < 0)
            continue;
        ++labeled;
        if (model.labels[n] == report.preferredClass[n])
            ++agreements;
    }
    if (labeled > 0) {
        std::printf("self-labels agree with potential-based tuning for "
                    "%zu/%zu labeled neurons\n",
                    agreements, labeled);
    }
    return 0;
}
