/**
 * @file
 * Permanent online learning — the niche where the paper concludes
 * SNN+STDP accelerators shine (Section 4.4): the network learns *while*
 * being used. This example streams images through an SNN+STDP model,
 * measures prequential (test-then-train) accuracy over the stream, and
 * prices the STDP circuit overhead of the corresponding hardware.
 *
 * Run:  ./online_learning [stream=6000] [window=500]
 */

#include <cstdio>
#include <deque>
#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/hw/stdp_hw.h"
#include "neuro/snn/labeling.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto stream_len =
        static_cast<std::size_t>(cfg.getInt("stream", 6000));
    const auto window =
        static_cast<std::size_t>(cfg.getInt("window", 500));

    core::Workload w =
        core::makeMnistWorkload(stream_len, /*test=*/200, 1);
    const datasets::Dataset &stream = w.data.train;

    snn::SnnConfig config = core::defaultSnnConfig(w, stream.size());
    Rng rng(7);
    snn::SnnNetwork net(config, rng);
    snn::SpikeEncoder encoder(config.coding);
    Rng spike_rng(11);

    // Online label estimation: running win counters, re-finalized on the
    // fly — exactly the self-labeling circuit a deployed STDP
    // accelerator would keep next to each neuron.
    snn::SelfLabeling labeling(config.numNeurons, stream.numClasses());
    std::vector<std::size_t> label_counts(
        static_cast<std::size_t>(stream.numClasses()), 0);

    std::printf("streaming %zu images (test-then-train)...\n",
                stream.size());
    std::size_t correct_in_window = 0, seen_in_window = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const auto &sample = stream[i];
        const auto grid = encoder.encode(sample.pixels.data(),
                                         sample.pixels.size(), spike_rng);
        // Test: predict with the labels learned so far...
        const auto labels = labeling.finalize(label_counts);
        // ...while the same presentation also learns (STDP is online:
        // no separate training phase).
        const auto result = net.presentImage(grid, /*learn=*/true);
        const int winner = result.winner(snn::Readout::FirstSpike);
        if (winner >= 0 &&
            labels[static_cast<std::size_t>(winner)] == sample.label) {
            ++correct_in_window;
        }
        ++seen_in_window;
        // Update the label statistics from the observed outcome.
        if (winner >= 0)
            labeling.record(static_cast<std::size_t>(winner),
                            sample.label);
        ++label_counts[static_cast<std::size_t>(sample.label)];

        if (seen_in_window == window || i + 1 == stream.size()) {
            std::printf("  images %6zu..%6zu  prequential accuracy "
                        "%.2f%%\n",
                        i + 1 - seen_in_window, i + 1,
                        100.0 * static_cast<double>(correct_in_window) /
                            static_cast<double>(seen_in_window));
            correct_in_window = 0;
            seen_in_window = 0;
        }
    }

    // Hardware cost of adding STDP to the folded SNNwt (Table 9).
    TextTable table("STDP circuit overhead (folded SNNwt, Table 9)");
    table.setHeader({"ni", "Inference area", "Learning area",
                     "Area ratio", "Energy ratio"});
    for (std::size_t ni : {1UL, 4UL, 8UL, 16UL}) {
        const hw::Design inference =
            hw::buildFoldedSnnWt(w.snnTopo, ni);
        const hw::Design learning =
            hw::buildFoldedSnnStdp(w.snnTopo, ni);
        const auto overhead = hw::stdpOverhead(w.snnTopo, ni);
        table.addRow({TextTable::num(static_cast<long long>(ni)),
                      TextTable::fmt(inference.totalAreaMm2()) + " mm2",
                      TextTable::fmt(learning.totalAreaMm2()) + " mm2",
                      TextTable::fmt(overhead.areaRatio) + "x",
                      TextTable::fmt(overhead.energyRatio) + "x"});
    }
    table.print(std::cout);
    std::printf("\nonline learning never stopped the network from being "
                "used: that is STDP's edge over BP.\n");
    return 0;
}
