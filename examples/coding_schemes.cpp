/**
 * @file
 * Spike coding playground: encode one image under all six coding
 * schemes (four rate codes, two temporal codes), print raster
 * statistics and an ASCII raster, then compare how a trained SNN
 * classifies under each.
 *
 * Run:  ./coding_schemes [train=1500] [test=400]
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "neuro/common/config.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"

namespace {

/** Print a coarse ASCII raster: time buckets x first 24 pixels. */
void
printRaster(const neuro::snn::SpikeTrainGrid &grid, std::size_t pixels)
{
    constexpr std::size_t kBuckets = 50;
    const std::size_t period = grid.ticks.size();
    const std::size_t shown = std::min<std::size_t>(pixels, 24);
    std::vector<std::vector<char>> raster(
        shown, std::vector<char>(kBuckets, '.'));
    for (std::size_t t = 0; t < period; ++t) {
        for (uint16_t p : grid.ticks[t]) {
            if (p < shown)
                raster[p][t * kBuckets / period] = '|';
        }
    }
    for (std::size_t p = 0; p < shown; ++p) {
        std::printf("  px%02zu ", p);
        for (char c : raster[p])
            std::putchar(c);
        std::putchar('\n');
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 1500));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 400));

    core::Workload w = core::makeMnistWorkload(train, test, 1);
    const auto &image = w.data.train[0];

    const std::vector<snn::CodingScheme> schemes = {
        snn::CodingScheme::RatePoisson,
        snn::CodingScheme::RateGaussian,
        snn::CodingScheme::RateRegular,
        snn::CodingScheme::RateBernoulli,
        snn::CodingScheme::TimeToFirstSpike,
        snn::CodingScheme::RankOrder,
    };

    // 1. Encoding statistics for one image under every scheme.
    TextTable stats("one image under each coding scheme");
    stats.setHeader({"Scheme", "Total spikes", "Spikes/bright px"});
    Rng rng(3);
    for (auto scheme : schemes) {
        snn::CodingConfig coding;
        coding.scheme = scheme;
        const snn::SpikeEncoder encoder(coding);
        const auto grid = encoder.encode(image.pixels.data(),
                                         image.pixels.size(), rng);
        std::size_t bright = 0;
        for (uint8_t p : image.pixels)
            if (p > 128)
                ++bright;
        stats.addRow({snn::codingSchemeName(scheme),
                      TextTable::num(static_cast<long long>(
                          grid.totalSpikes())),
                      TextTable::fmt(static_cast<double>(
                                         grid.totalSpikes()) /
                                         static_cast<double>(bright),
                                     2)});
    }
    stats.print(std::cout);

    // 2. A raster snippet for the reference rate code.
    std::printf("\nPoisson-rate raster (first 24 pixels, 500 ms -> 50 "
                "columns):\n");
    snn::CodingConfig coding;
    const snn::SpikeEncoder encoder(coding);
    // Use a patch from the image centre so some pixels carry ink.
    std::vector<uint8_t> patch(image.pixels.begin() + 14 * 28 + 2,
                               image.pixels.begin() + 14 * 28 + 26);
    printRaster(encoder.encode(patch.data(), patch.size(), rng),
                patch.size());

    // 3. Train one SNN per scheme family and compare accuracies.
    std::printf("\ntraining a small SNN+STDP per scheme (this is the "
                "Figure 14 experiment in miniature)...\n");
    TextTable acc_table("SNN+STDP accuracy per coding scheme");
    acc_table.setHeader({"Scheme", "Accuracy (%)"});
    for (auto scheme : schemes) {
        snn::SnnConfig config =
            core::defaultSnnConfig(w, w.data.train.size());
        config.numNeurons = 60;
        config.coding.scheme = scheme;
        if (scheme == snn::CodingScheme::TimeToFirstSpike ||
            scheme == snn::CodingScheme::RankOrder) {
            config.initialThreshold /= 6.0; // single-spike codes.
        }
        snn::SnnTrainConfig train_cfg;
        train_cfg.epochs = 2;
        const double acc = snn::trainAndEvaluateStdp(
            config, train_cfg, w.data.train, w.data.test,
            snn::EvalMode::Wt, 11);
        acc_table.addRow({snn::codingSchemeName(scheme),
                          TextTable::pct(acc)});
    }
    acc_table.addNote("expect the rate codes to cluster together above "
                      "the two temporal codes (paper Figure 14)");
    acc_table.print(std::cout);
    return 0;
}
