/**
 * @file
 * Hyper-parameter exploration, the Section 3.1 methodology in
 * miniature: the paper evaluated ~1000 SNN settings (leak constant,
 * LTP window, thresholds, inhibition/refractory periods) and found,
 * e.g., that a leakage time constant of 500 ms beats the
 * neuroscience-typical 50 ms. This example random-searches the same
 * ranges and reports the best settings found.
 *
 * Run:  ./hyperparameter_search [trials=8] [train=1500] [test=400]
 */

#include <cstdio>
#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/core/explorer.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto trials =
        static_cast<std::size_t>(cfg.getInt("trials", 8));
    const auto train =
        static_cast<std::size_t>(cfg.getInt("train", 1500));
    const auto test = static_cast<std::size_t>(cfg.getInt("test", 400));

    core::Workload w = core::makeMnistWorkload(train, test, 1);
    std::printf("random-searching %zu SNN settings over the Table 1 "
                "ranges (Tleak 10-800 ms, TLTP 1-50 ms, threshold "
                "0.3x-2x, Tinhibit 1-20 ms, Trefrac 5-50 ms)...\n\n",
                trials);

    const auto results =
        core::exploreSnnHyperparameters(w, trials, 25);

    TextTable table("explored settings (sorted by accuracy)");
    table.setHeader({"Rank", "Accuracy (%)", "Tleak (ms)", "TLTP (ms)",
                     "Threshold", "Tinhibit", "Trefrac"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &trial = results[i];
        table.addRow({TextTable::num(static_cast<long long>(i + 1)),
                      TextTable::pct(trial.accuracy),
                      TextTable::fmt(trial.config.tLeakMs, 0),
                      TextTable::num(trial.config.stdp.ltpWindowMs),
                      TextTable::fmt(trial.config.initialThreshold, 0),
                      TextTable::num(trial.config.tInhibitMs),
                      TextTable::num(trial.config.tRefracMs)});
    }
    table.print(std::cout);

    const auto &best = results.front();
    std::printf("\nbest setting: Tleak=%.0f ms (paper also selected a "
                "long leak, 500 ms, despite neuroscience's ~50 ms), "
                "TLTP=%d ms, accuracy %.2f%%\n",
                best.config.tLeakMs, best.config.stdp.ltpWindowMs,
                best.accuracy * 100.0);
    std::printf("the paper's point: model hyper-parameters were tuned "
                "for accuracy, not biological plausibility.\n");
    return 0;
}
