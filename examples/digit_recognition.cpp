/**
 * @file
 * Digit recognition, end to end: hyper-parameter exploration for the
 * MLP (hidden-layer sweep, as in Figure 8), training at the selected
 * size, 8-bit quantization for the hardware datapath (Section 4.2.1),
 * and a per-class error breakdown.
 *
 * Run:  ./digit_recognition [train=4000] [test=1000] [epochs=8]
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "neuro/common/config.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/core/explorer.h"
#include "neuro/core/metrics.h"
#include "neuro/mlp/quantized.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto train_size =
        static_cast<std::size_t>(cfg.getInt("train", 4000));
    const auto test_size =
        static_cast<std::size_t>(cfg.getInt("test", 1000));
    const auto epochs = static_cast<std::size_t>(cfg.getInt("epochs", 8));

    core::Workload w = core::makeMnistWorkload(train_size, test_size, 1);

    // 1. Explore the hidden-layer size (the paper settled on 100 after
    //    sweeping 10..1000 and finding diminishing returns).
    std::printf("-- hidden-layer exploration --\n");
    const std::vector<std::size_t> sizes = {10, 25, 50, 100};
    const auto sweep = core::sweepMlpHidden(w, sizes, 21);
    std::size_t best_hidden = sizes.front();
    double best_acc = 0.0;
    for (const auto &point : sweep) {
        std::printf("  hidden=%4.0f  accuracy=%.2f%%\n", point.parameter,
                    point.accuracy * 100.0);
        // Prefer the smallest layer within 0.5% of the best seen.
        if (point.accuracy > best_acc + 0.005) {
            best_acc = point.accuracy;
            best_hidden = static_cast<std::size_t>(point.parameter);
        }
    }
    std::printf("selected hidden size: %zu\n\n", best_hidden);

    // 2. Train the selected topology to convergence.
    mlp::MlpConfig config = core::defaultMlpConfig(w);
    config.layerSizes[1] = best_hidden;
    mlp::TrainConfig train = core::defaultMlpTrainConfig();
    train.epochs = epochs;
    Rng rng(42);
    mlp::Mlp net(config, rng);
    mlp::train(net, w.data.train, train,
               [](const mlp::EpochReport &r) {
                   std::printf("  epoch %2zu  train MSE %.5f\n", r.epoch,
                               r.trainError);
               });
    const double float_acc = mlp::evaluate(net, w.data.test);

    // 3. Quantize to the accelerator's 8-bit datapath.
    mlp::QuantizedMlp quant(net);
    const double fixed_acc = quant.evaluate(w.data.test);
    std::printf("\nfloat accuracy:  %.2f%%\n", float_acc * 100.0);
    std::printf("8-bit accuracy:  %.2f%%  (paper: 96.65%% vs 97.65%%)\n",
                fixed_acc * 100.0);

    // 4. Full classification report (float model).
    std::vector<float> input(net.inputSize());
    const core::ConfusionMatrix confusion = core::evaluateConfusion(
        w.data.test, [&](const datasets::Sample &sample) {
            for (std::size_t k = 0; k < input.size(); ++k)
                input[k] = static_cast<float>(sample.pixels[k]) / 255.0f;
            return net.predict(input.data());
        });
    confusion.print(std::cout);
    TextTable table("per-class metrics");
    table.setHeader({"Digit", "Precision", "Recall", "F1"});
    for (int d = 0; d < 10; ++d) {
        table.addRow({TextTable::num(d),
                      TextTable::pct(confusion.precision(d)),
                      TextTable::pct(confusion.recall(d)),
                      TextTable::pct(confusion.f1(d))});
    }
    table.print(std::cout);
    return 0;
}
