/**
 * @file
 * Quickstart: train the paper's two models on a small digit workload,
 * compare their accuracy, and price both accelerators in 65nm.
 *
 * Run:  ./quickstart [train=2000] [test=500] [epochs=6]
 */

#include <cstdio>
#include <iostream>

#include "neuro/common/config.h"
#include "neuro/common/rng.h"
#include "neuro/common/table.h"
#include "neuro/core/experiment.h"
#include "neuro/hw/folded.h"

int
main(int argc, char **argv)
{
    using namespace neuro;
    Config cfg;
    cfg.parseEnv();
    cfg.parseArgs(argc, argv);
    const auto train_size =
        static_cast<std::size_t>(cfg.getInt("train", 2000));
    const auto test_size =
        static_cast<std::size_t>(cfg.getInt("test", 500));
    const auto epochs = static_cast<std::size_t>(cfg.getInt("epochs", 6));

    // 1. A labeled image workload (synthetic MNIST stand-in, or the real
    //    files when NEURO_MNIST_DIR is set).
    core::Workload w = core::makeMnistWorkload(train_size, test_size, 1);
    std::printf("workload: %zu train / %zu test, %zux%zu pixels\n",
                w.data.train.size(), w.data.test.size(),
                w.data.train.width(), w.data.train.height());

    // 2. Machine-learning side: MLP + back-propagation.
    mlp::TrainConfig mlp_train = core::defaultMlpTrainConfig();
    mlp_train.epochs = epochs;
    const double mlp_acc =
        mlp::trainAndEvaluate(core::defaultMlpConfig(w), mlp_train,
                              w.data.train, w.data.test, 42);
    std::printf("MLP+BP  (784-100-10): %.2f%% test accuracy\n",
                mlp_acc * 100.0);

    // 3. Neuroscience side: SNN + STDP (unsupervised) + self-labeling.
    snn::SnnConfig snn_cfg =
        core::defaultSnnConfig(w, w.data.train.size());
    Rng rng(7);
    snn::SnnNetwork net(snn_cfg, rng);
    snn::SnnStdpTrainer trainer(snn_cfg);
    snn::SnnTrainConfig snn_train;
    snn_train.epochs = std::max<std::size_t>(2, epochs / 2);
    trainer.train(net, w.data.train, snn_train);
    const auto labels =
        trainer.labelNeurons(net, w.data.train, snn::EvalMode::Wt, 9);
    const auto snn_res =
        trainer.evaluate(net, labels, w.data.test, snn::EvalMode::Wt, 10);
    std::printf("SNN+STDP (784-%zu):    %.2f%% test accuracy\n",
                snn_cfg.numNeurons, snn_res.accuracy * 100.0);

    // 4. Hardware: price a folded accelerator for each at ni = 16.
    const hw::Design mlp_hw = hw::buildFoldedMlp(w.mlpTopo, 16);
    const hw::Design snn_hw = hw::buildFoldedSnnWot(w.snnTopo, 16);
    TextTable table("folded accelerators at ni = 16 (TSMC 65nm model)");
    table.setHeader({"Design", "Area (mm2)", "Delay (ns)", "Energy/img",
                     "Cycles/img"});
    for (const hw::Design *d : {&mlp_hw, &snn_hw}) {
        table.addRow({d->name(), TextTable::fmt(d->totalAreaMm2()),
                      TextTable::fmt(d->clockNs()),
                      TextTable::fmt(d->totalEnergyPerImageUj(), 3) + " uJ",
                      TextTable::num(static_cast<long long>(
                          d->cyclesPerImage()))});
    }
    table.print(std::cout);

    std::printf("\nconclusion: MLP wins on accuracy and on folded cost; "
                "see the bench/ binaries for the paper's full tables.\n");
    return 0;
}
