# Clang Thread Safety Analysis: compile-time lock-discipline checking
# against the NEURO_GUARDED_BY / NEURO_REQUIRES / NEURO_ACQUIRED_BEFORE
# annotations (src/neuro/common/thread_annotations.h).
#
#   -DNEURO_TSA=ON   add -Wthread-safety -Wthread-safety-beta (clang)
#
# The annotations compile to nothing on other compilers, so the option
# is harmless but useless there — a warning says so. -Wthread-safety-beta
# is what enables the acquired_before/after lock-order checking. Pair
# with NEURO_WERROR=ON (the `tsa` preset does) to make every violation
# a build break; see docs/static_analysis.md for reading the
# diagnostics.

option(NEURO_TSA "Enable Clang thread-safety analysis warnings" OFF)

if(NEURO_TSA)
    if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
        add_compile_options(-Wthread-safety -Wthread-safety-beta)
        message(STATUS "Thread-safety analysis: -Wthread-safety on")
    else()
        message(WARNING
                "NEURO_TSA=ON requires clang; ${CMAKE_CXX_COMPILER_ID} "
                "cannot run the analysis (the annotations compile to "
                "no-ops, so the build still works — unchecked).")
    endif()
endif()
