# Unified sanitizer presets: one cache option replaces the hand-rolled
# -fsanitize flag strings that used to live in CI.
#
#   -DNEURO_SAN=off    (default) no instrumentation
#   -DNEURO_SAN=asan   AddressSanitizer + UBSan, no recovery
#   -DNEURO_SAN=ubsan  UBSan only, no recovery
#   -DNEURO_SAN=tsan   ThreadSanitizer, no recovery
#
# The flags apply to every target in the tree (src, tests, bench,
# tools, examples) so a sanitizer build never mixes instrumented and
# uninstrumented objects. CMakePresets.json exposes one preset per
# mode; see docs/static_analysis.md.

set(NEURO_SAN "off" CACHE STRING
    "Sanitizer preset: off, asan (address+undefined), ubsan, tsan")
set_property(CACHE NEURO_SAN PROPERTY STRINGS off asan ubsan tsan)

if(NEURO_SAN STREQUAL "off")
    set(_neuro_san_flags "")
elseif(NEURO_SAN STREQUAL "asan")
    set(_neuro_san_flags -fsanitize=address,undefined
                         -fno-sanitize-recover=all)
elseif(NEURO_SAN STREQUAL "ubsan")
    set(_neuro_san_flags -fsanitize=undefined -fno-sanitize-recover=all)
elseif(NEURO_SAN STREQUAL "tsan")
    set(_neuro_san_flags -fsanitize=thread -fno-sanitize-recover=all)
else()
    message(FATAL_ERROR
            "NEURO_SAN=${NEURO_SAN} is not one of: off, asan, ubsan, tsan")
endif()

if(_neuro_san_flags)
    add_compile_options(${_neuro_san_flags})
    add_link_options(${_neuro_san_flags})
    message(STATUS "Sanitizers: NEURO_SAN=${NEURO_SAN}")
endif()
