#include "neuro/datasets/glyphs.h"

#include <algorithm>
#include <cmath>

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"

namespace neuro {
namespace datasets {

GlyphBitmap
GlyphBitmap::fromRows(const std::vector<std::string> &rows)
{
    NEURO_ASSERT(!rows.empty(), "glyph needs at least one row");
    GlyphBitmap g;
    g.height = rows.size();
    g.width = rows[0].size();
    g.cells.reserve(g.width * g.height);
    for (const auto &row : rows) {
        NEURO_ASSERT(row.size() == g.width, "ragged glyph rows");
        for (char c : row)
            g.cells.push_back(c == '#' ? 1 : 0);
    }
    return g;
}

bool
GlyphBitmap::at(long x, long y) const
{
    if (x < 0 || y < 0 || x >= static_cast<long>(width) ||
        y >= static_cast<long>(height)) {
        return false;
    }
    return cells[static_cast<std::size_t>(y) * width +
                 static_cast<std::size_t>(x)] != 0;
}

float
GlyphBitmap::sample(float x, float y) const
{
    const float fx = x - 0.5f;
    const float fy = y - 0.5f;
    const long x0 = static_cast<long>(std::floor(fx));
    const long y0 = static_cast<long>(std::floor(fy));
    const float ax = fx - static_cast<float>(x0);
    const float ay = fy - static_cast<float>(y0);
    const float v00 = at(x0, y0) ? 1.0f : 0.0f;
    const float v10 = at(x0 + 1, y0) ? 1.0f : 0.0f;
    const float v01 = at(x0, y0 + 1) ? 1.0f : 0.0f;
    const float v11 = at(x0 + 1, y0 + 1) ? 1.0f : 0.0f;
    return (1 - ax) * (1 - ay) * v00 + ax * (1 - ay) * v10 +
           (1 - ax) * ay * v01 + ax * ay * v11;
}

AffineJitter
randomJitter(Rng &rng, float max_rotation, float min_scale, float max_scale,
             float max_shear, float max_translate, float max_thickness,
             float noise_stddev)
{
    AffineJitter j;
    j.rotation = static_cast<float>(rng.uniform(-max_rotation, max_rotation));
    j.scale = static_cast<float>(rng.uniform(min_scale, max_scale));
    j.shear = static_cast<float>(rng.uniform(-max_shear, max_shear));
    j.translateX =
        static_cast<float>(rng.uniform(-max_translate, max_translate));
    j.translateY =
        static_cast<float>(rng.uniform(-max_translate, max_translate));
    j.thickness = static_cast<float>(rng.uniform(0.0, max_thickness));
    j.noiseStddev = noise_stddev;
    return j;
}

namespace {

/**
 * Common rasterization core: for each output pixel, map its centre back
 * into source space via the inverse affine transform and evaluate the
 * coverage function there; then apply noise and quantize.
 */
std::vector<uint8_t>
rasterize(const std::function<float(float, float)> &coverage,
          std::size_t width, std::size_t height, const AffineJitter &jitter,
          Rng &rng)
{
    std::vector<uint8_t> out(width * height, 0);
    const float cx = static_cast<float>(width) * 0.5f;
    const float cy = static_cast<float>(height) * 0.5f;
    const float cosr = std::cos(jitter.rotation);
    const float sinr = std::sin(jitter.rotation);
    const float inv_scale = 1.0f / std::max(jitter.scale, 0.05f);

    for (std::size_t py = 0; py < height; ++py) {
        for (std::size_t px = 0; px < width; ++px) {
            // Output pixel centre, recentred and untranslated.
            float x = static_cast<float>(px) + 0.5f - cx - jitter.translateX;
            float y = static_cast<float>(py) + 0.5f - cy - jitter.translateY;
            // Inverse rotation.
            float rx = cosr * x + sinr * y;
            float ry = -sinr * x + cosr * y;
            // Inverse shear (forward transform applies x += shear*y).
            rx -= jitter.shear * ry;
            // Inverse scale.
            rx *= inv_scale;
            ry *= inv_scale;
            const float v = coverage(rx, ry);
            float lum = 255.0f * std::clamp(v, 0.0f, 1.0f);
            if (jitter.noiseStddev > 0.0f) {
                lum += static_cast<float>(
                    rng.gaussian(0.0, jitter.noiseStddev));
            }
            out[py * width + px] = static_cast<uint8_t>(
                std::clamp(lum, 0.0f, 255.0f));
        }
    }
    return out;
}

} // namespace

std::vector<uint8_t>
renderGlyph(const GlyphBitmap &glyph, std::size_t width, std::size_t height,
            const AffineJitter &jitter, Rng &rng)
{
    // The glyph occupies ~70% of the output tile, as MNIST digits do.
    const float gw = static_cast<float>(glyph.width);
    const float gh = static_cast<float>(glyph.height);
    const float tile = 0.7f * static_cast<float>(std::min(width, height));
    const float unit = tile / std::max(gw, gh);

    auto coverage = [&](float x, float y) {
        // Map centred pixel coordinates into glyph space.
        const float gx = x / unit + gw * 0.5f;
        const float gy = y / unit + gh * 0.5f;
        float v = glyph.sample(gx, gy);
        if (jitter.thickness > 0.0f) {
            // Dilate: max coverage over a small ring of offsets.
            const float r = jitter.thickness;
            static const float offs[4][2] = {
                {1.f, 0.f}, {-1.f, 0.f}, {0.f, 1.f}, {0.f, -1.f}};
            for (const auto &o : offs) {
                v = std::max(v,
                             glyph.sample(gx + o[0] * r, gy + o[1] * r));
            }
        }
        return v;
    };
    return rasterize(coverage, width, height, jitter, rng);
}

std::vector<uint8_t>
renderSdf(const std::function<float(float, float)> &sdf, std::size_t width,
          std::size_t height, const AffineJitter &jitter, Rng &rng)
{
    // The unit SDF domain spans ~80% of the tile; smooth the boundary by
    // about one pixel for anti-aliased edges.
    const float half = 0.4f * static_cast<float>(std::min(width, height));
    const float edge = 1.0f / half;
    auto coverage = [&](float x, float y) {
        const float d = sdf(x / half, y / half) - jitter.thickness * edge;
        // Smoothstep from d=+edge (outside) to d=-edge (inside).
        const float t = std::clamp((edge - d) / (2.0f * edge), 0.0f, 1.0f);
        return t * t * (3.0f - 2.0f * t);
    };
    return rasterize(coverage, width, height, jitter, rng);
}

} // namespace datasets
} // namespace neuro
