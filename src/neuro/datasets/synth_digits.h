/**
 * @file
 * Synthetic handwritten-digit workload: the offline stand-in for MNIST.
 *
 * Ten digit glyphs are rasterized at 28x28 under per-sample affine jitter
 * (rotation, scale, shear, translation), stroke-thickness variation and
 * additive luminance noise, reproducing the statistical character of
 * MNIST (8-bit greyscale, centred digits, ~70% occupancy) so that every
 * model comparison in the paper can be rerun without the original files.
 * If a real MNIST directory is available (NEURO_MNIST_DIR), callers can
 * prefer it via mnistLike().
 */

#pragma once

#include <cstdint>

#include "neuro/datasets/dataset.h"

namespace neuro {
namespace datasets {

/** Generation knobs for the synthetic digit workload. */
struct SynthDigitsOptions
{
    std::size_t trainSize = 10000;  ///< training samples.
    std::size_t testSize = 2000;    ///< test samples.
    uint64_t seed = 1;              ///< generator seed.
    std::size_t width = 28;         ///< image width.
    std::size_t height = 28;        ///< image height.
    float maxRotation = 0.22f;      ///< radians (~12.5 degrees).
    float minScale = 0.85f;         ///< smallest glyph scale.
    float maxScale = 1.10f;         ///< largest glyph scale.
    float maxShear = 0.18f;         ///< shear range.
    float maxTranslate = 1.6f;      ///< pixels.
    float maxThickness = 0.45f;     ///< stroke dilation, glyph cells.
    float noiseStddev = 8.0f;       ///< luminance noise (0..255).
};

/** Generate a train/test split of synthetic digits. */
Split makeSynthDigits(const SynthDigitsOptions &options);

/**
 * The project's "MNIST" workload: real MNIST if NEURO_MNIST_DIR points at
 * the IDX files, otherwise the synthetic generator above with the given
 * sizes. Both paths produce 28x28, 10-class, 8-bit data.
 */
Split mnistLike(std::size_t train_size, std::size_t test_size,
                uint64_t seed);

} // namespace datasets
} // namespace neuro

