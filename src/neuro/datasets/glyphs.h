/**
 * @file
 * Glyph rasterization shared by the synthetic digit and shape generators.
 * A glyph is a small binary bitmap (or a signed-distance function) that is
 * rendered into an 8-bit luminance image under a random affine transform
 * with stroke-thickness and noise jitter, producing MNIST-like variation.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace neuro {

class Rng;

namespace datasets {

/** A small binary bitmap glyph described by '#'/'.' rows. */
struct GlyphBitmap
{
    std::size_t width = 0;           ///< columns.
    std::size_t height = 0;          ///< rows.
    std::vector<uint8_t> cells;      ///< row-major 0/1 occupancy.

    /** Parse from equal-length strings; '#' marks ink. */
    static GlyphBitmap fromRows(const std::vector<std::string> &rows);

    /** @return occupancy at (x,y); out-of-range coordinates are empty. */
    bool at(long x, long y) const;

    /**
     * Bilinear ink coverage at continuous glyph coordinates in
     * [0,width) x [0,height); returns a value in [0,1].
     */
    float sample(float x, float y) const;
};

/** Parameters of a 2-D affine jitter applied when rasterizing. */
struct AffineJitter
{
    float rotation = 0.0f;    ///< radians.
    float scale = 1.0f;       ///< isotropic scale.
    float shear = 0.0f;       ///< x-shear coefficient.
    float translateX = 0.0f;  ///< pixels, output space.
    float translateY = 0.0f;  ///< pixels, output space.
    float thickness = 0.0f;   ///< extra stroke radius, glyph cells.
    float noiseStddev = 0.0f; ///< additive luminance noise (0..255 scale).
};

/** Draw a random jitter within the given extremes. */
AffineJitter randomJitter(Rng &rng, float max_rotation, float min_scale,
                          float max_scale, float max_shear,
                          float max_translate, float max_thickness,
                          float noise_stddev);

/**
 * Rasterize @p glyph into a width x height 8-bit luminance image under
 * @p jitter. Ink is bright (towards 255) on a dark background, matching
 * MNIST's polarity.
 */
std::vector<uint8_t> renderGlyph(const GlyphBitmap &glyph, std::size_t width,
                                 std::size_t height,
                                 const AffineJitter &jitter, Rng &rng);

/**
 * Rasterize a signed-distance function (negative inside) under @p jitter;
 * the SDF is expressed in a unit domain [-1,1]^2.
 */
std::vector<uint8_t>
renderSdf(const std::function<float(float, float)> &sdf, std::size_t width,
          std::size_t height, const AffineJitter &jitter, Rng &rng);

} // namespace datasets
} // namespace neuro

