/**
 * @file
 * Loader for the original MNIST IDX file format (big-endian headers), so
 * that runs on machines with the real dataset reproduce the paper on the
 * authentic inputs. Entirely optional: all benches fall back to the
 * synthetic generator when the files are absent.
 */

#pragma once

#include <string>

#include "neuro/datasets/dataset.h"

namespace neuro {
namespace datasets {

/**
 * Load `train-images-idx3-ubyte` / `train-labels-idx1-ubyte` /
 * `t10k-images-idx3-ubyte` / `t10k-labels-idx1-ubyte` from @p dir,
 * truncated to the requested sizes (0 = all).
 *
 * @return true on success; on failure @p out is untouched.
 */
bool loadMnistIdx(const std::string &dir, std::size_t train_size,
                  std::size_t test_size, Split &out);

} // namespace datasets
} // namespace neuro

