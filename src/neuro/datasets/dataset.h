/**
 * @file
 * Dataset container shared by every workload in the study. Images are
 * stored as 8-bit luminance values (the paper's input format: "the inputs
 * are usually n-bit values (8-bit values in our case for the pixel
 * luminance)"), with float accessors normalizing to [0, 1].
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace neuro {

class Rng;

namespace datasets {

/** One labeled image: row-major 8-bit luminance plus class label. */
struct Sample
{
    std::vector<uint8_t> pixels; ///< width*height luminance values.
    int label = 0;               ///< class index in [0, numClasses).
};

/** A labeled image dataset with fixed geometry. */
class Dataset
{
  public:
    Dataset() = default;

    /** Construct an empty dataset with the given geometry. */
    Dataset(std::string name, std::size_t width, std::size_t height,
            int num_classes);

    /** @return dataset name (used in reports). */
    const std::string &name() const { return name_; }
    /** @return image width in pixels. */
    std::size_t width() const { return width_; }
    /** @return image height in pixels. */
    std::size_t height() const { return height_; }
    /** @return number of input pixels (width*height). */
    std::size_t inputSize() const { return width_ * height_; }
    /** @return number of classes. */
    int numClasses() const { return numClasses_; }
    /** @return number of samples. */
    std::size_t size() const { return samples_.size(); }
    /** @return true if no samples. */
    bool empty() const { return samples_.empty(); }

    /** Append a sample (its pixel count must match the geometry). */
    void add(Sample sample);

    /** @return the i-th sample. */
    const Sample &operator[](std::size_t i) const { return samples_[i]; }

    /**
     * Write the i-th sample's pixels as floats in [0,1] into @p out
     * (must hold inputSize() floats).
     */
    void normalized(std::size_t i, float *out) const;

    /** @return a new dataset containing samples [begin, end). */
    Dataset slice(std::size_t begin, std::size_t end) const;

    /** Shuffle sample order in place. */
    void shuffle(Rng &rng);

    /** @return per-class sample counts. */
    std::vector<std::size_t> classHistogram() const;

  private:
    std::string name_;
    std::size_t width_ = 0;
    std::size_t height_ = 0;
    int numClasses_ = 0;
    std::vector<Sample> samples_;
};

/** A train/test pair as produced by the generators. */
struct Split
{
    Dataset train; ///< training partition.
    Dataset test;  ///< held-out test partition.
};

} // namespace datasets
} // namespace neuro

