/**
 * @file
 * Dataset augmentation: affine warps (rotation, scale, shear,
 * translation) and luminance noise applied to *existing* images via
 * bilinear resampling — the distortion machinery of the handwriting
 * literature the paper cites (e.g. Simard et al. [22], whose 98.4% MLP
 * baseline used distorted training data). Works on any Dataset,
 * including real MNIST loaded from IDX files.
 */

#pragma once

#include <cstdint>

#include "neuro/datasets/dataset.h"

namespace neuro {

class Rng;

namespace datasets {

/** Augmentation ranges (each sample draws uniformly within them). */
struct AugmentOptions
{
    float maxRotation = 0.15f;  ///< radians.
    float minScale = 0.9f;      ///< isotropic scale low.
    float maxScale = 1.1f;      ///< isotropic scale high.
    float maxShear = 0.1f;      ///< x-shear coefficient.
    float maxTranslate = 1.5f;  ///< pixels.
    float noiseStddev = 6.0f;   ///< additive luminance noise.
};

/**
 * Warp one image with an affine transform (about the image centre)
 * plus noise, bilinearly resampled; out-of-frame samples read as 0.
 */
std::vector<uint8_t>
warpImage(const std::vector<uint8_t> &pixels, std::size_t width,
          std::size_t height, float rotation, float scale, float shear,
          float translate_x, float translate_y, float noise_stddev,
          Rng &rng);

/**
 * Produce an augmented dataset: the originals plus
 * @p copies_per_sample randomly warped variants of each (labels
 * preserved, deterministic per seed).
 */
Dataset augment(const Dataset &data, std::size_t copies_per_sample,
                const AugmentOptions &options, uint64_t seed);

} // namespace datasets
} // namespace neuro

