#include "neuro/datasets/shapes.h"

#include <array>
#include <cmath>

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"
#include "neuro/datasets/glyphs.h"

namespace neuro {
namespace datasets {

namespace {

float
length(float x, float y)
{
    return std::sqrt(x * x + y * y);
}

/** Disc of radius 0.8. */
float
sdfDisc(float x, float y)
{
    return length(x, y) - 0.8f;
}

/** Ring (annulus) centred at radius 0.62. */
float
sdfRing(float x, float y)
{
    return std::fabs(length(x, y) - 0.62f) - 0.2f;
}

/** Axis-aligned square. */
float
sdfSquare(float x, float y)
{
    const float dx = std::fabs(x) - 0.65f;
    const float dy = std::fabs(y) - 0.65f;
    const float ox = std::max(dx, 0.0f);
    const float oy = std::max(dy, 0.0f);
    return length(ox, oy) + std::min(std::max(dx, dy), 0.0f);
}

/** Equilateral-ish triangle pointing up. */
float
sdfTriangle(float x, float y)
{
    const float k = std::sqrt(3.0f);
    x = std::fabs(x) - 0.7f;
    y = y + 0.7f / k + 0.25f;
    if (x + k * y > 0.0f) {
        const float nx = (x - k * y) / 2.0f;
        const float ny = (-k * x - y) / 2.0f;
        x = nx;
        y = ny;
    }
    x -= std::clamp(x, -1.4f, 0.0f);
    return -length(x, y) * (y < 0.0f ? -1.0f : 1.0f);
}

/** Five-pointed star (angular modulation of the radius). */
float
sdfStar(float x, float y)
{
    const float r = length(x, y);
    const float theta = std::atan2(y, x);
    const float radius = 0.45f + 0.32f * std::cos(5.0f * theta);
    return r - radius;
}

/** Plus / cross. */
float
sdfCross(float x, float y)
{
    const float ax = std::fabs(x);
    const float ay = std::fabs(y);
    const float bar1 = std::max(ax - 0.8f, ay - 0.25f);
    const float bar2 = std::max(ay - 0.8f, ax - 0.25f);
    return std::min(bar1, bar2);
}

/** Horizontal ellipse. */
float
sdfEllipse(float x, float y)
{
    // Approximate SDF: scaled-space distance.
    const float k = length(x / 0.85f, y / 0.45f);
    return (k - 1.0f) * 0.45f;
}

/** Crescent: disc minus offset disc. */
float
sdfCrescent(float x, float y)
{
    const float outer = length(x, y) - 0.75f;
    const float inner = length(x - 0.38f, y) - 0.62f;
    return std::max(outer, -inner);
}

/** "H" bars shape (two verticals plus crossbar). */
float
sdfH(float x, float y)
{
    const float left = std::max(std::fabs(x + 0.5f) - 0.18f,
                                std::fabs(y) - 0.75f);
    const float right = std::max(std::fabs(x - 0.5f) - 0.18f,
                                 std::fabs(y) - 0.75f);
    const float bar = std::max(std::fabs(x) - 0.55f,
                               std::fabs(y) - 0.16f);
    return std::min(std::min(left, right), bar);
}

/** Diamond (rotated square / L1 ball). */
float
sdfDiamond(float x, float y)
{
    return (std::fabs(x) + std::fabs(y)) - 0.85f;
}

using Sdf = float (*)(float, float);

const std::array<Sdf, kNumShapeClasses> kShapeSdfs = {
    sdfDisc,  sdfRing,    sdfSquare,   sdfTriangle, sdfStar,
    sdfCross, sdfEllipse, sdfCrescent, sdfH,        sdfDiamond,
};

const std::array<const char *, kNumShapeClasses> kShapeNames = {
    "disc",  "ring",    "square",   "triangle", "star",
    "cross", "ellipse", "crescent", "hbar",     "diamond",
};

void
generate(Dataset &out, std::size_t count, const ShapesOptions &opt, Rng &rng)
{
    for (std::size_t i = 0; i < count; ++i) {
        const int label =
            static_cast<int>(rng.uniformInt(kNumShapeClasses));
        AffineJitter jitter = randomJitter(
            rng, /*max_rotation=*/0.6f, /*min_scale=*/0.75f,
            /*max_scale=*/1.1f, /*max_shear=*/0.12f, /*max_translate=*/1.5f,
            /*max_thickness=*/0.0f, opt.noiseStddev);
        Sample s;
        s.label = label;
        const Sdf sdf = kShapeSdfs[static_cast<std::size_t>(label)];
        s.pixels = renderSdf([sdf](float x, float y) { return sdf(x, y); },
                             opt.width, opt.height, jitter, rng);
        out.add(std::move(s));
    }
}

} // namespace

std::string
shapeClassName(int label)
{
    NEURO_ASSERT(label >= 0 && label < kNumShapeClasses, "bad shape label");
    return kShapeNames[static_cast<std::size_t>(label)];
}

Split
makeShapes(const ShapesOptions &options)
{
    Rng rng(options.seed * 0xd1342543de82ef95ULL + 29);
    Split split;
    split.train = Dataset("shapes-train", options.width, options.height,
                          kNumShapeClasses);
    split.test = Dataset("shapes-test", options.width, options.height,
                         kNumShapeClasses);
    generate(split.train, options.trainSize, options, rng);
    generate(split.test, options.testSize, options, rng);
    return split;
}

} // namespace datasets
} // namespace neuro
