/**
 * @file
 * Synthetic spoken-digit workload: the offline stand-in for the UCI
 * Spoken Arabic Digits (SAD) dataset used in the paper's Section 4.5.
 *
 * Each sample is a 13x13 "cepstral image" (13 MFCC-like coefficients over
 * 13 time frames) generated from a per-class formant-trajectory model:
 * every class owns a small set of coefficient-space trajectories with
 * class-specific start positions, slopes and curvatures; a sample renders
 * those trajectories with speaker-like jitter (tempo, amplitude, offset)
 * plus noise. This matches the paper's input geometry (13x13 -> MLP
 * 13x13-60-10, SNN 13x13-90) and its qualitative "harder task, smaller
 * SNN/MLP gap" behaviour.
 */

#pragma once

#include <cstdint>

#include "neuro/datasets/dataset.h"

namespace neuro {
namespace datasets {

/** Generation knobs for the spoken-digit workload. */
struct SpokenDigitsOptions
{
    std::size_t trainSize = 6000; ///< training samples.
    std::size_t testSize = 1500;  ///< test samples.
    uint64_t seed = 3;            ///< generator seed.
    std::size_t frames = 13;      ///< time frames (image width).
    std::size_t coeffs = 13;      ///< cepstral coefficients (height).
    int numClasses = 10;          ///< digit classes.
    int tracksPerClass = 3;       ///< formant trajectories per class.
    float noiseStddev = 14.0f;    ///< additive luminance noise.
    float jitter = 0.35f;         ///< speaker variability factor.
};

/** Generate a train/test split of synthetic spoken digits. */
Split makeSpokenDigits(const SpokenDigitsOptions &options);

} // namespace datasets
} // namespace neuro

