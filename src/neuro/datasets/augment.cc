#include "neuro/datasets/augment.h"

#include <algorithm>
#include <cmath>

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"

namespace neuro {
namespace datasets {

namespace {

/** Bilinear sample of a uint8 image; out-of-frame reads 0. */
float
sampleBilinear(const std::vector<uint8_t> &pixels, std::size_t width,
               std::size_t height, float x, float y)
{
    const float fx = x - 0.5f;
    const float fy = y - 0.5f;
    const long x0 = static_cast<long>(std::floor(fx));
    const long y0 = static_cast<long>(std::floor(fy));
    const float ax = fx - static_cast<float>(x0);
    const float ay = fy - static_cast<float>(y0);
    auto at = [&](long xi, long yi) -> float {
        if (xi < 0 || yi < 0 || xi >= static_cast<long>(width) ||
            yi >= static_cast<long>(height)) {
            return 0.0f;
        }
        return static_cast<float>(
            pixels[static_cast<std::size_t>(yi) * width +
                   static_cast<std::size_t>(xi)]);
    };
    return (1 - ax) * (1 - ay) * at(x0, y0) +
           ax * (1 - ay) * at(x0 + 1, y0) +
           (1 - ax) * ay * at(x0, y0 + 1) +
           ax * ay * at(x0 + 1, y0 + 1);
}

} // namespace

std::vector<uint8_t>
warpImage(const std::vector<uint8_t> &pixels, std::size_t width,
          std::size_t height, float rotation, float scale, float shear,
          float translate_x, float translate_y, float noise_stddev,
          Rng &rng)
{
    NEURO_ASSERT(pixels.size() == width * height, "geometry mismatch");
    std::vector<uint8_t> out(width * height, 0);
    const float cx = static_cast<float>(width) * 0.5f;
    const float cy = static_cast<float>(height) * 0.5f;
    const float cosr = std::cos(rotation);
    const float sinr = std::sin(rotation);
    const float inv_scale = 1.0f / std::max(scale, 0.05f);

    for (std::size_t py = 0; py < height; ++py) {
        for (std::size_t px = 0; px < width; ++px) {
            // Inverse-map the output pixel centre into source space.
            float x = static_cast<float>(px) + 0.5f - cx - translate_x;
            float y = static_cast<float>(py) + 0.5f - cy - translate_y;
            float rx = cosr * x + sinr * y;
            float ry = -sinr * x + cosr * y;
            rx -= shear * ry;
            rx *= inv_scale;
            ry *= inv_scale;
            float lum = sampleBilinear(pixels, width, height, rx + cx,
                                       ry + cy);
            if (noise_stddev > 0.0f) {
                lum += static_cast<float>(
                    rng.gaussian(0.0, noise_stddev));
            }
            out[py * width + px] = static_cast<uint8_t>(
                std::clamp(lum, 0.0f, 255.0f));
        }
    }
    return out;
}

Dataset
augment(const Dataset &data, std::size_t copies_per_sample,
        const AugmentOptions &options, uint64_t seed)
{
    NEURO_ASSERT(!data.empty(), "cannot augment an empty dataset");
    Dataset out(data.name() + "-augmented", data.width(), data.height(),
                data.numClasses());
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 131);
    for (std::size_t i = 0; i < data.size(); ++i) {
        const Sample &original = data[i];
        out.add(original);
        for (std::size_t c = 0; c < copies_per_sample; ++c) {
            Sample warped;
            warped.label = original.label;
            warped.pixels = warpImage(
                original.pixels, data.width(), data.height(),
                static_cast<float>(rng.uniform(-options.maxRotation,
                                               options.maxRotation)),
                static_cast<float>(
                    rng.uniform(options.minScale, options.maxScale)),
                static_cast<float>(
                    rng.uniform(-options.maxShear, options.maxShear)),
                static_cast<float>(rng.uniform(-options.maxTranslate,
                                               options.maxTranslate)),
                static_cast<float>(rng.uniform(-options.maxTranslate,
                                               options.maxTranslate)),
                options.noiseStddev, rng);
            out.add(std::move(warped));
        }
    }
    return out;
}

} // namespace datasets
} // namespace neuro
