#include "neuro/datasets/idx_loader.h"

#include <cstdint>
#include <fstream>
#include <vector>

#include "neuro/common/logging.h"

namespace neuro {
namespace datasets {

namespace {

/** Read a big-endian 32-bit word; @return false at EOF. */
bool
readU32(std::istream &in, uint32_t &v)
{
    unsigned char b[4];
    if (!in.read(reinterpret_cast<char *>(b), 4))
        return false;
    v = (uint32_t{b[0]} << 24) | (uint32_t{b[1]} << 16) |
        (uint32_t{b[2]} << 8) | uint32_t{b[3]};
    return true;
}

/** Load an idx3-ubyte image file. */
bool
loadImages(const std::string &path, std::size_t limit,
           std::vector<std::vector<uint8_t>> &images, std::size_t &width,
           std::size_t &height)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    uint32_t magic, count, rows, cols;
    if (!readU32(in, magic) || !readU32(in, count) || !readU32(in, rows) ||
        !readU32(in, cols)) {
        return false;
    }
    if (magic != 0x00000803) {
        warn("%s: bad idx3 magic 0x%08x", path.c_str(), magic);
        return false;
    }
    const std::size_t n =
        limit == 0 ? count : std::min<std::size_t>(limit, count);
    width = cols;
    height = rows;
    images.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        images[i].resize(static_cast<std::size_t>(rows) * cols);
        if (!in.read(reinterpret_cast<char *>(images[i].data()),
                     static_cast<std::streamsize>(images[i].size()))) {
            return false;
        }
    }
    return true;
}

/** Load an idx1-ubyte label file. */
bool
loadLabels(const std::string &path, std::size_t limit,
           std::vector<uint8_t> &labels)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    uint32_t magic, count;
    if (!readU32(in, magic) || !readU32(in, count))
        return false;
    if (magic != 0x00000801) {
        warn("%s: bad idx1 magic 0x%08x", path.c_str(), magic);
        return false;
    }
    const std::size_t n =
        limit == 0 ? count : std::min<std::size_t>(limit, count);
    labels.resize(n);
    return static_cast<bool>(
        in.read(reinterpret_cast<char *>(labels.data()),
                static_cast<std::streamsize>(n)));
}

/** Assemble a Dataset from parallel image/label arrays. */
bool
assemble(const std::string &name, std::size_t width, std::size_t height,
         std::vector<std::vector<uint8_t>> &images,
         const std::vector<uint8_t> &labels, Dataset &out)
{
    const std::size_t n = std::min(images.size(), labels.size());
    if (n == 0)
        return false;
    out = Dataset(name, width, height, 10);
    for (std::size_t i = 0; i < n; ++i) {
        Sample s;
        s.pixels = std::move(images[i]);
        s.label = labels[i];
        if (s.label < 0 || s.label > 9)
            return false;
        out.add(std::move(s));
    }
    return true;
}

} // namespace

bool
loadMnistIdx(const std::string &dir, std::size_t train_size,
             std::size_t test_size, Split &out)
{
    std::vector<std::vector<uint8_t>> train_images, test_images;
    std::vector<uint8_t> train_labels, test_labels;
    std::size_t w = 0, h = 0, tw = 0, th = 0;

    if (!loadImages(dir + "/train-images-idx3-ubyte", train_size,
                    train_images, w, h) ||
        !loadLabels(dir + "/train-labels-idx1-ubyte", train_size,
                    train_labels) ||
        !loadImages(dir + "/t10k-images-idx3-ubyte", test_size, test_images,
                    tw, th) ||
        !loadLabels(dir + "/t10k-labels-idx1-ubyte", test_size,
                    test_labels)) {
        return false;
    }
    if (w != tw || h != th)
        return false;

    Split split;
    if (!assemble("mnist-train", w, h, train_images, train_labels,
                  split.train) ||
        !assemble("mnist-test", tw, th, test_images, test_labels,
                  split.test)) {
        return false;
    }
    out = std::move(split);
    return true;
}

} // namespace datasets
} // namespace neuro
