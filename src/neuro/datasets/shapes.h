/**
 * @file
 * Synthetic object-silhouette workload: the offline stand-in for the
 * MPEG-7 CE Shape-1 Part-B benchmark used in the paper's Section 4.5.
 * Ten shape classes are defined as signed-distance functions and rendered
 * as binary-ish silhouettes at 28x28 under rotation/scale jitter, matching
 * the paper's network geometry (MLP 28x28-15-10, SNN 28x28-90).
 */

#pragma once

#include <cstdint>
#include <string>

#include "neuro/datasets/dataset.h"

namespace neuro {
namespace datasets {

/** Generation knobs for the shape workload. */
struct ShapesOptions
{
    std::size_t trainSize = 4000; ///< training samples.
    std::size_t testSize = 1000;  ///< test samples.
    uint64_t seed = 2;            ///< generator seed.
    std::size_t width = 28;       ///< image width.
    std::size_t height = 28;      ///< image height.
    float noiseStddev = 6.0f;     ///< additive luminance noise.
};

/** Number of shape classes. */
constexpr int kNumShapeClasses = 10;

/** @return human-readable name of shape class @p label. */
std::string shapeClassName(int label);

/** Generate a train/test split of silhouettes. */
Split makeShapes(const ShapesOptions &options);

} // namespace datasets
} // namespace neuro

