#include "neuro/datasets/spoken_digits.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"

namespace neuro {
namespace datasets {

namespace {

/** One formant trajectory in (frame, coefficient) space. */
struct Track
{
    float start;     ///< coefficient index at frame 0.
    float slope;     ///< coefficient drift per frame.
    float curvature; ///< quadratic term.
    float amplitude; ///< peak luminance contribution (0..1).
    float bandwidth; ///< Gaussian width across coefficients.
};

/** Class prototype: a fixed set of tracks drawn from a seeded RNG. */
std::vector<Track>
makePrototype(Rng &rng, const SpokenDigitsOptions &opt)
{
    std::vector<Track> tracks;
    const float coeffs = static_cast<float>(opt.coeffs);
    for (int t = 0; t < opt.tracksPerClass; ++t) {
        Track track;
        track.start = static_cast<float>(rng.uniform(1.0, coeffs - 2.0));
        track.slope = static_cast<float>(rng.uniform(-0.45, 0.45));
        track.curvature = static_cast<float>(rng.uniform(-0.035, 0.035));
        track.amplitude = static_cast<float>(rng.uniform(0.55, 1.0));
        track.bandwidth = static_cast<float>(rng.uniform(0.8, 1.7));
        tracks.push_back(track);
    }
    return tracks;
}

/** Render one utterance of @p prototype with speaker jitter. */
std::vector<uint8_t>
renderUtterance(const std::vector<Track> &prototype,
                const SpokenDigitsOptions &opt, Rng &rng)
{
    const std::size_t w = opt.frames;
    const std::size_t h = opt.coeffs;
    std::vector<float> image(w * h, 0.0f);

    const float tempo =
        1.0f + opt.jitter * static_cast<float>(rng.uniform(-0.3, 0.3));
    const float globalShift =
        opt.jitter * static_cast<float>(rng.uniform(-1.2, 1.2));

    for (const Track &proto : prototype) {
        Track track = proto;
        track.start += globalShift +
            opt.jitter * static_cast<float>(rng.gaussian(0.0, 0.5));
        track.slope *= tempo;
        track.amplitude *= 1.0f +
            opt.jitter * static_cast<float>(rng.uniform(-0.25, 0.25));

        for (std::size_t frame = 0; frame < w; ++frame) {
            const float f = static_cast<float>(frame);
            const float centre =
                track.start + track.slope * f + track.curvature * f * f;
            for (std::size_t c = 0; c < h; ++c) {
                const float d =
                    (static_cast<float>(c) - centre) / track.bandwidth;
                image[c * w + frame] +=
                    track.amplitude * std::exp(-0.5f * d * d);
            }
        }
    }

    std::vector<uint8_t> pixels(w * h);
    for (std::size_t i = 0; i < image.size(); ++i) {
        float lum = 255.0f * std::min(image[i], 1.0f);
        lum += static_cast<float>(rng.gaussian(0.0, opt.noiseStddev));
        pixels[i] = static_cast<uint8_t>(std::clamp(lum, 0.0f, 255.0f));
    }
    return pixels;
}

} // namespace

Split
makeSpokenDigits(const SpokenDigitsOptions &options)
{
    NEURO_ASSERT(options.numClasses > 0, "need at least one class");

    // Class prototypes come from a dedicated RNG so the class structure is
    // a function of the seed only, not of the sample counts.
    Rng proto_rng(options.seed * 0x2545f4914f6cdd1dULL + 41);
    std::vector<std::vector<Track>> prototypes;
    for (int c = 0; c < options.numClasses; ++c)
        prototypes.push_back(makePrototype(proto_rng, options));

    Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 43);
    Split split;
    split.train = Dataset("spoken-digits-train", options.frames,
                          options.coeffs, options.numClasses);
    split.test = Dataset("spoken-digits-test", options.frames,
                         options.coeffs, options.numClasses);

    auto generate = [&](Dataset &out, std::size_t count) {
        for (std::size_t i = 0; i < count; ++i) {
            const int label = static_cast<int>(
                rng.uniformInt(static_cast<uint64_t>(options.numClasses)));
            Sample s;
            s.label = label;
            s.pixels = renderUtterance(
                prototypes[static_cast<std::size_t>(label)], options, rng);
            out.add(std::move(s));
        }
    };
    generate(split.train, options.trainSize);
    generate(split.test, options.testSize);
    return split;
}

} // namespace datasets
} // namespace neuro
