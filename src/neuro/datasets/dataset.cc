#include "neuro/datasets/dataset.h"

#include <algorithm>

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"

namespace neuro {
namespace datasets {

Dataset::Dataset(std::string name, std::size_t width, std::size_t height,
                 int num_classes)
    : name_(std::move(name)), width_(width), height_(height),
      numClasses_(num_classes)
{
    NEURO_ASSERT(width_ > 0 && height_ > 0, "empty geometry");
    NEURO_ASSERT(numClasses_ > 0, "dataset needs at least one class");
}

void
Dataset::add(Sample sample)
{
    NEURO_ASSERT(sample.pixels.size() == inputSize(),
                 "sample has %zu pixels, dataset expects %zu",
                 sample.pixels.size(), inputSize());
    NEURO_ASSERT(sample.label >= 0 && sample.label < numClasses_,
                 "label %d out of range [0,%d)", sample.label, numClasses_);
    samples_.push_back(std::move(sample));
}

void
Dataset::normalized(std::size_t i, float *out) const
{
    NEURO_ASSERT(i < samples_.size(), "sample index out of range");
    const auto &px = samples_[i].pixels;
    for (std::size_t k = 0; k < px.size(); ++k)
        out[k] = static_cast<float>(px[k]) / 255.0f;
}

Dataset
Dataset::slice(std::size_t begin, std::size_t end) const
{
    NEURO_ASSERT(begin <= end && end <= samples_.size(),
                 "bad slice [%zu,%zu) of %zu", begin, end, samples_.size());
    Dataset out(name_, width_, height_, numClasses_);
    for (std::size_t i = begin; i < end; ++i)
        out.samples_.push_back(samples_[i]);
    return out;
}

void
Dataset::shuffle(Rng &rng)
{
    for (std::size_t i = samples_.size(); i > 1; --i)
        std::swap(samples_[i - 1], samples_[rng.uniformInt(i)]);
}

std::vector<std::size_t>
Dataset::classHistogram() const
{
    std::vector<std::size_t> hist(static_cast<std::size_t>(numClasses_), 0);
    for (const auto &s : samples_)
        ++hist[static_cast<std::size_t>(s.label)];
    return hist;
}

} // namespace datasets
} // namespace neuro
