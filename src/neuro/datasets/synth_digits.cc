#include "neuro/datasets/synth_digits.h"

#include <array>
#include <cstdlib>

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"
#include "neuro/datasets/glyphs.h"
#include "neuro/datasets/idx_loader.h"

namespace neuro {
namespace datasets {

namespace {

/** The ten digit prototypes, 8x12 binary bitmaps. */
const std::array<std::vector<std::string>, 10> kDigitRows = {{
    {
        "..####..", ".##..##.", "##....##", "##....##", "##....##",
        "##....##", "##....##", "##....##", "##....##", "##....##",
        ".##..##.", "..####..",
    },
    {
        "...##...", "..###...", ".####...", "...##...", "...##...",
        "...##...", "...##...", "...##...", "...##...", "...##...",
        "...##...", ".######.",
    },
    {
        "..####..", ".##..##.", "##....##", "......##", ".....##.",
        "....##..", "...##...", "..##....", ".##.....", "##......",
        "##......", "########",
    },
    {
        "..####..", ".##..##.", "......##", "......##", ".....##.",
        "..####..", ".....##.", "......##", "......##", "......##",
        ".##..##.", "..####..",
    },
    {
        ".....##.", "....###.", "...####.", "..##.##.", ".##..##.",
        "##...##.", "##...##.", "########", ".....##.", ".....##.",
        ".....##.", ".....##.",
    },
    {
        "########", "##......", "##......", "##......", "######..",
        "......##", "......##", "......##", "......##", "......##",
        ".##..##.", "..####..",
    },
    {
        "..####..", ".##..##.", "##......", "##......", "######..",
        "###..##.", "##....##", "##....##", "##....##", "##....##",
        ".##..##.", "..####..",
    },
    {
        "########", "......##", ".....##.", ".....##.", "....##..",
        "....##..", "...##...", "...##...", "..##....", "..##....",
        "..##....", "..##....",
    },
    {
        "..####..", ".##..##.", "##....##", "##....##", ".##..##.",
        "..####..", ".##..##.", "##....##", "##....##", "##....##",
        ".##..##.", "..####..",
    },
    {
        "..####..", ".##..##.", "##....##", "##....##", "##....##",
        "##....##", ".##.###.", "..##.##.", "......##", "......##",
        ".##..##.", "..####..",
    },
}};

/** Generate @p count samples into @p out using glyph jitter. */
void
generate(Dataset &out, std::size_t count, const SynthDigitsOptions &opt,
         const std::array<GlyphBitmap, 10> &glyphs, Rng &rng)
{
    for (std::size_t i = 0; i < count; ++i) {
        const int label = static_cast<int>(rng.uniformInt(10));
        const AffineJitter jitter = randomJitter(
            rng, opt.maxRotation, opt.minScale, opt.maxScale, opt.maxShear,
            opt.maxTranslate, opt.maxThickness, opt.noiseStddev);
        Sample s;
        s.label = label;
        s.pixels = renderGlyph(glyphs[static_cast<std::size_t>(label)],
                               opt.width, opt.height, jitter, rng);
        out.add(std::move(s));
    }
}

} // namespace

Split
makeSynthDigits(const SynthDigitsOptions &options)
{
    std::array<GlyphBitmap, 10> glyphs;
    for (std::size_t d = 0; d < 10; ++d)
        glyphs[d] = GlyphBitmap::fromRows(kDigitRows[d]);

    Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 17);
    Split split;
    split.train = Dataset("synth-digits-train", options.width,
                          options.height, 10);
    split.test = Dataset("synth-digits-test", options.width, options.height,
                         10);
    generate(split.train, options.trainSize, options, glyphs, rng);
    generate(split.test, options.testSize, options, glyphs, rng);
    return split;
}

Split
mnistLike(std::size_t train_size, std::size_t test_size, uint64_t seed)
{
    if (const char *dir = std::getenv("NEURO_MNIST_DIR")) {
        Split real;
        if (loadMnistIdx(dir, train_size, test_size, real)) {
            inform("using real MNIST from %s (%zu train / %zu test)", dir,
                   real.train.size(), real.test.size());
            return real;
        }
        warn("NEURO_MNIST_DIR=%s set but IDX files unreadable; "
             "falling back to synthetic digits", dir);
    }
    SynthDigitsOptions opt;
    opt.trainSize = train_size;
    opt.testSize = test_size;
    opt.seed = seed;
    return makeSynthDigits(opt);
}

} // namespace datasets
} // namespace neuro
