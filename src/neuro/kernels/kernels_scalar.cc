// Baseline kernel table: generic x86-64 (SSE2) / portable codegen.
// This is the variant NEURO_SIMD=off selects and the reference every
// wider table must match bit-for-bit.

#define NEURO_KERNELS_ISA_NS scalar
#define NEURO_KERNELS_ISA_NAME "scalar"
#define NEURO_KERNELS_ISA_ENUM ::neuro::kernels::SimdIsa::Scalar

#include "neuro/kernels/kernels_body.h"
