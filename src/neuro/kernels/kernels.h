/**
 * @file
 * Unified SIMD kernel layer — the one vector core every hot path
 * shares (docs/kernels.md). PR 5's batched strip kernel proved the
 * pattern inside serve/backend.cc; this layer generalizes it so
 * training, offline eval, the quantized MLP and the event-driven SNN
 * engine all run the same runtime-dispatched code instead of private
 * scalar loops.
 *
 * Dispatch model: every kernel body is compiled three times — a
 * baseline x86-64 (SSE2) translation unit, an AVX2 one and an
 * AVX512 one — and a per-process table picks the widest variant the
 * CPU supports on first use. Unlike PR 5's `target_clones`, the
 * selection is an explicit function-pointer table, which (a) needs no
 * ifunc resolver, so sanitizer builds keep the vector paths, and
 * (b) can be overridden for debugging with `NEURO_SIMD=off|avx2|avx512`
 * or the CLI's `--simd=` flag (see initKernels()).
 *
 * Summation-order contract: a wider variant may change how many
 * independent results move per instruction, but NEVER the order of
 * floating-point additions within one result. Float reductions keep
 * the project's exact schedule (four partial accumulators merged as
 * (a0+a1)+(a2+a3), then the tail, then the bias), element-wise updates
 * have one mul-add per element per sample in sample order, and the
 * kernel translation units are built with -ffp-contract=off so no
 * variant fuses a multiply into an FMA. Results are therefore
 * bit-identical across Scalar/Avx2/Avx512 and to the pre-kernel
 * scalar paths — enforced by tests/test_kernels.cc and the
 * determinism suites.
 *
 * Layouts:
 *  - dense matrices are row-major float, row stride == cols (the
 *    Matrix class's storage, passed as a raw pointer);
 *  - "strip" buffers interleave kStripWidth samples sample-minor:
 *    element k of sample b lives at in[k * kStripWidth + b];
 *  - q8 weights are row-major int8 with the bias weight in the last
 *    column, activations are uint8 codes for [0,1] (code 255 == 1.0).
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace neuro {

class Config;

namespace kernels {

/** Instruction-set level a kernel table was compiled for. */
enum class SimdIsa
{
    Scalar = 0, ///< baseline x86-64 (SSE2) / portable build.
    Avx2 = 1,   ///< 256-bit vectors.
    Avx512 = 2, ///< 512-bit vectors.
};

/** Requested dispatch policy (NEURO_SIMD / --simd= / setSimdMode). */
enum class SimdMode
{
    Auto,   ///< widest ISA the CPU supports (the default).
    Off,    ///< force the scalar table (debugging, A/B baselines).
    Avx2,   ///< force AVX2 (falls back with a warning if unsupported).
    Avx512, ///< force AVX512 (falls back with a warning if unsupported).
};

/** Samples per strip of the batched kernels (fixed SoA width). */
constexpr std::size_t kStripWidth = 16;

/** Output rows computed together per pass of the strip kernels. */
constexpr std::size_t kRowBlock = 4;

/**
 * One ISA level's kernel entry points. Filled in by the per-ISA
 * translation units (kernels_scalar.cc / kernels_avx2.cc /
 * kernels_avx512.cc, all generated from kernels_body.h); consumers
 * never touch this directly — the free functions below dispatch
 * through the active table.
 */
struct KernelTable
{
    const char *name = "scalar";
    SimdIsa isa = SimdIsa::Scalar;

    void (*gemv)(const float *w, std::size_t rows, std::size_t cols,
                 const float *x, float *y) = nullptr;
    void (*gemvT)(const float *w, std::size_t rows, std::size_t cols,
                  const float *x, float *y) = nullptr;
    void (*gemvBias)(const float *w, std::size_t rows, std::size_t cols,
                     const float *x, float *y) = nullptr;
    void (*gemvBiasStrip)(const float *w, std::size_t rows,
                          std::size_t cols, const float *in,
                          float *out) = nullptr;
    void (*gemvBiasQ8)(const int8_t *w, std::size_t rows,
                       std::size_t cols, const uint8_t *x,
                       int32_t *y) = nullptr;
    void (*addOuter)(float *w, std::size_t rows, std::size_t cols,
                     float eta, const float *d, const float *x) = nullptr;
    void (*addOuterBias)(float *w, std::size_t rows, std::size_t cols,
                         float eta, const float *d,
                         const float *x) = nullptr;
    void (*addOuterBiasBatch)(float *w, std::size_t rows,
                              std::size_t cols, float eta,
                              const float *const *deltas,
                              const float *const *acts,
                              std::size_t batch) = nullptr;
    void (*addScaled)(float *dst, const float *src, std::size_t n,
                      float scale) = nullptr;
    void (*addRowF64)(double *acc, const float *row,
                      std::size_t n) = nullptr;
    std::size_t (*popcountWords)(const uint64_t *words,
                                 std::size_t n) = nullptr;
};

/** @return the ISA level of the currently active kernel table. */
SimdIsa activeIsa();

/** @return "scalar" / "avx2" / "avx512". */
const char *isaName(SimdIsa isa);

/**
 * Select the dispatch table for @p mode. Forcing an ISA the CPU (or
 * the build) does not support warns and falls back to the widest
 * available level. Not safe concurrently with running kernels; meant
 * for startup, tests and benchmarks.
 * @return the ISA actually selected.
 */
SimdIsa setSimdMode(SimdMode mode);

/**
 * Parse "auto|off|scalar|avx2|avx512" (case-sensitive, as documented).
 * @return true and set @p mode on success; false on unknown text.
 */
bool parseSimdMode(const char *text, SimdMode *mode);

/**
 * Wire the dispatcher up from a parsed Config: `simd=off|avx2|avx512`
 * (the CLI's --simd= flag or the NEURO_SIMD environment variable via
 * parseEnv). A missing key keeps the automatic selection; an unknown
 * value warns and keeps it too. Kernels used before any init call
 * resolve NEURO_SIMD themselves, so benches and tests that never call
 * this still honor the environment override.
 */
void initKernels(const Config &cfg);

// ------------------------------------------------------------------
// Dispatched kernels. Shapes follow the Matrix convention: w is
// row-major rows x cols. See the layout notes in the file header.
// ------------------------------------------------------------------

/** y = W * x (one dot product per row, fixed 4-accumulator order). */
void gemv(const float *w, std::size_t rows, std::size_t cols,
          const float *x, float *y);

/**
 * y = W^T * x (x has rows entries, y has cols). Row-blocked walk:
 * per output element the additions run in row order, blocked four
 * rows at a time as (w0*x0 + w1*x1) + (w2*x2 + w3*x3).
 */
void gemvT(const float *w, std::size_t rows, std::size_t cols,
           const float *x, float *y);

/**
 * y = W * [x; 1]: affine product where the last column holds bias
 * weights fed by a constant 1 (@p x has cols - 1 entries).
 */
void gemvBias(const float *w, std::size_t rows, std::size_t cols,
              const float *x, float *y);

/**
 * gemvBias over a strip of kStripWidth samples at once. @p in and
 * @p out are strip buffers ((cols - 1) * kStripWidth and
 * rows * kStripWidth floats); each sample's result is bit-identical
 * to gemvBias on that sample alone. No activation is applied — the
 * caller owns the nonlinearity.
 */
void gemvBiasStrip(const float *w, std::size_t rows, std::size_t cols,
                   const float *in, float *out);

/**
 * Fixed-point q8 affine product: y[r] = w[r][cols-1] * 255 +
 * sum_i w[r][i] * x[i] in exact int32 arithmetic (the quantized
 * MLP's MAC array). Integer addition is associative, so any vector
 * width produces the same accumulators; the caller dequantizes.
 * Shapes are capped so the int32 accumulator cannot overflow.
 */
void gemvBiasQ8(const int8_t *w, std::size_t rows, std::size_t cols,
                const uint8_t *x, int32_t *y);

/** W += eta * d * x^T, skipping rows whose eta * d[r] == 0. */
void addOuter(float *w, std::size_t rows, std::size_t cols, float eta,
              const float *d, const float *x);

/**
 * W += eta * d * [x; 1]^T (@p x has cols - 1 entries; the bias column
 * sees a constant 1), skipping rows whose eta * d[r] == 0.
 */
void addOuterBias(float *w, std::size_t rows, std::size_t cols,
                  float eta, const float *d, const float *x);

/**
 * The whole minibatch's outer-product update in one pass:
 * W += eta * deltas[b] * [acts[b]; 1]^T applied for b = 0..batch-1 in
 * sample order. Per weight element the floating-point adds happen in
 * exactly the order @p batch sequential addOuterBias calls would
 * produce (and rows with eta * deltas[b][r] == 0 are skipped the same
 * way), so the result is bit-identical — but the weight matrix
 * streams through the cache once per batch instead of once per
 * sample.
 */
void addOuterBiasBatch(float *w, std::size_t rows, std::size_t cols,
                       float eta, const float *const *deltas,
                       const float *const *acts, std::size_t batch);

/** dst[i] += scale * src[i] for i in [0, n). */
void addScaled(float *dst, const float *src, std::size_t n, float scale);

/**
 * acc[i] += row[i] widened to double, for i in [0, n) — the event
 * engine's per-spike transposed-weight drive. Element chains are
 * independent, so vector width never reorders a neuron's sum.
 */
void addRowF64(double *acc, const float *row, std::size_t n);

/** @return total set bits over @p n 64-bit words. */
std::size_t popcountWords(const uint64_t *words, std::size_t n);

} // namespace kernels
} // namespace neuro
