// AVX512 kernel table: the same bodies as kernels_scalar.cc, compiled
// with -mavx512f/bw/dq/vl and a 512-bit preferred vector width (see
// src/CMakeLists.txt). Only ever called after a runtime
// __builtin_cpu_supports("avx512f") check in kernels.cc. Note the
// translation unit stays on -ffp-contract=off: AVX512 brings FMA
// instructions, and fusing would change the float results.

#define NEURO_KERNELS_ISA_NS avx512
#define NEURO_KERNELS_ISA_NAME "avx512"
#define NEURO_KERNELS_ISA_ENUM ::neuro::kernels::SimdIsa::Avx512

#include "neuro/kernels/kernels_body.h"
