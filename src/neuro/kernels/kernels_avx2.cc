// AVX2 kernel table: the same bodies as kernels_scalar.cc, compiled
// with -mavx2 -mpopcnt (see src/CMakeLists.txt) so the vectorizer uses
// 256-bit registers and hardware popcount. Only ever called after a
// runtime __builtin_cpu_supports("avx2") check in kernels.cc.

#define NEURO_KERNELS_ISA_NS avx2
#define NEURO_KERNELS_ISA_NAME "avx2"
#define NEURO_KERNELS_ISA_ENUM ::neuro::kernels::SimdIsa::Avx2

#include "neuro/kernels/kernels_body.h"
