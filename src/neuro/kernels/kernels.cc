#include "neuro/kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "neuro/common/config.h"
#include "neuro/common/logging.h"
#include "neuro/telemetry/metrics.h"

namespace neuro {
namespace kernels {

// Per-ISA tables, defined by the kernels_*.cc translation units. The
// AVX variants only exist when the toolchain could build them (CMake
// sets NEURO_KERNELS_HAVE_* on this file); a missing table simply
// narrows what dispatch can pick.
namespace scalar {
const KernelTable &table();
}
#ifdef NEURO_KERNELS_HAVE_AVX2
namespace avx2 {
const KernelTable &table();
}
#endif
#ifdef NEURO_KERNELS_HAVE_AVX512
namespace avx512 {
const KernelTable &table();
}
#endif

namespace {

/** @return true if the running CPU can execute @p isa. */
bool
cpuSupports(SimdIsa isa)
{
#if defined(__x86_64__) && defined(__GNUC__)
    switch (isa) {
    case SimdIsa::Scalar: return true;
    case SimdIsa::Avx2: return __builtin_cpu_supports("avx2") != 0;
    case SimdIsa::Avx512:
        return __builtin_cpu_supports("avx512f") != 0 &&
            __builtin_cpu_supports("avx512bw") != 0 &&
            __builtin_cpu_supports("avx512dq") != 0 &&
            __builtin_cpu_supports("avx512vl") != 0;
    }
#else
    (void)isa;
#endif
    return isa == SimdIsa::Scalar;
}

/** @return the table compiled for @p isa, or nullptr if absent. */
const KernelTable *
compiledTable(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::Scalar: return &scalar::table();
    case SimdIsa::Avx2:
#ifdef NEURO_KERNELS_HAVE_AVX2
        return &avx2::table();
#else
        return nullptr;
#endif
    case SimdIsa::Avx512:
#ifdef NEURO_KERNELS_HAVE_AVX512
        return &avx512::table();
#else
        return nullptr;
#endif
    }
    return nullptr;
}

/** @return the widest compiled-and-supported table at or below @p cap. */
const KernelTable *
widestAvailable(SimdIsa cap)
{
    static const SimdIsa order[] = {SimdIsa::Avx512, SimdIsa::Avx2,
                                    SimdIsa::Scalar};
    for (SimdIsa isa : order) {
        if (static_cast<int>(isa) > static_cast<int>(cap))
            continue;
        if (!cpuSupports(isa))
            continue;
        if (const KernelTable *t = compiledTable(isa))
            return t;
    }
    return &scalar::table();
}

/** Kernel-layer metric handles, registered on first kernel use. */
struct KernelMetrics
{
    std::shared_ptr<telemetry::Counter> gemv;
    std::shared_ptr<telemetry::Counter> gemvT;
    std::shared_ptr<telemetry::Counter> outer;
    std::shared_ptr<telemetry::Counter> popcount;
    std::shared_ptr<telemetry::Gauge> isa;
};

KernelMetrics &
metrics()
{
    // Leaked function-local (the telemetry layer's idiom): the
    // handles stay valid for late-running worker threads and exit
    // hooks whatever the static-destruction order, and hot paths pay
    // one relaxed atomic per call with no registry lookup.
    static KernelMetrics &m = *new KernelMetrics{
        telemetry::MetricRegistry::instance().counter(
            "kernels.gemv.calls"),
        telemetry::MetricRegistry::instance().counter(
            "kernels.gemvT.calls"),
        telemetry::MetricRegistry::instance().counter(
            "kernels.outer.calls"),
        telemetry::MetricRegistry::instance().counter(
            "kernels.popcount.calls"),
        telemetry::MetricRegistry::instance().gauge(
            "kernels.dispatch.isa"),
    };
    return m;
}

std::atomic<const KernelTable *> g_table{nullptr};

/** Select @p mode's table, warn on unsatisfiable forces. */
const KernelTable *
selectTable(SimdMode mode)
{
    const KernelTable *t = nullptr;
    switch (mode) {
    case SimdMode::Off: t = &scalar::table(); break;
    case SimdMode::Auto: t = widestAvailable(SimdIsa::Avx512); break;
    case SimdMode::Avx2:
    case SimdMode::Avx512: {
        const SimdIsa want = mode == SimdMode::Avx512 ? SimdIsa::Avx512
                                                      : SimdIsa::Avx2;
        t = widestAvailable(want);
        if (t->isa != want) {
            warn("kernels: %s unavailable on this CPU/build, using %s",
                 isaName(want), t->name);
        }
        break;
    }
    }
    metrics().isa->set(static_cast<double>(static_cast<int>(t->isa)));
    return t;
}

/**
 * The active table, resolved on first use: NEURO_SIMD if set (like
 * defaultSnnEngine's env fallback, so binaries that never call
 * initKernels still honor it), else the widest supported ISA.
 */
const KernelTable &
active()
{
    const KernelTable *t = g_table.load(std::memory_order_acquire);
    if (t == nullptr) {
        SimdMode mode = SimdMode::Auto;
        const char *env = std::getenv("NEURO_SIMD");
        if (env != nullptr && !parseSimdMode(env, &mode)) {
            warn("kernels: unknown NEURO_SIMD=%s (want "
                 "auto|off|avx2|avx512), using auto",
                 env);
            mode = SimdMode::Auto;
        }
        t = selectTable(mode);
        // Two racing first calls select the same table; last store
        // wins harmlessly.
        g_table.store(t, std::memory_order_release);
    }
    return *t;
}

} // namespace

SimdIsa
activeIsa()
{
    return active().isa;
}

const char *
isaName(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::Scalar: return "scalar";
    case SimdIsa::Avx2: return "avx2";
    case SimdIsa::Avx512: return "avx512";
    }
    return "unknown";
}

SimdIsa
setSimdMode(SimdMode mode)
{
    const KernelTable *t = selectTable(mode);
    g_table.store(t, std::memory_order_release);
    return t->isa;
}

bool
parseSimdMode(const char *text, SimdMode *mode)
{
    if (text == nullptr || mode == nullptr)
        return false;
    if (std::strcmp(text, "auto") == 0) {
        *mode = SimdMode::Auto;
        return true;
    }
    if (std::strcmp(text, "off") == 0 ||
        std::strcmp(text, "scalar") == 0) {
        *mode = SimdMode::Off;
        return true;
    }
    if (std::strcmp(text, "avx2") == 0) {
        *mode = SimdMode::Avx2;
        return true;
    }
    if (std::strcmp(text, "avx512") == 0) {
        *mode = SimdMode::Avx512;
        return true;
    }
    return false;
}

void
initKernels(const Config &cfg)
{
    if (!cfg.has("simd"))
        return;
    const std::string value = cfg.getString("simd", "auto");
    SimdMode mode = SimdMode::Auto;
    if (!parseSimdMode(value.c_str(), &mode)) {
        warn("ignoring invalid simd=%s (want auto|off|avx2|avx512)",
             value.c_str());
        return;
    }
    const SimdIsa isa = setSimdMode(mode);
    inform("kernels: simd=%s -> %s table", value.c_str(), isaName(isa));
}

void
gemv(const float *w, std::size_t rows, std::size_t cols, const float *x,
     float *y)
{
    metrics().gemv->inc();
    active().gemv(w, rows, cols, x, y);
}

void
gemvT(const float *w, std::size_t rows, std::size_t cols,
      const float *x, float *y)
{
    metrics().gemvT->inc();
    active().gemvT(w, rows, cols, x, y);
}

void
gemvBias(const float *w, std::size_t rows, std::size_t cols,
         const float *x, float *y)
{
    NEURO_ASSERT(cols > 0, "gemvBias needs a bias column");
    metrics().gemv->inc();
    active().gemvBias(w, rows, cols, x, y);
}

void
gemvBiasStrip(const float *w, std::size_t rows, std::size_t cols,
              const float *in, float *out)
{
    NEURO_ASSERT(cols > 0, "gemvBiasStrip needs a bias column");
    metrics().gemv->inc();
    active().gemvBiasStrip(w, rows, cols, in, out);
}

void
gemvBiasQ8(const int8_t *w, std::size_t rows, std::size_t cols,
           const uint8_t *x, int32_t *y)
{
    NEURO_ASSERT(cols > 0, "gemvBiasQ8 needs a bias column");
    // |acc| <= cols * 128 * 255; cap the fan-in so the exact int32
    // accumulator cannot overflow whatever the weights.
    NEURO_ASSERT(cols <= 65536,
                 "gemvBiasQ8 fan-in %zu would overflow int32", cols);
    metrics().gemv->inc();
    active().gemvBiasQ8(w, rows, cols, x, y);
}

void
addOuter(float *w, std::size_t rows, std::size_t cols, float eta,
         const float *d, const float *x)
{
    metrics().outer->inc();
    active().addOuter(w, rows, cols, eta, d, x);
}

void
addOuterBias(float *w, std::size_t rows, std::size_t cols, float eta,
             const float *d, const float *x)
{
    NEURO_ASSERT(cols > 0, "addOuterBias needs a bias column");
    metrics().outer->inc();
    active().addOuterBias(w, rows, cols, eta, d, x);
}

void
addOuterBiasBatch(float *w, std::size_t rows, std::size_t cols,
                  float eta, const float *const *deltas,
                  const float *const *acts, std::size_t batch)
{
    NEURO_ASSERT(cols > 0, "addOuterBiasBatch needs a bias column");
    metrics().outer->inc();
    active().addOuterBiasBatch(w, rows, cols, eta, deltas, acts, batch);
}

void
addScaled(float *dst, const float *src, std::size_t n, float scale)
{
    metrics().outer->inc();
    active().addScaled(dst, src, n, scale);
}

void
addRowF64(double *acc, const float *row, std::size_t n)
{
    metrics().gemvT->inc();
    active().addRowF64(acc, row, n);
}

std::size_t
popcountWords(const uint64_t *words, std::size_t n)
{
    metrics().popcount->inc();
    return active().popcountWords(words, n);
}

} // namespace kernels
} // namespace neuro
