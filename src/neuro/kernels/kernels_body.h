/**
 * @file
 * The kernel bodies, written once and compiled once per ISA level.
 * Each of kernels_scalar.cc / kernels_avx2.cc / kernels_avx512.cc
 * defines NEURO_KERNELS_ISA_NS / NEURO_KERNELS_ISA_NAME /
 * NEURO_KERNELS_ISA_ENUM and includes this header; the translation
 * unit's compile flags (-mavx2, -mavx512f, ...) decide how wide the
 * compiler vectorizes the very same C++ loops. Nothing here may use
 * intrinsics: the bit-identity argument of docs/kernels.md rests on
 * every variant executing the same per-result operation sequence,
 * with width only changing how many independent results advance per
 * instruction.
 *
 * Every loop follows one of two shapes:
 *  - independent element chains (gemvT, addOuter*, addScaled,
 *    addRowF64): each output element owns its additions, so
 *    vectorizing across elements is order-preserving by construction;
 *  - fixed-schedule reductions (gemv, gemvBias, the strips): four
 *    partial accumulators merged as (a0+a1)+(a2+a3), then the tail,
 *    then the bias — dotUnrolled's historical order, now the layer's
 *    contract. Single-vector reductions cannot widen without
 *    reassociating, which is why the strip kernels exist: they
 *    vectorize across kStripWidth samples instead of within one.
 *
 * The q8 and popcount kernels are exact integer arithmetic, so the
 * compiler may reassociate them freely without changing results.
 */

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "neuro/kernels/kernels.h"

#ifndef NEURO_KERNELS_ISA_NS
// Standalone-compile defaults (header self-sufficiency check); the
// real translation units always define all three macros.
#define NEURO_KERNELS_ISA_NS scalar
#define NEURO_KERNELS_ISA_NAME "scalar"
#define NEURO_KERNELS_ISA_ENUM ::neuro::kernels::SimdIsa::Scalar
#endif

namespace neuro {
namespace kernels {
namespace NEURO_KERNELS_ISA_NS {
namespace {

/**
 * 4-wide unrolled dot product — the exact accumulator schedule the
 * scalar Matrix paths have always used: independent partials broken
 * out of the loop-carried chain, merged pairwise, tail appended.
 */
inline float
dotUnrolled(const float *__restrict w, const float *__restrict x,
            std::size_t n)
{
    float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
    std::size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        acc0 += w[c] * x[c];
        acc1 += w[c + 1] * x[c + 1];
        acc2 += w[c + 2] * x[c + 2];
        acc3 += w[c + 3] * x[c + 3];
    }
    float acc = (acc0 + acc1) + (acc2 + acc3);
    for (; c < n; ++c)
        acc += w[c] * x[c];
    return acc;
}

void
kGemv(const float *w, std::size_t rows, std::size_t cols,
      const float *x, float *y)
{
    for (std::size_t r = 0; r < rows; ++r)
        y[r] = dotUnrolled(w + r * cols, x, cols);
}

void
kGemvBias(const float *w, std::size_t rows, std::size_t cols,
          const float *x, float *y)
{
    for (std::size_t r = 0; r < rows; ++r) {
        const float *__restrict wr = w + r * cols;
        y[r] = dotUnrolled(wr, x, cols - 1) + wr[cols - 1];
    }
}

void
kGemvT(const float *w, std::size_t rows, std::size_t cols,
       const float *x, float *y)
{
    // Row-blocked transposed product: streams the matrix row-major
    // and touches each y[c] cache line once per four-row block. Per
    // output element the adds run in row order — vectorizing across
    // c keeps every element's chain intact.
    float *__restrict out = y;
    for (std::size_t c = 0; c < cols; ++c)
        out[c] = 0.0f;
    std::size_t r = 0;
    for (; r + 4 <= rows; r += 4) {
        const float x0 = x[r], x1 = x[r + 1];
        const float x2 = x[r + 2], x3 = x[r + 3];
        if (x0 == 0.0f && x1 == 0.0f && x2 == 0.0f && x3 == 0.0f)
            continue;
        const float *__restrict w0 = w + r * cols;
        const float *__restrict w1 = w0 + cols;
        const float *__restrict w2 = w1 + cols;
        const float *__restrict w3 = w2 + cols;
        for (std::size_t c = 0; c < cols; ++c) {
            out[c] += (w0[c] * x0 + w1[c] * x1) +
                (w2[c] * x2 + w3[c] * x3);
        }
    }
    for (; r < rows; ++r) {
        const float xr = x[r];
        if (xr == 0.0f)
            continue;
        const float *__restrict wr = w + r * cols;
        for (std::size_t c = 0; c < cols; ++c)
            out[c] += wr[c] * xr;
    }
}

/**
 * One output row over a full strip: per sample, dotUnrolled's exact
 * schedule — four partials over the columns merged as
 * (a0+a1)+(a2+a3), tail columns, then the bias. The compiler
 * vectorizes across the kStripWidth samples.
 */
inline void
stripRow(const float *__restrict in, const float *__restrict wr,
         std::size_t inputs, float *__restrict out)
{
    float a0[kStripWidth] = {}, a1[kStripWidth] = {};
    float a2[kStripWidth] = {}, a3[kStripWidth] = {};
    std::size_t c = 0;
    for (; c + 4 <= inputs; c += 4) {
        const float *xc = in + c * kStripWidth;
        const float w0 = wr[c], w1 = wr[c + 1];
        const float w2 = wr[c + 2], w3 = wr[c + 3];
        for (std::size_t b = 0; b < kStripWidth; ++b) {
            a0[b] += w0 * xc[b];
            a1[b] += w1 * xc[kStripWidth + b];
            a2[b] += w2 * xc[2 * kStripWidth + b];
            a3[b] += w3 * xc[3 * kStripWidth + b];
        }
    }
    float acc[kStripWidth];
    for (std::size_t b = 0; b < kStripWidth; ++b)
        acc[b] = (a0[b] + a1[b]) + (a2[b] + a3[b]);
    for (; c < inputs; ++c) {
        const float wc = wr[c];
        for (std::size_t b = 0; b < kStripWidth; ++b)
            acc[b] += wc * in[c * kStripWidth + b];
    }
    const float bias = wr[inputs];
    for (std::size_t b = 0; b < kStripWidth; ++b)
        out[b] = acc[b] + bias;
}

/**
 * kRowBlock output rows in one pass over the strip: each column group
 * of activations is loaded once and feeds every row's accumulators,
 * so a strip bigger than L1 streams from L2 once per row block
 * instead of once per row. Interleaving rows changes which row's add
 * retires next, never the order within a row.
 */
inline void
stripRowBlock(const float *__restrict in, const float *const *wrs,
              std::size_t inputs, float *__restrict out)
{
    float a[kRowBlock][4][kStripWidth] = {};
    std::size_t c = 0;
    for (; c + 4 <= inputs; c += 4) {
        const float *xc = in + c * kStripWidth;
        for (std::size_t j = 0; j < kRowBlock; ++j) {
            const float *wr = wrs[j];
            const float w0 = wr[c], w1 = wr[c + 1];
            const float w2 = wr[c + 2], w3 = wr[c + 3];
            for (std::size_t b = 0; b < kStripWidth; ++b) {
                a[j][0][b] += w0 * xc[b];
                a[j][1][b] += w1 * xc[kStripWidth + b];
                a[j][2][b] += w2 * xc[2 * kStripWidth + b];
                a[j][3][b] += w3 * xc[3 * kStripWidth + b];
            }
        }
    }
    for (std::size_t j = 0; j < kRowBlock; ++j) {
        float acc[kStripWidth];
        for (std::size_t b = 0; b < kStripWidth; ++b)
            acc[b] = (a[j][0][b] + a[j][1][b]) +
                (a[j][2][b] + a[j][3][b]);
        for (std::size_t ct = c; ct < inputs; ++ct) {
            const float wc = wrs[j][ct];
            for (std::size_t b = 0; b < kStripWidth; ++b)
                acc[b] += wc * in[ct * kStripWidth + b];
        }
        const float bias = wrs[j][inputs];
        for (std::size_t b = 0; b < kStripWidth; ++b)
            out[j * kStripWidth + b] = acc[b] + bias;
    }
}

void
kGemvBiasStrip(const float *w, std::size_t rows, std::size_t cols,
               const float *in, float *out)
{
    const std::size_t inputs = cols - 1;
    std::size_t r = 0;
    for (; r + kRowBlock <= rows; r += kRowBlock) {
        const float *wrs[kRowBlock];
        for (std::size_t j = 0; j < kRowBlock; ++j)
            wrs[j] = w + (r + j) * cols;
        stripRowBlock(in, wrs, inputs, out + r * kStripWidth);
    }
    for (; r < rows; ++r)
        stripRow(in, w + r * cols, inputs, out + r * kStripWidth);
}

void
kGemvBiasQ8(const int8_t *w, std::size_t rows, std::size_t cols,
            const uint8_t *x, int32_t *y)
{
    const std::size_t fan_in = cols - 1;
    for (std::size_t r = 0; r < rows; ++r) {
        const int8_t *__restrict wr = w + r * cols;
        // Bias weight fed by the constant-1 input (code 255), then a
        // widening int8 x uint8 MAC — exact integer arithmetic, so
        // the vectorizer's partial sums are harmless.
        int32_t acc = static_cast<int32_t>(wr[fan_in]) * 255;
        for (std::size_t i = 0; i < fan_in; ++i)
            acc += static_cast<int32_t>(wr[i]) * x[i];
        y[r] = acc;
    }
}

void
kAddOuter(float *w, std::size_t rows, std::size_t cols, float eta,
          const float *d, const float *x)
{
    const float *__restrict in = x;
    for (std::size_t r = 0; r < rows; ++r) {
        float *__restrict wr = w + r * cols;
        const float scale = eta * d[r];
        if (scale == 0.0f)
            continue;
        for (std::size_t c = 0; c < cols; ++c)
            wr[c] += scale * in[c];
    }
}

void
kAddOuterBias(float *w, std::size_t rows, std::size_t cols, float eta,
              const float *d, const float *x)
{
    const float *__restrict in = x;
    const std::size_t n = cols - 1;
    for (std::size_t r = 0; r < rows; ++r) {
        float *__restrict wr = w + r * cols;
        const float scale = eta * d[r];
        if (scale == 0.0f)
            continue;
        for (std::size_t c = 0; c < n; ++c)
            wr[c] += scale * in[c];
        wr[n] += scale; // bias input is the constant 1.
    }
}

void
kAddOuterBiasBatch(float *w, std::size_t rows, std::size_t cols,
                   float eta, const float *const *deltas,
                   const float *const *acts, std::size_t batch)
{
    const std::size_t n = cols - 1;
    // Register-tiled accumulation: a kBatchAccTile-float slice of the
    // weight row is loaded into an accumulator (a handful of vector
    // registers once vectorised), every sample's contribution is added
    // into it in sample order, and it is stored back once — so each
    // weight element moves through memory once per batch instead of
    // once per sample, and the inner trip count is a compile-time
    // constant the vectoriser unrolls without checks. The outer
    // kBatchColGroup loop keeps the activation slices for the whole
    // minibatch L1-resident while every row streams over them. Per
    // weight element the adds happen in one rounded float chain in
    // sample order (b ascending) with the same zero-scale skip —
    // exactly the FP sequence `batch` sequential kAddOuterBias calls
    // produce, so the result is bit-identical.
    constexpr std::size_t kBatchAccTile = 64;
    constexpr std::size_t kBatchColGroup = 256;
    for (std::size_t c0 = 0; c0 < n; c0 += kBatchColGroup) {
        const std::size_t c1 =
            c0 + kBatchColGroup < n ? c0 + kBatchColGroup : n;
        for (std::size_t r = 0; r < rows; ++r) {
            float *__restrict wr = w + r * cols;
            std::size_t c = c0;
            for (; c + kBatchAccTile <= c1; c += kBatchAccTile) {
                float acc[kBatchAccTile];
                for (std::size_t k = 0; k < kBatchAccTile; ++k)
                    acc[k] = wr[c + k];
                for (std::size_t b = 0; b < batch; ++b) {
                    const float scale = eta * deltas[b][r];
                    if (scale == 0.0f)
                        continue;
                    const float *__restrict x = acts[b] + c;
                    for (std::size_t k = 0; k < kBatchAccTile; ++k)
                        acc[k] += scale * x[k];
                }
                for (std::size_t k = 0; k < kBatchAccTile; ++k)
                    wr[c + k] = acc[k];
            }
            // Ragged tail of the column group (or of the matrix).
            if (c < c1) {
                for (std::size_t b = 0; b < batch; ++b) {
                    const float scale = eta * deltas[b][r];
                    if (scale == 0.0f)
                        continue;
                    const float *__restrict x = acts[b];
                    for (std::size_t cc = c; cc < c1; ++cc)
                        wr[cc] += scale * x[cc];
                }
            }
        }
    }
    for (std::size_t r = 0; r < rows; ++r) {
        float *__restrict wr = w + r * cols;
        for (std::size_t b = 0; b < batch; ++b) {
            const float scale = eta * deltas[b][r];
            if (scale != 0.0f)
                wr[n] += scale; // bias input is the constant 1.
        }
    }
}

void
kAddScaled(float *dst, const float *src, std::size_t n, float scale)
{
    float *__restrict out = dst;
    const float *__restrict in = src;
    for (std::size_t i = 0; i < n; ++i)
        out[i] += scale * in[i];
}

void
kAddRowF64(double *acc, const float *row, std::size_t n)
{
    double *__restrict out = acc;
    const float *__restrict in = row;
    // Independent per-element double chains: the event engine calls
    // this once per input spike, so element i accumulates its spikes
    // in emission order whatever the vector width.
    // neurolint: ordered-sum
    for (std::size_t i = 0; i < n; ++i)
        out[i] += static_cast<double>(in[i]);
}

std::size_t
kPopcountWords(const uint64_t *words, std::size_t n)
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i)
        total += static_cast<std::size_t>(std::popcount(words[i]));
    return total;
}

} // namespace

const KernelTable &
table()
{
    static const KernelTable t = [] {
        KernelTable kt;
        kt.name = NEURO_KERNELS_ISA_NAME;
        kt.isa = NEURO_KERNELS_ISA_ENUM;
        kt.gemv = kGemv;
        kt.gemvT = kGemvT;
        kt.gemvBias = kGemvBias;
        kt.gemvBiasStrip = kGemvBiasStrip;
        kt.gemvBiasQ8 = kGemvBiasQ8;
        kt.addOuter = kAddOuter;
        kt.addOuterBias = kAddOuterBias;
        kt.addOuterBiasBatch = kAddOuterBiasBatch;
        kt.addScaled = kAddScaled;
        kt.addRowF64 = kAddRowF64;
        kt.popcountWords = kPopcountWords;
        return kt;
    }();
    return t;
}

} // namespace NEURO_KERNELS_ISA_NS
} // namespace kernels
} // namespace neuro
