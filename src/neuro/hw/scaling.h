/**
 * @file
 * Large-scale crossover study (the paper's closing conclusion: "Only
 * for very large-scale implementations, SNNs could become more
 * attractive (area, delay, energy and power, but still not accuracy)
 * than machine-learning models").
 *
 * For a sweep of network scales this module builds both accelerators in
 * both styles and reports who wins each metric, locating the crossover
 * scale where the multiplier-free SNN datapath overtakes the MLP in
 * silicon.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "neuro/hw/expanded.h"
#include "neuro/hw/folded.h"

namespace neuro {
namespace hw {

/** One network scale to evaluate. */
struct ScalePoint
{
    std::size_t inputs = 0;     ///< input count.
    std::size_t mlpHidden = 0;  ///< MLP hidden neurons.
    std::size_t mlpOutputs = 0; ///< MLP outputs.
    std::size_t snnNeurons = 0; ///< SNN neurons.
};

/** Both designs' key metrics at one scale. */
struct ScaleComparison
{
    ScalePoint scale;          ///< the evaluated configuration.
    double mlpExpandedMm2 = 0; ///< expanded MLP total area.
    double snnExpandedMm2 = 0; ///< expanded SNNwot total area.
    double mlpFoldedMm2 = 0;   ///< folded MLP total area (ni = 16).
    double snnFoldedMm2 = 0;   ///< folded SNNwot total area (ni = 16).
    double mlpExpandedNsPerImage = 0; ///< expanded MLP latency.
    double snnExpandedNsPerImage = 0; ///< expanded SNNwot latency.
    double mlpExpandedUj = 0;  ///< expanded MLP energy/image.
    double snnExpandedUj = 0;  ///< expanded SNNwot energy/image.

    /** @return true if the expanded SNN is smaller than the MLP. */
    bool
    snnWinsExpandedArea() const
    {
        return snnExpandedMm2 < mlpExpandedMm2;
    }
    /** @return true if the folded SNN is smaller than the MLP. */
    bool
    snnWinsFoldedArea() const
    {
        return snnFoldedMm2 < mlpFoldedMm2;
    }
};

/**
 * Evaluate both designs at every scale.
 * Scales keep the paper's shape (SNN needs ~3x the MLP's hidden
 * neurons for its best accuracy) while growing the problem size.
 */
std::vector<ScaleComparison>
scalingStudy(const std::vector<ScalePoint> &scales,
             const TechParams &tech = defaultTech());

/** The default scale ladder: MNIST-sized up to 64x larger. */
std::vector<ScalePoint> defaultScaleLadder();

/**
 * Crossover summary: the smallest evaluated scale (by expanded MLP
 * area) at which the expanded SNN wins area, or nullptr-like index -1.
 */
int expandedCrossoverIndex(const std::vector<ScaleComparison> &results);

} // namespace hw
} // namespace neuro

