/**
 * @file
 * Best-effort TrueNorth core reimplementation (Section 5), mirroring the
 * paper's own reconstruction from Merolla et al.: a digital spiking core
 * with 1024 axon inputs, 256 neurons, a 1024x256 binary synaptic
 * crossbar, per-axon types (4) selecting one of four signed 9-bit
 * weights per neuron, running at 1 MHz (one tick per ms so peak spike
 * rates stay below 1 kHz, consistent with biology).
 *
 * Two models are provided: the hardware cost model (area/speed/energy,
 * compared against SNNwot folded ni=1 in the paper) and a functional
 * model that quantizes trained SNN weights into the TrueNorth format
 * (binary crossbar + 4 axon-type weights) to measure the accuracy cost
 * of that constraint.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "neuro/common/matrix.h"
#include "neuro/hw/design.h"

namespace neuro {
namespace hw {

/** TrueNorth core geometry. */
struct TrueNorthConfig
{
    std::size_t axons = 1024;   ///< input lines.
    std::size_t neurons = 256;  ///< output neurons.
    int axonTypes = 4;          ///< weight classes per neuron.
    int weightBits = 9;         ///< signed weight precision.
    double tickNs = 1000.0;     ///< 1 MHz operation.
    int ticksPerImage = 1024;   ///< presentation window in ticks.
};

/** Hardware cost model of one core (compared against 3.30 mm^2,
 *  1024 us/image, 2.48 uJ in the paper's 65nm reimplementation). */
Design buildTrueNorthCore(const TrueNorthConfig &config = {},
                          const TechParams &tech = defaultTech());

/**
 * Multi-core TrueNorth system: networks that exceed one core's 1024
 * axons x 256 neurons are tiled neuron-wise across cores (each core
 * sees every input axon; output neurons are sharded), with the mesh
 * merging the per-core winners. Models the TrueNorth chip's 4096-core
 * scalability argument at small scale.
 *
 * @param neurons total output neurons to map.
 * @param inputs  input axons (must fit one core's axon count).
 */
Design buildTrueNorthSystem(std::size_t neurons, std::size_t inputs,
                            const TrueNorthConfig &config = {},
                            const TechParams &tech = defaultTech());

/** @return cores needed to map @p neurons outputs. */
std::size_t trueNorthCoresFor(std::size_t neurons,
                              const TrueNorthConfig &config = {});

/**
 * Functional TrueNorth-format quantization of a trained weight matrix
 * (neurons x inputs, non-negative weights):
 *  - every input (axon) is assigned one of 4 types by 1-D k-means over
 *    the column means;
 *  - every neuron stores one weight per type (mean of its weights over
 *    that type's inputs, rounded to 9-bit);
 *  - the crossbar bit c(n,i) is set when using the type weight is
 *    closer to the original weight than dropping the synapse.
 * Inference: potential(n) = sum_i c(n,i) * s(n, type(i)) * count(i).
 */
class TrueNorthFunctional
{
  public:
    /** Quantize @p weights (rows = neurons). */
    explicit TrueNorthFunctional(const Matrix &weights,
                                 const TrueNorthConfig &config = {});

    /** @return per-axon type assignments. */
    const std::vector<int> &axonTypes() const { return types_; }

    /** @return the type weight s(neuron, type). */
    int typeWeight(std::size_t neuron, int type) const;

    /** @return true if crossbar bit (neuron, input) is connected. */
    bool connected(std::size_t neuron, std::size_t input) const;

    /** Winner (max potential) for per-input spike counts. */
    int forward(const uint8_t *counts,
                std::vector<int64_t> *potentials = nullptr) const;

    /** Mean absolute quantization error vs the original weights. */
    double quantizationError() const { return quantError_; }

  private:
    std::size_t numNeurons_;
    std::size_t numInputs_;
    int numTypes_;
    std::vector<int> types_;          ///< per-input axon type.
    std::vector<int16_t> typeWeights_;///< neurons x types.
    std::vector<uint8_t> crossbar_;   ///< neurons x inputs, 0/1.
    double quantError_ = 0.0;
};

} // namespace hw
} // namespace neuro

