#include "neuro/hw/design.h"

#include <iomanip>

#include "neuro/common/logging.h"

namespace neuro {
namespace hw {

Design::Design(std::string name, const TechParams &tech)
    : name_(std::move(name)), tech_(tech)
{
}

void
Design::addOperators(const OperatorSpec &spec, std::size_t count,
                     uint64_t ops_per_image)
{
    NEURO_ASSERT(count > 0, "operator group needs instances");
    OperatorGroup group;
    group.spec = spec;
    group.count = count;
    group.opsPerImage = ops_per_image;
    groups_.push_back(std::move(group));
}

void
Design::addSram(SramArray array)
{
    srams_.push_back(std::move(array));
}

void
Design::setClockNs(double ns)
{
    NEURO_ASSERT(ns > 0.0, "clock period must be positive");
    clockNs_ = ns;
}

void
Design::setCyclesPerImage(uint64_t cycles)
{
    NEURO_ASSERT(cycles > 0, "cycles per image must be positive");
    cyclesPerImage_ = cycles;
}

double
Design::areaNoSramMm2() const
{
    // Clocked state not covered by an operator group.
    double um2 = registerBits_ * tech_.regAreaPerBitUm2;
    for (const auto &g : groups_)
        um2 += g.totalAreaUm2();
    return um2 / 1e6;
}

double
Design::sramAreaMm2() const
{
    double um2 = 0.0;
    for (const auto &s : srams_)
        um2 += s.totalAreaUm2();
    return um2 / 1e6;
}

double
Design::totalAreaMm2() const
{
    return areaNoSramMm2() + sramAreaMm2();
}

double
Design::energyPerImageUj() const
{
    double pj = 0.0;
    for (const auto &g : groups_)
        pj += g.energyPerImagePj();
    for (const auto &s : srams_)
        pj += s.energyPerImagePj();
    // Register/clock energy: all clocked bits toggle every cycle.
    pj += registerBits_ * tech_.regEnergyPerBitPj *
          static_cast<double>(cyclesPerImage_);
    return pj / 1e6;
}

double
Design::staticEnergyPerImageUj() const
{
    const double leakage_w = totalAreaMm2() * tech_.leakagePowerWPerMm2;
    const double seconds = timePerImageNs() * 1e-9;
    return leakage_w * seconds * 1e6;
}

double
Design::totalEnergyPerImageUj() const
{
    return energyPerImageUj() + staticEnergyPerImageUj();
}

double
Design::timePerImageNs() const
{
    return clockNs_ * static_cast<double>(cyclesPerImage_);
}

double
Design::powerW() const
{
    const double dynamic_w =
        energyPerImageUj() * 1e-6 / (timePerImageNs() * 1e-9);
    const double clock_w = registerKbits() * tech_.clockPowerWPerKbit;
    const double leakage_w = totalAreaMm2() * tech_.leakagePowerWPerMm2;
    return dynamic_w + clock_w + leakage_w;
}

double
Design::registerKbits() const
{
    return registerBits_ / 1000.0;
}

void
Design::print(std::ostream &os) const
{
    os << "design: " << name_ << "\n";
    os << std::fixed << std::setprecision(3);
    for (const auto &g : groups_) {
        os << "  " << std::left << std::setw(34) << g.spec.name
           << " x" << std::setw(7) << g.count
           << " area " << g.totalAreaUm2() / 1e6 << " mm2\n";
    }
    for (const auto &s : srams_) {
        os << "  SRAM " << std::left << std::setw(29) << s.name << " x"
           << std::setw(7) << s.numBanks << " area "
           << s.totalAreaUm2() / 1e6 << " mm2\n";
    }
    os << "  area (no SRAM) " << areaNoSramMm2() << " mm2, total "
       << totalAreaMm2() << " mm2\n";
    os << "  clock " << clockNs_ << " ns, " << cyclesPerImage_
       << " cycles/image, energy " << totalEnergyPerImageUj()
       << " uJ/image\n";
}

} // namespace hw
} // namespace neuro
