/**
 * @file
 * The 65nm technology library: per-operator area/energy/delay parameters
 * for composing accelerator designs, playing the role Synopsys' TSMC
 * 65nm GPlus high-VT .lib played in the paper.
 *
 * Calibration: the paper publishes per-operator layout areas (Table 4),
 * SRAM bank characteristics (Table 6), whole-design delays and energies
 * (Tables 5, 7, 9). The constants here are fitted to those measurements;
 * e.g. the adder-tree model area = 5.77 um^2 x full-adder-count + 306
 * um^2 reproduces all three published trees (784-in: 45,436; 100-in:
 * ~5,700; 15-in: 1,131 um^2) and generalizes to the SNN trees. Every
 * constant is documented with the measurement it comes from; design
 * *structure* (operator counts, SRAM geometry, cycle counts) is always
 * derived from first principles, never hardcoded.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace neuro {
namespace hw {

/** Technology and calibration parameters (TSMC 65nm GPlus high VT). */
struct TechParams
{
    // ---- area (um^2) ----
    /** Area per full adder in a tree (fit of Table 4's three trees). */
    double faAreaUm2 = 5.768;
    /** Fixed per-tree overhead (same fit). */
    double treeFixedUm2 = 306.0;
    /** 8x8-bit multiplier (Table 4: 862 um^2); scales ~ bits^2/64. */
    double mult8AreaUm2 = 862.0;
    /** Gaussian CLT random generator, 4 LFSRs (Table 4: 1,749 um^2). */
    double gaussRngAreaUm2 = 1749.0;
    /** Comparator area per bit (Table 4 max op: 6,081 um^2 for a
     *  19-comparator, 24-bit max over 20 inputs -> ~13.3 um^2/bit). */
    double cmpAreaPerBitUm2 = 13.3;
    /** Register area per bit (standard-cell DFF). */
    double regAreaPerBitUm2 = 4.0;
    /** Per-input spike-decode cell of the SNNwot datapath (shifters +
     *  partial-product wiring; fit: (89,006 - tree(784,12)) / 784). */
    double spikeDecodeAreaUm2 = 32.9;
    /** SNNwt per-neuron LIF extras, fixed part: leak interpolation,
     *  potential comparator, refractory/inhibition gating. Together with
     *  the per-input part below this fits Table 4's SNNwt tree
     *  (60,820 = tree(784,8) + 2,000 + 17.45 x 784) and Table 5's
     *  small-scale 4x4 SNN layout. */
    double lifFixedAreaUm2 = 2000.0;
    /** SNNwt per-neuron LIF extras, per-input part (input gating and
     *  spike bookkeeping). */
    double lifPerInputAreaUm2 = 17.45;
    /** Pixel-to-spike-count converter channel (Figure 7: 9 comparators
     *  plus a 9->4 encoder). */
    double convertorAreaUm2 = 1050.0;
    /** Piecewise-linear sigmoid unit: 16x2x8b coefficient table, segment
     *  select and control; the multiply-add itself reuses the neuron's
     *  MAC datapath for one extra cycle (Section 4.3.1). */
    double sigmoidUnitAreaUm2 = 600.0;
    /** Per-neuron control FSM of a folded datapath. */
    double neuronControlAreaUm2 = 420.0;
    /** Folded SNNwot per-neuron datapath overhead beyond the adder tree
     *  (wide 12-bit lane buffering, double-buffered inputs, potential
     *  write-back): fixed + per-lane parts, fitted to Table 7's SNNwot
     *  rows (the paper attributes the SNNwot/SNNwt gap to "operators
     *  which accommodate ni x max-spikes simultaneous inputs"). */
    double wotLaneFixedUm2 = 2690.0;
    double wotLanePerNiUm2 = 470.0;
    /** Folded SNNwt per-neuron extras (threshold compare, shared leak
     *  slice, spike gating): fixed + per-lane, fitted to Table 7. */
    double wtExtrasFixedUm2 = 690.0;
    double wtExtrasPerNiUm2 = 190.0;
    /** STDP per-neuron fixed logic: FSM, leak unit, refractory,
     *  inhibitory and homeostasis counters (Section 4.4, fit to
     *  Table 9). */
    double stdpFixedAreaUm2 = 5900.0;
    /** STDP per-input logic: last-spike register, LTP comparator,
     *  increment/decrement adder (fit to Table 9's ni slope). */
    double stdpPerInputAreaUm2 = 611.0;
    /** Expanded-design synaptic storage, um^2 per bit (Table 4: both
     *  MLP 6.49 mm^2 / 635 kbit and SNN 19.27 mm^2 / 1.88 Mbit give
     *  10.24 um^2/bit — wide flat access needs small banks). */
    double expandedSramAreaPerBitUm2 = 10.24;

    // ---- energy (pJ per operation) ----
    /** Energy per full adder toggle in a tree. */
    double faEnergyPj = 0.0058;
    /** 8x8 multiply (fit of expanded MLP: 0.06 uJ / 79,510 MACs). */
    double mult8EnergyPj = 0.70;
    /** Gaussian RNG step. */
    double gaussRngEnergyPj = 1.8;
    /** Comparator energy per bit. */
    double cmpEnergyPerBitPj = 0.012;
    /** Register clock/toggle energy per bit per cycle. */
    double regEnergyPerBitPj = 0.0024;
    /** Spike-decode cell op. */
    double spikeDecodeEnergyPj = 0.05;
    /** LIF extras per active cycle. */
    double lifExtrasEnergyPj = 1.4;
    /** Convertor channel op. */
    double convertorEnergyPj = 0.35;
    /** Sigmoid unit evaluation. */
    double sigmoidUnitEnergyPj = 1.1;
    /** STDP weight-update per synapse. */
    double stdpUpdateEnergyPj = 0.25;
    /** Expanded-design SRAM read energy per bit. */
    double expandedSramEnergyPerBitPj = 0.018;

    // ---- timing (ns) ----
    /** 8x8 multiplier critical path. */
    double multDelayNs = 1.40;
    /** Adder-tree delay per level. */
    double treeDelayPerLevelNs = 0.20;
    /** Comparator stage delay. */
    double cmpDelayNs = 0.22;
    /** Sigmoid-unit delay. */
    double sigmoidDelayNs = 0.42;
    /** Register setup + clock skew margin. */
    double regDelayNs = 0.25;
    /** Spike-decode delay. */
    double spikeDecodeDelayNs = 0.18;
    /** SRAM word access time within a folded datapath's cycle. */
    double sramAccessNs = 0.55;
    /** Per-level delay of the small per-neuron folded trees (carry-save
     *  form, faster than the generic tree levels). */
    double foldedTreeDelayPerLevelNs = 0.15;

    // ---- static power ----
    /** Leakage power per mm^2 (high-VT 65nm). */
    double leakagePowerWPerMm2 = 0.012;
    /** Clock-tree power per kilo-register-bit at 500 MHz equivalent
     *  (Table 5 notes clock is 60% of SNN power, 20% of MLP power). */
    double clockPowerWPerKbit = 0.010;
};

/** @return the default calibrated 65nm parameters. */
const TechParams &defaultTech();

/**
 * Number of full adders in a balanced adder tree summing @p num_inputs
 * operands of @p bits bits (operand width grows one bit per level).
 */
uint64_t adderTreeFaCount(std::size_t num_inputs, int bits);

/** @return ceil(log2(n)) (0 for n <= 1). */
int log2Ceil(std::size_t n);

} // namespace hw
} // namespace neuro

