#include "neuro/hw/tech.h"

#include "neuro/common/logging.h"

namespace neuro {
namespace hw {

const TechParams &
defaultTech()
{
    static const TechParams params;
    return params;
}

uint64_t
adderTreeFaCount(std::size_t num_inputs, int bits)
{
    NEURO_ASSERT(bits > 0, "operand width must be positive");
    if (num_inputs <= 1)
        return 0;
    // Level l of the balanced tree has ceil(n / 2^l) adders of width
    // (bits + l): operand width grows one bit per level to hold carries.
    uint64_t fa = 0;
    std::size_t operands = num_inputs;
    int level = 1;
    while (operands > 1) {
        const std::size_t adders = operands / 2;
        fa += static_cast<uint64_t>(adders) *
              static_cast<uint64_t>(bits + level);
        operands = adders + (operands % 2);
        ++level;
    }
    return fa;
}

int
log2Ceil(std::size_t n)
{
    int bits = 0;
    std::size_t v = 1;
    while (v < n) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

} // namespace hw
} // namespace neuro
