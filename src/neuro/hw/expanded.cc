#include "neuro/hw/expanded.h"

#include <algorithm>

#include "neuro/common/logging.h"

namespace neuro {
namespace hw {

namespace {

/** Expanded-design synaptic storage: wide flat access, one "bank". */
SramArray
makeExpandedStorage(const std::string &name, uint64_t weight_bits_total,
                    uint64_t reads_per_image, const TechParams &tech)
{
    SramArray array;
    array.name = name;
    array.numBanks = 1;
    array.bank.widthBits = 128;
    array.bank.depth = static_cast<std::size_t>(
        (weight_bits_total + 127) / 128);
    array.bank.areaUm2 = static_cast<double>(weight_bits_total) *
                         tech.expandedSramAreaPerBitUm2;
    // A "read" here is a full-width fetch of every weight.
    array.bank.readEnergyPj = static_cast<double>(weight_bits_total) *
                              tech.expandedSramEnergyPerBitPj;
    array.readsPerImage = reads_per_image;
    return array;
}

} // namespace

void
addReadoutMaxTree(Design &design, const TechParams &tech,
                  std::size_t neurons, int bits)
{
    // First level: groups of up to 20 inputs; second level: one max over
    // the group winners (the paper's 15x20 + 1x15 structure for 300).
    constexpr std::size_t group = 20;
    const std::size_t full_groups = neurons / group;
    const std::size_t rem = neurons % group;
    if (full_groups > 0) {
        design.addOperators(makeMaxTree(tech, group, bits), full_groups,
                            full_groups);
    }
    if (rem > 1)
        design.addOperators(makeMaxTree(tech, rem, bits), 1, 1);
    const std::size_t winners = full_groups + (rem > 0 ? 1 : 0);
    if (winners > 1)
        design.addOperators(makeMaxTree(tech, winners, bits), 1, 1);
}

Design
buildExpandedMlp(const MlpTopology &topo, const TechParams &tech)
{
    NEURO_ASSERT(topo.inputs > 0 && topo.hidden > 0 && topo.outputs > 0,
                 "empty topology");
    Design design("expanded MLP", tech);

    // One multiplier per synapse (biases included), Table 4's dominant
    // cost.
    const uint64_t mults = topo.weightCount();
    design.addOperators(makeMultiplier(tech, 8),
                        static_cast<std::size_t>(mults), mults);
    // One adder tree per neuron.
    design.addOperators(makeAdderTree(tech, topo.inputs, 8), topo.hidden,
                        topo.hidden);
    design.addOperators(makeAdderTree(tech, topo.hidden, 8), topo.outputs,
                        topo.outputs);
    // Sigmoid coefficient tables per neuron.
    design.addOperators(makeSigmoidUnit(tech), topo.hidden + topo.outputs,
                        topo.hidden + topo.outputs);
    // Pipeline registers: layer activations.
    design.addRegisterBits(
        8.0 * static_cast<double>(topo.inputs + topo.hidden +
                                  topo.outputs));

    design.addSram(makeExpandedStorage("weights (flat)",
                                       mults * 8, 1, tech));

    // Whole-layer combinational stage: multiplier + adder tree +
    // sigmoid (paper: 3.79 ns).
    const double clock = tech.multDelayNs +
        tech.treeDelayPerLevelNs *
            static_cast<double>(log2Ceil(topo.inputs)) +
        tech.sigmoidDelayNs;
    design.setClockNs(clock);
    design.setCyclesPerImage(4); // latch-in, hidden, output, latch-out.
    return design;
}

Design
buildExpandedSnnWot(const SnnTopology &topo, const TechParams &tech)
{
    NEURO_ASSERT(topo.inputs > 0 && topo.neurons > 0, "empty topology");
    Design design("expanded SNNwot", tech);

    // Pixel-to-spike-count converters, one per input (Figure 7).
    design.addOperators(makeConvertor(tech), topo.inputs, topo.inputs);
    // Per-neuron weighted-spike adder tree: 12-bit products (8-bit
    // weight x 4-bit count) plus per-input shift-decode cells.
    design.addOperators(makeAdderTree(tech, topo.inputs, 12), topo.neurons,
                        topo.neurons);
    design.addOperators(makeSpikeDecode(tech), topo.inputs * topo.neurons,
                        topo.inputs * topo.neurons);
    // Readout max tree over the 24-bit potentials.
    addReadoutMaxTree(design, tech, topo.neurons, 24);
    design.addRegisterBits(
        4.0 * static_cast<double>(topo.inputs) + // spike counts
        24.0 * static_cast<double>(topo.neurons)); // potentials

    design.addSram(makeExpandedStorage("weights (flat)",
                                       topo.weightCount() * 8, 1, tech));

    // Convertor stage + decode + the wide tree over the 4 partial
    // products per input (paper: 3.17 ns).
    const double clock = 0.35 + tech.spikeDecodeDelayNs +
        tech.treeDelayPerLevelNs *
            static_cast<double>(log2Ceil(topo.inputs * 4));
    design.setClockNs(clock);
    design.setCyclesPerImage(3); // convert, accumulate, max (3-stage).
    return design;
}

Design
buildExpandedSnnWt(const SnnTopology &topo, int period_cycles,
                   const TechParams &tech)
{
    NEURO_ASSERT(topo.inputs > 0 && topo.neurons > 0, "empty topology");
    NEURO_ASSERT(period_cycles > 0, "period must be positive");
    Design design("expanded SNNwt", tech);
    const auto cycles = static_cast<uint64_t>(period_cycles);

    // One Gaussian inter-spike-interval generator per input pixel.
    design.addOperators(makeGaussianRng(tech), topo.inputs,
                        topo.inputs * cycles);
    // Per-neuron 8-bit adder tree, active every 1 ms step.
    design.addOperators(makeAdderTree(tech, topo.inputs, 8), topo.neurons,
                        topo.neurons * cycles);
    // Per-neuron LIF machinery (leak, threshold compare, gating).
    design.addOperators(makeLifExtras(tech, topo.inputs), topo.neurons,
                        topo.neurons * cycles);
    design.addRegisterBits(
        24.0 * static_cast<double>(topo.neurons) + // potentials
        8.0 * static_cast<double>(topo.inputs));   // interval counters

    // Weights fetched every step.
    design.addSram(makeExpandedStorage("weights (flat)",
                                       topo.weightCount() * 8, cycles,
                                       tech));

    const double clock = tech.treeDelayPerLevelNs *
            static_cast<double>(log2Ceil(topo.inputs)) +
        tech.cmpDelayNs + tech.regDelayNs;
    design.setClockNs(clock);
    design.setCyclesPerImage(cycles); // one cycle per simulated ms.
    return design;
}

} // namespace hw
} // namespace neuro
