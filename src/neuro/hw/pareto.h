/**
 * @file
 * Design-space enumeration and Pareto analysis: every accelerator this
 * library can build for a workload (expanded / folded x fold factor x
 * hardware-neuron pool), reduced to the area/energy/latency frontier —
 * the view an embedded-system architect (the paper's stated audience)
 * actually selects from.
 */

#pragma once

#include <string>
#include <vector>

#include "neuro/hw/expanded.h"
#include "neuro/hw/folded.h"

namespace neuro {
namespace hw {

/** One candidate design's selection metrics. */
struct DesignPoint
{
    std::string label;     ///< e.g. "MLP folded ni=4".
    double areaMm2 = 0;    ///< total area.
    double energyUj = 0;   ///< energy per image.
    double latencyNs = 0;  ///< time per image.

    /** @return true if this point dominates @p other (no worse on all
     *  three metrics, strictly better on at least one). */
    bool dominates(const DesignPoint &other) const;
};

/** Enumeration knobs. */
struct EnumerateOptions
{
    std::vector<std::size_t> foldFactors = {1, 2, 4, 8, 16, 32};
    std::vector<std::size_t> mlpPools = {}; ///< extra pooled variants.
    bool includeExpanded = true;            ///< expanded designs too.
    bool includeSnnWt = true;               ///< timed SNN designs.
};

/** Build every candidate design for the topologies. */
std::vector<DesignPoint>
enumerateDesigns(const MlpTopology &mlp, const SnnTopology &snn,
                 const EnumerateOptions &options = {},
                 const TechParams &tech = defaultTech());

/**
 * @return indices of the non-dominated points, sorted by area.
 * Deterministic: ties keep the earlier point.
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<DesignPoint> &points);

} // namespace hw
} // namespace neuro

