/**
 * @file
 * Design composition: an accelerator design is a bag of operator groups
 * plus SRAM arrays, a clock period (the longest operator chain of the
 * pipeline stage), and a per-image cycle count. From these the model
 * derives the published metrics: area with/without SRAM (Tables 4, 7),
 * delay, per-image energy, and power (Table 5).
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "neuro/hw/operators.h"
#include "neuro/hw/sram.h"

namespace neuro {
namespace hw {

/** A composed accelerator design and its activity profile. */
class Design
{
  public:
    /** Construct an empty design against @p tech (copied). */
    explicit Design(std::string name,
                    const TechParams &tech = defaultTech());

    /** @return the technology parameters the design was built with. */
    const TechParams &tech() const { return tech_; }

    /** @return the design name. */
    const std::string &name() const { return name_; }

    /** Add a group of identical operators. */
    void addOperators(const OperatorSpec &spec, std::size_t count,
                      uint64_t ops_per_image);

    /** Add an SRAM array. */
    void addSram(SramArray array);

    /** Set the clock period (critical path) in ns. */
    void setClockNs(double ns);
    /** @return the clock period in ns. */
    double clockNs() const { return clockNs_; }

    /** Set the number of cycles needed per processed image. */
    void setCyclesPerImage(uint64_t cycles);
    /** @return cycles per image. */
    uint64_t cyclesPerImage() const { return cyclesPerImage_; }

    /** @return logic (non-SRAM) area in mm^2. */
    double areaNoSramMm2() const;
    /** @return SRAM area in mm^2. */
    double sramAreaMm2() const;
    /** @return total area in mm^2. */
    double totalAreaMm2() const;

    /** @return dynamic energy per image in uJ (operators + SRAM). */
    double energyPerImageUj() const;
    /** @return static (leakage) energy per image in uJ. */
    double staticEnergyPerImageUj() const;
    /** @return total energy per image in uJ. */
    double totalEnergyPerImageUj() const;

    /** @return time to process one image in ns. */
    double timePerImageNs() const;

    /** @return average power in W while processing. */
    double powerW() const;

    /** @return total register bits (for the clock-tree power model). */
    double registerKbits() const;
    /** Account @p bits of clocked state (registers). */
    void addRegisterBits(double bits) { registerBits_ += bits; }

    /** @return the operator groups (for Table 4-style breakdowns). */
    const std::vector<OperatorGroup> &groups() const { return groups_; }
    /** @return the SRAM arrays. */
    const std::vector<SramArray> &srams() const { return srams_; }

    /** Human-readable summary. */
    void print(std::ostream &os) const;

  private:
    std::string name_;
    TechParams tech_;
    std::vector<OperatorGroup> groups_;
    std::vector<SramArray> srams_;
    double clockNs_ = 1.0;
    uint64_t cyclesPerImage_ = 1;
    double registerBits_ = 0.0;
};

} // namespace hw
} // namespace neuro

