/**
 * @file
 * Spatially expanded accelerator designs (Section 4.2): every logical
 * neuron and synapse is mapped to dedicated hardware. These are the
 * designs of Table 4 (operator breakdown), Table 5 (small 4x4 layouts)
 * and the "expanded" rows of Table 7. Builders are parameterized by
 * topology so the MNIST, MPEG-7 and SAD variants all come from the same
 * composition rules.
 */

#pragma once

#include <cstdint>

#include "neuro/hw/design.h"

namespace neuro {
namespace hw {

/** MLP topology for hardware builders. */
struct MlpTopology
{
    std::size_t inputs = 784;  ///< input pixels.
    std::size_t hidden = 100;  ///< hidden-layer neurons.
    std::size_t outputs = 10;  ///< output neurons.

    /** @return synaptic weight count, biases included. */
    uint64_t
    weightCount() const
    {
        return static_cast<uint64_t>(inputs + 1) * hidden +
               static_cast<uint64_t>(hidden + 1) * outputs;
    }
};

/** SNN topology for hardware builders. */
struct SnnTopology
{
    std::size_t inputs = 784;   ///< input pixels.
    std::size_t neurons = 300;  ///< output LIF neurons.

    /** @return synaptic weight count (excitatory inputs only). */
    uint64_t
    weightCount() const
    {
        return static_cast<uint64_t>(inputs) * neurons;
    }
};

/**
 * Build the two-level max tree of the SNN readout: groups of up to 20
 * potentials feed first-level max operators whose winners feed a final
 * max (15 x 20-input + 1 x 15-input for 300 neurons).
 */
void addReadoutMaxTree(Design &design, const TechParams &tech,
                       std::size_t neurons, int bits);

/** Spatially expanded MLP (Figure 2 / Table 4). */
Design buildExpandedMlp(const MlpTopology &topo,
                        const TechParams &tech = defaultTech());

/** Spatially expanded SNN without timing (Figure 7 / Table 4). */
Design buildExpandedSnnWot(const SnnTopology &topo,
                           const TechParams &tech = defaultTech());

/**
 * Spatially expanded SNN with timing: per-pixel Gaussian spike-interval
 * generators, per-neuron integration with leak, @p period_cycles 1 ms
 * steps per image (Table 4 / Table 7 "expanded").
 */
Design buildExpandedSnnWt(const SnnTopology &topo, int period_cycles = 500,
                          const TechParams &tech = defaultTech());

} // namespace hw
} // namespace neuro

