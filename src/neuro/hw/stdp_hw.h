/**
 * @file
 * Online-learning (STDP) hardware (Section 4.4, Figures 12 and 13): the
 * folded SNNwt datapath augmented per neuron with the STDP circuit — a
 * finite-state machine tracking time since the last output spike,
 * refractory and inhibitory counters, the LTP-window comparator driving
 * +/-1 weight updates, the piecewise-linear leak unit, and the
 * homeostasis counters (plus one global epoch counter). Table 9 reports
 * the resulting overhead vs the inference-only SNNwt.
 */

#pragma once

#include "neuro/hw/folded.h"

namespace neuro {
namespace hw {

/**
 * Folded SNNwt with the online-learning STDP circuit.
 *
 * @param topo            network topology.
 * @param ni              inputs streamed per cycle.
 * @param period_cycles   1 ms steps per presentation.
 * @param updates_per_image average synaptic updates per image (for the
 *                        energy model; one firing updates all inputs).
 */
Design buildFoldedSnnStdp(const SnnTopology &topo, std::size_t ni,
                          int period_cycles = 500,
                          uint64_t updates_per_image = 784,
                          const TechParams &tech = defaultTech());

/** Overhead summary of STDP vs the inference-only design. */
struct StdpOverhead
{
    double areaRatio = 0;   ///< total area, learning / inference.
    double delayRatio = 0;  ///< clock period ratio.
    double energyRatio = 0; ///< per-image energy ratio.
};

/** Compute the Table 9 overhead ratios for a given configuration. */
StdpOverhead stdpOverhead(const SnnTopology &topo, std::size_t ni,
                          int period_cycles = 500,
                          const TechParams &tech = defaultTech());

} // namespace hw
} // namespace neuro

