#include "neuro/hw/stdp_hw.h"

#include "neuro/common/logging.h"

namespace neuro {
namespace hw {

Design
buildFoldedSnnStdp(const SnnTopology &topo, std::size_t ni,
                   int period_cycles, uint64_t updates_per_image,
                   const TechParams &tech)
{
    Design design =
        buildFoldedSnnWt(topo, ni, period_cycles, tech);

    // Per-neuron fixed STDP machinery (Figure 13): FSM, time-since-
    // last-spike / refractory / inhibitory / homeostasis counters and
    // the leak interpolation used during learning.
    design.addOperators(makeStdpFixed(tech), topo.neurons,
                        topo.neurons *
                            static_cast<uint64_t>(period_cycles));
    // Per-input update path: ni lanes of last-spike register + LTP
    // comparator + increment/decrement adder per neuron.
    design.addOperators(makeStdpPerInput(tech, ni), topo.neurons,
                        updates_per_image * topo.neurons / 64 + 1);
    // Global homeostasis epoch counter.
    design.addOperators(makeRegister(tech, 24), 1, 1);

    // Weight write-back traffic: treat each synaptic update as one
    // extra SRAM access worth of energy.
    design.addRegisterBits(static_cast<double>(topo.neurons) * 32.0);

    // The STDP compare/update path lengthens the cycle slightly
    // (paper: at most 7%).
    design.setClockNs(design.clockNs() * 1.05);
    return design;
}

StdpOverhead
stdpOverhead(const SnnTopology &topo, std::size_t ni, int period_cycles,
             const TechParams &tech)
{
    const Design inference =
        buildFoldedSnnWt(topo, ni, period_cycles, tech);
    const Design learning =
        buildFoldedSnnStdp(topo, ni, period_cycles, topo.inputs, tech);
    StdpOverhead overhead;
    overhead.areaRatio =
        learning.totalAreaMm2() / inference.totalAreaMm2();
    overhead.delayRatio = learning.clockNs() / inference.clockNs();
    overhead.energyRatio = learning.totalEnergyPerImageUj() /
                           inference.totalEnergyPerImageUj();
    return overhead;
}

} // namespace hw
} // namespace neuro
