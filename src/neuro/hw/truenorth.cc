#include "neuro/hw/truenorth.h"

#include <algorithm>
#include <cmath>

#include "neuro/common/logging.h"

namespace neuro {
namespace hw {

Design
buildTrueNorthCore(const TrueNorthConfig &config, const TechParams &tech)
{
    // TrueNorth is aggressively power-gated and runs at 1 MHz; at that
    // clock, leakage at our default high-VT figure would dominate the
    // energy, so the core is modeled with gated leakage.
    TechParams gated = tech;
    gated.leakagePowerWPerMm2 = 0.0008;
    Design design("TrueNorth core (reimpl.)", gated);
    const auto ticks = static_cast<uint64_t>(config.ticksPerImage);

    // Crossbar connectivity memory: axons x neurons single bits, read
    // one axon row per incoming spike; plus neuron parameter memory
    // (4 signed weights, threshold, leak, state per neuron).
    const uint64_t crossbar_bits =
        static_cast<uint64_t>(config.axons) * config.neurons;
    const uint64_t param_bits = static_cast<uint64_t>(config.neurons) *
        (static_cast<uint64_t>(config.axonTypes) * config.weightBits +
         40);
    SramArray crossbar;
    crossbar.name = "crossbar";
    crossbar.numBanks = 1;
    crossbar.bank.widthBits = static_cast<int>(config.neurons > 128
                                                   ? 128
                                                   : config.neurons);
    crossbar.bank.depth = static_cast<std::size_t>(
        crossbar_bits / static_cast<uint64_t>(crossbar.bank.widthBits));
    // Dense 6T crossbar macro plus the wide read periphery.
    crossbar.bank.areaUm2 = static_cast<double>(crossbar_bits) * 2.6;
    crossbar.bank.readEnergyPj =
        static_cast<double>(config.neurons) * 0.02;
    crossbar.readsPerImage = static_cast<uint64_t>(config.axons) * 4;
    design.addSram(std::move(crossbar));

    SramArray params;
    params.name = "neuron parameters";
    params.numBanks = 1;
    params.bank.widthBits = 128;
    params.bank.depth =
        static_cast<std::size_t>((param_bits + 127) / 128);
    params.bank.areaUm2 = static_cast<double>(param_bits) * 4.0;
    params.bank.readEnergyPj = 2.0;
    params.readsPerImage = static_cast<uint64_t>(config.neurons) * ticks;
    design.addSram(std::move(params));

    // Sequential neuron datapath: one 9-bit adder + comparator pair,
    // time-multiplexed over the 256 neurons each tick, plus the
    // token-ring scheduler/router the core needs to talk to the mesh.
    design.addOperators(makeAdderTree(tech, 2, config.weightBits),
                        config.neurons,
                        static_cast<uint64_t>(config.neurons) * ticks);
    design.addOperators(makeMaxTree(tech, 2, 20), config.neurons,
                        static_cast<uint64_t>(config.neurons) * ticks);
    OperatorSpec router{"router + scheduler", 1.9e6, 6.0, 0.8};
    design.addOperators(router, 1, ticks);
    design.addRegisterBits(static_cast<double>(config.neurons) * 20.0);

    design.setClockNs(config.tickNs);
    design.setCyclesPerImage(ticks);
    return design;
}

std::size_t
trueNorthCoresFor(std::size_t neurons, const TrueNorthConfig &config)
{
    NEURO_ASSERT(neurons > 0, "need at least one neuron");
    return (neurons + config.neurons - 1) / config.neurons;
}

Design
buildTrueNorthSystem(std::size_t neurons, std::size_t inputs,
                     const TrueNorthConfig &config,
                     const TechParams &tech)
{
    NEURO_ASSERT(inputs <= config.axons,
                 "input plane exceeds one core's axons (%zu > %zu); "
                 "axon-wise tiling is not modeled",
                 inputs, config.axons);
    const std::size_t cores = trueNorthCoresFor(neurons, config);
    const Design core = buildTrueNorthCore(config, tech);

    TechParams gated = tech;
    gated.leakagePowerWPerMm2 = 0.0008;
    Design system("TrueNorth system (" + std::to_string(cores) +
                      " cores)",
                  gated);
    // Replicate the core's contents; spikes are broadcast to every
    // core over the mesh, so per-image activity replicates too.
    for (const auto &group : core.groups()) {
        system.addOperators(group.spec, group.count * cores,
                            group.opsPerImage * cores);
    }
    for (auto sram : core.srams()) {
        sram.numBanks *= cores;
        sram.readsPerImage *= cores;
        system.addSram(std::move(sram));
    }
    // Mesh merge network: per-core winner registers and a comparator
    // tree across cores (degenerates to a wire for a single core).
    if (cores > 1)
        system.addOperators(makeMaxTree(tech, cores, 20), 1, 1);
    system.addRegisterBits(static_cast<double>(cores) * 28.0);

    system.setClockNs(core.clockNs());
    // Cores run in parallel: same tick count per image.
    system.setCyclesPerImage(core.cyclesPerImage());
    return system;
}

TrueNorthFunctional::TrueNorthFunctional(const Matrix &weights,
                                         const TrueNorthConfig &config)
    : numNeurons_(weights.rows()), numInputs_(weights.cols()),
      numTypes_(config.axonTypes), types_(numInputs_, 0),
      typeWeights_(numNeurons_ * static_cast<std::size_t>(numTypes_), 0),
      crossbar_(numNeurons_ * numInputs_, 0)
{
    NEURO_ASSERT(numNeurons_ > 0 && numInputs_ > 0, "empty weights");
    NEURO_ASSERT(numNeurons_ <= config.neurons,
                 "network does not fit in one core (%zu > %zu neurons)",
                 numNeurons_, config.neurons);
    NEURO_ASSERT(numInputs_ <= config.axons,
                 "network does not fit in one core (%zu > %zu axons)",
                 numInputs_, config.axons);

    // 1. Column means drive the axon-type clustering.
    std::vector<double> col_mean(numInputs_, 0.0);
    for (std::size_t n = 0; n < numNeurons_; ++n) {
        const float *row = weights.row(n);
        for (std::size_t i = 0; i < numInputs_; ++i)
            col_mean[i] += row[i];
    }
    for (auto &m : col_mean)
        m /= static_cast<double>(numNeurons_);

    // 1-D k-means with quantile-initialized centroids.
    std::vector<double> sorted = col_mean;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> centroid(static_cast<std::size_t>(numTypes_));
    for (int t = 0; t < numTypes_; ++t) {
        const std::size_t idx = sorted.size() * (2 * t + 1) /
            (2 * static_cast<std::size_t>(numTypes_));
        centroid[static_cast<std::size_t>(t)] = sorted[idx];
    }
    for (int iter = 0; iter < 25; ++iter) {
        // Assign.
        for (std::size_t i = 0; i < numInputs_; ++i) {
            int best = 0;
            double best_d = std::fabs(col_mean[i] - centroid[0]);
            for (int t = 1; t < numTypes_; ++t) {
                const double d = std::fabs(
                    col_mean[i] - centroid[static_cast<std::size_t>(t)]);
                if (d < best_d) {
                    best_d = d;
                    best = t;
                }
            }
            types_[i] = best;
        }
        // Update.
        std::vector<double> sum(static_cast<std::size_t>(numTypes_), 0.0);
        std::vector<std::size_t> cnt(static_cast<std::size_t>(numTypes_),
                                     0);
        for (std::size_t i = 0; i < numInputs_; ++i) {
            sum[static_cast<std::size_t>(types_[i])] += col_mean[i];
            ++cnt[static_cast<std::size_t>(types_[i])];
        }
        for (int t = 0; t < numTypes_; ++t) {
            const auto ts = static_cast<std::size_t>(t);
            if (cnt[ts] > 0)
                centroid[ts] = sum[ts] / static_cast<double>(cnt[ts]);
        }
    }

    // 2./3./4. Alternating refinement of the TrueNorth parameters: the
    // format allows (binary crossbar bit) x (per-neuron weight selected
    // by the input's type), so we coordinate-descend on
    //   sum_{n,i} | w_ni - c_ni * s_{n,type(i)} |
    // over type weights s, crossbar bits c and the type map itself.
    const int wmax = (1 << (config.weightBits - 1)) - 1;
    const auto nt = static_cast<std::size_t>(numTypes_);
    for (int round = 0; round < 4; ++round) {
        // (a) Per-neuron type weights: mean of the *connected* inputs
        // of each type (all inputs in the first round).
        for (std::size_t n = 0; n < numNeurons_; ++n) {
            const float *row = weights.row(n);
            std::vector<double> sum(nt, 0.0);
            std::vector<std::size_t> cnt(nt, 0);
            for (std::size_t i = 0; i < numInputs_; ++i) {
                if (round > 0 && !crossbar_[n * numInputs_ + i])
                    continue;
                sum[static_cast<std::size_t>(types_[i])] += row[i];
                ++cnt[static_cast<std::size_t>(types_[i])];
            }
            for (std::size_t t = 0; t < nt; ++t) {
                const double mean =
                    cnt[t] ? sum[t] / static_cast<double>(cnt[t]) : 0.0;
                const long q = std::lround(mean);
                typeWeights_[n * nt + t] = static_cast<int16_t>(
                    std::clamp(q, static_cast<long>(-wmax),
                               static_cast<long>(wmax)));
            }
        }
        // (b) Crossbar bits: connect when the type weight approximates
        // the original weight better than dropping the synapse.
        for (std::size_t n = 0; n < numNeurons_; ++n) {
            const float *row = weights.row(n);
            for (std::size_t i = 0; i < numInputs_; ++i) {
                const double s = typeWeights_[
                    n * nt + static_cast<std::size_t>(types_[i])];
                crossbar_[n * numInputs_ + i] =
                    std::fabs(row[i] - s) < std::fabs(row[i]) ? 1 : 0;
            }
        }
        // (c) Type map: move each input to the type that minimizes its
        // total error across neurons (crossbar re-derived next round).
        for (std::size_t i = 0; i < numInputs_; ++i) {
            int best_type = 0;
            double best_err = 0.0;
            for (int t = 0; t < numTypes_; ++t) {
                double err = 0.0;
                for (std::size_t n = 0; n < numNeurons_; ++n) {
                    const double w = weights.row(n)[i];
                    const double s = typeWeights_[
                        n * nt + static_cast<std::size_t>(t)];
                    err += std::min(std::fabs(w - s), std::fabs(w));
                }
                if (t == 0 || err < best_err) {
                    best_err = err;
                    best_type = t;
                }
            }
            types_[i] = best_type;
        }
    }

    // Final error accounting.
    double abs_err = 0.0;
    for (std::size_t n = 0; n < numNeurons_; ++n) {
        const float *row = weights.row(n);
        for (std::size_t i = 0; i < numInputs_; ++i) {
            const double s = typeWeights_[
                n * nt + static_cast<std::size_t>(types_[i])];
            abs_err += crossbar_[n * numInputs_ + i]
                ? std::fabs(row[i] - s)
                : std::fabs(row[i]);
        }
    }
    quantError_ =
        abs_err / static_cast<double>(numNeurons_ * numInputs_);
}

int
TrueNorthFunctional::typeWeight(std::size_t neuron, int type) const
{
    NEURO_ASSERT(neuron < numNeurons_ && type >= 0 && type < numTypes_,
                 "index out of range");
    return typeWeights_[neuron * static_cast<std::size_t>(numTypes_) +
                        static_cast<std::size_t>(type)];
}

bool
TrueNorthFunctional::connected(std::size_t neuron,
                               std::size_t input) const
{
    NEURO_ASSERT(neuron < numNeurons_ && input < numInputs_,
                 "index out of range");
    return crossbar_[neuron * numInputs_ + input] != 0;
}

int
TrueNorthFunctional::forward(const uint8_t *counts,
                             std::vector<int64_t> *potentials) const
{
    if (potentials)
        potentials->assign(numNeurons_, 0);
    int best = 0;
    int64_t best_pot = 0;
    bool first = true;
    for (std::size_t n = 0; n < numNeurons_; ++n) {
        int64_t pot = 0;
        for (std::size_t i = 0; i < numInputs_; ++i) {
            if (!crossbar_[n * numInputs_ + i])
                continue;
            pot += static_cast<int64_t>(counts[i]) *
                typeWeights_[n * static_cast<std::size_t>(numTypes_) +
                             static_cast<std::size_t>(types_[i])];
        }
        if (potentials)
            (*potentials)[n] = pot;
        if (first || pot > best_pot) {
            best_pot = pot;
            best = static_cast<int>(n);
            first = false;
        }
    }
    return best;
}

} // namespace hw
} // namespace neuro
