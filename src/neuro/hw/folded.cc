#include "neuro/hw/folded.h"

#include <algorithm>

#include "neuro/common/logging.h"

namespace neuro {
namespace hw {

namespace {

uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

uint64_t
foldedMlpCycles(const MlpTopology &topo, std::size_t ni)
{
    // Hidden layer streams inputs (bias folded into the last chunk),
    // then one activation cycle; same for the output layer.
    return ceilDiv(topo.inputs, ni) + 1 + ceilDiv(topo.hidden, ni) + 1;
}

uint64_t
foldedSnnWotCycles(const SnnTopology &topo, std::size_t ni)
{
    // Accumulation chunks + 7-cycle epilogue: spike conversion (1),
    // pipeline drain (2), two max-tree levels (2), readout (2).
    return ceilDiv(topo.inputs, ni) + 7;
}

uint64_t
foldedSnnWtCycles(const SnnTopology &topo, std::size_t ni,
                  int period_cycles)
{
    return foldedSnnWotCycles(topo, ni) *
           static_cast<uint64_t>(period_cycles);
}

Design
buildFoldedMlp(const MlpTopology &topo, std::size_t ni,
               const TechParams &tech)
{
    NEURO_ASSERT(ni > 0, "fold factor must be positive");
    Design design("folded MLP", tech);
    const std::size_t neurons = topo.hidden + topo.outputs;
    const uint64_t macs = topo.weightCount();

    // Per-neuron datapath (Figure 11): ni multipliers, a small adder
    // tree over the products plus the accumulator, the sigmoid table.
    design.addOperators(makeMultiplier(tech, 8), neurons * ni, macs);
    const uint64_t tree_ops =
        topo.hidden * (ceilDiv(topo.inputs, ni) + 1) +
        topo.outputs * (ceilDiv(topo.hidden, ni) + 1);
    design.addOperators(makeAdderTree(tech, ni + 1, 16), neurons,
                        tree_ops);
    design.addOperators(makeSigmoidUnit(tech), neurons, neurons);
    design.addOperators(makeNeuronControl(tech), neurons, neurons);
    // Buffers: ni inputs + ni weights (8b each), 24b accumulator, 8b
    // output register per neuron.
    design.addRegisterBits(static_cast<double>(neurons) *
                           (2.0 * 8.0 * static_cast<double>(ni) + 24.0 +
                            8.0));

    // Synaptic SRAM (Table 6 geometry): hidden banks read once per
    // input chunk, output banks once per hidden chunk.
    const uint64_t hidden_chunks = ceilDiv(topo.inputs, ni);
    const uint64_t output_chunks = ceilDiv(topo.hidden, ni);
    SramArray hidden_sram = makeSynapticStorage(
        "hidden weights", topo.hidden, topo.inputs, ni, 8, 0);
    hidden_sram.readsPerImage = hidden_sram.numBanks * hidden_chunks;
    design.addSram(std::move(hidden_sram));
    SramArray output_sram = makeSynapticStorage(
        "output weights", topo.outputs, topo.hidden, ni, 8, 0);
    output_sram.readsPerImage = output_sram.numBanks * output_chunks;
    design.addSram(std::move(output_sram));

    // Cycle: SRAM word fetch + multiplier (the products enter the
    // accumulator in carry-save form, so the small tree adds little).
    design.setClockNs(tech.sramAccessNs + tech.multDelayNs +
                      tech.regDelayNs +
                      0.05 * static_cast<double>(log2Ceil(ni)));
    design.setCyclesPerImage(foldedMlpCycles(topo, ni));
    return design;
}

uint64_t
foldedMlpPooledCycles(const MlpTopology &topo, std::size_t ni,
                      std::size_t hw_neurons)
{
    NEURO_ASSERT(ni > 0 && hw_neurons > 0, "degenerate fold");
    // Each pass computes up to hw_neurons logical neurons; a layer of
    // N logical neurons needs ceil(N / hw) passes of
    // (ceil(inputs / ni) + 1) cycles.
    const uint64_t hidden_passes = ceilDiv(topo.hidden, hw_neurons);
    const uint64_t output_passes = ceilDiv(topo.outputs, hw_neurons);
    return hidden_passes * (ceilDiv(topo.inputs, ni) + 1) +
           output_passes * (ceilDiv(topo.hidden, ni) + 1);
}

Design
buildFoldedMlpPooled(const MlpTopology &topo, std::size_t ni,
                     std::size_t hw_neurons, const TechParams &tech)
{
    NEURO_ASSERT(ni > 0 && hw_neurons > 0, "degenerate fold");
    Design design("folded MLP (pooled)", tech);
    const std::size_t pool =
        std::min(hw_neurons, std::max(topo.hidden, topo.outputs));
    const uint64_t macs = topo.weightCount();

    design.addOperators(makeMultiplier(tech, 8), pool * ni, macs);
    const uint64_t tree_ops =
        ceilDiv(topo.hidden, pool) * pool *
            (ceilDiv(topo.inputs, ni) + 1) +
        ceilDiv(topo.outputs, pool) * pool *
            (ceilDiv(topo.hidden, ni) + 1);
    design.addOperators(makeAdderTree(tech, ni + 1, 16), pool, tree_ops);
    design.addOperators(makeSigmoidUnit(tech), pool,
                        topo.hidden + topo.outputs);
    design.addOperators(makeNeuronControl(tech), pool, pool);
    // Logical-neuron state (partial sums of the pass in flight plus
    // layer activations) lives in registers next to the pool.
    design.addRegisterBits(
        static_cast<double>(pool) *
            (2.0 * 8.0 * static_cast<double>(ni) + 24.0 + 8.0) +
        8.0 * static_cast<double>(topo.hidden + topo.outputs));

    // The SRAM still stores every synapse; ports sized as usual. All
    // banks of a layer are read once per chunk of each pass.
    const uint64_t hidden_reads =
        ceilDiv(topo.hidden, pool) * ceilDiv(topo.inputs, ni);
    SramArray hidden_sram = makeSynapticStorage(
        "hidden weights", std::min(pool, topo.hidden), topo.inputs, ni,
        8, 0);
    // Bank count must cover the *storage*, not just the pool's ports:
    // scale depth-equivalent banks by the pass count.
    hidden_sram.numBanks *= ceilDiv(topo.hidden, pool);
    hidden_sram.readsPerImage = hidden_sram.numBanks * hidden_reads /
        ceilDiv(topo.hidden, pool);
    design.addSram(std::move(hidden_sram));
    SramArray output_sram = makeSynapticStorage(
        "output weights", std::min(pool, topo.outputs), topo.hidden, ni,
        8, 0);
    output_sram.numBanks *= ceilDiv(topo.outputs, pool);
    output_sram.readsPerImage = output_sram.numBanks *
        ceilDiv(topo.hidden, ni) / ceilDiv(topo.outputs, pool);
    design.addSram(std::move(output_sram));

    design.setClockNs(tech.sramAccessNs + tech.multDelayNs +
                      tech.regDelayNs +
                      0.05 * static_cast<double>(log2Ceil(ni)));
    design.setCyclesPerImage(
        foldedMlpPooledCycles(topo, ni, pool));
    return design;
}

Design
buildFoldedSnnWot(const SnnTopology &topo, std::size_t ni,
                  const TechParams &tech)
{
    NEURO_ASSERT(ni > 0, "fold factor must be positive");
    Design design("folded SNNwot", tech);
    const uint64_t chunks = ceilDiv(topo.inputs, ni);

    // ni pixel-to-count converter channels shared by all neurons.
    design.addOperators(makeConvertor(tech), ni, topo.inputs);
    // Per-neuron: ni spike-decode cells and a 12-bit adder tree over
    // ni weighted inputs plus the 24-bit accumulator.
    design.addOperators(makeSpikeDecode(tech), topo.neurons * ni,
                        static_cast<uint64_t>(topo.neurons) * topo.inputs);
    design.addOperators(makeAdderTree(tech, ni + 1, 12), topo.neurons,
                        topo.neurons * chunks);
    design.addOperators(makeWotLaneBuffers(tech, ni), topo.neurons,
                        topo.neurons * chunks);
    design.addOperators(makeNeuronControl(tech), topo.neurons,
                        topo.neurons);
    addReadoutMaxTree(design, tech, topo.neurons, 24);
    design.addRegisterBits(static_cast<double>(topo.neurons) *
                               (8.0 * static_cast<double>(ni) +
                                4.0 * static_cast<double>(ni) + 24.0) +
                           4.0 * static_cast<double>(topo.inputs));

    SramArray sram = makeSynapticStorage("weights", topo.neurons,
                                         topo.inputs, ni, 8, 0);
    sram.readsPerImage = sram.numBanks * chunks;
    design.addSram(std::move(sram));

    design.setClockNs(tech.sramAccessNs + tech.spikeDecodeDelayNs +
                      tech.foldedTreeDelayPerLevelNs *
                          static_cast<double>(log2Ceil(ni * 4)) +
                      tech.regDelayNs);
    design.setCyclesPerImage(foldedSnnWotCycles(topo, ni));
    return design;
}

Design
buildFoldedSnnWt(const SnnTopology &topo, std::size_t ni,
                 int period_cycles, const TechParams &tech)
{
    NEURO_ASSERT(ni > 0, "fold factor must be positive");
    NEURO_ASSERT(period_cycles > 0, "period must be positive");
    Design design("folded SNNwt", tech);
    const auto period = static_cast<uint64_t>(period_cycles);
    const uint64_t chunks = ceilDiv(topo.inputs, ni);
    const uint64_t steps = chunks * period;

    // ni shared spike generators (Gaussian interval RNG + counter);
    // per-pixel counters live in registers.
    design.addOperators(makeGaussianRng(tech), ni, topo.inputs * period);
    // Per-neuron: ni-input 8-bit adder tree + accumulator + threshold
    // compare + leak/gating extras (scaled to ni streamed inputs).
    design.addOperators(makeAdderTree(tech, ni + 1, 8), topo.neurons,
                        topo.neurons * steps);
    design.addOperators(makeWtFoldedExtras(tech, ni), topo.neurons,
                        topo.neurons * period);
    design.addRegisterBits(static_cast<double>(topo.neurons) *
                               (8.0 * static_cast<double>(ni) + 24.0) +
                           8.0 * static_cast<double>(topo.inputs));

    SramArray sram = makeSynapticStorage("weights", topo.neurons,
                                         topo.inputs, ni, 8, 0);
    sram.readsPerImage = sram.numBanks * steps;
    design.addSram(std::move(sram));

    // The narrow 8-bit adds largely overlap the SRAM access; only a
    // shallow residual tree term remains on the path (the published
    // SNNwt delays are nearly flat: 1.15/1.11/1.18 ns for ni=1/4/8).
    design.setClockNs(tech.sramAccessNs +
                      0.10 * static_cast<double>(log2Ceil(ni + 1)) +
                      tech.cmpDelayNs + tech.regDelayNs);
    design.setCyclesPerImage(
        foldedSnnWtCycles(topo, ni, period_cycles));
    return design;
}

} // namespace hw
} // namespace neuro
