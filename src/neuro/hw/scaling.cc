#include "neuro/hw/scaling.h"

#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"

namespace neuro {
namespace hw {

std::vector<ScaleComparison>
scalingStudy(const std::vector<ScalePoint> &scales,
             const TechParams &tech)
{
    // Each ladder rung builds four analytic designs independently of
    // the others; parallelMap keeps the output in ladder order.
    return parallelMap<ScaleComparison>(
        scales.size(), [&](std::size_t i) {
            const ScalePoint &scale = scales[i];
            NEURO_ASSERT(scale.inputs > 0 && scale.mlpHidden > 0 &&
                             scale.snnNeurons > 0,
                         "degenerate scale point");
            const MlpTopology mlp{scale.inputs, scale.mlpHidden,
                                  scale.mlpOutputs};
            const SnnTopology snn{scale.inputs, scale.snnNeurons};

            ScaleComparison cmp;
            cmp.scale = scale;
            const Design mlp_exp = buildExpandedMlp(mlp, tech);
            const Design snn_exp = buildExpandedSnnWot(snn, tech);
            cmp.mlpExpandedMm2 = mlp_exp.totalAreaMm2();
            cmp.snnExpandedMm2 = snn_exp.totalAreaMm2();
            cmp.mlpExpandedNsPerImage = mlp_exp.timePerImageNs();
            cmp.snnExpandedNsPerImage = snn_exp.timePerImageNs();
            cmp.mlpExpandedUj = mlp_exp.totalEnergyPerImageUj();
            cmp.snnExpandedUj = snn_exp.totalEnergyPerImageUj();
            cmp.mlpFoldedMm2 =
                buildFoldedMlp(mlp, 16, tech).totalAreaMm2();
            cmp.snnFoldedMm2 =
                buildFoldedSnnWot(snn, 16, tech).totalAreaMm2();
            return cmp;
        });
}

std::vector<ScalePoint>
defaultScaleLadder()
{
    // Grow from MNIST scale (784 inputs, 100/300 neurons) by doubling
    // the input plane and layer widths; the SNN keeps its 3x neuron
    // ratio. Output count grows with the task (more classes at scale).
    std::vector<ScalePoint> ladder;
    std::size_t inputs = 784;
    std::size_t hidden = 100;
    std::size_t outputs = 10;
    for (int step = 0; step < 7; ++step) {
        ladder.push_back({inputs, hidden, outputs, hidden * 3});
        inputs *= 2;
        hidden *= 2;
        if (step % 2 == 1)
            outputs *= 2;
    }
    return ladder;
}

int
expandedCrossoverIndex(const std::vector<ScaleComparison> &results)
{
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].snnWinsExpandedArea())
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace hw
} // namespace neuro
