#include "neuro/hw/sram.h"

#include <algorithm>

#include "neuro/common/logging.h"
#include "neuro/common/profile.h"

namespace neuro {
namespace hw {

namespace {

/** Published 128-bit-wide bank characterizations (Table 6). */
struct BankPoint
{
    std::size_t depth;
    double areaUm2;
    double readEnergyPj;
};

constexpr BankPoint kBankPoints[] = {
    {128, 40772.0, 32.46},
    {200, 46002.0, 33.05},
    {784, 108351.0, 44.41},
};
constexpr std::size_t kNumPoints =
    sizeof(kBankPoints) / sizeof(kBankPoints[0]);

/** Piecewise-linear interpolation over the calibration points,
 *  extrapolating with the nearest segment's slope. */
double
interpolate(std::size_t depth, double BankPoint::*field)
{
    const double d = static_cast<double>(depth);
    std::size_t seg = 0;
    while (seg + 2 < kNumPoints &&
           depth > kBankPoints[seg + 1].depth) {
        ++seg;
    }
    const BankPoint &p0 = kBankPoints[seg];
    const BankPoint &p1 = kBankPoints[seg + 1];
    const double slope = (p1.*field - p0.*field) /
        static_cast<double>(p1.depth - p0.depth);
    return p0.*field + slope * (d - static_cast<double>(p0.depth));
}

/** Round @p v up to a multiple of @p m. */
std::size_t
roundUp(std::size_t v, std::size_t m)
{
    return (v + m - 1) / m * m;
}

} // namespace

SramBank
makeBank(std::size_t depth)
{
    NEURO_ASSERT(depth > 0, "bank depth must be positive");
    SramBank bank;
    bank.widthBits = 128;
    bank.depth = depth;
    bank.areaUm2 = std::max(interpolate(depth, &BankPoint::areaUm2),
                            10000.0);
    bank.readEnergyPj =
        std::max(interpolate(depth, &BankPoint::readEnergyPj), 5.0);
    return bank;
}

SramArray
makeSynapticStorage(const std::string &name, std::size_t num_neurons,
                    std::size_t num_inputs, std::size_t ni,
                    int weight_bits, uint64_t reads_per_image)
{
    NEURO_ASSERT(num_neurons > 0 && num_inputs > 0 && ni > 0,
                 "empty storage request");
    NEURO_ASSERT(weight_bits > 0 && weight_bits <= 128,
                 "unsupported weight width");

    SramArray array;
    array.name = name;
    // Each cycle a neuron fetches ni weights (ni * weight_bits bits);
    // a 128-bit word therefore serves this many neurons:
    const std::size_t port_bits = ni * static_cast<std::size_t>(weight_bits);
    const std::size_t neurons_per_bank =
        std::max<std::size_t>(1, 128 / port_bits);
    array.numBanks =
        (num_neurons + neurons_per_bank - 1) / neurons_per_bank;
    // One word per chunk of ni inputs; depth floors at 128 rows (the
    // smallest efficient macro) and rounds to 8-row increments.
    const std::size_t words = (num_inputs + ni - 1) / ni;
    const std::size_t depth = std::max<std::size_t>(128, roundUp(words, 8));
    array.bank = makeBank(depth);
    array.readsPerImage = reads_per_image;
    if (obsEnabled()) {
        obsCount("hw.sram.arrays_built");
        obsCount("hw.sram.banks_built", array.numBanks);
        obsCount("hw.sram.reads_per_image", array.readsPerImage);
        if (Tracer::enabled())
            Tracer::instance().instant("hw.sram.array", "hw");
    }
    return array;
}

} // namespace hw
} // namespace neuro
