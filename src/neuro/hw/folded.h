/**
 * @file
 * Spatially folded accelerator designs (Section 4.3): hardware neurons
 * are time-shared, each processing ni inputs per cycle with weights
 * streamed from single-port SRAM. These are the designs of Table 6
 * (SRAM), Table 7 (area/delay/energy/cycles vs ni) and Figure 9/10/11.
 */

#pragma once

#include "neuro/hw/design.h"
#include "neuro/hw/expanded.h"

namespace neuro {
namespace hw {

/**
 * Cycles per image of the folded MLP: each layer needs
 * ceil(N_inputs/ni) accumulation cycles plus one activation cycle
 * (Section 4.3.1; the paper's published counts differ by at most two
 * cycles of pipeline-boundary bookkeeping).
 */
uint64_t foldedMlpCycles(const MlpTopology &topo, std::size_t ni);

/** Cycles per image of the folded SNNwot: ceil(inputs/ni) accumulation
 *  plus a 7-cycle pipeline epilogue (convert, drain, two max levels,
 *  readout), matching the paper's 791/203/105/56 sequence. */
uint64_t foldedSnnWotCycles(const SnnTopology &topo, std::size_t ni);

/** Cycles per image of the folded SNNwt: the SNNwot count repeated for
 *  every 1 ms step of the presentation window. */
uint64_t foldedSnnWtCycles(const SnnTopology &topo, std::size_t ni,
                           int period_cycles);

/** Folded MLP accelerator (Figures 10 and 11). */
Design buildFoldedMlp(const MlpTopology &topo, std::size_t ni,
                      const TechParams &tech = defaultTech());

/**
 * Folded MLP with a bounded pool of hardware neurons: the fuller form
 * of Section 4.3's time-sharing ("the principle is to time-share a few
 * hardware neurons between the many logical neurons"). Each layer is
 * processed in ceil(logical / hw_neurons) passes; the paper's Table 7
 * design is the hw_neurons >= hidden special case.
 *
 * @param hw_neurons hardware neuron pool size (>= 1).
 */
Design buildFoldedMlpPooled(const MlpTopology &topo, std::size_t ni,
                            std::size_t hw_neurons,
                            const TechParams &tech = defaultTech());

/** Cycles per image of the pooled folded MLP. */
uint64_t foldedMlpPooledCycles(const MlpTopology &topo, std::size_t ni,
                               std::size_t hw_neurons);

/** Folded SNNwot accelerator (Section 4.3.2). */
Design buildFoldedSnnWot(const SnnTopology &topo, std::size_t ni,
                         const TechParams &tech = defaultTech());

/** Folded SNNwt accelerator (Section 4.3.2): emulates the whole
 *  presentation sequence in @p period_cycles 1 ms steps. */
Design buildFoldedSnnWt(const SnnTopology &topo, std::size_t ni,
                        int period_cycles = 500,
                        const TechParams &tech = defaultTech());

} // namespace hw
} // namespace neuro

