#include "neuro/hw/operators.h"

#include <cstdio>

#include "neuro/common/logging.h"

namespace neuro {
namespace hw {

namespace {

std::string
fmtName(const char *fmt, std::size_t a, int b)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, a, b);
    return buf;
}

} // namespace

OperatorSpec
makeAdderTree(const TechParams &tech, std::size_t num_inputs, int bits)
{
    NEURO_ASSERT(num_inputs >= 1, "tree needs inputs");
    OperatorSpec spec;
    spec.name = fmtName("adder tree (%zux%db)", num_inputs, bits);
    const uint64_t fa = adderTreeFaCount(num_inputs, bits);
    spec.areaUm2 = tech.faAreaUm2 * static_cast<double>(fa) +
                   tech.treeFixedUm2;
    spec.energyPj = tech.faEnergyPj * static_cast<double>(fa);
    spec.delayNs = tech.treeDelayPerLevelNs *
                   static_cast<double>(log2Ceil(num_inputs));
    return spec;
}

OperatorSpec
makeMultiplier(const TechParams &tech, int bits)
{
    NEURO_ASSERT(bits > 0, "multiplier width must be positive");
    OperatorSpec spec;
    spec.name = fmtName("multiplier (%zux%db)",
                        static_cast<std::size_t>(bits), bits);
    // Array multiplier: area and energy scale with bits^2 from the
    // calibrated 8x8 point.
    const double scale = static_cast<double>(bits) *
                         static_cast<double>(bits) / 64.0;
    spec.areaUm2 = tech.mult8AreaUm2 * scale;
    spec.energyPj = tech.mult8EnergyPj * scale;
    spec.delayNs = tech.multDelayNs * static_cast<double>(bits) / 8.0;
    return spec;
}

OperatorSpec
makeMaxTree(const TechParams &tech, std::size_t num_inputs, int bits)
{
    NEURO_ASSERT(num_inputs >= 1, "max tree needs inputs");
    OperatorSpec spec;
    spec.name = fmtName("max (%zux%db)", num_inputs, bits);
    const double comparators =
        num_inputs > 0 ? static_cast<double>(num_inputs - 1) : 0.0;
    spec.areaUm2 =
        comparators * tech.cmpAreaPerBitUm2 * static_cast<double>(bits);
    spec.energyPj =
        comparators * tech.cmpEnergyPerBitPj * static_cast<double>(bits);
    spec.delayNs =
        tech.cmpDelayNs * static_cast<double>(log2Ceil(num_inputs));
    return spec;
}

OperatorSpec
makeGaussianRng(const TechParams &tech)
{
    return {"rand (gaussian, 4xLFSR31)", tech.gaussRngAreaUm2,
            tech.gaussRngEnergyPj, 0.6};
}

OperatorSpec
makeRegister(const TechParams &tech, int bits)
{
    OperatorSpec spec;
    spec.name = fmtName("register (%zub)", static_cast<std::size_t>(bits),
                        bits);
    spec.areaUm2 = tech.regAreaPerBitUm2 * static_cast<double>(bits);
    spec.energyPj = tech.regEnergyPerBitPj * static_cast<double>(bits);
    spec.delayNs = tech.regDelayNs;
    return spec;
}

OperatorSpec
makeConvertor(const TechParams &tech)
{
    return {"convertor (pixel->spikes)", tech.convertorAreaUm2,
            tech.convertorEnergyPj, 0.35};
}

OperatorSpec
makeSpikeDecode(const TechParams &tech)
{
    return {"spike decode (4-shift)", tech.spikeDecodeAreaUm2,
            tech.spikeDecodeEnergyPj, tech.spikeDecodeDelayNs};
}

OperatorSpec
makeSigmoidUnit(const TechParams &tech)
{
    return {"sigmoid (16-pt PLI)", tech.sigmoidUnitAreaUm2,
            tech.sigmoidUnitEnergyPj, tech.sigmoidDelayNs};
}

OperatorSpec
makeLifExtras(const TechParams &tech, std::size_t inputs)
{
    OperatorSpec spec;
    spec.name = fmtName("LIF extras (%zu inputs, %db)", inputs, 24);
    spec.areaUm2 = tech.lifFixedAreaUm2 +
        tech.lifPerInputAreaUm2 * static_cast<double>(inputs);
    spec.energyPj = tech.lifExtrasEnergyPj;
    spec.delayNs = tech.cmpDelayNs;
    return spec;
}

OperatorSpec
makeNeuronControl(const TechParams &tech)
{
    return {"neuron control FSM", tech.neuronControlAreaUm2, 0.08, 0.2};
}

OperatorSpec
makeWotLaneBuffers(const TechParams &tech, std::size_t ni)
{
    OperatorSpec spec;
    spec.name = fmtName("wot lane buffers (x%zu, %db)", ni, 12);
    spec.areaUm2 = tech.wotLaneFixedUm2 +
        tech.wotLanePerNiUm2 * static_cast<double>(ni);
    spec.energyPj = 0.04 * static_cast<double>(ni);
    spec.delayNs = 0.1;
    return spec;
}

OperatorSpec
makeWtFoldedExtras(const TechParams &tech, std::size_t ni)
{
    OperatorSpec spec;
    spec.name = fmtName("wt extras (cmp+leak, x%zu, %db)", ni, 24);
    spec.areaUm2 = tech.wtExtrasFixedUm2 +
        tech.wtExtrasPerNiUm2 * static_cast<double>(ni);
    spec.energyPj = tech.lifExtrasEnergyPj;
    spec.delayNs = tech.cmpDelayNs;
    return spec;
}

OperatorSpec
makeStdpFixed(const TechParams &tech)
{
    return {"STDP fixed (FSM+counters+homeo)", tech.stdpFixedAreaUm2,
            tech.stdpUpdateEnergyPj * 4.0, 0.3};
}

OperatorSpec
makeStdpPerInput(const TechParams &tech, std::size_t inputs)
{
    OperatorSpec spec;
    spec.name = fmtName("STDP per-input (x%zu, %db)", inputs, 8);
    spec.areaUm2 =
        tech.stdpPerInputAreaUm2 * static_cast<double>(inputs);
    spec.energyPj =
        tech.stdpUpdateEnergyPj * static_cast<double>(inputs);
    spec.delayNs = 0.35;
    return spec;
}

} // namespace hw
} // namespace neuro
