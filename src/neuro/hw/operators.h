/**
 * @file
 * Operator-level building blocks of the accelerator designs: each
 * factory returns an OperatorSpec with area/energy/delay derived from
 * the technology library, mirroring the operator inventory of Table 4
 * (adder trees, multipliers, max trees, Gaussian random generators) plus
 * the support logic of the folded designs (registers, converters,
 * sigmoid units, LIF extras, STDP logic).
 */

#pragma once

#include <cstdint>
#include <string>

#include "neuro/hw/tech.h"

namespace neuro {
namespace hw {

/** One hardware operator's physical characteristics. */
struct OperatorSpec
{
    std::string name;     ///< e.g. "adder tree (784x8b)".
    double areaUm2 = 0;   ///< layout area.
    double energyPj = 0;  ///< energy per operation.
    double delayNs = 0;   ///< critical-path contribution.
};

/** A group of identical operator instances within a design. */
struct OperatorGroup
{
    OperatorSpec spec;       ///< the operator.
    std::size_t count = 0;   ///< instances in the design.
    /** Operations executed per processed image (for energy). */
    uint64_t opsPerImage = 0;

    /** @return total area of the group in um^2. */
    double totalAreaUm2() const
    {
        return spec.areaUm2 * static_cast<double>(count);
    }
    /** @return energy per image in pJ. */
    double energyPerImagePj() const
    {
        return spec.energyPj * static_cast<double>(opsPerImage);
    }
};

/** Balanced adder tree over @p num_inputs operands of @p bits bits. */
OperatorSpec makeAdderTree(const TechParams &tech, std::size_t num_inputs,
                           int bits);

/** @p bits x @p bits multiplier (area scales quadratically from 8x8). */
OperatorSpec makeMultiplier(const TechParams &tech, int bits);

/** Max (comparator) tree over @p num_inputs values of @p bits bits. */
OperatorSpec makeMaxTree(const TechParams &tech, std::size_t num_inputs,
                         int bits);

/** Gaussian pseudo-random generator (4 x 31-bit LFSR, CLT). */
OperatorSpec makeGaussianRng(const TechParams &tech);

/** Register bank of @p bits bits. */
OperatorSpec makeRegister(const TechParams &tech, int bits);

/** Pixel-to-spike-count convertor channel (Figure 7). */
OperatorSpec makeConvertor(const TechParams &tech);

/** Spike-decode cell: shifters + partial products for one input. */
OperatorSpec makeSpikeDecode(const TechParams &tech);

/** Piecewise-linear sigmoid unit (multiplier + adder + table). */
OperatorSpec makeSigmoidUnit(const TechParams &tech);

/** Per-neuron LIF extras: leak unit, threshold compare, gating; the
 *  per-input bookkeeping scales with @p inputs. */
OperatorSpec makeLifExtras(const TechParams &tech, std::size_t inputs);

/** Per-neuron folded-datapath control FSM. */
OperatorSpec makeNeuronControl(const TechParams &tech);

/** Folded SNNwot per-neuron lane buffering/readout (Table 7 fit). */
OperatorSpec makeWotLaneBuffers(const TechParams &tech, std::size_t ni);

/** Folded SNNwt per-neuron extras: compare + leak slice + gating
 *  (Table 7 fit). */
OperatorSpec makeWtFoldedExtras(const TechParams &tech, std::size_t ni);

/** STDP per-neuron fixed circuit (Section 4.4 / Figure 13). */
OperatorSpec makeStdpFixed(const TechParams &tech);

/** STDP per-input circuit (spike-time register, LTP compare, +/-1). */
OperatorSpec makeStdpPerInput(const TechParams &tech, std::size_t inputs);

} // namespace hw
} // namespace neuro

