/**
 * @file
 * SRAM model for synaptic storage (Table 6). Folded designs stream
 * weights from single-port banks of fixed 128-bit word width; bank
 * count and depth are derived from the network topology and the fold
 * factor ni (a bank serves floor(128 / (ni*8)) neurons; its depth covers
 * ceil(num_inputs/ni) words, floored at 128 rows). Per-bank area and
 * read energy are interpolated from the paper's published bank
 * characterizations.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace neuro {
namespace hw {

/** One SRAM bank configuration. */
struct SramBank
{
    int widthBits = 128;       ///< word width.
    std::size_t depth = 0;     ///< rows.
    double areaUm2 = 0;        ///< per-bank layout area.
    double readEnergyPj = 0;   ///< per-read energy.

    /** @return total storage bits. */
    uint64_t
    bits() const
    {
        return static_cast<uint64_t>(widthBits) * depth;
    }
};

/** A homogeneous array of banks used by one layer. */
struct SramArray
{
    std::string name;          ///< e.g. "hidden-layer weights".
    SramBank bank;             ///< bank geometry.
    std::size_t numBanks = 0;  ///< instances.
    uint64_t readsPerImage = 0;///< total bank reads per image.

    /** @return array area in um^2. */
    double
    totalAreaUm2() const
    {
        return bank.areaUm2 * static_cast<double>(numBanks);
    }
    /** @return per-image read energy in pJ. */
    double
    energyPerImagePj() const
    {
        return bank.readEnergyPj * static_cast<double>(readsPerImage);
    }
    /** @return per-cycle read energy in pJ when all banks read each
     *  cycle (the "Total Energy" column of Table 6). */
    double
    energyPerCyclePj() const
    {
        return bank.readEnergyPj * static_cast<double>(numBanks);
    }
};

/** Build one 128-bit-wide bank of the given depth (area and read energy
 *  interpolated from the paper's published points). */
SramBank makeBank(std::size_t depth);

/**
 * Synaptic storage for one fully-connected layer in a folded design.
 *
 * @param name        array label.
 * @param num_neurons neurons sharing the storage.
 * @param num_inputs  synapses per neuron.
 * @param ni          inputs processed per cycle per neuron.
 * @param weight_bits weight precision (8 for MLP/SNNwt, 12 for SNNwot).
 * @param reads_per_image bank reads per processed image (all banks).
 */
SramArray makeSynapticStorage(const std::string &name,
                              std::size_t num_neurons,
                              std::size_t num_inputs, std::size_t ni,
                              int weight_bits, uint64_t reads_per_image);

} // namespace hw
} // namespace neuro

