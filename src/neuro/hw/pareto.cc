#include "neuro/hw/pareto.h"

#include <algorithm>
#include <functional>

#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"

namespace neuro {
namespace hw {

bool
DesignPoint::dominates(const DesignPoint &other) const
{
    const bool no_worse = areaMm2 <= other.areaMm2 &&
        energyUj <= other.energyUj && latencyNs <= other.latencyNs;
    const bool strictly_better = areaMm2 < other.areaMm2 ||
        energyUj < other.energyUj || latencyNs < other.latencyNs;
    return no_worse && strictly_better;
}

namespace {

DesignPoint
pointFrom(const std::string &label, const Design &design)
{
    DesignPoint point;
    point.label = label;
    point.areaMm2 = design.totalAreaMm2();
    point.energyUj = design.totalEnergyPerImageUj();
    point.latencyNs = design.timePerImageNs();
    return point;
}

} // namespace

std::vector<DesignPoint>
enumerateDesigns(const MlpTopology &mlp, const SnnTopology &snn,
                 const EnumerateOptions &options, const TechParams &tech)
{
    // Collect one (label, builder) task per candidate design, then
    // build them across the pool; the enumeration order of the old
    // sequential loops is preserved by parallelMap.
    struct Candidate
    {
        std::string label;
        std::function<Design()> build;
    };
    std::vector<Candidate> candidates;
    for (std::size_t ni : options.foldFactors) {
        candidates.push_back({"MLP folded ni=" + std::to_string(ni),
                              [=] { return buildFoldedMlp(mlp, ni, tech); }});
        candidates.push_back(
            {"SNNwot folded ni=" + std::to_string(ni),
             [=] { return buildFoldedSnnWot(snn, ni, tech); }});
        if (options.includeSnnWt) {
            candidates.push_back(
                {"SNNwt folded ni=" + std::to_string(ni),
                 [=] { return buildFoldedSnnWt(snn, ni, 500, tech); }});
        }
        for (std::size_t pool : options.mlpPools) {
            candidates.push_back(
                {"MLP pooled ni=" + std::to_string(ni) + " hw=" +
                     std::to_string(pool),
                 [=] { return buildFoldedMlpPooled(mlp, ni, pool, tech); }});
        }
    }
    if (options.includeExpanded) {
        candidates.push_back(
            {"MLP expanded", [=] { return buildExpandedMlp(mlp, tech); }});
        candidates.push_back(
            {"SNNwot expanded",
             [=] { return buildExpandedSnnWot(snn, tech); }});
        if (options.includeSnnWt) {
            candidates.push_back(
                {"SNNwt expanded",
                 [=] { return buildExpandedSnnWt(snn, 500, tech); }});
        }
    }
    return parallelMap<DesignPoint>(
        candidates.size(), [&](std::size_t i) {
            return pointFrom(candidates[i].label, candidates[i].build());
        });
}

std::vector<std::size_t>
paretoFrontier(const std::vector<DesignPoint> &points)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size(); ++j) {
            if (j == i)
                continue;
            if (points[j].dominates(points[i]) ||
                (j < i && points[j].areaMm2 == points[i].areaMm2 &&
                 points[j].energyUj == points[i].energyUj &&
                 points[j].latencyNs == points[i].latencyNs)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            frontier.push_back(i);
    }
    std::stable_sort(frontier.begin(), frontier.end(),
                     [&](std::size_t a, std::size_t b) {
                         return points[a].areaMm2 < points[b].areaMm2;
                     });
    return frontier;
}

} // namespace hw
} // namespace neuro
