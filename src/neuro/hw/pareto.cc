#include "neuro/hw/pareto.h"

#include <algorithm>

#include "neuro/common/logging.h"

namespace neuro {
namespace hw {

bool
DesignPoint::dominates(const DesignPoint &other) const
{
    const bool no_worse = areaMm2 <= other.areaMm2 &&
        energyUj <= other.energyUj && latencyNs <= other.latencyNs;
    const bool strictly_better = areaMm2 < other.areaMm2 ||
        energyUj < other.energyUj || latencyNs < other.latencyNs;
    return no_worse && strictly_better;
}

namespace {

DesignPoint
pointFrom(const std::string &label, const Design &design)
{
    DesignPoint point;
    point.label = label;
    point.areaMm2 = design.totalAreaMm2();
    point.energyUj = design.totalEnergyPerImageUj();
    point.latencyNs = design.timePerImageNs();
    return point;
}

} // namespace

std::vector<DesignPoint>
enumerateDesigns(const MlpTopology &mlp, const SnnTopology &snn,
                 const EnumerateOptions &options, const TechParams &tech)
{
    std::vector<DesignPoint> points;
    for (std::size_t ni : options.foldFactors) {
        points.push_back(pointFrom("MLP folded ni=" + std::to_string(ni),
                                   buildFoldedMlp(mlp, ni, tech)));
        points.push_back(
            pointFrom("SNNwot folded ni=" + std::to_string(ni),
                      buildFoldedSnnWot(snn, ni, tech)));
        if (options.includeSnnWt) {
            points.push_back(
                pointFrom("SNNwt folded ni=" + std::to_string(ni),
                          buildFoldedSnnWt(snn, ni, 500, tech)));
        }
        for (std::size_t pool : options.mlpPools) {
            points.push_back(pointFrom(
                "MLP pooled ni=" + std::to_string(ni) + " hw=" +
                    std::to_string(pool),
                buildFoldedMlpPooled(mlp, ni, pool, tech)));
        }
    }
    if (options.includeExpanded) {
        points.push_back(
            pointFrom("MLP expanded", buildExpandedMlp(mlp, tech)));
        points.push_back(pointFrom("SNNwot expanded",
                                   buildExpandedSnnWot(snn, tech)));
        if (options.includeSnnWt) {
            points.push_back(pointFrom(
                "SNNwt expanded", buildExpandedSnnWt(snn, 500, tech)));
        }
    }
    return points;
}

std::vector<std::size_t>
paretoFrontier(const std::vector<DesignPoint> &points)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size(); ++j) {
            if (j == i)
                continue;
            if (points[j].dominates(points[i]) ||
                (j < i && points[j].areaMm2 == points[i].areaMm2 &&
                 points[j].energyUj == points[i].energyUj &&
                 points[j].latencyNs == points[i].latencyNs)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            frontier.push_back(i);
    }
    std::stable_sort(frontier.begin(), frontier.end(),
                     [&](std::size_t a, std::size_t b) {
                         return points[a].areaMm2 < points[b].areaMm2;
                     });
    return frontier;
}

} // namespace hw
} // namespace neuro
