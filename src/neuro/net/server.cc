#include "neuro/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "neuro/common/logging.h"

namespace neuro {
namespace net {

namespace {

/** @return "<syscall>: <strerror>" for error strings. */
std::string
sysError(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

} // namespace

NetServer::NetServer(ServeFrontend &frontend, NetServerConfig config)
    : frontend_(frontend), config_(std::move(config))
{
    auto &reg = telemetry::MetricRegistry::instance();
    tm_.accepted = reg.counter("net.accepted");
    tm_.refused = reg.counter("net.refused");
    tm_.closed = reg.counter("net.closed");
    tm_.framesRx = reg.counter("net.frames_rx");
    tm_.framesTx = reg.counter("net.frames_tx");
    tm_.badFrames = reg.counter("net.bad_frames");
    tm_.bytesRx = reg.counter("net.bytes_rx");
    tm_.bytesTx = reg.counter("net.bytes_tx");
    tm_.connections = reg.gauge("net.connections");
}

NetServer::~NetServer() { stop(); }

bool
NetServer::start(std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error != nullptr)
            *error = what;
        if (listenFd_ >= 0)
            ::close(listenFd_);
        if (epollFd_ >= 0)
            ::close(epollFd_);
        if (wakeFd_ >= 0)
            ::close(wakeFd_);
        listenFd_ = epollFd_ = wakeFd_ = -1;
        return false;
    };

    MutexGuard lock(lifecycleMutex_);
    NEURO_ASSERT(!started_, "net: start() called twice");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                      SOCK_CLOEXEC,
                         0);
    if (listenFd_ < 0)
        return fail(sysError("socket"));
    const int one = 1;
    (void)::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1)
        return fail("bad listen address '" + config_.host + "'");
    if (::bind(listenFd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0)
        return fail(sysError("bind"));
    if (::listen(listenFd_, config_.backlog) != 0)
        return fail(sysError("listen"));

    sockaddr_in bound{};
    socklen_t boundLen = sizeof bound;
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &boundLen) != 0)
        return fail(sysError("getsockname"));
    port_.store(ntohs(bound.sin_port), std::memory_order_release);

    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd_ < 0)
        return fail(sysError("epoll_create1"));
    wakeFd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wakeFd_ < 0)
        return fail(sysError("eventfd"));

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev) != 0)
        return fail(sysError("epoll_ctl(listen)"));
    ev.data.fd = wakeFd_;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev) != 0)
        return fail(sysError("epoll_ctl(wake)"));

    started_ = true;
    loop_ = std::thread([this] { eventLoop(); });
    return true;
}

void
NetServer::stop()
{
    {
        MutexGuard lock(lifecycleMutex_);
        if (!started_ || stopped_)
            return;
        stopped_ = true;
    }
    // 1. Close the doors: the loop drops the listen socket on the
    //    next wakeup, so no new connections join the drain.
    stopRequested_.store(true, std::memory_order_release);
    wake();
    // 2. Drain the serving queues: blocks until every in-flight
    //    request is fulfilled, i.e. every response the server will
    //    ever produce sits serialized in a connection outbox. The
    //    event loop keeps running (and flushing) throughout.
    frontend_.stop();
    // 3. Flush the tail to peers that are still reading, bounded so a
    //    wedged client cannot hold shutdown hostage, then tear down.
    flushDeadline_ = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(
                         config_.drainTimeoutMillis);
    finishFlush_.store(true, std::memory_order_release);
    wake();
    if (loop_.joinable())
        loop_.join();
    if (epollFd_ >= 0)
        ::close(epollFd_);
    if (wakeFd_ >= 0)
        ::close(wakeFd_);
    epollFd_ = wakeFd_ = -1;
}

void
NetServer::requestStop()
{
    // Async-signal-safe: one lock-free store and one write(2); the
    // drain itself is run by whichever normal-context thread watches
    // stopRequested() and calls stop().
    stopRequested_.store(true, std::memory_order_release);
    if (wakeFd_ >= 0) {
        const uint64_t one = 1;
        ssize_t ignored = ::write(wakeFd_, &one, sizeof one);
        (void)ignored;
    }
}

std::size_t
NetServer::connectionCount() const
{
    MutexGuard lock(connMutex_);
    return connections_.size();
}

void
NetServer::wake()
{
    const uint64_t one = 1;
    ssize_t ignored = ::write(wakeFd_, &one, sizeof one);
    (void)ignored;
}

void
NetServer::closeListenSocket()
{
    if (listenFd_ < 0)
        return;
    (void)::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
    ::close(listenFd_);
    listenFd_ = -1;
}

void
NetServer::eventLoop()
{
    std::array<epoll_event, 64> events;
    for (;;) {
        const bool finishing =
            finishFlush_.load(std::memory_order_acquire);
        const int timeoutMs = finishing ? 50 : -1;
        const int n = ::epoll_wait(epollFd_, events.data(),
                                   static_cast<int>(events.size()),
                                   timeoutMs);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("net: %s", sysError("epoll_wait").c_str());
            break;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[static_cast<std::size_t>(i)].data.fd;
            const uint32_t mask =
                events[static_cast<std::size_t>(i)].events;
            if (fd == wakeFd_) {
                uint64_t drained = 0;
                while (::read(wakeFd_, &drained, sizeof drained) > 0) {
                }
                continue;
            }
            if (fd == listenFd_) {
                acceptReady();
                continue;
            }
            std::shared_ptr<Connection> conn;
            {
                MutexGuard lock(connMutex_);
                const auto it = connections_.find(fd);
                if (it != connections_.end())
                    conn = it->second;
            }
            if (conn == nullptr)
                continue; // closed earlier in this batch.
            if ((mask & (EPOLLHUP | EPOLLERR)) != 0 &&
                (mask & EPOLLIN) == 0) {
                closeConnection(conn);
                continue;
            }
            if ((mask & EPOLLIN) != 0)
                handleReadable(conn, finishing);
            if (conn->fd >= 0 && (mask & EPOLLOUT) != 0)
                serviceConnection(conn);
        }
        flushDirty();
        if (stopRequested_.load(std::memory_order_acquire))
            closeListenSocket();
        if (finishing &&
            (allFlushed() ||
             std::chrono::steady_clock::now() >= flushDeadline_))
            break;
    }
    // Tear down whatever is left; stop() owns the epoll/wake fds.
    std::vector<std::shared_ptr<Connection>> remaining;
    {
        MutexGuard lock(connMutex_);
        remaining.reserve(connections_.size());
        for (const auto &entry : connections_)
            remaining.push_back(entry.second);
    }
    for (const std::shared_ptr<Connection> &conn : remaining)
        closeConnection(conn);
    closeListenSocket();
}

void
NetServer::acceptReady()
{
    for (;;) {
        const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK)
                warn("net: %s", sysError("accept4").c_str());
            return;
        }
        if (connectionCount() >= config_.maxConnections) {
            ::close(fd);
            tm_.refused->inc();
            continue;
        }
        const int one = 1;
        (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                           sizeof one);
        auto conn = std::make_shared<Connection>(config_.maxFrameBytes);
        conn->fd = fd;
        {
            MutexGuard lock(connMutex_);
            connections_[fd] = conn;
        }
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            warn("net: %s", sysError("epoll_ctl(add)").c_str());
            closeConnection(conn);
            continue;
        }
        tm_.accepted->inc();
        tm_.connections->set(
            static_cast<double>(connectionCount()));
    }
}

void
NetServer::handleReadable(const std::shared_ptr<Connection> &conn,
                          bool discard)
{
    uint8_t buf[16384];
    for (;;) {
        const ssize_t r = ::recv(conn->fd, buf, sizeof buf, 0);
        if (r > 0) {
            tm_.bytesRx->inc(static_cast<uint64_t>(r));
            // While finishing a drain the server no longer executes
            // requests; bytes are consumed (to notice EOF) but not
            // decoded.
            if (!discard)
                conn->decoder.feed(buf, static_cast<std::size_t>(r));
            continue;
        }
        if (r == 0) {
            conn->peerClosed = true;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        conn->peerClosed = true;
        conn->closeAfterFlush = true;
        break;
    }
    if (!discard)
        processFrames(conn);
    serviceConnection(conn);
}

void
NetServer::processFrames(const std::shared_ptr<Connection> &conn)
{
    std::vector<uint8_t> payload;
    for (;;) {
        const FrameDecoder::Result res = conn->decoder.next(&payload);
        if (res == FrameDecoder::Result::NeedMore)
            return;
        if (res == FrameDecoder::Result::Error) {
            // Corrupt length prefix: the stream cannot resynchronize.
            // Best-effort BadFrame response, then close once flushed.
            tm_.badFrames->inc();
            warn("net: dropping connection: %s",
                 conn->decoder.error().c_str());
            ResponseFrame response;
            response.status = FrameStatus::BadFrame;
            conn->inflight.fetch_add(1, std::memory_order_relaxed);
            queueResponse(conn, response);
            conn->closeAfterFlush = true;
            return;
        }
        tm_.framesRx->inc();
        RequestFrame frame;
        std::string error;
        if (!parseRequest(payload.data(), payload.size(), &frame,
                          &error)) {
            // The length prefix was sane, so the frame boundary is
            // intact: answer BadFrame and keep the connection.
            tm_.badFrames->inc();
            verbose("net: bad request frame: %s", error.c_str());
            ResponseFrame response;
            response.id = frame.id;
            response.status = FrameStatus::BadFrame;
            conn->inflight.fetch_add(1, std::memory_order_relaxed);
            queueResponse(conn, response);
            continue;
        }
        conn->inflight.fetch_add(1, std::memory_order_relaxed);
        frontend_.submit(
            std::move(frame),
            [this, conn](ResponseFrame &&response) {
                queueResponse(conn, response);
            });
    }
}

void
NetServer::queueResponse(const std::shared_ptr<Connection> &conn,
                         const ResponseFrame &response)
{
    // Runs on serve dispatcher threads for executed requests, and on
    // the event-loop thread for synchronous dispositions (unknown
    // model, bad frame, admission rejection).
    bool dropped = false;
    {
        MutexGuard lock(conn->mutex);
        if (conn->dropped) {
            dropped = true;
        } else {
            encodeResponse(response, &conn->outbox);
            if (conn->outbox.size() - conn->outboxPos >
                config_.maxOutboxBytes)
                conn->overflowed.store(true,
                                       std::memory_order_relaxed);
        }
    }
    conn->inflight.fetch_sub(1, std::memory_order_release);
    if (dropped)
        return;
    tm_.framesTx->inc();
    {
        MutexGuard lock(dirtyMutex_);
        dirty_.push_back(conn);
    }
    wake();
}

NetServer::FlushState
NetServer::flushConnection(const std::shared_ptr<Connection> &conn)
{
    if (conn->fd < 0)
        return FlushState::Flushed;
    MutexGuard lock(conn->mutex);
    while (conn->outboxPos < conn->outbox.size()) {
        const ssize_t w = ::send(
            conn->fd, conn->outbox.data() + conn->outboxPos,
            conn->outbox.size() - conn->outboxPos, MSG_NOSIGNAL);
        if (w > 0) {
            conn->outboxPos += static_cast<std::size_t>(w);
            tm_.bytesTx->inc(static_cast<uint64_t>(w));
            continue;
        }
        if (w < 0 && errno == EINTR)
            continue;
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!conn->wantWrite) {
                epoll_event ev{};
                ev.events = EPOLLIN | EPOLLOUT;
                ev.data.fd = conn->fd;
                (void)::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn->fd,
                                  &ev);
                conn->wantWrite = true;
            }
            return FlushState::Pending;
        }
        return FlushState::Dead; // peer reset mid-response.
    }
    conn->outbox.clear();
    conn->outboxPos = 0;
    if (conn->wantWrite) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = conn->fd;
        (void)::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn->fd, &ev);
        conn->wantWrite = false;
    }
    return FlushState::Flushed;
}

void
NetServer::serviceConnection(const std::shared_ptr<Connection> &conn)
{
    if (conn->fd < 0)
        return;
    // Sample inflight BEFORE flushing: queueResponse() appends to the
    // outbox and only then decrements inflight (release), so a zero
    // read here (acquire) proves every response is already in the
    // outbox the flush below writes. Checking in the other order
    // races: a completion landing between the flush and the check
    // would have its bytes thrown away by the close.
    const bool drained =
        conn->inflight.load(std::memory_order_acquire) == 0;
    const FlushState state = flushConnection(conn);
    if (state == FlushState::Dead ||
        conn->overflowed.load(std::memory_order_relaxed)) {
        closeConnection(conn);
        return;
    }
    // A half-closed or errored peer is torn down only after its final
    // responses have drained out of the serving pipeline and socket.
    if ((conn->peerClosed || conn->closeAfterFlush) && drained &&
        state == FlushState::Flushed)
        closeConnection(conn);
}

void
NetServer::flushDirty()
{
    std::vector<std::shared_ptr<Connection>> dirty;
    {
        MutexGuard lock(dirtyMutex_);
        dirty.swap(dirty_);
    }
    for (const std::shared_ptr<Connection> &conn : dirty)
        serviceConnection(conn);
}

void
NetServer::closeConnection(const std::shared_ptr<Connection> &conn)
{
    if (conn->fd < 0)
        return;
    (void)::epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    {
        MutexGuard lock(conn->mutex);
        conn->dropped = true;
        conn->outbox.clear();
        conn->outboxPos = 0;
    }
    ::close(conn->fd);
    {
        MutexGuard lock(connMutex_);
        connections_.erase(conn->fd);
    }
    conn->fd = -1;
    tm_.closed->inc();
    tm_.connections->set(static_cast<double>(connectionCount()));
}

bool
NetServer::allFlushed()
{
    MutexGuard lock(connMutex_);
    for (const auto &entry : connections_) {
        Connection &conn = *entry.second;
        if (conn.inflight.load(std::memory_order_acquire) != 0)
            return false;
        MutexGuard connLock(conn.mutex);
        if (conn.outboxPos < conn.outbox.size())
            return false;
    }
    return true;
}

} // namespace net
} // namespace neuro
