#include "neuro/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace neuro {
namespace net {

namespace {

void
setError(std::string *error, const std::string &what)
{
    if (error != nullptr)
        *error = what;
}

std::string
sysError(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

} // namespace

NetClient::~NetClient() { close(); }

bool
NetClient::connect(const std::string &host, uint16_t port,
                   std::string *error)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
        setError(error, sysError("socket"));
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        setError(error, "bad address '" + host + "'");
        close();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        setError(error, sysError("connect"));
        close();
        return false;
    }
    const int one = 1;
    (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof one);
    return true;
}

bool
NetClient::sendRequest(const RequestFrame &frame, std::string *error)
{
    if (fd_ < 0) {
        setError(error, "not connected");
        return false;
    }
    std::vector<uint8_t> wire;
    encodeRequest(frame, &wire);
    std::size_t sent = 0;
    while (sent < wire.size()) {
        const ssize_t w = ::send(fd_, wire.data() + sent,
                                 wire.size() - sent, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            setError(error, sysError("send"));
            return false;
        }
        sent += static_cast<std::size_t>(w);
    }
    return true;
}

bool
NetClient::readResponse(ResponseFrame *response, std::string *error)
{
    std::vector<uint8_t> payload;
    for (;;) {
        const FrameDecoder::Result res = decoder_.next(&payload);
        if (res == FrameDecoder::Result::Error) {
            setError(error, decoder_.error());
            return false;
        }
        if (res == FrameDecoder::Result::Frame) {
            std::string parseError;
            if (!parseResponse(payload.data(), payload.size(),
                               response, &parseError)) {
                setError(error, parseError);
                return false;
            }
            return true;
        }
        if (fd_ < 0) {
            setError(error, "not connected");
            return false;
        }
        uint8_t buf[16384];
        const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
        if (r > 0) {
            decoder_.feed(buf, static_cast<std::size_t>(r));
            continue;
        }
        if (r == 0) {
            setError(error, "connection closed by server");
            return false;
        }
        if (errno == EINTR)
            continue;
        setError(error, sysError("recv"));
        return false;
    }
}

void
NetClient::shutdownWrite()
{
    if (fd_ >= 0)
        (void)::shutdown(fd_, SHUT_WR);
}

void
NetClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace net
} // namespace neuro
