#include "neuro/net/frontend.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "neuro/common/logging.h"
#include "neuro/telemetry/metrics.h"

namespace neuro {
namespace net {

namespace {

/** Registry handles shared by every frontend in the process. */
struct FrontendTelemetry
{
    std::shared_ptr<telemetry::Counter> requests;
    std::shared_ptr<telemetry::Counter> unknownModel;
    std::shared_ptr<telemetry::Counter> badFrames;

    static FrontendTelemetry &
    instance()
    {
        static FrontendTelemetry tm = [] {
            auto &reg = telemetry::MetricRegistry::instance();
            FrontendTelemetry t;
            t.requests = reg.counter("net.requests");
            t.unknownModel = reg.counter("net.unknown_model");
            t.badFrames = reg.counter("net.bad_frames");
            return t;
        }();
        return tm;
    }
};

/** Map the serving runtime's disposition onto the wire status. */
FrameStatus
toFrameStatus(serve::RequestStatus status)
{
    switch (status) {
    case serve::RequestStatus::Ok: return FrameStatus::Ok;
    case serve::RequestStatus::Rejected: return FrameStatus::Rejected;
    case serve::RequestStatus::Expired: return FrameStatus::Expired;
    }
    return FrameStatus::BadFrame;
}

/** @return true iff @p name ends with @p suffix. */
bool
endsWith(const std::string &name, const char *suffix)
{
    const std::string s(suffix);
    return name.size() >= s.size() &&
           name.compare(name.size() - s.size(), s.size(), s) == 0;
}

} // namespace

ServeFrontend::ServeFrontend(const serve::ModelRegistry &registry,
                             const serve::ServeConfig &config,
                             const std::vector<std::string> &models)
{
    FrontendTelemetry::instance(); // resolve handles before traffic.
    const std::vector<std::string> names =
        models.empty() ? registry.names() : models;
    for (const std::string &name : names) {
        std::shared_ptr<serve::InferenceBackend> backend =
            registry.find(name);
        if (backend == nullptr) {
            warn("net: model '%s' is not in the registry; skipping",
                 name.c_str());
            continue;
        }
        // SLO fallback: a base model degrades to its cheaper sibling
        // variant; the variants themselves (and models without one)
        // serve with fallback scrubbed so the ServeConfig invariants
        // (fallback backend + SLO armed) hold per server.
        serve::ServeConfig modelConfig = config;
        std::shared_ptr<serve::InferenceBackend> fallback;
        const bool isVariant =
            endsWith(name, ".q8") || endsWith(name, ".wot");
        if (config.enableFallback && !isVariant) {
            for (const char *suffix : {".q8", ".wot"}) {
                fallback = registry.find(name + suffix);
                if (fallback != nullptr)
                    break;
            }
        }
        if (fallback == nullptr)
            modelConfig.enableFallback = false;
        Model model;
        model.backend = std::move(backend);
        model.server = std::make_unique<serve::InferenceServer>(
            model.backend, modelConfig, std::move(fallback));
        models_.emplace(name, std::move(model));
    }
    NEURO_ASSERT(!models_.empty(),
                 "net: frontend built with no servable models");
}

ServeFrontend::~ServeFrontend() { stop(); }

void
ServeFrontend::submit(RequestFrame &&frame, ResponseFn onResponse)
{
    FrontendTelemetry &tm = FrontendTelemetry::instance();
    tm.requests->inc();

    const auto it = models_.find(frame.model);
    if (it == models_.end()) {
        tm.unknownModel->inc();
        ResponseFrame response;
        response.id = frame.id;
        response.status = FrameStatus::UnknownModel;
        onResponse(std::move(response));
        return;
    }
    const Model &model = it->second;
    if (frame.pixels.size() != model.backend->inputSize()) {
        tm.badFrames->inc();
        ResponseFrame response;
        response.id = frame.id;
        response.status = FrameStatus::BadFrame;
        onResponse(std::move(response));
        return;
    }

    serve::InferenceRequest request;
    request.id = frame.id;
    request.streamSeed = frame.streamSeed;
    if (frame.deadlineMicros > 0) {
        request.deadline =
            serve::ServeClock::now() +
            std::chrono::microseconds(frame.deadlineMicros);
    }
    // Wire pixels are f32; the backends consume 8-bit luminance.
    // Round-to-nearest with clamping is exact for every integral
    // value in [0, 255], keeping wire predictions bit-identical to
    // in-process serving for byte-valued samples.
    request.pixels.resize(frame.pixels.size());
    for (std::size_t i = 0; i < frame.pixels.size(); ++i) {
        const float clamped =
            std::fmin(255.0F, std::fmax(0.0F, frame.pixels[i]));
        request.pixels[i] =
            static_cast<uint8_t>(std::lround(clamped));
    }

    model.server->submit(
        std::move(request),
        [onResponse = std::move(onResponse)](
            serve::InferenceResult &&result) {
            ResponseFrame response;
            response.id = result.id;
            response.status = toFrameStatus(result.status);
            response.classIndex = result.classIndex;
            response.batchSize = result.batchSize;
            response.queueMicros =
                static_cast<float>(result.queueMicros);
            response.batchMicros =
                static_cast<float>(result.batchMicros);
            response.computeMicros =
                static_cast<float>(result.computeMicros);
            response.totalMicros =
                static_cast<float>(result.totalMicros);
            onResponse(std::move(response));
        });
}

void
ServeFrontend::stop()
{
    for (auto &entry : models_)
        entry.second.server->stop();
}

std::vector<std::string>
ServeFrontend::models() const
{
    std::vector<std::string> names;
    names.reserve(models_.size());
    for (const auto &entry : models_)
        names.push_back(entry.first);
    return names;
}

serve::InferenceServer *
ServeFrontend::server(const std::string &model) const
{
    const auto it = models_.find(model);
    return it == models_.end() ? nullptr : it->second.server.get();
}

} // namespace net
} // namespace neuro
