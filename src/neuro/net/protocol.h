/**
 * @file
 * Wire protocol of the network serving front end (docs/serving.md,
 * "Network protocol"): length-prefixed binary frames over a stream
 * transport (TCP). Every frame is
 *
 *     u32 payloadLen | payload (payloadLen bytes)
 *
 * with all integers and floats little-endian on the wire. A request
 * payload carries magic + version, the target model name, per-request
 * id / stream seed / relative deadline, and the sample as f32 pixels;
 * a response payload carries the prediction, the per-stage latency
 * decomposition the serving runtime measured (queue/batch/compute,
 * docs/observability.md) and a FrameStatus — Ok, the serving
 * runtime's Rejected/Expired admission outcomes, or the
 * protocol-level BadFrame/UnknownModel errors.
 *
 * FrameDecoder does the transport-side work: it accumulates whatever
 * byte chunks recv() produced (partial frames, frames split at any
 * byte boundary, several frames concatenated in one read) and yields
 * complete payloads, rejecting oversize or malformed length prefixes
 * before any allocation proportional to the claimed length.
 * parseRequest()/parseResponse() then validate a payload's magic,
 * version, bounds and exact length.
 *
 * Pixels travel as f32 so future datasets are not clamped to 8-bit
 * luminance; the front end converts to the backends' uint8 domain
 * with round-to-nearest, which is exact for every integral value in
 * [0, 255] — the conversion keeps wire predictions bit-identical to
 * in-process serving for byte-valued samples.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace neuro {
namespace net {

/** Frame magic ("NRN1" when read as little-endian bytes). */
constexpr uint32_t kMagic = 0x314E524EU;

/** Protocol version this build speaks. */
constexpr uint16_t kVersion = 1;

/** Fixed request-payload prefix before the name/pixel tails. */
constexpr std::size_t kRequestHeaderBytes = 32;

/** Exact response-payload size. */
constexpr std::size_t kResponseBytes = 40;

/** Longest accepted model name. */
constexpr std::size_t kMaxNameBytes = 256;

/** Most pixels a request may carry (1M f32 = 4 MiB payload). */
constexpr std::size_t kMaxPixels = 1U << 20;

/** Default decoder bound on one frame's payload length. */
constexpr std::size_t kDefaultMaxFrameBytes =
    kRequestHeaderBytes + kMaxNameBytes + 4 * kMaxPixels;

/** Terminal disposition of a request, as sent on the wire. */
enum class FrameStatus : uint16_t
{
    Ok = 0,           ///< classified; classIndex is valid.
    Rejected = 1,     ///< admission control refused (queue full/closed).
    Expired = 2,      ///< deadline passed before a worker got to it.
    BadFrame = 3,     ///< malformed frame or pixel-count mismatch.
    UnknownModel = 4, ///< no registered model under that name.
};

/** @return a printable name ("ok", "rejected", ...). */
const char *frameStatusName(FrameStatus status);

/** One decoded inference request frame. */
struct RequestFrame
{
    uint64_t id = 0;            ///< echoed verbatim in the response.
    uint64_t streamSeed = 0;    ///< per-request random stream seed.
    /** Relative deadline in microseconds from server receipt;
     *  0 = no deadline. */
    uint32_t deadlineMicros = 0;
    std::string model;          ///< routing key (ModelRegistry name).
    std::vector<float> pixels;  ///< the sample, f32 per pixel.
};

/** One decoded inference response frame. */
struct ResponseFrame
{
    uint64_t id = 0;
    FrameStatus status = FrameStatus::BadFrame;
    int32_t classIndex = -1;    ///< predicted class (Ok only).
    uint32_t batchSize = 0;     ///< size of the batch it rode in.
    float queueMicros = 0.0F;   ///< enqueue -> dequeued for batching.
    float batchMicros = 0.0F;   ///< dequeue -> batch compute start.
    float computeMicros = 0.0F; ///< backend compute -> completion.
    float totalMicros = 0.0F;   ///< enqueue -> completion.
};

/** Append @p frame (length prefix + payload) to @p out. */
void encodeRequest(const RequestFrame &frame, std::vector<uint8_t> *out);

/** Append @p frame (length prefix + payload) to @p out. */
void encodeResponse(const ResponseFrame &frame,
                    std::vector<uint8_t> *out);

/**
 * Parse a complete request payload (as yielded by FrameDecoder).
 * @return false with @p error set on bad magic/version, oversize
 *         name or pixel count, or a payload whose length disagrees
 *         with its own header fields.
 */
bool parseRequest(const uint8_t *payload, std::size_t size,
                  RequestFrame *out, std::string *error);

/** Parse a complete response payload; see parseRequest(). */
bool parseResponse(const uint8_t *payload, std::size_t size,
                   ResponseFrame *out, std::string *error);

/**
 * Incremental frame reassembler over a byte stream. Not thread-safe;
 * each connection owns one. feed() appends whatever the transport
 * produced; next() yields complete payloads one at a time. A length
 * prefix exceeding maxFrameBytes (or shorter than the smallest
 * well-formed payload) is a protocol error: the decoder latches
 * Error and the connection must be torn down — byte streams cannot
 * resynchronize after a corrupt length.
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(std::size_t maxFrameBytes =
                              kDefaultMaxFrameBytes);

    /** Outcome of one next() call. */
    enum class Result
    {
        NeedMore, ///< no complete frame buffered yet.
        Frame,    ///< *payload holds one complete frame payload.
        Error,    ///< corrupt length prefix; see error().
    };

    /** Append @p n transport bytes. */
    void feed(const uint8_t *data, std::size_t n);

    /** Extract the next complete payload into @p payload. */
    Result next(std::vector<uint8_t> *payload);

    /** @return the latched protocol error ("" if none). */
    const std::string &error() const { return error_; }

    /** @return bytes buffered but not yet yielded. */
    std::size_t buffered() const { return buffer_.size() - readPos_; }

  private:
    std::size_t maxFrameBytes_;
    std::vector<uint8_t> buffer_;
    std::size_t readPos_ = 0;
    std::string error_;
    bool failed_ = false;
};

} // namespace net
} // namespace neuro
