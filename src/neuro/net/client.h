/**
 * @file
 * Blocking client of the binary serving protocol (protocol.h) — the
 * test and load-harness counterpart of NetServer.
 *
 * The two directions of the socket are independent: sendRequest()
 * only writes, readResponse() only reads, and each direction keeps
 * its own state (the decoder belongs to the read side). One sender
 * thread and one reader thread may therefore use the same client
 * concurrently — exactly the shape of an open-loop load generator,
 * where sends are paced by a schedule and never wait on responses
 * (bench/bench_serving_openloop.cpp). Two threads calling the *same*
 * direction is not supported.
 */

#pragma once

#include <cstdint>
#include <string>

#include "neuro/net/protocol.h"

namespace neuro {
namespace net {

/** Blocking TCP client speaking the length-prefixed frame protocol. */
class NetClient
{
  public:
    NetClient() = default;

    /** Closes the socket if still open. */
    ~NetClient();

    NetClient(const NetClient &) = delete;
    NetClient &operator=(const NetClient &) = delete;

    /**
     * Connect to @p host : @p port (IPv4 dotted host) with
     * TCP_NODELAY set.
     * @return false with @p error set on failure.
     */
    bool connect(const std::string &host, uint16_t port,
                 std::string *error = nullptr);

    /** @return true while the socket is open. */
    bool connected() const { return fd_ >= 0; }

    /**
     * Serialize @p frame and write it fully (blocking).
     * @return false with @p error set on transport failure.
     */
    bool sendRequest(const RequestFrame &frame,
                     std::string *error = nullptr);

    /**
     * Block until one complete response frame arrives.
     * @return false with @p error set on EOF, transport failure or a
     *         malformed frame.
     */
    bool readResponse(ResponseFrame *response,
                      std::string *error = nullptr);

    /** Shut down the write side; the server sees EOF, flushes any
     *  pending responses and closes. readResponse() keeps working
     *  until the server's side of the stream ends. */
    void shutdownWrite();

    /** Close the socket. Idempotent. */
    void close();

  private:
    int fd_ = -1;
    FrameDecoder decoder_; ///< read-side state only.
};

} // namespace net
} // namespace neuro
