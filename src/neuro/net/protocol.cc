#include "neuro/net/protocol.h"

#include <bit>
#include <cstdio>
#include <cstring>

namespace neuro {
namespace net {

namespace {

// Explicit little-endian byte serialization: the wire format is
// defined in bytes, not in host integers, so the codec is correct on
// any endianness without #ifdefs.

void
putU16(std::vector<uint8_t> *out, uint16_t v)
{
    out->push_back(static_cast<uint8_t>(v & 0xFFU));
    out->push_back(static_cast<uint8_t>((v >> 8) & 0xFFU));
}

void
putU32(std::vector<uint8_t> *out, uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out->push_back(static_cast<uint8_t>((v >> shift) & 0xFFU));
}

void
putU64(std::vector<uint8_t> *out, uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out->push_back(static_cast<uint8_t>((v >> shift) & 0xFFU));
}

void
putF32(std::vector<uint8_t> *out, float v)
{
    putU32(out, std::bit_cast<uint32_t>(v));
}

uint16_t
getU16(const uint8_t *p)
{
    return static_cast<uint16_t>(static_cast<uint16_t>(p[0]) |
                                 static_cast<uint16_t>(p[1]) << 8);
}

uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

float
getF32(const uint8_t *p)
{
    return std::bit_cast<float>(getU32(p));
}

bool
fail(std::string *error, const std::string &what)
{
    if (error != nullptr)
        *error = what;
    return false;
}

/** Shared magic/version validation of both payload kinds. */
bool
checkPreamble(const uint8_t *payload, std::size_t size,
              std::size_t minSize, const char *kind, std::string *error)
{
    if (size < minSize) {
        return fail(error, std::string(kind) + " payload truncated (" +
                               std::to_string(size) + " < " +
                               std::to_string(minSize) + " bytes)");
    }
    if (getU32(payload) != kMagic)
        return fail(error, std::string(kind) + " payload has bad magic");
    const uint16_t version = getU16(payload + 4);
    if (version != kVersion) {
        return fail(error, std::string(kind) + " payload version " +
                               std::to_string(version) +
                               " unsupported (this build speaks " +
                               std::to_string(kVersion) + ")");
    }
    return true;
}

} // namespace

const char *
frameStatusName(FrameStatus status)
{
    switch (status) {
    case FrameStatus::Ok: return "ok";
    case FrameStatus::Rejected: return "rejected";
    case FrameStatus::Expired: return "expired";
    case FrameStatus::BadFrame: return "bad_frame";
    case FrameStatus::UnknownModel: return "unknown_model";
    }
    return "unknown";
}

void
encodeRequest(const RequestFrame &frame, std::vector<uint8_t> *out)
{
    const std::size_t payloadLen = kRequestHeaderBytes +
                                   frame.model.size() +
                                   4 * frame.pixels.size();
    out->reserve(out->size() + 4 + payloadLen);
    putU32(out, static_cast<uint32_t>(payloadLen));
    putU32(out, kMagic);
    putU16(out, kVersion);
    putU16(out, static_cast<uint16_t>(frame.model.size()));
    putU64(out, frame.id);
    putU64(out, frame.streamSeed);
    putU32(out, frame.deadlineMicros);
    putU32(out, static_cast<uint32_t>(frame.pixels.size()));
    out->insert(out->end(), frame.model.begin(), frame.model.end());
    for (const float v : frame.pixels)
        putF32(out, v);
}

void
encodeResponse(const ResponseFrame &frame, std::vector<uint8_t> *out)
{
    out->reserve(out->size() + 4 + kResponseBytes);
    putU32(out, static_cast<uint32_t>(kResponseBytes));
    putU32(out, kMagic);
    putU16(out, kVersion);
    putU16(out, static_cast<uint16_t>(frame.status));
    putU64(out, frame.id);
    putU32(out, std::bit_cast<uint32_t>(frame.classIndex));
    putU32(out, frame.batchSize);
    putF32(out, frame.queueMicros);
    putF32(out, frame.batchMicros);
    putF32(out, frame.computeMicros);
    putF32(out, frame.totalMicros);
}

bool
parseRequest(const uint8_t *payload, std::size_t size,
             RequestFrame *out, std::string *error)
{
    if (!checkPreamble(payload, size, kRequestHeaderBytes, "request",
                       error))
        return false;
    const uint16_t nameLen = getU16(payload + 6);
    out->id = getU64(payload + 8);
    out->streamSeed = getU64(payload + 16);
    out->deadlineMicros = getU32(payload + 24);
    const uint32_t pixelCount = getU32(payload + 28);
    if (nameLen > kMaxNameBytes)
        return fail(error, "request model name exceeds " +
                               std::to_string(kMaxNameBytes) + " bytes");
    if (pixelCount > kMaxPixels)
        return fail(error, "request pixel count " +
                               std::to_string(pixelCount) + " exceeds " +
                               std::to_string(kMaxPixels));
    const std::size_t expect = kRequestHeaderBytes + nameLen +
                               std::size_t{4} * pixelCount;
    if (size != expect) {
        return fail(error, "request payload is " + std::to_string(size) +
                               " bytes, header describes " +
                               std::to_string(expect));
    }
    out->model.assign(reinterpret_cast<const char *>(payload) +
                          kRequestHeaderBytes,
                      nameLen);
    out->pixels.resize(pixelCount);
    const uint8_t *p = payload + kRequestHeaderBytes + nameLen;
    for (uint32_t i = 0; i < pixelCount; ++i, p += 4)
        out->pixels[i] = getF32(p);
    return true;
}

bool
parseResponse(const uint8_t *payload, std::size_t size,
              ResponseFrame *out, std::string *error)
{
    if (!checkPreamble(payload, size, kResponseBytes, "response", error))
        return false;
    if (size != kResponseBytes) {
        return fail(error, "response payload is " +
                               std::to_string(size) + " bytes, expected " +
                               std::to_string(kResponseBytes));
    }
    const uint16_t status = getU16(payload + 6);
    if (status > static_cast<uint16_t>(FrameStatus::UnknownModel)) {
        return fail(error, "response status " + std::to_string(status) +
                               " unknown");
    }
    out->status = static_cast<FrameStatus>(status);
    out->id = getU64(payload + 8);
    out->classIndex = std::bit_cast<int32_t>(getU32(payload + 16));
    out->batchSize = getU32(payload + 20);
    out->queueMicros = getF32(payload + 24);
    out->batchMicros = getF32(payload + 28);
    out->computeMicros = getF32(payload + 32);
    out->totalMicros = getF32(payload + 36);
    return true;
}

FrameDecoder::FrameDecoder(std::size_t maxFrameBytes)
    : maxFrameBytes_(maxFrameBytes)
{
}

void
FrameDecoder::feed(const uint8_t *data, std::size_t n)
{
    if (failed_)
        return; // the connection is doomed; don't buffer more.
    // Reclaim consumed prefix before growing: the buffer then stays
    // bounded by one frame plus one read chunk.
    if (readPos_ > 0 && readPos_ == buffer_.size()) {
        buffer_.clear();
        readPos_ = 0;
    } else if (readPos_ > maxFrameBytes_) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(readPos_));
        readPos_ = 0;
    }
    buffer_.insert(buffer_.end(), data, data + n);
}

FrameDecoder::Result
FrameDecoder::next(std::vector<uint8_t> *payload)
{
    if (failed_)
        return Result::Error;
    if (buffered() < 4)
        return Result::NeedMore;
    const uint8_t *base = buffer_.data() + readPos_;
    const uint32_t len = getU32(base);
    // The smallest well-formed payload is a request header with no
    // name and no pixels (32 bytes); a shorter (or absurdly long)
    // length prefix means the stream is corrupt or hostile, and a
    // byte stream cannot resynchronize past it.
    if (len < kRequestHeaderBytes || len > maxFrameBytes_) {
        failed_ = true;
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "frame length %u outside [%zu, %zu]", len,
                      kRequestHeaderBytes, maxFrameBytes_);
        error_ = buf;
        return Result::Error;
    }
    if (buffered() < 4 + static_cast<std::size_t>(len))
        return Result::NeedMore;
    payload->assign(base + 4, base + 4 + len);
    readPos_ += 4 + static_cast<std::size_t>(len);
    return Result::Frame;
}

} // namespace net
} // namespace neuro
