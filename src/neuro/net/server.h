/**
 * @file
 * Epoll-based binary-protocol server over a ServeFrontend: the wire
 * of the serving runtime (docs/serving.md, "Network protocol").
 *
 * One event-loop thread owns every socket: it accepts non-blocking
 * connections, reads request bytes into per-connection FrameDecoders
 * (partial-frame reassembly across reads), routes complete frames
 * through the front end, and writes queued response bytes back,
 * falling to EPOLLOUT when a socket's send buffer fills. Inference
 * completion callbacks run on the serve dispatcher threads; they only
 * serialize the response into the connection's outbox and wake the
 * event loop through an eventfd, so backend compute never blocks on a
 * slow client and the loop never blocks on a backend.
 *
 * Shutdown is drain-first: stop() closes the listen socket, drains
 * every per-model queue through the front end (all in-flight
 * requests fulfilled → all responses serialized), flushes the
 * outboxes to the peers that are still reading, then closes the
 * connections and joins the loop. requestStop() is the
 * async-signal-safe half: it only sets a flag and writes the eventfd,
 * letting a SIGINT/SIGTERM handler ask for exactly that sequence from
 * the main thread (see `neurocmp serve --listen`).
 *
 * Telemetry: net.{accepted,closed,frames_rx,frames_tx,bad_frames,
 * bytes_rx,bytes_tx} counters and the net.connections gauge
 * (docs/observability.md).
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "neuro/common/mutex.h"
#include "neuro/net/frontend.h"
#include "neuro/net/protocol.h"
#include "neuro/telemetry/metrics.h"

namespace neuro {
namespace net {

/** Listener and transport knobs of a NetServer. */
struct NetServerConfig
{
    std::string host = "127.0.0.1"; ///< bind address (IPv4 dotted).
    uint16_t port = 0;              ///< 0 = ephemeral; see port().
    int backlog = 128;              ///< listen(2) backlog.
    std::size_t maxFrameBytes = kDefaultMaxFrameBytes;
    std::size_t maxConnections = 256; ///< accept cap; extras refused.
    /** Per-connection bound on buffered response bytes: a client
     *  that stops reading while still sending gets disconnected
     *  instead of growing the outbox without bound. */
    std::size_t maxOutboxBytes = 16U << 20;
    /** stop() bound on flushing responses to slow peers (ms). */
    int64_t drainTimeoutMillis = 5000;
};

/** Epoll event loop serving the binary protocol over TCP. */
class NetServer
{
  public:
    NetServer(ServeFrontend &frontend, NetServerConfig config = {});

    /** Stops and drains (see stop()). */
    ~NetServer();

    NetServer(const NetServer &) = delete;
    NetServer &operator=(const NetServer &) = delete;

    /**
     * Bind, listen and start the event loop.
     * @return false with @p error set when the socket setup fails
     *         (address in use, bad host, fd limits).
     */
    bool start(std::string *error = nullptr);

    /** @return the bound port (the kernel's pick when config.port=0);
     *  0 before start(). */
    uint16_t port() const
    {
        return port_.load(std::memory_order_acquire);
    }

    /**
     * Drain-first shutdown: stop accepting, drain the front end's
     * queues (every in-flight request fulfilled), flush pending
     * responses for at most drainTimeoutMillis, close every
     * connection and join the loop. Idempotent.
     */
    void stop();

    /**
     * Async-signal-safe stop request: sets a flag and wakes the event
     * loop, which immediately closes the listen socket. The actual
     * drain must then be driven by a normal-context thread observing
     * stopRequested() and calling stop().
     */
    void requestStop();

    /** @return true once requestStop() (or stop()) was called. */
    bool stopRequested() const
    {
        return stopRequested_.load(std::memory_order_acquire);
    }

    /** @return currently open connections. */
    std::size_t connectionCount() const;

  private:
    /** Per-connection transport state. The event-loop thread owns fd
     *  and decoder; the outbox crosses threads (completion callbacks
     *  append, the loop flushes) under the connection mutex. */
    struct Connection
    {
        explicit Connection(std::size_t maxFrameBytes)
            : decoder(maxFrameBytes)
        {
        }

        int fd = -1;
        FrameDecoder decoder;
        /** Requests routed but not yet answered into the outbox. */
        std::atomic<int64_t> inflight{0};
        /** Outbox exceeded maxOutboxBytes; the loop disconnects. */
        std::atomic<bool> overflowed{false};
        /** Peer half-closed (read EOF); flush, then close. */
        bool peerClosed = false;          // event-loop thread only.
        /** Protocol error seen; close once the outbox flushes. */
        bool closeAfterFlush = false;     // event-loop thread only.
        bool wantWrite = false;           // EPOLLOUT armed.
        Mutex mutex;
        /** Serialized response bytes awaiting write. */
        std::vector<uint8_t> outbox NEURO_GUARDED_BY(mutex);
        std::size_t outboxPos NEURO_GUARDED_BY(mutex) = 0;
        /** fd closed; late completions drop their response. */
        bool dropped NEURO_GUARDED_BY(mutex) = false;
    };

    /** Outcome of one flushConnection() attempt. */
    enum class FlushState
    {
        Flushed, ///< outbox fully written.
        Pending, ///< send buffer full; EPOLLOUT armed.
        Dead,    ///< transport error; caller must close.
    };

    void eventLoop();
    void acceptReady();
    void handleReadable(const std::shared_ptr<Connection> &conn,
                        bool discard);
    void processFrames(const std::shared_ptr<Connection> &conn);
    void queueResponse(const std::shared_ptr<Connection> &conn,
                       const ResponseFrame &response);
    FlushState flushConnection(const std::shared_ptr<Connection> &conn);
    /** Flush + close-if-done bookkeeping after any state change. */
    void serviceConnection(const std::shared_ptr<Connection> &conn);
    void flushDirty();
    void closeConnection(const std::shared_ptr<Connection> &conn);
    void closeListenSocket();
    void wake();
    /** @return true when no connection still owes the peer bytes. */
    bool allFlushed();

    ServeFrontend &frontend_;
    NetServerConfig config_;

    int listenFd_ = -1; ///< event-loop thread after start().
    int epollFd_ = -1;
    int wakeFd_ = -1;
    std::atomic<uint16_t> port_{0};
    std::atomic<bool> stopRequested_{false};
    std::atomic<bool> finishFlush_{false}; ///< stop(): flush and exit.
    /** Written by stop() before the finishFlush_ release-store. */
    std::chrono::steady_clock::time_point flushDeadline_;
    /** Serializes start()/stop() lifecycle transitions. */
    Mutex lifecycleMutex_;
    bool started_ NEURO_GUARDED_BY(lifecycleMutex_) = false;
    bool stopped_ NEURO_GUARDED_BY(lifecycleMutex_) = false;
    std::thread loop_;

    mutable Mutex connMutex_;
    std::map<int, std::shared_ptr<Connection>>
        connections_ NEURO_GUARDED_BY(connMutex_);

    /** Connections with freshly queued responses, handed from the
     *  completion callbacks to the event loop. */
    Mutex dirtyMutex_;
    std::vector<std::shared_ptr<Connection>>
        dirty_ NEURO_GUARDED_BY(dirtyMutex_);

    /** Registry-owned telemetry handles (docs/observability.md). */
    struct Telemetry
    {
        std::shared_ptr<telemetry::Counter> accepted;
        std::shared_ptr<telemetry::Counter> refused;
        std::shared_ptr<telemetry::Counter> closed;
        std::shared_ptr<telemetry::Counter> framesRx;
        std::shared_ptr<telemetry::Counter> framesTx;
        std::shared_ptr<telemetry::Counter> badFrames;
        std::shared_ptr<telemetry::Counter> bytesRx;
        std::shared_ptr<telemetry::Counter> bytesTx;
        std::shared_ptr<telemetry::Gauge> connections;
    };
    Telemetry tm_;
};

} // namespace net
} // namespace neuro
