/**
 * @file
 * Multi-model serving front end: routes decoded request frames by
 * model name across ModelRegistry entries, one InferenceServer per
 * model (docs/serving.md, "Network protocol").
 *
 * Per-model servers give each model its own admission queue,
 * dispatcher and micro-batcher, so one model's overload degrades to
 * *its* rejections instead of starving every other model behind a
 * shared queue — the admission-fairness property
 * bench_serving_openloop measures. The routing table is built once at
 * construction and immutable afterwards, so route() takes no lock.
 *
 * Responses come back through the serve layer's callback completion
 * path (InferenceServer::submit with a CompletionFn): the front end
 * maps each InferenceResult onto a ResponseFrame — Ok/Rejected/
 * Expired straight from the serving runtime, BadFrame for
 * pixel-count mismatches, UnknownModel for names the registry never
 * loaded — and hands it to the caller's ResponseFn on whichever
 * thread fulfilled the request (see the CompletionFn contract in
 * serve/server.h).
 */

#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "neuro/net/protocol.h"
#include "neuro/serve/registry.h"
#include "neuro/serve/server.h"

namespace neuro {
namespace net {

/** Routes request frames to per-model inference servers. */
class ServeFrontend
{
  public:
    /** Response delivery callback; see class comment for threading. */
    using ResponseFn = std::function<void(ResponseFrame &&)>;

    /**
     * Build one InferenceServer per registry model.
     *
     * @param registry source of backends; only read during
     *        construction.
     * @param config   per-model serving knobs. When
     *        config.enableFallback is set, each base model gets its
     *        cheaper sibling variant ("<name>.q8" / "<name>.wot") as
     *        the SLO fallback backend; models without a sibling (and
     *        the variants themselves) serve with fallback disabled.
     * @param models   names to serve; empty = every registry entry.
     */
    ServeFrontend(const serve::ModelRegistry &registry,
                  const serve::ServeConfig &config,
                  const std::vector<std::string> &models = {});

    /** Stops every model server (see stop()). */
    ~ServeFrontend();

    ServeFrontend(const ServeFrontend &) = delete;
    ServeFrontend &operator=(const ServeFrontend &) = delete;

    /**
     * Route @p frame to its model's server. Always responds exactly
     * once through @p onResponse: synchronously for UnknownModel /
     * BadFrame / admission rejection, from the dispatcher thread
     * otherwise.
     */
    void submit(RequestFrame &&frame, ResponseFn onResponse);

    /** Close admission on every model server and drain them all.
     *  Blocks until every in-flight request has been fulfilled (all
     *  callbacks have run). Idempotent. */
    void stop();

    /** @return the served model names, sorted. */
    std::vector<std::string> models() const;

    /** @return the named model's server (tests/CLI), or nullptr. */
    serve::InferenceServer *server(const std::string &model) const;

  private:
    struct Model
    {
        std::shared_ptr<serve::InferenceBackend> backend;
        std::unique_ptr<serve::InferenceServer> server;
    };

    /** Immutable after construction — lock-free routing. */
    std::map<std::string, Model> models_;
};

} // namespace net
} // namespace neuro
