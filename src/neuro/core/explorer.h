/**
 * @file
 * Design-space exploration (the paper's "1000 evaluated settings" of
 * Section 3.1): topology sweeps for Figure 8, sigmoid-slope sweeps for
 * Figure 6, coding-scheme sweeps for Figure 14, plus a generic random
 * hyper-parameter search over SNN settings.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "neuro/core/experiment.h"
#include "neuro/snn/coding.h"

namespace neuro {
namespace core {

/** One sweep sample: a parameter value and the accuracy it achieved. */
struct SweepPoint
{
    double parameter = 0; ///< swept value (#neurons, slope a, ...).
    double accuracy = 0;  ///< test accuracy in [0,1].
};

/** Figure 8, MLP series: accuracy vs number of hidden neurons. */
std::vector<SweepPoint>
sweepMlpHidden(const Workload &workload,
               const std::vector<std::size_t> &hidden_sizes,
               uint64_t seed = 21);

/** Figure 8, SNN series: accuracy vs number of output neurons
 *  (SNN+STDP, wt forward path). */
std::vector<SweepPoint>
sweepSnnNeurons(const Workload &workload,
                const std::vector<std::size_t> &neuron_counts,
                uint64_t seed = 22);

/** Figure 6: MLP error rate vs parameterized-sigmoid slope a, plus the
 *  step function as the limit point (appended with parameter = 0). */
std::vector<SweepPoint>
sweepSigmoidSlope(const Workload &workload,
                  const std::vector<double> &slopes, uint64_t seed = 23);

/** Figure 14: SNN accuracy per coding scheme and network size. */
struct CodingSweepPoint
{
    snn::CodingScheme scheme;   ///< coding scheme.
    std::size_t neurons = 0;    ///< network size.
    double accuracy = 0;        ///< test accuracy.
};

std::vector<CodingSweepPoint>
sweepCodingSchemes(const Workload &workload,
                   const std::vector<snn::CodingScheme> &schemes,
                   const std::vector<std::size_t> &neuron_counts,
                   uint64_t seed = 24);

/** A random-search trial over SNN hyper-parameters. */
struct SnnTrial
{
    snn::SnnConfig config; ///< the sampled configuration.
    double accuracy = 0;   ///< resulting test accuracy (wt path).
};

/**
 * Random search over Tleak / TLTP / threshold / homeostasis settings
 * within the ranges of Table 1, mimicking the paper's hyper-parameter
 * exploration. @return trials sorted by decreasing accuracy.
 */
std::vector<SnnTrial> exploreSnnHyperparameters(const Workload &workload,
                                                std::size_t trials,
                                                uint64_t seed = 25);

} // namespace core
} // namespace neuro

