#include "neuro/core/reports.h"

#include <cmath>
#include <cstdio>

#include "neuro/common/table.h"

namespace neuro {
namespace core {
namespace paper {

const Table2Row kTable2[5] = {
    {"MLP+BP [22]", 98.40},
    {"SNN+STDP [11]", 93.50},
    {"SNN+STDP [23]", 95.00},
    {"ImageNet [4]", 99.21},
    {"MCDNN [21]", 99.77},
};

const Table6Row kTable6[4] = {
    // ni, depth, read pJ, bank um^2, SNN banks, MLP banks,
    // SNN nJ, MLP nJ, SNN mm^2, MLP mm^2
    {1, 784, 44.41, 108351.0, 19, 8, 0.84, 0.31, 2.06, 0.76},
    {4, 200, 33.05, 46002.0, 75, 28, 2.48, 0.93, 3.45, 1.29},
    {8, 128, 32.46, 40772.0, 150, 55, 4.87, 1.79, 6.12, 2.24},
    {16, 128, 32.46, 40772.0, 300, 110, 9.74, 3.56, 12.23, 4.48},
};

const Table7Row kTable7[15] = {
    {"SNNwot", "1", 1.11, 3.17, 1.24, 1.03, 791},
    {"SNNwot", "4", 1.89, 5.34, 1.48, 0.68, 203},
    {"SNNwot", "8", 2.79, 8.91, 1.76, 0.67, 105},
    {"SNNwot", "16", 4.10, 16.33, 1.84, 0.70, 56},
    {"SNNwot", "expanded", 26.79, 46.06, 3.17, 0.03, 3},
    {"SNNwt", "1", 0.48, 2.56, 1.15, 471.58, 791.0 * 500},
    {"SNNwt", "4", 0.84, 4.36, 1.11, 315.33, 203.0 * 500},
    {"SNNwt", "8", 1.19, 7.45, 1.18, 307.09, 105.0 * 500},
    {"SNNwt", "16", 1.74, 14.25, 1.84, 325.69, 56.0 * 500},
    {"SNNwt", "expanded", 19.62, 38.89, 2.61, 214.70, 500},
    {"MLP", "1", 0.29, 1.05, 2.24, 0.38, 882},
    {"MLP", "4", 0.62, 1.91, 2.24, 0.29, 223},
    {"MLP", "8", 1.02, 3.26, 2.25, 0.30, 113},
    {"MLP", "16", 1.88, 6.36, 2.25, 0.29, 57},
    {"MLP", "expanded", 73.14, 79.63, 3.79, 0.06, 4},
};

const Table8Row kTable8[3] = {
    // type, speedup ni=1/ni=16/expanded, energy ni=1/ni=16/expanded
    {"SNNwot", 59.10, 543.43, 6086.46, 2799.72, 4132.53, 31542.31},
    {"SNNwt", 0.12, 1.14, 44.60, 6.15, 8.90, 13.51},
    {"MLP", 40.44, 626.03, 5409.63, 12743.14, 16365.61, 79151.75},
};

const Table9Row kTable9[4] = {
    {1, 2.55, 4.92, 1.23, 0.71},
    {4, 3.33, 7.10, 1.48, 0.37},
    {8, 4.26, 10.70, 1.81, 0.32},
    {16, 6.44, 19.06, 1.88, 0.33},
};

} // namespace paper

void
printDesignRows(std::ostream &os, const std::string &title,
                const std::vector<DesignRow> &rows)
{
    TextTable table(title);
    table.setHeader({"Type", "ni", "Area no-SRAM (mm2)",
                     "Total area (mm2)", "Delay (ns)", "Energy (uJ)",
                     "Cycles/image"});
    std::string last_type;
    for (const auto &row : rows) {
        if (!last_type.empty() && row.type != last_type)
            table.addSeparator();
        last_type = row.type;
        table.addRow({row.type, row.ni, TextTable::fmt(row.areaNoSramMm2),
                      TextTable::fmt(row.totalAreaMm2),
                      TextTable::fmt(row.delayNs),
                      TextTable::fmt(row.energyUj, 3),
                      TextTable::num(static_cast<long long>(row.cycles))});
    }
    table.print(os);
}

std::string
vsPaper(double measured, double published, int precision)
{
    char buf[96];
    if (published == 0.0) {
        std::snprintf(buf, sizeof(buf), "%.*f", precision, measured);
        return buf;
    }
    const double delta = (measured - published) / published * 100.0;
    std::snprintf(buf, sizeof(buf), "%.*f (paper %.*f, %+.0f%%)",
                  precision, measured, precision, published, delta);
    return buf;
}

} // namespace core
} // namespace neuro
