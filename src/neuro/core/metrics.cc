#include "neuro/core/metrics.h"

#include <iomanip>

#include "neuro/common/logging.h"

namespace neuro {
namespace core {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : numClasses_(num_classes),
      cells_(static_cast<std::size_t>(num_classes) *
                 static_cast<std::size_t>(num_classes),
             0)
{
    NEURO_ASSERT(num_classes > 0, "need at least one class");
}

void
ConfusionMatrix::record(int actual, int predicted)
{
    NEURO_ASSERT(actual >= 0 && actual < numClasses_,
                 "actual label out of range");
    ++total_;
    if (predicted < 0 || predicted >= numClasses_)
        return; // counted as an error; no cell to attribute it to.
    ++cells_[static_cast<std::size_t>(actual) *
                 static_cast<std::size_t>(numClasses_) +
             static_cast<std::size_t>(predicted)];
    if (actual == predicted)
        ++correct_;
}

uint64_t
ConfusionMatrix::at(int actual, int predicted) const
{
    NEURO_ASSERT(actual >= 0 && actual < numClasses_ && predicted >= 0 &&
                     predicted < numClasses_,
                 "confusion index out of range");
    return cells_[static_cast<std::size_t>(actual) *
                      static_cast<std::size_t>(numClasses_) +
                  static_cast<std::size_t>(predicted)];
}

double
ConfusionMatrix::accuracy() const
{
    return total_ ? static_cast<double>(correct_) /
                        static_cast<double>(total_)
                  : 0.0;
}

double
ConfusionMatrix::precision(int cls) const
{
    uint64_t predicted = 0;
    for (int a = 0; a < numClasses_; ++a)
        predicted += at(a, cls);
    return predicted ? static_cast<double>(at(cls, cls)) /
                           static_cast<double>(predicted)
                     : 0.0;
}

double
ConfusionMatrix::recall(int cls) const
{
    uint64_t actual = 0;
    for (int p = 0; p < numClasses_; ++p)
        actual += at(cls, p);
    return actual ? static_cast<double>(at(cls, cls)) /
                        static_cast<double>(actual)
                  : 0.0;
}

double
ConfusionMatrix::f1(int cls) const
{
    const double p = precision(cls);
    const double r = recall(cls);
    return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

void
ConfusionMatrix::print(std::ostream &os) const
{
    os << "confusion matrix (rows = actual, cols = predicted):\n    ";
    for (int p = 0; p < numClasses_; ++p)
        os << std::setw(6) << p;
    os << "\n";
    for (int a = 0; a < numClasses_; ++a) {
        os << std::setw(4) << a;
        for (int p = 0; p < numClasses_; ++p)
            os << std::setw(6) << at(a, p);
        os << "\n";
    }
    os << "accuracy: " << accuracy() * 100.0 << "%\n";
}

ConfusionMatrix
evaluateConfusion(const datasets::Dataset &data,
                  const Predictor &predictor)
{
    NEURO_ASSERT(!data.empty(), "empty dataset");
    ConfusionMatrix matrix(data.numClasses());
    for (std::size_t i = 0; i < data.size(); ++i)
        matrix.record(data[i].label, predictor(data[i]));
    return matrix;
}

} // namespace core
} // namespace neuro
