#include "neuro/core/explorer.h"

#include <algorithm>

#include "neuro/common/config.h"
#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"
#include "neuro/common/rng.h"

namespace neuro {
namespace core {

// Every sweep below is embarrassingly parallel across its points: the
// per-point seeds are fixed functions of (seed, point), never of the
// iteration order, so running points concurrently via parallelMap
// returns the exact vectors the old sequential loops produced.

std::vector<SweepPoint>
sweepMlpHidden(const Workload &workload,
               const std::vector<std::size_t> &hidden_sizes, uint64_t seed)
{
    return parallelMap<SweepPoint>(
        hidden_sizes.size(), [&](std::size_t i) {
            const std::size_t hidden = hidden_sizes[i];
            mlp::MlpConfig config = defaultMlpConfig(workload);
            config.layerSizes[1] = hidden;
            mlp::TrainConfig train = defaultMlpTrainConfig();
            train.seed = seed + hidden;
            const double acc = mlp::trainAndEvaluate(
                config, train, workload.data.train, workload.data.test,
                seed * 31 + hidden);
            return SweepPoint{static_cast<double>(hidden), acc};
        });
}

std::vector<SweepPoint>
sweepSnnNeurons(const Workload &workload,
                const std::vector<std::size_t> &neuron_counts,
                uint64_t seed)
{
    return parallelMap<SweepPoint>(
        neuron_counts.size(), [&](std::size_t i) {
            const std::size_t neurons = neuron_counts[i];
            snn::SnnConfig config =
                defaultSnnConfig(workload, workload.data.train.size());
            config.numNeurons = neurons;
            retuneSnnForTopology(config, workload.data.train.size());

            snn::SnnTrainConfig train;
            train.epochs = scaled(3, 1);
            train.seed = seed + neurons;
            const double acc = snn::trainAndEvaluateStdp(
                config, train, workload.data.train, workload.data.test,
                snn::EvalMode::Wt, seed * 37 + neurons);
            return SweepPoint{static_cast<double>(neurons), acc};
        });
}

std::vector<SweepPoint>
sweepSigmoidSlope(const Workload &workload,
                  const std::vector<double> &slopes, uint64_t seed)
{
    const float base_lr = defaultMlpTrainConfig().learningRate;
    // slopes.size() parametric-sigmoid points plus the step-function
    // limit (recorded as parameter 0) as the last point.
    return parallelMap<SweepPoint>(
        slopes.size() + 1, [&](std::size_t i) {
            mlp::MlpConfig config = defaultMlpConfig(workload);
            mlp::TrainConfig train = defaultMlpTrainConfig();
            double param = 0.0;
            uint64_t eval_seed = seed * 43;
            if (i < slopes.size()) {
                const double a = slopes[i];
                param = a;
                config.activation = mlp::ActivationKind::ParamSigmoid;
                config.slope = static_cast<float>(a);
                train.seed = seed + static_cast<uint64_t>(a * 8);
                eval_seed = seed * 41 + static_cast<uint64_t>(a * 8);
            } else {
                config.activation = mlp::ActivationKind::Step;
                config.slope = 8.0f; // surrogate-gradient slope.
                train.seed = seed + 999;
            }
            // The gradient scales with the slope; keep the effective
            // step size constant so steep sigmoids do not diverge.
            train.learningRate = base_lr / config.slope;
            const double acc = mlp::trainAndEvaluate(
                config, train, workload.data.train, workload.data.test,
                eval_seed);
            return SweepPoint{param, acc};
        });
}

std::vector<CodingSweepPoint>
sweepCodingSchemes(const Workload &workload,
                   const std::vector<snn::CodingScheme> &schemes,
                   const std::vector<std::size_t> &neuron_counts,
                   uint64_t seed)
{
    // Flatten the (scheme, neurons) grid so every cell is one pool
    // task; the row-major order of the old nested loops is preserved.
    struct Cell
    {
        snn::CodingScheme scheme;
        std::size_t neurons;
    };
    std::vector<Cell> cells;
    for (snn::CodingScheme scheme : schemes)
        for (std::size_t neurons : neuron_counts)
            cells.push_back({scheme, neurons});

    return parallelMap<CodingSweepPoint>(
        cells.size(), [&](std::size_t i) {
            const auto [scheme, neurons] = cells[i];
            snn::SnnConfig config =
                defaultSnnConfig(workload, workload.data.train.size());
            config.coding.scheme = scheme;
            config.numNeurons = neurons;
            // Temporal codes deliver at most one spike per pixel; scale
            // the firing threshold down accordingly so neurons still
            // reach it.
            if (scheme == snn::CodingScheme::TimeToFirstSpike ||
                scheme == snn::CodingScheme::RankOrder) {
                config.initialThreshold /= 6.0;
            }
            retuneSnnForTopology(config, workload.data.train.size());

            snn::SnnTrainConfig train;
            train.epochs = scaled(3, 1);
            train.seed = seed + neurons;
            const double acc = snn::trainAndEvaluateStdp(
                config, train, workload.data.train, workload.data.test,
                snn::EvalMode::Wt,
                seed * 47 + neurons + static_cast<uint64_t>(scheme));
            return CodingSweepPoint{scheme, neurons, acc};
        });
}

std::vector<SnnTrial>
exploreSnnHyperparameters(const Workload &workload, std::size_t trials,
                          uint64_t seed)
{
    // Draw every trial's hyperparameters up front: the Rng stream is
    // sequential, so sampling must stay in trial order for the trials
    // to match the historical sequential run. The expensive part —
    // training and evaluating each candidate — is then parallel.
    Rng rng(seed);
    std::vector<SnnTrial> results(trials);
    for (std::size_t t = 0; t < trials; ++t) {
        SnnTrial &trial = results[t];
        trial.config = defaultSnnConfig(workload,
                                        workload.data.train.size());
        // Table 1 exploration ranges.
        trial.config.tLeakMs = rng.uniform(10.0, 800.0);
        trial.config.stdp.ltpWindowMs =
            static_cast<int>(rng.uniform(1.0, 50.0));
        trial.config.initialThreshold =
            rng.uniform(0.3, 2.0) * 17850.0;
        trial.config.tInhibitMs = static_cast<int>(rng.uniform(1.0, 20.0));
        trial.config.tRefracMs = static_cast<int>(rng.uniform(5.0, 50.0));
    }

    parallelFor(std::size_t{0}, trials, std::size_t{1},
                [&](std::size_t t) {
                    snn::SnnTrainConfig train;
                    train.epochs = 1;
                    train.seed = seed + t;
                    results[t].accuracy = snn::trainAndEvaluateStdp(
                        results[t].config, train, workload.data.train,
                        workload.data.test, snn::EvalMode::Wt,
                        seed * 53 + t);
                });
    std::stable_sort(results.begin(), results.end(),
                     [](const SnnTrial &a, const SnnTrial &b) {
                         return a.accuracy > b.accuracy;
                     });
    return results;
}

} // namespace core
} // namespace neuro
