#include "neuro/core/explorer.h"

#include <algorithm>

#include "neuro/common/config.h"
#include "neuro/common/logging.h"
#include "neuro/common/rng.h"

namespace neuro {
namespace core {

std::vector<SweepPoint>
sweepMlpHidden(const Workload &workload,
               const std::vector<std::size_t> &hidden_sizes, uint64_t seed)
{
    std::vector<SweepPoint> points;
    for (std::size_t hidden : hidden_sizes) {
        mlp::MlpConfig config = defaultMlpConfig(workload);
        config.layerSizes[1] = hidden;
        mlp::TrainConfig train = defaultMlpTrainConfig();
        train.seed = seed + hidden;
        const double acc =
            mlp::trainAndEvaluate(config, train, workload.data.train,
                                  workload.data.test, seed * 31 + hidden);
        points.push_back({static_cast<double>(hidden), acc});
    }
    return points;
}

std::vector<SweepPoint>
sweepSnnNeurons(const Workload &workload,
                const std::vector<std::size_t> &neuron_counts,
                uint64_t seed)
{
    std::vector<SweepPoint> points;
    for (std::size_t neurons : neuron_counts) {
        snn::SnnConfig config =
            defaultSnnConfig(workload, workload.data.train.size());
        config.numNeurons = neurons;
        retuneSnnForTopology(config, workload.data.train.size());

        snn::SnnTrainConfig train;
        train.epochs = scaled(3, 1);
        train.seed = seed + neurons;
        const double acc = snn::trainAndEvaluateStdp(
            config, train, workload.data.train, workload.data.test,
            snn::EvalMode::Wt, seed * 37 + neurons);
        points.push_back({static_cast<double>(neurons), acc});
    }
    return points;
}

std::vector<SweepPoint>
sweepSigmoidSlope(const Workload &workload,
                  const std::vector<double> &slopes, uint64_t seed)
{
    std::vector<SweepPoint> points;
    mlp::TrainConfig train = defaultMlpTrainConfig();
    const float base_lr = train.learningRate;
    for (double a : slopes) {
        mlp::MlpConfig config = defaultMlpConfig(workload);
        config.activation = mlp::ActivationKind::ParamSigmoid;
        config.slope = static_cast<float>(a);
        // The gradient scales with the slope; keep the effective step
        // size constant so steep sigmoids do not diverge.
        train.learningRate = base_lr / static_cast<float>(a);
        train.seed = seed + static_cast<uint64_t>(a * 8);
        const double acc = mlp::trainAndEvaluate(
            config, train, workload.data.train, workload.data.test,
            seed * 41 + static_cast<uint64_t>(a * 8));
        points.push_back({a, acc});
    }
    // The step-function limit (parameter recorded as 0).
    mlp::MlpConfig config = defaultMlpConfig(workload);
    config.activation = mlp::ActivationKind::Step;
    config.slope = 8.0f; // surrogate-gradient slope.
    train.learningRate = base_lr / config.slope;
    train.seed = seed + 999;
    const double acc =
        mlp::trainAndEvaluate(config, train, workload.data.train,
                              workload.data.test, seed * 43);
    points.push_back({0.0, acc});
    return points;
}

std::vector<CodingSweepPoint>
sweepCodingSchemes(const Workload &workload,
                   const std::vector<snn::CodingScheme> &schemes,
                   const std::vector<std::size_t> &neuron_counts,
                   uint64_t seed)
{
    std::vector<CodingSweepPoint> points;
    for (snn::CodingScheme scheme : schemes) {
        for (std::size_t neurons : neuron_counts) {
            snn::SnnConfig config =
                defaultSnnConfig(workload, workload.data.train.size());
            config.coding.scheme = scheme;
            config.numNeurons = neurons;
            // Temporal codes deliver at most one spike per pixel; scale
            // the firing threshold down accordingly so neurons still
            // reach it.
            if (scheme == snn::CodingScheme::TimeToFirstSpike ||
                scheme == snn::CodingScheme::RankOrder) {
                config.initialThreshold /= 6.0;
            }
            retuneSnnForTopology(config, workload.data.train.size());

            snn::SnnTrainConfig train;
            train.epochs = scaled(3, 1);
            train.seed = seed + neurons;
            const double acc = snn::trainAndEvaluateStdp(
                config, train, workload.data.train, workload.data.test,
                snn::EvalMode::Wt,
                seed * 47 + neurons + static_cast<uint64_t>(scheme));
            points.push_back({scheme, neurons, acc});
        }
    }
    return points;
}

std::vector<SnnTrial>
exploreSnnHyperparameters(const Workload &workload, std::size_t trials,
                          uint64_t seed)
{
    Rng rng(seed);
    std::vector<SnnTrial> results;
    for (std::size_t t = 0; t < trials; ++t) {
        SnnTrial trial;
        trial.config = defaultSnnConfig(workload,
                                        workload.data.train.size());
        // Table 1 exploration ranges.
        trial.config.tLeakMs = rng.uniform(10.0, 800.0);
        trial.config.stdp.ltpWindowMs =
            static_cast<int>(rng.uniform(1.0, 50.0));
        trial.config.initialThreshold =
            rng.uniform(0.3, 2.0) * 17850.0;
        trial.config.tInhibitMs = static_cast<int>(rng.uniform(1.0, 20.0));
        trial.config.tRefracMs = static_cast<int>(rng.uniform(5.0, 50.0));

        snn::SnnTrainConfig train;
        train.epochs = 1;
        train.seed = seed + t;
        trial.accuracy = snn::trainAndEvaluateStdp(
            trial.config, train, workload.data.train, workload.data.test,
            snn::EvalMode::Wt, seed * 53 + t);
        results.push_back(std::move(trial));
    }
    std::stable_sort(results.begin(), results.end(),
                     [](const SnnTrial &a, const SnnTrial &b) {
                         return a.accuracy > b.accuracy;
                     });
    return results;
}

} // namespace core
} // namespace neuro
