/**
 * @file
 * Experiment plumbing shared by the benches and examples: workload
 * definitions (MNIST-like, MPEG-7-like, SAD-like, each with the paper's
 * per-workload topologies of Sections 3.1 and 4.5), paper-default model
 * configurations (Table 1), and the Table 3 accuracy comparison runner.
 */

#pragma once

#include <cstdint>
#include <string>

#include "neuro/datasets/dataset.h"
#include "neuro/hw/expanded.h"
#include "neuro/mlp/backprop.h"
#include "neuro/snn/network.h"
#include "neuro/snn/snn_bp.h"
#include "neuro/snn/trainer.h"

namespace neuro {
namespace core {

/** A benchmark workload: data plus the paper's topology choices. */
struct Workload
{
    std::string name;          ///< "mnist", "mpeg7" or "sad".
    datasets::Split data;      ///< train/test split.
    hw::MlpTopology mlpTopo;   ///< paper's MLP topology for it.
    hw::SnnTopology snnTopo;   ///< paper's SNN topology for it.
};

/**
 * MNIST-like workload (28x28; MLP 784-100-10, SNN 784-300). Sizes are
 * scaled by NEURO_SCALE; real MNIST is used when NEURO_MNIST_DIR is set.
 */
Workload makeMnistWorkload(std::size_t train_size = 10000,
                           std::size_t test_size = 2000,
                           uint64_t seed = 1);

/** MPEG-7-like silhouettes (28x28; MLP 784-15-10, SNN 784-90). */
Workload makeMpeg7Workload(std::size_t train_size = 4000,
                           std::size_t test_size = 1000,
                           uint64_t seed = 2);

/** Spoken-Arabic-Digit-like workload (13x13; MLP 169-60-10,
 *  SNN 169-90). */
Workload makeSadWorkload(std::size_t train_size = 6000,
                         std::size_t test_size = 1500, uint64_t seed = 3);

/** Paper-default MLP configuration for a workload (Table 1). */
mlp::MlpConfig defaultMlpConfig(const Workload &workload);

/** Paper-default MLP training configuration, epochs scaled. */
mlp::TrainConfig defaultMlpTrainConfig();

/**
 * Paper-default SNN configuration for a workload (Table 1), with STDP
 * learning steps scaled up to compensate for the scaled-down training
 * set (the paper trains on 60k images; the defaults keep the same
 * total weight movement per synapse).
 */
snn::SnnConfig defaultSnnConfig(const Workload &workload,
                                std::size_t train_images);

/**
 * Re-derive the topology-dependent SNN settings (homeostasis epoch and
 * activity target) after changing numNeurons; sweeps must call this so
 * every network size gets the same adaptation dynamics.
 */
void retuneSnnForTopology(snn::SnnConfig &config,
                          std::size_t train_images);

/** Paper-default SNN+BP configuration for a workload. */
snn::SnnBpConfig defaultSnnBpConfig(const Workload &workload);

/** Table 3: accuracies of the four models on one workload. */
struct AccuracyResults
{
    double snnWt = 0;  ///< SNN+STDP, LIF timed forward path.
    double snnWot = 0; ///< SNN+STDP, simplified (count) forward path.
    double snnBp = 0;  ///< SNN forward + back-propagation learning.
    double mlpBp = 0;  ///< MLP + back-propagation.
};

/**
 * Run the full Table 3 comparison on a workload: train one SNN with
 * STDP (evaluated both wt and wot), one SNN+BP and one MLP+BP.
 */
AccuracyResults runAccuracyComparison(const Workload &workload,
                                      uint64_t seed = 77);

} // namespace core
} // namespace neuro

