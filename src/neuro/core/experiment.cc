#include "neuro/core/experiment.h"

#include <algorithm>

#include "neuro/common/config.h"
#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"
#include "neuro/common/rng.h"
#include "neuro/datasets/shapes.h"
#include "neuro/datasets/spoken_digits.h"
#include "neuro/datasets/synth_digits.h"

namespace neuro {
namespace core {

Workload
makeMnistWorkload(std::size_t train_size, std::size_t test_size,
                  uint64_t seed)
{
    Workload w;
    w.name = "mnist";
    w.data = datasets::mnistLike(scaled(train_size, 500),
                                 scaled(test_size, 200), seed);
    w.mlpTopo = {w.data.train.inputSize(), 100, 10};
    w.snnTopo = {w.data.train.inputSize(), 300};
    return w;
}

Workload
makeMpeg7Workload(std::size_t train_size, std::size_t test_size,
                  uint64_t seed)
{
    Workload w;
    w.name = "mpeg7";
    datasets::ShapesOptions opt;
    opt.trainSize = scaled(train_size, 400);
    opt.testSize = scaled(test_size, 200);
    opt.seed = seed;
    w.data = datasets::makeShapes(opt);
    // Paper Section 4.5: MLP 28x28-15-10, SNN 28x28-90.
    w.mlpTopo = {w.data.train.inputSize(), 15, 10};
    w.snnTopo = {w.data.train.inputSize(), 90};
    return w;
}

Workload
makeSadWorkload(std::size_t train_size, std::size_t test_size,
                uint64_t seed)
{
    Workload w;
    w.name = "sad";
    datasets::SpokenDigitsOptions opt;
    opt.trainSize = scaled(train_size, 400);
    opt.testSize = scaled(test_size, 200);
    opt.seed = seed;
    w.data = datasets::makeSpokenDigits(opt);
    // Paper Section 4.5: MLP 13x13-60-10, SNN 13x13-90.
    w.mlpTopo = {w.data.train.inputSize(), 60, 10};
    w.snnTopo = {w.data.train.inputSize(), 90};
    return w;
}

mlp::MlpConfig
defaultMlpConfig(const Workload &workload)
{
    mlp::MlpConfig config;
    config.layerSizes = {workload.mlpTopo.inputs, workload.mlpTopo.hidden,
                         workload.mlpTopo.outputs};
    config.activation = mlp::ActivationKind::Sigmoid;
    return config;
}

mlp::TrainConfig
defaultMlpTrainConfig()
{
    mlp::TrainConfig config;
    config.learningRate = 0.3f; // Table 1.
    // Table 1 trains for 50 epochs over 60k images; the default bench
    // budget uses fewer epochs over the (scaled) synthetic set.
    config.epochs = scaled(12, 3);
    return config;
}

snn::SnnConfig
defaultSnnConfig(const Workload &workload, std::size_t train_images)
{
    NEURO_ASSERT(train_images > 0, "need a training-set size");
    snn::SnnConfig config;
    config.numInputs = workload.snnTopo.inputs;
    config.numNeurons = workload.snnTopo.neurons;
    config.coding.scheme = snn::CodingScheme::RatePoisson;
    config.coding.periodMs = 500;     // Table 1: Tperiod.
    config.coding.minIntervalMs = 50; // max luminance -> 20 Hz.
    config.tLeakMs = 500.0;           // Table 1: Tleak.
    config.tInhibitMs = 5;            // Table 1: Tinhibit.
    config.tRefracMs = 20;            // Table 1: Trefrac.

    // Table 1 sets Tinit = wmax * 70 = 17,850 for MNIST. The constant
    // encodes "about half of an average image's total synaptic drive",
    // so for other datasets we derive it the same way: sample the mean
    // total spike count and scale by the mean initial weight.
    const snn::SpikeEncoder probe(config.coding);
    const datasets::Dataset &train = workload.data.train;
    const std::size_t probe_n = std::min<std::size_t>(100, train.size());
    double mean_spikes = 0.0;
    for (std::size_t i = 0; i < probe_n; ++i) {
        const auto &px = train[i].pixels;
        for (uint8_t p : px)
            mean_spikes += probe.spikeCount(p);
    }
    mean_spikes /= static_cast<double>(probe_n);
    const double mean_w = 0.5 * (config.wInitMin + config.wInitMax);
    config.initialThreshold =
        std::max(1000.0, 0.5 * mean_spikes * mean_w);

    config.stdp.ltpWindowMs = 45; // Table 1: TLTP.
    // The paper applies unit increments over 60k-image training runs;
    // scaled-down runs keep the same total per-synapse weight movement
    // by scaling the step size.
    const double step = std::clamp(60000.0 /
                                       static_cast<double>(train_images),
                                   1.0, 16.0);
    config.stdp.ltpIncrement = static_cast<float>(step);
    config.stdp.ltdDecrement = static_cast<float>(step * 0.25);

    retuneSnnForTopology(config, train_images);
    config.thresholdJitter = 0.02;
    return config;
}

void
retuneSnnForTopology(snn::SnnConfig &config, std::size_t train_images)
{
    // Homeostasis epoch: the paper uses 10 * Tperiod * #N ms (3000
    // images) with 60k training images. Scaled-down runs need the same
    // *number of epochs per synapse-lifetime*, so the epoch shrinks
    // proportionally — frequent small threshold nudges are what forces
    // the WTA turn-taking that makes every neuron specialize.
    const std::size_t epoch_images = std::max<std::size_t>(
        20, std::min<std::size_t>(10 * config.numNeurons,
                                  train_images / 50));
    config.homeostasis.epochMs =
        static_cast<int64_t>(epoch_images) * config.coding.periodMs;
    // Table 1: threshold = 3 * HomeoT / (Tperiod * #N), i.e. 3x the
    // mean WTA firing rate per epoch.
    config.homeostasis.activityTarget =
        3.0 * static_cast<double>(epoch_images) /
        static_cast<double>(config.numNeurons);
    config.homeostasis.rate = 0.08;
    config.homeostasis.downFactor = 0.25;
    config.homeostasis.minThreshold = 0.25 * config.initialThreshold;
}

snn::SnnBpConfig
defaultSnnBpConfig(const Workload &workload)
{
    snn::SnnBpConfig config;
    config.numInputs = workload.snnTopo.inputs;
    config.numNeurons = workload.snnTopo.neurons;
    config.numClasses = workload.data.train.numClasses();
    config.coding.scheme = snn::CodingScheme::RatePoisson;
    config.coding.periodMs = 500;
    config.coding.minIntervalMs = 50;
    config.tLeakMs = 500.0;
    config.learningRate = 0.1f;
    config.epochs = scaled(8, 2);
    return config;
}

AccuracyResults
runAccuracyComparison(const Workload &workload, uint64_t seed)
{
    AccuracyResults results;
    const datasets::Dataset &train = workload.data.train;
    const datasets::Dataset &test = workload.data.test;

    // The three model families train from disjoint seeds and write to
    // disjoint result fields, so they run as independent pool tasks
    // (serially, in this order, when threads=1).
    parallelInvoke({
        [&] {
            // --- SNN+STDP (one training run, two forward paths) ---
            const snn::SnnConfig snn_config =
                defaultSnnConfig(workload, train.size());
            Rng rng(seed);
            snn::SnnNetwork net(snn_config, rng);
            snn::SnnStdpTrainer trainer(snn_config);
            snn::SnnTrainConfig snn_train;
            snn_train.epochs = scaled(3, 1);
            snn_train.seed = seed + 1;
            trainer.train(net, train, snn_train);

            const auto labels_wt = trainer.labelNeurons(
                net, train, snn::EvalMode::Wt, seed + 2);
            results.snnWt = trainer
                .evaluate(net, labels_wt, test, snn::EvalMode::Wt,
                          seed + 3)
                .accuracy;
            const auto labels_wot = trainer.labelNeurons(
                net, train, snn::EvalMode::Wot, seed + 4);
            results.snnWot = trainer
                .evaluate(net, labels_wot, test, snn::EvalMode::Wot,
                          seed + 5)
                .accuracy;
        },
        [&] {
            // --- SNN+BP ---
            snn::SnnBpConfig bp_config = defaultSnnBpConfig(workload);
            bp_config.seed = seed + 6;
            Rng bp_rng(seed + 7);
            snn::SnnBp snn_bp(bp_config, bp_rng);
            snn_bp.train(train);
            results.snnBp = snn_bp.evaluate(test, seed + 8);
        },
        [&] {
            // --- MLP+BP ---
            mlp::TrainConfig mlp_train = defaultMlpTrainConfig();
            mlp_train.seed = seed + 9;
            results.mlpBp = mlp::trainAndEvaluate(
                defaultMlpConfig(workload), mlp_train, train, test,
                seed + 10);
        },
    });
    return results;
}

} // namespace core
} // namespace neuro
