/**
 * @file
 * Classification metrics beyond raw accuracy: confusion matrix,
 * per-class precision/recall/F1, and a generic evaluator over any
 * predictor function, shared by examples and benches.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

#include "neuro/datasets/dataset.h"

namespace neuro {
namespace core {

/** Maps a sample's pixels to a predicted class. */
using Predictor = std::function<int(const datasets::Sample &)>;

/** A num_classes x num_classes confusion matrix. */
class ConfusionMatrix
{
  public:
    /** Construct for @p num_classes classes. */
    explicit ConfusionMatrix(int num_classes);

    /** Record one (actual, predicted) pair; predictions outside
     *  [0, classes) count as errors against every class. */
    void record(int actual, int predicted);

    /** @return count at (actual, predicted). */
    uint64_t at(int actual, int predicted) const;

    /** @return number of classes. */
    int numClasses() const { return numClasses_; }

    /** @return total recorded samples. */
    uint64_t total() const { return total_; }

    /** @return overall accuracy. */
    double accuracy() const;

    /** @return precision of @p cls (0 when never predicted). */
    double precision(int cls) const;

    /** @return recall of @p cls (0 when never present). */
    double recall(int cls) const;

    /** @return F1 score of @p cls. */
    double f1(int cls) const;

    /** Render as an aligned table. */
    void print(std::ostream &os) const;

  private:
    int numClasses_;
    uint64_t total_ = 0;
    uint64_t correct_ = 0;
    std::vector<uint64_t> cells_; ///< row = actual, col = predicted.
};

/** Run @p predictor over @p data and collect the confusion matrix. */
ConfusionMatrix evaluateConfusion(const datasets::Dataset &data,
                                  const Predictor &predictor);

} // namespace core
} // namespace neuro

