/**
 * @file
 * Joint accuracy/hardware comparisons: the Table 7 row generator shared
 * by benches and tests, the iso-accuracy MLP sizing of Section 4.2.3
 * (shrink the MLP until it matches the SNN's accuracy, then compare
 * areas), and area/energy ratio helpers for the Section 4.5 validation.
 */

#pragma once

#include <string>
#include <vector>

#include "neuro/core/experiment.h"
#include "neuro/hw/folded.h"

namespace neuro {
namespace core {

/** One row of a Table 7-style design summary. */
struct DesignRow
{
    std::string type;       ///< "SNNwot", "SNNwt" or "MLP".
    std::string ni;         ///< "1".."16" or "expanded".
    double areaNoSramMm2;   ///< logic area.
    double totalAreaMm2;    ///< logic + SRAM.
    double delayNs;         ///< clock period.
    double energyUj;        ///< energy per image.
    uint64_t cycles;        ///< cycles per image.
};

/** Generate the Table 7 rows for a workload's topologies. */
std::vector<DesignRow> makeTable7Rows(const hw::MlpTopology &mlp_topo,
                                      const hw::SnnTopology &snn_topo,
                                      int period_cycles = 500);

/** Iso-accuracy sizing result (Section 4.2.3). */
struct IsoAccuracyResult
{
    double snnAccuracy = 0;      ///< reference SNN accuracy.
    std::size_t mlpHidden = 0;   ///< smallest matching hidden size.
    double mlpAccuracy = 0;      ///< accuracy at that size.
    double mlpAreaMm2 = 0;       ///< expanded MLP area at that size.
    double snnWtAreaMm2 = 0;     ///< expanded SNNwt area.
    double snnWotAreaMm2 = 0;    ///< expanded SNNwot area.
};

/**
 * Shrink the MLP hidden layer over @p candidate_sizes (ascending) until
 * its accuracy reaches the SNN+STDP accuracy on the workload, then
 * compare expanded areas.
 */
IsoAccuracyResult
isoAccuracyComparison(const Workload &workload, double snn_accuracy,
                      const std::vector<std::size_t> &candidate_sizes,
                      uint64_t seed = 31);

/** Folded SNNwot-vs-MLP cost ratios for one workload (Section 4.5). */
struct FoldedRatio
{
    std::size_t ni = 0;    ///< fold factor.
    double areaRatio = 0;  ///< SNNwot area / MLP area.
    double energyRatio = 0;///< SNNwot energy / MLP energy.
};

/** Compute area/energy ratios for each fold factor. */
std::vector<FoldedRatio>
foldedCostRatios(const hw::MlpTopology &mlp_topo,
                 const hw::SnnTopology &snn_topo,
                 const std::vector<std::size_t> &fold_factors);

} // namespace core
} // namespace neuro

