#include "neuro/core/compare.h"

#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"
#include "neuro/hw/stdp_hw.h"

namespace neuro {
namespace core {

namespace {

DesignRow
rowFromDesign(const std::string &type, const std::string &ni,
              const hw::Design &design)
{
    DesignRow row;
    row.type = type;
    row.ni = ni;
    row.areaNoSramMm2 = design.areaNoSramMm2();
    row.totalAreaMm2 = design.totalAreaMm2();
    row.delayNs = design.clockNs();
    row.energyUj = design.totalEnergyPerImageUj();
    row.cycles = design.cyclesPerImage();
    return row;
}

} // namespace

std::vector<DesignRow>
makeTable7Rows(const hw::MlpTopology &mlp_topo,
               const hw::SnnTopology &snn_topo, int period_cycles)
{
    const std::vector<std::size_t> folds = {1, 4, 8, 16};
    std::vector<DesignRow> rows;

    for (std::size_t ni : folds) {
        rows.push_back(rowFromDesign(
            "SNNwot", std::to_string(ni),
            hw::buildFoldedSnnWot(snn_topo, ni)));
    }
    rows.push_back(rowFromDesign("SNNwot", "expanded",
                                 hw::buildExpandedSnnWot(snn_topo)));

    for (std::size_t ni : folds) {
        rows.push_back(rowFromDesign(
            "SNNwt", std::to_string(ni),
            hw::buildFoldedSnnWt(snn_topo, ni, period_cycles)));
    }
    rows.push_back(rowFromDesign(
        "SNNwt", "expanded",
        hw::buildExpandedSnnWt(snn_topo, period_cycles)));

    for (std::size_t ni : folds) {
        rows.push_back(rowFromDesign("MLP", std::to_string(ni),
                                     hw::buildFoldedMlp(mlp_topo, ni)));
    }
    rows.push_back(rowFromDesign("MLP", "expanded",
                                 hw::buildExpandedMlp(mlp_topo)));
    return rows;
}

IsoAccuracyResult
isoAccuracyComparison(const Workload &workload, double snn_accuracy,
                      const std::vector<std::size_t> &candidate_sizes,
                      uint64_t seed)
{
    NEURO_ASSERT(!candidate_sizes.empty(), "no candidate sizes");
    IsoAccuracyResult result;
    result.snnAccuracy = snn_accuracy;

    // Each candidate's accuracy depends only on (seed, hidden), so the
    // candidates can be trained concurrently; scanning the results in
    // candidate order afterwards selects the same "smallest matching
    // size" the sequential early-exit loop found. With one thread the
    // loop below is strictly sequential and keeps the early exit, so
    // no extra candidates are ever trained in serial mode.
    const auto trainCandidate = [&](std::size_t hidden) {
        mlp::MlpConfig config = defaultMlpConfig(workload);
        config.layerSizes[1] = hidden;
        mlp::TrainConfig train = defaultMlpTrainConfig();
        train.seed = seed + hidden;
        return mlp::trainAndEvaluate(config, train, workload.data.train,
                                     workload.data.test,
                                     seed * 61 + hidden);
    };

    if (parallelThreadCount() == 1) {
        for (std::size_t hidden : candidate_sizes) {
            const double acc = trainCandidate(hidden);
            result.mlpHidden = hidden;
            result.mlpAccuracy = acc;
            if (acc >= snn_accuracy)
                break; // smallest matching size found.
        }
    } else {
        const std::vector<double> accs = parallelMap<double>(
            candidate_sizes.size(),
            [&](std::size_t i) { return trainCandidate(candidate_sizes[i]); });
        for (std::size_t i = 0; i < candidate_sizes.size(); ++i) {
            result.mlpHidden = candidate_sizes[i];
            result.mlpAccuracy = accs[i];
            if (accs[i] >= snn_accuracy)
                break;
        }
    }

    hw::MlpTopology mlp_topo = workload.mlpTopo;
    mlp_topo.hidden = result.mlpHidden;
    result.mlpAreaMm2 = hw::buildExpandedMlp(mlp_topo).totalAreaMm2();
    result.snnWtAreaMm2 =
        hw::buildExpandedSnnWt(workload.snnTopo).totalAreaMm2();
    result.snnWotAreaMm2 =
        hw::buildExpandedSnnWot(workload.snnTopo).totalAreaMm2();
    return result;
}

std::vector<FoldedRatio>
foldedCostRatios(const hw::MlpTopology &mlp_topo,
                 const hw::SnnTopology &snn_topo,
                 const std::vector<std::size_t> &fold_factors)
{
    std::vector<FoldedRatio> ratios;
    for (std::size_t ni : fold_factors) {
        const hw::Design snn = hw::buildFoldedSnnWot(snn_topo, ni);
        const hw::Design mlp = hw::buildFoldedMlp(mlp_topo, ni);
        FoldedRatio ratio;
        ratio.ni = ni;
        ratio.areaRatio = snn.totalAreaMm2() / mlp.totalAreaMm2();
        ratio.energyRatio =
            snn.totalEnergyPerImageUj() / mlp.totalEnergyPerImageUj();
        ratios.push_back(ratio);
    }
    return ratios;
}

} // namespace core
} // namespace neuro
