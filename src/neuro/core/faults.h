/**
 * @file
 * Synaptic-fault injection: stuck-at and bit-flip faults in the
 * quantized weight storage of both accelerators, measuring graceful
 * degradation. Neural-network fault tolerance is the premise of the
 * accelerator line the paper builds on (Temam, ISCA 2012 [6]); this
 * module quantifies it for the two datapaths compared here.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "neuro/datasets/dataset.h"
#include "neuro/mlp/quantized.h"
#include "neuro/snn/network.h"
#include "neuro/snn/snn_wot.h"

namespace neuro {

class Rng;

namespace core {

/** Supported fault models on the 8-bit weight words. */
enum class FaultModel
{
    StuckAtZero, ///< whole weight word reads 0.
    StuckAtOne,  ///< whole weight word reads all-ones.
    BitFlip,     ///< one random bit of the word is inverted.
};

/** @return printable name of @p model. */
const char *faultModelName(FaultModel model);

/** One point of a fault sweep. */
struct FaultSweepPoint
{
    double faultRate = 0; ///< fraction of weight words faulted.
    double accuracy = 0;  ///< resulting test accuracy.
};

/**
 * Inject faults into a fresh quantized copy of @p net at each rate and
 * evaluate on @p data.
 */
std::vector<FaultSweepPoint>
mlpFaultSweep(const mlp::Mlp &net, const datasets::Dataset &data,
              const std::vector<double> &rates, FaultModel model,
              uint64_t seed);

/**
 * Inject faults into a fresh SNNwot datapath built from @p net,
 * evaluating with the given neuron labels.
 */
std::vector<FaultSweepPoint>
snnFaultSweep(const snn::SnnNetwork &net, const std::vector<int> &labels,
              const datasets::Dataset &data,
              const std::vector<double> &rates, FaultModel model,
              uint64_t seed);

} // namespace core
} // namespace neuro

