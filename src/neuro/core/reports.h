/**
 * @file
 * Published reference values from the paper, so every bench can print a
 * "paper" column next to the value this reproduction measures, and the
 * report helpers shared by the bench binaries.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "neuro/core/compare.h"

namespace neuro {
namespace core {
/** Published numbers, namespaced per table/figure. */
namespace paper {

/** Table 2: best accuracy reported on MNIST (no distortion), percent. */
struct Table2Row
{
    const char *type;
    double accuracyPct;
};
extern const Table2Row kTable2[5];

/** Table 3: accuracy of MLP and SNN on MNIST, percent. */
inline constexpr double kSnnWtAccuracyPct = 91.82;
inline constexpr double kSnnWotAccuracyPct = 90.85;
inline constexpr double kSnnBpAccuracyPct = 95.40;
inline constexpr double kMlpBpAccuracyPct = 97.65;

/** Section 4.2.1: 8-bit fixed-point vs float MLP accuracy, percent. */
inline constexpr double kMlpFixed8AccuracyPct = 96.65;
inline constexpr double kMlpFloatAccuracyPct = 97.65;

/** Table 4: expanded-design totals, mm^2. */
inline constexpr double kExpandedSnnWotNoSramMm2 = 26.79;
inline constexpr double kExpandedSnnWotTotalMm2 = 46.06;
inline constexpr double kExpandedSnnWtNoSramMm2 = 19.62;
inline constexpr double kExpandedSnnWtTotalMm2 = 38.89;
inline constexpr double kExpandedMlpNoSramMm2 = 73.14;
inline constexpr double kExpandedMlpTotalMm2 = 79.63;
inline constexpr double kExpandedMlp15NoSramMm2 = 10.98;
inline constexpr double kExpandedMlp15TotalMm2 = 12.33;

/** Table 4: per-operator areas, um^2. */
inline constexpr double kAdderTree784x8Um2 = 45436.0;  // MLP hidden.
inline constexpr double kAdderTreeSnnWotUm2 = 89006.0; // SNNwot.
inline constexpr double kAdderTreeSnnWtUm2 = 60820.0;  // SNNwt.
inline constexpr double kMaxOpUm2 = 6081.0;
inline constexpr double kGaussRngUm2 = 1749.0;
inline constexpr double kMultiplier8Um2 = 862.0;
inline constexpr double kAdderTree15x8Um2 = 1131.0;

/** Table 5: small-scale layouts. */
inline constexpr double kSmallSnnAreaMm2 = 0.08;  // SNN 4x4-20.
inline constexpr double kSmallSnnDelayNs = 1.18;
inline constexpr double kSmallSnnPowerW = 0.52;
inline constexpr double kSmallSnnEnergyNj = 0.63;
inline constexpr double kSmallMlpAreaMm2 = 0.21;  // MLP 4x4-10-10.
inline constexpr double kSmallMlpDelayNs = 1.96;
inline constexpr double kSmallMlpPowerW = 0.64;
inline constexpr double kSmallMlpEnergyNj = 1.28;

/** Table 6: SRAM characteristics per ni (SNN 784-300, MLP 784-100-10). */
struct Table6Row
{
    std::size_t ni;
    std::size_t depth;
    double readEnergyPj;
    double bankAreaUm2;
    std::size_t snnBanks;
    std::size_t mlpBanks;
    double snnEnergyNj; ///< per-cycle, all banks.
    double mlpEnergyNj;
    double snnAreaMm2;
    double mlpAreaMm2;
};
extern const Table6Row kTable6[4];

/** Table 7: folded/expanded design characteristics. */
struct Table7Row
{
    const char *type;  ///< "SNNwot", "SNNwt", "MLP".
    const char *ni;    ///< "1","4","8","16","expanded".
    double areaNoSramMm2;
    double totalAreaMm2;
    double delayNs;
    double energyUj;
    double cyclesPerImage; ///< SNNwt rows are chunks x 500.
};
extern const Table7Row kTable7[15];

/** Table 8: speedups and energy benefits over the K20M GPU. */
struct Table8Row
{
    const char *type;
    double speedupNi1;
    double speedupNi16;
    double speedupExpanded;
    double energyNi1;
    double energyNi16;
    double energyExpanded;
};
extern const Table8Row kTable8[3];

/** Table 9: SNN with online learning (STDP). */
struct Table9Row
{
    std::size_t ni;
    double areaNoSramMm2;
    double totalAreaMm2;
    double delayNs;
    double energyMj;
};
extern const Table9Row kTable9[4];

/** Section 5: TrueNorth core vs SNNwot folded ni=1. */
inline constexpr double kTrueNorthAreaMm2 = 3.30;
inline constexpr double kTrueNorthTimeUs = 1024.0;
inline constexpr double kTrueNorthEnergyUj = 2.48;
inline constexpr double kTrueNorthAccuracyPct = 89.0;
inline constexpr double kSnnWotNi1AreaMm2 = 3.17;
inline constexpr double kSnnWotNi1TimeUs = 0.98;
inline constexpr double kSnnWotNi1EnergyUj = 1.03;

/** Section 4.5: published workload accuracies, percent. */
inline constexpr double kMpeg7MlpAccuracyPct = 99.7;
inline constexpr double kMpeg7SnnAccuracyPct = 92.0;
inline constexpr double kSadMlpAccuracyPct = 91.35;
inline constexpr double kSadSnnAccuracyPct = 74.7;

/** Figure 14: temporal vs rate coding accuracy at 300 neurons. */
inline constexpr double kTemporalCodingAccuracyPct = 82.14;
inline constexpr double kRateCodingAccuracyPct = 91.82;

} // namespace paper

/** Print a Table 7-style table with a paper column for matched rows. */
void printDesignRows(std::ostream &os, const std::string &title,
                     const std::vector<DesignRow> &rows);

/** Format a "measured (paper X, delta%)" annotation. */
std::string vsPaper(double measured, double published, int precision = 2);

} // namespace core
} // namespace neuro

