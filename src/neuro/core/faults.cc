#include "neuro/core/faults.h"

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"
#include "neuro/snn/coding.h"

namespace neuro {
namespace core {

const char *
faultModelName(FaultModel model)
{
    switch (model) {
      case FaultModel::StuckAtZero:
        return "stuck-at-0";
      case FaultModel::StuckAtOne:
        return "stuck-at-1";
      case FaultModel::BitFlip:
        return "bit-flip";
    }
    panic("unreachable fault model");
}

namespace {

/** Apply @p model to an 8-bit word. */
uint8_t
faultWord(uint8_t word, FaultModel model, Rng &rng)
{
    switch (model) {
      case FaultModel::StuckAtZero:
        return 0;
      case FaultModel::StuckAtOne:
        return 0xFF;
      case FaultModel::BitFlip:
        return word ^ static_cast<uint8_t>(1u << rng.uniformInt(8));
    }
    panic("unreachable fault model");
}

} // namespace

std::vector<FaultSweepPoint>
mlpFaultSweep(const mlp::Mlp &net, const datasets::Dataset &data,
              const std::vector<double> &rates, FaultModel model,
              uint64_t seed)
{
    std::vector<FaultSweepPoint> points;
    for (double rate : rates) {
        NEURO_ASSERT(rate >= 0.0 && rate <= 1.0, "bad fault rate");
        mlp::QuantizedMlp quant(net);
        Rng rng(seed + static_cast<uint64_t>(rate * 1e6));
        const std::size_t faults = static_cast<std::size_t>(
            rate * static_cast<double>(quant.totalWeights()));
        for (std::size_t f = 0; f < faults; ++f) {
            const std::size_t idx = rng.uniformInt(quant.totalWeights());
            const auto word =
                static_cast<uint8_t>(quant.weightAt(idx));
            quant.setWeightAt(idx, static_cast<int8_t>(
                                       faultWord(word, model, rng)));
        }
        points.push_back({rate, quant.evaluate(data)});
    }
    return points;
}

std::vector<FaultSweepPoint>
snnFaultSweep(const snn::SnnNetwork &net, const std::vector<int> &labels,
              const datasets::Dataset &data,
              const std::vector<double> &rates, FaultModel model,
              uint64_t seed)
{
    NEURO_ASSERT(labels.size() == net.config().numNeurons,
                 "labels size mismatch");
    const snn::SpikeEncoder encoder(net.config().coding);
    std::vector<FaultSweepPoint> points;
    for (double rate : rates) {
        NEURO_ASSERT(rate >= 0.0 && rate <= 1.0, "bad fault rate");
        snn::SnnWotDatapath datapath(net);
        Rng rng(seed + static_cast<uint64_t>(rate * 1e6) + 17);
        const std::size_t faults = static_cast<std::size_t>(
            rate * static_cast<double>(datapath.totalWeights()));
        for (std::size_t f = 0; f < faults; ++f) {
            const std::size_t idx =
                rng.uniformInt(datapath.totalWeights());
            datapath.setWeightAt(
                idx, faultWord(datapath.weightAt(idx), model, rng));
        }
        std::size_t correct = 0;
        std::vector<uint8_t> counts(data.inputSize());
        for (std::size_t i = 0; i < data.size(); ++i) {
            for (std::size_t p = 0; p < counts.size(); ++p)
                counts[p] = encoder.spikeCount(data[i].pixels[p]);
            const int winner = datapath.forward(counts.data());
            if (winner >= 0 &&
                labels[static_cast<std::size_t>(winner)] ==
                    data[i].label) {
                ++correct;
            }
        }
        points.push_back({rate, static_cast<double>(correct) /
                                    static_cast<double>(data.size())});
    }
    return points;
}

} // namespace core
} // namespace neuro
