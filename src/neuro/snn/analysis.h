/**
 * @file
 * Analysis utilities for spike trains and trained networks: inter-spike
 * interval statistics (to verify the encoders' rate behaviour),
 * firing-rate maps, and per-neuron class selectivity (to quantify the
 * specialization STDP + homeostasis produce — the Figure 3 "different
 * thresholds / one specialist fires" story).
 */

#pragma once

#include <vector>

#include "neuro/common/stats.h"
#include "neuro/datasets/dataset.h"
#include "neuro/snn/coding.h"
#include "neuro/snn/network.h"

namespace neuro {
namespace snn {

/** Inter-spike-interval distribution pooled across all inputs. */
Distribution isiDistribution(const SpikeTrainGrid &grid,
                             std::size_t num_pixels);

/** Per-pixel firing rate in Hz (spikes over the window, 1 ms ticks). */
std::vector<double> firingRateMap(const SpikeTrainGrid &grid,
                                  std::size_t num_pixels);

/** Per-neuron specialization measurements. */
struct SelectivityReport
{
    /** Mean count-forward potential per (neuron, class):
     *  response[n * numClasses + c]. */
    std::vector<double> response;
    /** Class each neuron responds most to. */
    std::vector<int> preferredClass;
    /** Selectivity index in [0,1]: 1 - mean(other classes)/best. */
    std::vector<double> selectivity;
    int numClasses = 0;
};

/**
 * Probe @p net with (up to @p max_samples of) @p data through the
 * count-based forward path and measure each neuron's class tuning.
 */
SelectivityReport neuronSelectivity(const SnnNetwork &net,
                                    const datasets::Dataset &data,
                                    const SpikeEncoder &encoder,
                                    std::size_t max_samples = 2000);

} // namespace snn
} // namespace neuro

