/**
 * @file
 * The SNN+BP hybrid (Section 3.2): the feed-forward path is the SNN's
 * (spike coding, leakage, firing thresholds), but learning is supervised
 * gradient descent instead of STDP. The paper uses it to show that the
 * accuracy gap to MLP+BP is mostly caused by the STDP learning rule, not
 * by spike coding.
 *
 * Implementation: with no potential reset, the LIF potential at the end
 * of a presentation window T has the exact closed form
 *   v_n(T) = sum_p w_np * e_p,   e_p = sum_{spikes t of pixel p}
 *                                          exp(-(T - t)/Tleak),
 * i.e. a linear map of the leak-weighted spike counts e_p. Each neuron
 * is a spiking logistic unit y = sigma(v - theta); neurons are assigned
 * round-robin to classes and trained with the delta rule on one-hot
 * targets, which is exactly back-propagation for this single-layer net.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "neuro/common/matrix.h"
#include "neuro/datasets/dataset.h"
#include "neuro/snn/coding.h"

namespace neuro {

class Rng;

namespace snn {

/** SNN+BP hyper-parameters. */
struct SnnBpConfig
{
    std::size_t numInputs = 784;  ///< input pixels.
    std::size_t numNeurons = 300; ///< spiking logistic units.
    int numClasses = 10;          ///< output labels.
    CodingConfig coding;          ///< spike coding (shared with SNN).
    double tLeakMs = 500.0;       ///< Tleak of the forward path.
    float learningRate = 0.1f;    ///< eta.
    std::size_t epochs = 20;      ///< training passes.
    uint64_t seed = 13;           ///< shuffle/spike seed.
};

/** Single-layer spiking network trained with back-propagation. */
class SnnBp
{
  public:
    /** Construct with small random weights. */
    SnnBp(const SnnBpConfig &config, Rng &rng);

    /** @return the configuration. */
    const SnnBpConfig &config() const { return config_; }

    /** @return the class assigned to @p neuron (round-robin). */
    int neuronClass(std::size_t neuron) const;

    /**
     * Compute the leak-weighted spike features e_p for one image
     * (encodes the image, then reduces the train; RNG drives the
     * stochastic rate coding).
     */
    void spikeFeatures(const uint8_t *pixels, Rng &rng,
                       std::vector<float> &features) const;

    /** Train with the delta rule over @p data. */
    void train(const datasets::Dataset &data);

    /** @return predicted class for one image. */
    int predict(const uint8_t *pixels, Rng &rng) const;

    /** @return accuracy on @p data in [0,1]. */
    double evaluate(const datasets::Dataset &data, uint64_t seed) const;

  private:
    /** Forward: y_n = sigma(w_n . e + b_n). */
    void forward(const std::vector<float> &features,
                 std::vector<float> &y) const;

    SnnBpConfig config_;
    SpikeEncoder encoder_;
    Matrix weights_;            ///< numNeurons x numInputs.
    std::vector<float> bias_;   ///< per-neuron bias (-threshold).
};

} // namespace snn
} // namespace neuro

