/**
 * @file
 * The SNNwot hardware datapath (Section 4.2.2, Figure 7): timing
 * information is discarded and each pixel contributes `count x weight`
 * where count is a 4-bit spike count. The accelerator has no multiplier:
 * since count <= 10, the product is computed with 4 shifters and 4
 * adders as  n3*2^3*W + n2*2^2*W + n1*2*W + n0*W  (count = n3n2n1n0),
 * accumulated through a Wallace-tree adder, and read out by a max tree
 * over the neuron potentials. This class is the bit-accurate software
 * model of that datapath, built from a trained SnnNetwork.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace neuro {
namespace snn {

class PackedSpikeGrid;
class SnnNetwork;

/** Bit-accurate integer model of the SNNwot accelerator datapath. */
class SnnWotDatapath
{
  public:
    /** Quantize the trained network's weights to 8-bit (0..255). */
    explicit SnnWotDatapath(const SnnNetwork &net);

    /** @return the number of inputs. */
    std::size_t numInputs() const { return numInputs_; }
    /** @return the number of neurons. */
    std::size_t numNeurons() const { return numNeurons_; }

    /**
     * The shifter/adder multiplier: computes count*weight from the 4-bit
     * count decomposition, exactly as the hardware does.
     */
    static uint32_t shiftMultiply(uint8_t count, uint8_t weight);

    /**
     * Evaluate all neuron potentials for one image's spike counts and
     * return the max-tree winner.
     *
     * @param counts      numInputs() 4-bit spike counts.
     * @param potentials  optional sink for the integer potentials.
     */
    int forward(const uint8_t *counts,
                std::vector<uint32_t> *potentials = nullptr) const;

    /**
     * Count-only forward from a bit-packed spike train: per-pixel
     * counts are popcounts over the grid's bit plane, saturated at 15
     * (the datapath's 4-bit counter), then fed to the shifter/adder
     * pipeline. Timing information in the grid is discarded — this is
     * exactly the information loss the SNNwot accelerator trades for
     * its simpler datapath.
     */
    int forward(const PackedSpikeGrid &grid,
                std::vector<uint32_t> *potentials = nullptr) const;

    /** @return quantized weight of (neuron, input). */
    uint8_t weight(std::size_t neuron, std::size_t input) const;

    /** Overwrite one quantized weight (fault injection / tests). */
    void setWeight(std::size_t neuron, std::size_t input, uint8_t value);

    /** @return total weight count (fault-injection address space). */
    std::size_t totalWeights() const { return weights_.size(); }

    /** @return raw weight at flat index. */
    uint8_t weightAt(std::size_t idx) const;

    /** Overwrite the raw weight at flat index. */
    void setWeightAt(std::size_t idx, uint8_t value);

  private:
    std::size_t numInputs_ = 0;
    std::size_t numNeurons_ = 0;
    std::vector<uint8_t> weights_; ///< numNeurons x numInputs.
};

} // namespace snn
} // namespace neuro

