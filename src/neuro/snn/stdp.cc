#include "neuro/snn/stdp.h"

#include <algorithm>

#include "neuro/common/logging.h"

namespace neuro {
namespace snn {

StdpRule::StdpRule(const StdpConfig &config)
    : config_(config)
{
    NEURO_ASSERT(config_.ltpWindowMs >= 0, "negative LTP window");
    NEURO_ASSERT(config_.wMin < config_.wMax, "degenerate weight range");
    NEURO_ASSERT(config_.ltpIncrement >= 0 && config_.ltdDecrement >= 0,
                 "negative STDP steps");
}

std::size_t
StdpRule::onPostSpike(float *weights, const int64_t *last_input_spike,
                      int64_t fire_time_ms, std::size_t num_inputs) const
{
    std::size_t potentiated = 0;
    for (std::size_t i = 0; i < num_inputs; ++i) {
        const int64_t last = last_input_spike[i];
        const bool causal = last >= 0 && last <= fire_time_ms &&
            fire_time_ms - last <= config_.ltpWindowMs;
        const float span = config_.wMax - config_.wMin;
        if (causal) {
            float step = config_.ltpIncrement;
            if (config_.softBounds)
                step *= (config_.wMax - weights[i]) / span;
            weights[i] = std::min(weights[i] + step, config_.wMax);
            ++potentiated;
        } else {
            float step = config_.ltdDecrement;
            if (config_.softBounds)
                step *= (weights[i] - config_.wMin) / span;
            weights[i] = std::max(weights[i] - step, config_.wMin);
        }
    }
    return potentiated;
}

} // namespace snn
} // namespace neuro
