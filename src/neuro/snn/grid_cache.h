/**
 * @file
 * Encoded-grid cache for the SNN training/evaluation pipeline. Spike
 * encoding is deterministic given (sample, per-sample stream seed,
 * coding configuration) — docs/parallelism.md — so re-encoding the same
 * image on every epoch of STDP training, and again for the labeling and
 * evaluation passes, is pure waste. The cache memoizes finalized
 * `PackedSpikeGrid`s under that key, bounded by a byte budget with LRU
 * eviction.
 *
 * Entries are handed out as `shared_ptr<const PackedSpikeGrid>` so an
 * eviction can never invalidate a grid a worker is still presenting;
 * all operations are thread-safe (the sharded evaluation paths hit the
 * cache concurrently). Two workers racing on the same missing key both
 * encode — the grids are identical by construction, and only one copy
 * is retained.
 */

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "neuro/common/mutex.h"
#include "neuro/snn/spike_bits.h"

namespace neuro {
namespace snn {

struct CodingConfig;

/** Cache key: which sample, which noise stream, which encoder. */
struct GridKey
{
    uint64_t sampleIndex = 0; ///< index within its dataset.
    uint64_t streamSeed = 0;  ///< deriveStreamSeed(seed, sampleIndex).
    uint64_t pixelHash = 0;   ///< FNV-1a of the pixels (dataset identity).
    uint64_t codingHash = 0;  ///< hash of the CodingConfig.

    bool
    operator==(const GridKey &o) const
    {
        return sampleIndex == o.sampleIndex && streamSeed == o.streamSeed &&
            pixelHash == o.pixelHash && codingHash == o.codingHash;
    }
};

/** FNV-1a over a pixel buffer (dataset-identity component of GridKey). */
uint64_t gridPixelHash(const uint8_t *pixels, std::size_t n);

/** Stable hash of every field of a CodingConfig. */
uint64_t codingConfigHash(const CodingConfig &config);

/** Point-in-time cache statistics. */
struct GridCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t insertions = 0;
    std::size_t bytes = 0;   ///< current resident grid bytes.
    std::size_t entries = 0; ///< current resident grid count.

    /** @return hits / (hits + misses), 0 when empty. */
    double hitRate() const;
};

/** Thread-safe LRU cache of encoded spike grids with a byte budget. */
class GridCache
{
  public:
    /** Default budget: enough for a few thousand MNIST-sized grids. */
    static constexpr std::size_t kDefaultBudgetBytes = 256u << 20;

    explicit GridCache(std::size_t budget_bytes = kDefaultBudgetBytes);

    /** @return the configured byte budget. */
    std::size_t budgetBytes() const { return budgetBytes_; }

    /**
     * Look up @p key.
     * @return the cached grid (moved to most-recently-used), or nullptr.
     */
    std::shared_ptr<const PackedSpikeGrid> find(const GridKey &key);

    /**
     * Insert a finalized grid under @p key, evicting least-recently-used
     * entries until the budget holds. If the key is already present
     * (another worker raced the encode), the existing grid wins.
     * @return the resident grid for @p key.
     */
    std::shared_ptr<const PackedSpikeGrid> insert(const GridKey &key,
                                                 PackedSpikeGrid &&grid);

    /** Drop every entry (budget and counters kept). */
    void clear();

    /** @return a consistent snapshot of the counters. */
    GridCacheStats stats() const;

  private:
    struct Entry
    {
        GridKey key;
        std::shared_ptr<const PackedSpikeGrid> grid;
        std::size_t bytes = 0;
    };

    struct KeyHash
    {
        std::size_t operator()(const GridKey &k) const;
    };

    void evictToBudgetLocked() NEURO_REQUIRES(mutex_);

    const std::size_t budgetBytes_;
    mutable Mutex mutex_;
    /** front = most recently used. */
    std::list<Entry> lru_ NEURO_GUARDED_BY(mutex_);
    std::unordered_map<GridKey, std::list<Entry>::iterator, KeyHash>
        map_ NEURO_GUARDED_BY(mutex_);
    GridCacheStats stats_ NEURO_GUARDED_BY(mutex_);
};

} // namespace snn
} // namespace neuro

