#include "neuro/snn/labeling.h"

#include "neuro/common/logging.h"

namespace neuro {
namespace snn {

SelfLabeling::SelfLabeling(std::size_t num_neurons, int num_classes)
    : numNeurons_(num_neurons), numClasses_(num_classes),
      counters_(num_neurons * static_cast<std::size_t>(num_classes), 0)
{
    NEURO_ASSERT(num_neurons > 0 && num_classes > 0, "empty labeling");
}

void
SelfLabeling::record(std::size_t neuron, int label)
{
    NEURO_ASSERT(neuron < numNeurons_, "neuron index out of range");
    NEURO_ASSERT(label >= 0 && label < numClasses_, "label out of range");
    ++counters_[neuron * static_cast<std::size_t>(numClasses_) +
                static_cast<std::size_t>(label)];
}

std::vector<int>
SelfLabeling::finalize(const std::vector<std::size_t> &label_counts) const
{
    NEURO_ASSERT(label_counts.size() ==
                     static_cast<std::size_t>(numClasses_),
                 "label_counts size mismatch");
    std::vector<int> labels(numNeurons_, -1);
    for (std::size_t n = 0; n < numNeurons_; ++n) {
        double best_score = 0.0;
        for (int l = 0; l < numClasses_; ++l) {
            const uint32_t c = counter(n, l);
            if (c == 0 || label_counts[static_cast<std::size_t>(l)] == 0)
                continue;
            const double score = static_cast<double>(c) /
                static_cast<double>(
                    label_counts[static_cast<std::size_t>(l)]);
            if (score > best_score) {
                best_score = score;
                labels[n] = l;
            }
        }
    }
    return labels;
}

uint32_t
SelfLabeling::counter(std::size_t neuron, int label) const
{
    NEURO_ASSERT(neuron < numNeurons_ && label >= 0 &&
                     label < numClasses_,
                 "counter index out of range");
    return counters_[neuron * static_cast<std::size_t>(numClasses_) +
                     static_cast<std::size_t>(label)];
}

} // namespace snn
} // namespace neuro
