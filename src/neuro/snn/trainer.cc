#include "neuro/snn/trainer.h"

#include <vector>

#include "neuro/common/logging.h"
#include "neuro/common/parallel.h"
#include "neuro/common/profile.h"
#include "neuro/common/rng.h"
#include "neuro/snn/labeling.h"

namespace neuro {
namespace snn {

SnnStdpTrainer::SnnStdpTrainer(const SnnConfig &config,
                               std::size_t cache_budget_bytes)
    : encoder_(config.coding),
      codingHash_(codingConfigHash(config.coding)),
      gridCache_(cache_budget_bytes)
{
}

std::shared_ptr<const PackedSpikeGrid>
SnnStdpTrainer::gridFor(const datasets::Dataset &data, std::size_t index,
                        uint64_t seed) const
{
    const auto &pixels = data[index].pixels;
    GridKey key;
    key.sampleIndex = index;
    key.streamSeed = deriveStreamSeed(seed, index);
    key.pixelHash = gridPixelHash(pixels.data(), pixels.size());
    key.codingHash = codingHash_;
    if (auto grid = gridCache_.find(key))
        return grid;
    Rng rng(key.streamSeed);
    PackedSpikeGrid grid;
    encoder_.encodePacked(pixels.data(), pixels.size(), rng, grid);
    return gridCache_.insert(key, std::move(grid));
}

void
SnnStdpTrainer::train(SnnNetwork &net, const datasets::Dataset &data,
                      const SnnTrainConfig &config,
                      const SnnEpochCallback &callback)
{
    NEURO_ASSERT(!data.empty(), "cannot train on an empty dataset");
    NEURO_ASSERT(data.inputSize() == net.config().numInputs,
                 "dataset input size %zu != SNN inputs %zu",
                 data.inputSize(), net.config().numInputs);

    NEURO_PROFILE_SCOPE("snn/train");
    Rng rng(config.seed); // presentation order only; see SnnTrainConfig.
    const std::size_t n = data.size();
    std::vector<uint32_t> order(n);
    rng.shuffle(order.data(), n);

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        NEURO_PROFILE_SCOPE("snn/train/epoch");
        if (config.shuffle)
            rng.shuffle(order.data(), n);
        SnnEpochReport report;
        report.epoch = epoch;
        for (std::size_t step = 0; step < n; ++step) {
            const std::size_t idx = order[step];
            const auto grid = gridFor(data, idx, config.seed);
            const PresentationResult r =
                net.present(*grid, /*learn=*/true);
            report.outputSpikes += r.outputSpikeCount;
            if (r.outputSpikeCount == 0)
                ++report.silentImages;
            if (stats_) {
                stats_->inc("snn.images_presented");
                stats_->inc("snn.input_spikes", r.inputSpikeCount);
                stats_->inc("snn.output_spikes", r.outputSpikeCount);
                stats_->sample("snn.output_spikes_per_image",
                               static_cast<double>(
                                   r.outputSpikeCount));
                if (r.firstSpikeTimeMs >= 0) {
                    stats_->sample("snn.first_spike_ms",
                                   static_cast<double>(
                                       r.firstSpikeTimeMs));
                }
            }
        }
        if (obsEnabled()) {
            obsCount("snn.images_presented", n);
            obsSample("snn.epoch_output_spikes",
                      static_cast<double>(report.outputSpikes));
        }
        if (callback)
            callback(report);
    }
}

namespace {

/** Shard the evaluation range so each worker amortizes one network
 *  copy over a decent run of samples, while leaving the pool enough
 *  chunks to balance the (sample-dependent) presentation cost. */
std::size_t
evalGrain(std::size_t n)
{
    const std::size_t threads = parallelThreadCount();
    return std::max<std::size_t>(8, n / (threads * 4));
}

} // namespace

std::vector<int>
SnnStdpTrainer::winnersFor(SnnNetwork &net, const datasets::Dataset &data,
                           EvalMode mode, uint64_t seed,
                           std::vector<uint8_t> *fired) const
{
    const std::size_t n = data.size();
    std::vector<int> winners(n, -1);
    if (fired)
        fired->assign(n, 0);

    // One task per shard: a worker-local copy of the frozen network
    // (presentations scribble on neuron dynamics), and one encoding
    // per sample keyed by (seed, i) via SplitMix64 — spike encodings
    // do not depend on iteration order, so any thread count produces
    // the same winners. Encodings are served from the grid cache
    // (thread-safe), so a second pass over the same data re-presents
    // without re-encoding.
    parallelForRange(0, n, evalGrain(n), [&](std::size_t i0,
                                             std::size_t i1) {
        NEURO_PROFILE_SCOPE("snn/eval/shard");
        SnnNetwork local(net);
        std::vector<uint8_t> counts;
        for (std::size_t i = i0; i < i1; ++i) {
            const auto &sample = data[i];
            if (mode == EvalMode::Wot) {
                // Deterministic count-based conversion; no RNG.
                counts.resize(sample.pixels.size());
                for (std::size_t p = 0; p < counts.size(); ++p)
                    counts[p] = encoder_.spikeCount(sample.pixels[p]);
                winners[i] = local.forwardCounts(counts.data());
                if (fired)
                    (*fired)[i] = 1;
                continue;
            }
            const auto grid = gridFor(data, i, seed);
            const PresentationResult r =
                local.present(*grid, /*learn=*/false);
            winners[i] = r.winner(Readout::FirstSpike);
            if (fired)
                (*fired)[i] = r.firstSpikeNeuron >= 0;
        }
    });
    return winners;
}

std::vector<int>
SnnStdpTrainer::labelNeurons(SnnNetwork &net, const datasets::Dataset &data,
                             EvalMode mode, uint64_t seed)
{
    NEURO_ASSERT(!data.empty(), "cannot label on an empty dataset");
    NEURO_PROFILE_SCOPE("snn/label");
    const std::vector<int> winners =
        winnersFor(net, data, mode, seed, nullptr);
    // Reduce in index order; integer win counters make the labeling
    // independent of how the shards were scheduled anyway.
    SelfLabeling labeling(net.config().numNeurons, data.numClasses());
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (winners[i] >= 0)
            labeling.record(static_cast<std::size_t>(winners[i]),
                            data[i].label);
    }
    return labeling.finalize(data.classHistogram());
}

SnnEvalResult
SnnStdpTrainer::evaluate(SnnNetwork &net, const std::vector<int> &labels,
                         const datasets::Dataset &data, EvalMode mode,
                         uint64_t seed)
{
    NEURO_ASSERT(labels.size() == net.config().numNeurons,
                 "labels size mismatch");
    NEURO_ASSERT(!data.empty(), "cannot evaluate on an empty dataset");
    NEURO_PROFILE_SCOPE("snn/eval");
    std::vector<uint8_t> fired;
    const std::vector<int> winners =
        winnersFor(net, data, mode, seed, &fired);
    SnnEvalResult result;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (!fired[i])
            ++result.silent;
        if (winners[i] >= 0 &&
            labels[static_cast<std::size_t>(winners[i])] ==
                data[i].label) {
            ++correct;
        }
    }
    result.accuracy =
        static_cast<double>(correct) / static_cast<double>(data.size());
    return result;
}

double
trainAndEvaluateStdp(const SnnConfig &config,
                     const SnnTrainConfig &train_config,
                     const datasets::Dataset &train_set,
                     const datasets::Dataset &test_set, EvalMode mode,
                     uint64_t init_seed)
{
    Rng rng(init_seed);
    SnnNetwork net(config, rng);
    SnnStdpTrainer trainer(config);
    trainer.train(net, train_set, train_config);
    const auto labels = trainer.labelNeurons(net, train_set, mode,
                                             train_config.seed + 101);
    return trainer
        .evaluate(net, labels, test_set, mode, train_config.seed + 202)
        .accuracy;
}

} // namespace snn
} // namespace neuro
