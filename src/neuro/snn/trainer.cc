#include "neuro/snn/trainer.h"

#include <vector>

#include "neuro/common/logging.h"
#include "neuro/common/profile.h"
#include "neuro/common/rng.h"
#include "neuro/snn/labeling.h"

namespace neuro {
namespace snn {

SnnStdpTrainer::SnnStdpTrainer(const SnnConfig &config)
    : encoder_(config.coding)
{
}

void
SnnStdpTrainer::train(SnnNetwork &net, const datasets::Dataset &data,
                      const SnnTrainConfig &config,
                      const SnnEpochCallback &callback)
{
    NEURO_ASSERT(!data.empty(), "cannot train on an empty dataset");
    NEURO_ASSERT(data.inputSize() == net.config().numInputs,
                 "dataset input size %zu != SNN inputs %zu",
                 data.inputSize(), net.config().numInputs);

    NEURO_PROFILE_SCOPE("snn/train");
    Rng rng(config.seed);
    const std::size_t n = data.size();
    std::vector<uint32_t> order(n);
    rng.shuffle(order.data(), n);

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        NEURO_PROFILE_SCOPE("snn/train/epoch");
        if (config.shuffle)
            rng.shuffle(order.data(), n);
        SnnEpochReport report;
        report.epoch = epoch;
        for (std::size_t step = 0; step < n; ++step) {
            const auto &sample = data[order[step]];
            const SpikeTrainGrid grid = encoder_.encode(
                sample.pixels.data(), sample.pixels.size(), rng);
            const PresentationResult r =
                net.presentImage(grid, /*learn=*/true);
            report.outputSpikes += r.outputSpikeCount;
            if (r.outputSpikeCount == 0)
                ++report.silentImages;
            if (stats_) {
                stats_->inc("snn.images_presented");
                stats_->inc("snn.input_spikes", r.inputSpikeCount);
                stats_->inc("snn.output_spikes", r.outputSpikeCount);
                stats_->sample("snn.output_spikes_per_image",
                               static_cast<double>(
                                   r.outputSpikeCount));
                if (r.firstSpikeTimeMs >= 0) {
                    stats_->sample("snn.first_spike_ms",
                                   static_cast<double>(
                                       r.firstSpikeTimeMs));
                }
            }
        }
        if (obsEnabled()) {
            obsCount("snn.images_presented", n);
            obsSample("snn.epoch_output_spikes",
                      static_cast<double>(report.outputSpikes));
        }
        if (callback)
            callback(report);
    }
}

int
SnnStdpTrainer::winnerFor(SnnNetwork &net, const datasets::Dataset &data,
                          std::size_t i, EvalMode mode, Rng &rng,
                          bool *fired)
{
    const auto &sample = data[i];
    if (mode == EvalMode::Wot) {
        // Deterministic count-based conversion; no RNG involved.
        std::vector<uint8_t> counts(sample.pixels.size());
        for (std::size_t p = 0; p < counts.size(); ++p)
            counts[p] = encoder_.spikeCount(sample.pixels[p]);
        if (fired)
            *fired = true;
        return net.forwardCounts(counts.data());
    }
    const SpikeTrainGrid grid =
        encoder_.encode(sample.pixels.data(), sample.pixels.size(), rng);
    const PresentationResult r = net.presentImage(grid, /*learn=*/false);
    if (fired)
        *fired = r.firstSpikeNeuron >= 0;
    return r.winner(Readout::FirstSpike);
}

std::vector<int>
SnnStdpTrainer::labelNeurons(SnnNetwork &net, const datasets::Dataset &data,
                             EvalMode mode, uint64_t seed)
{
    NEURO_ASSERT(!data.empty(), "cannot label on an empty dataset");
    NEURO_PROFILE_SCOPE("snn/label");
    Rng rng(seed);
    SelfLabeling labeling(net.config().numNeurons, data.numClasses());
    for (std::size_t i = 0; i < data.size(); ++i) {
        const int winner = winnerFor(net, data, i, mode, rng);
        if (winner >= 0)
            labeling.record(static_cast<std::size_t>(winner),
                            data[i].label);
    }
    return labeling.finalize(data.classHistogram());
}

SnnEvalResult
SnnStdpTrainer::evaluate(SnnNetwork &net, const std::vector<int> &labels,
                         const datasets::Dataset &data, EvalMode mode,
                         uint64_t seed)
{
    NEURO_ASSERT(labels.size() == net.config().numNeurons,
                 "labels size mismatch");
    NEURO_ASSERT(!data.empty(), "cannot evaluate on an empty dataset");
    NEURO_PROFILE_SCOPE("snn/eval");
    Rng rng(seed);
    SnnEvalResult result;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        bool fired = true;
        const int winner = winnerFor(net, data, i, mode, rng, &fired);
        if (!fired)
            ++result.silent;
        if (winner >= 0 &&
            labels[static_cast<std::size_t>(winner)] == data[i].label) {
            ++correct;
        }
    }
    result.accuracy =
        static_cast<double>(correct) / static_cast<double>(data.size());
    return result;
}

double
trainAndEvaluateStdp(const SnnConfig &config,
                     const SnnTrainConfig &train_config,
                     const datasets::Dataset &train_set,
                     const datasets::Dataset &test_set, EvalMode mode,
                     uint64_t init_seed)
{
    Rng rng(init_seed);
    SnnNetwork net(config, rng);
    SnnStdpTrainer trainer(config);
    trainer.train(net, train_set, train_config);
    const auto labels = trainer.labelNeurons(net, train_set, mode,
                                             train_config.seed + 101);
    return trainer
        .evaluate(net, labels, test_set, mode, train_config.seed + 202)
        .accuracy;
}

} // namespace snn
} // namespace neuro
