#include "neuro/snn/snn_bp.h"

#include <algorithm>
#include <cmath>

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"

namespace neuro {
namespace snn {

SnnBp::SnnBp(const SnnBpConfig &config, Rng &rng)
    : config_(config), encoder_(config.coding),
      weights_(config.numNeurons, config.numInputs),
      bias_(config.numNeurons, -1.0f)
{
    NEURO_ASSERT(config_.numNeurons >=
                     static_cast<std::size_t>(config_.numClasses),
                 "need at least one neuron per class");
    const float bound =
        1.0f / std::sqrt(static_cast<float>(config_.numInputs));
    weights_.fillUniform(rng, -bound, bound);
}

int
SnnBp::neuronClass(std::size_t neuron) const
{
    NEURO_ASSERT(neuron < config_.numNeurons, "neuron out of range");
    return static_cast<int>(neuron %
                            static_cast<std::size_t>(config_.numClasses));
}

void
SnnBp::spikeFeatures(const uint8_t *pixels, Rng &rng,
                     std::vector<float> &features) const
{
    const std::size_t n = config_.numInputs;
    features.assign(n, 0.0f);
    const SpikeTrainGrid grid = encoder_.encode(pixels, n, rng);
    const double period = config_.coding.periodMs;
    const double max_count =
        static_cast<double>(encoder_.maxSpikeCount());
    for (std::size_t t = 0; t < grid.ticks.size(); ++t) {
        // End-of-window leak factor for a spike arriving at tick t.
        const float decay = static_cast<float>(
            std::exp(-(period - static_cast<double>(t)) /
                     config_.tLeakMs) /
            max_count);
        for (uint16_t p : grid.ticks[t])
            features[p] += decay;
    }
}

void
SnnBp::forward(const std::vector<float> &features,
               std::vector<float> &y) const
{
    y.assign(config_.numNeurons, 0.0f);
    weights_.gemv(features.data(), y.data());
    for (std::size_t n = 0; n < y.size(); ++n) {
        // Spiking logistic unit: fires (y > 0.5) when the potential
        // exceeds the (trainable) threshold -bias.
        y[n] = 1.0f / (1.0f + std::exp(-(y[n] + bias_[n])));
    }
}

void
SnnBp::train(const datasets::Dataset &data)
{
    NEURO_ASSERT(!data.empty(), "cannot train on an empty dataset");
    NEURO_ASSERT(data.inputSize() == config_.numInputs,
                 "dataset input size mismatch");
    Rng rng(config_.seed);
    const std::size_t n = data.size();
    std::vector<uint32_t> order(n);
    std::vector<float> features;
    std::vector<float> y;
    std::vector<float> delta(config_.numNeurons);

    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        rng.shuffle(order.data(), n);
        for (std::size_t step = 0; step < n; ++step) {
            const auto &sample = data[order[step]];
            spikeFeatures(sample.pixels.data(), rng, features);
            forward(features, y);
            for (std::size_t j = 0; j < config_.numNeurons; ++j) {
                const float target =
                    neuronClass(j) == sample.label ? 1.0f : 0.0f;
                const float e = target - y[j];
                delta[j] = e * y[j] * (1.0f - y[j]);
            }
            weights_.addOuter(config_.learningRate, delta.data(),
                              features.data());
            for (std::size_t j = 0; j < config_.numNeurons; ++j)
                bias_[j] += config_.learningRate * delta[j];
        }
    }
}

int
SnnBp::predict(const uint8_t *pixels, Rng &rng) const
{
    std::vector<float> features;
    spikeFeatures(pixels, rng, features);
    std::vector<float> y;
    forward(features, y);
    // Class score: strongest unit of each class (first-spiker analogue).
    std::vector<float> score(static_cast<std::size_t>(config_.numClasses),
                             -1.0f);
    for (std::size_t j = 0; j < y.size(); ++j) {
        auto c = static_cast<std::size_t>(neuronClass(j));
        score[c] = std::max(score[c], y[j]);
    }
    return static_cast<int>(
        std::max_element(score.begin(), score.end()) - score.begin());
}

double
SnnBp::evaluate(const datasets::Dataset &data, uint64_t seed) const
{
    NEURO_ASSERT(!data.empty(), "cannot evaluate on an empty dataset");
    Rng rng(seed);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (predict(data[i].pixels.data(), rng) == data[i].label)
            ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

} // namespace snn
} // namespace neuro
