/**
 * @file
 * STDP training pipeline (Sections 2.2 and 3.1): unsupervised STDP over
 * the training set, a self-labeling pass, then evaluation under either
 * the timed (SNNwt) or the count-based (SNNwot) forward path.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "neuro/common/stats.h"
#include "neuro/datasets/dataset.h"
#include "neuro/snn/grid_cache.h"
#include "neuro/snn/network.h"

namespace neuro {
namespace snn {

/** Which forward path evaluation uses. */
enum class EvalMode
{
    Wt, ///< timed LIF simulation, first-spike readout (SNNwt).
    Wot ///< deterministic spike counts, max-potential readout (SNNwot).
};

/** Training-run parameters. */
struct SnnTrainConfig
{
    std::size_t epochs = 1; ///< passes over the training set.
    /** Spike-generation / shuffling seed. Each sample's encoding uses
     *  its own stream, deriveStreamSeed(seed, sampleIndex), so the
     *  encoding is frozen across epochs (and cacheable); only the
     *  presentation order reshuffles. */
    uint64_t seed = 11;
    bool shuffle = true;    ///< reshuffle presentation order per epoch.
};

/** Per-epoch training progress. */
struct SnnEpochReport
{
    std::size_t epoch = 0;          ///< 0-based epoch.
    std::size_t outputSpikes = 0;   ///< total output spikes this epoch.
    std::size_t silentImages = 0;   ///< images with no output spike.
};

/** Optional observer invoked after each epoch. */
using SnnEpochCallback = std::function<void(const SnnEpochReport &)>;

/** Evaluation outcome. */
struct SnnEvalResult
{
    double accuracy = 0.0;        ///< fraction correct.
    std::size_t silent = 0;       ///< images resolved by the
                                  ///< max-potential fallback.
};

/** Drives STDP training, labeling and evaluation of an SnnNetwork. */
class SnnStdpTrainer
{
  public:
    /**
     * The encoder is derived from the network's coding config.
     * @param cache_budget_bytes byte budget of the encoded-grid cache.
     */
    explicit SnnStdpTrainer(
        const SnnConfig &config,
        std::size_t cache_budget_bytes = GridCache::kDefaultBudgetBytes);

    /**
     * Attach a statistics sink (gem5-style): training then records
     * presented images, input/output spike counts and per-image spike
     * distributions under "snn.*" names. Pass nullptr to detach; the
     * registry must outlive the trainer's use of it.
     */
    void setStats(StatRegistry *stats) { stats_ = stats; }

    /** Run unsupervised STDP over @p data. */
    void train(SnnNetwork &net, const datasets::Dataset &data,
               const SnnTrainConfig &config,
               const SnnEpochCallback &callback = {});

    /**
     * Self-labeling pass (weights frozen): tag each neuron with the
     * label it wins most often, normalized by class frequency.
     *
     * Samples are sharded across the thread pool, each presented to a
     * worker-local copy of the network with an Rng seeded from
     * (seed, sampleIndex), so the result is bit-identical at any
     * thread count (docs/parallelism.md). @p net itself is left
     * untouched.
     */
    std::vector<int> labelNeurons(SnnNetwork &net,
                                  const datasets::Dataset &data,
                                  EvalMode mode, uint64_t seed);

    /**
     * Classification accuracy with the given neuron labels. Sharded
     * like labelNeurons(), with the same determinism contract.
     */
    SnnEvalResult evaluate(SnnNetwork &net, const std::vector<int> &labels,
                           const datasets::Dataset &data, EvalMode mode,
                           uint64_t seed);

    /** @return the encoder (for tests and traces). */
    const SpikeEncoder &encoder() const { return encoder_; }

    /** @return the encoded-grid cache (stats, tests). */
    const GridCache &gridCache() const { return gridCache_; }

    /**
     * The cached encoding of sample @p index of @p data under @p seed:
     * served from the grid cache when resident, encoded (and inserted)
     * otherwise. Thread-safe; all presentation paths go through here.
     */
    std::shared_ptr<const PackedSpikeGrid>
    gridFor(const datasets::Dataset &data, std::size_t index,
            uint64_t seed) const;

  private:
    /** Winners (and fired flags) for every sample of @p data. */
    std::vector<int> winnersFor(SnnNetwork &net,
                                const datasets::Dataset &data,
                                EvalMode mode, uint64_t seed,
                                std::vector<uint8_t> *fired) const;

    SpikeEncoder encoder_;
    uint64_t codingHash_ = 0;
    mutable GridCache gridCache_;
    StatRegistry *stats_ = nullptr;
};

/**
 * End-to-end convenience used by the accuracy benches: build, train,
 * label and evaluate an SNN+STDP model.
 * @return test accuracy in [0,1].
 */
double trainAndEvaluateStdp(const SnnConfig &config,
                            const SnnTrainConfig &train_config,
                            const datasets::Dataset &train_set,
                            const datasets::Dataset &test_set,
                            EvalMode mode, uint64_t init_seed);

} // namespace snn
} // namespace neuro

