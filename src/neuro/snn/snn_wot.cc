#include "neuro/snn/snn_wot.h"

#include <algorithm>
#include <cmath>

#include "neuro/common/logging.h"
#include "neuro/snn/network.h"
#include "neuro/snn/spike_bits.h"

namespace neuro {
namespace snn {

SnnWotDatapath::SnnWotDatapath(const SnnNetwork &net)
    : numInputs_(net.config().numInputs),
      numNeurons_(net.config().numNeurons),
      weights_(numInputs_ * numNeurons_)
{
    const Matrix &w = net.weights();
    for (std::size_t n = 0; n < numNeurons_; ++n) {
        const float *row = w.row(n);
        for (std::size_t p = 0; p < numInputs_; ++p) {
            const long q = std::lround(row[p]);
            weights_[n * numInputs_ + p] =
                static_cast<uint8_t>(std::clamp(q, 0L, 255L));
        }
    }
}

uint32_t
SnnWotDatapath::shiftMultiply(uint8_t count, uint8_t weight)
{
    NEURO_ASSERT(count < 16, "spike count must fit in 4 bits");
    const uint32_t w = weight;
    uint32_t acc = 0;
    // One shifter + adder per count bit, as in Figure 7.
    if (count & 0x8)
        acc += w << 3;
    if (count & 0x4)
        acc += w << 2;
    if (count & 0x2)
        acc += w << 1;
    if (count & 0x1)
        acc += w;
    return acc;
}

int
SnnWotDatapath::forward(const uint8_t *counts,
                        std::vector<uint32_t> *potentials) const
{
    if (potentials)
        potentials->assign(numNeurons_, 0);
    int best = 0;
    uint32_t best_pot = 0;
    bool first = true;
    for (std::size_t n = 0; n < numNeurons_; ++n) {
        const uint8_t *row = weights_.data() + n * numInputs_;
        uint32_t pot = 0; // Wallace-tree accumulation.
        for (std::size_t p = 0; p < numInputs_; ++p)
            pot += shiftMultiply(counts[p], row[p]);
        if (potentials)
            (*potentials)[n] = pot;
        // Max tree: ties resolve to the lower index, as a comparator
        // tree with stable select would.
        if (first || pot > best_pot) {
            best_pot = pot;
            best = static_cast<int>(n);
            first = false;
        }
    }
    return best;
}

int
SnnWotDatapath::forward(const PackedSpikeGrid &grid,
                        std::vector<uint32_t> *potentials) const
{
    NEURO_ASSERT(grid.numInputs() == numInputs_,
                 "grid inputs %zu != datapath inputs %zu",
                 grid.numInputs(), numInputs_);
    std::vector<uint8_t> counts(numInputs_);
    for (std::size_t p = 0; p < numInputs_; ++p) {
        counts[p] = static_cast<uint8_t>(
            std::min<std::size_t>(grid.countFor(p), 15));
    }
    return forward(counts.data(), potentials);
}

uint8_t
SnnWotDatapath::weight(std::size_t neuron, std::size_t input) const
{
    NEURO_ASSERT(neuron < numNeurons_ && input < numInputs_,
                 "weight index out of range");
    return weights_[neuron * numInputs_ + input];
}

void
SnnWotDatapath::setWeight(std::size_t neuron, std::size_t input,
                          uint8_t value)
{
    NEURO_ASSERT(neuron < numNeurons_ && input < numInputs_,
                 "weight index out of range");
    weights_[neuron * numInputs_ + input] = value;
}

uint8_t
SnnWotDatapath::weightAt(std::size_t idx) const
{
    NEURO_ASSERT(idx < weights_.size(), "weight index out of range");
    return weights_[idx];
}

void
SnnWotDatapath::setWeightAt(std::size_t idx, uint8_t value)
{
    NEURO_ASSERT(idx < weights_.size(), "weight index out of range");
    weights_[idx] = value;
}

} // namespace snn
} // namespace neuro
