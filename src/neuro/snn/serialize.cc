#include "neuro/snn/serialize.h"

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"
#include "neuro/common/serialize.h"

namespace neuro {
namespace snn {

void
saveSnn(const SnnNetwork &net, const std::vector<int> &labels,
        Archive &archive, const std::string &prefix)
{
    const SnnConfig &config = net.config();
    archive.putInts(prefix + ".shape",
                    {static_cast<int64_t>(config.numInputs),
                     static_cast<int64_t>(config.numNeurons)});
    archive.putInts(prefix + ".timing",
                    {config.coding.periodMs, config.coding.minIntervalMs,
                     config.tInhibitMs, config.tRefracMs,
                     static_cast<int64_t>(config.coding.scheme)});
    archive.putScalar(prefix + ".tleak", config.tLeakMs);
    archive.putScalar(prefix + ".threshold0", config.initialThreshold);
    archive.putFloats(prefix + ".weights", net.weights().data());

    std::vector<float> thresholds;
    thresholds.reserve(config.numNeurons);
    for (double threshold : net.thresholds())
        thresholds.push_back(static_cast<float>(threshold));
    archive.putFloats(prefix + ".thresholds", std::move(thresholds));

    std::vector<int64_t> label_values(labels.begin(), labels.end());
    archive.putInts(prefix + ".labels", std::move(label_values));
}

std::optional<TrainedSnn>
loadSnn(const Archive &archive, const std::string &prefix)
{
    if (!archive.has(prefix + ".shape") ||
        !archive.has(prefix + ".weights") ||
        !archive.has(prefix + ".thresholds")) {
        return std::nullopt;
    }
    const auto &shape = archive.ints(prefix + ".shape");
    if (shape.size() != 2 || shape[0] <= 0 || shape[1] <= 0)
        return std::nullopt;

    SnnConfig config;
    config.numInputs = static_cast<std::size_t>(shape[0]);
    config.numNeurons = static_cast<std::size_t>(shape[1]);
    if (archive.has(prefix + ".timing")) {
        const auto &timing = archive.ints(prefix + ".timing");
        if (timing.size() != 5)
            return std::nullopt;
        config.coding.periodMs = static_cast<int>(timing[0]);
        config.coding.minIntervalMs = static_cast<int>(timing[1]);
        config.tInhibitMs = static_cast<int>(timing[2]);
        config.tRefracMs = static_cast<int>(timing[3]);
        config.coding.scheme = static_cast<CodingScheme>(timing[4]);
    }
    config.tLeakMs = archive.scalar(prefix + ".tleak");
    config.initialThreshold = archive.scalar(prefix + ".threshold0");

    Rng rng(1); // weights are overwritten below.
    TrainedSnn model{SnnNetwork(config, rng), {}};

    const auto &weights = archive.floats(prefix + ".weights");
    if (weights.size() != model.network.weights().size())
        return std::nullopt;
    model.network.weights().data() = weights;

    const auto &thresholds = archive.floats(prefix + ".thresholds");
    if (thresholds.size() != config.numNeurons)
        return std::nullopt;
    for (std::size_t n = 0; n < config.numNeurons; ++n)
        model.network.thresholds()[n] = thresholds[n];

    if (archive.has(prefix + ".labels")) {
        for (int64_t label : archive.ints(prefix + ".labels"))
            model.labels.push_back(static_cast<int>(label));
        if (model.labels.size() != config.numNeurons)
            return std::nullopt;
    }
    return model;
}

} // namespace snn
} // namespace neuro
