/**
 * @file
 * The Leaky Integrate-and-Fire neuron (Section 2.2). The membrane
 * potential obeys  v'(t) + v(t)/Tleak = sum_i w_i I_i(t); between input
 * spikes the homogeneous solution gives the closed form
 *   v(T2) = v(T1) * exp(-(T2-T1)/Tleak),
 * which the paper exploits to avoid per-timestep integration — we
 * implement both the event-driven closed form and the reference discrete
 * integration, and test their equivalence.
 */

#pragma once

#include <cstdint>

namespace neuro {
namespace snn {

/** Closed-form leak: potential after @p dt ms of decay. */
double lifDecay(double potential, double dt_ms, double tleak_ms);

/**
 * Reference discrete simulation of the leak over @p dt ms in @p steps
 * Euler steps (used by tests and the event-driven-vs-discrete ablation).
 */
double lifDecayDiscrete(double potential, double dt_ms, double tleak_ms,
                        int steps);

/**
 * Per-neuron LIF state. Kept as a small aggregate so the network can
 * store neurons contiguously; all timing is in integer milliseconds
 * (1 ms = 1 hardware clock cycle, as in the paper).
 */
struct LifNeuron
{
    double potential = 0.0;      ///< membrane potential v_j.
    double threshold = 0.0;      ///< firing threshold (homeostasis-tuned).
    int64_t lastUpdateMs = 0;    ///< time of last potential update.
    int64_t refractoryUntil = -1;///< ignores inputs until this time.
    int64_t inhibitedUntil = -1; ///< WTA inhibition expiry.
    int64_t lastFireMs = -1;     ///< last output spike time.
    uint32_t fireCount = 0;      ///< fires in current homeostasis epoch.

    /** @return true if the neuron ignores input spikes at time @p t. */
    bool
    gated(int64_t t) const
    {
        return t < refractoryUntil || t < inhibitedUntil;
    }

    /** Apply the closed-form leak up to time @p t. */
    void
    decayTo(int64_t t, double tleak_ms)
    {
        if (t > lastUpdateMs) {
            potential = lifDecay(potential,
                                 static_cast<double>(t - lastUpdateMs),
                                 tleak_ms);
            lastUpdateMs = t;
        }
    }

    /** Add synaptic drive (already decayed to the current time). */
    void integrate(double drive) { potential += drive; }

    /** @return true if the potential reached the threshold. */
    bool shouldFire() const { return potential >= threshold; }

    /**
     * Emit a spike at time @p t: reset the potential, start the
     * refractory period, count the fire.
     */
    void
    fire(int64_t t, int refractory_ms)
    {
        potential = 0.0;
        lastFireMs = t;
        refractoryUntil = t + refractory_ms;
        ++fireCount;
    }

    /** Reset the per-presentation dynamic state (not the threshold or
     *  homeostasis counters). */
    void
    resetDynamics()
    {
        potential = 0.0;
        lastUpdateMs = 0;
        refractoryUntil = -1;
        inhibitedUntil = -1;
        lastFireMs = -1;
    }
};

} // namespace snn
} // namespace neuro

