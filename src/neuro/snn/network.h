/**
 * @file
 * The paper's SNN topology (Section 2.2): a single layer of LIF neurons,
 * each excited by every input pixel and inhibiting all its peers when it
 * fires (winner-takes-all dynamics emulated by an inhibition period, as
 * in the hardware). Readout is spike-based: the first neuron to fire
 * wins; the hardware SNNwot variant reads out the highest potential
 * instead.
 *
 * Two execution engines share the same dynamics (docs/snn_engine.md):
 *
 *  - Dense: the reference per-tick walk over a `SpikeTrainGrid`
 *    (presentImage / stepTick), unchanged from the original code;
 *  - Event: an event-driven sweep over a bit-packed `PackedSpikeGrid`
 *    (presentEvents) that touches only spike-carrying ticks, shares one
 *    exponential per distinct decay interval, and accumulates synaptic
 *    drive through a transposed weight copy so the inner loop is a
 *    contiguous vector sweep. The two engines are bit-identical: same
 *    winners, same potentials, same learned weights (tests enforce it).
 *
 * LIF state is kept as structure-of-arrays (separate potential /
 * threshold / timing arrays) so the per-tick inner loops vectorize; the
 * `LifNeuron` aggregate in lif.h remains the single-neuron unit used by
 * the LIF/homeostasis unit tests.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "neuro/common/matrix.h"
#include "neuro/snn/coding.h"
#include "neuro/snn/homeostasis.h"
#include "neuro/snn/lif.h"
#include "neuro/snn/spike_bits.h"
#include "neuro/snn/stdp.h"

namespace neuro {

class Rng;

namespace snn {

/** Which execution engine drives a presentation. */
enum class SnnEngine
{
    Dense, ///< reference dense tick loop over SpikeTrainGrid.
    Event, ///< event-driven sparse engine over PackedSpikeGrid.
};

/**
 * Process-wide default engine: Event, unless the NEURO_SNN_ENGINE
 * environment variable says "dense" (the CI reference-path job).
 */
SnnEngine defaultSnnEngine();

/** @return a printable name for @p engine. */
const char *snnEngineName(SnnEngine engine);

/** Full SNN configuration (paper defaults of Table 1). */
struct SnnConfig
{
    std::size_t numInputs = 784;  ///< input pixels.
    std::size_t numNeurons = 300; ///< output LIF neurons.
    CodingConfig coding;          ///< input spike coding.
    double tLeakMs = 500.0;       ///< Tleak.
    int tInhibitMs = 5;           ///< Tinhibit (WTA inhibition).
    int tRefracMs = 20;           ///< Trefrac.
    double initialThreshold = 17850.0; ///< Tinit = wmax * 70.
    /** Per-neuron random jitter applied to the initial threshold so the
     *  WTA race has no exact ties (Figure 3: "all neurons have
     *  different firing thresholds"). */
    double thresholdJitter = 0.05;
    /** Winner-takes-all reset: a firing neuron zeroes its peers'
     *  potentials (the effect of the lateral inhibitory connections)
     *  in addition to the Tinhibit gating. */
    bool wtaReset = true;
    StdpConfig stdp;              ///< learning rule.
    HomeostasisConfig homeostasis;///< threshold adaptation.
    float wInitMin = 0.3f * 255.0f; ///< initial weight range, low.
    float wInitMax = 0.7f * 255.0f; ///< initial weight range, high.
    /** Execution engine for packed presentations (present()). */
    SnnEngine engine = defaultSnnEngine();
};

/** How the winning neuron is read out. */
enum class Readout
{
    FirstSpike,   ///< first neuron to fire (paper's SNNwt readout).
    MaxPotential, ///< highest potential (paper's SNNwot readout).
    MaxSpikeCount ///< most output spikes over the window.
};

/** Optional per-presentation trace for Figure 3-style plots. */
struct PresentationTrace
{
    /** Sampled neuron potentials: potentials[t][n] at each tick. */
    std::vector<std::vector<float>> potentials;
    /** Input raster: (tick, pixel) pairs. */
    std::vector<std::pair<int, uint16_t>> inputSpikes;
    /** Output spikes: (tick, neuron) pairs. */
    std::vector<std::pair<int, uint16_t>> outputSpikes;
    /** Record potentials only for the first N neurons (0 = all). */
    std::size_t neuronLimit = 0;
};

/** Outcome of one image presentation. */
struct PresentationResult
{
    int firstSpikeNeuron = -1;     ///< first firing neuron (-1 if none).
    int64_t firstSpikeTimeMs = -1; ///< its firing time.
    int maxPotentialNeuron = -1;   ///< argmax of end-of-window potential.
    std::size_t inputSpikeCount = 0;  ///< total input spikes seen.
    std::size_t outputSpikeCount = 0; ///< total output spikes fired.
    std::size_t wtaInhibitions = 0;   ///< peers gated by WTA firings.
    std::size_t stdpPotentiated = 0;  ///< synapses potentiated (learn).
    std::size_t stdpDepressed = 0;    ///< synapses depressed (learn).
    std::vector<uint16_t> spikeCountPerNeuron; ///< output spikes/neuron.

    /** Winner under the requested readout (falls back to max potential
     *  when no neuron fired). */
    int winner(Readout readout) const;
};

/**
 * The single-layer WTA spiking network. Owns the synaptic weight matrix
 * (numNeurons x numInputs, weights in [0, wMax]), the per-neuron LIF
 * state (structure-of-arrays) and the STDP + homeostasis machinery.
 */
class SnnNetwork
{
  public:
    /** Construct with uniformly random initial weights. */
    SnnNetwork(const SnnConfig &config, Rng &rng);

    /** @return the configuration. */
    const SnnConfig &config() const { return config_; }

    /** @return the weight matrix (numNeurons x numInputs). */
    const Matrix &weights() const { return weights_; }
    /** @return mutable weights (tests, SNN+BP); invalidates the event
     *  engine's transposed copy, which is rebuilt lazily. */
    Matrix &
    weights()
    {
        weightsTDirty_ = true;
        return weights_;
    }

    /** @return per-neuron membrane potentials. */
    const std::vector<double> &potentials() const { return potentials_; }
    /** @return per-neuron firing thresholds. */
    const std::vector<double> &thresholds() const { return thresholds_; }
    /** @return mutable thresholds (serialization, tests). */
    std::vector<double> &thresholds() { return thresholds_; }

    /**
     * Present one encoded image for a full window with the reference
     * dense engine.
     *
     * @param grid   the input spike train.
     * @param learn  apply STDP on firing events and advance homeostasis.
     * @param trace  optional trace sink (slows the run; for figures).
     */
    PresentationResult presentImage(const SpikeTrainGrid &grid, bool learn,
                                    PresentationTrace *trace = nullptr);

    /**
     * Present a packed grid with the engine selected by
     * config().engine: the Event engine runs presentEvents(); the
     * Dense engine expands the grid into an internal scratch buffer
     * and runs the reference presentImage(). Results are identical
     * either way.
     */
    PresentationResult present(const PackedSpikeGrid &grid, bool learn);

    /**
     * The event-driven engine: walk only the spike-carrying ticks of a
     * packed grid. Bit-identical to presentImage() on the equivalent
     * dense grid (no trace support — use the dense engine for traces).
     */
    PresentationResult presentEvents(const PackedSpikeGrid &grid,
                                     bool learn);

    /**
     * Step-wise presentation API: presentImage() is equivalent to
     * beginPresentation(), stepTick() for every non-empty tick in
     * order, then finishPresentation(). Exposed so event-driven
     * drivers (cycle::presentViaEventQueue) can run the same dynamics
     * from an event queue.
     */
    void beginPresentation(PresentationResult &result);

    /** Integrate the spikes arriving at tick @p t and run the WTA. */
    void stepTick(int64_t t, const std::vector<uint16_t> &spikes,
                  bool learn, PresentationResult &result,
                  PresentationTrace *trace = nullptr);

    /** Decay to the window end, resolve the max-potential readout and
     *  (when learning) advance homeostasis. */
    void finishPresentation(bool learn, PresentationResult &result);

    /**
     * The SNNwot forward path (Section 4.2.2): potentials from spike
     * *counts* only, no timing, no leak; the winner is the neuron with
     * the highest potential.
     *
     * @param counts per-pixel spike counts (numInputs entries).
     * @param potentials optional sink for all neuron potentials.
     * @return the winning neuron index.
     */
    int forwardCounts(const uint8_t *counts,
                      std::vector<double> *potentials = nullptr) const;

    /** Total homeostasis epochs processed during learning. */
    int64_t homeostasisEpochs() const
    {
        return homeostasis_.epochsProcessed();
    }

  private:
    /** @return true if neuron @p n ignores inputs at time @p t. */
    bool
    gatedAt(std::size_t n, int64_t t) const
    {
        return t < refractoryUntil_[n] || t < inhibitedUntil_[n];
    }

    /** Shared fire-and-inhibit path of both engines (tick @p t). */
    void fireNeuron(int fire_n, int64_t t, bool learn,
                    PresentationResult &result);

    /** Rebuild the transposed weight copy if weights changed. */
    void refreshWeightsT();

    SnnConfig config_;
    Matrix weights_;
    /** Transposed weights (numInputs x numNeurons) for the event
     *  engine's contiguous drive accumulation; lazily rebuilt. */
    Matrix weightsT_;
    bool weightsTDirty_ = true;

    // Per-neuron LIF state, structure-of-arrays (see lif.h for the
    // single-neuron semantics each array column follows).
    std::vector<double> potentials_;
    std::vector<double> thresholds_;
    std::vector<int64_t> lastUpdateMs_;
    std::vector<int64_t> refractoryUntil_;
    std::vector<int64_t> inhibitedUntil_;
    std::vector<uint32_t> fireCounts_;

    StdpRule stdp_;
    Homeostasis homeostasis_;
    /** Per-input time of last presynaptic spike (presentation-local). */
    std::vector<int64_t> lastInputSpike_;

    // Event-engine scratch (presentation-local, reused across calls).
    std::vector<double> driveScratch_;
    /** Lazily filled exp(-dt/Tleak) per integer dt (NaN = unset). */
    std::vector<double> decayFactors_;
    /** Output-spike bit plane: one bit per (neuron, tick); the
     *  MaxSpikeCount readout counts are popcounts over it. */
    std::vector<uint64_t> outSpikeBits_;
    /** Dense expansion buffer for the Dense-engine present() path. */
    SpikeTrainGrid denseScratch_;
};

} // namespace snn
} // namespace neuro

