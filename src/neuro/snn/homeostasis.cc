#include "neuro/snn/homeostasis.h"

#include <algorithm>
#include <cmath>

#include "neuro/common/logging.h"
#include "neuro/snn/lif.h"

namespace neuro {
namespace snn {

Homeostasis::Homeostasis(const HomeostasisConfig &config)
    : config_(config)
{
    NEURO_ASSERT(config_.epochMs > 0, "epoch must be positive");
    NEURO_ASSERT(config_.rate >= 0.0, "negative homeostasis rate");
}

int
Homeostasis::advance(int64_t dt_ms, LifNeuron *neurons, std::size_t count)
{
    if (!config_.enabled)
        return 0;
    NEURO_ASSERT(dt_ms >= 0, "time cannot run backwards");
    int boundaries = 0;
    elapsedInEpoch_ += dt_ms;
    while (elapsedInEpoch_ >= config_.epochMs) {
        elapsedInEpoch_ -= config_.epochMs;
        applyEpoch(neurons, count);
        ++boundaries;
        ++epochs_;
    }
    return boundaries;
}

int
Homeostasis::advance(int64_t dt_ms, double *thresholds,
                     uint32_t *fireCounts, std::size_t count)
{
    if (!config_.enabled)
        return 0;
    NEURO_ASSERT(dt_ms >= 0, "time cannot run backwards");
    int boundaries = 0;
    elapsedInEpoch_ += dt_ms;
    while (elapsedInEpoch_ >= config_.epochMs) {
        elapsedInEpoch_ -= config_.epochMs;
        applyEpoch(thresholds, fireCounts, count);
        ++boundaries;
        ++epochs_;
    }
    return boundaries;
}

void
Homeostasis::applyEpoch(LifNeuron *neurons, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        LifNeuron &n = neurons[i];
        applyEpoch(&n.threshold, &n.fireCount, 1);
    }
}

void
Homeostasis::applyEpoch(double *thresholds, uint32_t *fireCounts,
                        std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        const double activity = static_cast<double>(fireCounts[i]);
        const double diff = activity - config_.activityTarget;
        // sign(activity - target) * threshold * r; no change at exactly
        // the target.
        if (diff > 0)
            thresholds[i] += thresholds[i] * config_.rate;
        else if (diff < 0)
            thresholds[i] -= thresholds[i] * config_.rate *
                             config_.downFactor;
        thresholds[i] = std::max(thresholds[i], config_.minThreshold);
        fireCounts[i] = 0;
    }
}

} // namespace snn
} // namespace neuro
