/**
 * @file
 * Spike coding schemes (Sections 3.1 and 5). Pixels are converted into
 * spike trains over one image-presentation window (Tperiod, 1 ms
 * resolution, "one clock cycle models one millisecond" in hardware).
 *
 * A pixel emits at most one spike per 1 ms tick: one clock cycle models
 * one millisecond, and the hardware spike generator cannot fire twice in
 * a cycle, so sub-millisecond Poisson inter-arrivals merge into one
 * spike. This keeps the dense and bit-packed representations exactly
 * equivalent (a bit cannot hold a multiplicity).
 *
 * Rate codes (four variants, rate proportional to luminance; maximum
 * luminance 255 maps to the minimum mean inter-spike interval U = 50 ms,
 * i.e. 10 spikes in a 500 ms window):
 *  - RatePoisson:   exponential inter-arrival times (the reference code);
 *  - RateGaussian:  Gaussian inter-arrival times (the hardware-friendly
 *                   CLT generator the SNNwt accelerator uses);
 *  - RateRegular:   deterministic, evenly spaced spikes;
 *  - RateBernoulli: per-tick firing probability.
 *
 * Temporal codes (two variants):
 *  - TimeToFirstSpike: one spike per pixel at a latency decreasing with
 *    luminance;
 *  - RankOrder: one spike per pixel, ordered by luminance rank.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "neuro/snn/spike_bits.h"

namespace neuro {

class Rng;

namespace snn {

/** Available input coding schemes. */
enum class CodingScheme
{
    RatePoisson,
    RateGaussian,
    RateRegular,
    RateBernoulli,
    TimeToFirstSpike,
    RankOrder,
};

/** @return a printable name for @p scheme. */
std::string codingSchemeName(CodingScheme scheme);

/**
 * One image's worth of input spikes, bucketed per 1 ms tick: ticks[t]
 * lists the input (pixel) indices that spike at time t.
 */
struct SpikeTrainGrid
{
    std::vector<std::vector<uint16_t>> ticks; ///< per-tick pixel lists.

    /** @return total number of spikes across the window. */
    std::size_t totalSpikes() const;

    /** @return per-pixel spike counts (size = number of pixels). */
    std::vector<uint8_t> pixelCounts(std::size_t num_pixels) const;
};

/** Encoder configuration (paper values of Table 1). */
struct CodingConfig
{
    CodingScheme scheme = CodingScheme::RatePoisson;
    int periodMs = 500;      ///< Tperiod, image presentation window.
    int minIntervalMs = 50;  ///< U, mean interval at max luminance.
    /** RateGaussian: inter-arrival stddev as a fraction of the mean
     *  (the CLT generator's spread; 0 degenerates to regular firing). */
    double gaussianSigmaFactor = 0.5;
};

/** Converts 8-bit pixels into spike trains. */
class SpikeEncoder
{
  public:
    explicit SpikeEncoder(const CodingConfig &config);

    /** @return the configuration. */
    const CodingConfig &config() const { return config_; }

    /** Encode one image of @p num_pixels luminance values. */
    SpikeTrainGrid encode(const uint8_t *pixels, std::size_t num_pixels,
                          Rng &rng) const;

    /**
     * Encode into a caller-owned grid, reusing its per-tick buffers.
     * The training/evaluation loops keep one scratch grid per worker
     * so re-encoding every image costs no allocations in steady state.
     */
    void encodeInto(const uint8_t *pixels, std::size_t num_pixels,
                    Rng &rng, SpikeTrainGrid &grid) const;

    /**
     * Encode directly into a bit-packed, event-indexed grid (finalized
     * on return). Consumes the Rng identically to encodeInto(), and the
     * resulting grid expands (toDense) to the exact dense grid — the
     * two representations are interchangeable bit-for-bit. All six
     * coding schemes are supported.
     */
    void encodePacked(const uint8_t *pixels, std::size_t num_pixels,
                      Rng &rng, PackedSpikeGrid &grid) const;

    /**
     * The SNNwot deterministic conversion (Section 4.2.2): the number of
     * spikes a pixel would emit, as the 4-bit value the hardware
     * generates directly (0..periodMs/minIntervalMs).
     */
    uint8_t spikeCount(uint8_t pixel) const;

    /** @return the maximum spikeCount() value (10 with paper settings). */
    uint8_t maxSpikeCount() const;

  private:
    CodingConfig config_;
};

} // namespace snn
} // namespace neuro

