/**
 * @file
 * Self-labeling of the unsupervised SNN (Section 2.2): STDP learns
 * without labels, so after training a labeling pass presents the training
 * images once more and, each time a neuron wins for an image of label L,
 * increments that neuron's counter for L. Each neuron is then tagged with
 * the label of its highest *normalized* score (counter divided by the
 * number of training images carrying that label, to correct for class
 * imbalance).
 */

#pragma once

#include <cstdint>
#include <vector>

namespace neuro {
namespace snn {

/** Accumulates per-neuron, per-label win counters. */
class SelfLabeling
{
  public:
    /** Construct for @p num_neurons neurons and @p num_classes labels. */
    SelfLabeling(std::size_t num_neurons, int num_classes);

    /** Record that @p neuron won an image of @p label. */
    void record(std::size_t neuron, int label);

    /**
     * Finalize: tag each neuron with its best normalized label.
     * @param label_counts number of training images per label.
     * @return per-neuron label (-1 for neurons that never won).
     */
    std::vector<int>
    finalize(const std::vector<std::size_t> &label_counts) const;

    /** @return the raw counter for (neuron, label). */
    uint32_t counter(std::size_t neuron, int label) const;

  private:
    std::size_t numNeurons_;
    int numClasses_;
    std::vector<uint32_t> counters_; ///< numNeurons x numClasses.
};

} // namespace snn
} // namespace neuro

