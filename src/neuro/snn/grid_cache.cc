#include "neuro/snn/grid_cache.h"

#include "neuro/common/logging.h"
#include "neuro/common/profile.h"
#include "neuro/snn/coding.h"

namespace neuro {
namespace snn {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t
fnvMix(uint64_t h, uint64_t v)
{
    // Fold the value in byte-wise so every bit lands in the stream.
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

uint64_t
gridPixelHash(const uint8_t *pixels, std::size_t n)
{
    uint64_t h = kFnvOffset;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= pixels[i];
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
codingConfigHash(const CodingConfig &config)
{
    uint64_t h = kFnvOffset;
    h = fnvMix(h, static_cast<uint64_t>(config.scheme));
    h = fnvMix(h, static_cast<uint64_t>(config.periodMs));
    h = fnvMix(h, static_cast<uint64_t>(config.minIntervalMs));
    uint64_t sigma_bits = 0;
    static_assert(sizeof(sigma_bits) == sizeof(config.gaussianSigmaFactor));
    __builtin_memcpy(&sigma_bits, &config.gaussianSigmaFactor,
                     sizeof(sigma_bits));
    return fnvMix(h, sigma_bits);
}

double
GridCacheStats::hitRate() const
{
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
            static_cast<double>(total);
}

std::size_t
GridCache::KeyHash::operator()(const GridKey &k) const
{
    uint64_t h = kFnvOffset;
    h = fnvMix(h, k.sampleIndex);
    h = fnvMix(h, k.streamSeed);
    h = fnvMix(h, k.pixelHash);
    h = fnvMix(h, k.codingHash);
    return static_cast<std::size_t>(h);
}

GridCache::GridCache(std::size_t budget_bytes)
    : budgetBytes_(budget_bytes)
{
}

std::shared_ptr<const PackedSpikeGrid>
GridCache::find(const GridKey &key)
{
    MutexGuard lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        obsCount("snn.grid_cache.misses");
        return nullptr;
    }
    ++stats_.hits;
    obsCount("snn.grid_cache.hits");
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->grid;
}

std::shared_ptr<const PackedSpikeGrid>
GridCache::insert(const GridKey &key, PackedSpikeGrid &&grid)
{
    MutexGuard lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        // A concurrent worker encoded the same key; keep the resident
        // grid so shared_ptr identity stays stable.
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->grid;
    }
    Entry entry;
    entry.key = key;
    entry.bytes = grid.bytes();
    entry.grid =
        std::make_shared<const PackedSpikeGrid>(std::move(grid));
    auto resident = entry.grid;
    stats_.bytes += entry.bytes;
    ++stats_.entries;
    ++stats_.insertions;
    lru_.push_front(std::move(entry));
    map_[key] = lru_.begin();
    evictToBudgetLocked();
    return resident;
}

void
GridCache::evictToBudgetLocked()
{
    // Keep at least the just-inserted entry so a single oversized grid
    // still caches (and the budget degrades gracefully).
    while (stats_.bytes > budgetBytes_ && lru_.size() > 1) {
        const Entry &victim = lru_.back();
        stats_.bytes -= victim.bytes;
        --stats_.entries;
        ++stats_.evictions;
        obsCount("snn.grid_cache.evictions");
        map_.erase(victim.key);
        lru_.pop_back();
    }
}

void
GridCache::clear()
{
    MutexGuard lock(mutex_);
    lru_.clear();
    map_.clear();
    stats_.bytes = 0;
    stats_.entries = 0;
}

GridCacheStats
GridCache::stats() const
{
    MutexGuard lock(mutex_);
    return stats_;
}

} // namespace snn
} // namespace neuro
