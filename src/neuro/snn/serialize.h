/**
 * @file
 * Save/restore of trained SNN+STDP models: the network configuration,
 * synaptic weights, homeostasis-adjusted thresholds and the
 * self-labeling result travel together, so an accelerator image can be
 * trained once and deployed/inspected later.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "neuro/snn/network.h"

namespace neuro {

class Archive;

namespace snn {

/** A deployable trained model: the network and its neuron labels. */
struct TrainedSnn
{
    SnnNetwork network;      ///< weights + thresholds + config.
    std::vector<int> labels; ///< per-neuron class labels (-1 = none).
};

/** Store @p net and @p labels into @p archive under @p prefix. */
void saveSnn(const SnnNetwork &net, const std::vector<int> &labels,
             Archive &archive, const std::string &prefix = "snn");

/** Rebuild a trained model; empty optional on missing/invalid data. */
std::optional<TrainedSnn>
loadSnn(const Archive &archive, const std::string &prefix = "snn");

} // namespace snn
} // namespace neuro

