#include "neuro/snn/coding.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"

namespace neuro {
namespace snn {

std::string
codingSchemeName(CodingScheme scheme)
{
    switch (scheme) {
      case CodingScheme::RatePoisson:
        return "rate-poisson";
      case CodingScheme::RateGaussian:
        return "rate-gaussian";
      case CodingScheme::RateRegular:
        return "rate-regular";
      case CodingScheme::RateBernoulli:
        return "rate-bernoulli";
      case CodingScheme::TimeToFirstSpike:
        return "time-to-first-spike";
      case CodingScheme::RankOrder:
        return "rank-order";
    }
    panic("unreachable coding scheme");
}

std::size_t
SpikeTrainGrid::totalSpikes() const
{
    std::size_t total = 0;
    for (const auto &tick : ticks)
        total += tick.size();
    return total;
}

std::vector<uint8_t>
SpikeTrainGrid::pixelCounts(std::size_t num_pixels) const
{
    std::vector<uint8_t> counts(num_pixels, 0);
    for (const auto &tick : ticks) {
        for (uint16_t pixel : tick) {
            NEURO_ASSERT(pixel < num_pixels, "spike pixel out of range");
            if (counts[pixel] < 255)
                ++counts[pixel];
        }
    }
    return counts;
}

SpikeEncoder::SpikeEncoder(const CodingConfig &config)
    : config_(config)
{
    NEURO_ASSERT(config_.periodMs > 0, "presentation period must be > 0");
    NEURO_ASSERT(config_.minIntervalMs > 0, "min interval must be > 0");
}

namespace {

/**
 * Spike generation shared by the dense and packed encoders: calls
 * emit(tick, pixel) for every spike, in per-pixel time order within a
 * pixel-major (or, for rank order, rank-major) sweep. Both sinks see
 * the identical emission sequence and the identical Rng consumption,
 * which is what makes the two grid representations interchangeable.
 */
template <typename Emit>
void
emitRate(const CodingConfig &config, const uint8_t *pixels, std::size_t n,
         Rng &rng, Emit &&emit)
{
    const double period = static_cast<double>(config.periodMs);
    const double min_interval = static_cast<double>(config.minIntervalMs);
    for (std::size_t p = 0; p < n; ++p) {
        if (pixels[p] == 0)
            continue; // zero luminance, zero rate.
        // Rate proportional to luminance: mean inter-spike interval.
        const double mean =
            min_interval * 255.0 / static_cast<double>(pixels[p]);
        switch (config.scheme) {
          case CodingScheme::RatePoisson: {
            // Sub-millisecond inter-arrivals can land two draws on the
            // same tick; they merge (one spike per pixel per cycle).
            int last_tick = -1;
            double t = rng.exponential(mean);
            while (t < period) {
                const int tick = static_cast<int>(t);
                if (tick != last_tick) {
                    emit(tick, static_cast<uint16_t>(p));
                    last_tick = tick;
                }
                t += rng.exponential(mean);
            }
            break;
          }
          case CodingScheme::RateGaussian: {
            // Gaussian inter-arrival: the SNNwt hardware's CLT
            // generator (sigma configurable, truncated at 1 ms, so
            // ticks are always distinct).
            const double sigma = config.gaussianSigmaFactor * mean;
            double t = std::max(1.0, rng.gaussian(mean, sigma));
            while (t < period) {
                emit(static_cast<int>(t), static_cast<uint16_t>(p));
                t += std::max(1.0, rng.gaussian(mean, sigma));
            }
            break;
          }
          case CodingScheme::RateRegular: {
            // Deterministic spacing with a random initial phase so pixel
            // trains are not all aligned.
            double t = rng.uniform(0.0, mean);
            while (t < period) {
                emit(static_cast<int>(t), static_cast<uint16_t>(p));
                t += mean;
            }
            break;
          }
          case CodingScheme::RateBernoulli: {
            const double prob = 1.0 / mean;
            for (int t = 0; t < config.periodMs; ++t) {
                if (rng.uniform() < prob)
                    emit(t, static_cast<uint16_t>(p));
            }
            break;
          }
          default:
            panic("emitRate called with a temporal scheme");
        }
    }
}

template <typename Emit>
void
emitTemporal(const CodingConfig &config, const uint8_t *pixels,
             std::size_t n, Emit &&emit)
{
    const std::size_t period = static_cast<std::size_t>(config.periodMs);
    if (config.scheme == CodingScheme::TimeToFirstSpike) {
        // One spike per pixel; brighter pixels fire earlier:
        // t = Tperiod * (1 - p/255). Zero-luminance pixels never fire.
        for (std::size_t p = 0; p < n; ++p) {
            if (pixels[p] == 0)
                continue;
            const auto t = static_cast<int>(
                std::lround(static_cast<double>(period - 1) *
                            (1.0 - static_cast<double>(pixels[p]) / 255.0)));
            emit(t, static_cast<uint16_t>(p));
        }
        return;
    }

    // Rank-order coding: pixels spike one rank at a time in decreasing
    // luminance order, equally spaced across the window (ties broken by
    // pixel index, matching a hardware priority encoder).
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return pixels[a] > pixels[b];
                     });
    std::size_t active = 0;
    for (std::size_t p = 0; p < n; ++p)
        if (pixels[p] > 0)
            ++active;
    if (active == 0)
        return;
    for (std::size_t rank = 0; rank < active; ++rank) {
        const std::size_t t = rank * period / active;
        emit(static_cast<int>(t),
             static_cast<uint16_t>(order[rank]));
    }
}

template <typename Emit>
void
emitSpikes(const CodingConfig &config, const uint8_t *pixels,
           std::size_t n, Rng &rng, Emit &&emit)
{
    switch (config.scheme) {
      case CodingScheme::RatePoisson:
      case CodingScheme::RateGaussian:
      case CodingScheme::RateRegular:
      case CodingScheme::RateBernoulli:
        emitRate(config, pixels, n, rng, emit);
        break;
      case CodingScheme::TimeToFirstSpike:
      case CodingScheme::RankOrder:
        emitTemporal(config, pixels, n, emit);
        break;
    }
}

} // namespace

SpikeTrainGrid
SpikeEncoder::encode(const uint8_t *pixels, std::size_t num_pixels,
                     Rng &rng) const
{
    SpikeTrainGrid grid;
    encodeInto(pixels, num_pixels, rng, grid);
    return grid;
}

void
SpikeEncoder::encodeInto(const uint8_t *pixels, std::size_t num_pixels,
                         Rng &rng, SpikeTrainGrid &grid) const
{
    // resize() keeps existing tick vectors (and their heap buffers);
    // clearing them only resets sizes, so a reused grid stops
    // allocating once it has seen one densely coded image.
    grid.ticks.resize(static_cast<std::size_t>(config_.periodMs));
    for (auto &tick : grid.ticks)
        tick.clear();
    emitSpikes(config_, pixels, num_pixels, rng,
               [&grid](int t, uint16_t p) {
                   grid.ticks[static_cast<std::size_t>(t)].push_back(p);
               });
}

void
SpikeEncoder::encodePacked(const uint8_t *pixels, std::size_t num_pixels,
                           Rng &rng, PackedSpikeGrid &grid) const
{
    grid.reset(num_pixels, config_.periodMs);
    emitSpikes(config_, pixels, num_pixels, rng,
               [&grid](int t, uint16_t p) { grid.addSpike(t, p); });
    grid.finalize();
}

uint8_t
SpikeEncoder::spikeCount(uint8_t pixel) const
{
    // Expected spikes in the window at the pixel's rate: the hardware
    // emits this directly as a 4-bit value instead of a unary train.
    const double max_spikes = static_cast<double>(config_.periodMs) /
        static_cast<double>(config_.minIntervalMs);
    const double n =
        max_spikes * static_cast<double>(pixel) / 255.0;
    return static_cast<uint8_t>(std::lround(n));
}

uint8_t
SpikeEncoder::maxSpikeCount() const
{
    return spikeCount(255);
}

} // namespace snn
} // namespace neuro
