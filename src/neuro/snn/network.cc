#include "neuro/snn/network.h"

#include <algorithm>
#include <cmath>

#include "neuro/common/logging.h"
#include "neuro/common/profile.h"
#include "neuro/common/rng.h"

namespace neuro {
namespace snn {

int
PresentationResult::winner(Readout readout) const
{
    switch (readout) {
      case Readout::FirstSpike:
        return firstSpikeNeuron >= 0 ? firstSpikeNeuron
                                     : maxPotentialNeuron;
      case Readout::MaxPotential:
        return maxPotentialNeuron;
      case Readout::MaxSpikeCount: {
        if (outputSpikeCount == 0)
            return maxPotentialNeuron;
        int best = -1;
        uint16_t best_count = 0;
        for (std::size_t n = 0; n < spikeCountPerNeuron.size(); ++n) {
            if (spikeCountPerNeuron[n] > best_count) {
                best_count = spikeCountPerNeuron[n];
                best = static_cast<int>(n);
            }
        }
        return best;
      }
    }
    panic("unreachable readout");
}

SnnNetwork::SnnNetwork(const SnnConfig &config, Rng &rng)
    : config_(config),
      weights_(config.numNeurons, config.numInputs),
      neurons_(config.numNeurons),
      stdp_(config.stdp),
      homeostasis_(config.homeostasis),
      lastInputSpike_(config.numInputs, -1)
{
    NEURO_ASSERT(config_.numInputs > 0 && config_.numNeurons > 0,
                 "empty network");
    NEURO_ASSERT(config_.initialThreshold > 0.0, "threshold must be > 0");
    weights_.fillUniform(rng, config_.wInitMin, config_.wInitMax);
    for (auto &n : neurons_) {
        n.threshold = config_.initialThreshold *
            (1.0 + config_.thresholdJitter * (rng.uniform() - 0.5));
    }
}

void
SnnNetwork::beginPresentation(PresentationResult &result)
{
    result = PresentationResult();
    result.spikeCountPerNeuron.assign(config_.numNeurons, 0);
    for (auto &n : neurons_)
        n.resetDynamics();
    std::fill(lastInputSpike_.begin(), lastInputSpike_.end(), -1);
}

void
SnnNetwork::stepTick(int64_t t, const std::vector<uint16_t> &spikes,
                     bool learn, PresentationResult &result,
                     PresentationTrace *trace)
{
    if (spikes.empty())
        return;
    const std::size_t num_neurons = config_.numNeurons;
    const std::size_t num_inputs = config_.numInputs;

    result.inputSpikeCount += spikes.size();
    if (Tracer::enabled()) {
        Tracer::instance().counter(
            "snn.spikes_per_tick", static_cast<double>(spikes.size()));
    }
    // Integrate the tick's synaptic drive into every ungated neuron
    // (gated = refractory or laterally inhibited).
    for (std::size_t n = 0; n < num_neurons; ++n) {
        LifNeuron &neuron = neurons_[n];
        if (neuron.gated(t))
            continue;
        neuron.decayTo(t, config_.tLeakMs);
        const float *row = weights_.row(n);
        double drive = 0.0;
        for (uint16_t p : spikes)
            drive += row[p];
        neuron.integrate(drive);
    }
    for (uint16_t p : spikes) {
        NEURO_ASSERT(p < num_inputs, "input spike out of range");
        lastInputSpike_[p] = t;
    }

    // Fire at most one neuron per tick: the one whose potential
    // exceeds its threshold by the largest margin (the WTA inhibition
    // then silences the others, matching the "only one neuron can
    // fire for a given input" dynamics).
    int fire_n = -1;
    double best_margin = 0.0;
    for (std::size_t n = 0; n < num_neurons; ++n) {
        const LifNeuron &neuron = neurons_[n];
        if (neuron.gated(t) || !neuron.shouldFire())
            continue;
        const double margin = neuron.potential - neuron.threshold;
        if (fire_n < 0 || margin > best_margin) {
            fire_n = static_cast<int>(n);
            best_margin = margin;
        }
    }
    if (fire_n >= 0) {
        LifNeuron &winner =
            neurons_[static_cast<std::size_t>(fire_n)];
        winner.fire(t, config_.tRefracMs);
        ++result.outputSpikeCount;
        ++result.spikeCountPerNeuron[static_cast<std::size_t>(fire_n)];
        if (result.firstSpikeNeuron < 0) {
            result.firstSpikeNeuron = fire_n;
            result.firstSpikeTimeMs = t;
        }
        for (std::size_t n = 0; n < num_neurons; ++n) {
            if (static_cast<int>(n) == fire_n)
                continue;
            neurons_[n].inhibitedUntil =
                std::max(neurons_[n].inhibitedUntil,
                         t + config_.tInhibitMs);
            if (config_.wtaReset)
                neurons_[n].potential = 0.0;
        }
        result.wtaInhibitions += num_neurons - 1;
        if (learn) {
            const std::size_t potentiated = stdp_.onPostSpike(
                weights_.row(static_cast<std::size_t>(fire_n)),
                lastInputSpike_.data(), t, num_inputs);
            result.stdpPotentiated += potentiated;
            result.stdpDepressed += num_inputs - potentiated;
        }
        if (Tracer::enabled())
            Tracer::instance().instant("snn.fire", "spike");
        if (trace) {
            trace->outputSpikes.emplace_back(
                static_cast<int>(t), static_cast<uint16_t>(fire_n));
        }
    }
    if (trace) {
        for (uint16_t p : spikes)
            trace->inputSpikes.emplace_back(static_cast<int>(t), p);
    }
}

void
SnnNetwork::finishPresentation(bool learn, PresentationResult &result)
{
    const int period = config_.coding.periodMs;
    // End-of-window potentials (decayed to the window end) for the
    // max-potential readout.
    double best_pot = -1.0;
    for (std::size_t n = 0; n < config_.numNeurons; ++n) {
        neurons_[n].decayTo(period, config_.tLeakMs);
        if (neurons_[n].potential > best_pot) {
            best_pot = neurons_[n].potential;
            result.maxPotentialNeuron = static_cast<int>(n);
        }
    }
    if (learn)
        homeostasis_.advance(period, neurons_.data(), neurons_.size());

    if (obsEnabled()) {
        obsCount("snn.input_spikes", result.inputSpikeCount);
        obsCount("snn.output_spikes", result.outputSpikeCount);
        obsCount("snn.wta_inhibitions", result.wtaInhibitions);
        if (learn) {
            obsCount("snn.stdp_potentiations", result.stdpPotentiated);
            obsCount("snn.stdp_depressions", result.stdpDepressed);
        }
    }
}

PresentationResult
SnnNetwork::presentImage(const SpikeTrainGrid &grid, bool learn,
                         PresentationTrace *trace)
{
    NEURO_PROFILE_SCOPE("snn/present");
    const std::size_t num_neurons = config_.numNeurons;
    const int period = config_.coding.periodMs;
    NEURO_ASSERT(grid.ticks.size() == static_cast<std::size_t>(period),
                 "spike grid length %zu != period %d", grid.ticks.size(),
                 period);

    PresentationResult result;
    beginPresentation(result);

    const std::size_t trace_neurons = trace
        ? (trace->neuronLimit ? std::min(trace->neuronLimit, num_neurons)
                              : num_neurons)
        : 0;

    for (int t = 0; t < period; ++t) {
        stepTick(t, grid.ticks[static_cast<std::size_t>(t)], learn,
                 result, trace);
        if (trace) {
            std::vector<float> row(trace_neurons);
            for (std::size_t n = 0; n < trace_neurons; ++n) {
                // Sample the decayed value without mutating state.
                const LifNeuron &neuron = neurons_[n];
                row[n] = static_cast<float>(
                    lifDecay(neuron.potential,
                             static_cast<double>(
                                 t - neuron.lastUpdateMs < 0
                                     ? 0
                                     : t - neuron.lastUpdateMs),
                             config_.tLeakMs));
            }
            trace->potentials.push_back(std::move(row));
        }
    }
    finishPresentation(learn, result);
    return result;
}

int
SnnNetwork::forwardCounts(const uint8_t *counts,
                          std::vector<double> *potentials) const
{
    const std::size_t num_neurons = config_.numNeurons;
    const std::size_t num_inputs = config_.numInputs;
    if (potentials)
        potentials->assign(num_neurons, 0.0);
    int best = 0;
    double best_pot = -1.0;
    for (std::size_t n = 0; n < num_neurons; ++n) {
        const float *row = weights_.row(n);
        double pot = 0.0;
        for (std::size_t p = 0; p < num_inputs; ++p)
            pot += static_cast<double>(counts[p]) * row[p];
        if (potentials)
            (*potentials)[n] = pot;
        if (pot > best_pot) {
            best_pot = pot;
            best = static_cast<int>(n);
        }
    }
    return best;
}

} // namespace snn
} // namespace neuro
