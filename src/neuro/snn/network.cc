#include "neuro/snn/network.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "neuro/common/logging.h"
#include "neuro/common/profile.h"
#include "neuro/common/rng.h"
#include "neuro/kernels/kernels.h"

namespace neuro {
namespace snn {

SnnEngine
defaultSnnEngine()
{
    static const SnnEngine engine = [] {
        const char *env = std::getenv("NEURO_SNN_ENGINE");
        if (env != nullptr &&
            (std::strcmp(env, "dense") == 0 ||
             std::strcmp(env, "Dense") == 0)) {
            return SnnEngine::Dense;
        }
        return SnnEngine::Event;
    }();
    return engine;
}

const char *
snnEngineName(SnnEngine engine)
{
    return engine == SnnEngine::Dense ? "dense" : "event";
}

int
PresentationResult::winner(Readout readout) const
{
    switch (readout) {
      case Readout::FirstSpike:
        return firstSpikeNeuron >= 0 ? firstSpikeNeuron
                                     : maxPotentialNeuron;
      case Readout::MaxPotential:
        return maxPotentialNeuron;
      case Readout::MaxSpikeCount: {
        if (outputSpikeCount == 0)
            return maxPotentialNeuron;
        int best = -1;
        uint16_t best_count = 0;
        for (std::size_t n = 0; n < spikeCountPerNeuron.size(); ++n) {
            if (spikeCountPerNeuron[n] > best_count) {
                best_count = spikeCountPerNeuron[n];
                best = static_cast<int>(n);
            }
        }
        return best;
      }
    }
    panic("unreachable readout");
}

SnnNetwork::SnnNetwork(const SnnConfig &config, Rng &rng)
    : config_(config),
      weights_(config.numNeurons, config.numInputs),
      potentials_(config.numNeurons, 0.0),
      thresholds_(config.numNeurons, 0.0),
      lastUpdateMs_(config.numNeurons, 0),
      refractoryUntil_(config.numNeurons, -1),
      inhibitedUntil_(config.numNeurons, -1),
      fireCounts_(config.numNeurons, 0),
      stdp_(config.stdp),
      homeostasis_(config.homeostasis),
      lastInputSpike_(config.numInputs, -1)
{
    NEURO_ASSERT(config_.numInputs > 0 && config_.numNeurons > 0,
                 "empty network");
    NEURO_ASSERT(config_.initialThreshold > 0.0, "threshold must be > 0");
    weights_.fillUniform(rng, config_.wInitMin, config_.wInitMax);
    for (auto &threshold : thresholds_) {
        threshold = config_.initialThreshold *
            (1.0 + config_.thresholdJitter * (rng.uniform() - 0.5));
    }
}

void
SnnNetwork::beginPresentation(PresentationResult &result)
{
    result = PresentationResult();
    result.spikeCountPerNeuron.assign(config_.numNeurons, 0);
    std::fill(potentials_.begin(), potentials_.end(), 0.0);
    std::fill(lastUpdateMs_.begin(), lastUpdateMs_.end(), 0);
    std::fill(refractoryUntil_.begin(), refractoryUntil_.end(),
              int64_t{-1});
    std::fill(inhibitedUntil_.begin(), inhibitedUntil_.end(),
              int64_t{-1});
    std::fill(lastInputSpike_.begin(), lastInputSpike_.end(), -1);
}

void
SnnNetwork::fireNeuron(int fire_n, int64_t t, bool learn,
                       PresentationResult &result)
{
    const std::size_t num_neurons = config_.numNeurons;
    const std::size_t num_inputs = config_.numInputs;
    const auto fn = static_cast<std::size_t>(fire_n);

    potentials_[fn] = 0.0;
    refractoryUntil_[fn] = t + config_.tRefracMs;
    ++fireCounts_[fn];
    ++result.outputSpikeCount;
    if (result.firstSpikeNeuron < 0) {
        result.firstSpikeNeuron = fire_n;
        result.firstSpikeTimeMs = t;
    }
    for (std::size_t n = 0; n < num_neurons; ++n) {
        if (static_cast<int>(n) == fire_n)
            continue;
        inhibitedUntil_[n] =
            std::max(inhibitedUntil_[n], t + config_.tInhibitMs);
        if (config_.wtaReset)
            potentials_[n] = 0.0;
    }
    result.wtaInhibitions += num_neurons - 1;
    if (learn) {
        const std::size_t potentiated = stdp_.onPostSpike(
            weights_.row(fn), lastInputSpike_.data(), t, num_inputs);
        result.stdpPotentiated += potentiated;
        result.stdpDepressed += num_inputs - potentiated;
        if (!weightsTDirty_) {
            // Keep the event engine's transposed copy coherent: the
            // STDP update rewrote one weight row = one column of it.
            const float *row = weights_.row(fn);
            for (std::size_t p = 0; p < num_inputs; ++p)
                weightsT_(p, fn) = row[p];
        }
    }
    if (Tracer::enabled())
        Tracer::instance().instant("snn.fire", "spike");
}

void
SnnNetwork::stepTick(int64_t t, const std::vector<uint16_t> &spikes,
                     bool learn, PresentationResult &result,
                     PresentationTrace *trace)
{
    if (spikes.empty())
        return;
    const std::size_t num_neurons = config_.numNeurons;
    const std::size_t num_inputs = config_.numInputs;

    result.inputSpikeCount += spikes.size();
    if (Tracer::enabled()) {
        Tracer::instance().counter(
            "snn.spikes_per_tick", static_cast<double>(spikes.size()));
    }
    // Integrate the tick's synaptic drive into every ungated neuron
    // (gated = refractory or laterally inhibited).
    for (std::size_t n = 0; n < num_neurons; ++n) {
        if (gatedAt(n, t))
            continue;
        if (t > lastUpdateMs_[n]) {
            potentials_[n] = lifDecay(
                potentials_[n],
                static_cast<double>(t - lastUpdateMs_[n]),
                config_.tLeakMs);
            lastUpdateMs_[n] = t;
        }
        const float *row = weights_.row(n);
        double drive = 0.0;
        // neurolint: ordered-sum
        for (uint16_t p : spikes)
            drive += row[p];
        potentials_[n] += drive;
    }
    for (uint16_t p : spikes) {
        NEURO_ASSERT(p < num_inputs, "input spike out of range");
        lastInputSpike_[p] = t;
    }

    // Fire at most one neuron per tick: the one whose potential
    // exceeds its threshold by the largest margin (the WTA inhibition
    // then silences the others, matching the "only one neuron can
    // fire for a given input" dynamics).
    int fire_n = -1;
    double best_margin = 0.0;
    for (std::size_t n = 0; n < num_neurons; ++n) {
        if (gatedAt(n, t) || potentials_[n] < thresholds_[n])
            continue;
        const double margin = potentials_[n] - thresholds_[n];
        if (fire_n < 0 || margin > best_margin) {
            fire_n = static_cast<int>(n);
            best_margin = margin;
        }
    }
    if (fire_n >= 0) {
        fireNeuron(fire_n, t, learn, result);
        ++result.spikeCountPerNeuron[static_cast<std::size_t>(fire_n)];
        if (trace) {
            trace->outputSpikes.emplace_back(
                static_cast<int>(t), static_cast<uint16_t>(fire_n));
        }
    }
    if (trace) {
        for (uint16_t p : spikes)
            trace->inputSpikes.emplace_back(static_cast<int>(t), p);
    }
}

void
SnnNetwork::finishPresentation(bool learn, PresentationResult &result)
{
    const int period = config_.coding.periodMs;
    // End-of-window potentials (decayed to the window end) for the
    // max-potential readout.
    double best_pot = -1.0;
    for (std::size_t n = 0; n < config_.numNeurons; ++n) {
        if (period > lastUpdateMs_[n]) {
            potentials_[n] = lifDecay(
                potentials_[n],
                static_cast<double>(period - lastUpdateMs_[n]),
                config_.tLeakMs);
            lastUpdateMs_[n] = period;
        }
        if (potentials_[n] > best_pot) {
            best_pot = potentials_[n];
            result.maxPotentialNeuron = static_cast<int>(n);
        }
    }
    if (learn) {
        homeostasis_.advance(period, thresholds_.data(),
                             fireCounts_.data(), config_.numNeurons);
    }

    if (obsEnabled()) {
        obsCount("snn.input_spikes", result.inputSpikeCount);
        obsCount("snn.output_spikes", result.outputSpikeCount);
        obsCount("snn.wta_inhibitions", result.wtaInhibitions);
        if (learn) {
            obsCount("snn.stdp_potentiations", result.stdpPotentiated);
            obsCount("snn.stdp_depressions", result.stdpDepressed);
        }
    }
}

PresentationResult
SnnNetwork::presentImage(const SpikeTrainGrid &grid, bool learn,
                         PresentationTrace *trace)
{
    NEURO_PROFILE_SCOPE("snn/present");
    const std::size_t num_neurons = config_.numNeurons;
    const int period = config_.coding.periodMs;
    NEURO_ASSERT(grid.ticks.size() == static_cast<std::size_t>(period),
                 "spike grid length %zu != period %d", grid.ticks.size(),
                 period);

    PresentationResult result;
    beginPresentation(result);

    const std::size_t trace_neurons = trace
        ? (trace->neuronLimit ? std::min(trace->neuronLimit, num_neurons)
                              : num_neurons)
        : 0;

    for (int t = 0; t < period; ++t) {
        stepTick(t, grid.ticks[static_cast<std::size_t>(t)], learn,
                 result, trace);
        if (trace) {
            std::vector<float> row(trace_neurons);
            for (std::size_t n = 0; n < trace_neurons; ++n) {
                // Sample the decayed value without mutating state.
                row[n] = static_cast<float>(
                    lifDecay(potentials_[n],
                             static_cast<double>(
                                 t - lastUpdateMs_[n] < 0
                                     ? 0
                                     : t - lastUpdateMs_[n]),
                             config_.tLeakMs));
            }
            trace->potentials.push_back(std::move(row));
        }
    }
    finishPresentation(learn, result);
    return result;
}

PresentationResult
SnnNetwork::present(const PackedSpikeGrid &grid, bool learn)
{
    if (config_.engine == SnnEngine::Event)
        return presentEvents(grid, learn);
    grid.toDense(denseScratch_);
    return presentImage(denseScratch_, learn);
}

void
SnnNetwork::refreshWeightsT()
{
    if (!weightsTDirty_)
        return;
    if (weightsT_.rows() != config_.numInputs ||
        weightsT_.cols() != config_.numNeurons) {
        weightsT_ = Matrix(config_.numInputs, config_.numNeurons);
    }
    for (std::size_t n = 0; n < config_.numNeurons; ++n) {
        const float *row = weights_.row(n);
        for (std::size_t p = 0; p < config_.numInputs; ++p)
            weightsT_(p, n) = row[p];
    }
    weightsTDirty_ = false;
}

PresentationResult
SnnNetwork::presentEvents(const PackedSpikeGrid &grid, bool learn)
{
    NEURO_PROFILE_SCOPE("snn/present_events");
    const std::size_t num_neurons = config_.numNeurons;
    const std::size_t num_inputs = config_.numInputs;
    const int period = config_.coding.periodMs;
    NEURO_ASSERT(grid.periodMs() == period,
                 "packed grid period %d != config period %d",
                 grid.periodMs(), period);
    NEURO_ASSERT(grid.numInputs() == num_inputs,
                 "packed grid inputs %zu != config inputs %zu",
                 grid.numInputs(), num_inputs);

    refreshWeightsT();

    PresentationResult result;
    beginPresentation(result);

    driveScratch_.assign(num_neurons, 0.0);
    // Shared-exponential decay table: exp(-dt/Tleak) depends only on
    // dt, and at any tick most ungated neurons share the same dt (the
    // gap since the previous active tick) — one exp serves them all,
    // where the dense walk pays one exp per neuron per tick. Lazily
    // filled, NaN marks unset.
    decayFactors_.assign(static_cast<std::size_t>(period) + 1,
                         std::numeric_limits<double>::quiet_NaN());
    const std::size_t out_words =
        (static_cast<std::size_t>(period) + 63) / 64;
    outSpikeBits_.assign(num_neurons * out_words, 0);

    const auto &active = grid.activeTicks();
    double *__restrict drive = driveScratch_.data();
    double *__restrict pot = potentials_.data();
    const double *__restrict thr = thresholds_.data();
    int64_t *__restrict last = lastUpdateMs_.data();

    for (std::size_t k = 0; k < active.size(); ++k) {
        const int64_t t = active[k];
        std::size_t spike_count = 0;
        const uint16_t *spikes = grid.inputsAt(k, &spike_count);
        result.inputSpikeCount += spike_count;
        if (Tracer::enabled()) {
            Tracer::instance().counter(
                "snn.spikes_per_tick",
                static_cast<double>(spike_count));
        }

        // Phase 1: synaptic drive for every neuron via the transposed
        // weights — per neuron, the additions run in the same spike
        // order as the dense row walk, so the sums are bit-identical.
        // kernels::addRowF64 keeps each neuron's double accumulation
        // chain independent (it carries the ordered-sum tag), so SIMD
        // only widens how many neurons move per instruction.
        std::fill(driveScratch_.begin(), driveScratch_.end(), 0.0);
        for (std::size_t s = 0; s < spike_count; ++s)
            kernels::addRowF64(drive, weightsT_.row(spikes[s]),
                               num_neurons);

        // Phase 2: decay-and-integrate the ungated neurons, tracking
        // the WTA winner in the same index-order pass (per-neuron
        // updates are independent, so fusing the dense walk's
        // integrate loop and fire scan changes nothing). Gated
        // neurons keep their stale lastUpdate and catch up later,
        // exactly as the dense walk leaves them.
        int fire_n = -1;
        double best_margin = 0.0;
        for (std::size_t n = 0; n < num_neurons; ++n) {
            if (gatedAt(n, t))
                continue;
            const int64_t dt = t - last[n];
            if (dt > 0) {
                if (pot[n] != 0.0) {
                    const auto slot = static_cast<std::size_t>(dt);
                    double factor = decayFactors_[slot];
                    if (std::isnan(factor)) {
                        factor = std::exp(-static_cast<double>(dt) /
                                          config_.tLeakMs);
                        decayFactors_[slot] = factor;
                    }
                    pot[n] *= factor;
                }
                last[n] = t;
            }
            pot[n] += drive[n];
            if (pot[n] >= thr[n]) {
                const double margin = pot[n] - thr[n];
                if (fire_n < 0 || margin > best_margin) {
                    fire_n = static_cast<int>(n);
                    best_margin = margin;
                }
            }
        }
        for (std::size_t s = 0; s < spike_count; ++s)
            lastInputSpike_[spikes[s]] = t;
        if (fire_n >= 0) {
            fireNeuron(fire_n, t, learn, result);
            outSpikeBits_[static_cast<std::size_t>(fire_n) * out_words +
                          static_cast<std::size_t>(t) / 64] |=
                uint64_t{1} << (static_cast<unsigned>(t) % 64);
        }
    }

    // Per-neuron output-spike counts by popcount reduction over the
    // output bit plane (the MaxSpikeCount readout's accumulator).
    for (std::size_t n = 0; n < num_neurons; ++n) {
        result.spikeCountPerNeuron[n] =
            static_cast<uint16_t>(kernels::popcountWords(
                outSpikeBits_.data() + n * out_words, out_words));
    }

    if (obsEnabled()) {
        obsCount("snn.engine.events", result.inputSpikeCount);
        obsCount("snn.engine.ticks_active", active.size());
        obsCount("snn.engine.ticks_skipped",
                 static_cast<uint64_t>(period) - active.size());
    }
    finishPresentation(learn, result);
    return result;
}

int
SnnNetwork::forwardCounts(const uint8_t *counts,
                          std::vector<double> *potentials) const
{
    const std::size_t num_neurons = config_.numNeurons;
    const std::size_t num_inputs = config_.numInputs;
    if (potentials)
        potentials->assign(num_neurons, 0.0);
    int best = 0;
    double best_pot = -1.0;
    for (std::size_t n = 0; n < num_neurons; ++n) {
        const float *row = weights_.row(n);
        double pot = 0.0;
        // neurolint: ordered-sum
        for (std::size_t p = 0; p < num_inputs; ++p)
            pot += static_cast<double>(counts[p]) * row[p];
        if (potentials)
            (*potentials)[n] = pot;
        if (pot > best_pot) {
            best_pot = pot;
            best = static_cast<int>(n);
        }
    }
    return best;
}

} // namespace snn
} // namespace neuro
