#include "neuro/snn/analysis.h"

#include <algorithm>

#include "neuro/common/logging.h"

namespace neuro {
namespace snn {

Distribution
isiDistribution(const SpikeTrainGrid &grid, std::size_t num_pixels)
{
    std::vector<int64_t> last(num_pixels, -1);
    Distribution isi;
    for (std::size_t t = 0; t < grid.ticks.size(); ++t) {
        for (uint16_t p : grid.ticks[t]) {
            NEURO_ASSERT(p < num_pixels, "pixel out of range");
            if (last[p] >= 0)
                isi.sample(static_cast<double>(
                    static_cast<int64_t>(t) - last[p]));
            last[p] = static_cast<int64_t>(t);
        }
    }
    return isi;
}

std::vector<double>
firingRateMap(const SpikeTrainGrid &grid, std::size_t num_pixels)
{
    std::vector<double> rates(num_pixels, 0.0);
    for (const auto &tick : grid.ticks)
        for (uint16_t p : tick)
            rates[p] += 1.0;
    const double window_s =
        static_cast<double>(grid.ticks.size()) / 1000.0;
    if (window_s > 0.0) {
        for (double &r : rates)
            r /= window_s;
    }
    return rates;
}

SelectivityReport
neuronSelectivity(const SnnNetwork &net, const datasets::Dataset &data,
                  const SpikeEncoder &encoder, std::size_t max_samples)
{
    NEURO_ASSERT(!data.empty(), "empty dataset");
    const std::size_t num_neurons = net.config().numNeurons;
    const int num_classes = data.numClasses();
    SelectivityReport report;
    report.numClasses = num_classes;
    report.response.assign(num_neurons *
                               static_cast<std::size_t>(num_classes),
                           0.0);
    std::vector<std::size_t> class_counts(
        static_cast<std::size_t>(num_classes), 0);

    const std::size_t samples = std::min(max_samples, data.size());
    std::vector<uint8_t> counts(data.inputSize());
    std::vector<double> potentials;
    for (std::size_t i = 0; i < samples; ++i) {
        const auto &sample = data[i];
        for (std::size_t p = 0; p < counts.size(); ++p)
            counts[p] = encoder.spikeCount(sample.pixels[p]);
        net.forwardCounts(counts.data(), &potentials);
        const auto c = static_cast<std::size_t>(sample.label);
        ++class_counts[c];
        for (std::size_t n = 0; n < num_neurons; ++n) {
            report.response[n * static_cast<std::size_t>(num_classes) +
                            c] += potentials[n];
        }
    }
    for (std::size_t n = 0; n < num_neurons; ++n) {
        for (int c = 0; c < num_classes; ++c) {
            const auto cs = static_cast<std::size_t>(c);
            if (class_counts[cs] > 0) {
                report.response[n * static_cast<std::size_t>(
                                        num_classes) +
                                cs] /=
                    static_cast<double>(class_counts[cs]);
            }
        }
    }

    report.preferredClass.assign(num_neurons, -1);
    report.selectivity.assign(num_neurons, 0.0);
    for (std::size_t n = 0; n < num_neurons; ++n) {
        const double *row = report.response.data() +
            n * static_cast<std::size_t>(num_classes);
        double best = -1.0, total = 0.0;
        int best_class = -1;
        for (int c = 0; c < num_classes; ++c) {
            total += row[c];
            if (row[c] > best) {
                best = row[c];
                best_class = c;
            }
        }
        report.preferredClass[n] = best_class;
        if (best > 0.0 && num_classes > 1) {
            const double others =
                (total - best) / static_cast<double>(num_classes - 1);
            report.selectivity[n] =
                std::clamp(1.0 - others / best, 0.0, 1.0);
        }
    }
    return report;
}

} // namespace snn
} // namespace neuro
