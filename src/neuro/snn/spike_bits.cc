#include "neuro/snn/spike_bits.h"

#include <algorithm>

#include "neuro/common/logging.h"
#include "neuro/kernels/kernels.h"
#include "neuro/snn/coding.h"

namespace neuro {
namespace snn {

PackedSpikeGrid::PackedSpikeGrid(std::size_t num_inputs, int period_ms)
{
    reset(num_inputs, period_ms);
}

void
PackedSpikeGrid::reset(std::size_t num_inputs, int period_ms)
{
    NEURO_ASSERT(period_ms > 0, "presentation period must be > 0");
    numInputs_ = num_inputs;
    periodMs_ = period_ms;
    wordsPerInput_ = (static_cast<std::size_t>(period_ms) + 63) / 64;
    finalized_ = false;
    bits_.assign(numInputs_ * wordsPerInput_, 0);
    rawTicks_.clear();
    rawInputs_.clear();
    activeTicks_.clear();
    tickOffsets_.clear();
    events_.clear();
}

bool
PackedSpikeGrid::addSpike(int tick, uint16_t input)
{
    NEURO_ASSERT(!finalized_, "addSpike after finalize");
    NEURO_ASSERT(tick >= 0 && tick < periodMs_, "tick %d out of window",
                 tick);
    NEURO_ASSERT(input < numInputs_, "input spike out of range");
    const std::size_t word = static_cast<std::size_t>(input) *
            wordsPerInput_ +
        static_cast<std::size_t>(tick) / 64;
    const uint64_t mask = uint64_t{1} << (static_cast<unsigned>(tick) % 64);
    if (bits_[word] & mask)
        return false; // merged duplicate.
    bits_[word] |= mask;
    rawTicks_.push_back(tick);
    rawInputs_.push_back(input);
    return true;
}

void
PackedSpikeGrid::finalize()
{
    NEURO_ASSERT(!finalized_, "grid already finalized");
    finalized_ = true;

    // Stable counting sort of the raw events by tick: per-tick spike
    // counts, prefix sums, then a placement pass that keeps emission
    // order inside each tick (the dense encoder's list order).
    std::vector<uint32_t> per_tick(static_cast<std::size_t>(periodMs_), 0);
    for (int32_t t : rawTicks_)
        ++per_tick[static_cast<std::size_t>(t)];

    activeTicks_.clear();
    tickOffsets_.clear();
    uint32_t offset = 0;
    std::vector<uint32_t> cursor(per_tick.size(), 0);
    for (std::size_t t = 0; t < per_tick.size(); ++t) {
        if (per_tick[t] == 0)
            continue;
        activeTicks_.push_back(static_cast<int32_t>(t));
        tickOffsets_.push_back(offset);
        cursor[t] = offset;
        offset += per_tick[t];
    }
    tickOffsets_.push_back(offset);

    events_.resize(rawTicks_.size());
    for (std::size_t i = 0; i < rawTicks_.size(); ++i) {
        const auto t = static_cast<std::size_t>(rawTicks_[i]);
        events_[cursor[t]++] = rawInputs_[i];
    }
    rawTicks_.clear();
    rawTicks_.shrink_to_fit();
    rawInputs_.clear();
    rawInputs_.shrink_to_fit();
}

bool
PackedSpikeGrid::spikeAt(int tick, uint16_t input) const
{
    NEURO_ASSERT(tick >= 0 && tick < periodMs_ && input < numInputs_,
                 "spike probe out of range");
    const std::size_t word = static_cast<std::size_t>(input) *
            wordsPerInput_ +
        static_cast<std::size_t>(tick) / 64;
    return (bits_[word] >> (static_cast<unsigned>(tick) % 64)) & 1;
}

std::size_t
PackedSpikeGrid::countFor(std::size_t input) const
{
    NEURO_ASSERT(input < numInputs_, "input out of range");
    return kernels::popcountWords(bits_.data() + input * wordsPerInput_,
                                  wordsPerInput_);
}

void
PackedSpikeGrid::pixelCounts(std::vector<uint8_t> &counts) const
{
    counts.resize(numInputs_);
    for (std::size_t p = 0; p < numInputs_; ++p) {
        const std::size_t c = countFor(p);
        counts[p] = static_cast<uint8_t>(std::min<std::size_t>(c, 255));
    }
}

const uint16_t *
PackedSpikeGrid::inputsAt(std::size_t k, std::size_t *count) const
{
    NEURO_ASSERT(finalized_, "event index requires finalize()");
    NEURO_ASSERT(k < activeTicks_.size(), "active tick out of range");
    *count = tickOffsets_[k + 1] - tickOffsets_[k];
    return events_.data() + tickOffsets_[k];
}

void
PackedSpikeGrid::toDense(SpikeTrainGrid &grid) const
{
    NEURO_ASSERT(finalized_, "toDense requires finalize()");
    grid.ticks.resize(static_cast<std::size_t>(periodMs_));
    for (auto &tick : grid.ticks)
        tick.clear();
    for (std::size_t k = 0; k < activeTicks_.size(); ++k) {
        std::size_t count = 0;
        const uint16_t *inputs = inputsAt(k, &count);
        auto &tick = grid.ticks[static_cast<std::size_t>(activeTicks_[k])];
        tick.assign(inputs, inputs + count);
    }
}

void
PackedSpikeGrid::fromDense(const SpikeTrainGrid &grid,
                           std::size_t num_inputs)
{
    reset(num_inputs, static_cast<int>(grid.ticks.size()));
    for (std::size_t t = 0; t < grid.ticks.size(); ++t) {
        for (uint16_t p : grid.ticks[t])
            addSpike(static_cast<int>(t), p);
    }
    finalize();
}

std::size_t
PackedSpikeGrid::bytes() const
{
    return bits_.capacity() * sizeof(uint64_t) +
        rawTicks_.capacity() * sizeof(int32_t) +
        rawInputs_.capacity() * sizeof(uint16_t) +
        activeTicks_.capacity() * sizeof(int32_t) +
        tickOffsets_.capacity() * sizeof(uint32_t) +
        events_.capacity() * sizeof(uint16_t) + sizeof(*this);
}

} // namespace snn
} // namespace neuro
