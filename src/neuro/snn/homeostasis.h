/**
 * @file
 * Homeostatic threshold adaptation (Section 2.2). At the end of every
 * homeostasis epoch (a fixed span of simulated time, 1,500,000 ms = 3000
 * images with paper parameters) each neuron's firing threshold is nudged:
 *   threshold += sign(activity - homeostasis_threshold) * threshold * r,
 * punishing over-active neurons and promoting silent ones so that all
 * output neurons specialize. The process is local to each neuron except
 * for the single epoch counter, mirroring the low wiring overhead of the
 * hardware implementation.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace neuro {
namespace snn {

struct LifNeuron;

/** Homeostasis parameters (paper values of Table 1). */
struct HomeostasisConfig
{
    bool enabled = true;         ///< ablation switch.
    int64_t epochMs = 1500000;   ///< epoch length in simulated ms.
    double activityTarget = 30;  ///< homeostasis_threshold (fires/epoch).
    double rate = 0.05;          ///< multiplicative constant r (up).
    /** Downward adjustments use rate * downFactor: silent neurons ease
     *  their thresholds down slowly, so the firing scale of the WTA
     *  race does not collapse. */
    double downFactor = 0.25;
    double minThreshold = 1.0;   ///< floor to keep neurons excitable.
};

/** Tracks the epoch counter and applies threshold updates. */
class Homeostasis
{
  public:
    explicit Homeostasis(const HomeostasisConfig &config);

    /** @return the configuration. */
    const HomeostasisConfig &config() const { return config_; }

    /**
     * Advance simulated time by @p dt_ms; if one or more epoch
     * boundaries are crossed, adjust every neuron's threshold from its
     * fireCount and reset the counts.
     *
     * @return number of epoch boundaries processed.
     */
    int advance(int64_t dt_ms, LifNeuron *neurons, std::size_t count);

    /**
     * Structure-of-arrays overload: identical update applied to
     * separate threshold / fire-count arrays (SnnNetwork's layout).
     */
    int advance(int64_t dt_ms, double *thresholds, uint32_t *fireCounts,
                std::size_t count);

    /** @return total epochs processed so far. */
    int64_t epochsProcessed() const { return epochs_; }

  private:
    void applyEpoch(LifNeuron *neurons, std::size_t count);
    void applyEpoch(double *thresholds, uint32_t *fireCounts,
                    std::size_t count);

    HomeostasisConfig config_;
    int64_t elapsedInEpoch_ = 0;
    int64_t epochs_ = 0;
};

} // namespace snn
} // namespace neuro

