/**
 * @file
 * Bit-packed spike grids for the event-driven SNN engine. A dense
 * `SpikeTrainGrid` spends one heap vector per tick even though, at the
 * paper's parameters (U = 50 ms over a 500 ms window), well over 95% of
 * the (tick, pixel) cells are empty. `PackedSpikeGrid` stores the same
 * train two ways at once:
 *
 *  - a bit plane: one bit per (input, tick), 64 ticks per `uint64_t`
 *    word, row-major by input — spike *counts* fall out of `popcount`
 *    and membership tests are a single bit probe;
 *  - an event index (CSR over ticks): the sorted list of active ticks
 *    plus, per active tick, the inputs that spike there in exactly the
 *    order the encoder emitted them — the event loop walks only the
 *    ticks where anything happens and silent ticks cost nothing.
 *
 * The emission order is preserved so that `toDense()` reproduces the
 * dense encoder's grid byte-for-byte, which is what lets the Dense and
 * Event engines produce bit-identical results (drive sums are ordered
 * float reductions). At most one spike per (input, tick) is stored —
 * one clock cycle models one millisecond in the paper's hardware, and
 * a per-pixel spike generator cannot emit twice in one cycle.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace neuro {
namespace snn {

struct SpikeTrainGrid;

/** Bit-packed, event-indexed spike train for one presentation window. */
class PackedSpikeGrid
{
  public:
    PackedSpikeGrid() = default;

    /** Construct empty with the given shape. */
    PackedSpikeGrid(std::size_t num_inputs, int period_ms);

    /**
     * Reset to an empty grid of the given shape, reusing the existing
     * buffers (the encoder's scratch-grid idiom).
     */
    void reset(std::size_t num_inputs, int period_ms);

    /**
     * Record a spike of @p input at @p tick. Duplicate (tick, input)
     * pairs are merged (the bit plane is the authority).
     * @return true if the spike was new.
     */
    bool addSpike(int tick, uint16_t input);

    /**
     * Build the event index from the recorded spikes. Must be called
     * after the last addSpike() and before any event-side accessor;
     * addSpike() after finalize() is a usage error.
     */
    void finalize();

    /** @return the number of inputs (pixels). */
    std::size_t numInputs() const { return numInputs_; }
    /** @return the presentation window length in ticks. */
    int periodMs() const { return periodMs_; }
    /** @return total recorded spikes. */
    std::size_t totalSpikes() const { return events_.size(); }

    /** @return true if (tick, input) holds a spike (bit probe). */
    bool spikeAt(int tick, uint16_t input) const;

    /** @return number of spikes of @p input over the window (popcount). */
    std::size_t countFor(std::size_t input) const;

    /**
     * Per-pixel spike counts via popcount, saturated at 255 (same
     * contract as SpikeTrainGrid::pixelCounts).
     */
    void pixelCounts(std::vector<uint8_t> &counts) const;

    /** @return number of ticks that carry at least one spike. */
    std::size_t activeTickCount() const { return activeTicks_.size(); }

    /** @return the sorted active ticks (finalized grids only). */
    const std::vector<int32_t> &activeTicks() const { return activeTicks_; }

    /**
     * The inputs spiking at the @p k-th active tick, in encoder
     * emission order.
     *
     * @param k      index into activeTicks().
     * @param count  out: number of inputs at that tick.
     * @return pointer to the first input index.
     */
    const uint16_t *inputsAt(std::size_t k, std::size_t *count) const;

    /** Expand into a dense grid identical to the dense encoder's. */
    void toDense(SpikeTrainGrid &grid) const;

    /** Pack a dense grid (merging any same-tick duplicate spikes). */
    void fromDense(const SpikeTrainGrid &grid, std::size_t num_inputs);

    /** @return approximate heap footprint in bytes (cache budgeting). */
    std::size_t bytes() const;

  private:
    std::size_t numInputs_ = 0;
    int periodMs_ = 0;
    std::size_t wordsPerInput_ = 0;
    bool finalized_ = false;

    /** Bit plane: bits_[input * wordsPerInput_ + t / 64] bit (t % 64). */
    std::vector<uint64_t> bits_;

    /** Raw (tick, input) pairs in emission order (pre-finalize). */
    std::vector<int32_t> rawTicks_;
    std::vector<uint16_t> rawInputs_;

    /** Event index: inputs grouped by tick, emission order preserved. */
    std::vector<int32_t> activeTicks_;  ///< sorted spike-carrying ticks.
    std::vector<uint32_t> tickOffsets_; ///< activeTicks_.size() + 1 edges.
    std::vector<uint16_t> events_;      ///< flattened per-tick inputs.
};

} // namespace snn
} // namespace neuro

