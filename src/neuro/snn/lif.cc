#include "neuro/snn/lif.h"

#include <cmath>

#include "neuro/common/logging.h"

namespace neuro {
namespace snn {

double
lifDecay(double potential, double dt_ms, double tleak_ms)
{
    NEURO_ASSERT(dt_ms >= 0.0, "time cannot run backwards");
    NEURO_ASSERT(tleak_ms > 0.0, "leak time constant must be positive");
    return potential * std::exp(-dt_ms / tleak_ms);
}

double
lifDecayDiscrete(double potential, double dt_ms, double tleak_ms, int steps)
{
    NEURO_ASSERT(steps > 0, "need at least one integration step");
    // Forward-Euler on v' = -v/Tleak.
    const double h = dt_ms / static_cast<double>(steps);
    double v = potential;
    for (int i = 0; i < steps; ++i)
        v -= v * h / tleak_ms;
    return v;
}

} // namespace snn
} // namespace neuro
