/**
 * @file
 * Simplified Spike-Timing-Dependent Plasticity (Sections 2.2 and 4.4),
 * the rule the paper's online-learning circuit implements: when a neuron
 * fires at time t, every input synapse whose most recent presynaptic
 * spike falls within the LTP window [t - TLTP, t] is potentiated by a
 * constant increment; every other synapse (spike too old, or none) is
 * depressed by a constant decrement. Weights saturate at [wMin, wMax].
 * STDP applies only to the excitatory input synapses, never to the
 * lateral inhibition.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace neuro {
namespace snn {

/** STDP parameters (paper values: TLTP = 45 ms, unit increments on 8-bit
 *  weights; the increments are configurable so that scaled-down training
 *  sets can learn at the same effective rate). */
struct StdpConfig
{
    int ltpWindowMs = 45;   ///< TLTP.
    float ltpIncrement = 1; ///< weight increase on potentiation.
    float ltdDecrement = 1; ///< weight decrease on depression.
    float wMin = 0.0f;      ///< weight floor.
    float wMax = 255.0f;    ///< weight ceiling (8-bit weights).
    /** Soft (multiplicative) bounds: potentiation scales with the
     *  remaining headroom (1 - w/wMax) and depression with w/wMax, as
     *  in the memristive STDP the paper's SNN baseline [11, 20] uses.
     *  Keeps receptive fields graded instead of slamming to the rails.
     */
    bool softBounds = true;
};

/** Applies the simplified STDP update on postsynaptic firing events. */
class StdpRule
{
  public:
    explicit StdpRule(const StdpConfig &config);

    /** @return the configuration. */
    const StdpConfig &config() const { return config_; }

    /**
     * Update one neuron's input weights after it fired.
     *
     * @param weights            the neuron's synaptic row (num_inputs).
     * @param last_input_spike   per-input time of the most recent
     *                           presynaptic spike (-1 = never).
     * @param fire_time_ms       postsynaptic spike time.
     * @param num_inputs         synapse count.
     * @return number of potentiated synapses (for stats/tests).
     */
    std::size_t onPostSpike(float *weights,
                            const int64_t *last_input_spike,
                            int64_t fire_time_ms,
                            std::size_t num_inputs) const;

  private:
    StdpConfig config_;
};

} // namespace snn
} // namespace neuro

