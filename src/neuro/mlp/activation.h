/**
 * @file
 * Activation functions for the MLP: the standard sigmoid, the
 * slope-parameterized sigmoid f_a(x) = 1/(1+exp(-a*x)) used in the
 * paper's Section 3.2 to morph the sigmoid into a step function, the
 * [0/1] step function itself (with a surrogate gradient so BP remains
 * defined), and the 16-segment piecewise-linear sigmoid approximation the
 * hardware implements (Section 4.2.1: f(x) = a_i*x + b_i per segment).
 */

#pragma once

#include <array>
#include <cstddef>

namespace neuro {
namespace mlp {

/** Which activation a layer uses. */
enum class ActivationKind
{
    Sigmoid,      ///< f(x) = 1/(1+e^-x).
    ParamSigmoid, ///< f_a(x) = 1/(1+e^-ax).
    Step,         ///< f(x) = x >= 0 (surrogate gradient for BP).
};

/** An activation function with its derivative, as used by BP. */
class Activation
{
  public:
    /** Construct; @p slope is the 'a' parameter (ParamSigmoid) or the
     *  surrogate-gradient slope (Step). */
    explicit Activation(ActivationKind kind = ActivationKind::Sigmoid,
                        float slope = 1.0f);

    /** @return f(x). */
    float apply(float x) const;

    /**
     * @return f'(x) expressed in terms of the *output* y = f(x), which is
     * how BP evaluates it (sigmoid: a*y*(1-y); step: surrogate).
     */
    float derivativeFromOutput(float y) const;

    /** @return the activation kind. */
    ActivationKind kind() const { return kind_; }

    /** @return the slope parameter. */
    float slope() const { return slope_; }

  private:
    ActivationKind kind_;
    float slope_;
};

/**
 * The hardware sigmoid: 16-point piecewise-linear interpolation over a
 * fixed input range, storing two coefficients (a_i, b_i) per segment in a
 * small table, exactly as the accelerator's SRAM-backed unit does.
 */
class PiecewiseSigmoid
{
  public:
    /** Number of linear segments. */
    static constexpr std::size_t kSegments = 16;
    /** Approximation domain; saturates to 0/1 outside [-kRange, kRange]. */
    static constexpr float kRange = 8.0f;

    /** Build the coefficient table for slope parameter @p a. */
    explicit PiecewiseSigmoid(float a = 1.0f);

    /** @return the interpolated sigmoid value at @p x. */
    float apply(float x) const;

    /** @return the exact sigmoid this table approximates. */
    float exact(float x) const;

    /** @return the worst-case |apply - exact| sampled over the domain. */
    float maxError(std::size_t samples = 4096) const;

    /** @return segment coefficient a_i. */
    float coeffA(std::size_t i) const { return a_[i]; }
    /** @return segment coefficient b_i. */
    float coeffB(std::size_t i) const { return b_[i]; }

  private:
    float slope_;
    std::array<float, kSegments> a_;
    std::array<float, kSegments> b_;
};

} // namespace mlp
} // namespace neuro

