#include "neuro/mlp/quantized.h"

#include <algorithm>
#include <cmath>

#include "neuro/common/logging.h"
#include "neuro/kernels/kernels.h"

namespace neuro {
namespace mlp {

QuantizedMlp::QuantizedMlp(const Mlp &net, int weight_bits)
    : weightBits_(weight_bits), inputSize_(net.inputSize()),
      outputSize_(net.outputSize()),
      sigmoid_(net.activation().kind() == ActivationKind::Sigmoid
                   ? 1.0f
                   : net.activation().slope())
{
    NEURO_ASSERT(net.activation().kind() != ActivationKind::Step,
                 "quantized path expects a sigmoid-family activation");
    NEURO_ASSERT(weight_bits >= 2 && weight_bits <= 8,
                 "weight precision must be 2..8 bits");
    const long wmax = (1L << (weight_bits - 1)) - 1;
    const long wmin = -(1L << (weight_bits - 1));

    for (std::size_t l = 0; l < net.numLayers(); ++l) {
        const Matrix &w = net.weights(l);
        Layer layer;
        layer.fanOut = w.rows();
        layer.fanIn = w.cols() - 1;

        // Pick the largest fractional-bit count such that every weight
        // fits in the signed width: scale 2^frac maps |w|max below 2^(b-1).
        float max_abs = 0.0f;
        for (float v : w.data())
            max_abs = std::max(max_abs, std::fabs(v));
        int frac = weight_bits - 1;
        while (frac > 0 &&
               max_abs * static_cast<float>(1 << frac) >
                   static_cast<float>(wmax)) {
            --frac;
        }
        layer.fracBits = frac;

        layer.weights.resize(w.size());
        const float scale = static_cast<float>(1 << frac);
        for (std::size_t i = 0; i < w.size(); ++i) {
            const long q = std::lround(w.data()[i] * scale);
            layer.weights[i] =
                static_cast<int8_t>(std::clamp(q, wmin, wmax));
        }
        layers_.push_back(std::move(layer));
    }
}

void
QuantizedMlp::forward(const uint8_t *pixels, uint8_t *output) const
{
    // Activations travel as 8-bit unsigned codes for [0,1].
    std::vector<uint8_t> cur(pixels, pixels + inputSize_);
    std::vector<uint8_t> next;
    std::vector<int32_t> acc;

    for (const Layer &layer : layers_) {
        next.assign(layer.fanOut, 0);
        acc.resize(layer.fanOut);
        // 32-bit MAC over int8 weights and uint8 activations, plus
        // the bias weight fed by the constant-1 input (code 255) —
        // integer arithmetic, so the SIMD kernel is exact whatever
        // the dispatch width.
        kernels::gemvBiasQ8(layer.weights.data(), layer.fanOut,
                            layer.fanIn + 1, cur.data(), acc.data());
        const float inv_scale =
            1.0f / (static_cast<float>(1 << layer.fracBits) * 255.0f);
        for (std::size_t j = 0; j < layer.fanOut; ++j) {
            // Dequantize the pre-activation and apply the hardware
            // piecewise-linear sigmoid, then requantize to 8 bits.
            const float s = static_cast<float>(acc[j]) * inv_scale;
            const float y = sigmoid_.apply(s);
            next[j] = static_cast<uint8_t>(
                std::clamp(std::lround(y * 255.0f), 0L, 255L));
        }
        cur.swap(next);
    }
    std::copy(cur.begin(), cur.end(), output);
}

int
QuantizedMlp::predict(const uint8_t *pixels) const
{
    std::vector<uint8_t> out(outputSize_);
    forward(pixels, out.data());
    return static_cast<int>(
        std::max_element(out.begin(), out.end()) - out.begin());
}

std::size_t
QuantizedMlp::totalWeights() const
{
    std::size_t total = 0;
    for (const Layer &layer : layers_)
        total += layer.weights.size();
    return total;
}

int8_t
QuantizedMlp::weightAt(std::size_t idx) const
{
    for (const Layer &layer : layers_) {
        if (idx < layer.weights.size())
            return layer.weights[idx];
        idx -= layer.weights.size();
    }
    panic("weight index out of range");
}

void
QuantizedMlp::setWeightAt(std::size_t idx, int8_t value)
{
    for (Layer &layer : layers_) {
        if (idx < layer.weights.size()) {
            layer.weights[idx] = value;
            return;
        }
        idx -= layer.weights.size();
    }
    panic("weight index out of range");
}

double
QuantizedMlp::evaluate(const datasets::Dataset &data) const
{
    NEURO_ASSERT(data.inputSize() == inputSize_,
                 "dataset input size mismatch");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (predict(data[i].pixels.data()) == data[i].label)
            ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

} // namespace mlp
} // namespace neuro
