/**
 * @file
 * Back-propagation training (Section 2.1): stochastic gradient descent
 * over per-sample presentations, with the paper's weight-update rule
 * w(t+1) = w(t) + eta * delta_j * y_i, output-layer gradient
 * delta = f'(s) * e and hidden-layer gradient back-propagated through the
 * next layer's weights.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "neuro/datasets/dataset.h"
#include "neuro/mlp/mlp.h"

namespace neuro {

class Rng;

namespace mlp {

/** Training hyper-parameters (paper defaults of Table 1). */
struct TrainConfig
{
    float learningRate = 0.3f; ///< eta.
    std::size_t epochs = 50;   ///< passes over the training set.
    uint64_t seed = 7;         ///< shuffling seed.
    bool shuffle = true;       ///< reshuffle each epoch.
    /**
     * Samples per weight update. 1 (the default) is the paper's
     * per-presentation SGD. Larger values switch to minibatch
     * accumulation: gradients for the whole batch are computed
     * against the batch-start weights (in parallel when the thread
     * pool is active — results are batch-order deterministic and
     * thread-count independent) and applied as one gemm-shaped
     * accumulated update.
     */
    std::size_t batchSize = 1;
};

/** Per-epoch progress report. */
struct EpochReport
{
    std::size_t epoch = 0;  ///< 0-based epoch index.
    double trainError = 0;  ///< mean squared error over the epoch.
};

/** Optional observer invoked after each epoch. */
using EpochCallback = std::function<void(const EpochReport &)>;

/**
 * Train @p net on @p data with back-propagation.
 * Targets are one-hot vectors (1 for the label, 0 elsewhere).
 */
void train(Mlp &net, const datasets::Dataset &data,
           const TrainConfig &config, const EpochCallback &callback = {});

/** @return classification accuracy of @p net on @p data, in [0,1]. */
double evaluate(const Mlp &net, const datasets::Dataset &data);

/**
 * Convenience: construct, train and evaluate in one call.
 * @return test accuracy in [0,1].
 */
double trainAndEvaluate(const MlpConfig &mlp_config,
                        const TrainConfig &train_config,
                        const datasets::Dataset &train_set,
                        const datasets::Dataset &test_set,
                        uint64_t init_seed);

} // namespace mlp
} // namespace neuro

