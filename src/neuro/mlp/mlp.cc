#include "neuro/mlp/mlp.h"

#include <algorithm>
#include <cmath>

#include "neuro/common/logging.h"
#include "neuro/common/rng.h"
#include "neuro/common/serialize.h"
#include "neuro/kernels/kernels.h"

namespace neuro {
namespace mlp {

Mlp::Mlp(const MlpConfig &config, Rng &rng)
    : config_(config), activation_(config.activation, config.slope)
{
    NEURO_ASSERT(config_.layerSizes.size() >= 2,
                 "an MLP needs an input and an output layer");
    for (std::size_t l = 0; l + 1 < config_.layerSizes.size(); ++l) {
        const std::size_t fan_in = config_.layerSizes[l];
        const std::size_t fan_out = config_.layerSizes[l + 1];
        NEURO_ASSERT(fan_in > 0 && fan_out > 0, "empty layer");
        Matrix w(fan_out, fan_in + 1);
        // Uniform init scaled by fan-in keeps the initial pre-activations
        // in the sigmoid's linear region.
        const float bound =
            1.0f / std::sqrt(static_cast<float>(fan_in));
        w.fillUniform(rng, -bound, bound);
        weights_.push_back(std::move(w));
    }
}

std::size_t
Mlp::weightCount() const
{
    std::size_t total = 0;
    for (const auto &w : weights_)
        total += w.size();
    return total;
}

void
Mlp::forward(const float *input, float *output) const
{
    std::vector<float> cur(input, input + inputSize());
    std::vector<float> next;
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        const Matrix &w = weights_[l];
        next.resize(w.rows());
        w.gemvBias(cur.data(), next.data());
        for (std::size_t j = 0; j < w.rows(); ++j)
            next[j] = activation_.apply(next[j]);
        cur.swap(next);
    }
    std::copy(cur.begin(), cur.end(), output);
}

void
Mlp::forwardTrace(const float *input,
                  std::vector<std::vector<float>> &activations) const
{
    activations.resize(weights_.size() + 1);
    activations[0].assign(input, input + inputSize());
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        const Matrix &w = weights_[l];
        const std::vector<float> &cur = activations[l];
        std::vector<float> &next = activations[l + 1];
        next.resize(w.rows());
        w.gemvBias(cur.data(), next.data());
        for (std::size_t j = 0; j < w.rows(); ++j)
            next[j] = activation_.apply(next[j]);
    }
}

void
Mlp::serialize(Archive &archive, const std::string &prefix) const
{
    std::vector<int64_t> layers;
    for (std::size_t s : config_.layerSizes)
        layers.push_back(static_cast<int64_t>(s));
    archive.putInts(prefix + ".layers", std::move(layers));
    archive.putScalar(prefix + ".activation",
                      static_cast<double>(config_.activation));
    archive.putScalar(prefix + ".slope", config_.slope);
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        archive.putFloats(prefix + ".weights" + std::to_string(l),
                          weights_[l].data());
    }
}

std::optional<Mlp>
Mlp::deserialize(const Archive &archive, const std::string &prefix)
{
    if (!archive.has(prefix + ".layers") ||
        !archive.has(prefix + ".activation")) {
        return std::nullopt;
    }
    Mlp net;
    net.config_.layerSizes.clear(); // drop MlpConfig's defaults.
    for (int64_t s : archive.ints(prefix + ".layers")) {
        if (s <= 0)
            return std::nullopt;
        net.config_.layerSizes.push_back(static_cast<std::size_t>(s));
    }
    if (net.config_.layerSizes.size() < 2)
        return std::nullopt;
    const int kind_raw =
        static_cast<int>(archive.scalar(prefix + ".activation"));
    if (kind_raw < 0 || kind_raw > static_cast<int>(ActivationKind::Step))
        return std::nullopt;
    net.config_.activation = static_cast<ActivationKind>(kind_raw);
    net.config_.slope =
        static_cast<float>(archive.scalar(prefix + ".slope"));
    net.activation_ =
        Activation(net.config_.activation, net.config_.slope);

    for (std::size_t l = 0; l + 1 < net.config_.layerSizes.size(); ++l) {
        const std::string key = prefix + ".weights" + std::to_string(l);
        if (!archive.has(key))
            return std::nullopt;
        Matrix w(net.config_.layerSizes[l + 1],
                 net.config_.layerSizes[l] + 1);
        const auto &values = archive.floats(key);
        if (values.size() != w.size())
            return std::nullopt;
        w.data() = values;
        net.weights_.push_back(std::move(w));
    }
    return net;
}

void
Mlp::forwardStrip(const float *inputStrip, std::vector<float> &cur,
                  std::vector<float> &next) const
{
    constexpr std::size_t kStrip = kernels::kStripWidth;
    cur.assign(inputStrip, inputStrip + inputSize() * kStrip);
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        const Matrix &w = weights_[l];
        next.resize(w.rows() * kStrip);
        kernels::gemvBiasStrip(w.data().data(), w.rows(), w.cols(),
                               cur.data(), next.data());
        for (float &v : next)
            v = activation_.apply(v);
        cur.swap(next);
    }
}

void
argmaxStrip(const float *strip, std::size_t rows, int *classes)
{
    constexpr std::size_t kStrip = kernels::kStripWidth;
    for (std::size_t b = 0; b < kStrip; ++b) {
        int best = 0;
        float best_v = strip[b];
        for (std::size_t r = 1; r < rows; ++r) {
            const float v = strip[r * kStrip + b];
            if (v > best_v) {
                best_v = v;
                best = static_cast<int>(r);
            }
        }
        classes[b] = best;
    }
}

int
Mlp::predict(const float *input) const
{
    std::vector<float> out(outputSize());
    forward(input, out.data());
    return static_cast<int>(
        std::max_element(out.begin(), out.end()) - out.begin());
}

} // namespace mlp
} // namespace neuro
