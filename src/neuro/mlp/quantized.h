/**
 * @file
 * Hardware-faithful 8-bit fixed-point MLP inference (Section 4.2.1): the
 * accelerator stores 8-bit synaptic weights and 8-bit activations, uses
 * integer multiply-accumulate, and evaluates the sigmoid with the
 * 16-point piecewise-linear unit. The paper reports 96.65% with this
 * datapath vs 97.65% in floating point; the quantization bench reproduces
 * that ~1% gap on our workload.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "neuro/datasets/dataset.h"
#include "neuro/mlp/activation.h"
#include "neuro/mlp/mlp.h"

namespace neuro {
namespace mlp {

/**
 * An 8-bit quantization of a trained float MLP.
 *
 * Each layer stores int8 weights with a per-layer power-of-two scale
 * (fractional-bit count chosen so the largest weight fits), activations
 * are 8-bit unsigned (0..255 representing [0,1]), and accumulation is
 * 32-bit integer — the widths of the paper's datapath.
 */
class QuantizedMlp
{
  public:
    /**
     * Quantize @p net (which must use a sigmoid-family activation).
     * @param weight_bits signed weight precision (2..8); the paper's
     * datapath uses 8, narrower widths serve the precision ablation.
     */
    explicit QuantizedMlp(const Mlp &net, int weight_bits = 8);

    /** @return the configured weight precision. */
    int weightBits() const { return weightBits_; }

    /** @return number of neuron layers. */
    std::size_t numLayers() const { return layers_.size(); }

    /** @return number of inputs. */
    std::size_t inputSize() const { return inputSize_; }

    /** @return number of outputs. */
    std::size_t outputSize() const { return outputSize_; }

    /** @return the fractional-bit count chosen for layer @p l. */
    int fracBits(std::size_t l) const { return layers_[l].fracBits; }

    /** @return inputs of layer @p l (excluding bias). */
    std::size_t layerFanIn(std::size_t l) const
    {
        return layers_[l].fanIn;
    }

    /** @return neurons of layer @p l. */
    std::size_t layerFanOut(std::size_t l) const
    {
        return layers_[l].fanOut;
    }

    /** @return raw int8 weight (neuron @p j, input @p i; bias at
     *  i == layerFanIn(l)). */
    int8_t
    layerWeight(std::size_t l, std::size_t j, std::size_t i) const
    {
        return layers_[l].weights[j * (layers_[l].fanIn + 1) + i];
    }

    /** @return the hardware sigmoid unit shared by all neurons. */
    const PiecewiseSigmoid &sigmoid() const { return sigmoid_; }

    /**
     * Feed-forward on raw 8-bit pixels.
     * @param pixels  inputSize() luminance values.
     * @param output  outputSize() activation bytes (written).
     */
    void forward(const uint8_t *pixels, uint8_t *output) const;

    /** @return argmax class for @p pixels. */
    int predict(const uint8_t *pixels) const;

    /** @return accuracy on @p data in [0,1]. */
    double evaluate(const datasets::Dataset &data) const;

    /** @return total int8 weights across layers (fault-injection
     *  address space). */
    std::size_t totalWeights() const;

    /** @return raw weight at flat index @p idx. */
    int8_t weightAt(std::size_t idx) const;

    /** Overwrite the raw weight at flat index @p idx (fault
     *  injection / tests). */
    void setWeightAt(std::size_t idx, int8_t value);

  private:
    struct Layer
    {
        std::size_t fanIn = 0;        ///< inputs (excluding bias).
        std::size_t fanOut = 0;       ///< neurons.
        int fracBits = 6;             ///< weight scale = 2^-fracBits.
        std::vector<int8_t> weights;  ///< fanOut x (fanIn+1), bias last.
    };

    int weightBits_ = 8;
    std::size_t inputSize_ = 0;
    std::size_t outputSize_ = 0;
    std::vector<Layer> layers_;
    PiecewiseSigmoid sigmoid_;
};

} // namespace mlp
} // namespace neuro

